// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (§7), plus micro-benchmarks of the substrate.
//
//	go test -bench=. -benchmem
//
// Custom metrics report the paper's headline numbers:
//
//	BenchmarkTable1     slow-down geomeans per configuration column
//	BenchmarkTable1FalsePositives  total FP count (paper: 84 across 9 benchmarks)
//	BenchmarkTable2     detection rates (paper: RedFat 484/484, Memcheck 0/484)
//	BenchmarkFigure8    Kraken write-protection geomean (paper: ≈1.28×)
//	BenchmarkAblation*  patch-tactic and batch-width ablations
//
// The workload scale is reduced so a full -bench sweep completes in
// minutes; cmd/rfbench runs the same experiments at full scale.
package redfat_test

import (
	"fmt"
	"testing"

	"redfat"
	"redfat/internal/bench"
	"redfat/internal/juliet"
	"redfat/internal/kraken"
	"redfat/internal/workload"
)

const table1Scale = 0.02

// BenchmarkTable1 regenerates paper Table 1: the full SPEC CPU2006-like
// suite through every instrumentation configuration plus Memcheck.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table1(table1Scale, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i != 0 {
			continue
		}
		get := func(f func(*bench.Table1Row) float64) float64 {
			xs := make([]float64, len(rows))
			for j, r := range rows {
				xs[j] = f(r)
			}
			return bench.GeoMean(xs)
		}
		b.ReportMetric(get(func(r *bench.Table1Row) float64 { return r.Unopt }), "unopt-x")
		b.ReportMetric(get(func(r *bench.Table1Row) float64 { return r.Elim }), "elim-x")
		b.ReportMetric(get(func(r *bench.Table1Row) float64 { return r.Batch }), "batch-x")
		b.ReportMetric(get(func(r *bench.Table1Row) float64 { return r.Merge }), "merge-x")
		b.ReportMetric(get(func(r *bench.Table1Row) float64 { return r.Dom }), "dom-x")
		b.ReportMetric(get(func(r *bench.Table1Row) float64 { return r.NoSize }), "nosize-x")
		b.ReportMetric(get(func(r *bench.Table1Row) float64 { return r.NoReads }), "noreads-x")
		b.ReportMetric(get(func(r *bench.Table1Row) float64 { return r.Memcheck }), "memcheck-x")
		cov := 0.0
		for _, r := range rows {
			cov += r.Coverage
		}
		b.ReportMetric(100*cov/float64(len(rows)), "coverage-%")
	}
}

// BenchmarkTable1PerBenchmark runs each SPEC-like benchmark's fully
// optimized hardened configuration as its own sub-benchmark.
func BenchmarkTable1PerBenchmark(b *testing.B) {
	for _, bm := range workload.All() {
		bm := bm
		b.Run(bm.Name, func(b *testing.B) {
			cp := *bm
			cp.RefScale = 2000
			cp.TrainScale = 400
			bin, err := cp.Build()
			if err != nil {
				b.Fatal(err)
			}
			hard, _, err := redfat.Harden(bin, redfat.Defaults())
			if err != nil {
				b.Fatal(err)
			}
			input := cp.RefInput()
			b.ResetTimer()
			var cycles uint64
			for i := 0; i < b.N; i++ {
				res, err := redfat.Run(hard, redfat.RunOptions{Input: input, Hardened: true})
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Cycles
			}
			b.ReportMetric(float64(cycles), "guest-cycles")
		})
	}
}

// BenchmarkTable1DetectedErrors reproduces the §7.1 "Detected errors"
// result: the planted calculix and wrf out-of-bounds reads.
func BenchmarkTable1DetectedErrors(b *testing.B) {
	for i := 0; i < b.N; i++ {
		total := 0
		for _, name := range []string{"calculix", "wrf"} {
			row, err := bench.Table1Bench(workload.ByName(name), table1Scale)
			if err != nil {
				b.Fatal(err)
			}
			total += row.DetectedErrors
		}
		if i == 0 {
			b.ReportMetric(float64(total), "detected-errors")
		}
	}
}

// BenchmarkTable1FalsePositives reproduces the §7.1 false-positive counts
// under full checking without the allow-list (paper: 85 sites across 9
// benchmarks: perlbench 1, gcc 14, gobmk 1, povray 1, bwaves 5,
// gromacs 3, GemsFDTD 32, wrf 26, calculix 2).
func BenchmarkTable1FalsePositives(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.FalsePositives(table1Scale, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i != 0 {
			continue
		}
		total := 0
		for _, r := range rows {
			total += r.Count
		}
		b.ReportMetric(float64(total), "false-positives")
	}
}

// BenchmarkTable2 regenerates paper Table 2: the four CVE models plus the
// 480-case Juliet CWE-122 suite under RedFat and Memcheck.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table2(nil)
		if err != nil {
			b.Fatal(err)
		}
		if i != 0 {
			continue
		}
		var rf, mc, total int
		for _, r := range rows {
			rf += r.RedFat
			mc += r.Memcheck
			total += r.Total
		}
		b.ReportMetric(float64(rf)/float64(total)*100, "redfat-detect-%")
		b.ReportMetric(float64(mc)/float64(total)*100, "memcheck-detect-%")
	}
}

// BenchmarkTable2Juliet measures a single Juliet case end to end
// (build + harden + both runs).
func BenchmarkTable2Juliet(b *testing.B) {
	cases := juliet.JulietCases()
	for i := 0; i < b.N; i++ {
		c := cases[i%len(cases)]
		bin, err := c.Build()
		if err != nil {
			b.Fatal(err)
		}
		hard, _, err := redfat.Harden(bin, redfat.Defaults())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := redfat.Run(hard, redfat.RunOptions{
			Input: juliet.Trigger(c), Hardened: true,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure8 regenerates paper Figure 8: Chrome-scale write-only
// hardening measured with the 14 Kraken sub-benchmarks.
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, gm, err := bench.Figure8(2048, 400, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(gm*100, "kraken-geomean-%")
		}
	}
}

// BenchmarkAblationTactics reports the patch-tactic mix across the whole
// binary population (the rewriting-substrate ablation from DESIGN.md).
func BenchmarkAblationTactics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Tactics(1024, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i != 0 {
			continue
		}
		var t1, t2, t3 int
		for _, r := range rows {
			t1 += r.T1
			t2 += r.T2
			t3 += r.T3
		}
		total := float64(t1 + t2 + t3)
		b.ReportMetric(float64(t1)/total*100, "T1-%")
		b.ReportMetric(float64(t2)/total*100, "T2-%")
		b.ReportMetric(float64(t3)/total*100, "T3-%")
	}
}

// BenchmarkAblationBatchWidth sweeps the maximum batch width (check
// batching ablation, paper §6).
func BenchmarkAblationBatchWidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.BatchSweep("povray", table1Scale, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rows[0].Slowdown, "width1-x")
			b.ReportMetric(rows[len(rows)-1].Slowdown, "width16-x")
		}
	}
}

// BenchmarkHardenThroughput measures static rewriting speed on the
// Chrome-scale binary (bytes of text instrumented per second).
func BenchmarkHardenThroughput(b *testing.B) {
	bin, err := buildChrome(4096)
	if err != nil {
		b.Fatal(err)
	}
	textBytes := len(bin.Text().Data)
	b.SetBytes(int64(textBytes))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := redfat.Harden(bin, redfat.Defaults()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVMExecution measures raw interpreter speed (guest
// instructions per wall-clock second) on an uninstrumented workload.
func BenchmarkVMExecution(b *testing.B) {
	bm := workload.ByName("bzip2")
	cp := *bm
	cp.RefScale = 20000
	bin, err := cp.Build()
	if err != nil {
		b.Fatal(err)
	}
	input := cp.RefInput()
	b.ResetTimer()
	var insts uint64
	for i := 0; i < b.N; i++ {
		res, err := redfat.Run(bin, redfat.RunOptions{Input: input})
		if err != nil {
			b.Fatal(err)
		}
		insts = res.Insts
	}
	b.ReportMetric(float64(insts), "guest-insts/op")
}

// BenchmarkVMDispatch compares the interpreter's two host dispatch
// strategies on the same workload: the legacy per-instruction map icache
// vs the decoded basic-block cache. Guest results are identical; only
// host wall-clock differs.
func BenchmarkVMDispatch(b *testing.B) {
	bm := workload.ByName("bzip2")
	cp := *bm
	cp.RefScale = 20000
	bin, err := cp.Build()
	if err != nil {
		b.Fatal(err)
	}
	input := cp.RefInput()
	for _, mode := range []struct {
		name    string
		noBlock bool
	}{
		{"map-icache", true},
		{"block-cache", false},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var insts uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := redfat.Run(bin, redfat.RunOptions{
					Input: input, NoBlockCache: mode.noBlock,
				})
				if err != nil {
					b.Fatal(err)
				}
				insts = res.Insts
			}
			b.StopTimer()
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(insts)*float64(b.N)/secs/1e6, "guest-MIPS")
			}
		})
	}
}

// BenchmarkBlockChain isolates block chaining on the dispatch workload:
// the block cache with every exit walking the per-page tables (nochain)
// vs steady-state exits following cached successor pointers (chain), with
// the software TLB ablated as a third axis.
func BenchmarkBlockChain(b *testing.B) {
	bm := workload.ByName("bzip2")
	cp := *bm
	cp.RefScale = 20000
	bin, err := cp.Build()
	if err != nil {
		b.Fatal(err)
	}
	input := cp.RefInput()
	for _, mode := range []struct {
		name    string
		noChain bool
		noTLB   bool
	}{
		{"chain", false, false},
		{"nochain", true, false},
		{"chain-notlb", false, true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var insts uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := redfat.Run(bin, redfat.RunOptions{
					Input: input, NoChain: mode.noChain, NoTLB: mode.noTLB,
				})
				if err != nil {
					b.Fatal(err)
				}
				insts = res.Insts
			}
			b.StopTimer()
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(insts)*float64(b.N)/secs/1e6, "guest-MIPS")
			}
		})
	}
}

// BenchmarkTable1Parallel measures the experiment harness's wall-clock
// scaling over the worker pool: the full Table 1 pipeline serially and at
// -parallel 4. The rendered rows are byte-identical at any width; only
// elapsed time moves (and only on multi-core hosts).
func BenchmarkTable1Parallel(b *testing.B) {
	for _, width := range []int{1, 4} {
		b.Run(fmt.Sprintf("parallel-%d", width), func(b *testing.B) {
			h := &bench.Harness{Parallel: width}
			for i := 0; i < b.N; i++ {
				if _, err := h.Table1(table1Scale, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkProfileWorkflow measures the full two-phase Fig. 5 pipeline.
func BenchmarkProfileWorkflow(b *testing.B) {
	bm := workload.ByName("gcc")
	cp := *bm
	cp.RefScale = 2000
	cp.TrainScale = 400
	bin, err := cp.Build()
	if err != nil {
		b.Fatal(err)
	}
	suite := [][]uint64{cp.TrainInput()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := redfat.ProfileAndHarden(bin, suite, redfat.Defaults()); err != nil {
			b.Fatal(err)
		}
	}
}

func buildChrome(fillers int) (*redfat.Binary, error) {
	return kraken.Build(fillers)
}

// BenchmarkMemcheckRun measures the Memcheck model's execution speed for
// comparison with the hardened runs.
func BenchmarkMemcheckRun(b *testing.B) {
	bm := workload.ByName("mcf")
	cp := *bm
	cp.RefScale = 2000
	bin, err := cp.Build()
	if err != nil {
		b.Fatal(err)
	}
	input := cp.RefInput()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := redfat.Run(bin, redfat.RunOptions{Input: input, Memcheck: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllocators compares the baseline and RedFat allocators through
// the churn workload.
func BenchmarkAllocators(b *testing.B) {
	bm := workload.ByName("xalancbmk")
	cp := *bm
	cp.RefScale = 2000
	bin, err := cp.Build()
	if err != nil {
		b.Fatal(err)
	}
	input := cp.RefInput()
	hard, _, err := redfat.Harden(bin, redfat.Options{}) // no checks: allocator cost only
	if err != nil {
		b.Fatal(err)
	}
	b.Run("glibc-style", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := redfat.Run(bin, redfat.RunOptions{Input: input}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lowfat-redzone", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := redfat.Run(hard, redfat.RunOptions{Input: input, Hardened: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
