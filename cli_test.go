package redfat_test

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

// buildTools compiles the command-line tools once per test binary.
func buildTools(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	cmd := exec.Command("go", "build", "-o", dir+string(os.PathSeparator), "./cmd/...")
	cmd.Env = os.Environ()
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building tools: %v\n%s", err, out)
	}
	return dir
}

func runTool(t *testing.T, dir, name string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(filepath.Join(dir, name), args...)
	out, err := cmd.CombinedOutput()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("%s: %v\n%s", name, err, out)
	}
	return string(out), code
}

const cliProg = `
.func main
    mov $40, %rdi
    call @malloc
    mov %rax, %rbx
    call @rf_input
    mov $7, %rcx
    mov %rcx, (%rbx,%rax,8)
    mov $0, %rax
    ret
`

// TestCLIPipeline drives the full assemble → harden → run → disassemble
// workflow through the real command-line tools.
func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the CLI tools")
	}
	bin := buildTools(t)
	work := t.TempDir()
	src := filepath.Join(work, "prog.s")
	if err := os.WriteFile(src, []byte(cliProg), 0o644); err != nil {
		t.Fatal(err)
	}
	relfPath := filepath.Join(work, "prog.relf")
	hardPath := filepath.Join(work, "prog.hard.relf")

	out, code := runTool(t, bin, "rfasm", "-o", relfPath, src)
	if code != 0 {
		t.Fatalf("rfasm: %s", out)
	}
	out, code = runTool(t, bin, "redfat", "-v", "-o", hardPath, relfPath)
	if code != 0 || !strings.Contains(out, "checks") {
		t.Fatalf("redfat: %d %s", code, out)
	}

	// Benign run.
	out, code = runTool(t, bin, "rfvm", "-hardened", "-abort", "-input", "2", hardPath)
	if code != 0 || !strings.Contains(out, "exit=0") {
		t.Fatalf("benign rfvm run: %d %s", code, out)
	}
	// Attack run: detected, non-zero exit.
	out, code = runTool(t, bin, "rfvm", "-hardened", "-abort", "-input", "40", hardPath)
	if code == 0 || !strings.Contains(out, "out-of-bounds write") {
		t.Fatalf("attack rfvm run: %d %s", code, out)
	}
	if !strings.Contains(out, "allocated at") {
		t.Errorf("diagnostic missing allocation site: %s", out)
	}

	// Trace mode emits instructions.
	out, _ = runTool(t, bin, "rfvm", "-trace", "5", "-input", "2", relfPath)
	if !strings.Contains(out, "mov $0x28, %rdi") {
		t.Errorf("trace output missing: %s", out)
	}

	// -stats prints the telemetry report with nonzero VM, check and
	// allocator counters; -events prints the trailing event window.
	out, code = runTool(t, bin, "rfvm", "-hardened", "-stats", "-events", "8",
		"-input", "2", hardPath)
	if code != 0 {
		t.Fatalf("rfvm -stats: %d %s", code, out)
	}
	for _, want := range []string{
		"vm.retired.total", "check.execs", "lowfat.allocs",
		"hottest checks", "execution events",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rfvm -stats output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "vm.retired.total                            0") {
		t.Errorf("retired counter is zero: %s", out)
	}

	// Abnormal exits summarize the recorded errors.
	out, _ = runTool(t, bin, "rfvm", "-hardened", "-abort", "-input", "40", hardPath)
	if !strings.Contains(out, "1 memory error(s) at 1 distinct site(s)") {
		t.Errorf("error summary missing: %s", out)
	}

	// -metrics on the hardening tool writes instrumentation-time counters.
	metricsPath := filepath.Join(work, "harden.json")
	out, code = runTool(t, bin, "redfat", "-o", hardPath, "-metrics", metricsPath, relfPath)
	if code != 0 {
		t.Fatalf("redfat -metrics: %d %s", code, out)
	}
	if data, err := os.ReadFile(metricsPath); err != nil ||
		!strings.Contains(string(data), `"harden.checks": 1`) {
		t.Errorf("harden metrics file: %v %s", err, data)
	}

	// Disassembly shows the patch artifacts.
	out, code = runTool(t, bin, "rfdis", hardPath)
	if code != 0 || !strings.Contains(out, ".tramp") || !strings.Contains(out, "rtcall") {
		t.Fatalf("rfdis: %d %s", code, out)
	}
}

// TestCLITraceSmoke drives the forensics and profiling flags end to end:
// -forensics must print the symbolized report, -profile-guest the
// hot-site table, -folded a parseable folded-stack file, and -trace-out
// a Chrome trace-event JSON that actually parses. `make trace-smoke`
// runs exactly this test.
func TestCLITraceSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the CLI tools")
	}
	bin := buildTools(t)
	work := t.TempDir()
	src := filepath.Join(work, "prog.s")
	if err := os.WriteFile(src, []byte(cliProg), 0o644); err != nil {
		t.Fatal(err)
	}
	relfPath := filepath.Join(work, "prog.relf")
	hardPath := filepath.Join(work, "prog.hard.relf")
	if out, code := runTool(t, bin, "rfasm", "-o", relfPath, src); code != 0 {
		t.Fatal(out)
	}
	if out, code := runTool(t, bin, "redfat", "-o", hardPath, relfPath); code != 0 {
		t.Fatal(out)
	}

	// Error path: the forensic report must attribute the fault.
	out, code := runTool(t, bin, "rfvm", "-hardened", "-abort", "-forensics",
		"-forensics-json", "-input", "40", hardPath)
	if code == 0 {
		t.Fatalf("attack run not detected: %s", out)
	}
	for _, want := range []string{
		"==redfat== ERROR: out-of-bounds write",
		"280 bytes past the end of a 40-byte object",
		"allocated at main+",
		`"relation": "past-end"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("forensic output missing %q:\n%s", want, out)
		}
	}

	// Benign path: profile + folded + trace export.
	foldedPath := filepath.Join(work, "prog.folded")
	tracePath := filepath.Join(work, "trace.json")
	out, code = runTool(t, bin, "rfvm", "-hardened", "-profile-guest",
		"-profile-interval", "16", "-folded", foldedPath, "-trace-out", tracePath,
		"-input", "2", hardPath)
	if code != 0 {
		t.Fatalf("profiled run: %d %s", code, out)
	}
	if !strings.Contains(out, "guest profile:") {
		t.Errorf("hot-site table missing:\n%s", out)
	}
	folded, err := os.ReadFile(foldedPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(string(folded)), "\n") {
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed folded line %q", line)
		}
		if _, err := strconv.ParseUint(line[i+1:], 10, 64); err != nil {
			t.Errorf("folded count in %q: %v", line, err)
		}
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("trace JSON has no events")
	}
}

// TestCLIRunpackSmoke drives the runpack workflow end to end through the
// real tools: capture a detection run with rfvm -runpack, verify the pack,
// replay it byte-for-byte, catch a tampered member, round-trip through a
// tarball, and replay a redfat rewrite pack. `make replay-smoke` runs
// exactly this test (plus the internal/runpack tamper matrix).
func TestCLIRunpackSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the CLI tools")
	}
	bin := buildTools(t)
	work := t.TempDir()
	src := filepath.Join(work, "prog.s")
	if err := os.WriteFile(src, []byte(cliProg), 0o644); err != nil {
		t.Fatal(err)
	}
	relfPath := filepath.Join(work, "prog.relf")
	hardPath := filepath.Join(work, "prog.hard.relf")
	if out, code := runTool(t, bin, "rfasm", "-o", relfPath, src); code != 0 {
		t.Fatal(out)
	}
	if out, code := runTool(t, bin, "redfat", "-o", hardPath, relfPath); code != 0 {
		t.Fatal(out)
	}

	// Detection run: packed, and the stable exit code names the kind.
	packDir := filepath.Join(work, "pack")
	out, code := runTool(t, bin, "rfvm", "-hardened", "-abort", "-runpack", packDir,
		"-input", "40", hardPath)
	if code != 10 {
		t.Fatalf("attack run exit = %d, want 10 (OOB write): %s", code, out)
	}
	// Benign run: exit 0.
	if out, code := runTool(t, bin, "rfvm", "-hardened", "-input", "2", hardPath); code != 0 {
		t.Fatalf("benign run exit = %d: %s", code, out)
	}

	out, code = runTool(t, bin, "rfpack", "verify", packDir)
	if code != 0 || !strings.Contains(out, "verified OK") {
		t.Fatalf("rfpack verify: %d %s", code, out)
	}
	out, code = runTool(t, bin, "rfpack", "replay", packDir)
	if code != 0 || !strings.Contains(out, "byte-identical") {
		t.Fatalf("rfpack replay: %d %s", code, out)
	}
	out, code = runTool(t, bin, "rfpack", "show", packDir)
	if code != 0 || !strings.Contains(out, `"kind": "run"`) {
		t.Fatalf("rfpack show: %d %s", code, out)
	}

	// Deterministic tarball round-trip.
	tgz := filepath.Join(work, "pack.tgz")
	if out, code := runTool(t, bin, "rfpack", "tar", packDir, tgz); code != 0 {
		t.Fatalf("rfpack tar: %d %s", code, out)
	}
	if out, code := runTool(t, bin, "rfpack", "verify", tgz); code != 0 {
		t.Fatalf("rfpack verify tarball: %d %s", code, out)
	}

	// A flipped byte in the packed reports fails verification with the
	// documented digest-mismatch code.
	reports := filepath.Join(packDir, "reports.json")
	data, err := os.ReadFile(reports)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(reports, data, 0o644); err != nil {
		t.Fatal(err)
	}
	out, code = runTool(t, bin, "rfpack", "verify", packDir)
	if code != 3 {
		t.Fatalf("tampered verify exit = %d, want 3: %s", code, out)
	}

	// Rewrite packs replay too: re-hardening reproduces the image.
	rwDir := filepath.Join(work, "rwpack")
	if out, code := runTool(t, bin, "redfat", "-o", hardPath, "-runpack", rwDir, relfPath); code != 0 {
		t.Fatalf("redfat -runpack: %d %s", code, out)
	}
	out, code = runTool(t, bin, "rfpack", "replay", rwDir)
	if code != 0 || !strings.Contains(out, "byte-identical") {
		t.Fatalf("rewrite replay: %d %s", code, out)
	}
}

// obsProg is a hot hardened loop: enough iterations to compile a trace
// at a low threshold, a checked store inside it, and a RET that ends the
// trace with a halt deopt — so every introspection surface is non-empty.
const obsProg = `
.func main
    mov $40, %rdi
    call @malloc
    mov %rax, %rbx
    mov $0, %rcx
loop:
    mov %rcx, (%rbx)
    add $1, %rcx
    cmp $200, %rcx
    jl loop
    mov $0, %rax
    ret
`

// TestCLIObsSmoke scrapes a live rfvm -listen process: it parses the
// bound address off stderr, waits for the run-complete marker, then hits
// all five introspection endpoints and checks each serves its documented
// format with real run data (stripped metrics, a compiled trace with a
// deopt histogram, a populated flight ring). `make obs-smoke` runs
// exactly this test plus the internal/obs golden suite.
func TestCLIObsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the CLI tools")
	}
	bin := buildTools(t)
	work := t.TempDir()
	src := filepath.Join(work, "prog.s")
	if err := os.WriteFile(src, []byte(obsProg), 0o644); err != nil {
		t.Fatal(err)
	}
	relfPath := filepath.Join(work, "prog.relf")
	hardPath := filepath.Join(work, "prog.hard.relf")
	if out, code := runTool(t, bin, "rfasm", "-o", relfPath, src); code != 0 {
		t.Fatal(out)
	}
	if out, code := runTool(t, bin, "redfat", "-o", hardPath, relfPath); code != 0 {
		t.Fatal(out)
	}

	cmd := exec.Command(filepath.Join(bin, "rfvm"),
		"-hardened", "-stats", "-jit-threshold", "2", "-listen", "127.0.0.1:0", hardPath)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	// The server announces its bound address, then the run-complete
	// marker once the guest has finished and the final state is published.
	var addr string
	ready := false
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "rfvm: listening on http://"); ok {
			addr = rest
		}
		if strings.Contains(line, "run complete; serving introspection") {
			ready = true
			break
		}
	}
	if !ready || addr == "" {
		t.Fatalf("no listen/ready markers on stderr (addr %q, err %v)", addr, sc.Err())
	}

	get := func(path string) []byte {
		t.Helper()
		client := &http.Client{Timeout: 5 * time.Second}
		resp, err := client.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d, %v: %s", path, resp.StatusCode, err, body)
		}
		return body
	}

	metrics := string(get("/metrics"))
	if !strings.Contains(metrics, "# TYPE redfat_vm_retired_total counter") {
		t.Errorf("/metrics is not Prometheus exposition:\n%s", metrics)
	}
	if strings.Contains(metrics, "_ns ") || strings.Contains(metrics, "_ms ") {
		t.Errorf("/metrics leaks host wall-clock series:\n%s", metrics)
	}
	if !strings.Contains(metrics, "redfat_vm_jit_deopt_halt_count") {
		t.Errorf("/metrics missing the per-reason deopt counters:\n%s", metrics)
	}

	var snap struct {
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.Unmarshal(get("/snapshot"), &snap); err != nil {
		t.Fatalf("/snapshot does not parse: %v", err)
	}
	if snap.Counters["vm.retired.total"] == 0 || snap.Counters["check.execs"] == 0 {
		t.Errorf("/snapshot counters empty: %v", snap.Counters)
	}

	var table struct {
		SchemaVersion int `json:"schema_version"`
		Traces        []struct {
			Symbol  string `json:"symbol"`
			Entries uint64 `json:"entries"`
			Deopts  []struct {
				Reason string `json:"reason"`
				Count  uint64 `json:"count"`
			} `json:"deopts"`
		} `json:"traces"`
	}
	if err := json.Unmarshal(get("/traces"), &table); err != nil {
		t.Fatalf("/traces does not parse: %v", err)
	}
	if len(table.Traces) == 0 {
		t.Fatal("/traces empty after a hot loop at threshold 2")
	}
	if tr := table.Traces[0]; tr.Entries == 0 || len(tr.Deopts) == 0 ||
		!strings.HasPrefix(tr.Symbol, "main") {
		t.Errorf("/traces row lacks run data: %+v", tr)
	}

	// Guest profiling pins execution to tier 0, so it is off by default
	// under -listen: /profile must answer, but empty.
	if profile := get("/profile"); len(profile) != 0 {
		t.Errorf("/profile non-empty without -profile-guest: %q", profile)
	}

	var dump struct {
		Total  uint64 `json:"total"`
		Events []struct {
			Kind string `json:"kind"`
		} `json:"events"`
	}
	if err := json.Unmarshal(get("/flight"), &dump); err != nil {
		t.Fatalf("/flight does not parse: %v", err)
	}
	if dump.Total == 0 || len(dump.Events) == 0 {
		t.Errorf("/flight ring empty after the run: %+v", dump)
	}
	kinds := map[string]bool{}
	for _, e := range dump.Events {
		kinds[e.Kind] = true
	}
	if !kinds["trace-enter"] || !kinds["deopt"] {
		t.Errorf("/flight missing tier events, saw kinds %v", kinds)
	}

	// A second process with explicit profiling serves the folded
	// flamegraph (and, being pinned to tier 0, an empty trace table).
	cmd2 := exec.Command(filepath.Join(bin, "rfvm"),
		"-hardened", "-profile-guest", "-profile-interval", "16",
		"-listen", "127.0.0.1:0", hardPath)
	stderr2, err := cmd2.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd2.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd2.Process.Kill()
		cmd2.Wait()
	}()
	addr = ""
	ready = false
	sc = bufio.NewScanner(stderr2)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "rfvm: listening on http://"); ok {
			addr = rest
		}
		if strings.Contains(line, "run complete; serving introspection") {
			ready = true
			break
		}
	}
	if !ready || addr == "" {
		t.Fatalf("profiled process: no listen/ready markers (addr %q, err %v)", addr, sc.Err())
	}
	profile := strings.TrimSpace(string(get("/profile")))
	if profile == "" {
		t.Fatal("/profile empty with -profile-guest")
	}
	for _, line := range strings.Split(profile, "\n") {
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed folded profile line %q", line)
		}
		if _, err := strconv.ParseUint(line[i+1:], 10, 64); err != nil {
			t.Errorf("folded count in %q: %v", line, err)
		}
	}
}

// TestCLIProfileWorkflow drives rfprofile end to end, including the
// fuzz-boosted variant.
func TestCLIProfileWorkflow(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the CLI tools")
	}
	bin := buildTools(t)
	work := t.TempDir()
	// The anti-idiom program: naive hardening false-positives on it.
	src := `
.func main
    mov $128, %rdi
    call @malloc
    mov %rax, %rbx
    sub $64, %rbx
    call @rf_input
    mov $1, %rcx
    movb %rcx, (%rbx,%rax,1)
    mov $0, %rax
    ret
`
	srcPath := filepath.Join(work, "anti.s")
	if err := os.WriteFile(srcPath, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	relfPath := filepath.Join(work, "anti.relf")
	allowPath := filepath.Join(work, "allow.lst")
	hardPath := filepath.Join(work, "anti.hard.relf")

	if out, code := runTool(t, bin, "rfasm", "-o", relfPath, srcPath); code != 0 {
		t.Fatal(out)
	}
	out, code := runTool(t, bin, "rfprofile",
		"-tests", "64;100;190", "-allowlist", allowPath, "-harden", hardPath, relfPath)
	if code != 0 {
		t.Fatalf("rfprofile: %s", out)
	}
	data, err := os.ReadFile(allowPath)
	if err != nil || !strings.HasPrefix(string(data), "redfat-allowlist v1") {
		t.Fatalf("allow-list file: %v %q", err, data)
	}
	// The production binary runs the anti-idiom input cleanly.
	out, code = runTool(t, bin, "rfvm", "-hardened", "-abort", "-input", "70", hardPath)
	if code != 0 || strings.Contains(out, "detected") {
		t.Fatalf("production run false-positived: %s", out)
	}
	// Fuzz-boosted variant also works.
	out, code = runTool(t, bin, "rfprofile",
		"-tests", "64", "-fuzz", "30", "-allowlist", allowPath, relfPath)
	if code != 0 || !strings.Contains(out, "fuzzing:") {
		t.Fatalf("rfprofile -fuzz: %d %s", code, out)
	}
}

// TestCLIGen exercises rfgen and feeds one generated binary back through
// the pipeline.
// TestCLIEdgeAuditSmoke drives the indirect-edge audit end to end: emit
// the switch-dense corpus and the broken-jump-table negative corpus with
// rfgen, audit every original with rfverify -edges (the adversarial
// binaries pass by staying Unknown — no claims, nothing unsound), and
// run full translation validation on the marker-built benchmarks under
// both -noindirect settings. `make edge-audit-smoke` runs exactly this
// test plus the seeded unsound-edge mutant suite in internal/verify.
func TestCLIEdgeAuditSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the CLI tools")
	}
	bin := buildTools(t)
	work := t.TempDir()
	if out, code := runTool(t, bin, "rfgen", "-switch", "-o", work); code != 0 {
		t.Fatalf("rfgen -switch: %d %s", code, out)
	}
	if out, code := runTool(t, bin, "rfgen", "-adversarial", "-o", work); code != 0 {
		t.Fatalf("rfgen -adversarial: %d %s", code, out)
	}
	for _, name := range []string{"interp", "fsm", "jtoverclaim", "jtunaligned", "jtdecoy"} {
		orig := filepath.Join(work, name+".relf")
		if out, code := runTool(t, bin, "rfverify", "-edges", orig); code != 0 {
			t.Errorf("rfverify -edges %s: %d %s", name, code, out)
		}
	}
	for _, name := range []string{"interp", "fsm"} {
		orig := filepath.Join(work, name+".relf")
		for _, noind := range []string{"-noindirect=false", "-noindirect=true"} {
			hard := filepath.Join(work, name+".hard.relf")
			if out, code := runTool(t, bin, "redfat", noind, "-o", hard, orig); code != 0 {
				t.Fatalf("redfat %s %s: %d %s", noind, name, code, out)
			}
			if out, code := runTool(t, bin, "rfverify", "-orig", orig, hard); code != 0 {
				t.Errorf("rfverify -orig %s (%s): %d %s", name, noind, code, out)
			}
		}
	}
}

func TestCLIGen(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the CLI tools")
	}
	bin := buildTools(t)
	work := t.TempDir()
	out, code := runTool(t, bin, "rfgen", "-cve", "-o", work)
	if code != 0 || !strings.Contains(out, "wrote 4 binaries") {
		t.Fatalf("rfgen: %d %s", code, out)
	}
	cve := filepath.Join(work, "CVE-2012-4295.relf")
	hard := filepath.Join(work, "CVE-2012-4295.hard.relf")
	if out, code := runTool(t, bin, "redfat", "-o", hard, cve); code != 0 {
		t.Fatal(out)
	}
	// The stored attack input triggers detection.
	input, err := os.ReadFile(filepath.Join(work, "CVE-2012-4295.input"))
	if err != nil {
		t.Fatal(err)
	}
	vals := strings.ReplaceAll(strings.TrimSpace(string(input)), "\n", ",")
	out, code = runTool(t, bin, "rfvm", "-hardened", "-abort", "-input", vals, hard)
	if code == 0 || !strings.Contains(out, "out-of-bounds") {
		t.Fatalf("CVE not detected via CLI: %d %s", code, out)
	}
}
