// Chrome-scale instrumentation (paper §7.3).
//
// Generates a large Chrome-like binary (thousands of functions, indirect
// calls through jump tables), hardens every write with the combined
// (Redzone)+(LowFat) check, prints the rewriting statistics, and runs a
// mini Kraken benchmark sweep comparing baseline and hardened cycles.
//
// Run with: go run ./examples/chrome-scale [-fillers 8000]
package main

import (
	"flag"
	"fmt"
	"log"

	"redfat"
	"redfat/internal/bench"
	"redfat/internal/kraken"
)

func main() {
	fillers := flag.Int("fillers", 8000, "filler function count (binary size knob)")
	scale := flag.Uint64("scale", 800, "Kraken workload scale")
	flag.Parse()

	bin, err := kraken.Build(*fillers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chrome-like image: %d KB of text, %d functions, stripped\n",
		len(bin.Text().Data)/1024, *fillers+2*len(kraken.Benchmarks)+1)

	opt := redfat.Defaults()
	opt.CheckReads = false // §7.3: write protection
	hard, rep, err := redfat.Harden(bin, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instrumented: %s\n\n", rep)

	fmt.Printf("%-22s %10s %10s %9s\n", "kraken benchmark", "baseline", "hardened", "overhead")
	var slows []float64
	for i, name := range kraken.Benchmarks {
		input := []uint64{uint64(i), *scale}
		base, err := redfat.Run(bin, redfat.RunOptions{Input: input})
		if err != nil {
			log.Fatal(err)
		}
		hv, err := redfat.Run(hard, redfat.RunOptions{
			Input: input, Hardened: true, AbortOnError: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		if hv.ExitCode != base.ExitCode {
			log.Fatalf("%s: checksum mismatch", name)
		}
		s := float64(hv.Cycles) / float64(base.Cycles)
		slows = append(slows, s)
		fmt.Printf("%-22s %10d %10d %8.0f%%\n", name, base.Cycles, hv.Cycles, s*100)
	}
	fmt.Printf("%-22s %21s %8.0f%%\n", "Geometric Mean", "", bench.GeoMean(slows)*100)
}
