// Quickstart: assemble a toy vulnerable program, harden it with RedFat,
// and watch an attacker-controlled out-of-bounds write get caught while
// benign executions run unchanged.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"redfat"
)

// A tiny "network service": it allocates a 5-element table and writes an
// entry at a request-controlled index — the classic CWE-787 shape.
const src = `
.func main
    mov $40, %rdi            ; table = malloc(5 * 8)
    call @malloc
    mov %rax, %rbx
    call @rf_input           ; index from the request
    mov $1337, %rcx
    mov %rcx, (%rbx,%rax,8)  ; table[index] = 1337
    mov (%rbx,%rax,8), %rax  ; return table[index]
    ret
`

func main() {
	bin, err := redfat.Assemble(src)
	if err != nil {
		log.Fatal(err)
	}

	// Step 1: the original binary. The out-of-bounds write at index 40
	// lands far past the allocation — and nothing notices.
	res, err := redfat.Run(bin, redfat.RunOptions{Input: []uint64{40}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("original binary, index 40 (out of bounds): exit=%d — silently corrupted the heap\n",
		res.ExitCode)

	// Step 2: harden. One call; the result is a drop-in replacement.
	hard, rep, err := redfat.Harden(bin, redfat.Defaults())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hardened: %s\n", rep)

	// Step 3: benign request — same behaviour, modest overhead. Telemetry
	// rides along: counters from the VM, allocator and check runtime.
	metrics := redfat.NewMetrics()
	res, err = redfat.Run(hard, redfat.RunOptions{
		Input: []uint64{2}, Hardened: true, AbortOnError: true,
		Metrics: metrics,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hardened binary, index 2 (in bounds): exit=%d, no alarms\n", res.ExitCode)
	fmt.Printf("telemetry: %d instructions retired, %d checks run, %d heap allocs\n",
		metrics.CounterValue("vm.retired.total"),
		metrics.CounterValue("check.execs"),
		metrics.CounterValue("lowfat.allocs"))

	// Step 4: the attack.
	_, err = redfat.Run(hard, redfat.RunOptions{
		Input: []uint64{40}, Hardened: true, AbortOnError: true,
	})
	if me, ok := err.(*redfat.MemError); ok {
		fmt.Printf("hardened binary, index 40: DETECTED %v\n", me)
		return
	}
	log.Fatalf("attack was not detected: %v", err)
}
