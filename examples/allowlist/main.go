// The two-phase allow-list workflow (paper §5, Fig. 5).
//
// This program contains the C anti-idiom that breaks naive low-fat
// checking: an intentionally out-of-bounds base pointer (array − K), the
// pattern gfortran generates for non-zero array lower bounds. Naive full
// hardening false-positives on it. The profile-based workflow finds the
// problematic operation, drops it to redzone-only checking, and keeps
// full protection everywhere else.
//
// Run with: go run ./examples/allowlist
package main

import (
	"fmt"
	"log"

	"redfat"
)

// Fortran-style: REAL, DIMENSION(100:227) :: fqy — the compiler
// normalizes the base pointer to fqy−100 (paper §7.1).
const src = `
.func main
    mov $128, %rdi
    call @malloc
    mov %rax, %r12            ; the real object
    mov %rax, %rbx
    sub $100, %rbx            ; fqy − 100: intentional OOB pointer
    call @rf_input            ; index, valid range [100, 227]
    mov $1, %rcx
    movb %rcx, (%rbx,%rax,1)  ; fqy(i) = 1      ← LowFat false positive
    mov %rcx, (%r12)          ; idiomatic store ← always fine
    mov (%r12), %rax
    ret
`

func main() {
	bin, err := redfat.Assemble(src)
	if err != nil {
		log.Fatal(err)
	}
	validInput := []uint64{150}

	// Naive full hardening: the valid Fortran access trips the LowFat
	// check — a false positive.
	naive, _, err := redfat.Harden(bin, redfat.Defaults())
	if err != nil {
		log.Fatal(err)
	}
	_, err = redfat.Run(naive, redfat.RunOptions{
		Input: validInput, Hardened: true, AbortOnError: true,
	})
	if me, ok := err.(*redfat.MemError); ok {
		fmt.Printf("naive full hardening: FALSE POSITIVE on a valid access: %v\n", me)
	} else {
		log.Fatalf("expected a false positive, got %v", err)
	}

	// The workflow: profile against a test suite, then re-instrument.
	testSuite := [][]uint64{{100}, {163}, {227}}
	hard, allow, rep, err := redfat.ProfileAndHarden(bin, testSuite, redfat.Defaults())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiling over %d tests: %d operations allow-listed\n",
		len(testSuite), len(allow))
	fmt.Printf("production binary: %d checks, %d full lowfat+redzone, %d redzone-only\n",
		rep.Checks, rep.FullChecks, rep.Checks-rep.FullChecks)

	res, err := redfat.Run(hard, redfat.RunOptions{
		Input: validInput, Hardened: true, AbortOnError: true,
	})
	if err != nil {
		log.Fatalf("production binary still false-positives: %v", err)
	}
	fmt.Printf("production run, fqy(150): exit=%d, coverage %.0f%%, no false alarms\n",
		res.ExitCode, res.Coverage*100)

	// And the protection still works: an actual overflow through the
	// idiomatic pointer is caught by the allow-listed full check.
	_, err = redfat.Run(hard, redfat.RunOptions{
		Input: []uint64{100 + 500}, Hardened: true, AbortOnError: true,
	})
	if me, ok := err.(*redfat.MemError); ok {
		fmt.Printf("real overflow (index 600): still DETECTED: %v\n", me)
		return
	}
	log.Fatalf("real overflow missed: %v", err)
}
