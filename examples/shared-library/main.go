// Shared-library hardening (paper §7.4).
//
// RedFat statically rewrites individual binaries, so in a dynamically
// linked program only the modules you instrument are protected. This
// example builds an executable that calls into libparser.so (which has
// the bug), and shows:
//
//  1. hardening only the main executable: the overflow inside the
//     library goes undetected — the paper's stated limitation;
//  2. additionally hardening the library (the paper's recommended
//     workflow): the same attack is caught, with a diagnostic pointing
//     into the library.
//
// Run with: go run ./examples/shared-library
package main

import (
	"fmt"
	"log"

	"redfat"
)

// libparser.so: an exported parse_field(buf, idx) that writes without a
// bounds check. Built at library addresses, away from the executable.
const libSrc = `
.func parse_field
    mov $0x41, %rcx
    mov %rcx, (%rdi,%rsi,8)   ; buf[idx] = 'A' — no bounds check
    mov $0, %rax
    ret
`

// The executable: allocates a 40-byte record plus a neighbour, reads the
// field index from the request, and calls the library.
const mainSrc = `
.func main
    mov $40, %rdi
    call @malloc
    mov %rax, %rbx
    mov $40, %rdi
    call @malloc              ; adjacent victim object
    call @rf_input            ; attacker-controlled field index
    mov %rax, %rsi
    mov %rbx, %rdi
    call @parse_field
    mov $0, %rax
    ret
`

func main() {
	// Libraries are placed before hardening (like prelinking a DSO for
	// its load address), so instrumentation metadata needs no relocation.
	lib, err := buildAt(libSrc, 0x5000000, 0x5200000)
	if err != nil {
		log.Fatal(err)
	}
	exe, err := redfat.Assemble(mainSrc)
	if err != nil {
		log.Fatal(err)
	}
	attack := []uint64{8} // skips the redzone into the victim object

	hardExe, _, err := redfat.Harden(exe, redfat.Defaults())
	if err != nil {
		log.Fatal(err)
	}

	// 1. Main hardened, library not: the access happens inside the
	// uninstrumented library → undetected.
	res, err := redfat.RunLinked(hardExe, []*redfat.Binary{lib},
		redfat.RunOptions{Input: attack, Hardened: true, AbortOnError: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("main hardened, libparser NOT: %d errors — the library is unprotected (§7.4)\n",
		len(res.Errors))

	// 2. Harden the library too.
	hardLib, rep, err := redfat.Harden(lib, redfat.Defaults())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instrumenting libparser.so separately: %d checks\n", rep.Checks)
	_, err = redfat.RunLinked(hardExe, []*redfat.Binary{hardLib},
		redfat.RunOptions{Input: attack, Hardened: true, AbortOnError: true})
	if me, ok := err.(*redfat.MemError); ok {
		fmt.Printf("main + libparser hardened: DETECTED %v\n", me)
		fmt.Printf("   %s\n", me.Note)
		return
	}
	log.Fatalf("library overflow not detected: %v", err)
}

// buildAt assembles library source at the given text/data bases by
// prepending nothing — the text assembler always uses default bases, so
// we rebase the PIC-agnostic way: assemble, then slide the image.
func buildAt(src string, textBase, dataBase uint64) (*redfat.Binary, error) {
	bin, err := redfat.Assemble(src)
	if err != nil {
		return nil, err
	}
	// The default text base is 0x400000; slide the whole image up to the
	// library region (all code is position-independent-by-construction
	// here: no absolute data references).
	bin.Rebase(textBase - 0x400000)
	_ = dataBase
	return bin, nil
}
