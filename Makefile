GO ?= go

.PHONY: check fmt vet build test bench-smoke clean

# check is the tier-1 gate: formatting, static analysis, build, tests.
check: fmt vet build test

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt: files need formatting:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# bench-smoke regenerates a down-scaled Table 1 with JSON export, as a
# fast end-to-end exercise of the experiment harness.
bench-smoke:
	$(GO) run ./cmd/rfbench -table1 -scale 0.02 -json results/bench.json

clean:
	rm -rf results
