GO ?= go

.PHONY: check fmt vet rfvet build test race perf-smoke trace-smoke replay-smoke obs-smoke edge-audit-smoke bench-smoke bench-host bench-history clean

# check is the tier-1 gate: formatting, static analysis (go vet plus the
# repo-specific rfvet rules), build, tests (which include the TLB perf
# smoke, see perf-smoke), a race-detector pass over the concurrent
# harness (short mode), the runpack replay smoke, the live introspection
# smoke, and the indirect-edge audit smoke.
check: fmt vet rfvet build test race replay-smoke obs-smoke edge-audit-smoke

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt: files need formatting:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# rfvet enforces repo conventions plain vet cannot: telemetry metric
# naming (<pkg>.<noun>.<verb>) and deterministic iteration in table and
# report emitters. See cmd/rfvet.
rfvet:
	$(GO) run ./cmd/rfvet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

# perf-smoke runs the host fast-path guards in isolation: the
# software-TLB access path must not be slower than the raw page-map walk,
# the superblock tier must beat the block interpreter by ≥20%, and the
# always-on flight recorder must stay within 3% of a bare hot loop
# (relative comparisons, so they are stable on loaded CI hosts), and the
# span-checked memcpy intrinsic must beat the per-access-checked guest
# loop by ≥5x in deterministic guest cycles. The same tests run as part
# of `make test` / `make check`; `-short` skips them.
perf-smoke:
	$(GO) test -run TestPerfSmokeTLB -v ./internal/mem/
	$(GO) test -run 'TestPerfSmokeJIT|TestPerfSmokeFlight' -v ./internal/vm/
	$(GO) test -run TestPerfSmokeLibcSpan -v ./internal/bench/

# trace-smoke drives the forensics/profiling CLI flags end to end and
# validates that the emitted Chrome trace JSON and folded stacks parse.
# (The same test also runs as part of `make test` / `make check`.)
trace-smoke:
	$(GO) test -run TestCLITraceSmoke -v .

# replay-smoke exercises the runpack contract end to end: capture a
# detection run as a digest-signed pack, verify it, replay it to
# byte-identical reports and cycle counts, and prove every seeded tamper
# mode fails verification with its documented exit code. See DESIGN.md §13.
replay-smoke:
	$(GO) test -run 'TestCLIRunpackSmoke|TestVerifyDetectsTampering|TestRunPackVerifiesAndReplaysByteIdentical' -v . ./internal/runpack/

# obs-smoke exercises the live introspection surface: the golden-pinned
# endpoint formats, the flight-recorder semantics, and a scrape of all
# five endpoints on a live `rfvm -listen` process. See DESIGN.md §15.
obs-smoke:
	$(GO) test -run 'TestEndpoints|TestFlight|TestServerBeforePublish' -v ./internal/obs/
	$(GO) test -run TestCLIObsSmoke -v .

# edge-audit-smoke drives the indirect-flow recovery contract end to
# end: rfgen emits the switch-dense and broken-jump-table corpora,
# rfverify -edges audits every recovered edge on each original, full
# translation validation runs under both -noindirect settings, and every
# seeded unsound-edge mutant class must be rejected. See DESIGN.md §17.
edge-audit-smoke:
	$(GO) test -run TestCLIEdgeAuditSmoke -v .
	$(GO) test -run TestEdgeAudit -v ./internal/verify/

# bench-smoke regenerates a down-scaled Table 1 with JSON export, as a
# fast end-to-end exercise of the experiment harness.
bench-smoke:
	$(GO) run ./cmd/rfbench -table1 -scale 0.02 -json results/bench.json

# bench-host measures host wall-clock performance (VM dispatch strategies,
# guest-memory TLB, block chaining, the superblock tier, worker-pool
# scaling) and records it in results/BENCH_host.json.
bench-host:
	$(GO) run ./cmd/rfbench -hostbench -progress=false

# bench-history appends the current revision's down-scaled Table 1 +
# detection matrix to the trajectory series in results/history/ (and
# captures the same document as a verifiable runpack). Compare two
# entries with: rfbench ... -baseline results/history/BENCH_<rev>.json
bench-history:
	$(GO) run ./cmd/rfbench -table1 -table2 -scale 0.02 -progress=false \
		-runpack results/runpack-bench -history results/history

clean:
	rm -rf results
