package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"

	"redfat/internal/telemetry"
)

// DeoptCount is one reason bucket of a trace's deopt histogram. Only
// nonzero reasons are rendered, in enum order, so the table is compact
// and byte-deterministic.
type DeoptCount struct {
	Reason string `json:"reason"`
	Count  uint64 `json:"count"`
}

// TraceRow is one compiled superblock in the /traces table: the guest PC
// range it covers, its shape (steps, fused checks, elided followers),
// and its runtime history (entries, per-reason deopts). Symbol names the
// entry PC when a symbolizer was available.
type TraceRow struct {
	EntryPC uint64       `json:"entry_pc"`
	EndPC   uint64       `json:"end_pc"`
	Symbol  string       `json:"symbol,omitempty"`
	Steps   int          `json:"steps"`
	Checks  int          `json:"checks"`
	Elided  int          `json:"elided"`
	Entries uint64       `json:"entries"`
	Deopts  []DeoptCount `json:"deopts,omitempty"`
}

// TraceTable is the /traces response document.
type TraceTable struct {
	SchemaVersion int        `json:"schema_version"`
	Traces        []TraceRow `json:"traces"`
}

// State is one published introspection snapshot: plain data assembled by
// the layer that owns the VM (cmd/rfvm, cmd/rfbench, the root API), so
// this package needs no knowledge of VMs, symbolizers or profilers.
type State struct {
	Telemetry *telemetry.Snapshot // served by /metrics and /snapshot
	Traces    []TraceRow          // served by /traces
	Profile   string              // folded stacks, served by /profile
	Flight    *FlightDump         // served by /flight
}

// Server is the live introspection endpoint. Publish replaces the
// current State atomically (publish immutable snapshots — handlers read
// them concurrently without copying). The server never touches a live
// Flight ring: a Flight is single-goroutine like the VM it observes, so
// the owner dumps it (on the VM goroutine, or after Run) and publishes
// the dump in State.Flight; until then /flight serves the empty window.
type Server struct {
	mu    sync.RWMutex
	state *State
}

// NewServer returns a server holding an empty pre-run snapshot, so every
// endpoint answers (with empty documents) before the first Publish.
func NewServer() *Server {
	return &Server{state: &State{
		Telemetry: (*telemetry.Registry)(nil).Snapshot(),
		Flight:    (*Flight)(nil).Dump(),
	}}
}

// Publish installs a new snapshot for the read endpoints. The caller
// must not mutate st afterwards.
func (s *Server) Publish(st *State) {
	if st == nil {
		return
	}
	if st.Telemetry == nil {
		st.Telemetry = (*telemetry.Registry)(nil).Snapshot()
	}
	if st.Flight == nil {
		st.Flight = (*Flight)(nil).Dump()
	}
	s.mu.Lock()
	s.state = st
	s.mu.Unlock()
}

// current returns the published snapshot.
func (s *Server) current() *State {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.state
}

// Handler returns the introspection mux:
//
//	/metrics  — Prometheus text exposition of the published telemetry
//	/snapshot — the published telemetry snapshot as stable JSON
//	/traces   — the JIT trace table (TraceTable JSON)
//	/profile  — the guest profile as folded stacks (text)
//	/flight   — the published flight-recorder window (FlightDump JSON)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "redfat introspection\n\n/metrics\n/snapshot\n/traces\n/profile\n/flight\n")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.current().Telemetry.WritePrometheus(w)
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.current().Telemetry)
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		st := s.current()
		table := &TraceTable{SchemaVersion: SchemaVersion, Traces: st.Traces}
		if table.Traces == nil {
			table.Traces = []TraceRow{}
		}
		writeJSON(w, table)
	})
	mux.HandleFunc("/profile", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, s.current().Profile)
	})
	mux.HandleFunc("/flight", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		s.current().Flight.WriteJSON(w)
	})
	return mux
}

// writeJSON writes v as the same indented-JSON-plus-newline byte shape
// the runpack members use, so endpoint output is golden-testable.
func writeJSON(w http.ResponseWriter, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(data, '\n'))
}

// Serve answers introspection requests on l until the listener closes.
// Callers typically run it on its own goroutine for the life of the
// process (rfvm -listen, rfbench -listen).
func Serve(l net.Listener, s *Server) error {
	return http.Serve(l, s.Handler())
}
