// Package obs is the live-observability layer: an always-on flight
// recorder (a fixed-size, allocation-free ring of recent VM events) and
// an HTTP introspection server that exposes telemetry, the JIT trace
// table, the guest profile and the flight ring over five endpoints.
//
// The package is a leaf — it depends only on the standard library and
// internal/telemetry — so the VM and guest-memory layers can record into
// a Flight without import cycles. Everything recorded is keyed to guest
// cycles, never host time, so the ring's content is a pure function of
// the binary, input and knobs: attaching a recorder perturbs neither
// guest cycle accounting nor detections (the same bit-identity contract
// telemetry and forensics already uphold), and two runs of the same work
// dump byte-identical rings.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// SchemaVersion versions the flight-dump and trace-table JSON shapes.
const SchemaVersion = 1

// EventKind classifies one flight-recorder event.
type EventKind uint8

// Flight event kinds. Reason and Arg are kind-specific (documented per
// kind); PC is the guest PC the event is attributed to, 0 when none
// applies.
const (
	EvBlockEntry EventKind = iota // a basic block was looked up uncached (Arg: build=1, cache hit=0)
	EvTraceEnter                  // dispatch entered a compiled trace (PC: trace entry)
	EvJITCompile                  // a trace was compiled (PC: entry, Arg: steps)
	EvDeopt                       // a trace deopted to the interpreter (Reason: vm.DeoptReason, PC: resume RIP, Arg: trace entry)
	EvTLBFlush                    // guest-memory TLB invalidation (PC: first affected address, Arg: pages)
	EvICacheGen                   // icache generation bump: blocks, chains and traces dropped
	EvCheckFail                   // a memory error was reported (Reason: vm.MemErrorKind, PC: fault site, Arg: fault address)
	EvBudgetPoll                  // the cycle budget expired (PC: abort RIP, Arg: cycles at abort)
	numEventKinds
)

// String names the event kind as the dump renders it.
func (k EventKind) String() string {
	switch k {
	case EvBlockEntry:
		return "block-entry"
	case EvTraceEnter:
		return "trace-enter"
	case EvJITCompile:
		return "jit-compile"
	case EvDeopt:
		return "deopt"
	case EvTLBFlush:
		return "tlb-flush"
	case EvICacheGen:
		return "icache-gen"
	case EvCheckFail:
		return "check-fail"
	case EvBudgetPoll:
		return "budget-abort"
	}
	return "event?"
}

// Event is one recorded occurrence. Cycles is the guest cycle counter at
// record time (0 before the VM binds it), so ordering and spacing are
// meaningful in guest time, not wall time.
type Event struct {
	Seq    uint64
	Cycles uint64
	Kind   EventKind
	Reason uint8
	PC     uint64
	Arg    uint64
}

// DefaultFlightCapacity sizes the ring when the caller passes none. 1024
// events (~48 KiB) comfortably covers the window between "something went
// wrong" and the dump.
const DefaultFlightCapacity = 1024

// Flight is the always-on flight recorder: a preallocated ring that
// overwrites oldest-first. Record is allocation-free and safe on a nil
// receiver, so the VM hot paths can call it unconditionally. A Flight is
// single-goroutine like the VM it observes; dump under the same
// discipline (after Run, or from the VM goroutine).
type Flight struct {
	ring    []Event
	seq     uint64
	cycles  *uint64
	labeler func(kind EventKind, reason uint8) string
}

// NewFlight returns a recorder with the given ring capacity (≤ 0 selects
// DefaultFlightCapacity).
func NewFlight(capacity int) *Flight {
	if capacity <= 0 {
		capacity = DefaultFlightCapacity
	}
	return &Flight{ring: make([]Event, capacity)}
}

// BindCycles points the recorder at the guest cycle counter so every
// subsequent event is stamped in guest time. The VM binds its own
// counter at Run; events recorded earlier (load-time TLB shootdowns)
// carry cycle 0.
func (f *Flight) BindCycles(c *uint64) {
	if f != nil {
		f.cycles = c
	}
}

// SetLabeler installs the reason-name resolver used when dumping (the VM
// installs one that names deopt reasons and memory-error kinds; obs
// cannot import those enums itself).
func (f *Flight) SetLabeler(fn func(kind EventKind, reason uint8) string) {
	if f != nil {
		f.labeler = fn
	}
}

// Record appends one event, overwriting the oldest when the ring is
// full. Nil-safe and allocation-free: one bounds-checked store and two
// increments on the hot path.
func (f *Flight) Record(kind EventKind, reason uint8, pc, arg uint64) {
	if f == nil {
		return
	}
	var cyc uint64
	if f.cycles != nil {
		cyc = *f.cycles
	}
	f.ring[f.seq%uint64(len(f.ring))] = Event{
		Seq:    f.seq,
		Cycles: cyc,
		Kind:   kind,
		Reason: reason,
		PC:     pc,
		Arg:    arg,
	}
	f.seq++
}

// Capacity reports the ring size.
func (f *Flight) Capacity() int {
	if f == nil {
		return 0
	}
	return len(f.ring)
}

// Total reports how many events were ever recorded (≥ the ring's
// retained window).
func (f *Flight) Total() uint64 {
	if f == nil {
		return 0
	}
	return f.seq
}

// Events copies the retained window, oldest first.
func (f *Flight) Events() []Event {
	if f == nil || f.seq == 0 {
		return nil
	}
	n := uint64(len(f.ring))
	if f.seq < n {
		return append([]Event(nil), f.ring[:f.seq]...)
	}
	out := make([]Event, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, f.ring[(f.seq+i)%n])
	}
	return out
}

// FlightEvent is the exported form of one event: the kind and reason are
// rendered as names so dumps read without the enum tables.
type FlightEvent struct {
	Seq    uint64 `json:"seq"`
	Cycles uint64 `json:"cycles"`
	Kind   string `json:"kind"`
	Reason string `json:"reason,omitempty"`
	PC     uint64 `json:"pc,omitempty"`
	Arg    uint64 `json:"arg,omitempty"`
}

// FlightDump is the stable JSON projection of the ring: schema-versioned
// and byte-deterministic (slices in ring order, struct key order), so it
// can join a runpack's digest chain.
type FlightDump struct {
	SchemaVersion int           `json:"schema_version"`
	Capacity      int           `json:"capacity"`
	Total         uint64        `json:"total"`
	Events        []FlightEvent `json:"events"`
}

// Dump snapshots the ring into its exportable form. Nil-safe: a nil
// recorder dumps an empty window.
func (f *Flight) Dump() *FlightDump {
	d := &FlightDump{SchemaVersion: SchemaVersion, Capacity: f.Capacity(),
		Total: f.Total(), Events: []FlightEvent{}}
	for _, e := range f.Events() {
		fe := FlightEvent{
			Seq:    e.Seq,
			Cycles: e.Cycles,
			Kind:   e.Kind.String(),
			PC:     e.PC,
			Arg:    e.Arg,
		}
		if f.labeler != nil {
			fe.Reason = f.labeler(e.Kind, e.Reason)
		}
		d.Events = append(d.Events, fe)
	}
	return d
}

// WriteJSON writes the dump as indented JSON with a trailing newline —
// the exact bytes runpacks seal as flight.json and /flight serves.
func (d *FlightDump) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// WriteText renders the window as one line per event for terminal dumps
// (the rfvm crash dump): sequence, guest cycle, kind, reason, PC, arg.
func (d *FlightDump) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "flight recorder: %d events recorded, last %d retained\n",
		d.Total, len(d.Events)); err != nil {
		return err
	}
	for i := range d.Events {
		e := &d.Events[i]
		reason := e.Reason
		if reason != "" {
			reason = " " + reason
		}
		if _, err := fmt.Fprintf(w, "  #%-6d cyc=%-12d %-12s%s pc=%#x arg=%#x\n",
			e.Seq, e.Cycles, e.Kind, reason, e.PC, e.Arg); err != nil {
			return err
		}
	}
	return nil
}
