package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"redfat/internal/telemetry"
)

var update = flag.Bool("update", false, "rewrite the golden endpoint files")

func TestFlightRingWrapsOldestFirst(t *testing.T) {
	f := NewFlight(4)
	var cyc uint64
	f.BindCycles(&cyc)
	for i := uint64(0); i < 10; i++ {
		cyc = i * 100
		f.Record(EvBlockEntry, 0, 0x1000+i, i)
	}
	if got := f.Total(); got != 10 {
		t.Fatalf("Total = %d, want 10", got)
	}
	if got := f.Capacity(); got != 4 {
		t.Fatalf("Capacity = %d, want 4", got)
	}
	evs := f.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, e := range evs {
		wantSeq := uint64(6 + i) // oldest retained is seq 6 of 0..9
		if e.Seq != wantSeq {
			t.Errorf("event %d: seq %d, want %d", i, e.Seq, wantSeq)
		}
		if e.Cycles != wantSeq*100 || e.PC != 0x1000+wantSeq || e.Arg != wantSeq {
			t.Errorf("event %d: %+v does not match its record call", i, e)
		}
	}
}

func TestFlightDefaultCapacityAndNilSafety(t *testing.T) {
	if got := NewFlight(0).Capacity(); got != DefaultFlightCapacity {
		t.Errorf("NewFlight(0) capacity = %d, want %d", got, DefaultFlightCapacity)
	}
	var f *Flight
	f.Record(EvDeopt, 1, 2, 3) // must not panic
	f.BindCycles(nil)
	f.SetLabeler(nil)
	if f.Total() != 0 || f.Capacity() != 0 || f.Events() != nil {
		t.Error("nil flight is not empty")
	}
	d := f.Dump()
	if d.Total != 0 || len(d.Events) != 0 {
		t.Errorf("nil flight dump = %+v, want empty", d)
	}
	if d.Events == nil {
		t.Error("dump Events must be non-nil so JSON renders [] not null")
	}
}

func TestFlightDumpAppliesLabeler(t *testing.T) {
	f := NewFlight(8)
	f.SetLabeler(func(kind EventKind, reason uint8) string {
		if kind == EvDeopt && reason == 2 {
			return "halt"
		}
		return ""
	})
	f.Record(EvDeopt, 2, 0x40, 0x10)
	f.Record(EvBlockEntry, 0, 0x48, 1)
	d := f.Dump()
	if d.Events[0].Reason != "halt" {
		t.Errorf("deopt reason = %q, want \"halt\"", d.Events[0].Reason)
	}
	if d.Events[1].Reason != "" {
		t.Errorf("block-entry reason = %q, want empty", d.Events[1].Reason)
	}
	if d.Events[0].Kind != "deopt" || d.Events[1].Kind != "block-entry" {
		t.Errorf("kinds = %q, %q", d.Events[0].Kind, d.Events[1].Kind)
	}
}

func TestEventKindStringsAreDistinct(t *testing.T) {
	seen := map[string]EventKind{}
	for k := EventKind(0); k < numEventKinds; k++ {
		s := k.String()
		if s == "event?" {
			t.Errorf("kind %d has no name", k)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("kinds %d and %d share name %q", prev, k, s)
		}
		seen[s] = k
	}
}

// testState builds a fixed introspection state: a telemetry registry with
// every series type (including a host wall-clock series that must be
// stripped), a two-trace table, a small folded profile, and a flight dump.
func testState(t *testing.T) *State {
	t.Helper()
	reg := telemetry.New()
	reg.Counter("vm.retired.total").Add(1234)
	reg.Counter("vm.jit.deopt.count").Add(3)
	reg.Counter("vm.jit.deopt.side.count").Add(2)
	reg.Counter("vm.jit.deopt.halt.count").Add(1)
	reg.Counter("vm.jit.compile.ns").Add(987654) // host time: must be stripped
	reg.Gauge("vm.blocks.live").Set(7)
	reg.Histogram("vm.block.len", telemetry.Pow2Bounds(0, 4)).Observe(3)
	snap := reg.Snapshot().StripHostTime()

	flight := NewFlight(8)
	var cyc uint64
	flight.BindCycles(&cyc)
	flight.SetLabeler(func(kind EventKind, reason uint8) string {
		if kind == EvDeopt {
			return [...]string{"side", "dyn", "halt"}[reason]
		}
		return ""
	})
	cyc = 10
	flight.Record(EvBlockEntry, 0, 0x401000, 1)
	cyc = 250
	flight.Record(EvJITCompile, 0, 0x401000, 12)
	cyc = 300
	flight.Record(EvTraceEnter, 0, 0x401000, 0)
	cyc = 980
	flight.Record(EvDeopt, 2, 0x401038, 0x401000)

	st := &State{
		Telemetry: snap,
		Traces: []TraceRow{
			{EntryPC: 0x401000, EndPC: 0x401038, Symbol: "loop", Steps: 12, Checks: 3,
				Elided: 1, Entries: 40, Deopts: []DeoptCount{{Reason: "side", Count: 2}, {Reason: "halt", Count: 1}}},
			{EntryPC: 0x402000, EndPC: 0x402010, Symbol: "leaf", Steps: 4, Checks: 0,
				Elided: 0, Entries: 9},
		},
		Profile: "main;loop 900\nmain;leaf 100\n",
		Flight:  flight.Dump(),
	}
	return st
}

// TestEndpointsMatchGolden byte-compares every introspection endpoint
// against its golden file (regenerate with `go test ./internal/obs
// -run Golden -update`), pinning the wire format the smoke target and
// external scrapers rely on.
func TestEndpointsMatchGolden(t *testing.T) {
	srv := NewServer()
	srv.Publish(testState(t))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	endpoints := []struct {
		path, golden, ctype string
	}{
		{"/metrics", "metrics.golden", "text/plain; version=0.0.4; charset=utf-8"},
		{"/snapshot", "snapshot.golden", "application/json"},
		{"/traces", "traces.golden", "application/json"},
		{"/profile", "profile.golden", "text/plain; charset=utf-8"},
		{"/flight", "flight.golden", "application/json"},
	}
	for _, ep := range endpoints {
		t.Run(ep.path, func(t *testing.T) {
			body, ctype := get(t, ts.URL+ep.path)
			if ctype != ep.ctype {
				t.Errorf("Content-Type %q, want %q", ctype, ep.ctype)
			}
			path := filepath.Join("testdata", ep.golden)
			if *update {
				if err := os.WriteFile(path, body, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to regenerate)", err)
			}
			if !bytes.Equal(body, want) {
				t.Errorf("%s diverged from %s:\n got: %s\nwant: %s", ep.path, path, body, want)
			}
		})
	}
}

func TestEndpointsAreValidAndStripped(t *testing.T) {
	srv := NewServer()
	srv.Publish(testState(t))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	metrics, _ := get(t, ts.URL+"/metrics")
	if !strings.Contains(string(metrics), "# TYPE redfat_vm_retired_total counter") {
		t.Errorf("/metrics is not Prometheus exposition:\n%s", metrics)
	}
	if strings.Contains(string(metrics), "compile_ns") {
		t.Errorf("/metrics leaks host wall-clock series:\n%s", metrics)
	}
	var snap telemetry.Snapshot
	body, _ := get(t, ts.URL+"/snapshot")
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/snapshot is not a telemetry snapshot: %v", err)
	}
	if err := snap.Validate(); err != nil {
		t.Errorf("/snapshot validation: %v", err)
	}
	if snap.Counters["vm.retired.total"] != 1234 {
		t.Errorf("snapshot counter = %d, want 1234", snap.Counters["vm.retired.total"])
	}
	var table TraceTable
	body, _ = get(t, ts.URL+"/traces")
	if err := json.Unmarshal(body, &table); err != nil {
		t.Fatalf("/traces is not a trace table: %v", err)
	}
	if table.SchemaVersion != SchemaVersion || len(table.Traces) != 2 {
		t.Errorf("trace table = %+v", table)
	}
	var dump FlightDump
	body, _ = get(t, ts.URL+"/flight")
	if err := json.Unmarshal(body, &dump); err != nil {
		t.Fatalf("/flight is not a flight dump: %v", err)
	}
	if dump.Total != 4 || dump.Events[3].Reason != "halt" {
		t.Errorf("flight dump = %+v", dump)
	}
	index, _ := get(t, ts.URL+"/")
	for _, ep := range []string{"/metrics", "/snapshot", "/traces", "/profile", "/flight"} {
		if !strings.Contains(string(index), ep) {
			t.Errorf("index does not list %s", ep)
		}
	}
	resp, err := http.Get(ts.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path: status %d, want 404", resp.StatusCode)
	}
}

// TestServerBeforePublishServesEmpty pins the pre-run state: every
// endpoint must answer (the server comes up before the guest runs), just
// with empty documents.
func TestServerBeforePublishServesEmpty(t *testing.T) {
	srv := NewServer()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	var table TraceTable
	body, _ := get(t, ts.URL+"/traces")
	if err := json.Unmarshal(body, &table); err != nil {
		t.Fatalf("/traces: %v", err)
	}
	if table.Traces == nil || len(table.Traces) != 0 {
		t.Errorf("pre-publish traces = %#v, want empty non-nil", table.Traces)
	}
	var dump FlightDump
	body, _ = get(t, ts.URL+"/flight")
	if err := json.Unmarshal(body, &dump); err != nil {
		t.Fatalf("/flight: %v", err)
	}
	if dump.Total != 0 {
		t.Errorf("nil-flight dump total = %d, want 0", dump.Total)
	}
	if body, _ := get(t, ts.URL+"/profile"); len(body) != 0 {
		t.Errorf("pre-publish profile = %q, want empty", body)
	}
	srv.Publish(nil) // must not clobber the state
	if body, _ := get(t, ts.URL+"/snapshot"); !json.Valid(body) {
		t.Errorf("/snapshot after Publish(nil) is not JSON: %s", body)
	}
}

// TestFlightScrapeDuringRecordIsRaceFree pins the concurrency contract:
// /flight serves only the published dump, never the live ring, so
// scraping while the VM goroutine is still recording is well-defined
// (the race detector fails this test if a handler ever reads the ring).
func TestFlightScrapeDuringRecordIsRaceFree(t *testing.T) {
	flight := NewFlight(64)
	var cyc uint64
	flight.BindCycles(&cyc)
	srv := NewServer()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := uint64(0); i < 5000; i++ {
			cyc = i
			flight.Record(EvBlockEntry, 0, 0x1000+i, i)
		}
	}()
	for i := 0; i < 20; i++ {
		var dump FlightDump
		body, _ := get(t, ts.URL+"/flight")
		if err := json.Unmarshal(body, &dump); err != nil {
			t.Fatalf("/flight mid-run: %v", err)
		}
		if dump.Total != 0 {
			t.Fatalf("mid-run /flight served the live ring (total %d), want the published empty window", dump.Total)
		}
	}
	<-done

	// After the recording goroutine is done, the owner dumps and
	// publishes; the endpoint now serves the full window.
	srv.Publish(&State{Flight: flight.Dump()})
	var dump FlightDump
	body, _ := get(t, ts.URL+"/flight")
	if err := json.Unmarshal(body, &dump); err != nil {
		t.Fatal(err)
	}
	if dump.Total != 5000 || len(dump.Events) != 64 {
		t.Errorf("published dump total %d / %d events, want 5000 / 64", dump.Total, len(dump.Events))
	}
}

func get(t *testing.T, url string) ([]byte, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	return body, resp.Header.Get("Content-Type")
}
