// Package dis renders RF64 binaries as AT&T-flavoured assembly listings:
// the read side of the toolchain, used by cmd/rfdis and for debugging
// instrumented binaries.
package dis

import (
	"fmt"
	"io"
	"sort"

	"redfat/internal/cfg"
	"redfat/internal/isa"
	"redfat/internal/relf"
)

// Options controls listing output.
type Options struct {
	ShowBytes   bool // hex-dump each instruction's encoding
	ShowLeaders bool // annotate recovered basic-block leaders
}

// Inst renders a single decoded instruction as text, resolving branch
// targets to absolute addresses.
func Inst(di cfg.DecodedInst) string {
	in := &di.Inst
	switch in.Form {
	case isa.FRel8, isa.FRel32:
		target := di.Addr + uint64(in.Len) + uint64(in.Imm)
		return fmt.Sprintf("%s %#x", in.Op, target)
	}
	return in.String()
}

// Section writes a listing of one executable section.
func Section(w io.Writer, bin *relf.Binary, sec *relf.Section, opt Options) error {
	prog, err := cfg.Disassemble(bin)
	if err != nil {
		return err
	}
	// Symbol index for annotations.
	symAt := map[uint64]string{}
	for _, s := range bin.Symbols {
		if s.Func {
			symAt[s.Addr] = s.Name
		}
	}
	data := sec.Data
	addr := sec.Addr
	for off := 0; off < len(data); {
		in, err := isa.Decode(data[off:])
		if err != nil {
			// Patched tails (TRAP fill) may not decode as a stream;
			// dump the byte and continue.
			fmt.Fprintf(w, "%8x:\t.byte %#02x\n", addr, data[off])
			off++
			addr++
			continue
		}
		if name, ok := symAt[addr]; ok {
			fmt.Fprintf(w, "\n%016x <%s>:\n", addr, name)
		} else if opt.ShowLeaders && prog.IsLeader(addr) && sec.Kind == relf.SecText {
			fmt.Fprintf(w, "%8x: <L>\n", addr)
		}
		if opt.ShowBytes {
			fmt.Fprintf(w, "%8x:\t% -24x\t%s\n", addr, data[off:off+int(in.Len)],
				Inst(cfg.DecodedInst{Addr: addr, Inst: in}))
		} else {
			fmt.Fprintf(w, "%8x:\t%s\n", addr, Inst(cfg.DecodedInst{Addr: addr, Inst: in}))
		}
		off += int(in.Len)
		addr += uint64(in.Len)
	}
	return nil
}

// Binary writes a listing of every executable section plus a summary of
// the binary's structure.
func Binary(w io.Writer, bin *relf.Binary, opt Options) error {
	fmt.Fprintf(w, "RELF binary: entry %#x, PIC=%v, stripped=%v\n",
		bin.Entry, bin.PIC, bin.Stripped)
	secs := make([]*relf.Section, len(bin.Sections))
	copy(secs, bin.Sections)
	sort.Slice(secs, func(i, j int) bool { return secs[i].Addr < secs[j].Addr })
	for _, s := range secs {
		fmt.Fprintf(w, "  section %-12s %-6s addr %#10x size %8d\n",
			s.Name, s.Kind, s.Addr, s.Size)
	}
	if len(bin.Imports) > 0 {
		fmt.Fprintf(w, "  imports: %v\n", bin.Imports)
	}
	for _, s := range secs {
		if s.Kind != relf.SecText && s.Kind != relf.SecTramp {
			continue
		}
		fmt.Fprintf(w, "\nDisassembly of section %s:\n", s.Name)
		if s.Kind == relf.SecTramp {
			// Trampolines are not part of the linear program; decode
			// them without control-flow annotations.
			if err := rawSection(w, s, opt); err != nil {
				return err
			}
			continue
		}
		if err := Section(w, bin, s, opt); err != nil {
			return err
		}
	}
	return nil
}

func rawSection(w io.Writer, sec *relf.Section, opt Options) error {
	data := sec.Data
	addr := sec.Addr
	for off := 0; off < len(data); {
		in, err := isa.Decode(data[off:])
		if err != nil {
			fmt.Fprintf(w, "%8x:\t.byte %#02x\n", addr, data[off])
			off++
			addr++
			continue
		}
		fmt.Fprintf(w, "%8x:\t%s\n", addr, Inst(cfg.DecodedInst{Addr: addr, Inst: in}))
		off += int(in.Len)
		addr += uint64(in.Len)
	}
	return nil
}
