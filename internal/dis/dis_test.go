package dis_test

import (
	"strings"
	"testing"

	"redfat/internal/asm"
	"redfat/internal/dis"
	"redfat/internal/redfat"
)

const src = `
.data
msg: .asciz "x"

.text
.func main
    mov $40, %rdi
    call @malloc
    mov %rax, %rbx
    mov $7, %rcx
    mov %rcx, 8(%rbx)
    jmp out
out:
    ret
`

func TestListing(t *testing.T) {
	bin, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := dis.Binary(&sb, bin, dis.Options{ShowBytes: true, ShowLeaders: true}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"<main>", "mov $0x28, %rdi", "rtcall", "mov %rcx, 0x8(%rbx)",
		".text", "imports: [malloc]", "jmp 0x4000",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("listing missing %q:\n%s", want, out)
		}
	}
}

func TestListingOfHardenedBinary(t *testing.T) {
	bin, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	hard, _, err := redfat.Harden(bin, redfat.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := dis.Binary(&sb, hard, dis.Options{}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, ".tramp") {
		t.Error("listing missing trampoline section")
	}
	if !strings.Contains(out, "__redfat_check") {
		t.Error("listing missing the check import")
	}
	// Patched sites jump into the trampoline region; the stolen-tail
	// TRAP bytes must not abort the listing.
	if !strings.Contains(out, "trap") && !strings.Contains(out, ".byte") {
		t.Log(out)
		t.Error("no patch artifacts visible in the listing")
	}
}
