// Indirect-flow recovery: shrink the Unknown/⊤ frontier of the CFG by
// resolving indirect jumps through proven jump tables, landing-pad target
// sets, and RET/call-site pairing.
//
// Everything here is gated on the binary being *marker-built* (it carries
// a .rf.jt section, which also opts it into the VM's LPAD enforcement).
// For any other binary the pass is inert and the graph is bit-identical
// to the seed construction. Every step either proves its claim or bails
// back to Unknown — over-approximation is the only failure mode.
//
// The techniques follow the sound-recovery literature: bounded
// value-tracking of the table[idx*8] load pattern with the bound taken
// from the dominating unsigned compare (Datalog Disassembly), and
// CET-style landing-pad markers turning "any address-taken block" into
// the explicit set of LPAD blocks (sound because the VM faults indirect
// transfers to non-LPAD bytes).
package cfg

import (
	"encoding/binary"
	"sort"

	"redfat/internal/isa"
	"redfat/internal/relf"
)

// GraphOptions configures control-flow recovery.
type GraphOptions struct {
	// NoIndirect disables the indirect-flow recovery pass (the ablation
	// knob): indirect jumps and RETs stay Unknown even in marker-built
	// binaries, exactly as the seed graph construction left them.
	NoIndirect bool
}

// ResolvedKind classifies how an indirect-control-flow site was resolved.
type ResolvedKind uint8

// Resolution kinds.
const (
	// ResolvedTable: a bounded jump-table slice — the operand was traced
	// to a load from a declared read-only table with a proven index bound.
	ResolvedTable ResolvedKind = iota
	// ResolvedLPADSet: the marker fallback — targets are all landing-pad
	// blocks, sound because the VM faults any other indirect target.
	ResolvedLPADSet
	// ResolvedRet: a RET paired with the return points of its function's
	// direct call sites (closed-function analysis).
	ResolvedRet
)

// String names the resolution kind.
func (k ResolvedKind) String() string {
	switch k {
	case ResolvedTable:
		return "table"
	case ResolvedLPADSet:
		return "lpadset"
	case ResolvedRet:
		return "ret"
	}
	return "unknown"
}

// Resolved is one recovered indirect-control-flow site. It is the claim
// the verify edge auditor independently re-derives: every field here must
// be re-provable from the binary alone.
type Resolved struct {
	Inst    int          // instruction index of the branch
	Addr    uint64       // address of the branch
	Kind    ResolvedKind // how the target set was established
	Table   uint64       // table base address (ResolvedTable only)
	Bound   uint32       // proven entry count (ResolvedTable only)
	Targets []uint64     // recovered target addresses, ascending
}

// IndirectInfo is the result of the recovery pass, attached to the Graph
// when the binary is marker-built and recovery is enabled.
type IndirectInfo struct {
	// Resolved lists every site whose successor set was recovered
	// (formerly Unknown blocks now carrying real Succs), ascending by
	// address.
	Resolved []Resolved
	// Tables holds the proven table spans (base address + proven entry
	// bound). Words inside these spans are excluded from the
	// address-taken data scan: their flow is represented as explicit
	// edges instead of Entry marks.
	Tables []relf.JumpTable
}

// TargetSets returns site address → target set for the site kinds the
// VM's indirect-branch monitor consults (table and landing-pad-set
// resolved jumps; RET sites retire through a different dispatch path).
func (ii *IndirectInfo) TargetSets() map[uint64]map[uint64]bool {
	out := make(map[uint64]map[uint64]bool)
	for _, r := range ii.Resolved {
		if r.Kind == ResolvedRet {
			continue
		}
		set := make(map[uint64]bool, len(r.Targets))
		for _, t := range r.Targets {
			set[t] = true
		}
		out[r.Addr] = set
	}
	return out
}

// Site returns the resolution record for the instruction at addr, or nil.
func (ii *IndirectInfo) Site(addr uint64) *Resolved {
	for i := range ii.Resolved {
		if ii.Resolved[i].Addr == addr {
			return &ii.Resolved[i]
		}
	}
	return nil
}

// MarkerBuilt reports whether the binary opted into landing-pad
// enforcement and jump-table recovery (it carries a .rf.jt section).
func MarkerBuilt(bin *relf.Binary) bool {
	return bin.Section(relf.JumpTableSection) != nil
}

// declaredTables decodes the .rf.jt section into base address → declared
// entry count. A corrupt section recovers nothing (nil map).
func declaredTables(bin *relf.Binary) map[uint64]uint32 {
	sec := bin.Section(relf.JumpTableSection)
	if sec == nil {
		return nil
	}
	tables, err := relf.DecodeJumpTables(sec.Data)
	if err != nil {
		return nil
	}
	m := make(map[uint64]uint32, len(tables))
	for _, t := range tables {
		if t.Entries > m[t.Addr] {
			m[t.Addr] = t.Entries
		}
	}
	return m
}

// isIndirect reports whether in is an indirect jump or call.
func isIndirect(in *isa.Inst) bool {
	return (in.Op == isa.JMP || in.Op == isa.CALL) &&
		(in.Form == isa.FR || in.Form == isa.FM)
}

// leaderAt returns the block starting exactly at addr, if any.
func (g *Graph) leaderAt(addr uint64) (int, bool) {
	i, ok := g.Prog.InstAt(addr)
	if !ok {
		return 0, false
	}
	b := g.BlockOf[i]
	if g.Blocks[b].Start != i {
		return 0, false
	}
	return b, true
}

// rebuildPreds recomputes every predecessor list from the (possibly
// rewritten) successor lists. Unknown blocks contribute no edges, which
// is exactly why every analysis must treat Unknown as ⊤.
func (g *Graph) rebuildPreds() {
	for b := range g.Blocks {
		g.Blocks[b].Preds = g.Blocks[b].Preds[:0]
	}
	for b := range g.Blocks {
		for _, s := range g.Blocks[b].Succs {
			g.Blocks[s].Preds = append(g.Blocks[s].Preds, b)
		}
	}
}

// addressTaken returns the set of text addresses an unmodeled transfer
// could target: the binary entry, function symbols, direct call targets,
// text-range immediates and absolute displacements, and aligned data
// words — the same candidate sources markEntries uses. Words inside
// exclude spans (proven read-only tables, whose flow recovery represents
// as explicit edges) are skipped.
func (g *Graph) addressTaken(exclude []relf.JumpTable) map[uint64]bool {
	p := g.Prog
	cand := make(map[uint64]bool)
	textLow := p.Insts[0].Addr
	lastI := p.Insts[len(p.Insts)-1]
	textHigh := lastI.Addr + uint64(lastI.Inst.Len)
	inText := func(v uint64) bool { return v >= textLow && v < textHigh }
	mark := func(v uint64) {
		if inText(v) {
			cand[v] = true
		}
	}

	mark(p.Binary.Entry)
	for _, s := range p.Binary.Symbols {
		if s.Func {
			mark(s.Addr)
		}
	}
	for i := range p.Insts {
		in := &p.Insts[i].Inst
		next := p.Insts[i].Addr + uint64(in.Len)
		if in.Op == isa.CALL && (in.Form == isa.FRel8 || in.Form == isa.FRel32) {
			mark(next + uint64(in.Imm))
		}
		if in.Form == isa.FRI || in.Form == isa.FMI {
			mark(uint64(in.Imm))
		}
		if in.HasMem() && in.Mem.IsAbsolute() {
			mark(uint64(uint32(in.Mem.Disp)))
		}
	}

	excluded := func(addr uint64) bool {
		for _, t := range exclude {
			if addr >= t.Addr && addr < t.Addr+8*uint64(t.Entries) {
				return true
			}
		}
		return false
	}
	for _, s := range p.Binary.Sections {
		if s.Exec || len(s.Data) < 8 {
			continue
		}
		for off := 0; off+8 <= len(s.Data); off += 8 {
			if excluded(s.Addr + uint64(off)) {
				continue
			}
			mark(binary.LittleEndian.Uint64(s.Data[off:]))
		}
	}
	return cand
}

// phantomLPADFree reports whether no interior byte of any decoded
// instruction equals the LPAD opcode. The VM's enforcement checks the raw
// byte at the target, so a stray LPAD-valued immediate byte would be a
// legal dynamic target the decoded-LPAD set misses; the landing-pad-set
// fallback is only sound when no such byte exists.
func phantomLPADFree(p *Program) bool {
	text := p.Binary.Text()
	if text == nil {
		return false
	}
	for i := range p.Insts {
		off := p.Insts[i].Addr - text.Addr
		for k := uint64(1); k < uint64(p.Insts[i].Inst.Len); k++ {
			if isa.Op(text.Data[off+k]) == isa.LPAD {
				return false
			}
		}
	}
	return true
}

// recoverIndirect runs the whole recovery pass over a graph whose static
// edges and predecessor lists are already built. It rewrites the Succs
// of every block it resolves (clearing Unknown), leaves everything else
// untouched, and records the claims in g.Indirect. No-op for binaries
// that are not marker-built.
func (g *Graph) recoverIndirect() {
	p := g.Prog
	if !MarkerBuilt(p.Binary) {
		return
	}
	declared := declaredTables(p.Binary)
	info := &IndirectInfo{}
	g.Indirect = info

	// Guard-bypass check for dispatch blocks uses the unexcluded
	// candidate set: at this point no table has been proven yet.
	cand := g.addressTaken(nil)

	// 1. Bounded jump-table resolution.
	for b := range g.Blocks {
		blk := &g.Blocks[b]
		last := &p.Insts[blk.End-1]
		if last.Inst.Op != isa.JMP || (last.Inst.Form != isa.FR && last.Inst.Form != isa.FM) {
			continue
		}
		res, ok := g.resolveTableJump(b, declared, cand)
		if !ok {
			continue
		}
		g.applyResolution(b, res)
		info.Tables = append(info.Tables, relf.JumpTable{Addr: res.Table, Entries: res.Bound})
	}

	// 2. Landing-pad-set fallback for jumps the slicer could not prove.
	if phantomLPADFree(p) {
		var lpads []uint64
		for b := range g.Blocks {
			i := g.Blocks[b].Start
			if p.Insts[i].Inst.Op == isa.LPAD {
				lpads = append(lpads, p.Insts[i].Addr)
			}
		}
		if len(lpads) > 0 {
			for b := range g.Blocks {
				blk := &g.Blocks[b]
				last := &p.Insts[blk.End-1]
				if !blk.Unknown || last.Inst.Op != isa.JMP ||
					(last.Inst.Form != isa.FR && last.Inst.Form != isa.FM) {
					continue
				}
				g.applyResolution(b, Resolved{
					Inst: blk.End - 1, Addr: last.Addr,
					Kind: ResolvedLPADSet, Targets: lpads,
				})
			}
		}
	}

	g.rebuildPreds()

	// 3. RET/call-site pairing over closed functions (needs the
	// post-resolution predecessor lists).
	g.pairReturns(info)
	g.rebuildPreds()

	sort.Slice(info.Resolved, func(i, j int) bool {
		return info.Resolved[i].Addr < info.Resolved[j].Addr
	})
	sort.Slice(info.Tables, func(i, j int) bool {
		return info.Tables[i].Addr < info.Tables[j].Addr
	})
}

// applyResolution replaces a block's successor set with the resolved
// targets and clears its Unknown mark, recording the claim.
func (g *Graph) applyResolution(b int, res Resolved) {
	blk := &g.Blocks[b]
	blk.Succs = blk.Succs[:0]
	seen := map[int]bool{}
	for _, t := range res.Targets {
		tb, ok := g.leaderAt(t)
		if !ok {
			// Callers validate targets before applying; treat a miss as
			// a bail so a bug here can only lose precision.
			blk.Unknown = true
			return
		}
		if !seen[tb] {
			seen[tb] = true
			blk.Succs = append(blk.Succs, tb)
		}
	}
	blk.Unknown = false
	g.Indirect.Resolved = append(g.Indirect.Resolved, res)
}

// resolveTableJump tries to prove the target set of the indirect jump
// terminating block b as a bounded slice of a declared read-only jump
// table. Any unproven step bails (the block keeps its Unknown ⊤ edges).
func (g *Graph) resolveTableJump(b int, declared map[uint64]uint32, cand map[uint64]bool) (Resolved, bool) {
	p := g.Prog
	blk := &g.Blocks[b]
	j := blk.End - 1
	jin := &p.Insts[j].Inst
	if p.Binary.PIC {
		return Resolved{}, false // PIC tables hold offsets: not yet proven
	}

	// Trace the jump operand to the table load: either the jump itself
	// loads table(,idx,8), or it jumps through a register whose unique
	// in-block definition is such a load.
	var tm isa.Mem
	loadIdx := j
	switch jin.Form {
	case isa.FM:
		tm = jin.Mem
	case isa.FR:
		reg := jin.Reg
		found := false
		for i := j - 1; i >= blk.Start; i-- {
			in := &p.Insts[i].Inst
			if in.Op == isa.MOV && in.Form == isa.FRM && in.Reg == reg && in.Size == 8 {
				tm = in.Mem
				loadIdx = i
				found = true
				break
			}
			if RegsWritten(in).Has(reg) {
				return Resolved{}, false // defined by something else
			}
		}
		if !found {
			return Resolved{}, false // defined before the block: unproven
		}
		for i := loadIdx + 1; i < j; i++ {
			if RegsWritten(&p.Insts[i].Inst).Has(reg) {
				return Resolved{}, false
			}
		}
	default:
		return Resolved{}, false
	}

	// Operand shape: absolute table base, scaled 8-byte index.
	if tm.Seg != isa.SegNone || tm.Base != isa.RegNone || !tm.HasIndex() || tm.Scale != 8 {
		return Resolved{}, false
	}
	idx := tm.Index
	table := uint64(uint32(tm.Disp))
	entries, ok := declared[table]
	if !ok {
		return Resolved{}, false // undeclared table: unproven
	}

	// The index must be the value the guard tested: unmodified from block
	// entry to the load.
	for i := blk.Start; i < loadIdx; i++ {
		if RegsWritten(&p.Insts[i].Inst).Has(idx) {
			return Resolved{}, false
		}
	}

	// The dispatch block must be enterable only through its guard edge:
	// a single static predecessor, no address-taken candidate leader, and
	// no landing pad (which would admit enforced indirect entries).
	if len(blk.Preds) != 1 || blk.Preds[0] == b {
		return Resolved{}, false
	}
	if cand[p.Insts[blk.Start].Addr] || p.Insts[blk.Start].Inst.Op == isa.LPAD {
		return Resolved{}, false
	}
	bound, ok := g.guardBound(blk.Preds[0], b, idx)
	if !ok || bound == 0 || bound > entries {
		return Resolved{}, false
	}

	targets, ok := g.tableTargets(table, bound)
	if !ok {
		return Resolved{}, false
	}
	return Resolved{
		Inst: j, Addr: p.Insts[j].Addr, Kind: ResolvedTable,
		Table: table, Bound: bound, Targets: targets,
	}, true
}

// guardBound proves an unsigned bound on idx holding on the edge pb→b:
// pb must end with an unsigned conditional jump whose flags come from an
// untouched `cmp $n, %idx`, with exactly one of its two edges reaching b.
// It returns the proven entry count (indices 0..count-1 reach b).
func (g *Graph) guardBound(pb, b int, idx isa.Reg) (uint32, bool) {
	p := g.Prog
	pblk := &g.Blocks[pb]
	t := pblk.End - 1
	tin := &p.Insts[t].Inst
	if !tin.Op.IsCondJump() {
		return 0, false
	}
	next := p.Insts[t].Addr + uint64(tin.Len)
	bAddr := p.Insts[g.Blocks[b].Start].Addr
	taken := next+uint64(tin.Imm) == bAddr
	fall := next == bAddr
	if taken == fall {
		return 0, false // both or neither edge reaches b: ambiguous
	}

	// The nearest flag writer above the jump must be the compare, with
	// the index register untouched in between.
	var n int64
	found := false
	for i := t - 1; i >= pblk.Start; i-- {
		in := &p.Insts[i].Inst
		if RegsWritten(in).Has(idx) {
			return 0, false
		}
		if WritesFlags(in) {
			if in.Op == isa.CMP && in.Form == isa.FRI && in.Reg == idx && in.Size == 8 {
				n = in.Imm
				found = true
			}
			break
		}
	}
	if !found || n < 0 || n >= int64(^uint32(0)) {
		return 0, false
	}

	// Unsigned conditions only: a signed guard would admit "negative"
	// (huge unsigned) indices.
	switch {
	case fall && tin.Op == isa.JA: // not (idx > n) → idx ≤ n
		return uint32(n) + 1, true
	case fall && tin.Op == isa.JAE: // not (idx ≥ n) → idx ≤ n-1
		return uint32(n), true
	case taken && tin.Op == isa.JBE: // idx ≤ n
		return uint32(n) + 1, true
	case taken && tin.Op == isa.JB: // idx < n
		return uint32(n), true
	}
	return 0, false
}

// tableTargets reads the first bound entries of the table and validates
// each: the span must be word-aligned and fully inside a read-only
// non-executable section, and every entry must be the address of a
// decoded block leader whose instruction is a landing pad.
func (g *Graph) tableTargets(table uint64, bound uint32) ([]uint64, bool) {
	p := g.Prog
	if table%8 != 0 {
		return nil, false
	}
	s := p.Binary.SectionAt(table)
	if s == nil || s.Write || s.Exec || len(s.Data) == 0 {
		return nil, false
	}
	off := table - s.Addr
	if off+8*uint64(bound) > uint64(len(s.Data)) {
		return nil, false
	}
	targets := make([]uint64, 0, bound)
	for k := uint64(0); k < uint64(bound); k++ {
		v := binary.LittleEndian.Uint64(s.Data[off+8*k:])
		tb, ok := g.leaderAt(v)
		if !ok || p.Insts[g.Blocks[tb].Start].Inst.Op != isa.LPAD {
			return nil, false
		}
		targets = append(targets, v)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
	return targets, true
}

// pairReturns resolves RET blocks of *closed* functions to the return
// points of their direct call sites. A function F is closed when every
// way control can enter it is accounted for: no static edge from outside,
// no address-taken candidate inside (table spans excluded — their flow is
// explicit edges now), no landing pad inside while unproven indirect
// control flow exists anywhere, and F is not the process entry. Under the
// benign-execution model the CFG already assumes for CALL fall-through
// edges, every RET of a closed F then returns to one of its callers'
// return points.
func (g *Graph) pairReturns(info *IndirectInfo) {
	p := g.Prog

	// Is there still unproven indirect control flow that could target an
	// arbitrary landing pad?
	unresolvedIndirect := false
	for b := range g.Blocks {
		blk := &g.Blocks[b]
		last := &p.Insts[blk.End-1].Inst
		if isIndirect(last) && (blk.Unknown || last.Op == isa.CALL) {
			// Indirect calls are never resolved by this pass; any one of
			// them can enter any landing pad.
			unresolvedIndirect = true
			break
		}
	}

	cand := g.addressTaken(info.Tables)

	type fn struct {
		lo, hi uint64
	}
	var funcs []fn
	for _, s := range p.Binary.Symbols {
		if s.Func && s.Size > 0 {
			funcs = append(funcs, fn{lo: s.Addr, hi: s.Addr + s.Size})
		}
	}
	sort.Slice(funcs, func(i, j int) bool { return funcs[i].lo < funcs[j].lo })

	blockAddr := func(b int) uint64 { return p.Insts[g.Blocks[b].Start].Addr }

	for _, f := range funcs {
		if p.Binary.Entry >= f.lo && p.Binary.Entry < f.hi {
			continue // entered by the loader; its RET exits the process
		}
		inF := func(a uint64) bool { return a >= f.lo && a < f.hi }

		closed := true
		var retBlocks []int
		for b := range g.Blocks {
			if !inF(blockAddr(b)) {
				continue
			}
			blk := &g.Blocks[b]
			for _, pr := range blk.Preds {
				if !inF(blockAddr(pr)) {
					closed = false // static edge from outside (tail call in)
				}
			}
			for i := blk.Start; i < blk.End; i++ {
				if cand[p.Insts[i].Addr] && p.Insts[i].Addr != f.lo {
					closed = false // address taken: indirect entry possible
				}
				if p.Insts[i].Inst.Op == isa.LPAD && unresolvedIndirect {
					closed = false // unproven indirect flow may land here
				}
			}
			if p.Insts[blk.End-1].Inst.Op == isa.RET {
				retBlocks = append(retBlocks, b)
			}
		}
		// The function's own entry must not be address-taken beyond being
		// a symbol / direct call target (those are paired below).
		if cand[f.lo] && !onlyCallTaken(p, f.lo) {
			closed = false
		}
		if !closed || len(retBlocks) == 0 {
			continue
		}

		// Collect the return points of every direct call into F.
		var returns []uint64
		ok := true
		for i := range p.Insts {
			in := &p.Insts[i].Inst
			if in.Op != isa.CALL || (in.Form != isa.FRel8 && in.Form != isa.FRel32) {
				continue
			}
			next := p.Insts[i].Addr + uint64(in.Len)
			if !inF(next + uint64(in.Imm)) {
				continue
			}
			if _, isLeader := g.leaderAt(next); !isLeader {
				ok = false
				break
			}
			returns = append(returns, next)
		}
		if !ok || len(returns) == 0 {
			continue
		}
		sort.Slice(returns, func(i, j int) bool { return returns[i] < returns[j] })

		for _, rb := range retBlocks {
			ri := g.Blocks[rb].End - 1
			g.applyResolution(rb, Resolved{
				Inst: ri, Addr: p.Insts[ri].Addr,
				Kind: ResolvedRet, Targets: returns,
			})
		}
	}
}

// onlyCallTaken reports whether addr's only address-taken occurrences in
// code are as a direct call target or function symbol — i.e. it never
// appears as a data word, immediate operand, or absolute displacement
// that could feed an indirect transfer.
func onlyCallTaken(p *Program, addr uint64) bool {
	for i := range p.Insts {
		in := &p.Insts[i].Inst
		if (in.Form == isa.FRI || in.Form == isa.FMI) && uint64(in.Imm) == addr {
			return false
		}
		if in.HasMem() && in.Mem.IsAbsolute() && uint64(uint32(in.Mem.Disp)) == addr {
			return false
		}
	}
	for _, s := range p.Binary.Sections {
		if s.Exec || len(s.Data) < 8 {
			continue
		}
		for off := 0; off+8 <= len(s.Data); off += 8 {
			if binary.LittleEndian.Uint64(s.Data[off:]) == addr {
				return false
			}
		}
	}
	return true
}
