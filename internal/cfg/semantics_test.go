package cfg_test

import (
	"fmt"
	"testing"

	"redfat/internal/cfg"
	"redfat/internal/isa"
	"redfat/internal/mem"
	"redfat/internal/vm"
)

// TestSemanticsCrossCheck validates the static dataflow tables
// (RegsRead, RegsWritten, WritesFlags, ReadsFlags, FlagsRead,
// FlagsKilled) against the VM's executable semantics for every encodable
// opcode × form × width combination, by single-stepping each instruction
// and perturbing one input at a time:
//
//   - a register the table omits from RegsRead must not influence any
//     output (registers, flags, RIP, memory);
//   - a register outside RegsWritten must come out unchanged, and one
//     inside RegsWritten ∖ RegsRead must come out input-independent
//     (the liveness kill set is a must-kill set);
//   - !WritesFlags means the flags survive verbatim;
//   - a flag in FlagsKilled must leave input-independent;
//   - a flag outside FlagsRead must not influence any non-flag output
//     or any other flag.
//
// RTCALL and TRAP are excluded: their behaviour depends on host bindings
// and the patch table, and the tables already saturate them to
// everything-read / everything-written.
func TestSemanticsCrossCheck(t *testing.T) {
	cases := 0
	for op := isa.Op(1); int(op) < isa.NumOps; op++ {
		if op == isa.RTCALL || op == isa.TRAP {
			continue
		}
		for form := isa.FNone; form <= isa.FRel32; form++ {
			for _, size := range []uint8{1, 2, 4, 8} {
				for _, imm := range immCandidates(op, form) {
					in := buildInst(op, form, size, imm)
					if _, err := isa.Encode(nil, &in); err != nil {
						continue // not an encodable combination
					}
					checkSemantics(t, &in)
					cases++
				}
			}
		}
	}
	if cases < 100 {
		t.Fatalf("only %d encodable cases enumerated; enumeration is broken", cases)
	}
	t.Logf("cross-checked %d opcode×form×width cases", cases)
}

// Register roles: the memory operand is always [RSI + RDI*4 + 64], so
// RSI holds a data-page pointer and RDI a small index; everything else
// holds small nonzero data values. RSP points mid stack page.
const (
	codeBase  = 0x10_000
	dataBase  = 0x20_000
	stackBase = 0x30_000
)

func buildInst(op isa.Op, form isa.Form, size uint8, imm int64) isa.Inst {
	in := isa.Inst{Op: op, Form: form, Size: size, Imm: imm}
	switch form {
	case isa.FR, isa.FRI:
		in.Reg = isa.RBX
	case isa.FRR:
		in.Reg, in.Reg2 = isa.RBX, isa.RCX
	case isa.FM, isa.FMI:
		in.Mem = testMem()
	case isa.FRM, isa.FMR:
		in.Reg = isa.RBX
		in.Mem = testMem()
	}
	return in
}

func testMem() isa.Mem {
	return isa.Mem{Base: isa.RSI, Index: isa.RDI, Scale: 4, Disp: 64}
}

// immCandidates picks immediates that exercise distinct table rows:
// shifts kill flags only for a nonzero immediate count, so both sides
// are enumerated.
func immCandidates(op isa.Op, form isa.Form) []int64 {
	switch {
	case op == isa.SHL || op == isa.SHR || op == isa.SAR:
		return []int64{0, 3}
	case form == isa.FRel8 || form == isa.FRel32:
		return []int64{16}
	case form == isa.FRI || form == isa.FMI || form == isa.FI:
		return []int64{5}
	}
	return []int64{0}
}

// machineState is everything a single instruction can observe or change.
type machineState struct {
	regs  [isa.NumRegs]uint64
	flags vm.Flags
}

func baseState(allFlags bool) machineState {
	var s machineState
	for r := 0; r < isa.NumRegs; r++ {
		s.regs[r] = uint64(0x40 + r*8) // small, nonzero, distinct
	}
	s.regs[isa.RSI] = dataBase + 0x800
	s.regs[isa.RDI] = 3
	s.regs[isa.RSP] = stackBase + 0x800
	s.flags = vm.Flags{ZF: allFlags, SF: allFlags, CF: allFlags, OF: allFlags}
	return s
}

// outcome captures the observable result of executing one instruction.
type outcome struct {
	regs  [isa.NumRegs]uint64
	flags vm.Flags
	rip   uint64
	data  [mem.PageSize]byte
	stack [mem.PageSize]byte
	err   bool
}

// runOne single-steps in from the given machine state on a fresh VM.
func runOne(t *testing.T, in *isa.Inst, s machineState) outcome {
	t.Helper()
	v := vm.New(mem.New())
	v.Mem.Map(codeBase, mem.PageSize, mem.PermRead|mem.PermWrite|mem.PermExec)
	v.Mem.Map(dataBase, mem.PageSize, mem.PermRW)
	v.Mem.Map(stackBase, mem.PageSize, mem.PermRW)
	// Nonzero fill so memory-sourced divisors are never zero.
	if err := v.Mem.Memset(dataBase, 0x11, mem.PageSize); err != nil {
		t.Fatal(err)
	}
	if err := v.Mem.Memset(stackBase, 0x22, mem.PageSize); err != nil {
		t.Fatal(err)
	}
	code, err := isa.Encode(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Mem.WriteAt(codeBase, code); err != nil {
		t.Fatal(err)
	}
	v.Regs = s.regs
	v.Flags = s.flags
	v.RIP = codeBase

	var out outcome
	if err := v.Step(); err != nil {
		out.err = true
		return out
	}
	out.regs = v.Regs
	out.flags = v.Flags
	out.rip = v.RIP
	if err := v.Mem.ReadAt(dataBase, out.data[:]); err != nil {
		t.Fatal(err)
	}
	if err := v.Mem.ReadAt(stackBase, out.stack[:]); err != nil {
		t.Fatal(err)
	}
	return out
}

func flagVal(f vm.Flags, bit cfg.FlagSet) bool {
	switch bit {
	case cfg.FlagZ:
		return f.ZF
	case cfg.FlagS:
		return f.SF
	case cfg.FlagC:
		return f.CF
	case cfg.FlagO:
		return f.OF
	}
	return false
}

func setFlag(f *vm.Flags, bit cfg.FlagSet, v bool) {
	switch bit {
	case cfg.FlagZ:
		f.ZF = v
	case cfg.FlagS:
		f.SF = v
	case cfg.FlagC:
		f.CF = v
	case cfg.FlagO:
		f.OF = v
	}
}

var flagBits = []cfg.FlagSet{cfg.FlagZ, cfg.FlagS, cfg.FlagC, cfg.FlagO}

func checkSemantics(t *testing.T, in *isa.Inst) {
	t.Helper()
	label := fmt.Sprintf("%s/%s/size=%d/imm=%d", in.Op, in.Form, in.Size, in.Imm)

	read := cfg.RegsRead(in)
	written := cfg.RegsWritten(in)
	fRead := cfg.FlagsRead(in)
	fKilled := cfg.FlagsKilled(in)

	// Static consistency between the legacy predicates and the lattice
	// sets: a nonzero must-kill set implies the may-write bit, and a
	// nonzero read set implies the may-read bit.
	if fKilled != 0 && !cfg.WritesFlags(in) {
		t.Errorf("%s: FlagsKilled=%04b but WritesFlags=false", label, fKilled)
	}
	if fRead != 0 && !cfg.ReadsFlags(in) {
		t.Errorf("%s: FlagsRead=%04b but ReadsFlags=false", label, fRead)
	}

	s0 := baseState(false)
	base := runOne(t, in, s0)
	if base.err {
		t.Errorf("%s: baseline execution faulted", label)
		return
	}
	s1 := baseState(true)
	baseAll := runOne(t, in, s1)
	if baseAll.err {
		t.Errorf("%s: all-flags baseline faulted", label)
		return
	}

	// RegsWritten soundness: registers outside the set are unchanged.
	for r := 0; r < isa.NumRegs; r++ {
		if base.regs[r] != s0.regs[r] && !written.Has(isa.Reg(r)) {
			t.Errorf("%s: modifies %s (=%#x) but RegsWritten omits it",
				label, isa.Reg(r), base.regs[r])
		}
	}

	// WritesFlags soundness: with the bit off, flags survive verbatim.
	if !cfg.WritesFlags(in) {
		if base.flags != s0.flags || baseAll.flags != s1.flags {
			t.Errorf("%s: modifies flags but WritesFlags=false", label)
		}
	}

	// FlagsKilled soundness: a killed flag's output is input-independent.
	// (Valid to compare across the two flag baselines when no flag is an
	// input; ops with FlagsRead != 0 have an empty kill set except POPF,
	// which reads no flags.)
	if fRead == 0 {
		for _, bit := range flagBits {
			if fKilled.Has(bit) && flagVal(base.flags, bit) != flagVal(baseAll.flags, bit) {
				t.Errorf("%s: flag %04b in FlagsKilled but its output depends on input flags",
					label, bit)
			}
		}
	}

	// Data-page writes require Writes().
	if base.data != dataFill() && !in.Writes() {
		t.Errorf("%s: writes the data page but Inst.Writes()=false", label)
	}

	// RegsRead soundness: perturbing an unread register must not change
	// any output except that register's own (possibly overwritten) slot.
	for r := 0; r < isa.NumRegs; r++ {
		if read.Has(isa.Reg(r)) {
			continue
		}
		sp := s0
		sp.regs[r] += 8
		out := runOne(t, in, sp)
		if out.err {
			t.Errorf("%s: perturbing unread %s faulted", label, isa.Reg(r))
			continue
		}
		for q := 0; q < isa.NumRegs; q++ {
			want := base.regs[q]
			if q == r && !written.Has(isa.Reg(q)) {
				want = sp.regs[q]
			}
			if out.regs[q] != want {
				t.Errorf("%s: %s influences %s but RegsRead omits it",
					label, isa.Reg(r), isa.Reg(q))
			}
		}
		if out.flags != base.flags {
			t.Errorf("%s: %s influences flags but RegsRead omits it", label, isa.Reg(r))
		}
		if out.rip != base.rip {
			t.Errorf("%s: %s influences RIP but RegsRead omits it", label, isa.Reg(r))
		}
		if out.data != base.data || out.stack != base.stack {
			t.Errorf("%s: %s influences memory but RegsRead omits it", label, isa.Reg(r))
		}
	}

	// FlagsRead soundness: perturbing an unread flag must not change any
	// non-flag output or any other flag; its own output either follows
	// the input through (not killed) or is input-independent.
	for _, bit := range flagBits {
		if fRead.Has(bit) {
			continue
		}
		sp := s0
		setFlag(&sp.flags, bit, true)
		out := runOne(t, in, sp)
		if out.err {
			t.Errorf("%s: perturbing unread flag %04b faulted", label, bit)
			continue
		}
		if out.regs != base.regs || out.rip != base.rip ||
			out.data != base.data || out.stack != base.stack {
			t.Errorf("%s: flag %04b influences non-flag state but FlagsRead omits it",
				label, bit)
		}
		for _, other := range flagBits {
			if other == bit {
				continue
			}
			if flagVal(out.flags, other) != flagVal(base.flags, other) {
				t.Errorf("%s: flag %04b influences flag %04b but FlagsRead omits it",
					label, bit, other)
			}
		}
		if fKilled.Has(bit) && flagVal(out.flags, bit) != flagVal(base.flags, bit) {
			t.Errorf("%s: flag %04b in FlagsKilled but survives perturbation", label, bit)
		}
	}
}

// dataFill reproduces the initial data-page image for comparison.
func dataFill() (p [mem.PageSize]byte) {
	for i := range p {
		p[i] = 0x11
	}
	return
}
