package cfg

// DomTree is an immediate-dominator tree over a Graph, computed with the
// Cooper–Harvey–Kennedy iterative algorithm. A virtual root with an edge
// to every Entry block makes the forest single-rooted; consequently a
// block reachable through a control transfer the graph does not model
// (indirect jump, call return, trap) is dominated by nothing but itself,
// which is exactly the conservative answer.
type DomTree struct {
	g     *Graph
	idom  []int // immediate dominator block id; root is virtualRoot
	depth []int // depth in the dominator tree (root = 0)
}

// virtualRoot is the node id used for the synthetic root.
func (d *DomTree) virtualRoot() int { return len(d.g.Blocks) }

// NewDomTree computes the dominator tree of g.
func NewDomTree(g *Graph) *DomTree {
	n := len(g.Blocks)
	root := n
	d := &DomTree{g: g, idom: make([]int, n+1), depth: make([]int, n+1)}

	// Predecessor lists including the virtual root edges.
	preds := make([][]int, n)
	for b := range g.Blocks {
		preds[b] = g.Blocks[b].Preds
	}
	isEntry := make([]bool, n)
	for _, e := range g.Entries {
		isEntry[e] = true
	}

	// Reverse postorder from the root.
	post := make([]int, 0, n)
	state := make([]uint8, n) // 0 unvisited, 1 on stack, 2 done
	type frame struct{ b, i int }
	var stack []frame
	for _, e := range g.Entries {
		if state[e] != 0 {
			continue
		}
		state[e] = 1
		stack = append(stack, frame{e, 0})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.i < len(g.Blocks[f.b].Succs) {
				s := g.Blocks[f.b].Succs[f.i]
				f.i++
				if state[s] == 0 {
					state[s] = 1
					stack = append(stack, frame{s, 0})
				}
				continue
			}
			state[f.b] = 2
			post = append(post, f.b)
			stack = stack[:len(stack)-1]
		}
	}
	rpo := make([]int, 0, n)
	for i := len(post) - 1; i >= 0; i-- {
		rpo = append(rpo, post[i])
	}
	rpoNum := make([]int, n+1)
	for i, b := range rpo {
		rpoNum[b] = i + 1 // root gets 0
	}
	rpoNum[root] = 0

	const undef = -1
	for i := range d.idom {
		d.idom[i] = undef
	}
	d.idom[root] = root

	intersect := func(a, b int) int {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				a = d.idom[a]
			}
			for rpoNum[b] > rpoNum[a] {
				b = d.idom[b]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			newIdom := undef
			if isEntry[b] {
				newIdom = root
			}
			for _, p := range preds[b] {
				if d.idom[p] == undef {
					continue
				}
				if newIdom == undef {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != undef && d.idom[b] != newIdom {
				d.idom[b] = newIdom
				changed = true
			}
		}
	}

	// Depths (root = 0). Unreached blocks cannot occur: markEntries
	// guarantees every block is root-reachable.
	for _, b := range rpo {
		d.depth[b] = d.depth[d.idom[b]] + 1
	}
	return d
}

// Idom returns the immediate dominator of block b, or -1 for blocks
// whose only dominator is the virtual root.
func (d *DomTree) Idom(b int) int {
	if i := d.idom[b]; i != d.virtualRoot() {
		return i
	}
	return -1
}

// Depth returns b's depth in the dominator tree (children of the
// virtual root have depth 1).
func (d *DomTree) Depth(b int) int { return d.depth[b] }

// MaxDepth returns the height of the dominator tree over the block
// range [lo, hi) (used for per-function report stats).
func (d *DomTree) MaxDepth(blocks []int) int {
	max := 0
	for _, b := range blocks {
		if d.depth[b] > max {
			max = d.depth[b]
		}
	}
	return max
}

// Dominates reports whether block a dominates block b (reflexive).
func (d *DomTree) Dominates(a, b int) bool {
	for d.depth[b] > d.depth[a] {
		b = d.idom[b]
	}
	return a == b
}
