package cfg

// Liveness is the whole-CFG backward register+flags liveness analysis.
// The lattice is (RegSet, FlagSet) ordered by inclusion; the transfer
// function for one instruction is
//
//	live_in  = (live_out  \ RegsWritten) ∪ RegsRead
//	flags_in = (flags_out \ FlagsKilled) ∪ FlagsRead
//
// and the block-level equations are solved with a worklist to a fixed
// point. Unknown block boundaries (indirect jumps, returns, traps,
// text end) use ⊤ = (AllRegs, AllFlags) as live-out, so the analysis is
// never less conservative than reality. RegsWritten over-approximates
// writes only for CALL/RTCALL, whose RegsRead is AllRegs — the gen set
// saturates before the kill can remove anything — and for shifts, which
// read their own operand; so using it as the kill set is sound.
type Liveness struct {
	g        *Graph
	liveOut  []RegSet
	flagsOut []FlagSet
}

// NewLiveness solves the liveness equations over g.
func NewLiveness(g *Graph) *Liveness {
	n := len(g.Blocks)
	lv := &Liveness{
		g:        g,
		liveOut:  make([]RegSet, n),
		flagsOut: make([]FlagSet, n),
	}
	liveIn := make([]RegSet, n)
	flagsIn := make([]FlagSet, n)

	// Seed: worst-case boundary for unknown successors.
	for b := range g.Blocks {
		if g.Blocks[b].Unknown || len(g.Blocks[b].Succs) == 0 {
			lv.liveOut[b] = AllRegs
			lv.flagsOut[b] = AllFlags
		}
	}

	inWork := make([]bool, n)
	work := make([]int, 0, n)
	for b := n - 1; b >= 0; b-- {
		work = append(work, b)
		inWork[b] = true
	}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[b] = false

		out := lv.liveOut[b]
		fout := lv.flagsOut[b]
		for _, s := range g.Blocks[b].Succs {
			out |= liveIn[s]
			fout |= flagsIn[s]
		}
		lv.liveOut[b] = out
		lv.flagsOut[b] = fout

		in, fin := lv.transferBlock(b, out, fout)
		if in != liveIn[b] || fin != flagsIn[b] {
			liveIn[b] = in
			flagsIn[b] = fin
			for _, p := range g.Blocks[b].Preds {
				if !inWork[p] {
					inWork[p] = true
					work = append(work, p)
				}
			}
		}
	}
	return lv
}

// transferBlock applies the backward transfer across all instructions
// of block b, given the block's live-out state.
func (lv *Liveness) transferBlock(b int, live RegSet, flags FlagSet) (RegSet, FlagSet) {
	blk := &lv.g.Blocks[b]
	p := lv.g.Prog
	for j := blk.End - 1; j >= blk.Start; j-- {
		in := &p.Insts[j].Inst
		live = (live &^ RegsWritten(in)) | RegsRead(in)
		flags = (flags &^ FlagsKilled(in)) | FlagsRead(in)
	}
	return live, flags
}

// liveAt computes the live state immediately before instruction i by
// replaying the block suffix from the block's live-out state.
func (lv *Liveness) liveAt(i int) (RegSet, FlagSet) {
	b := lv.g.BlockOf[i]
	blk := &lv.g.Blocks[b]
	p := lv.g.Prog
	live, flags := lv.liveOut[b], lv.flagsOut[b]
	for j := blk.End - 1; j >= i; j-- {
		in := &p.Insts[j].Inst
		live = (live &^ RegsWritten(in)) | RegsRead(in)
		flags = (flags &^ FlagsKilled(in)) | FlagsRead(in)
	}
	return live, flags
}

// DeadRegsAt returns the registers provably dead immediately before
// instruction i, considering every path through the CFG. It is never
// less precise than Program.DeadRegsAt (the block-local oracle): the
// straight-line scan is the restriction of these equations to a single
// path with ⊤ at the block end. RSP is never reported dead.
func (lv *Liveness) DeadRegsAt(i int) RegSet {
	live, _ := lv.liveAt(i)
	return (AllRegs &^ live).clearRSP()
}

// FlagsDeadAt reports whether every condition flag is provably dead
// immediately before instruction i.
func (lv *Liveness) FlagsDeadAt(i int) bool {
	_, flags := lv.liveAt(i)
	return flags == 0
}

// LiveFlagsAt returns the set of flags live immediately before
// instruction i (used by the translation validator's audit).
func (lv *Liveness) LiveFlagsAt(i int) FlagSet {
	_, flags := lv.liveAt(i)
	return flags
}
