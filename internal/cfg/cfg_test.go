package cfg_test

import (
	"testing"

	"redfat/internal/asm"
	"redfat/internal/cfg"
	"redfat/internal/isa"
	"redfat/internal/relf"
)

func disasm(t *testing.T, build func(b *asm.Builder)) *cfg.Program {
	t.Helper()
	b := asm.NewBuilder(asm.Options{})
	build(b)
	bin, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p, err := cfg.Disassemble(bin)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDisassembleLinear(t *testing.T) {
	p := disasm(t, func(b *asm.Builder) {
		b.Func("main")
		b.MovRI(isa.RAX, 1)
		b.AluRI(isa.ADD, isa.RAX, 2)
		b.Ret()
	})
	if len(p.Insts) != 3 {
		t.Fatalf("insts = %d, want 3", len(p.Insts))
	}
	if p.Insts[0].Addr != relf.DefaultTextBase {
		t.Errorf("first inst at %#x", p.Insts[0].Addr)
	}
	if i, ok := p.InstAt(p.Insts[1].Addr); !ok || i != 1 {
		t.Errorf("InstAt mid = %d, %v", i, ok)
	}
	if _, ok := p.InstAt(p.Insts[1].Addr + 1); ok {
		t.Error("InstAt accepted a mid-instruction address")
	}
}

func TestLeaderRecovery(t *testing.T) {
	p := disasm(t, func(b *asm.Builder) {
		b.Func("main") // leader: entry
		b.MovRI(isa.RAX, 0)
		b.Jcc(isa.JE, "target")
		b.MovRI(isa.RBX, 1) // leader: fall-through of a branch
		b.Label("target")   // leader: branch target
		b.MovRI(isa.RCX, 2)
		b.Ret()
		b.Func("helper") // leader: function symbol + post-RET
		b.Ret()
	})
	var leaders []int
	for i, di := range p.Insts {
		if p.IsLeader(di.Addr) {
			leaders = append(leaders, i)
		}
	}
	// entry(0), fallthrough(2)... indices: 0 mov, 1 jcc, 2 mov(fall),
	// 3 mov(target — same as fall? no: fall-through IS index 2; target is 3), 4 ret, 5 ret.
	want := map[int]bool{0: true, 2: true, 3: true, 5: true}
	for _, l := range leaders {
		if !want[l] {
			t.Errorf("unexpected leader at index %d", l)
		}
		delete(want, l)
	}
	for missing := range want {
		t.Errorf("missing leader at index %d", missing)
	}
}

func TestConservativeLeaderFromImmediate(t *testing.T) {
	// An address-like immediate pointing into text marks a conservative
	// leader (potential indirect target).
	p := disasm(t, func(b *asm.Builder) {
		b.Func("main")
		b.LoadAddr(isa.RAX, "indirect", 0) // imm = address of "indirect"
		b.Ret()
		b.Func("indirect")
		b.Ret()
	})
	var found bool
	for _, di := range p.Insts {
		if di.Inst.Op == isa.RET && p.IsLeader(di.Addr) && di.Addr != p.Insts[0].Addr {
			found = true
		}
	}
	if !found {
		t.Error("address-taken function not marked as leader")
	}
}

func TestRegsReadWritten(t *testing.T) {
	cases := []struct {
		in          isa.Inst
		read, write []isa.Reg
	}{
		{isa.Inst{Op: isa.MOV, Form: isa.FRR, Reg: isa.RAX, Reg2: isa.RBX},
			[]isa.Reg{isa.RBX}, []isa.Reg{isa.RAX}},
		{isa.Inst{Op: isa.ADD, Form: isa.FRR, Reg: isa.RAX, Reg2: isa.RBX},
			[]isa.Reg{isa.RAX, isa.RBX}, []isa.Reg{isa.RAX}},
		{isa.Inst{Op: isa.MOV, Form: isa.FMR, Reg: isa.RCX, Size: 8,
			Mem: isa.Mem{Base: isa.RDI, Index: isa.RSI, Scale: 2}},
			[]isa.Reg{isa.RCX, isa.RDI, isa.RSI}, nil},
		{isa.Inst{Op: isa.MOV, Form: isa.FRM, Reg: isa.RCX, Size: 8,
			Mem: isa.Mem{Base: isa.RDI, Index: isa.RegNone, Scale: 1}},
			[]isa.Reg{isa.RDI}, []isa.Reg{isa.RCX}},
		{isa.Inst{Op: isa.PUSH, Form: isa.FR, Reg: isa.RBX},
			[]isa.Reg{isa.RBX, isa.RSP}, []isa.Reg{isa.RSP}},
		{isa.Inst{Op: isa.POP, Form: isa.FR, Reg: isa.RBX},
			[]isa.Reg{isa.RSP}, []isa.Reg{isa.RBX, isa.RSP}},
		{isa.Inst{Op: isa.UDIV, Form: isa.FR, Reg: isa.RCX},
			[]isa.Reg{isa.RAX, isa.RCX}, []isa.Reg{isa.RAX, isa.RDX}},
		{isa.Inst{Op: isa.CMP, Form: isa.FRI, Reg: isa.RAX, Imm: 1},
			[]isa.Reg{isa.RAX}, nil},
		{isa.Inst{Op: isa.SHR, Form: isa.FRR, Reg: isa.RAX, Reg2: isa.RCX},
			[]isa.Reg{isa.RAX, isa.RCX}, []isa.Reg{isa.RAX}},
	}
	for _, c := range cases {
		r, w := cfg.RegsRead(&c.in), cfg.RegsWritten(&c.in)
		for _, reg := range c.read {
			if !r.Has(reg) {
				t.Errorf("%v: %v not in reads", c.in.String(), reg)
			}
		}
		for _, reg := range c.write {
			if !w.Has(reg) {
				t.Errorf("%v: %v not in writes", c.in.String(), reg)
			}
		}
	}
	// Calls are conservative: everything.
	call := isa.Inst{Op: isa.RTCALL, Form: isa.FI}
	if cfg.RegsRead(&call) != cfg.AllRegs || cfg.RegsWritten(&call) != cfg.AllRegs {
		t.Error("RTCALL not treated conservatively")
	}
}

func TestDeadRegsAt(t *testing.T) {
	p := disasm(t, func(b *asm.Builder) {
		b.Func("main")
		b.MovRI(isa.RAX, 1)                // 0: RAX written before any read → dead at 0
		b.MovRI(isa.RCX, 2)                // 1
		b.AluRR(isa.ADD, isa.RAX, isa.RCX) // 2
		b.Ret()
	})
	dead := p.DeadRegsAt(0)
	if !dead.Has(isa.RAX) || !dead.Has(isa.RCX) {
		t.Errorf("dead at 0 = %v, want rax+rcx", dead)
	}
	// At index 2, RAX is read — not dead.
	dead = p.DeadRegsAt(2)
	if dead.Has(isa.RAX) || dead.Has(isa.RCX) {
		t.Errorf("dead at 2 = %v, want neither", dead)
	}
	// RSP is never dead.
	if p.DeadRegsAt(0).Has(isa.RSP) {
		t.Error("RSP reported dead")
	}
}

func TestFlagsDeadAt(t *testing.T) {
	p := disasm(t, func(b *asm.Builder) {
		b.Func("main")
		b.MovRI(isa.RAX, 0)          // 0
		b.AluRI(isa.CMP, isa.RAX, 1) // 1: writes flags → dead before it
		b.Jcc(isa.JE, "out")         // 2: reads flags
		b.MovRI(isa.RBX, 1)          // 3
		b.Label("out")
		b.Ret() // 4
	})
	if !p.FlagsDeadAt(0) {
		t.Error("flags live before the CMP that kills them")
	}
	if p.FlagsDeadAt(2) {
		t.Error("flags dead right before a conditional jump")
	}
}

func TestBatches(t *testing.T) {
	p := disasm(t, func(b *asm.Builder) {
		b.Func("main")
		// Block 1: three same-base stores — one batch (Example 2 shape).
		b.StoreI(isa.RAX, 0, 1, 8)  // 0
		b.StoreI(isa.RAX, 8, 2, 8)  // 1
		b.StoreI(isa.RAX, 16, 3, 8) // 2
		// Redefinition of the base register splits the batch.
		b.MovRI(isa.RAX, 0)         // 3
		b.StoreI(isa.RAX, 24, 4, 8) // 4
		// A branch ends the block.
		b.Jcc(isa.JE, "next") // 5
		b.Label("next")
		b.StoreI(isa.RBX, 0, 5, 8) // 6
		b.Ret()
	})
	all := func(int) bool { return true }
	batches := p.Batches(func(i int) bool { return all(i) && p.Insts[i].Inst.IsMemAccess() }, 8)
	if len(batches) != 3 {
		t.Fatalf("batches = %d, want 3: %+v", len(batches), batches)
	}
	if len(batches[0].Members) != 3 {
		t.Errorf("first batch = %v, want members 0,1,2", batches[0].Members)
	}
	if len(batches[1].Members) != 1 || batches[1].Members[0] != 4 {
		t.Errorf("second batch = %v, want [4]", batches[1].Members)
	}
	if len(batches[2].Members) != 1 || batches[2].Members[0] != 6 {
		t.Errorf("third batch = %v, want [6]", batches[2].Members)
	}
}

func TestBatchesRespectIndexWrites(t *testing.T) {
	p := disasm(t, func(b *asm.Builder) {
		b.Func("main")
		b.StoreM(asm.MemBID(isa.RAX, isa.RCX, 8, 0), isa.RDX, 8) // 0
		b.AluRI(isa.ADD, isa.RCX, 1)                             // 1: index changes
		b.StoreM(asm.MemBID(isa.RAX, isa.RCX, 8, 0), isa.RDX, 8) // 2
		b.Ret()
	})
	batches := p.Batches(func(i int) bool { return p.Insts[i].Inst.IsMemAccess() }, 8)
	if len(batches) != 2 {
		t.Fatalf("batches = %d, want 2 (index redefined between accesses)", len(batches))
	}
}

func TestBatchesMaxWidth(t *testing.T) {
	p := disasm(t, func(b *asm.Builder) {
		b.Func("main")
		for i := 0; i < 6; i++ {
			b.StoreI(isa.RAX, int32(8*i), int64(i), 8)
		}
		b.Ret()
	})
	batches := p.Batches(func(i int) bool { return p.Insts[i].Inst.IsMemAccess() }, 2)
	if len(batches) != 3 {
		t.Fatalf("batches = %d, want 3 with max width 2", len(batches))
	}
	for _, bt := range batches {
		if len(bt.Members) > 2 {
			t.Errorf("batch exceeds width: %v", bt.Members)
		}
	}
}

func TestBlockEnd(t *testing.T) {
	p := disasm(t, func(b *asm.Builder) {
		b.Func("main")
		b.MovRI(isa.RAX, 1) // 0
		b.MovRI(isa.RBX, 2) // 1
		b.Jmp("end")        // 2: block ends after the branch
		b.Label("end")
		b.Ret() // 3
	})
	if got := p.BlockEnd(0); got != 3 {
		t.Errorf("BlockEnd(0) = %d, want 3", got)
	}
	if got := p.BlockEnd(3); got != 4 {
		t.Errorf("BlockEnd(3) = %d, want 4", got)
	}
}

func TestDisassembleErrors(t *testing.T) {
	if _, err := cfg.Disassemble(&relf.Binary{}); err == nil {
		t.Error("binary without text accepted")
	}
	bad := &relf.Binary{}
	bad.AddSection(&relf.Section{Name: ".text", Kind: relf.SecText,
		Addr: 0x1000, Size: 2, Data: []byte{0x00, 0x00}, Exec: true})
	if _, err := cfg.Disassemble(bad); err == nil {
		t.Error("undecodable text accepted")
	}
}

func TestRegSet(t *testing.T) {
	var s cfg.RegSet
	s = s.Add(isa.RAX).Add(isa.R15)
	if !s.Has(isa.RAX) || !s.Has(isa.R15) || s.Has(isa.RBX) {
		t.Error("RegSet membership broken")
	}
	if s.Count() != 2 {
		t.Errorf("Count = %d", s.Count())
	}
	if s.Add(isa.RegNone) != s || s.Add(isa.RIP) != s {
		t.Error("pseudo registers changed the set")
	}
	o := cfg.RegSet(0).Add(isa.RBX)
	if s.Intersects(o) {
		t.Error("disjoint sets intersect")
	}
	if !s.Union(o).Has(isa.RBX) {
		t.Error("union missing member")
	}
}
