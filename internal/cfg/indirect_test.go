package cfg_test

import (
	"testing"

	"redfat/internal/asm"
	"redfat/internal/cfg"
	"redfat/internal/isa"
	"redfat/internal/relf"
)

// switchProgram assembles the canonical marker-built switch: a guarded
// three-way jump-table dispatch with landing-pad handlers. The guard op
// and compare bound are parameters so tests can exercise every proof
// polarity; mutate (optional) runs right before the table load.
type switchOpts struct {
	guard     isa.Op // JA/JAE on the fall-through layout, JB/JBE on taken
	taken     bool   // guard jumps TO the dispatch (JB/JBE layout)
	cmpImm    int64
	noLpads   bool                 // handlers without landing pads
	preLoad   func(b *asm.Builder) // injected between guard and load
	memForm   bool                 // jmp *table(,%rcx,8) instead of reg form
	funcTable bool                 // use a writable, undeclared .data table
}

func buildSwitch(t *testing.T, o switchOpts) *relf.Binary {
	t.Helper()
	b := asm.NewBuilder(asm.Options{})
	b.Func("main")
	b.MovRI(isa.RCX, 1)
	b.AluRI(isa.CMP, isa.RCX, o.cmpImm)
	if o.taken {
		b.Jcc(o.guard, "dispatch")
		b.Jmp("default")
	} else {
		b.Jcc(o.guard, "default")
	}
	b.Label("dispatch")
	if o.preLoad != nil {
		o.preLoad(b)
	}
	if o.memForm {
		b.JmpIndexed("table", isa.RCX)
	} else {
		b.LoadIndexed(isa.RAX, "table", isa.RCX, 8, 8)
		b.JmpReg(isa.RAX)
	}
	for _, h := range []string{"h0", "h1", "h2"} {
		b.Label(h)
		if !o.noLpads {
			b.Lpad()
		}
		b.MovRI(isa.RBX, 7)
		b.Jmp("out")
	}
	b.Label("default")
	b.MovRI(isa.RBX, 99)
	b.Label("out")
	b.Emit(isa.Inst{Op: isa.HLT, Form: isa.FNone})
	if o.funcTable {
		b.FuncTable("table", "h0", "h1", "h2")
		// Keep the binary marker-built: declare an unrelated table so the
		// writable dispatch table is judged on its own (lack of) merits.
		b.JumpTable("decoy", "h0")
	} else {
		b.JumpTable("table", "h0", "h1", "h2")
	}
	bin, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return bin
}

func mustGraph(t *testing.T, bin *relf.Binary, opts cfg.GraphOptions) *cfg.Graph {
	t.Helper()
	p, err := cfg.Disassemble(bin)
	if err != nil {
		t.Fatalf("disassemble: %v", err)
	}
	return cfg.NewGraphOpts(p, opts)
}

// dispatchBlock finds the block terminated by the (unique) indirect jump.
func dispatchBlock(t *testing.T, g *cfg.Graph) int {
	t.Helper()
	for b := range g.Blocks {
		last := &g.Prog.Insts[g.Blocks[b].End-1].Inst
		if last.Op == isa.JMP && (last.Form == isa.FR || last.Form == isa.FM) {
			return b
		}
	}
	t.Fatal("no indirect jump block found")
	return -1
}

func TestTableResolutionGuardPolarities(t *testing.T) {
	cases := []struct {
		name  string
		o     switchOpts
		bound uint32
	}{
		{"ja-fallthrough", switchOpts{guard: isa.JA, cmpImm: 2}, 3},
		{"jae-fallthrough", switchOpts{guard: isa.JAE, cmpImm: 3}, 3},
		{"jbe-taken", switchOpts{guard: isa.JBE, taken: true, cmpImm: 2}, 3},
		{"jb-taken", switchOpts{guard: isa.JB, taken: true, cmpImm: 3}, 3},
		{"memform", switchOpts{guard: isa.JA, cmpImm: 2, memForm: true}, 3},
		{"partial-bound", switchOpts{guard: isa.JA, cmpImm: 1}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := mustGraph(t, buildSwitch(t, tc.o), cfg.GraphOptions{})
			if g.Indirect == nil {
				t.Fatal("marker-built binary: Indirect must be set")
			}
			db := dispatchBlock(t, g)
			blk := &g.Blocks[db]
			if blk.Unknown {
				t.Fatal("dispatch block still Unknown")
			}
			addr := g.Prog.Insts[blk.End-1].Addr
			res := g.Indirect.Site(addr)
			if res == nil || res.Kind != cfg.ResolvedTable {
				t.Fatalf("site %#x: want table resolution, got %+v", addr, res)
			}
			if res.Bound != tc.bound {
				t.Fatalf("bound: got %d want %d", res.Bound, tc.bound)
			}
			if len(blk.Succs) != int(tc.bound) {
				t.Fatalf("succs: got %d want %d", len(blk.Succs), tc.bound)
			}
			// Every recovered target must start with a landing pad, and —
			// the point of the whole exercise — must NOT be an Entry:
			// dominance may now cross the dispatch.
			for _, s := range blk.Succs {
				h := &g.Blocks[s]
				if g.Prog.Insts[h.Start].Inst.Op != isa.LPAD {
					t.Fatalf("recovered target block %d does not start with LPAD", s)
				}
				if tc.bound == 3 && h.Entry {
					t.Fatalf("handler block %d still marked Entry", s)
				}
			}
		})
	}
}

func TestNoIndirectKnobKeepsUnknown(t *testing.T) {
	bin := buildSwitch(t, switchOpts{guard: isa.JA, cmpImm: 2})
	g := mustGraph(t, bin, cfg.GraphOptions{NoIndirect: true})
	if g.Indirect != nil {
		t.Fatal("NoIndirect: Indirect must be nil")
	}
	db := dispatchBlock(t, g)
	if !g.Blocks[db].Unknown {
		t.Fatal("NoIndirect: dispatch block must stay Unknown")
	}
	// The knob must not change the block partition (guest-visible state
	// like batch boundaries depends on it): same block count and spans.
	g2 := mustGraph(t, bin, cfg.GraphOptions{})
	if len(g.Blocks) != len(g2.Blocks) {
		t.Fatalf("block partition differs: %d vs %d", len(g.Blocks), len(g2.Blocks))
	}
	for b := range g.Blocks {
		if g.Blocks[b].Start != g2.Blocks[b].Start || g.Blocks[b].End != g2.Blocks[b].End {
			t.Fatalf("block %d span differs across knob settings", b)
		}
	}
}

func TestNonMarkerBinaryUnaffected(t *testing.T) {
	// Same shape but a plain writable function table and no landing pads:
	// not marker-built, recovery must not even engage.
	b := asm.NewBuilder(asm.Options{})
	b.Func("main")
	b.MovRI(isa.RCX, 1)
	b.AluRI(isa.CMP, isa.RCX, 2)
	b.Jcc(isa.JA, "out")
	b.LoadIndexed(isa.RAX, "table", isa.RCX, 8, 8)
	b.JmpReg(isa.RAX)
	b.Label("h0")
	b.MovRI(isa.RBX, 7)
	b.Label("out")
	b.Emit(isa.Inst{Op: isa.HLT, Form: isa.FNone})
	b.FuncTable("table", "h0", "h0", "h0")
	bin, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if cfg.MarkerBuilt(bin) {
		t.Fatal("plain binary must not be marker-built")
	}
	g := mustGraph(t, bin, cfg.GraphOptions{})
	if g.Indirect != nil {
		t.Fatal("non-marker binary: Indirect must stay nil")
	}
	if db := dispatchBlock(t, g); !g.Blocks[db].Unknown {
		t.Fatal("non-marker dispatch must stay Unknown")
	}
}

func TestBailsDegradeToLPADSet(t *testing.T) {
	cases := []struct {
		name string
		o    switchOpts
	}{
		// Guard claims more than the table holds: the slice proof must
		// refuse, leaving only the landing-pad-set fallback.
		{"overclaimed-bound", switchOpts{guard: isa.JA, cmpImm: 5}},
		// Index clobbered between guard and load: bound no longer applies.
		{"clobbered-index", switchOpts{guard: isa.JA, cmpImm: 2,
			preLoad: func(b *asm.Builder) {
				b.Emit(isa.Inst{Op: isa.INC, Form: isa.FR, Reg: isa.RCX, Size: 8})
			}}},
		// Signed guard admits "negative" (huge unsigned) indices.
		{"signed-guard", switchOpts{guard: isa.JG, cmpImm: 2}},
		// Writable undeclared function table: never trusted.
		{"writable-table", switchOpts{guard: isa.JA, cmpImm: 2, funcTable: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := mustGraph(t, buildSwitch(t, tc.o), cfg.GraphOptions{})
			db := dispatchBlock(t, g)
			blk := &g.Blocks[db]
			if blk.Unknown {
				t.Fatal("landing pads exist and no phantom bytes: fallback should apply")
			}
			addr := g.Prog.Insts[blk.End-1].Addr
			res := g.Indirect.Site(addr)
			if res == nil || res.Kind != cfg.ResolvedLPADSet {
				t.Fatalf("want LPAD-set fallback, got %+v", res)
			}
			// The fallback target set is exactly the landing-pad blocks.
			for _, s := range blk.Succs {
				if g.Prog.Insts[g.Blocks[s].Start].Inst.Op != isa.LPAD {
					t.Fatalf("fallback target block %d is not a landing pad", s)
				}
			}
		})
	}
}

func TestNoLpadsStaysUnknown(t *testing.T) {
	// Marker-built (a table is declared) but its entries are not landing
	// pads: table proof bails on the entry check, and with no landing
	// pads in the binary the fallback has nothing to offer.
	g := mustGraph(t, buildSwitch(t, switchOpts{guard: isa.JA, cmpImm: 2, noLpads: true}),
		cfg.GraphOptions{})
	db := dispatchBlock(t, g)
	if !g.Blocks[db].Unknown {
		t.Fatal("dispatch over non-LPAD entries must stay Unknown")
	}
	if res := g.Indirect.Site(g.Prog.Insts[g.Blocks[db].End-1].Addr); res != nil {
		t.Fatalf("unexpected resolution: %+v", res)
	}
}

func TestPhantomLPADByteDisablesFallback(t *testing.T) {
	// An immediate operand containing the LPAD opcode byte is a legal
	// dynamic target under the VM's raw-byte enforcement, so the
	// landing-pad-set fallback must refuse the whole binary.
	phantom := (int64(byte(isa.LPAD)) << 8) | int64(byte(isa.LPAD))
	g := mustGraph(t, buildSwitch(t, switchOpts{guard: isa.JA, cmpImm: 5,
		preLoad: func(b *asm.Builder) { b.MovRI(isa.RDX, phantom) }}),
		cfg.GraphOptions{})
	db := dispatchBlock(t, g)
	if !g.Blocks[db].Unknown {
		t.Fatal("phantom LPAD byte present: fallback must not apply")
	}
}

func TestTableResolutionSurvivesPhantomBytes(t *testing.T) {
	// Phantom bytes only poison the fallback; an explicit bounded table
	// proof does not rely on the landing-pad set being exhaustive.
	phantom := (int64(byte(isa.LPAD)) << 8) | int64(byte(isa.LPAD))
	g := mustGraph(t, buildSwitch(t, switchOpts{guard: isa.JA, cmpImm: 2,
		preLoad: func(b *asm.Builder) { b.MovRI(isa.RDX, phantom) }}),
		cfg.GraphOptions{})
	db := dispatchBlock(t, g)
	blk := &g.Blocks[db]
	if blk.Unknown {
		t.Fatal("table proof must survive phantom bytes")
	}
	res := g.Indirect.Site(g.Prog.Insts[blk.End-1].Addr)
	if res == nil || res.Kind != cfg.ResolvedTable {
		t.Fatalf("want table resolution, got %+v", res)
	}
}

func TestRetPairing(t *testing.T) {
	b := asm.NewBuilder(asm.Options{})
	b.Func("main")
	b.Lpad() // makes the binary marker-built; main is never paired (entry)
	b.Call("leaf")
	b.MovRI(isa.RBX, 1)
	b.Call("leaf")
	b.MovRI(isa.RBX, 2)
	b.Emit(isa.Inst{Op: isa.HLT, Form: isa.FNone})
	b.Func("leaf")
	b.MovRI(isa.RAX, 42)
	b.Ret()
	bin, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	g := mustGraph(t, bin, cfg.GraphOptions{})
	if g.Indirect == nil {
		t.Fatal("marker-built: Indirect must be set")
	}
	var ret *cfg.Resolved
	for i := range g.Indirect.Resolved {
		if g.Indirect.Resolved[i].Kind == cfg.ResolvedRet {
			ret = &g.Indirect.Resolved[i]
		}
	}
	if ret == nil {
		t.Fatal("leaf RET not paired")
	}
	if len(ret.Targets) != 2 {
		t.Fatalf("want 2 return points, got %v", ret.Targets)
	}
	rb, ok := g.Prog.InstAt(ret.Addr)
	if !ok {
		t.Fatal("ret addr not decoded")
	}
	blk := &g.Blocks[g.BlockOf[rb]]
	if blk.Unknown || len(blk.Succs) != 2 {
		t.Fatalf("ret block: Unknown=%v succs=%d", blk.Unknown, len(blk.Succs))
	}
}

func TestRetPairingBailsOnAddressTakenFunc(t *testing.T) {
	b := asm.NewBuilder(asm.Options{})
	b.Func("main")
	b.Lpad()
	b.Call("leaf")
	b.LoadAddr(isa.RDX, "leaf", 0) // function address escapes
	b.Emit(isa.Inst{Op: isa.HLT, Form: isa.FNone})
	b.Func("leaf")
	b.MovRI(isa.RAX, 42)
	b.Ret()
	bin, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	g := mustGraph(t, bin, cfg.GraphOptions{})
	for i := range g.Indirect.Resolved {
		if g.Indirect.Resolved[i].Kind == cfg.ResolvedRet {
			t.Fatalf("address-taken function must not be paired: %+v", g.Indirect.Resolved[i])
		}
	}
}

// TestRecoveredEdgesUnlockDominance pins the payoff: with recovery on,
// the dispatch block dominates every handler (so an available check in
// the dispatch covers handler accesses); with the ablation knob it cannot.
func TestRecoveredEdgesUnlockDominance(t *testing.T) {
	bin := buildSwitch(t, switchOpts{guard: isa.JA, cmpImm: 2})
	p, err := cfg.Disassemble(bin)
	if err != nil {
		t.Fatalf("disassemble: %v", err)
	}
	on := cfg.NewDataflowOpts(p, cfg.GraphOptions{})
	off := cfg.NewDataflowOpts(p, cfg.GraphOptions{NoIndirect: true})

	db := dispatchBlock(t, on.Graph)
	for _, h := range on.Graph.Blocks[db].Succs {
		if !on.Dom.Dominates(db, h) {
			t.Fatalf("recovery on: dispatch %d must dominate handler %d", db, h)
		}
	}
	// Under the ablation the handlers are address-taken Entries: nothing
	// dominates them but themselves.
	dbOff := dispatchBlock(t, off.Graph)
	for b := range off.Graph.Blocks {
		blk := &off.Graph.Blocks[b]
		if blk.Start != off.Graph.Blocks[dbOff].End {
			continue
		}
		if off.Dom.Dominates(dbOff, b) {
			t.Fatal("recovery off: dispatch must not dominate the first handler")
		}
	}
}
