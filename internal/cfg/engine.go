package cfg

// Dataflow bundles the whole-program analyses the rewriter and the
// translation validator share: the explicit CFG, the worklist liveness
// solution, and the dominator tree. Construction is a single pass over
// the program; queries are per-instruction replays within one block.
type Dataflow struct {
	Graph *Graph
	Live  *Liveness
	Dom   *DomTree
}

// NewDataflow builds the engine for a disassembled program.
func NewDataflow(p *Program) *Dataflow {
	return NewDataflowOpts(p, GraphOptions{})
}

// NewDataflowOpts is NewDataflow with explicit graph-recovery options.
func NewDataflowOpts(p *Program, opts GraphOptions) *Dataflow {
	g := NewGraphOpts(p, opts)
	return &Dataflow{Graph: g, Live: NewLiveness(g), Dom: NewDomTree(g)}
}

// DeadRegsAt returns the registers provably dead before instruction i
// under the whole-CFG liveness solution (never less precise than the
// block-local Program.DeadRegsAt oracle).
func (d *Dataflow) DeadRegsAt(i int) RegSet { return d.Live.DeadRegsAt(i) }

// FlagsDeadAt reports whether all flags are provably dead before
// instruction i under the whole-CFG liveness solution.
func (d *Dataflow) FlagsDeadAt(i int) bool { return d.Live.FlagsDeadAt(i) }

// Redundant runs the dominator-checked available-checks analysis over
// the candidate sites; see RedundantChecks.
func (d *Dataflow) Redundant(sites []CheckSite) map[int]int {
	return RedundantChecks(d.Graph, d.Dom, sites)
}
