package cfg

import (
	"encoding/binary"

	"redfat/internal/isa"
)

// Block is a recovered basic block: a maximal straight-line run of
// instructions [Start, End) in Program.Insts.
type Block struct {
	Start, End int // instruction index range, End exclusive

	Succs []int // successor block ids (static edges only)
	Preds []int // predecessor block ids

	// Unknown marks blocks whose successor set is not statically known
	// (indirect jumps, returns, traps, falling off the text section).
	// Analyses treat the block boundary as the worst case: every
	// register and flag is live out, and no check availability flows.
	Unknown bool

	// Entry marks blocks reachable from outside static control flow:
	// the binary entry point, function symbols, direct call targets,
	// address-taken candidates, and blocks with no static predecessor.
	// The dominator analysis gives them a virtual-root edge.
	Entry bool
}

// Graph is the explicit control-flow graph over a Program's recovered
// blocks. Edges are conservative: indirect control flow is modelled by
// marking every address-taken candidate as an Entry (virtual-root edge),
// so a dominance claim can never rely on a transfer the analysis did
// not see.
type Graph struct {
	Prog    *Program
	Blocks  []Block
	BlockOf []int // instruction index → block id
	Entries []int // block ids with a virtual-root edge

	// Indirect holds the results of indirect-flow recovery. It is nil
	// unless the binary is marker-built (.rf.jt present) and recovery was
	// not disabled; unresolved sites stay Unknown either way.
	Indirect *IndirectInfo
}

// NewGraph partitions the program into basic blocks and builds explicit
// successor/predecessor edges, with indirect-flow recovery enabled.
func NewGraph(p *Program) *Graph {
	return NewGraphOpts(p, GraphOptions{})
}

// NewGraphOpts is NewGraph with explicit recovery options. Blocks left
// with no proven successor set keep Unknown set.
func NewGraphOpts(p *Program, opts GraphOptions) *Graph {
	g := &Graph{Prog: p, BlockOf: make([]int, len(p.Insts))}

	for start := 0; start < len(p.Insts); {
		end := p.BlockEnd(start)
		id := len(g.Blocks)
		g.Blocks = append(g.Blocks, Block{Start: start, End: end})
		for i := start; i < end; i++ {
			g.BlockOf[i] = id
		}
		start = end
	}

	addEdge := func(from int, toInst int) {
		to := g.BlockOf[toInst]
		g.Blocks[from].Succs = append(g.Blocks[from].Succs, to)
	}
	for b := range g.Blocks {
		blk := &g.Blocks[b]
		last := &p.Insts[blk.End-1]
		next := last.Addr + uint64(last.Inst.Len)
		g.linkBlock(b, blk, last, next, addEdge)
	}

	// Deduplicate and build predecessor lists.
	for b := range g.Blocks {
		succs := g.Blocks[b].Succs
		uniq := succs[:0]
		seen := map[int]bool{}
		for _, s := range succs {
			if !seen[s] {
				seen[s] = true
				uniq = append(uniq, s)
			}
		}
		g.Blocks[b].Succs = uniq
	}
	for b := range g.Blocks {
		for _, s := range g.Blocks[b].Succs {
			g.Blocks[s].Preds = append(g.Blocks[s].Preds, b)
		}
	}

	// Indirect-flow recovery: resolve Unknown blocks whose targets can be
	// proven (marker-built binaries only; inert otherwise).
	if !opts.NoIndirect {
		g.recoverIndirect()
	}

	g.markEntries()
	return g
}

// linkBlock computes the successor edges of one block.
func (g *Graph) linkBlock(b int, blk *Block, last *DecodedInst, next uint64, addEdge func(int, int)) {
	p := g.Prog
	in := &last.Inst
	fallthru := func() {
		if i, ok := p.InstAt(next); ok {
			addEdge(b, i)
		} else {
			blk.Unknown = true // fell off the end of the text section
		}
	}
	switch {
	case in.Op == isa.JMP:
		switch in.Form {
		case isa.FRel8, isa.FRel32:
			if i, ok := p.InstAt(next + uint64(in.Imm)); ok {
				addEdge(b, i)
			} else {
				blk.Unknown = true
			}
		default: // indirect: targets are the address-taken entries
			blk.Unknown = true
		}
	case in.Op.IsCondJump():
		if i, ok := p.InstAt(next + uint64(in.Imm)); ok {
			addEdge(b, i)
		} else {
			blk.Unknown = true
		}
		fallthru()
	case in.Op == isa.CALL:
		// Intra-procedural view: the callee is opaque (RegsRead/Written
		// report everything) and control resumes at the return point.
		fallthru()
	case in.Op == isa.RTCALL:
		fallthru() // host call returns to the next instruction
	case in.Op == isa.RET, in.Op == isa.HLT:
		// Exit from the current function / machine: no static successor.
		blk.Unknown = true
	case in.Op == isa.TRAP:
		blk.Unknown = true // patch-table target unknown statically
	default:
		fallthru() // block ended at a leader boundary
	}
}

// markEntries computes the Entry set: blocks that may be reached by a
// control transfer the static edge set does not model.
func (g *Graph) markEntries() {
	p := g.Prog
	entry := make([]bool, len(g.Blocks))
	markAddr := func(a uint64) {
		if i, ok := p.InstAt(a); ok {
			entry[g.BlockOf[i]] = true
		}
	}

	markAddr(p.Binary.Entry)
	for _, s := range p.Binary.Symbols {
		if s.Func {
			markAddr(s.Addr)
		}
	}

	textLow := p.Insts[0].Addr
	lastI := p.Insts[len(p.Insts)-1]
	textHigh := lastI.Addr + uint64(lastI.Inst.Len)
	inText := func(v uint64) bool { return v >= textLow && v < textHigh }

	for i := range p.Insts {
		in := &p.Insts[i].Inst
		next := p.Insts[i].Addr + uint64(in.Len)
		// Direct call targets: reached by a transfer with no static edge.
		if in.Op == isa.CALL && (in.Form == isa.FRel8 || in.Form == isa.FRel32) {
			markAddr(next + uint64(in.Imm))
		}
		// Address-taken candidates in code (same heuristic as
		// recoverLeaders): any text-range immediate or absolute
		// displacement may be an indirect jump/call target.
		if in.Form == isa.FRI || in.Form == isa.FMI {
			if v := uint64(in.Imm); inText(v) {
				markAddr(v)
			}
		}
		if in.HasMem() && in.Mem.IsAbsolute() {
			if v := uint64(uint32(in.Mem.Disp)); inText(v) {
				markAddr(v)
			}
		}
	}

	// Address-taken candidates in data: function tables store code
	// addresses as 64-bit words in data/rodata sections, which never
	// appear as text immediates. Scan aligned words, skipping proven
	// jump-table spans: their flow is carried by explicit recovered
	// edges, which is exactly what lets dominance cross the dispatch.
	var proven []struct{ lo, hi uint64 }
	if g.Indirect != nil {
		for _, t := range g.Indirect.Tables {
			proven = append(proven, struct{ lo, hi uint64 }{t.Addr, t.Addr + 8*uint64(t.Entries)})
		}
	}
	inProven := func(a uint64) bool {
		for _, span := range proven {
			if a >= span.lo && a < span.hi {
				return true
			}
		}
		return false
	}
	for _, s := range p.Binary.Sections {
		if s.Exec || len(s.Data) < 8 {
			continue
		}
		for off := 0; off+8 <= len(s.Data); off += 8 {
			if inProven(s.Addr + uint64(off)) {
				continue
			}
			if v := binary.LittleEndian.Uint64(s.Data[off:]); inText(v) {
				markAddr(v)
			}
		}
	}

	// Blocks with no static predecessor must be entries, or they would
	// be unreachable in the graph while still reachable dynamically.
	for b := range g.Blocks {
		if len(g.Blocks[b].Preds) == 0 {
			entry[b] = true
		}
	}

	// Finally, iterate: every block must be reachable from the virtual
	// root so must-analyses cannot leave stale ⊤ facts on it.
	reached := make([]bool, len(g.Blocks))
	dfs := func(from int) {
		if reached[from] {
			return
		}
		stack := []int{from}
		reached[from] = true
		for len(stack) > 0 {
			b := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, s := range g.Blocks[b].Succs {
				if !reached[s] {
					reached[s] = true
					stack = append(stack, s)
				}
			}
		}
	}
	for b := range g.Blocks {
		if entry[b] {
			dfs(b)
		}
	}
	for b := range g.Blocks {
		if !reached[b] {
			entry[b] = true
			dfs(b)
		}
	}

	for b := range g.Blocks {
		if entry[b] {
			g.Blocks[b].Entry = true
			g.Entries = append(g.Entries, b)
		}
	}
}

// NumEdges returns the number of static CFG edges. Unknown blocks
// record no successors, so this counts proven edges only — ⊤ flow is
// invisible here by construction.
func (g *Graph) NumEdges() int {
	n := 0
	for b := range g.Blocks {
		n += len(g.Blocks[b].Succs)
	}
	return n
}
