package cfg_test

import (
	"fmt"
	"math/rand"
	"testing"

	"redfat/internal/asm"
	"redfat/internal/cfg"
	"redfat/internal/isa"
	"redfat/internal/relf"
)

// genAnalysisProgram builds a random program with enough control-flow
// variety to stress the whole-CFG analyses: multiple functions, loops,
// diamonds, calls, and a mix of register pressure. It only needs to
// disassemble, not to run.
func genAnalysisProgram(r *rand.Rand) (*relf.Binary, error) {
	b := asm.NewBuilder(asm.Options{FuncAlign: 16})
	regs := []isa.Reg{isa.RAX, isa.RBX, isa.RCX, isa.RDX, isa.RSI, isa.RDI,
		isa.R8, isa.R9, isa.R10, isa.R11}
	nFuncs := 1 + r.Intn(3)
	for f := 0; f < nFuncs; f++ {
		if f == 0 {
			b.Func("main")
		} else {
			b.Func(fmt.Sprintf("fn%d", f))
		}
		nBlocks := 2 + r.Intn(5)
		for blk := 0; blk < nBlocks; blk++ {
			label := fmt.Sprintf("f%db%d", f, blk)
			b.Label(label)
			nInsts := 1 + r.Intn(6)
			for k := 0; k < nInsts; k++ {
				dst := regs[r.Intn(len(regs))]
				src := regs[r.Intn(len(regs))]
				switch r.Intn(7) {
				case 0:
					b.MovRI(dst, int64(r.Intn(1000)))
				case 1:
					b.MovRR(dst, src)
				case 2:
					b.AluRR(isa.ADD, dst, src)
				case 3:
					b.AluRI(isa.XOR, dst, int64(r.Intn(64)))
				case 4:
					b.Emit(isa.Inst{Op: isa.CMP, Form: isa.FRR, Reg: dst, Reg2: src, Size: 8})
				case 5:
					b.Emit(isa.Inst{Op: isa.INC, Form: isa.FR, Reg: dst, Size: 8})
				case 6:
					b.Emit(isa.Inst{Op: isa.SHL, Form: isa.FRI, Reg: dst, Imm: int64(r.Intn(4)), Size: 8})
				}
			}
			// Block terminator: fall through, conditional jump to a
			// random block of this function, or nothing.
			if r.Intn(2) == 0 {
				target := fmt.Sprintf("f%db%d", f, r.Intn(nBlocks))
				ops := []isa.Op{isa.JE, isa.JNE, isa.JL, isa.JB, isa.JS}
				b.Jcc(ops[r.Intn(len(ops))], target)
			}
		}
		if f+1 < nFuncs && r.Intn(2) == 0 {
			b.Call(fmt.Sprintf("fn%d", f+1))
		}
		b.MovRI(isa.RAX, 0)
		b.Ret()
	}
	return b.Build()
}

// TestGlobalLivenessNeverLessPrecise is the engine's central soundness
// property: the whole-CFG solution must classify a superset of the
// block-local oracle's dead registers (and dead flags) at every
// instruction — the conservative local scan is the floor.
func TestGlobalLivenessNeverLessPrecise(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	improvedRegs, improvedFlags := 0, 0
	for trial := 0; trial < 40; trial++ {
		bin, err := genAnalysisProgram(r)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := cfg.Disassemble(bin)
		if err != nil {
			t.Fatal(err)
		}
		df := cfg.NewDataflow(prog)
		for i := range prog.Insts {
			local := prog.DeadRegsAt(i)
			global := df.DeadRegsAt(i)
			if local&^global != 0 {
				t.Fatalf("trial %d, inst %d (%s): local dead set %016b not contained in global %016b",
					trial, i, prog.Insts[i].Inst.String(), local, global)
			}
			if local != global {
				improvedRegs++
			}
			lf, gf := prog.FlagsDeadAt(i), df.FlagsDeadAt(i)
			if lf && !gf {
				t.Fatalf("trial %d, inst %d (%s): flags dead locally but not globally",
					trial, i, prog.Insts[i].Inst.String())
			}
			if gf && !lf {
				improvedFlags++
			}
		}
	}
	// The engine must actually be sharper somewhere, or it is pointless.
	if improvedRegs == 0 {
		t.Error("global liveness never improved on the block-local register answer")
	}
	if improvedFlags == 0 {
		t.Error("global liveness never improved on the block-local flags answer")
	}
}

// TestGlobalLivenessAcrossBlocks pins a case the block-local scan cannot
// see: the overwrite of a register in BOTH successors of a diamond makes
// it dead before the branch.
func TestGlobalLivenessAcrossBlocks(t *testing.T) {
	b := asm.NewBuilder(asm.Options{})
	b.Func("main")
	b.Emit(isa.Inst{Op: isa.CMP, Form: isa.FRI, Reg: isa.RDI, Imm: 1, Size: 8})
	b.Jcc(isa.JE, "then") // ← query point: is RBX dead here?
	b.MovRI(isa.RBX, 1)   // else arm overwrites RBX
	b.Jmp("join")
	b.Label("then")
	b.MovRI(isa.RBX, 2) // then arm overwrites RBX
	b.Label("join")
	b.MovRR(isa.RAX, isa.RBX)
	b.Ret()
	bin, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	prog, err := cfg.Disassemble(bin)
	if err != nil {
		t.Fatal(err)
	}
	df := cfg.NewDataflow(prog)

	// The query point is the conditional jump (instruction 1).
	if prog.Insts[1].Inst.Op != isa.JE {
		t.Fatalf("unexpected layout: inst 1 is %s", prog.Insts[1].Inst.String())
	}
	if !df.DeadRegsAt(1).Has(isa.RBX) {
		t.Error("global liveness misses RBX dead across the diamond")
	}
	if prog.DeadRegsAt(1).Has(isa.RBX) {
		t.Error("block-local oracle unexpectedly sees across blocks (test premise broken)")
	}
}

// TestDomTreeDiamond pins the dominator relation on a diamond: the head
// dominates everything, the arms dominate only themselves, and the join
// is dominated by the head but by neither arm.
func TestDomTreeDiamond(t *testing.T) {
	b := asm.NewBuilder(asm.Options{})
	b.Func("main")
	b.Emit(isa.Inst{Op: isa.CMP, Form: isa.FRI, Reg: isa.RDI, Imm: 1, Size: 8})
	b.Jcc(isa.JE, "then")
	b.MovRI(isa.RBX, 1)
	b.Jmp("join")
	b.Label("then")
	b.MovRI(isa.RBX, 2)
	b.Label("join")
	b.MovRR(isa.RAX, isa.RBX)
	b.Ret()
	bin, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	prog, err := cfg.Disassemble(bin)
	if err != nil {
		t.Fatal(err)
	}
	g := cfg.NewGraph(prog)
	dom := cfg.NewDomTree(g)

	blockAt := func(i int) int { return g.BlockOf[i] }
	head := blockAt(0)
	elseArm := blockAt(2) // mov rbx,1
	join := blockAt(5)    // mov rax,rbx
	thenArm := blockAt(4) // mov rbx,2
	if head == elseArm || elseArm == join || thenArm == join {
		t.Fatalf("unexpected block partition: head=%d else=%d then=%d join=%d",
			head, elseArm, thenArm, join)
	}
	for _, b2 := range []int{head, elseArm, thenArm, join} {
		if !dom.Dominates(head, b2) {
			t.Errorf("head does not dominate block %d", b2)
		}
	}
	if dom.Dominates(elseArm, join) || dom.Dominates(thenArm, join) {
		t.Error("an arm of the diamond dominates the join")
	}
	if dom.Dominates(elseArm, thenArm) || dom.Dominates(thenArm, elseArm) {
		t.Error("the arms dominate each other")
	}
}

// TestRedundantChecksDominated pins dominator-based elimination: an
// identical checked operand re-checked on the fall-through path is
// redundant, but one after a join reachable around the provider is not.
func TestRedundantChecksDominated(t *testing.T) {
	b := asm.NewBuilder(asm.Options{})
	b.Func("main")
	m := asm.MemBID(isa.RSI, isa.RegNone, 1, 0)
	b.StoreM(m, isa.RAX, 8) // provider
	b.AluRI(isa.ADD, isa.RAX, 1)
	b.StoreM(m, isa.RAX, 8) // dominated duplicate → redundant
	b.Jcc(isa.JE, "skip")
	b.MovRI(isa.RBX, 1)
	b.Label("skip")
	b.StoreM(m, isa.RAX, 8) // after a join; still dominated by provider
	b.MovRI(isa.RSI, 0)
	b.StoreM(m, isa.RAX, 8) // base redefined → NOT redundant
	b.Ret()
	bin, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	prog, err := cfg.Disassemble(bin)
	if err != nil {
		t.Fatal(err)
	}
	df := cfg.NewDataflow(prog)

	var sites []cfg.CheckSite
	var stores []int
	for i := range prog.Insts {
		in := &prog.Insts[i].Inst
		if in.IsMemAccess() && in.Writes() {
			sites = append(sites, cfg.CheckSite{Inst: i, Lo: 0, Hi: 8})
			stores = append(stores, i)
		}
	}
	if len(stores) != 4 {
		t.Fatalf("expected 4 stores, found %d", len(stores))
	}
	red := df.Redundant(sites)
	if w, ok := red[stores[1]]; !ok || w != stores[0] {
		t.Errorf("fall-through duplicate not eliminated (red=%v)", red)
	}
	if w, ok := red[stores[2]]; !ok || w != stores[0] {
		t.Errorf("post-join store dominated by the provider not eliminated (red=%v)", red)
	}
	if _, ok := red[stores[3]]; ok {
		t.Error("store after base redefinition wrongly eliminated")
	}
	if _, ok := red[stores[0]]; ok {
		t.Error("provider eliminated itself")
	}
}
