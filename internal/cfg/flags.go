package cfg

import "redfat/internal/isa"

// FlagSet is a bitmask over the four RF64 condition flags. The liveness
// lattice tracks each flag independently because several instructions
// write only a subset: INC/DEC preserve CF (x86 semantics, mirrored by
// the VM), and a shift whose count may be zero preserves all flags.
// Treating those as whole-register kills — as the original block-local
// scan did — is unsound: a trampoline could clobber a CF that a later
// JB still observes through an INC.
type FlagSet uint8

// Individual flag bits.
const (
	FlagZ FlagSet = 1 << iota
	FlagS
	FlagC
	FlagO

	// AllFlags is the set of every condition flag.
	AllFlags FlagSet = FlagZ | FlagS | FlagC | FlagO
)

// Has reports whether f contains all flags in o.
func (f FlagSet) Has(o FlagSet) bool { return f&o == o }

// condFlags maps each conditional jump to the flags its predicate
// observes (mirrors vm.condition).
func condFlags(op isa.Op) FlagSet {
	switch op {
	case isa.JE, isa.JNE:
		return FlagZ
	case isa.JL, isa.JGE:
		return FlagS | FlagO
	case isa.JLE, isa.JG:
		return FlagZ | FlagS | FlagO
	case isa.JB, isa.JAE:
		return FlagC
	case isa.JBE, isa.JA:
		return FlagC | FlagZ
	case isa.JS, isa.JNS:
		return FlagS
	case isa.JO, isa.JNO:
		return FlagO
	}
	return 0
}

// FlagsRead returns the set of flags whose input value in observes.
// CALL/RTCALL/TRAP conservatively read everything (unknown callee or
// patch target). A flag that merely passes through unchanged (INC's CF)
// is NOT read — it is simply absent from FlagsKilled, so liveness flows
// through the instruction.
func FlagsRead(in *isa.Inst) FlagSet {
	if in.Op.IsCondJump() {
		return condFlags(in.Op)
	}
	switch in.Op {
	case isa.PUSHF, isa.CALL, isa.RTCALL, isa.TRAP:
		return AllFlags
	}
	return 0
}

// FlagsKilled returns the set of flags in unconditionally overwrites
// regardless of its inputs (a must-kill set, per the VM semantics):
//
//   - ADD/SUB/AND/OR/XOR/CMP/TEST/IMUL/NEG/POPF overwrite all four;
//   - INC/DEC overwrite ZF/SF/OF but preserve CF;
//   - SHL/SHR/SAR overwrite all four only when the count is a non-zero
//     immediate; a %cl-count or zero-immediate shift may leave the
//     flags untouched and so kills nothing.
func FlagsKilled(in *isa.Inst) FlagSet {
	switch in.Op {
	case isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.CMP, isa.TEST,
		isa.IMUL, isa.NEG, isa.POPF:
		return AllFlags
	case isa.INC, isa.DEC:
		return FlagZ | FlagS | FlagO
	case isa.SHL, isa.SHR, isa.SAR:
		if in.Form == isa.FRI && in.Imm&63 != 0 {
			return AllFlags
		}
		return 0
	}
	return 0
}
