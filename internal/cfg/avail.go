package cfg

import "redfat/internal/isa"

// CheckKey identifies the address shape of a checked memory operand.
// Two operands with the same key and unredefined registers compute
// addresses that differ only by displacement.
type CheckKey struct {
	Seg         isa.Seg
	Base, Index isa.Reg
	Scale       uint8
	Mode        uint8 // check mode must match for one check to subsume another
}

// CheckSite is a (potential or emitted) check: the memory operand of
// instruction Inst covering guest addresses base+[Lo, Hi) relative to
// the operand's address shape.
type CheckSite struct {
	Inst   int   // index into Program.Insts
	Mode   uint8 // check mode (redfat.Mode* / rtlib.Mode*)
	Lo, Hi int64 // covered displacement span, Hi exclusive
}

// availFact records that a check with key K, performed at site Witness,
// reaches the current program point on every path with the operand's
// registers unredefined and no allocator-visible call in between.
type availFact struct {
	Witness int // providing site's instruction index
	Lo, Hi  int64
}

// Avail is the forward "available checks" analysis. The domain maps
// each CheckKey to at most one availFact; the transfer function kills a
// key when any of its address registers may be written (RegsWritten,
// which saturates at CALL/RTCALL) or when the heap may change shape
// (CALL/RTCALL/TRAP kill everything, because free/realloc in the callee
// can invalidate a previously passing check), and generates the site's
// own fact at every check site. The meet is intersection with witness
// equality: a fact survives a join only if the same providing check
// reaches along every predecessor — which implies the witness dominates
// the join point, since facts are born only at their witness.
type Avail struct {
	g     *Graph
	gens  map[int]CheckSite // inst index → generating site
	in    []map[CheckKey]availFact
	dirty []bool
}

// siteKey derives the CheckKey of a site from its instruction operand.
// RIP-relative operands return ok=false: their absolute address depends
// on the instruction's own PC, so no two sites share an address shape.
func (p *Program) siteKey(s CheckSite) (CheckKey, bool) {
	in := &p.Insts[s.Inst].Inst
	if !in.HasMem() || in.Mem.Base == isa.RIP {
		return CheckKey{}, false
	}
	return CheckKey{
		Seg:   in.Mem.Seg,
		Base:  in.Mem.Base,
		Index: in.Mem.Index,
		Scale: in.Mem.Scale,
		Mode:  s.Mode,
	}, true
}

// NewAvail solves the availability equations with the given generating
// sites (deduplicated by instruction; later entries win).
func NewAvail(g *Graph, gens []CheckSite) *Avail {
	av := &Avail{
		g:     g,
		gens:  make(map[int]CheckSite, len(gens)),
		in:    make([]map[CheckKey]availFact, len(g.Blocks)),
		dirty: make([]bool, len(g.Blocks)),
	}
	for _, s := range gens {
		av.gens[s.Inst] = s
	}
	av.solve()
	return av
}

// top is the ⊤ lattice value marker: a nil map in av.in means "not yet
// visited" (all facts), while an empty non-nil map means "no facts".
func (av *Avail) solve() {
	g := av.g
	isEntry := make([]bool, len(g.Blocks))
	work := make([]int, 0, len(g.Blocks))
	inWork := make([]bool, len(g.Blocks))
	for _, e := range g.Entries {
		isEntry[e] = true
		av.in[e] = map[CheckKey]availFact{}
		work = append(work, e)
		inWork[e] = true
	}
	out := make([]map[CheckKey]availFact, len(g.Blocks))

	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		inWork[b] = false

		// Meet over predecessors (entries additionally meet with ∅
		// from the virtual root, i.e. their in-state stays empty).
		var in map[CheckKey]availFact
		if isEntry[b] {
			in = map[CheckKey]availFact{}
		} else {
			for _, p := range g.Blocks[b].Preds {
				po := out[p]
				if po == nil {
					continue // unvisited predecessor: ⊤, neutral for meet
				}
				if in == nil {
					in = make(map[CheckKey]availFact, len(po))
					for k, f := range po {
						in[k] = f
					}
					continue
				}
				for k, f := range in {
					if of, ok := po[k]; !ok || of != f {
						delete(in, k)
					}
				}
			}
			if in == nil {
				continue // no predecessor visited yet
			}
		}

		if av.in[b] != nil && factsEqual(av.in[b], in) && out[b] != nil {
			continue
		}
		av.in[b] = in
		newOut := av.transferBlock(b, in)
		if out[b] != nil && factsEqual(out[b], newOut) {
			continue
		}
		out[b] = newOut
		for _, s := range g.Blocks[b].Succs {
			if !inWork[s] {
				inWork[s] = true
				work = append(work, s)
			}
		}
	}
	// Blocks never visited keep in == nil; treat as ∅ at query time.
}

func factsEqual(a, b map[CheckKey]availFact) bool {
	if len(a) != len(b) {
		return false
	}
	for k, f := range a {
		if of, ok := b[k]; !ok || of != f {
			return false
		}
	}
	return true
}

// transferBlock pushes the fact map through one block.
func (av *Avail) transferBlock(b int, in map[CheckKey]availFact) map[CheckKey]availFact {
	facts := make(map[CheckKey]availFact, len(in))
	for k, f := range in {
		facts[k] = f
	}
	blk := &av.g.Blocks[b]
	for j := blk.Start; j < blk.End; j++ {
		av.transferInst(j, facts, nil)
	}
	return facts
}

// transferInst applies instruction j to the fact map. If onSite is
// non-nil it is called for the site generated at j (before the gen),
// with the fact currently available for the site's key, so callers can
// observe coverage exactly as the dataflow sees it.
func (av *Avail) transferInst(j int, facts map[CheckKey]availFact, onSite func(s CheckSite, f availFact, ok bool)) {
	p := av.g.Prog
	in := &p.Insts[j].Inst

	// The check conceptually executes before the instruction's own
	// effects, so gen precedes the kill.
	if s, ok := av.gens[j]; ok {
		if k, keyOK := p.siteKey(s); keyOK {
			if onSite != nil {
				f, have := facts[k]
				onSite(s, f, have)
			}
			facts[k] = availFact{Witness: s.Inst, Lo: s.Lo, Hi: s.Hi}
		} else if onSite != nil {
			onSite(s, availFact{}, false)
		}
	}

	switch in.Op {
	case isa.CALL, isa.RTCALL, isa.TRAP:
		// The callee may free or reallocate: no check survives.
		for k := range facts {
			delete(facts, k)
		}
		return
	}
	if w := RegsWritten(in); w != 0 {
		for k := range facts {
			if w.Has(k.Base) || w.Has(k.Index) {
				delete(facts, k)
			}
		}
	}
}

// replayTo returns the fact map holding immediately before instruction
// i (before i's own gen).
func (av *Avail) replayTo(i int) map[CheckKey]availFact {
	b := av.g.BlockOf[i]
	facts := make(map[CheckKey]availFact)
	for k, f := range av.in[b] {
		facts[k] = f
	}
	for j := av.g.Blocks[b].Start; j < i; j++ {
		av.transferInst(j, facts, nil)
	}
	return facts
}

// CoverageAt reports whether the operand span of s is covered by an
// available check at its instruction, and by which witness site.
func (av *Avail) CoverageAt(s CheckSite) (witness int, ok bool) {
	k, keyOK := av.g.Prog.siteKey(s)
	if !keyOK {
		return 0, false
	}
	facts := av.replayTo(s.Inst)
	f, have := facts[k]
	if !have || f.Lo > s.Lo || f.Hi < s.Hi {
		return 0, false
	}
	return f.Witness, true
}

// RedundantChecks runs the availability analysis over the candidate
// sites and returns, for every site whose span is already covered by an
// available check, the instruction index of the providing site. Witness
// chains are resolved to their non-eliminated root: if A covers B and B
// covers C, C's recorded provider is A, whose check is actually emitted.
// Every returned provider's block dominates the eliminated site's block
// (asserted via dom; redundancy through a join of distinct checks does
// not survive the witness-equality meet).
func RedundantChecks(g *Graph, dom *DomTree, sites []CheckSite) map[int]int {
	av := NewAvail(g, sites)
	redundant := make(map[int]int)

	record := func(s CheckSite, f availFact, ok bool) {
		if !ok || f.Witness == s.Inst || f.Lo > s.Lo || f.Hi < s.Hi {
			return
		}
		// Safety net: the witness-equality meet guarantees the witness
		// block dominates; drop the elimination if it ever did not.
		if !dom.Dominates(g.BlockOf[f.Witness], g.BlockOf[s.Inst]) {
			return
		}
		redundant[s.Inst] = f.Witness
	}
	for b := range g.Blocks {
		facts := make(map[CheckKey]availFact, len(av.in[b]))
		for k, f := range av.in[b] {
			facts[k] = f
		}
		for j := g.Blocks[b].Start; j < g.Blocks[b].End; j++ {
			av.transferInst(j, facts, record)
		}
	}

	// Resolve witness chains to non-eliminated roots.
	resolve := func(w int) int {
		for {
			next, ok := redundant[w]
			if !ok {
				return w
			}
			w = next
		}
	}
	for i, w := range redundant {
		redundant[i] = resolve(w)
	}
	return redundant
}
