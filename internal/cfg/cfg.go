// Package cfg implements the static binary analyses the RedFat rewriter
// needs (paper §6):
//
//   - linear disassembly of the text section;
//   - conservative basic-block (control-flow) recovery. Precise recovery
//     is undecidable; the analysis over-approximates the set of block
//     leaders, which can only shrink batch sizes, never break correctness;
//   - register def/use and clobber (dead-register) analysis, used to
//     specialize trampoline prologues;
//   - reorderability analysis for check batching: a memory access can be
//     checked at the head of its group only if the registers its operand
//     reads are not redefined in between.
package cfg

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"redfat/internal/isa"
	"redfat/internal/relf"
)

// RegSet is a bitmask over the 16 general-purpose registers.
type RegSet uint16

// Add returns the set with r added (no-op for pseudo registers).
func (s RegSet) Add(r isa.Reg) RegSet {
	if r < isa.NumRegs {
		return s | 1<<r
	}
	return s
}

// Has reports whether r is in the set.
func (s RegSet) Has(r isa.Reg) bool {
	return r < isa.NumRegs && s&(1<<r) != 0
}

// Union returns the union of two sets.
func (s RegSet) Union(o RegSet) RegSet { return s | o }

// Intersects reports whether the sets share a register.
func (s RegSet) Intersects(o RegSet) bool { return s&o != 0 }

// Count returns the number of registers in the set.
func (s RegSet) Count() int { return bits.OnesCount16(uint16(s)) }

// AllRegs is the set of every general-purpose register.
const AllRegs RegSet = 0xFFFF

// clearRSP removes the stack pointer, which is never reported dead.
func (s RegSet) clearRSP() RegSet { return s &^ RegSet(0).Add(isa.RSP) }

// memAddrRegs returns the registers a memory operand's address depends on.
func memAddrRegs(m isa.Mem) RegSet {
	var s RegSet
	s = s.Add(m.Base) // Add ignores RIP/RegNone
	s = s.Add(m.Index)
	return s
}

// RegsRead returns the registers read by in (including address registers
// of memory operands and implicit reads).
func RegsRead(in *isa.Inst) RegSet {
	var s RegSet
	if in.HasMem() {
		s = s.Union(memAddrRegs(in.Mem))
	}
	switch in.Op {
	case isa.RET:
		return s.Add(isa.RSP)
	case isa.PUSHF, isa.POPF:
		return s.Add(isa.RSP)
	case isa.CQO:
		return s.Add(isa.RAX)
	case isa.UDIV, isa.IDIV:
		return s.Add(isa.RAX).Add(in.Reg)
	case isa.CALL, isa.RTCALL:
		// Unknown callee: assume it reads everything (conservative).
		return AllRegs
	}
	switch in.Form {
	case isa.FRR:
		s = s.Add(in.Reg2)
		if in.Op != isa.MOV {
			s = s.Add(in.Reg) // ALU dst is also a source
		}
		if in.Op == isa.SHL || in.Op == isa.SHR || in.Op == isa.SAR {
			s = s.Add(isa.RCX).Add(in.Reg)
		}
		if in.Op == isa.XCHG {
			s = s.Add(in.Reg)
		}
	case isa.FRI:
		if in.Op != isa.MOV && in.Op != isa.MOVABS {
			s = s.Add(in.Reg)
		}
	case isa.FRM:
		if in.Op != isa.MOV && in.Op != isa.MOVZX && in.Op != isa.MOVSX &&
			in.Op != isa.LEA {
			s = s.Add(in.Reg) // ALU-from-memory reads the register too
		}
	case isa.FMR:
		s = s.Add(in.Reg)
	case isa.FR:
		switch in.Op {
		case isa.PUSH:
			s = s.Add(in.Reg).Add(isa.RSP)
		case isa.POP:
			s = s.Add(isa.RSP)
		case isa.INC, isa.DEC, isa.NEG, isa.NOT, isa.JMP:
			s = s.Add(in.Reg)
		}
	case isa.FM:
		if in.Op == isa.PUSH || in.Op == isa.POP {
			s = s.Add(isa.RSP)
		}
	}
	return s
}

// RegsWritten returns the registers written by in.
func RegsWritten(in *isa.Inst) RegSet {
	var s RegSet
	switch in.Op {
	case isa.RET:
		return s.Add(isa.RSP)
	case isa.PUSHF, isa.POPF:
		return s.Add(isa.RSP)
	case isa.CQO:
		return s.Add(isa.RDX)
	case isa.UDIV, isa.IDIV:
		return s.Add(isa.RAX).Add(isa.RDX)
	case isa.CALL, isa.RTCALL:
		// Unknown callee: assume it may write everything.
		return AllRegs
	}
	switch in.Form {
	case isa.FRR:
		if in.Op == isa.CMP || in.Op == isa.TEST {
			return s
		}
		s = s.Add(in.Reg)
		if in.Op == isa.XCHG {
			s = s.Add(in.Reg2)
		}
	case isa.FRI:
		if in.Op == isa.CMP || in.Op == isa.TEST {
			return s
		}
		s = s.Add(in.Reg)
	case isa.FRM:
		if in.Op == isa.CMP || in.Op == isa.TEST {
			return s
		}
		s = s.Add(in.Reg)
	case isa.FR:
		switch in.Op {
		case isa.PUSH:
			s = s.Add(isa.RSP)
		case isa.POP:
			s = s.Add(in.Reg).Add(isa.RSP)
		case isa.INC, isa.DEC, isa.NEG, isa.NOT, isa.SHL, isa.SHR, isa.SAR:
			s = s.Add(in.Reg)
		}
	case isa.FM:
		if in.Op == isa.PUSH || in.Op == isa.POP {
			s = s.Add(isa.RSP)
		}
	}
	return s
}

// WritesFlags reports whether in modifies the flags register.
func WritesFlags(in *isa.Inst) bool {
	switch in.Op {
	case isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.CMP, isa.TEST,
		isa.IMUL, isa.INC, isa.DEC, isa.NEG, isa.SHL, isa.SHR, isa.SAR,
		isa.POPF, isa.CALL, isa.RTCALL:
		return true
	}
	return false
}

// ReadsFlags reports whether in may observe the flags register. CALL,
// RTCALL and TRAP are conservatively treated as readers (unknown callee
// or patch target), matching the per-flag FlagsRead saturation.
func ReadsFlags(in *isa.Inst) bool {
	switch in.Op {
	case isa.PUSHF, isa.CALL, isa.RTCALL, isa.TRAP:
		return true
	}
	return in.Op.IsCondJump()
}

// DecodedInst pairs an instruction with its address.
type DecodedInst struct {
	Addr uint64
	Inst isa.Inst
}

// Program is a disassembled text section with recovered control flow.
type Program struct {
	Binary *relf.Binary
	Insts  []DecodedInst
	index  map[uint64]int // address → Insts index

	// Leaders marks basic-block leader addresses (over-approximated).
	Leaders map[uint64]bool
}

// Disassemble linearly decodes the binary's text section and recovers
// control flow. It works on stripped binaries; symbols (if present) only
// add leaders, improving precision of nothing and conservatism of
// everything.
func Disassemble(bin *relf.Binary) (*Program, error) {
	text := bin.Text()
	if text == nil {
		return nil, fmt.Errorf("cfg: binary has no text section")
	}
	p := &Program{
		Binary:  bin,
		index:   make(map[uint64]int),
		Leaders: make(map[uint64]bool),
	}
	data := text.Data
	addr := text.Addr
	for off := 0; off < len(data); {
		in, err := isa.Decode(data[off:])
		if err != nil {
			return nil, fmt.Errorf("cfg: disassembly failed at %#x: %w", addr, err)
		}
		p.index[addr] = len(p.Insts)
		p.Insts = append(p.Insts, DecodedInst{Addr: addr, Inst: in})
		off += int(in.Len)
		addr += uint64(in.Len)
	}
	p.recoverLeaders()
	return p, nil
}

// recoverLeaders computes the conservative leader set.
func (p *Program) recoverLeaders() {
	textLow := p.Insts[0].Addr
	textHigh := textLow
	if n := len(p.Insts); n > 0 {
		last := p.Insts[n-1]
		textHigh = last.Addr + uint64(last.Inst.Len)
	}
	mark := func(a uint64) {
		if _, ok := p.index[a]; ok {
			p.Leaders[a] = true
		}
	}

	mark(p.Binary.Entry)
	for _, s := range p.Binary.Symbols {
		if s.Func {
			mark(s.Addr)
		}
	}
	for i := range p.Insts {
		di := &p.Insts[i]
		in := &di.Inst
		next := di.Addr + uint64(in.Len)
		switch {
		case in.Op == isa.JMP || in.Op == isa.CALL:
			if in.Form == isa.FRel8 || in.Form == isa.FRel32 {
				mark(next + uint64(in.Imm))
			}
			mark(next) // the fall-through / return point starts a block
		case in.Op.IsCondJump():
			mark(next + uint64(in.Imm))
			mark(next)
		case in.Op == isa.RET || in.Op == isa.HLT || in.Op == isa.RTCALL:
			mark(next)
		}
		// Conservative over-approximation for indirect control flow:
		// any immediate that looks like a text address may be an
		// address-taken jump/call target.
		if in.Form == isa.FRI || in.Form == isa.FMI {
			if v := uint64(in.Imm); v >= textLow && v < textHigh {
				mark(v)
			}
		}
		if in.HasMem() && in.Mem.IsAbsolute() {
			if v := uint64(uint32(in.Mem.Disp)); v >= textLow && v < textHigh {
				mark(v)
			}
		}
		// Landing pads are indirect-branch targets by construction.
		if in.Op == isa.LPAD {
			mark(di.Addr)
		}
	}

	// Marker-built binaries declare their jump tables: every declared
	// entry is a known indirect-jump target, hence a leader. Note this is
	// content-gated, not knob-gated — block partitioning must not depend
	// on whether recovery is enabled, only on the binary itself.
	if sec := p.Binary.Section(relf.JumpTableSection); sec != nil {
		tables, err := relf.DecodeJumpTables(sec.Data)
		if err == nil {
			for _, t := range tables {
				s := p.Binary.SectionAt(t.Addr)
				if s == nil || len(s.Data) == 0 {
					continue
				}
				off := t.Addr - s.Addr
				for k := uint64(0); k < uint64(t.Entries); k++ {
					if off+8*k+8 > uint64(len(s.Data)) {
						break
					}
					mark(binary.LittleEndian.Uint64(s.Data[off+8*k:]))
				}
			}
		}
	}
}

// InstAt returns the index of the instruction at addr.
func (p *Program) InstAt(addr uint64) (int, bool) {
	i, ok := p.index[addr]
	return i, ok
}

// IsLeader reports whether addr starts a (recovered) basic block.
func (p *Program) IsLeader(addr uint64) bool { return p.Leaders[addr] }

// BlockEnd returns the index one past the last instruction of the block
// beginning at instruction index i (exclusive bound).
func (p *Program) BlockEnd(i int) int {
	j := i
	for j < len(p.Insts) {
		in := &p.Insts[j].Inst
		if in.Op.IsBranch() || in.Op == isa.RTCALL || in.Op == isa.TRAP {
			return j + 1
		}
		j++
		if j < len(p.Insts) && p.Leaders[p.Insts[j].Addr] {
			return j
		}
	}
	return j
}

// DeadRegsAt returns the set of registers provably dead immediately before
// instruction i: registers written before being read on the straight-line
// continuation within the current basic block. Conservative: a register
// whose fate is unknown when the block ends is treated as live. RSP is
// never reported dead.
func (p *Program) DeadRegsAt(i int) RegSet {
	var dead, read RegSet
	end := p.BlockEnd(i)
	for j := i; j < end; j++ {
		in := &p.Insts[j].Inst
		if in.Op == isa.CALL || in.Op == isa.RTCALL || in.Op == isa.TRAP {
			break // unknown effects: stop the scan
		}
		r := RegsRead(in)
		w := RegsWritten(in)
		read = read.Union(r)
		dead = dead.Union(w &^ read)
	}
	return dead.clearRSP()
}

// FlagsDeadAt reports whether the flags register is provably dead before
// instruction i (every flag overwritten before being observed within the
// block). The scan tracks the four flags independently through the
// must-kill set FlagsKilled: treating every flag-writing instruction as
// a whole-register kill would be unsound — INC/DEC preserve CF and a
// shift whose count may be zero preserves everything.
func (p *Program) FlagsDeadAt(i int) bool {
	var killed FlagSet
	end := p.BlockEnd(i)
	for j := i; j < end; j++ {
		in := &p.Insts[j].Inst
		if FlagsRead(in)&^killed != 0 {
			return false // some not-yet-killed flag is observed
		}
		killed |= FlagsKilled(in)
		if killed == AllFlags {
			return true
		}
	}
	return false // block ended without killing all flags: assume live
}

// Batch is a group of memory-access instruction indices whose checks can
// be combined into a single trampoline invoked before the first member
// (paper §6, "Check batching").
type Batch struct {
	Members []int // indices into Program.Insts, in program order
}

// Batches groups checkable memory accesses. want reports whether the
// instruction at index i needs an instrumented check at all (already
// filtered by check elimination). The grouping enforces the paper's three
// batching properties: program order, same basic block, and address
// reorderability (the operand's registers are not written between the
// group head and the member).
func (p *Program) Batches(want func(i int) bool, maxBatch int) []Batch {
	var out []Batch
	var cur Batch
	var written RegSet
	flush := func() {
		if len(cur.Members) > 0 {
			out = append(out, cur)
			cur = Batch{}
		}
		written = 0
	}
	for i := range p.Insts {
		di := &p.Insts[i]
		in := &di.Inst
		if p.Leaders[di.Addr] {
			flush()
		}
		if want(i) && in.IsMemAccess() {
			regs := memAddrRegs(in.Mem)
			if regs.Intersects(written) || (maxBatch > 0 && len(cur.Members) >= maxBatch) {
				flush()
			}
			cur.Members = append(cur.Members, i)
		}
		written = written.Union(RegsWritten(in))
		if in.Op.IsBranch() || in.Op == isa.RTCALL || in.Op == isa.TRAP {
			flush()
		}
	}
	flush()
	return out
}
