// Package telemetry is the unified observability layer of the RedFat
// reproduction: a low-overhead metrics registry (counters, gauges,
// bounded histograms) plus a fixed-capacity ring-buffer event tracer.
//
// Every instrumented layer — the VM dispatch loop, the allocators, the
// check runtime, the rewriter — holds *handles* (pointers to Counter,
// Gauge, Histogram) obtained from a Registry once, and bumps them on the
// hot path without any map lookups. All handle methods are nil-safe:
// when telemetry is not attached the handles are nil and every operation
// is a no-op, so disabled instrumentation costs a nil check and nothing
// else. Telemetry is host-side accounting only — it never charges guest
// cycles, so enabling it leaves measured slow-down factors bit-identical.
//
// The registry is not goroutine-safe; like the VM it serves, it is meant
// to be owned by a single execution. Handles are plain memory — no
// atomics, no locks — so concurrent use of one registry from several
// goroutines is a data race. The supported pattern for parallel
// experiments is single-owner aggregation: give every concurrent run its
// own Registry, wait for the runs to finish, then fold them into one
// aggregate with Merge from a single goroutine (the experiment harness in
// internal/bench does exactly this).
package telemetry

import "sort"

// Counter is a monotonically increasing metric.
type Counter struct {
	name string
	v    uint64
}

// Inc adds one. Nil-safe.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n. Nil-safe.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v += n
	}
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Name returns the registered name.
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Gauge is a metric that can move in both directions (live bytes,
// quarantine usage, final cycle counts).
type Gauge struct {
	name string
	v    uint64
}

// Set replaces the value. Nil-safe.
func (g *Gauge) Set(v uint64) {
	if g != nil {
		g.v = v
	}
}

// Add increases the value. Nil-safe.
func (g *Gauge) Add(n uint64) {
	if g != nil {
		g.v += n
	}
}

// Sub decreases the value, saturating at zero. Nil-safe.
func (g *Gauge) Sub(n uint64) {
	if g == nil {
		return
	}
	if n > g.v {
		g.v = 0
		return
	}
	g.v -= n
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() uint64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Name returns the registered name.
func (g *Gauge) Name() string {
	if g == nil {
		return ""
	}
	return g.name
}

// Histogram is a bounded histogram over uint64 observations: bucket i
// counts observations ≤ Bounds[i], with one overflow bucket at the end.
type Histogram struct {
	name   string
	bounds []uint64
	counts []uint64 // len(bounds)+1; last is the overflow bucket
	count  uint64
	sum    uint64
}

// Observe records one observation. Nil-safe.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.count++
	h.sum += v
	// Bounded linear scan: histograms here have ~10 buckets, and a scan
	// beats binary search at that size.
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.counts)-1]++
}

// Count returns the number of observations (0 for a nil histogram).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the sum of all observations (0 for a nil histogram).
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Name returns the registered name.
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// Pow2Bounds builds histogram bounds 2^lo, 2^(lo+1), …, 2^hi — the usual
// shape for size-class and cost distributions.
func Pow2Bounds(lo, hi uint) []uint64 {
	if hi < lo {
		return nil
	}
	out := make([]uint64, 0, hi-lo+1)
	for e := lo; e <= hi; e++ {
		out = append(out, 1<<e)
	}
	return out
}

// Registry owns the metrics of one execution. The zero value of *Registry
// (nil) is a valid "telemetry off" registry: it hands out nil handles.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on first
// use. A nil registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c := r.counters[name]
	if c == nil {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use. A nil registry returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket bounds on first use (bounds are ignored on subsequent
// calls). A nil registry returns a nil (no-op) histogram.
func (r *Registry) Histogram(name string, bounds []uint64) *Histogram {
	if r == nil {
		return nil
	}
	h := r.hists[name]
	if h == nil {
		h = &Histogram{
			name:   name,
			bounds: append([]uint64(nil), bounds...),
			counts: make([]uint64, len(bounds)+1),
		}
		r.hists[name] = h
	}
	return h
}

// Merge folds the metrics of other into r: counters and gauges add their
// values, histograms add bucket-wise when their bounds agree (same-name
// histograms created through the same code path always do); observations
// of a histogram whose bounds differ are folded into the overflow bucket,
// with count and sum still exact. Metrics that exist only in other are
// created in r. Merge is the single-owner aggregation step for parallel
// runs: it must be called after the goroutines owning the source
// registries have quiesced, from one goroutine. A nil r or other is a
// no-op.
func (r *Registry) Merge(other *Registry) {
	if r == nil || other == nil {
		return
	}
	for name, c := range other.counters {
		r.Counter(name).Add(c.v)
	}
	for name, g := range other.gauges {
		r.Gauge(name).Add(g.v)
	}
	for name, h := range other.hists {
		dst := r.Histogram(name, h.bounds)
		dst.count += h.count
		dst.sum += h.sum
		if boundsEqual(dst.bounds, h.bounds) {
			for i, c := range h.counts {
				dst.counts[i] += c
			}
			continue
		}
		var n uint64
		for _, c := range h.counts {
			n += c
		}
		dst.counts[len(dst.counts)-1] += n
	}
}

func boundsEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// CounterValue reads a counter by name without creating it.
func (r *Registry) CounterValue(name string) uint64 {
	if r == nil {
		return 0
	}
	return r.counters[name].Value()
}

// GaugeValue reads a gauge by name without creating it.
func (r *Registry) GaugeValue(name string) uint64 {
	if r == nil {
		return 0
	}
	return r.gauges[name].Value()
}

func sortedKeys[M map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
