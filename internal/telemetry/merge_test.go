package telemetry_test

import (
	"reflect"
	"sync"
	"testing"

	"redfat/internal/telemetry"
)

// TestMergeAddsValues checks counter/gauge addition and the creation of
// metrics that exist only in the source registry.
func TestMergeAddsValues(t *testing.T) {
	dst := telemetry.New()
	dst.Counter("shared.c").Add(10)
	dst.Gauge("shared.g").Set(5)

	src := telemetry.New()
	src.Counter("shared.c").Add(7)
	src.Gauge("shared.g").Set(3)
	src.Counter("only.src").Add(2)

	dst.Merge(src)
	if got := dst.CounterValue("shared.c"); got != 17 {
		t.Errorf("shared.c = %d, want 17", got)
	}
	if got := dst.GaugeValue("shared.g"); got != 8 {
		t.Errorf("shared.g = %d, want 8", got)
	}
	if got := dst.CounterValue("only.src"); got != 2 {
		t.Errorf("only.src = %d, want 2", got)
	}
}

// TestMergeHistograms checks bucket-wise addition for matching bounds and
// the exact count/sum overflow fold for mismatched bounds.
func TestMergeHistograms(t *testing.T) {
	bounds := telemetry.Pow2Bounds(0, 3) // 1, 2, 4, 8
	dst := telemetry.New()
	dst.Histogram("h", bounds).Observe(1)
	dst.Histogram("h", bounds).Observe(100) // overflow

	src := telemetry.New()
	src.Histogram("h", bounds).Observe(2)
	src.Histogram("h", bounds).Observe(8)

	dst.Merge(src)
	got := dst.Snapshot().Histograms["h"]
	want := telemetry.HistogramSnapshot{
		Bounds: []uint64{1, 2, 4, 8},
		Counts: []uint64{1, 1, 0, 1, 1},
		Count:  4,
		Sum:    111,
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("merged histogram = %+v, want %+v", got, want)
	}

	// Mismatched bounds: count and sum stay exact, observations land in
	// the destination's overflow bucket.
	odd := telemetry.New()
	odd.Histogram("h", telemetry.Pow2Bounds(5, 7)).Observe(3)
	odd.Histogram("h", telemetry.Pow2Bounds(5, 7)).Observe(64)
	dst.Merge(odd)
	got = dst.Snapshot().Histograms["h"]
	if got.Count != 6 || got.Sum != 178 {
		t.Errorf("after mismatched merge: count %d sum %d, want 6/178", got.Count, got.Sum)
	}
	if got.Counts[len(got.Counts)-1] != 1+2 {
		t.Errorf("overflow bucket = %d, want 3", got.Counts[len(got.Counts)-1])
	}
}

// TestMergeNilSafety checks that nil receivers and arguments are no-ops.
func TestMergeNilSafety(t *testing.T) {
	var nilReg *telemetry.Registry
	nilReg.Merge(telemetry.New()) // must not panic
	r := telemetry.New()
	r.Counter("c").Inc()
	r.Merge(nil)
	if got := r.CounterValue("c"); got != 1 {
		t.Errorf("c = %d after Merge(nil), want 1", got)
	}
}

// TestSingleOwnerAggregation exercises the documented concurrency
// contract under the race detector: one private registry per goroutine,
// merged by a single owner only after every writer has quiesced.
func TestSingleOwnerAggregation(t *testing.T) {
	const workers, perWorker = 8, 1000
	regs := make([]*telemetry.Registry, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		reg := telemetry.New()
		regs[w] = reg
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := reg.Counter("work.done")
			h := reg.Histogram("work.size", telemetry.Pow2Bounds(0, 8))
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(uint64(i % 300))
			}
		}()
	}
	wg.Wait()
	agg := telemetry.New()
	for _, reg := range regs {
		agg.Merge(reg)
	}
	if got := agg.CounterValue("work.done"); got != workers*perWorker {
		t.Errorf("work.done = %d, want %d", got, workers*perWorker)
	}
	if got := agg.Snapshot().Histograms["work.size"].Count; got != workers*perWorker {
		t.Errorf("work.size count = %d, want %d", got, workers*perWorker)
	}
}
