package telemetry

import (
	"bufio"
	"fmt"
	"io"
)

// EventKind classifies a traced execution event.
type EventKind uint8

// Event kinds recorded by the instrumented layers.
const (
	EvInst      EventKind = iota // instruction retired (Aux = opcode)
	EvTramp                      // trampoline entry via patch dispatch (Addr = target)
	EvTrampExit                  // trampoline exit back into original code
	EvRTCall                     // host runtime call (Aux = cycle cost)
	EvCheckPass                  // instrumented check passed (Aux = site)
	EvCheckFail                  // instrumented check flagged an error (Aux = site)
	EvAlloc                      // heap allocation (Addr = ptr, Aux = size)
	EvFree                       // heap free (Addr = ptr)
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EvInst:
		return "inst"
	case EvTramp:
		return "tramp-enter"
	case EvTrampExit:
		return "tramp-exit"
	case EvRTCall:
		return "rtcall"
	case EvCheckPass:
		return "check-pass"
	case EvCheckFail:
		return "check-fail"
	case EvAlloc:
		return "alloc"
	case EvFree:
		return "free"
	}
	return fmt.Sprintf("event(%d)", uint8(k))
}

// Event is one traced execution event. The meaning of Addr and Aux
// depends on Kind (see the kind constants).
type Event struct {
	Seq  uint64    `json:"seq"` // global event sequence number
	Kind EventKind `json:"kind"`
	PC   uint64    `json:"pc"`             // guest program counter
	Addr uint64    `json:"addr,omitempty"` // access/object/target address
	Aux  uint64    `json:"aux,omitempty"`  // kind-specific payload
	// Cycles is the guest cycle counter when the event was recorded
	// (0 for recorders without cycle context). It gives every event a
	// position on the guest timeline, which the Chrome trace-event
	// exporter uses as its timestamp.
	Cycles uint64 `json:"cycles,omitempty"`
}

// Tracer is a fixed-capacity ring buffer of execution events: recording
// never allocates after construction, and when the buffer is full the
// oldest events are overwritten. A nil Tracer is a valid disabled tracer.
type Tracer struct {
	buf []Event
	pos int // next overwrite position once the buffer is full
	seq uint64
}

// NewTracer creates a tracer holding the last capacity events (minimum 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{buf: make([]Event, 0, capacity)}
}

// Record appends an event, evicting the oldest when full. Nil-safe.
func (t *Tracer) Record(kind EventKind, pc, addr, aux uint64) {
	t.RecordAt(kind, pc, addr, aux, 0)
}

// RecordAt is Record with an explicit guest-cycle timestamp; recorders
// that know the cycle counter (the VM dispatch loop, the libc bindings,
// the check runtime) use it so events can be laid out on a timeline.
func (t *Tracer) RecordAt(kind EventKind, pc, addr, aux, cycles uint64) {
	if t == nil {
		return
	}
	e := Event{Seq: t.seq, Kind: kind, PC: pc, Addr: addr, Aux: aux, Cycles: cycles}
	t.seq++
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, e)
		return
	}
	t.buf[t.pos] = e
	t.pos++
	if t.pos == cap(t.buf) {
		t.pos = 0
	}
}

// Total returns how many events were recorded over the tracer's lifetime
// (including evicted ones).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	return t.seq
}

// Events returns the retained events, oldest first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	if len(t.buf) < cap(t.buf) {
		return append([]Event(nil), t.buf...)
	}
	out := make([]Event, 0, len(t.buf))
	out = append(out, t.buf[t.pos:]...)
	out = append(out, t.buf[:t.pos]...)
	return out
}

// WriteText writes the retained events, one per line.
func (t *Tracer) WriteText(w io.Writer) error {
	if t == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	evs := t.Events()
	if dropped := t.seq - uint64(len(evs)); dropped > 0 {
		fmt.Fprintf(bw, "... %d earlier events evicted ...\n", dropped)
	}
	for _, e := range evs {
		fmt.Fprintf(bw, "%8d %-12s pc=%#x", e.Seq, e.Kind, e.PC)
		if e.Addr != 0 {
			fmt.Fprintf(bw, " addr=%#x", e.Addr)
		}
		if e.Aux != 0 {
			fmt.Fprintf(bw, " aux=%d", e.Aux)
		}
		if e.Cycles != 0 {
			fmt.Fprintf(bw, " cyc=%d", e.Cycles)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}
