package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", Pow2Bounds(1, 4))
	c.Inc()
	c.Add(7)
	g.Set(3)
	g.Add(2)
	g.Sub(9)
	h.Observe(5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil handles must be inert")
	}
	if r.CounterValue("x") != 0 || r.GaugeValue("y") != 0 {
		t.Error("nil registry reads must be zero")
	}
	if s := r.Snapshot(); len(s.Counters) != 0 {
		t.Error("nil registry snapshot must be empty")
	}
	var tr *Tracer
	tr.Record(EvInst, 1, 2, 3)
	if tr.Total() != 0 || tr.Events() != nil {
		t.Error("nil tracer must be inert")
	}
}

func TestRegistryIdentityAndValues(t *testing.T) {
	r := New()
	c := r.Counter("heap.allocs")
	c.Inc()
	c.Add(4)
	if r.Counter("heap.allocs") != c {
		t.Error("same name must return the same counter handle")
	}
	if got := r.CounterValue("heap.allocs"); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := r.Gauge("heap.live.bytes")
	g.Set(100)
	g.Sub(250) // saturates
	if got := g.Value(); got != 0 {
		t.Errorf("gauge after saturating Sub = %d, want 0", got)
	}
	if r.CounterValue("missing") != 0 {
		t.Error("reading a missing counter must not create or fail")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("sizes", Pow2Bounds(2, 4)) // bounds 4, 8, 16
	for _, v := range []uint64{1, 4, 5, 16, 17, 1000} {
		h.Observe(v)
	}
	if h.Count() != 6 || h.Sum() != 1+4+5+16+17+1000 {
		t.Errorf("count/sum = %d/%d", h.Count(), h.Sum())
	}
	snap := r.Snapshot().Histograms["sizes"]
	want := []uint64{2, 1, 1, 2} // ≤4: {1,4}; ≤8: {5}; ≤16: {16}; over: {17,1000}
	if len(snap.Counts) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(snap.Counts), len(want))
	}
	for i, w := range want {
		if snap.Counts[i] != w {
			t.Errorf("bucket[%d] = %d, want %d", i, snap.Counts[i], w)
		}
	}
}

func TestJSONExportRoundTrips(t *testing.T) {
	r := New()
	r.Counter("check.execs").Add(12)
	r.Gauge("vm.cycles").Set(987)
	r.Histogram("cost", []uint64{10, 100}).Observe(50)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if s.Counters["check.execs"] != 12 || s.Gauges["vm.cycles"] != 987 {
		t.Errorf("round-trip lost values: %+v", s)
	}
	if h := s.Histograms["cost"]; h.Count != 1 || h.Sum != 50 {
		t.Errorf("histogram round-trip: %+v", h)
	}
}

func TestPrometheusExport(t *testing.T) {
	r := New()
	r.Counter("vm.retired.total").Add(3)
	r.Histogram("vm.rtcall.dispatch.cycles", []uint64{4, 8}).Observe(6)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE redfat_vm_retired_total counter",
		"redfat_vm_retired_total 3",
		"# TYPE redfat_vm_rtcall_dispatch_cycles histogram",
		`redfat_vm_rtcall_dispatch_cycles_bucket{le="4"} 0`,
		`redfat_vm_rtcall_dispatch_cycles_bucket{le="8"} 1`,
		`redfat_vm_rtcall_dispatch_cycles_bucket{le="+Inf"} 1`,
		"redfat_vm_rtcall_dispatch_cycles_sum 6",
		"redfat_vm_rtcall_dispatch_cycles_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestTracerRingBuffer(t *testing.T) {
	tr := NewTracer(4)
	for i := uint64(0); i < 10; i++ {
		tr.Record(EvInst, i, 0, 0)
	}
	if tr.Total() != 10 {
		t.Errorf("total = %d, want 10", tr.Total())
	}
	ev := tr.Events()
	if len(ev) != 4 {
		t.Fatalf("kept %d events, want 4", len(ev))
	}
	for i, e := range ev {
		wantPC := uint64(6 + i) // oldest-first: PCs 6,7,8,9
		if e.PC != wantPC {
			t.Errorf("event[%d].PC = %d, want %d", i, e.PC, wantPC)
		}
		if e.Seq != wantPC { // Seq is 0-based and tracks PC in this test
			t.Errorf("event[%d].Seq = %d, want %d", i, e.Seq, wantPC)
		}
	}
	var buf bytes.Buffer
	if err := tr.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "6 earlier events evicted") {
		t.Errorf("eviction note missing:\n%s", buf.String())
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := []EventKind{EvInst, EvTramp, EvTrampExit, EvRTCall,
		EvCheckPass, EvCheckFail, EvAlloc, EvFree}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "kind(") {
			t.Errorf("kind %d has no name", k)
		}
		if seen[s] {
			t.Errorf("duplicate kind name %q", s)
		}
		seen[s] = true
	}
}
