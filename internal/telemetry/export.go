package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// HistogramSnapshot is the exported form of one histogram. Counts has one
// entry per bound plus a final overflow bucket.
type HistogramSnapshot struct {
	Bounds []uint64 `json:"bounds"`
	Counts []uint64 `json:"counts"`
	Count  uint64   `json:"count"`
	Sum    uint64   `json:"sum"`
}

// SchemaVersion versions the exported JSON shape. Consumers that store
// snapshots (runpack manifests, bench baselines) check it and reject
// incompatible files instead of misparsing them.
const SchemaVersion = 1

// Snapshot is a point-in-time copy of a registry, shaped for JSON export.
type Snapshot struct {
	SchemaVersion int                          `json:"schema_version"`
	Counters      map[string]uint64            `json:"counters,omitempty"`
	Gauges        map[string]uint64            `json:"gauges,omitempty"`
	Histograms    map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Validate reports whether the snapshot was written by a compatible
// exporter (zero means a pre-versioned file and is rejected too).
func (s *Snapshot) Validate() error {
	if s.SchemaVersion != SchemaVersion {
		return fmt.Errorf("telemetry: snapshot schema_version %d, tool supports %d",
			s.SchemaVersion, SchemaVersion)
	}
	return nil
}

// Snapshot copies the registry's current values. A nil registry yields an
// empty snapshot.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		SchemaVersion: SchemaVersion,
		Counters:      map[string]uint64{},
		Gauges:        map[string]uint64{},
		Histograms:    map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	for name, c := range r.counters {
		s.Counters[name] = c.v
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.v
	}
	for name, h := range r.hists {
		s.Histograms[name] = HistogramSnapshot{
			Bounds: append([]uint64(nil), h.bounds...),
			Counts: append([]uint64(nil), h.counts...),
			Count:  h.count,
			Sum:    h.sum,
		}
	}
	return s
}

// WriteJSON writes the registry as one indented JSON object.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// promName maps a dotted metric name to the Prometheus exposition charset
// with the redfat namespace prefix: "vm.retired.mov" → "redfat_vm_retired_mov".
func promName(name string) string {
	var b strings.Builder
	b.WriteString("redfat_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z',
			r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (histograms as cumulative _bucket/_sum/_count series).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	for _, name := range sortedKeys(r.counters) {
		pn := promName(name)
		fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", pn, pn, r.counters[name].v)
	}
	for _, name := range sortedKeys(r.gauges) {
		pn := promName(name)
		fmt.Fprintf(bw, "# TYPE %s gauge\n%s %d\n", pn, pn, r.gauges[name].v)
	}
	for _, name := range sortedKeys(r.hists) {
		h := r.hists[name]
		pn := promName(name)
		fmt.Fprintf(bw, "# TYPE %s histogram\n", pn)
		cum := uint64(0)
		for i, b := range h.bounds {
			cum += h.counts[i]
			fmt.Fprintf(bw, "%s_bucket{le=\"%d\"} %d\n", pn, b, cum)
		}
		fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.count)
		fmt.Fprintf(bw, "%s_sum %d\n", pn, h.sum)
		fmt.Fprintf(bw, "%s_count %d\n", pn, h.count)
	}
	return bw.Flush()
}

// WriteText writes a compact human-readable report: non-zero counters,
// all gauges, and histogram summaries, sorted by name.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	for _, name := range sortedKeys(r.counters) {
		if v := r.counters[name].v; v != 0 {
			fmt.Fprintf(bw, "%-32s %12d\n", name, v)
		}
	}
	for _, name := range sortedKeys(r.gauges) {
		fmt.Fprintf(bw, "%-32s %12d\n", name, r.gauges[name].v)
	}
	for _, name := range sortedKeys(r.hists) {
		h := r.hists[name]
		if h.count == 0 {
			continue
		}
		fmt.Fprintf(bw, "%-32s %12d observations, mean %.1f\n",
			name, h.count, float64(h.sum)/float64(h.count))
		for i, b := range h.bounds {
			if h.counts[i] != 0 {
				fmt.Fprintf(bw, "    ≤ %-12d %12d\n", b, h.counts[i])
			}
		}
		if n := len(h.bounds); n > 0 && h.counts[n] != 0 {
			fmt.Fprintf(bw, "    > %-12d %12d\n", h.bounds[n-1], h.counts[n])
		}
	}
	return bw.Flush()
}
