package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// HistogramSnapshot is the exported form of one histogram. Counts has one
// entry per bound plus a final overflow bucket.
type HistogramSnapshot struct {
	Bounds []uint64 `json:"bounds"`
	Counts []uint64 `json:"counts"`
	Count  uint64   `json:"count"`
	Sum    uint64   `json:"sum"`
}

// SchemaVersion versions the exported JSON shape. Consumers that store
// snapshots (runpack manifests, bench baselines) check it and reject
// incompatible files instead of misparsing them.
const SchemaVersion = 1

// Snapshot is a point-in-time copy of a registry, shaped for JSON export.
type Snapshot struct {
	SchemaVersion int                          `json:"schema_version"`
	Counters      map[string]uint64            `json:"counters,omitempty"`
	Gauges        map[string]uint64            `json:"gauges,omitempty"`
	Histograms    map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Validate reports whether the snapshot was written by a compatible
// exporter (zero means a pre-versioned file and is rejected too).
func (s *Snapshot) Validate() error {
	if s.SchemaVersion != SchemaVersion {
		return fmt.Errorf("telemetry: snapshot schema_version %d, tool supports %d",
			s.SchemaVersion, SchemaVersion)
	}
	return nil
}

// Snapshot copies the registry's current values. A nil registry yields an
// empty snapshot.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		SchemaVersion: SchemaVersion,
		Counters:      map[string]uint64{},
		Gauges:        map[string]uint64{},
		Histograms:    map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	for name, c := range r.counters {
		s.Counters[name] = c.v
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.v
	}
	for name, h := range r.hists {
		s.Histograms[name] = HistogramSnapshot{
			Bounds: append([]uint64(nil), h.bounds...),
			Counts: append([]uint64(nil), h.counts...),
			Count:  h.count,
			Sum:    h.sum,
		}
	}
	return s
}

// WriteJSON writes the registry as one indented JSON object.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// promName maps a dotted metric name to the Prometheus exposition charset
// with the redfat namespace prefix: "vm.retired.mov" → "redfat_vm_retired_mov".
func promName(name string) string {
	var b strings.Builder
	b.WriteString("redfat_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z',
			r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (histograms as cumulative _bucket/_sum/_count series).
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.Snapshot().WritePrometheus(w)
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format (histograms as cumulative _bucket/_sum/_count series).
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, name := range sortedKeys(s.Counters) {
		pn := promName(name)
		fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		pn := promName(name)
		fmt.Fprintf(bw, "# TYPE %s gauge\n%s %d\n", pn, pn, s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		pn := promName(name)
		fmt.Fprintf(bw, "# TYPE %s histogram\n", pn)
		cum := uint64(0)
		for i, b := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(bw, "%s_bucket{le=\"%d\"} %d\n", pn, b, cum)
		}
		fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count)
		fmt.Fprintf(bw, "%s_sum %d\n", pn, h.Sum)
		fmt.Fprintf(bw, "%s_count %d\n", pn, h.Count)
	}
	return bw.Flush()
}

// WriteText writes a compact human-readable report: non-zero counters,
// all gauges, and histogram summaries, sorted by name.
func (r *Registry) WriteText(w io.Writer) error {
	return r.Snapshot().WriteText(w)
}

// WriteText writes the snapshot as a compact human-readable report:
// non-zero counters, all gauges, and histogram summaries, sorted by name.
func (s *Snapshot) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, name := range sortedKeys(s.Counters) {
		if v := s.Counters[name]; v != 0 {
			fmt.Fprintf(bw, "%-32s %12d\n", name, v)
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		fmt.Fprintf(bw, "%-32s %12d\n", name, s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		if h.Count == 0 {
			continue
		}
		fmt.Fprintf(bw, "%-32s %12d observations, mean %.1f\n",
			name, h.Count, float64(h.Sum)/float64(h.Count))
		for i, b := range h.Bounds {
			if h.Counts[i] != 0 {
				fmt.Fprintf(bw, "    ≤ %-12d %12d\n", b, h.Counts[i])
			}
		}
		if n := len(h.Bounds); n > 0 && h.Counts[n] != 0 {
			fmt.Fprintf(bw, "    > %-12d %12d\n", h.Bounds[n-1], h.Counts[n])
		}
	}
	return bw.Flush()
}

// hostTimeSuffixes mark series measured in host wall-clock units. Any
// new host-time metric must use one of these suffixes so every consumer
// that needs guest-deterministic output (rfvm -stats, /snapshot,
// identity tests) strips it through this one filter.
var hostTimeSuffixes = []string{".ns", ".ms"}

// isHostTime reports whether a metric name denotes host wall-clock time.
func isHostTime(name string) bool {
	for _, suf := range hostTimeSuffixes {
		if strings.HasSuffix(name, suf) {
			return true
		}
	}
	return false
}

// StripHostTime removes every host-wall-clock series (".ns"/".ms"
// suffixed) from the snapshot in place, leaving only guest-deterministic
// data: the shared filter behind rfvm -stats and the /snapshot endpoint.
func (s *Snapshot) StripHostTime() *Snapshot {
	for name := range s.Counters {
		if isHostTime(name) {
			delete(s.Counters, name)
		}
	}
	for name := range s.Gauges {
		if isHostTime(name) {
			delete(s.Gauges, name)
		}
	}
	for name := range s.Histograms {
		if isHostTime(name) {
			delete(s.Histograms, name)
		}
	}
	return s
}
