// Package forensics turns raw trap state into human-usable evidence: it
// symbolizes guest PCs against RELF symbol tables, resolves faulting
// addresses to their owning heap objects (with allocation/free
// backtraces), renders ASan-style error reports in text and JSON, and
// exports guest profiles as folded stacks and Chrome trace events.
//
// Everything here runs after (or outside) guest execution and reads only
// host-side bookkeeping, so enabling forensics never perturbs guest
// cycle accounting — the bit-identity guarantee the VM's other observers
// (telemetry, tracing) already uphold.
package forensics

import (
	"fmt"
	"sort"

	"redfat/internal/relf"
)

// Frame is one symbolized guest PC.
type Frame struct {
	PC     uint64 `json:"pc"`
	Symbol string `json:"symbol,omitempty"` // enclosing function, "" if unknown
	Offset uint64 `json:"offset,omitempty"` // PC − function start
	// Tramp marks a PC inside a rewriter-added trampoline; Origin is the
	// patched original instruction address it dispatches for, and the
	// Symbol/Offset refer to that origin.
	Tramp  bool   `json:"tramp,omitempty"`
	Origin uint64 `json:"origin,omitempty"`
}

// String renders the frame the way the text reports print it:
// "name+0x12", a bare "name" at offset 0, or "<0x401234>" when no symbol
// covers the PC (stripped binaries, JIT-less wilderness). Trampoline
// frames carry a suffix naming the trampoline address.
func (f Frame) String() string {
	s := ""
	switch {
	case f.Symbol == "":
		pc := f.PC
		if f.Tramp && f.Origin != 0 {
			pc = f.Origin
		}
		s = fmt.Sprintf("<%#x>", pc)
	case f.Offset == 0:
		s = f.Symbol
	default:
		s = fmt.Sprintf("%s+%#x", f.Symbol, f.Offset)
	}
	if f.Tramp {
		s += fmt.Sprintf(" [tramp %#x]", f.PC)
	}
	return s
}

// trampOrigin is one reversed patch-table entry: the trampoline body at
// Tramp dispatches for the original instruction at Origin.
type trampOrigin struct {
	Tramp  uint64
	Origin uint64
}

// Symbolizer resolves guest PCs to function symbols across the modules
// of a run (main binary plus any libraries). A nil Symbolizer is valid
// and renders every PC as "<0x...>".
type Symbolizer struct {
	funcs    []relf.Symbol // function symbols, sorted by address
	tramps   []*relf.Section
	origins  []trampOrigin // reversed patch tables, sorted by Tramp
	stripped bool          // every module was stripped
}

// NewSymbolizer builds a symbolizer over the given modules. Stripped
// modules contribute no symbols but still contribute their origin/patch
// tables, so trampoline PCs resolve to original addresses either way.
func NewSymbolizer(bins ...*relf.Binary) *Symbolizer {
	s := &Symbolizer{stripped: true}
	for _, b := range bins {
		if b == nil {
			continue
		}
		if !b.Stripped {
			s.stripped = false
		}
		for _, sym := range b.Symbols {
			if sym.Func {
				s.funcs = append(s.funcs, sym)
			}
		}
		for _, sec := range b.Sections {
			if sec.Kind == relf.SecTramp {
				s.tramps = append(s.tramps, sec)
			}
		}
		// The origin table covers every trampoline (all patch tactics);
		// the reversed trap table is the fallback for images rewritten
		// before the origin table existed.
		if sec := b.Section(relf.OriginTableSection); sec != nil {
			if table, err := relf.DecodePatchTable(sec.Data); err == nil {
				for tramp, origin := range table {
					s.origins = append(s.origins, trampOrigin{Tramp: tramp, Origin: origin})
				}
				continue
			}
		}
		if sec := b.Section(relf.PatchTableSection); sec != nil {
			if table, err := relf.DecodePatchTable(sec.Data); err == nil {
				for from, to := range table {
					s.origins = append(s.origins, trampOrigin{Tramp: to, Origin: from})
				}
			}
		}
	}
	sort.Slice(s.funcs, func(i, j int) bool { return s.funcs[i].Addr < s.funcs[j].Addr })
	sort.Slice(s.origins, func(i, j int) bool { return s.origins[i].Tramp < s.origins[j].Tramp })
	return s
}

// Stripped reports whether every module lacked symbols, i.e. frames can
// only render as raw addresses.
func (s *Symbolizer) Stripped() bool { return s == nil || s.stripped }

// inTramp reports whether pc lies in a rewriter-added trampoline section.
func (s *Symbolizer) inTramp(pc uint64) bool {
	for _, sec := range s.tramps {
		if pc >= sec.Addr && pc < sec.End() {
			return true
		}
	}
	return false
}

// originOf maps a trampoline PC back to the original patched instruction
// address: the patch entry with the greatest trampoline target ≤ pc owns
// the trampoline body containing pc.
func (s *Symbolizer) originOf(pc uint64) (uint64, bool) {
	i := sort.Search(len(s.origins), func(i int) bool { return s.origins[i].Tramp > pc })
	if i == 0 {
		return 0, false
	}
	return s.origins[i-1].Origin, true
}

// funcAt returns the function symbol covering pc, if any.
func (s *Symbolizer) funcAt(pc uint64) (relf.Symbol, bool) {
	i := sort.Search(len(s.funcs), func(i int) bool { return s.funcs[i].Addr > pc })
	if i == 0 {
		return relf.Symbol{}, false
	}
	f := s.funcs[i-1]
	if pc >= f.Addr+f.Size {
		return relf.Symbol{}, false
	}
	return f, true
}

// Frame symbolizes one guest PC. Trampoline PCs are first mapped back to
// the original instruction they were patched over, so the frame names
// guest code, not rewriter scaffolding.
func (s *Symbolizer) Frame(pc uint64) Frame {
	fr := Frame{PC: pc}
	if s == nil {
		return fr
	}
	lookup := pc
	if s.inTramp(pc) {
		fr.Tramp = true
		if origin, ok := s.originOf(pc); ok {
			fr.Origin = origin
			lookup = origin
		}
	}
	if f, ok := s.funcAt(lookup); ok {
		fr.Symbol = f.Name
		fr.Offset = lookup - f.Addr
	}
	return fr
}

// Format renders one PC as the text reports print it.
func (s *Symbolizer) Format(pc uint64) string { return s.Frame(pc).String() }

// Frames symbolizes a PC slice in order.
func (s *Symbolizer) Frames(pcs []uint64) []Frame {
	if len(pcs) == 0 {
		return nil
	}
	out := make([]Frame, len(pcs))
	for i, pc := range pcs {
		out[i] = s.Frame(pc)
	}
	return out
}
