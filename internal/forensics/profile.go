package forensics

import (
	"fmt"
	"io"
	"strings"

	"redfat/internal/vm"
)

// WriteFolded renders the profiler's aggregated stacks in the folded
// format flamegraph tooling consumes: one line per unique stack,
// semicolon-joined frames root-first, then the attributed cycle count.
// Symbolization folds by function, so stacks distinct at the PC level
// merge here; line order is deterministic (first appearance in the
// profiler's hottest-first bucket order).
func WriteFolded(w io.Writer, p *vm.GuestProfiler, sym *Symbolizer) error {
	type line struct {
		key    string
		cycles uint64
	}
	var order []*line
	index := make(map[string]*line)
	for _, s := range p.Samples() {
		names := make([]string, len(s.Stack))
		for i, pc := range s.Stack {
			// Folded stacks read root → leaf; the profiler stores leaf
			// first, so mirror the slice while naming it.
			names[len(s.Stack)-1-i] = foldedName(sym.Frame(pc))
		}
		key := strings.Join(names, ";")
		if l, ok := index[key]; ok {
			l.cycles += s.Cycles
			continue
		}
		l := &line{key: key, cycles: s.Cycles}
		index[key] = l
		order = append(order, l)
	}
	for _, l := range order {
		if _, err := fmt.Fprintf(w, "%s %d\n", l.key, l.cycles); err != nil {
			return err
		}
	}
	return nil
}

// foldedName renders one frame for folded output: the bare symbol (a
// flamegraph aggregates by function, not by offset), or the raw address
// when no symbol covers the PC. Semicolons cannot appear in either.
func foldedName(f Frame) string {
	if f.Symbol != "" {
		return f.Symbol
	}
	pc := f.PC
	if f.Tramp && f.Origin != 0 {
		pc = f.Origin
	}
	return fmt.Sprintf("0x%x", pc)
}

// WriteHotSites renders a per-PC hot-site table, hottest first:
//
//	 CYCLES      %  SAMPLES  LOCATION
//	1048576  51.2%      256  store_kernel+0x24 (0x400124)
//
// top bounds the printed rows (0 = all).
func WriteHotSites(w io.Writer, p *vm.GuestProfiler, sym *Symbolizer, top int) error {
	hot := p.HotPCs()
	total := p.TotalCycles()
	if _, err := fmt.Fprintf(w, "guest profile: %d samples, %d cycles attributed\n",
		p.SampleCount(), total); err != nil {
		return err
	}
	if len(hot) == 0 {
		return nil
	}
	if _, err := fmt.Fprintf(w, "%12s %6s %8s  %s\n", "CYCLES", "%", "SAMPLES", "LOCATION"); err != nil {
		return err
	}
	for i, s := range hot {
		if top > 0 && i >= top {
			break
		}
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(s.Cycles) / float64(total)
		}
		pc := s.Stack[0]
		if _, err := fmt.Fprintf(w, "%12d %5.1f%% %8d  %s (%#x)\n",
			s.Cycles, pct, s.Count, sym.Format(pc), pc); err != nil {
			return err
		}
	}
	return nil
}
