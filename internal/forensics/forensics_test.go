package forensics_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"redfat/internal/asm"
	"redfat/internal/forensics"
	"redfat/internal/isa"
	"redfat/internal/redfat"
	"redfat/internal/relf"
	"redfat/internal/rtlib"
	"redfat/internal/telemetry"
	"redfat/internal/vm"
	"redfat/internal/workload"
)

var update = flag.Bool("update", false, "rewrite the golden report files")

// buildOOBProgram assembles the canonical forensic scenario: main calls
// make_buf (a 40-byte malloc) and then smash, which stores to
// buf[rf_input()] — index 40 lands 280 bytes past the end, in a slot
// never handed out, so attribution must walk back to the owning object.
func buildOOBProgram(t *testing.T) *relf.Binary {
	t.Helper()
	b := asm.NewBuilder(asm.Options{})
	b.Func("main")
	b.Call("make_buf")
	b.MovRR(isa.RBX, isa.RAX)
	b.Call("smash")
	b.MovRI(isa.RAX, 0)
	b.Ret()
	b.Func("make_buf")
	b.MovRI(isa.RDI, 40)
	b.CallImport("malloc")
	b.Ret()
	b.Func("smash")
	b.CallImport("rf_input")
	b.MovRI(isa.RCX, 7)
	b.StoreM(asm.MemBID(isa.RBX, isa.RAX, 8, 0), isa.RCX, 8)
	b.Ret()
	bin, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return bin
}

// buildUAFProgram allocates through a helper, frees in main, then writes
// through the dangling pointer.
func buildUAFProgram(t *testing.T) *relf.Binary {
	t.Helper()
	b := asm.NewBuilder(asm.Options{})
	b.Func("main")
	b.Call("make_buf")
	b.MovRR(isa.RBX, isa.RAX)
	b.MovRR(isa.RDI, isa.RAX)
	b.CallImport("free")
	b.StoreI(isa.RBX, 0, 0x42, 8) // write after free
	b.MovRI(isa.RAX, 0)
	b.Ret()
	b.Func("make_buf")
	b.MovRI(isa.RDI, 64)
	b.CallImport("malloc")
	b.Ret()
	bin, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return bin
}

// buildInvalidFreeProgram frees an interior pointer (base+8).
func buildInvalidFreeProgram(t *testing.T) *relf.Binary {
	t.Helper()
	b := asm.NewBuilder(asm.Options{})
	b.Func("main")
	b.MovRI(isa.RDI, 40)
	b.CallImport("malloc")
	b.MovRR(isa.RDI, isa.RAX)
	b.AluRI(isa.ADD, isa.RDI, 8)
	b.CallImport("free")
	b.MovRI(isa.RAX, 0)
	b.Ret()
	bin, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return bin
}

// runForensic hardens bin with the production configuration and runs it
// with forensic capture on, returning the finished VM, the resolved
// reports, and the hardened image.
func runForensic(t *testing.T, bin *relf.Binary, input []uint64) (*vm.VM, []*forensics.ErrorReport, *relf.Binary) {
	t.Helper()
	hard, _, err := redfat.Harden(bin, redfat.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	v, rt, err := rtlib.RunHardened(hard, rtlib.RunConfig{
		Input: input, Abort: true, Forensics: true,
	})
	if err != nil {
		if _, ok := err.(*vm.MemError); !ok {
			t.Fatal(err)
		}
	}
	rep := forensics.NewReporter(forensics.NewSymbolizer(hard), rt.Heap)
	return v, rep.ReportAll(v.Errors), hard
}

// TestOOBReportNamesOwningObject is the acceptance scenario: a forensic
// OOB-write report must name the owning allocation's size, the offset
// past its end, and a symbolized allocation backtrace.
func TestOOBReportNamesOwningObject(t *testing.T) {
	_, reports, _ := runForensic(t, buildOOBProgram(t), []uint64{40})
	if len(reports) == 0 {
		t.Fatal("no reports")
	}
	r := reports[0]
	if r.Kind != "out-of-bounds write" {
		t.Errorf("kind = %q", r.Kind)
	}
	if r.PCFrame.Symbol != "smash" {
		t.Errorf("fault pc frame = %v, want smash+…", r.PCFrame)
	}
	if len(r.Stack) == 0 || r.Stack[0].Symbol != "main" {
		t.Errorf("guest stack = %v, want caller main", r.Stack)
	}
	o := r.Object
	if o == nil {
		t.Fatal("no object attribution")
	}
	if o.Size != 40 {
		t.Errorf("object size = %d, want 40", o.Size)
	}
	if o.Relation != "past-end" {
		t.Errorf("relation = %q, want past-end", o.Relation)
	}
	if past := o.Offset - int64(o.Size); past != 280 {
		t.Errorf("offset past end = %d, want 280 (index 40 × 8 − 40)", past)
	}
	if o.AllocPC.Symbol != "make_buf" {
		t.Errorf("alloc pc = %v, want make_buf+…", o.AllocPC)
	}
	if len(o.AllocStack) == 0 || o.AllocStack[0].Symbol != "main" {
		t.Errorf("alloc stack = %v, want caller main", o.AllocStack)
	}
	var text bytes.Buffer
	if err := r.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"280 bytes past the end of a 40-byte object",
		"allocated at make_buf+",
		"#0 main+",
	} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("text report missing %q:\n%s", want, text.String())
		}
	}
}

func TestUAFReportHistory(t *testing.T) {
	_, reports, _ := runForensic(t, buildUAFProgram(t), nil)
	if len(reports) == 0 {
		t.Fatal("no reports")
	}
	r := reports[0]
	if r.Kind != "use-after-free" {
		t.Errorf("kind = %q", r.Kind)
	}
	o := r.Object
	if o == nil {
		t.Fatal("no object attribution")
	}
	if !o.Freed || o.Relation != "freed" {
		t.Errorf("object not marked freed: %+v", o)
	}
	if o.AllocPC.Symbol != "make_buf" {
		t.Errorf("alloc pc = %v, want make_buf+…", o.AllocPC)
	}
	if o.FreePC == nil || o.FreePC.Symbol != "main" {
		t.Errorf("free pc = %v, want main+…", o.FreePC)
	}
	var text bytes.Buffer
	if err := r.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "freed at main+") {
		t.Errorf("text report missing free site:\n%s", text.String())
	}
}

func TestInvalidFreeReport(t *testing.T) {
	_, reports, _ := runForensic(t, buildInvalidFreeProgram(t), nil)
	if len(reports) == 0 {
		t.Fatal("no reports")
	}
	r := reports[0]
	if r.Kind != "invalid free" {
		t.Errorf("kind = %q", r.Kind)
	}
	// The interior pointer still resolves to the live owning object.
	if r.Object == nil || r.Object.Size != 40 || r.Object.Relation != "inside" {
		t.Errorf("object = %+v, want 8 bytes into the live 40-byte object", r.Object)
	}
}

// TestGoldenReports locks the rendered text and JSON forms byte-for-byte
// for the three canonical errors. The VM is deterministic, so any drift
// is a real format change; regenerate with: go test ./internal/forensics
// -run Golden -update
func TestGoldenReports(t *testing.T) {
	cases := []struct {
		name  string
		build func(*testing.T) *relf.Binary
		input []uint64
	}{
		{"oob_write", buildOOBProgram, []uint64{40}},
		{"use_after_free", buildUAFProgram, nil},
		{"invalid_free", buildInvalidFreeProgram, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, reports, _ := runForensic(t, tc.build(t), tc.input)
			if len(reports) == 0 {
				t.Fatal("no reports")
			}
			var text, js bytes.Buffer
			for _, r := range reports {
				if err := r.WriteText(&text); err != nil {
					t.Fatal(err)
				}
				if err := r.WriteJSON(&js); err != nil {
					t.Fatal(err)
				}
			}
			compareGolden(t, tc.name+".txt", text.Bytes())
			compareGolden(t, tc.name+".json", js.Bytes())
		})
	}
}

func compareGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden:\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

// TestStrippedImageFallback re-runs the OOB scenario on a stripped
// binary: reports must fall back to raw <0x…> addresses but keep the
// object attribution, which comes from allocator bookkeeping.
func TestStrippedImageFallback(t *testing.T) {
	bin := buildOOBProgram(t)
	bin.Strip()
	_, reports, hard := runForensic(t, bin, []uint64{40})
	if !forensics.NewSymbolizer(hard).Stripped() {
		t.Error("symbolizer over stripped image not marked stripped")
	}
	if len(reports) == 0 {
		t.Fatal("no reports")
	}
	r := reports[0]
	if r.PCFrame.Symbol != "" {
		t.Errorf("stripped frame has symbol %q", r.PCFrame.Symbol)
	}
	if !strings.HasPrefix(r.PCFrame.String(), "<0x") {
		t.Errorf("stripped frame renders %q, want <0x…>", r.PCFrame.String())
	}
	if r.Object == nil || r.Object.Size != 40 {
		t.Errorf("stripped run lost object attribution: %+v", r.Object)
	}
	if r.Object.AllocPC.Symbol != "" || r.Object.AllocPC.PC == 0 {
		t.Errorf("stripped alloc frame = %+v, want bare PC", r.Object.AllocPC)
	}
}

// TestSymbolizerOutOfRange covers PCs no symbol spans: before the image,
// between the end of a function and the next, and a nil symbolizer.
func TestSymbolizerOutOfRange(t *testing.T) {
	bin := buildOOBProgram(t)
	sym := forensics.NewSymbolizer(bin)
	var max uint64
	for _, s := range bin.Symbols {
		if s.Func && s.Addr+s.Size > max {
			max = s.Addr + s.Size
		}
	}
	for _, pc := range []uint64{1, max + 0x1000} {
		if f := sym.Frame(pc); f.Symbol != "" {
			t.Errorf("Frame(%#x) = %v, want no symbol", pc, f)
		}
	}
	if got := sym.Format(1); got != "<0x1>" {
		t.Errorf("Format(1) = %q", got)
	}
	var nilSym *forensics.Symbolizer
	if !nilSym.Stripped() {
		t.Error("nil symbolizer not stripped")
	}
	if got := nilSym.Format(0x400000); got != "<0x400000>" {
		t.Errorf("nil Format = %q", got)
	}
}

// TestTrampolinePCResolution feeds PCs inside the rewriter-added
// trampoline section: frames must map back to the patched origin and
// name the original guest function.
func TestTrampolinePCResolution(t *testing.T) {
	bin := buildOOBProgram(t)
	hard, _, err := redfat.Harden(bin, redfat.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	var tramp *relf.Section
	for _, sec := range hard.Sections {
		if sec.Kind == relf.SecTramp {
			tramp = sec
			break
		}
	}
	if tramp == nil {
		t.Fatal("hardened image has no trampoline section")
	}
	sym := forensics.NewSymbolizer(hard)
	f := sym.Frame(tramp.Addr)
	if !f.Tramp {
		t.Fatalf("Frame(%#x) not marked tramp: %+v", tramp.Addr, f)
	}
	if f.Origin == 0 || f.Symbol == "" {
		t.Errorf("tramp frame unresolved: %+v", f)
	}
	if !strings.Contains(f.String(), "[tramp ") {
		t.Errorf("tramp frame renders %q", f.String())
	}
	// A stripped image keeps the patch table: the origin still resolves,
	// only the name is lost.
	stripped := buildOOBProgram(t)
	stripped.Strip()
	shard, _, err := redfat.Harden(stripped, redfat.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	var stramp *relf.Section
	for _, sec := range shard.Sections {
		if sec.Kind == relf.SecTramp {
			stramp = sec
			break
		}
	}
	if stramp == nil {
		t.Fatal("stripped hardened image has no trampoline section")
	}
	sf := forensics.NewSymbolizer(shard).Frame(stramp.Addr)
	if !sf.Tramp || sf.Origin == 0 || sf.Symbol != "" {
		t.Errorf("stripped tramp frame = %+v, want origin without symbol", sf)
	}
}

// TestForensicsCycleIdentity is the bit-identity acceptance criterion:
// enabling forensic capture and the sampling profiler must not change
// guest cycle counts, instruction counts, exit codes, or detections —
// on both the benign and the error path.
func TestForensicsCycleIdentity(t *testing.T) {
	bin := buildOOBProgram(t)
	hard, _, err := redfat.Harden(bin, redfat.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	for _, input := range [][]uint64{{2}, {40}} {
		plain, _, err := rtlib.RunHardened(hard, rtlib.RunConfig{Input: input, Abort: true})
		if _, ok := err.(*vm.MemError); err != nil && !ok {
			t.Fatal(err)
		}
		full, _, err := rtlib.RunHardened(hard, rtlib.RunConfig{
			Input: input, Abort: true,
			Forensics: true,
			Profiler:  &vm.GuestProfiler{Interval: 16},
		})
		if _, ok := err.(*vm.MemError); err != nil && !ok {
			t.Fatal(err)
		}
		if plain.Cycles != full.Cycles || plain.Insts != full.Insts {
			t.Errorf("input %v: forensics perturbed execution: %d/%d cycles vs %d/%d insts",
				input, plain.Cycles, full.Cycles, plain.Insts, full.Insts)
		}
		if plain.ExitCode != full.ExitCode || len(plain.Errors) != len(full.Errors) {
			t.Errorf("input %v: results diverged: exit %d vs %d, %d vs %d errors",
				input, plain.ExitCode, full.ExitCode, len(plain.Errors), len(full.Errors))
		}
	}
}

// TestWorkloadCycleIdentity extends the bit-identity check to real
// workload benchmarks: the guest cycle counts that feed Table 1 must be
// unchanged with forensics and profiling enabled.
func TestWorkloadCycleIdentity(t *testing.T) {
	bms := workload.All()
	if testing.Short() {
		bms = bms[:3]
	}
	for _, bm := range bms {
		cp := *bm
		cp.RefScale = 800
		cp.TrainScale = 200
		bin, err := cp.Build()
		if err != nil {
			t.Fatalf("%s: build: %v", cp.Name, err)
		}
		hard, _, err := redfat.Harden(bin, redfat.Defaults())
		if err != nil {
			t.Fatalf("%s: harden: %v", cp.Name, err)
		}
		input := cp.RefInput()
		plain, _, err := rtlib.RunHardened(hard, rtlib.RunConfig{Input: input})
		if err != nil {
			t.Fatalf("%s: %v", cp.Name, err)
		}
		full, _, err := rtlib.RunHardened(hard, rtlib.RunConfig{
			Input: input, Forensics: true, Profiler: &vm.GuestProfiler{},
		})
		if err != nil {
			t.Fatalf("%s: %v", cp.Name, err)
		}
		if plain.Cycles != full.Cycles || plain.Insts != full.Insts ||
			plain.ExitCode != full.ExitCode {
			t.Errorf("%s: forensics perturbed the run: %d/%d/%d vs %d/%d/%d (cycles/insts/exit)",
				cp.Name, plain.Cycles, plain.Insts, plain.ExitCode,
				full.Cycles, full.Insts, full.ExitCode)
		}
	}
}

// TestFoldedOutputConsumable runs the profiler and parses the folded
// stacks the way flamegraph tooling does: every line is
// "frame;frame;… cycles", frames are root-first starting at main, and
// the cycle counts sum to the profiler's attributed total.
func TestFoldedOutputConsumable(t *testing.T) {
	bin := buildOOBProgram(t)
	hard, _, err := redfat.Harden(bin, redfat.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	prof := &vm.GuestProfiler{Interval: 16}
	if _, _, err := rtlib.RunHardened(hard, rtlib.RunConfig{
		Input: []uint64{2}, Abort: true, Profiler: prof,
	}); err != nil {
		t.Fatal(err)
	}
	if prof.SampleCount() == 0 {
		t.Fatal("profiler took no samples")
	}
	var buf bytes.Buffer
	if err := forensics.WriteFolded(&buf, prof, forensics.NewSymbolizer(hard)); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatalf("no folded output:\n%s", buf.String())
	}
	var sum uint64
	seen := make(map[string]bool)
	for _, line := range lines {
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed folded line %q", line)
		}
		stack, count := line[:i], line[i+1:]
		n, err := strconv.ParseUint(count, 10, 64)
		if err != nil {
			t.Fatalf("folded count %q: %v", count, err)
		}
		sum += n
		if seen[stack] {
			t.Errorf("duplicate folded stack %q (should be merged)", stack)
		}
		seen[stack] = true
		frames := strings.Split(stack, ";")
		if len(frames) == 0 || frames[0] == "" {
			t.Fatalf("empty frames in %q", line)
		}
	}
	if sum != prof.TotalCycles() {
		t.Errorf("folded cycles sum %d != attributed total %d", sum, prof.TotalCycles())
	}
}

// TestChromeTraceParses validates the trace-event export: well-formed
// JSON with instant events from the tracer ring and duration events from
// the profiler timeline.
func TestChromeTraceParses(t *testing.T) {
	bin := buildOOBProgram(t)
	hard, _, err := redfat.Harden(bin, redfat.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	tracer := telemetry.NewTracer(256)
	prof := &vm.GuestProfiler{Interval: 16}
	if _, _, err := rtlib.RunHardened(hard, rtlib.RunConfig{
		Input: []uint64{2}, Abort: true, EventTrace: tracer, Profiler: prof,
	}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := forensics.WriteChromeTrace(&buf, tracer, prof, forensics.NewSymbolizer(hard)); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Phase string  `json:"ph"`
			TS    float64 `json:"ts"`
			TID   int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace JSON does not parse: %v\n%s", err, buf.String())
	}
	var instants, spans int
	for _, ev := range doc.TraceEvents {
		switch ev.Phase {
		case "i":
			instants++
		case "X":
			spans++
		}
	}
	if instants == 0 || spans == 0 {
		t.Errorf("trace has %d instant and %d span events, want both > 0",
			instants, spans)
	}
}
