package forensics

import (
	"encoding/json"
	"fmt"
	"io"

	"redfat/internal/heap"
	"redfat/internal/redzone"
	"redfat/internal/vm"
)

// ObjectReport is the forensic view of the heap object owning a faulting
// address: where the access landed relative to it, and the symbolized
// allocation/free history.
type ObjectReport struct {
	Ptr      uint64 `json:"ptr"`                 // object start address
	Size     uint64 `json:"size"`                // requested allocation size
	SlotSize uint64 `json:"slot_size,omitempty"` // low-fat slot size (0 for baseline heap)
	Offset   int64  `json:"offset"`              // fault addr − Ptr

	// Relation classifies the fault relative to the object: "inside",
	// "past-end" (offset ≥ size), "before" (underflow into the leading
	// redzone), or "freed" (the object was dead at access time).
	Relation string `json:"relation"`
	Freed    bool   `json:"freed,omitempty"`

	AllocPC    Frame   `json:"alloc_pc"`
	AllocStack []Frame `json:"alloc_stack,omitempty"`
	FreePC     *Frame  `json:"free_pc,omitempty"`
	FreeStack  []Frame `json:"free_stack,omitempty"`
}

// ErrorReport is one fully resolved memory error: the raw trap state of
// vm.MemError, symbolized and attributed to its owning heap object.
type ErrorReport struct {
	Kind      string  `json:"kind"`
	Addr      uint64  `json:"addr"`
	PC        uint64  `json:"pc"`
	PCFrame   Frame   `json:"pc_frame"`
	Site      uint32  `json:"site,omitempty"`
	Component string  `json:"component,omitempty"` // "lowfat" or "redzone"
	Note      string  `json:"note,omitempty"`
	Stack     []Frame `json:"stack,omitempty"` // guest stack at the fault

	Object *ObjectReport `json:"object,omitempty"`
}

// Reporter builds ErrorReports by combining a symbolizer with whichever
// allocator served the run. Any of the fields may be nil; resolution
// degrades gracefully (no symbols → raw addresses, no allocator →
// no object attribution).
type Reporter struct {
	Sym  *Symbolizer
	RZ   *redzone.Heap // hardened runs
	Base *heap.Heap    // baseline / memcheck runs
}

// NewReporter builds a reporter over the allocator handle a finished VM
// parked in vm.VM.Allocator. Unrecognized allocator types simply skip
// object attribution. (The memcheck wrapper is unwrapped by its caller,
// which hands in the underlying baseline heap.)
func NewReporter(sym *Symbolizer, alloc any) *Reporter {
	r := &Reporter{Sym: sym}
	switch h := alloc.(type) {
	case *redzone.Heap:
		r.RZ = h
	case *heap.Heap:
		r.Base = h
	}
	return r
}

// Report resolves one trapped error into a full forensic report.
func (r *Reporter) Report(e *vm.MemError) *ErrorReport {
	rep := &ErrorReport{
		Kind:      e.Kind.String(),
		Addr:      e.Addr,
		PC:        e.PC,
		PCFrame:   r.Sym.Frame(e.PC),
		Site:      e.Site,
		Component: e.Component,
		Note:      e.Note,
		Stack:     r.Sym.Frames(e.Stack),
	}
	rep.Object = r.objectFor(e)
	return rep
}

// ReportAll resolves every trapped error of a finished run.
func (r *Reporter) ReportAll(errs []vm.MemError) []*ErrorReport {
	if len(errs) == 0 {
		return nil
	}
	out := make([]*ErrorReport, len(errs))
	for i := range errs {
		out[i] = r.Report(&errs[i])
	}
	return out
}

// objectFor attributes the faulting address to its owning heap object.
func (r *Reporter) objectFor(e *vm.MemError) *ObjectReport {
	switch {
	case r.RZ != nil:
		info, ok := r.RZ.ObjectAt(e.Addr)
		if !ok {
			return nil
		}
		size := info.Size
		if info.HasRecord {
			size = info.Record.Size
		}
		o := &ObjectReport{
			Ptr:      info.Ptr,
			Size:     size,
			SlotSize: info.SlotSize,
			Offset:   int64(e.Addr) - int64(info.Ptr),
			Freed:    info.Freed,
		}
		r.fillHistory(o, info.Record, info.HasRecord)
		o.Relation = relation(o, e.Kind)
		return o
	case r.Base != nil:
		info, ok := r.Base.ObjectAt(e.Addr)
		if !ok {
			return nil
		}
		size := info.ChunkSize
		if info.HasRecord {
			size = info.Record.Size
		}
		o := &ObjectReport{
			Ptr:    info.Ptr,
			Size:   size,
			Offset: int64(e.Addr) - int64(info.Ptr),
			Freed:  info.Freed,
		}
		r.fillHistory(o, heapRecord(info.Record), info.HasRecord)
		o.Relation = relation(o, e.Kind)
		return o
	}
	return nil
}

// heapRecord converts the baseline heap's record to the redzone shape so
// fillHistory has a single input type. The two records are structurally
// identical by design; this is the seam where that is enforced.
func heapRecord(rec heap.AllocRecord) redzone.AllocRecord {
	return redzone.AllocRecord{
		PC: rec.PC, Size: rec.Size, Stack: rec.Stack,
		FreePC: rec.FreePC, FreeStack: rec.FreeStack,
	}
}

func (r *Reporter) fillHistory(o *ObjectReport, rec redzone.AllocRecord, ok bool) {
	if !ok {
		return
	}
	o.AllocPC = r.Sym.Frame(rec.PC)
	o.AllocStack = r.Sym.Frames(rec.Stack)
	if rec.FreePC != 0 {
		f := r.Sym.Frame(rec.FreePC)
		o.FreePC = &f
		o.FreeStack = r.Sym.Frames(rec.FreeStack)
	}
}

func relation(o *ObjectReport, kind vm.MemErrorKind) string {
	switch {
	case kind == vm.ErrUseAfterFree || o.Freed:
		return "freed"
	case o.Offset < 0:
		return "before"
	case o.Offset >= int64(o.Size):
		return "past-end"
	}
	return "inside"
}

// --- Rendering ---

const banner = "==redfat=="

// WriteText renders the report in the ASan-inspired text format:
//
//	==redfat== ERROR: out-of-bounds write at 0x8000000130 (pc store_kernel+0x24, site 3, lowfat)
//	==redfat==   guest stack:
//	==redfat==     #0 store_kernel+0x24
//	==redfat==     #1 main+0x10
//	==redfat== 0x8000000130 is 8 bytes past the end of a 16-byte object at 0x8000000110
//	==redfat==   allocated at alloc_buf+0x8:
//	==redfat==     #0 alloc_buf+0x8
func (rep *ErrorReport) WriteText(w io.Writer) error {
	bw := &errWriter{w: w}
	bw.printf("%s ERROR: %s at %#x (pc %s", banner, rep.Kind, rep.Addr, rep.PCFrame)
	if rep.Site != 0 {
		bw.printf(", site %d", rep.Site)
	}
	if rep.Component != "" {
		bw.printf(", %s", rep.Component)
	}
	bw.printf(")\n")
	if rep.Note != "" {
		bw.printf("%s   note: %s\n", banner, rep.Note)
	}
	if len(rep.Stack) > 0 {
		bw.printf("%s   guest stack:\n", banner)
		bw.frames(rep.Stack)
	}
	if o := rep.Object; o != nil {
		bw.printf("%s %#x is %s\n", banner, rep.Addr, o.describe())
		bw.history("allocated", o.AllocPC, o.AllocStack)
		if o.FreePC != nil {
			bw.history("freed", *o.FreePC, o.FreeStack)
		}
	}
	return bw.err
}

// describe renders the address-vs-object relation as prose.
func (o *ObjectReport) describe() string {
	obj := fmt.Sprintf("a %d-byte object at %#x", o.Size, o.Ptr)
	if o.Freed {
		obj = fmt.Sprintf("a freed %d-byte object at %#x", o.Size, o.Ptr)
	}
	switch o.Relation {
	case "before":
		return fmt.Sprintf("%d bytes before %s", -o.Offset, obj)
	case "past-end":
		return fmt.Sprintf("%d bytes past the end of %s", o.Offset-int64(o.Size), obj)
	case "freed":
		if o.Offset >= 0 && o.Offset < int64(o.Size) {
			return fmt.Sprintf("%d bytes into %s", o.Offset, obj)
		}
		return fmt.Sprintf("at offset %d of %s", o.Offset, obj)
	}
	return fmt.Sprintf("%d bytes into %s", o.Offset, obj)
}

// WriteJSON renders the report as indented, key-stable JSON.
func (rep *ErrorReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// errWriter accumulates the first write error so the render path stays
// linear.
type errWriter struct {
	w   io.Writer
	err error
}

func (b *errWriter) printf(format string, args ...any) {
	if b.err != nil {
		return
	}
	_, b.err = fmt.Fprintf(b.w, format, args...)
}

func (b *errWriter) frames(frames []Frame) {
	for i, f := range frames {
		b.printf("%s     #%d %s (%#x)\n", banner, i, f, f.PC)
	}
}

// history renders an "allocated at" / "freed at" block; the trailing
// colon only appears when a backtrace follows.
func (b *errWriter) history(verb string, pc Frame, stack []Frame) {
	if len(stack) == 0 {
		b.printf("%s   %s at %s\n", banner, verb, pc)
		return
	}
	b.printf("%s   %s at %s:\n", banner, verb, pc)
	b.frames(stack)
}
