package forensics

import (
	"encoding/json"
	"io"

	"redfat/internal/telemetry"
	"redfat/internal/vm"
)

// Chrome trace-event export: the telemetry ring tracer's events plus the
// profiler's raw sample timeline, serialized in the trace-event JSON
// format that chrome://tracing and Perfetto load directly. Guest cycles
// stand in for microseconds — the importers only require a monotonic
// timebase, and cycles keep the view deterministic.

// traceEvent is one record of the trace-event format. Only the fields
// the viewers use are emitted.
type traceEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TS    uint64         `json:"ts"`            // guest cycles as µs
	Dur   uint64         `json:"dur,omitempty"` // for "X" complete events
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"` // instant-event scope
	Args  map[string]any `json:"args,omitempty"`
}

// traceFile is the top-level trace-event container.
type traceFile struct {
	TraceEvents []traceEvent `json:"traceEvents"`
	Meta        string       `json:"otherData,omitempty"`
}

// Trace-event virtual thread ids: ring-tracer events on one row, profiler
// samples on another, so the viewer separates them.
const (
	traceTIDEvents  = 1
	traceTIDSamples = 2
)

// WriteChromeTrace serializes the tracer's retained events and the
// profiler's sample timeline (either may be nil) as trace-event JSON.
func WriteChromeTrace(w io.Writer, tr *telemetry.Tracer, p *vm.GuestProfiler, sym *Symbolizer) error {
	out := traceFile{TraceEvents: []traceEvent{}, Meta: "redfat guest trace (ts = guest cycles)"}

	for _, e := range tr.Events() {
		ev := traceEvent{
			Name:  e.Kind.String(),
			Cat:   "event",
			Phase: "i",
			TS:    e.Cycles,
			PID:   1,
			TID:   traceTIDEvents,
			Scope: "t",
			Args: map[string]any{
				"seq": e.Seq,
				"pc":  sym.Format(e.PC),
			},
		}
		if e.Addr != 0 {
			ev.Args["addr"] = e.Addr
		}
		if e.Aux != 0 {
			ev.Args["aux"] = e.Aux
		}
		out.TraceEvents = append(out.TraceEvents, ev)
	}

	for _, s := range p.Timeline() {
		start := s.Cycles - s.Weight
		out.TraceEvents = append(out.TraceEvents, traceEvent{
			Name:  sym.Format(s.PC),
			Cat:   "sample",
			Phase: "X",
			TS:    start,
			Dur:   s.Weight,
			PID:   1,
			TID:   traceTIDSamples,
			Args:  map[string]any{"pc": s.PC},
		})
	}

	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
