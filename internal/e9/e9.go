// Package e9 implements trampoline-based static binary rewriting in the
// style of E9Patch (paper §2.2).
//
// The rewriter preserves the original code layout: at each instrumentation
// point, the instruction is overwritten with a jump that redirects control
// flow to a trampoline placed at an otherwise-unused virtual address. The
// trampoline executes (1) the instrumentation payload, (2) the displaced
// instruction(s), and (3) a jump back to the next original instruction.
// No control-flow recovery is required for correctness.
//
// Patch tactics, chosen per site by encoded instruction length (RF64's
// jmp rel32 is 6 bytes, jmp rel8 is 3 and TRAP is 1):
//
//	T1 — the instruction is ≥6 bytes: overwrite with jmp rel32.
//	T2 — steal bytes from following instructions: overwrite up to 6 bytes
//	     spanning several instructions (all displaced into the trampoline),
//	     provided no stolen instruction is a potential jump target. This
//	     models E9Patch's instruction-punning tactics, which succeed for
//	     the overwhelming majority of short instructions.
//	T3 — last resort: a 1-byte TRAP patch dispatched through the binary's
//	     patch table, with a large per-execution cost (models signal- or
//	     punning-constrained dispatch).
//
// Stolen tail bytes are filled with TRAP so that a missed indirect jump
// into the middle of a patch surfaces loudly instead of corrupting state.
package e9

import (
	"fmt"
	"math"

	"redfat/internal/cfg"
	"redfat/internal/isa"
	"redfat/internal/relf"
	"redfat/internal/telemetry"
)

// Tactic identifies which patch tactic a site used.
type Tactic uint8

// Patch tactics.
const (
	TacticNone Tactic = iota
	TacticT1          // direct jmp rel32
	TacticT2          // byte stealing across instructions
	TacticT3          // 1-byte trap
)

// String names the tactic.
func (t Tactic) String() string {
	switch t {
	case TacticT1:
		return "T1(jmp32)"
	case TacticT2:
		return "T2(steal)"
	case TacticT3:
		return "T3(trap)"
	}
	return "none"
}

const (
	jmp32Len = 6 // encoded length of jmp rel32
)

// Stats accumulates rewriting statistics.
type Stats struct {
	Patched    int
	T1, T2, T3 int
	TrampBytes int
	Stolen     int // instructions displaced beyond the patch site itself
}

// Publish exports the rewriting statistics as counters in reg (no-op when
// reg is nil), so tooling reads patch-tactic mix and trampoline footprint
// through the same interface as the runtime metrics.
func (s Stats) Publish(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	reg.Counter("e9.patched").Add(uint64(s.Patched))
	reg.Counter("e9.tactic.t1").Add(uint64(s.T1))
	reg.Counter("e9.tactic.t2").Add(uint64(s.T2))
	reg.Counter("e9.tactic.t3").Add(uint64(s.T3))
	reg.Counter("e9.tramp.bytes").Add(uint64(s.TrampBytes))
	reg.Counter("e9.stolen").Add(uint64(s.Stolen))
}

// Rewriter rewrites one binary. Create with New, call Instrument for each
// patch point (in any order), then Finalize.
type Rewriter struct {
	Prog *cfg.Program
	bin  *relf.Binary
	text *relf.Section

	trampBase uint64
	tramp     []byte
	patches   map[uint64]uint64 // T3 trap address → trampoline
	origins   map[uint64]uint64 // trampoline → patched origin (all tactics)
	patched   map[int]Tactic    // instruction index → tactic
	stolen    map[int]bool      // instruction indices displaced by stealing
	reserved  map[uint64]bool   // future patch points stealing must avoid
	stats     Stats
}

// New prepares a rewriter over a clone of bin (the original is untouched,
// mirroring the prog.orig → prog.hard workflow of paper Fig. 5).
func New(bin *relf.Binary) (*Rewriter, error) {
	clone := bin.Clone()
	prog, err := cfg.Disassemble(clone)
	if err != nil {
		return nil, err
	}
	text := clone.Text()

	// Place the trampoline region in a hole above all sections, within
	// rel32 (±2 GB) reach of the text section.
	base := (clone.MaxAddr() + 0xFFFF) &^ uint64(0xFFFF)
	base += 1 << 20
	if base-text.Addr > math.MaxInt32/2 {
		return nil, fmt.Errorf("e9: no trampoline space within rel32 reach")
	}
	return &Rewriter{
		Prog:      prog,
		bin:       clone,
		text:      text,
		trampBase: base,
		patches:   make(map[uint64]uint64),
		origins:   make(map[uint64]uint64),
		patched:   make(map[int]Tactic),
		stolen:    make(map[int]bool),
		reserved:  make(map[uint64]bool),
	}, nil
}

// Binary returns the working clone being rewritten. Callers may add
// imports (e.g. the check routine) before Finalize.
func (rw *Rewriter) Binary() *relf.Binary { return rw.bin }

// Reserve marks addresses as future patch points so that byte stealing
// never swallows them.
func (rw *Rewriter) Reserve(addrs ...uint64) {
	for _, a := range addrs {
		rw.reserved[a] = true
	}
}

// Stats returns the statistics so far.
func (rw *Rewriter) Stats() Stats { return rw.stats }

// TacticAt returns the tactic used for the instruction at index i.
func (rw *Rewriter) TacticAt(i int) Tactic { return rw.patched[i] }

// textOffset converts a virtual address to an offset in the text data.
func (rw *Rewriter) textOffset(addr uint64) int { return int(addr - rw.text.Addr) }

func encodeTo(buf []byte, in isa.Inst) ([]byte, error) {
	return isa.Encode(buf, &in)
}

// relocate adjusts a displaced instruction for execution at newAddr. It
// returns the (possibly re-encoded) instruction with PC-relative fields
// fixed so the instruction's meaning is unchanged.
func relocate(di cfg.DecodedInst, newNext int64) (isa.Inst, error) {
	in := di.Inst
	oldNext := int64(di.Addr) + int64(in.Len)
	switch in.Form {
	case isa.FRel8, isa.FRel32:
		target := oldNext + in.Imm
		in.Form = isa.FRel32 // widen: trampolines are far from home
		in.Imm = target - newNext
		if in.Imm < math.MinInt32 || in.Imm > math.MaxInt32 {
			return in, fmt.Errorf("e9: relocated branch out of rel32 range")
		}
		return in, nil
	}
	if in.HasMem() && in.Mem.Base == isa.RIP {
		target := oldNext + int64(in.Mem.Disp)
		nd := target - newNext
		if nd < math.MinInt32 || nd > math.MaxInt32 {
			return in, fmt.Errorf("e9: relocated rip-relative operand out of range")
		}
		in.Mem.Disp = int32(nd)
	}
	return in, nil
}

// Instrument patches the instruction at index i so that, at runtime, the
// payload instructions execute (with all guest state exactly as at the
// patch point), then the displaced instruction(s), then control returns
// to the original successor.
func (rw *Rewriter) Instrument(i int, payload []isa.Inst) error {
	if _, dup := rw.patched[i]; dup {
		return fmt.Errorf("e9: instruction %d already patched", i)
	}
	if rw.stolen[i] {
		return fmt.Errorf("e9: instruction %d was displaced by an earlier patch", i)
	}
	di := rw.Prog.Insts[i]
	instLen := int(di.Inst.Len)

	// Choose tactic.
	tactic := TacticT3
	span := instLen       // bytes overwritten at the patch site
	displaced := []int{i} // instruction indices displaced into the trampoline
	switch {
	case instLen >= jmp32Len:
		tactic = TacticT1
	default:
		// T2: try to steal following instructions until ≥6 bytes.
		span = instLen
		ok := true
		for j := i + 1; span < jmp32Len; j++ {
			if j >= len(rw.Prog.Insts) {
				ok = false
				break
			}
			nd := rw.Prog.Insts[j]
			if rw.Prog.Leaders[nd.Addr] || rw.reserved[nd.Addr] ||
				rw.stolen[j] || rw.patched[j] != TacticNone {
				ok = false
				break
			}
			displaced = append(displaced, j)
			span += int(nd.Inst.Len)
		}
		if ok {
			tactic = TacticT2
		} else {
			tactic = TacticT3
			span = instLen
			displaced = displaced[:1]
		}
	}

	// Build the trampoline.
	trampAddr := rw.trampBase + uint64(len(rw.tramp))
	rw.origins[trampAddr] = di.Addr
	buf := rw.tramp
	var err error
	for _, p := range payload {
		if buf, err = encodeTo(buf, p); err != nil {
			return fmt.Errorf("e9: payload: %w", err)
		}
	}
	for _, j := range displaced {
		d := rw.Prog.Insts[j]
		// The relocated instruction's "next" is wherever it lands; we
		// must encode to know the length, so iterate: lengths in RF64
		// depend only on the instruction content, and widening rel8→rel32
		// is the only length change, done inside relocate.
		probe, err := relocate(d, 0)
		if err != nil {
			return err
		}
		plen, err := isa.EncodeLen(&probe)
		if err != nil {
			return err
		}
		newNext := int64(rw.trampBase) + int64(len(buf)) + int64(plen)
		fixed, err := relocate(d, newNext)
		if err != nil {
			return err
		}
		if buf, err = encodeTo(buf, fixed); err != nil {
			return fmt.Errorf("e9: displaced %s: %w", d.Inst.String(), err)
		}
	}
	// Jump back to the first non-displaced instruction.
	resume := int64(di.Addr) + int64(span)
	jback := isa.Inst{Op: isa.JMP, Form: isa.FRel32}
	jbackLen, _ := isa.EncodeLen(&isa.Inst{Op: isa.JMP, Form: isa.FRel32, Imm: 0})
	jback.Imm = resume - (int64(rw.trampBase) + int64(len(buf)) + int64(jbackLen))
	if buf, err = encodeTo(buf, jback); err != nil {
		return err
	}

	// Patch the original site.
	off := rw.textOffset(di.Addr)
	switch tactic {
	case TacticT1, TacticT2:
		var jmp []byte
		disp := int64(trampAddr) - (int64(di.Addr) + jmp32Len)
		if disp < math.MinInt32 || disp > math.MaxInt32 {
			return fmt.Errorf("e9: trampoline out of rel32 reach")
		}
		jmp, err = encodeTo(nil, isa.Inst{Op: isa.JMP, Form: isa.FRel32, Imm: disp})
		if err != nil {
			return err
		}
		copy(rw.text.Data[off:], jmp)
		for k := len(jmp); k < span; k++ {
			rw.text.Data[off+k] = byte(isa.TRAP)
		}
	case TacticT3:
		rw.text.Data[off] = byte(isa.TRAP)
		rw.patches[di.Addr] = trampAddr
	}

	rw.tramp = buf
	rw.patched[i] = tactic
	for _, j := range displaced[1:] {
		rw.stolen[j] = true
	}
	rw.stats.Patched++
	rw.stats.Stolen += len(displaced) - 1
	switch tactic {
	case TacticT1:
		rw.stats.T1++
	case TacticT2:
		rw.stats.T2++
	case TacticT3:
		rw.stats.T3++
	}
	return nil
}

// Finalize appends the trampoline section, the trap patch table (if any
// T3 patches were needed) and the forensic trampoline-origin table, and
// returns the rewritten binary.
func (rw *Rewriter) Finalize() (*relf.Binary, error) {
	rw.stats.TrampBytes = len(rw.tramp)
	if len(rw.tramp) > 0 {
		rw.bin.AddSection(&relf.Section{
			Name: ".tramp", Kind: relf.SecTramp,
			Addr: rw.trampBase, Size: uint64(len(rw.tramp)),
			Data: rw.tramp, Exec: true,
		})
	}
	if len(rw.patches) > 0 {
		rw.bin.AddSection(&relf.Section{
			Name: relf.PatchTableSection, Kind: relf.SecMeta,
			Data: relf.EncodePatchTable(rw.patches),
		})
	}
	if len(rw.origins) > 0 {
		rw.bin.AddSection(&relf.Section{
			Name: relf.OriginTableSection, Kind: relf.SecMeta,
			Data: relf.EncodePatchTable(rw.origins),
		})
	}
	if err := rw.bin.CheckOverlaps(); err != nil {
		return nil, err
	}
	return rw.bin, nil
}
