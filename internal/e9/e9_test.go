package e9_test

import (
	"testing"

	"redfat/internal/asm"
	"redfat/internal/e9"
	"redfat/internal/heap"
	"redfat/internal/isa"
	"redfat/internal/mem"
	"redfat/internal/relf"
	"redfat/internal/rtlib"
	"redfat/internal/vm"
)

// buildAndRun assembles a program, applies patches via fn, and runs both
// the original and the rewritten binary, returning the two exit codes.
func buildAndRun(t *testing.T, build func(b *asm.Builder),
	patch func(rw *e9.Rewriter) error, input ...uint64) (orig, patched uint64, rw *e9.Rewriter) {
	t.Helper()
	b := asm.NewBuilder(asm.Options{})
	build(b)
	bin, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rw, err = e9.New(bin)
	if err != nil {
		t.Fatal(err)
	}
	if err := patch(rw); err != nil {
		t.Fatal(err)
	}
	hard, err := rw.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	run := func(bin *relf.Binary) uint64 {
		m := mem.New()
		v := vm.New(m)
		v.Input = input
		v.MaxCycles = 10_000_000
		if err := v.Load(bin, rtlib.LibC(heap.New(m), m)); err != nil {
			t.Fatal(err)
		}
		if err := v.Run(); err != nil {
			t.Fatal(err)
		}
		return v.ExitCode
	}
	return run(bin), run(hard), rw
}

// markerPayload builds a payload that the test can observe: an RTCALL to
// a counting host function is overkill, so we use a NOP payload — the
// semantics test is that behaviour is unchanged.
var nopPayload = []isa.Inst{{Op: isa.NOP, Form: isa.FNone}}

func TestPatchPreservesSemantics(t *testing.T) {
	// Patch every instruction of a small program with a NOP payload; the
	// result must behave identically.
	b := asm.NewBuilder(asm.Options{})
	b.Func("main")
	b.MovRI(isa.RAX, 0)
	b.MovRI(isa.RCX, 1)
	b.Label("loop")
	b.AluRR(isa.ADD, isa.RAX, isa.RCX)
	b.AluRI(isa.ADD, isa.RCX, 1)
	b.AluRI(isa.CMP, isa.RCX, 50)
	b.Jcc(isa.JLE, "loop")
	b.Ret()
	bin, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for target := 0; target < 7; target++ {
		rw, err := e9.New(bin)
		if err != nil {
			t.Fatal(err)
		}
		if err := rw.Instrument(target, nopPayload); err != nil {
			t.Fatalf("patching inst %d: %v", target, err)
		}
		hard, err := rw.Finalize()
		if err != nil {
			t.Fatal(err)
		}
		m := mem.New()
		v := vm.New(m)
		if err := v.Load(hard, rtlib.LibC(heap.New(m), m)); err != nil {
			t.Fatal(err)
		}
		if err := v.Run(); err != nil {
			t.Fatalf("patched inst %d: %v", target, err)
		}
		if v.ExitCode != 1275 { // 1+2+...+50
			t.Errorf("patched inst %d: exit = %d, want 1275", target, v.ExitCode)
		}
	}
}

func TestTacticSelection(t *testing.T) {
	b := asm.NewBuilder(asm.Options{})
	b.Func("main")
	// A 6+ byte instruction (movabs = long): T1.
	b.MovRI(isa.RAX, 1<<40)
	// Short instructions in a straight line: T2 via byte stealing.
	b.MovRR(isa.RBX, isa.RAX)
	b.MovRR(isa.RCX, isa.RBX)
	b.Ret()
	bin, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rw, err := e9.New(bin)
	if err != nil {
		t.Fatal(err)
	}
	if err := rw.Instrument(0, nopPayload); err != nil {
		t.Fatal(err)
	}
	if got := rw.TacticAt(0); got != e9.TacticT1 {
		t.Errorf("movabs patched with %v, want T1", got)
	}
	if err := rw.Instrument(1, nopPayload); err != nil {
		t.Fatal(err)
	}
	if got := rw.TacticAt(1); got != e9.TacticT2 {
		t.Errorf("short inst patched with %v, want T2", got)
	}
	st := rw.Stats()
	if st.T1 != 1 || st.T2 != 1 || st.Stolen == 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestT3FallbackAtBlockBoundary(t *testing.T) {
	// A short instruction immediately before a jump target cannot steal
	// bytes (the next instruction is a leader) → T3 trap patch.
	b := asm.NewBuilder(asm.Options{})
	b.Func("main")
	b.MovRI(isa.RAX, 5)
	b.Label("back")
	b.AluRI(isa.SUB, isa.RAX, 1) // short; followed by...
	b.MovRR(isa.RCX, isa.RAX)    // ...a branch target (leader)? no — "back" is above.
	b.AluRI(isa.CMP, isa.RAX, 0)
	b.Jcc(isa.JG, "back")
	b.Ret()
	bin, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rw, err := e9.New(bin)
	if err != nil {
		t.Fatal(err)
	}
	// Instrument the SUB at index 1 ("back" label): its successors are
	// plain instructions, so stealing works — expect T2 and working
	// semantics even though the patched instruction is a jump target.
	if err := rw.Instrument(1, nopPayload); err != nil {
		t.Fatal(err)
	}
	hard, err := rw.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New()
	v := vm.New(m)
	if err := v.Load(hard, rtlib.LibC(heap.New(m), m)); err != nil {
		t.Fatal(err)
	}
	if err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if v.ExitCode != 0 {
		t.Errorf("exit = %d", v.ExitCode)
	}
}

func TestT3TrapPatch(t *testing.T) {
	// Force T3 by reserving the following instruction (a future patch
	// point may not be stolen).
	b := asm.NewBuilder(asm.Options{})
	b.Func("main")
	b.MovRI(isa.RAX, 7)       // 0 (imm8 form: short)
	b.MovRR(isa.RBX, isa.RAX) // 1 (reserved)
	b.MovRR(isa.RAX, isa.RBX) // 2
	b.Ret()
	bin, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rw, err := e9.New(bin)
	if err != nil {
		t.Fatal(err)
	}
	prog := rw.Prog
	rw.Reserve(prog.Insts[1].Addr, prog.Insts[2].Addr)
	if err := rw.Instrument(0, nopPayload); err != nil {
		t.Fatal(err)
	}
	if got := rw.TacticAt(0); got != e9.TacticT3 {
		t.Fatalf("tactic = %v, want T3", got)
	}
	hard, err := rw.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if hard.Section(relf.PatchTableSection) == nil {
		t.Fatal("no patch table emitted for a T3 patch")
	}
	m := mem.New()
	v := vm.New(m)
	if err := v.Load(hard, rtlib.LibC(heap.New(m), m)); err != nil {
		t.Fatal(err)
	}
	if err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if v.ExitCode != 7 {
		t.Errorf("exit = %d, want 7", v.ExitCode)
	}
}

func TestPatchedBranchRelocation(t *testing.T) {
	// Patch a conditional branch itself: its displacement must be
	// relocated so the taken path still reaches the original target.
	orig, patched, _ := buildAndRun(t,
		func(b *asm.Builder) {
			b.Func("main")
			b.MovRI(isa.RAX, 0)
			b.MovRI(isa.RCX, 3)
			b.Label("loop")
			b.AluRR(isa.ADD, isa.RAX, isa.RCX)
			b.AluRI(isa.SUB, isa.RCX, 1)
			b.AluRI(isa.CMP, isa.RCX, 0)
			b.Jcc(isa.JG, "loop") // index 5: the patched branch
			b.Ret()
		},
		func(rw *e9.Rewriter) error {
			return rw.Instrument(5, nopPayload)
		})
	if orig != patched {
		t.Errorf("branch relocation broke semantics: %d vs %d", orig, patched)
	}
}

func TestPatchedCallRelocation(t *testing.T) {
	orig, patched, _ := buildAndRun(t,
		func(b *asm.Builder) {
			b.Func("main")
			b.Call("f") // index 0: patched call
			b.Ret()
			b.Func("f")
			b.MovRI(isa.RAX, 99)
			b.Ret()
		},
		func(rw *e9.Rewriter) error {
			return rw.Instrument(0, nopPayload)
		})
	if orig != 99 || patched != 99 {
		t.Errorf("call relocation broke semantics: %d vs %d", orig, patched)
	}
}

func TestDoublePatchRejected(t *testing.T) {
	b := asm.NewBuilder(asm.Options{})
	b.Func("main")
	b.MovRI(isa.RAX, 1)
	b.Ret()
	bin, _ := b.Build()
	rw, err := e9.New(bin)
	if err != nil {
		t.Fatal(err)
	}
	if err := rw.Instrument(0, nopPayload); err != nil {
		t.Fatal(err)
	}
	if err := rw.Instrument(0, nopPayload); err == nil {
		t.Error("double patch accepted")
	}
}

func TestStolenInstructionNotPatchable(t *testing.T) {
	b := asm.NewBuilder(asm.Options{})
	b.Func("main")
	b.MovRR(isa.RAX, isa.RBX) // 0: short → steals 1
	b.MovRR(isa.RCX, isa.RAX) // 1: stolen
	b.MovRI(isa.RAX, 0)
	b.Ret()
	bin, _ := b.Build()
	rw, err := e9.New(bin)
	if err != nil {
		t.Fatal(err)
	}
	if err := rw.Instrument(0, nopPayload); err != nil {
		t.Fatal(err)
	}
	if err := rw.Instrument(1, nopPayload); err == nil {
		t.Error("patching a stolen instruction accepted")
	}
}

func TestOriginalUntouched(t *testing.T) {
	b := asm.NewBuilder(asm.Options{})
	b.Func("main")
	b.MovRI(isa.RAX, 1)
	b.Ret()
	bin, _ := b.Build()
	before := append([]byte(nil), bin.Text().Data...)
	rw, err := e9.New(bin)
	if err != nil {
		t.Fatal(err)
	}
	if err := rw.Instrument(0, nopPayload); err != nil {
		t.Fatal(err)
	}
	if _, err := rw.Finalize(); err != nil {
		t.Fatal(err)
	}
	if string(bin.Text().Data) != string(before) {
		t.Error("rewriter modified the input binary")
	}
}
