// Package fuzz implements coverage-guided input generation for the
// profiling phase — the paper's observation (§5) that "automated
// coverage-guided testing tools, such as AFL over binaries [E9AFL], can
// be used to boost coverage" of the allow-list.
//
// The fuzzer drives the *profiling* binary (paper Fig. 5 step 1): the
// per-site execution counters that the profiling runtime maintains double
// as the coverage map, exactly as E9AFL instruments coverage and RedFat
// instruments checks with the same rewriting machinery. Inputs that light
// up new instrumentation sites join the corpus and are mutated further.
package fuzz

import (
	"math/rand"

	"redfat/internal/profile"
	"redfat/internal/relf"
	"redfat/internal/rtlib"
)

// Options configures a fuzzing campaign.
type Options struct {
	// MaxRuns bounds the number of executions (default 256).
	MaxRuns int
	// Seed makes the campaign deterministic (default 1).
	Seed int64
	// MaxCycles bounds each execution (runaway inputs are discarded).
	MaxCycles uint64
}

func (o *Options) defaults() {
	if o.MaxRuns == 0 {
		o.MaxRuns = 256
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.MaxCycles == 0 {
		o.MaxCycles = 200_000_000
	}
}

// Result reports a campaign.
type Result struct {
	// Profiler has accumulated every successful run; its AllowList is
	// the boosted phase-1 output.
	Profiler *profile.Profiler
	// Corpus holds the coverage-increasing inputs (seeds included).
	Corpus [][]uint64
	// SitesCovered is the number of distinct instrumentation sites
	// executed at least once across the campaign.
	SitesCovered int
	// SeedSites is the coverage from the seed inputs alone, for
	// measuring the boost.
	SeedSites int
	Runs      int
}

// Boost runs a coverage-guided campaign against a *profiling-mode* binary
// (built with redfat.Options.Profile). seeds must contain at least one
// input vector.
func Boost(profBin *relf.Binary, seeds [][]uint64, opt Options) (*Result, error) {
	opt.defaults()
	rng := rand.New(rand.NewSource(opt.Seed))
	res := &Result{Profiler: profile.NewProfiler()}
	covered := map[uint64]bool{} // site PC → seen

	execute := func(input []uint64) (newCov int, err error) {
		v, rt, err := rtlib.RunHardened(profBin, rtlib.RunConfig{
			Input: input, MaxCycles: opt.MaxCycles,
		})
		res.Runs++
		if err != nil {
			// Crashes and cycle blowups are uninteresting inputs, not
			// campaign failures (AFL keeps going too).
			_ = v
			return 0, nil
		}
		res.Profiler.Accumulate(rt)
		for i := range rt.Checks {
			if rt.Stats[i].Execs > 0 && !covered[rt.Checks[i].PC] {
				covered[rt.Checks[i].PC] = true
				newCov++
			}
		}
		return newCov, nil
	}

	for _, s := range seeds {
		if _, err := execute(s); err != nil {
			return nil, err
		}
		res.Corpus = append(res.Corpus, append([]uint64(nil), s...))
	}
	res.SeedSites = len(covered)

	for res.Runs < opt.MaxRuns && len(res.Corpus) > 0 {
		parent := res.Corpus[rng.Intn(len(res.Corpus))]
		child := mutate(rng, parent)
		n, err := execute(child)
		if err != nil {
			return nil, err
		}
		if n > 0 {
			res.Corpus = append(res.Corpus, child)
		}
	}
	res.SitesCovered = len(covered)
	return res, nil
}

// mutate applies one of several AFL-style mutations to an input vector.
func mutate(rng *rand.Rand, in []uint64) []uint64 {
	out := append([]uint64(nil), in...)
	if len(out) == 0 {
		return []uint64{rng.Uint64() & 0xFFFF}
	}
	switch rng.Intn(6) {
	case 0: // bit flip
		i := rng.Intn(len(out))
		out[i] ^= 1 << rng.Intn(64)
	case 1: // arithmetic nudge
		i := rng.Intn(len(out))
		out[i] += uint64(rng.Intn(65)) - 32
	case 2: // interesting value
		i := rng.Intn(len(out))
		vals := []uint64{0, 1, 0xFF, 0xFFFF, 1 << 31, ^uint64(0)}
		out[i] = vals[rng.Intn(len(vals))]
	case 3: // random byte-width value
		i := rng.Intn(len(out))
		out[i] = rng.Uint64() >> (8 * uint(rng.Intn(8)))
	case 4: // append a value
		out = append(out, rng.Uint64()&0xFFFF)
	case 5: // set-bit splice (turn on a flag bit — effective for the
		// kernel-gating inputs of the workload suite)
		i := rng.Intn(len(out))
		out[i] |= 1 << rng.Intn(16)
	}
	return out
}
