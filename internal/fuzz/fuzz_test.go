package fuzz_test

import (
	"testing"

	"redfat/internal/fuzz"
	"redfat/internal/redfat"
	"redfat/internal/rtlib"
	"redfat/internal/workload"
)

func TestBoostIncreasesCoverage(t *testing.T) {
	// h264ref's train input exercises only one of four kernels; the
	// fuzzer should discover flag bits that unlock more (the same effect
	// as running AFL during the profiling phase, paper §5).
	bm := workload.ByName("h264ref")
	cp := *bm
	cp.TrainScale = 200
	cp.RefScale = 1000
	bin, err := cp.Build()
	if err != nil {
		t.Fatal(err)
	}
	opt := redfat.Defaults()
	opt.Profile = true
	opt.Merge = false
	prof, _, err := redfat.Harden(bin, opt)
	if err != nil {
		t.Fatal(err)
	}

	res, err := fuzz.Boost(prof, [][]uint64{cp.TrainInput()}, fuzz.Options{
		MaxRuns: 150, MaxCycles: 20_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SitesCovered <= res.SeedSites {
		t.Errorf("fuzzing found no new sites: %d seed, %d total",
			res.SeedSites, res.SitesCovered)
	}
	if res.Runs > 150 {
		t.Errorf("budget exceeded: %d runs", res.Runs)
	}
	if len(res.Corpus) < 2 {
		t.Errorf("corpus did not grow: %d entries", len(res.Corpus))
	}

	// The boosted allow-list yields higher production coverage than the
	// seed-only allow-list.
	seedOnly, err := fuzz.Boost(prof, [][]uint64{cp.TrainInput()}, fuzz.Options{
		MaxRuns: 1, MaxCycles: 20_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	covWith := productionCoverage(t, &cp, res.Profiler.AllowList())
	covWithout := productionCoverage(t, &cp, seedOnly.Profiler.AllowList())
	if covWith <= covWithout {
		t.Errorf("boosted coverage %.2f not above seed-only %.2f", covWith, covWithout)
	}
}

func productionCoverage(t *testing.T, bm *workload.Benchmark, allow map[uint64]bool) float64 {
	t.Helper()
	bin, err := bm.Build()
	if err != nil {
		t.Fatal(err)
	}
	opt := redfat.Defaults()
	opt.AllowList = allow
	hard, _, err := redfat.Harden(bin, opt)
	if err != nil {
		t.Fatal(err)
	}
	_, rt, err := rtlib.RunHardened(hard, rtlib.RunConfig{Input: bm.RefInput()})
	if err != nil {
		t.Fatal(err)
	}
	return rt.Coverage()
}

func TestBoostDeterministic(t *testing.T) {
	bm := workload.ByName("mcf")
	cp := *bm
	cp.TrainScale = 100
	cp.RefScale = 500
	bin, err := cp.Build()
	if err != nil {
		t.Fatal(err)
	}
	opt := redfat.Defaults()
	opt.Profile = true
	prof, _, err := redfat.Harden(bin, opt)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := fuzz.Boost(prof, [][]uint64{cp.TrainInput()},
		fuzz.Options{MaxRuns: 40, Seed: 7, MaxCycles: 10_000_000})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := fuzz.Boost(prof, [][]uint64{cp.TrainInput()},
		fuzz.Options{MaxRuns: 40, Seed: 7, MaxCycles: 10_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if r1.SitesCovered != r2.SitesCovered || len(r1.Corpus) != len(r2.Corpus) {
		t.Errorf("campaign not deterministic: %+v vs %+v", r1, r2)
	}
}

func TestBoostEmptySeedsSafe(t *testing.T) {
	bm := workload.ByName("lbm")
	cp := *bm
	cp.RefScale = 500
	bin, err := cp.Build()
	if err != nil {
		t.Fatal(err)
	}
	opt := redfat.Defaults()
	opt.Profile = true
	prof, _, err := redfat.Harden(bin, opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fuzz.Boost(prof, nil, fuzz.Options{MaxRuns: 5, MaxCycles: 5_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != 0 {
		t.Errorf("runs without corpus: %d", res.Runs)
	}
}
