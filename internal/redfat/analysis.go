package redfat

import (
	"encoding/json"
	"io"
	"sort"

	"redfat/internal/cfg"
	"redfat/internal/isa"
	"redfat/internal/relf"
	"redfat/internal/rtlib"
)

// FuncStats is the per-function slice of an analysis report. The JSON
// encoding is struct-driven, so key order is stable across runs.
type FuncStats struct {
	Name     string `json:"name"`
	Addr     uint64 `json:"addr"`
	Insts    int    `json:"insts"`
	Blocks   int    `json:"blocks"`
	Edges    int    `json:"edges"`
	DomDepth int    `json:"dom_depth"`

	// DeadRegHist[k] counts instructions at which k of the trampoline's
	// four scratch slots could be served by provably dead registers
	// under the whole-CFG liveness solution (k = min(4, dead count)).
	DeadRegHist [5]int `json:"dead_reg_hist"`

	// Site-selection outcome for the function's memory operands, per
	// eliminating pass. ChecksEmitted counts operand-level checks
	// before merging (merging changes records, not protection).
	Operands      int `json:"operands"`
	SkippedReads  int `json:"skipped_reads"`
	ElimSyntactic int `json:"elim_syntactic"`
	ElimDominated int `json:"elim_dominated"`
	ChecksEmitted int `json:"checks_emitted"`
}

// Analysis is the machine-readable dump behind redfat -analysis-report:
// what the dataflow engine concluded about each function and where each
// elimination pass fired.
type Analysis struct {
	Functions []FuncStats `json:"functions"`
	Total     FuncStats   `json:"total"`
}

// WriteJSON writes the report as indented JSON with stable key order.
func (a *Analysis) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a)
}

// Analyze runs the dataflow engine over bin and reports per-function
// statistics under the site-selection policy of opt, without rewriting
// anything. Instructions outside every function symbol are attributed
// to a synthetic "(outside function symbols)" entry.
func Analyze(bin *relf.Binary, opt Options) (*Analysis, error) {
	prog, err := cfg.Disassemble(bin)
	if err != nil {
		return nil, err
	}
	df := cfg.NewDataflowOpts(prog, cfg.GraphOptions{NoIndirect: opt.NoIndirect})

	// Function ranges from the symbol table, sorted by address; each
	// covers up to the next function start.
	type fn struct {
		name string
		addr uint64
	}
	var fns []fn
	for _, sym := range bin.Symbols {
		if sym.Func {
			fns = append(fns, fn{sym.Name, sym.Addr})
		}
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].addr < fns[j].addr })

	stats := make([]FuncStats, len(fns)+1)
	stats[0] = FuncStats{Name: "(outside function symbols)"}
	for i, f := range fns {
		stats[i+1] = FuncStats{Name: f.name, Addr: f.addr}
	}
	fnOf := func(addr uint64) *FuncStats {
		// Last function starting at or before addr.
		k := sort.Search(len(fns), func(i int) bool { return fns[i].addr > addr })
		return &stats[k] // k==0 → outside every function
	}

	// Instruction-level: counts and the dead-register histogram.
	for i := range prog.Insts {
		fs := fnOf(prog.Insts[i].Addr)
		fs.Insts++
		k := df.DeadRegsAt(i).Count()
		if k > 4 {
			k = 4
		}
		fs.DeadRegHist[k]++
	}

	// Block-level: CFG size and dominator-tree depth.
	for b := range df.Graph.Blocks {
		blk := &df.Graph.Blocks[b]
		fs := fnOf(prog.Insts[blk.Start].Addr)
		fs.Blocks++
		// Unknown blocks record no successors, so Edges counts proven
		// edges only; their ⊤ flow shows up as shallow dominator depth.
		fs.Edges += len(blk.Succs)
		if d := df.Dom.Depth(b); d > fs.DomDepth {
			fs.DomDepth = d
		}
	}

	// Site selection, mirroring Harden's passes A and A'.
	want := make([]bool, len(prog.Insts))
	var cands []cfg.CheckSite
	for i := range prog.Insts {
		di := &prog.Insts[i]
		in := &di.Inst
		if !in.IsMemAccess() {
			continue
		}
		fs := fnOf(di.Addr)
		fs.Operands++
		if !opt.CheckReads && !in.Writes() {
			fs.SkippedReads++
			continue
		}
		if opt.Elim && Eliminable(in.Mem) {
			fs.ElimSyntactic++
			continue
		}
		want[i] = true
		if opt.ElimDom && !opt.Profile && in.Mem.Base != isa.RIP {
			mode := rtlib.ModeRedzone
			if opt.LowFat && (opt.AllowList == nil || opt.AllowList[di.Addr]) {
				mode = rtlib.ModeFull
			}
			lo := int64(in.Mem.Disp)
			cands = append(cands, cfg.CheckSite{
				Inst: i, Mode: uint8(mode),
				Lo: lo, Hi: lo + int64(in.MemWidth()),
			})
		}
	}
	if opt.ElimDom && !opt.Profile {
		for i := range df.Redundant(cands) {
			want[i] = false
			fnOf(prog.Insts[i].Addr).ElimDominated++
		}
	}
	for i, w := range want {
		if w {
			fnOf(prog.Insts[i].Addr).ChecksEmitted++
		}
	}

	a := &Analysis{Total: FuncStats{Name: "total"}}
	for i := range stats {
		fs := &stats[i]
		if i > 0 || fs.Insts > 0 { // keep the synthetic entry only if used
			a.Functions = append(a.Functions, *fs)
		}
		t := &a.Total
		t.Insts += fs.Insts
		t.Blocks += fs.Blocks
		t.Edges += fs.Edges
		if fs.DomDepth > t.DomDepth {
			t.DomDepth = fs.DomDepth
		}
		for k := range fs.DeadRegHist {
			t.DeadRegHist[k] += fs.DeadRegHist[k]
		}
		t.Operands += fs.Operands
		t.SkippedReads += fs.SkippedReads
		t.ElimSyntactic += fs.ElimSyntactic
		t.ElimDominated += fs.ElimDominated
		t.ChecksEmitted += fs.ChecksEmitted
	}
	return a, nil
}
