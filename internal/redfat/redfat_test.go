package redfat_test

import (
	"testing"

	"redfat/internal/asm"
	"redfat/internal/isa"
	"redfat/internal/redfat"
	"redfat/internal/relf"
	"redfat/internal/rtlib"
	"redfat/internal/vm"
)

// buildHeapProgram assembles a program that mallocs a 40-byte array and
// stores to array[idx] for each input index (8-byte elements), then frees
// and returns the number of stores done.
func buildHeapProgram(t *testing.T) *relf.Binary {
	t.Helper()
	b := asm.NewBuilder(asm.Options{})
	b.Func("main")
	b.MovRI(isa.RDI, 40)
	b.CallImport("malloc")
	b.MovRR(isa.RBX, isa.RAX) // array
	b.MovRI(isa.R12, 0)       // store counter
	b.Label("loop")
	b.CallImport("rf_input") // index, or sentinel 999 to stop
	b.AluRI(isa.CMP, isa.RAX, 999)
	b.Jcc(isa.JE, "done")
	b.MovRI(isa.RCX, 7)
	b.StoreM(asm.MemBID(isa.RBX, isa.RAX, 8, 0), isa.RCX, 8) // array[i] = 7
	b.AluRI(isa.ADD, isa.R12, 1)
	b.Jmp("loop")
	b.Label("done")
	b.MovRR(isa.RDI, isa.RBX)
	b.CallImport("free")
	b.MovRR(isa.RAX, isa.R12)
	b.Ret()
	bin, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return bin
}

func TestHardenedBenignRun(t *testing.T) {
	bin := buildHeapProgram(t)
	for _, opt := range []redfat.Options{
		{CheckReads: true, SizeCheck: true},                                   // redzone, unoptimized
		redfat.Defaults(),                                                     // full, optimized
		{LowFat: true, CheckReads: true, Elim: true},                          // +elim only
		{LowFat: true, CheckReads: true, Batch: true},                         // batch, no elim
		{LowFat: true, SizeCheck: true, Elim: true, Batch: true, Merge: true}, // -reads
	} {
		hard, rep, err := redfat.Harden(bin, opt)
		if err != nil {
			t.Fatalf("Harden(%+v): %v", opt, err)
		}
		if rep.Checks == 0 {
			t.Fatalf("no checks emitted for %+v", opt)
		}
		// In-bounds indices 0..4.
		v, rt, err := rtlib.RunHardened(hard, rtlib.RunConfig{
			Input: []uint64{0, 1, 2, 3, 4, 999}, Abort: true,
		})
		if err != nil {
			t.Fatalf("benign run failed (%+v): %v", opt, err)
		}
		if v.ExitCode != 5 {
			t.Errorf("exit = %d, want 5 (%+v)", v.ExitCode, opt)
		}
		if len(v.Errors) != 0 {
			t.Errorf("benign run reported errors: %v (%+v)", v.Errors, opt)
		}
		_ = rt
	}
}

func TestHardenedMatchesBaseline(t *testing.T) {
	// Differential: the hardened binary must compute the same result as
	// the original on error-free input.
	bin := buildHeapProgram(t)
	input := []uint64{4, 2, 0, 3, 999}
	base, err := rtlib.RunBaseline(bin, rtlib.RunConfig{Input: input})
	if err != nil {
		t.Fatal(err)
	}
	hard, _, err := redfat.Harden(bin, redfat.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	hv, _, err := rtlib.RunHardened(hard, rtlib.RunConfig{Input: input, Abort: true})
	if err != nil {
		t.Fatal(err)
	}
	if hv.ExitCode != base.ExitCode {
		t.Errorf("hardened exit %d != baseline %d", hv.ExitCode, base.ExitCode)
	}
	if hv.Cycles <= base.Cycles {
		t.Errorf("hardened run not slower: %d vs %d cycles", hv.Cycles, base.Cycles)
	}
}

func TestDetectsIncrementalOverflow(t *testing.T) {
	// array[5] on a 40-byte (5×8) array: one element past the end, into
	// the adjacent redzone. Caught by the redzone component alone.
	bin := buildHeapProgram(t)
	for _, lowfatOn := range []bool{false, true} {
		opt := redfat.Defaults()
		opt.LowFat = lowfatOn
		hard, _, err := redfat.Harden(bin, opt)
		if err != nil {
			t.Fatal(err)
		}
		_, _, err = rtlib.RunHardened(hard, rtlib.RunConfig{
			Input: []uint64{0, 5, 999}, Abort: true,
		})
		me, ok := err.(*vm.MemError)
		if !ok {
			t.Fatalf("lowfat=%v: err = %v, want MemError", lowfatOn, err)
		}
		if me.Kind != vm.ErrOOBWrite {
			t.Errorf("lowfat=%v: kind = %v", lowfatOn, me.Kind)
		}
	}
}

func TestDetectsNonIncrementalOverflow(t *testing.T) {
	// array[40]: skips far past any redzone into another object region.
	// The redzone-only check CANNOT catch this if it lands inside another
	// allocated object; the LowFat component catches it regardless
	// (paper Problem #1 / Table 2).
	b := asm.NewBuilder(asm.Options{})
	b.Func("main")
	b.MovRI(isa.RDI, 40)
	b.CallImport("malloc")
	b.MovRR(isa.RBX, isa.RAX)
	// Allocate a second object of the same size class so the overflow
	// target is an allocated object (redzone check passes there).
	b.MovRI(isa.RDI, 40)
	b.CallImport("malloc")
	b.MovRR(isa.R13, isa.RAX)
	b.CallImport("rf_input") // attacker-controlled index
	b.MovRI(isa.RCX, 0x41)
	b.StoreM(asm.MemBID(isa.RBX, isa.RAX, 8, 0), isa.RCX, 8)
	b.MovRI(isa.RAX, 0)
	b.Ret()
	bin, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	// The low-fat slot for 40+16 bytes is 64 bytes; the next slot's
	// object area starts 64 bytes (8 elements) after the first. Index 8
	// lands 16 bytes into the neighbour slot = its object start:
	// allocated memory, invisible to redzones.
	attackerIdx := uint64(8)

	full, _, err := redfat.Harden(bin, redfat.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = rtlib.RunHardened(full, rtlib.RunConfig{
		Input: []uint64{attackerIdx}, Abort: true,
	})
	if me, ok := err.(*vm.MemError); !ok || me.Kind != vm.ErrOOBWrite {
		t.Errorf("full check missed non-incremental overflow: %v", err)
	}

	rzOnly := redfat.Defaults()
	rzOnly.LowFat = false
	rz, _, err := redfat.Harden(bin, rzOnly)
	if err != nil {
		t.Fatal(err)
	}
	v, _, err := rtlib.RunHardened(rz, rtlib.RunConfig{
		Input: []uint64{attackerIdx}, Abort: true,
	})
	if err != nil || len(v.Errors) != 0 {
		t.Errorf("redzone-only unexpectedly caught the skip: %v %v", err, v.Errors)
	}
}

func TestDetectsUseAfterFree(t *testing.T) {
	b := asm.NewBuilder(asm.Options{})
	b.Func("main")
	b.MovRI(isa.RDI, 64)
	b.CallImport("malloc")
	b.MovRR(isa.RBX, isa.RAX)
	b.MovRR(isa.RDI, isa.RAX)
	b.CallImport("free")
	b.StoreI(isa.RBX, 0, 0x42, 8) // write after free
	b.MovRI(isa.RAX, 0)
	b.Ret()
	bin, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	hard, _, err := redfat.Harden(bin, redfat.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = rtlib.RunHardened(hard, rtlib.RunConfig{Abort: true})
	if me, ok := err.(*vm.MemError); !ok || me.Kind != vm.ErrUseAfterFree {
		t.Errorf("use-after-free not detected: %v", err)
	}
}

func TestDetectsRedzoneUnderflow(t *testing.T) {
	// array[-1] touches the object's own prepended redzone/metadata.
	bin := buildHeapProgram(t)
	hard, _, err := redfat.Harden(bin, redfat.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = rtlib.RunHardened(hard, rtlib.RunConfig{
		Input: []uint64{^uint64(0), 999}, Abort: true, // index −1
	})
	if me, ok := err.(*vm.MemError); !ok || me.Kind != vm.ErrOOBWrite {
		t.Errorf("redzone underflow not detected: %v", err)
	}
}

func TestPaddingOverflowDetected(t *testing.T) {
	// A 40-byte request occupies a 64-byte slot (with 16-byte redzone →
	// 8 bytes padding). Writing at offset 40 is within the slot but past
	// the malloc SIZE: the accurate SIZE-based check must catch it
	// (paper §4.2: "overflows into padding will also be detected").
	bin := buildHeapProgram(t)
	hard, _, err := redfat.Harden(bin, redfat.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = rtlib.RunHardened(hard, rtlib.RunConfig{
		Input: []uint64{5, 999}, Abort: true, // index 5 = offset 40 = padding
	})
	if me, ok := err.(*vm.MemError); !ok || me.Kind != vm.ErrOOBWrite {
		t.Errorf("padding overflow not detected: %v", err)
	}
}

func TestWriteOnlyModeSkipsReads(t *testing.T) {
	// An OOB *read* must pass under -reads (write-only) hardening.
	b := asm.NewBuilder(asm.Options{})
	b.Func("main")
	b.MovRI(isa.RDI, 40)
	b.CallImport("malloc")
	b.MovRR(isa.RBX, isa.RAX)
	b.MovRI(isa.RDI, 40)
	b.CallImport("malloc") // neighbour object so the read hits mapped memory
	b.Load(isa.RAX, isa.RBX, 64, 8)
	b.MovRI(isa.RAX, 0)
	b.Ret()
	bin, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	noReads := redfat.Defaults()
	noReads.CheckReads = false
	hard, rep, err := redfat.Harden(bin, noReads)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SkippedReads == 0 {
		t.Error("no reads skipped in write-only mode")
	}
	v, _, err := rtlib.RunHardened(hard, rtlib.RunConfig{Abort: true})
	if err != nil || len(v.Errors) != 0 {
		t.Errorf("write-only mode flagged a read: %v %v", err, v.Errors)
	}

	// With read checking the same program is caught.
	hard2, _, err := redfat.Harden(bin, redfat.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = rtlib.RunHardened(hard2, rtlib.RunConfig{Abort: true})
	if me, ok := err.(*vm.MemError); !ok || me.Kind != vm.ErrOOBRead {
		t.Errorf("OOB read not detected with read checking: %v", err)
	}
}

func TestFalsePositiveAndAllowList(t *testing.T) {
	// The C anti-idiom (array-K)[i]: the base pointer is out of bounds
	// but accesses are valid (paper snippet (c), Problem #2).
	const K = 100 // bytes
	b := asm.NewBuilder(asm.Options{})
	b.Func("main")
	b.MovRI(isa.RDI, 140)
	b.CallImport("malloc")
	b.MovRR(isa.RBX, isa.RAX)
	b.MovRR(isa.R12, isa.RAX)    // keep the idiomatic pointer too
	b.StoreI(isa.R12, 0, 5, 8)   // idiomatic access: always passes LowFat
	b.AluRI(isa.SUB, isa.RBX, K) // array -= K: intentional OOB pointer
	b.CallImport("rf_input")     // i (valid: K..139)
	b.MovRI(isa.RCX, 1)
	b.StoreM(asm.MemBID(isa.RBX, isa.RAX, 1, 0), isa.RCX, 1) // array[i] = 1
	b.MovRI(isa.RAX, 0)
	b.Ret()
	bin, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	validInput := []uint64{K + 4}

	// 1. Naive full hardening (no allow-list): false positive.
	full, _, err := redfat.Harden(bin, redfat.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = rtlib.RunHardened(full, rtlib.RunConfig{Input: validInput, Abort: true})
	if _, ok := err.(*vm.MemError); !ok {
		t.Fatalf("expected false positive from naive lowfat hardening, got %v", err)
	}

	// 2. Profiling phase: build the profile binary, run the test suite,
	// generate the allow-list (paper Fig. 5).
	profOpt := redfat.Defaults()
	profOpt.Profile = true
	prof, _, err := redfat.Harden(bin, profOpt)
	if err != nil {
		t.Fatal(err)
	}
	_, rt, err := rtlib.RunHardened(prof, rtlib.RunConfig{Input: validInput})
	if err != nil {
		t.Fatalf("profile run: %v", err)
	}
	allow := make(map[uint64]bool)
	var flagged int
	for i := range rt.Checks {
		st := rt.Stats[i]
		if st.Execs > 0 && st.LowFatFails == 0 {
			allow[rt.Checks[i].PC] = true
		}
		if st.LowFatFails > 0 {
			flagged++
		}
	}
	if flagged == 0 {
		t.Fatal("profiling did not flag the anti-idiom site")
	}

	// 3. Production phase with the allow-list: no false positive, and
	// the execution result matches the baseline.
	prodOpt := redfat.Defaults()
	prodOpt.AllowList = allow
	prod, rep, err := redfat.Harden(bin, prodOpt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FullChecks == 0 {
		t.Error("allow-list left no full checks at all")
	}
	v, _, err := rtlib.RunHardened(prod, rtlib.RunConfig{Input: validInput, Abort: true})
	if err != nil || len(v.Errors) != 0 {
		t.Errorf("allow-listed binary still false-positives: %v %v", err, v.Errors)
	}
	if v.ExitCode != 0 {
		t.Errorf("exit = %d", v.ExitCode)
	}
}

func TestEliminationFilters(t *testing.T) {
	cases := []struct {
		m    isa.Mem
		elim bool
	}{
		{isa.Mem{Base: isa.RSP, Index: isa.RegNone, Scale: 1, Disp: -8}, true},
		{isa.Mem{Base: isa.RIP, Index: isa.RegNone, Scale: 1, Disp: 0x1000}, true},
		{isa.Mem{Base: isa.RegNone, Index: isa.RegNone, Scale: 1, Disp: 0x601000}, true},
		{isa.Mem{Base: isa.RAX, Index: isa.RegNone, Scale: 1}, false},
		{isa.Mem{Base: isa.RSP, Index: isa.RCX, Scale: 8}, false}, // index can reach anywhere
		{isa.Mem{Base: isa.RegNone, Index: isa.RBX, Scale: 1, Disp: 0}, false},
	}
	for _, c := range cases {
		if got := redfat.Eliminable(c.m); got != c.elim {
			t.Errorf("Eliminable(%v) = %v, want %v", c.m, got, c.elim)
		}
	}
}

func TestOptimizationsReduceCycles(t *testing.T) {
	// Each optimization level must not be slower than the previous
	// (paper Table 1 ordering: unopt ≥ +elim ≥ +batch ≥ +merge ≥ -size
	// ≥ -reads), measured on a store-heavy loop.
	b := asm.NewBuilder(asm.Options{})
	b.Func("main")
	b.MovRI(isa.RDI, 4096)
	b.CallImport("malloc")
	b.MovRR(isa.RBX, isa.RAX)
	b.MovRI(isa.RCX, 0)
	b.Label("loop")
	// Several same-base stores: batchable and mergeable.
	b.StoreI(isa.RBX, 0, 1, 8)
	b.StoreI(isa.RBX, 8, 2, 8)
	b.StoreI(isa.RBX, 16, 3, 8)
	b.Load(isa.RAX, isa.RBX, 8, 8)
	// A stack spill: eliminable.
	b.Store(isa.RSP, -16, isa.RAX, 8)
	b.AluRI(isa.ADD, isa.RBX, 24)
	b.AluRI(isa.ADD, isa.RCX, 1)
	b.AluRI(isa.CMP, isa.RCX, 100)
	b.Jcc(isa.JL, "loop")
	b.MovRI(isa.RAX, 0)
	b.Ret()
	bin, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	configs := []redfat.Options{
		{LowFat: true, CheckReads: true, SizeCheck: true},
		{LowFat: true, CheckReads: true, SizeCheck: true, Elim: true},
		{LowFat: true, CheckReads: true, SizeCheck: true, Elim: true, Batch: true},
		{LowFat: true, CheckReads: true, SizeCheck: true, Elim: true, Batch: true, Merge: true},
		{LowFat: true, CheckReads: true, Elim: true, Batch: true, Merge: true},
		{LowFat: true, Elim: true, Batch: true, Merge: true},
	}
	var prev uint64 = ^uint64(0)
	for ci, opt := range configs {
		hard, _, err := redfat.Harden(bin, opt)
		if err != nil {
			t.Fatal(err)
		}
		v, _, err := rtlib.RunHardened(hard, rtlib.RunConfig{Abort: true})
		if err != nil {
			t.Fatalf("config %d: %v", ci, err)
		}
		if v.Cycles > prev {
			t.Errorf("config %d (%d cycles) slower than config %d (%d cycles)",
				ci, v.Cycles, ci-1, prev)
		}
		prev = v.Cycles
	}
}

func TestStrippedBinaryHardens(t *testing.T) {
	bin := buildHeapProgram(t)
	bin.Strip()
	hard, rep, err := redfat.Harden(bin, redfat.Defaults())
	if err != nil {
		t.Fatalf("hardening stripped binary: %v", err)
	}
	if rep.Checks == 0 {
		t.Fatal("no checks on stripped binary")
	}
	v, _, err := rtlib.RunHardened(hard, rtlib.RunConfig{
		Input: []uint64{0, 1, 999}, Abort: true,
	})
	if err != nil || v.ExitCode != 2 {
		t.Errorf("stripped hardened run: exit=%d err=%v", v.ExitCode, err)
	}
}

func TestPICBinaryHardens(t *testing.T) {
	b := asm.NewBuilder(asm.Options{PIC: true})
	b.GlobalU64("counter", 0)
	b.Func("main")
	b.MovRI(isa.RDI, 32)
	b.CallImport("malloc")
	b.MovRR(isa.RBX, isa.RAX)
	b.StoreI(isa.RBX, 0, 11, 8)
	b.LoadGlobal(isa.RCX, "counter", 0, 8)
	b.AluRM(isa.ADD, isa.RCX, asm.MemBID(isa.RBX, isa.RegNone, 1, 0), 8)
	b.StoreGlobal("counter", 0, isa.RCX, 8)
	b.LoadGlobal(isa.RAX, "counter", 0, 8)
	b.Ret()
	bin, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	bin.Rebase(0x2000_0000_0000) // PIE load address (non-fat region)
	hard, _, err := redfat.Harden(bin, redfat.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	v, _, err := rtlib.RunHardened(hard, rtlib.RunConfig{Abort: true})
	if err != nil {
		t.Fatal(err)
	}
	if v.ExitCode != 11 {
		t.Errorf("exit = %d, want 11", v.ExitCode)
	}
}

func TestDoubleHardenRejected(t *testing.T) {
	bin := buildHeapProgram(t)
	hard, _, err := redfat.Harden(bin, redfat.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := redfat.Harden(hard, redfat.Defaults()); err == nil {
		t.Error("double instrumentation accepted")
	}
}

func TestHardenDeterministic(t *testing.T) {
	bin := buildHeapProgram(t)
	h1, _, err := redfat.Harden(bin, redfat.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	h2, _, err := redfat.Harden(bin, redfat.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	b1, err := h1.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := h2.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Error("hardening is not deterministic")
	}
}
