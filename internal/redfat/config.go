package redfat

import (
	"encoding/binary"
	"fmt"
)

// ConfigSection records the hardening configuration inside the produced
// binary, so the translation validator can re-derive the checking policy
// without being told the original command line. Like the site table it
// is metadata only — the VM never loads it.
const ConfigSection = ".rf.config"

// UnprotSection lists operand addresses the rewriter had to leave
// unprotected (their patch failed and could not be repaired). The
// validator exempts them from the coverage audit instead of mistaking
// them for rewriter bugs. Encoded with the patch-table format
// (addr → 0); absent when every selected operand was protected.
const UnprotSection = ".rf.unprot"

// configVersion versions the ConfigSection encoding.
const configVersion = 1

// config flag bits (byte 1 of the section).
const (
	cfgLowFat = 1 << iota
	cfgProfile
	cfgCheckReads
	cfgSizeCheck
	cfgElim
	cfgElimDom
	cfgBatch
	cfgMerge
)

// config flag bits (byte 2 of the section).
const (
	cfgNoClobberSpec = 1 << iota
	cfgLocalLiveness
	cfgAllowList
	cfgNoLibcCheck
	cfgNoIndirect
)

// EncodeConfig serializes the policy-relevant subset of opt.
func EncodeConfig(opt Options) []byte {
	var f1, f2 byte
	set := func(b *byte, bit byte, on bool) {
		if on {
			*b |= bit
		}
	}
	set(&f1, cfgLowFat, opt.LowFat)
	set(&f1, cfgProfile, opt.Profile)
	set(&f1, cfgCheckReads, opt.CheckReads)
	set(&f1, cfgSizeCheck, opt.SizeCheck)
	set(&f1, cfgElim, opt.Elim)
	set(&f1, cfgElimDom, opt.ElimDom)
	set(&f1, cfgBatch, opt.Batch)
	set(&f1, cfgMerge, opt.Merge)
	set(&f2, cfgNoClobberSpec, opt.NoClobberSpec)
	set(&f2, cfgLocalLiveness, opt.LocalLiveness)
	set(&f2, cfgAllowList, opt.AllowList != nil)
	set(&f2, cfgNoLibcCheck, opt.NoLibcCheck)
	set(&f2, cfgNoIndirect, opt.NoIndirect)
	out := make([]byte, 5)
	out[0] = configVersion
	out[1] = f1
	out[2] = f2
	binary.LittleEndian.PutUint16(out[3:], uint16(opt.MaxBatch))
	return out
}

// DecodeConfig recovers the Options subset stored by EncodeConfig. The
// AllowList itself is not stored; HasAllowList reports whether one was
// in effect (site modes already reflect it in the site table).
func DecodeConfig(data []byte) (opt Options, hasAllowList bool, err error) {
	if len(data) < 5 {
		return opt, false, fmt.Errorf("redfat: config section too short (%d bytes)", len(data))
	}
	if data[0] != configVersion {
		return opt, false, fmt.Errorf("redfat: unknown config version %d", data[0])
	}
	f1, f2 := data[1], data[2]
	opt.LowFat = f1&cfgLowFat != 0
	opt.Profile = f1&cfgProfile != 0
	opt.CheckReads = f1&cfgCheckReads != 0
	opt.SizeCheck = f1&cfgSizeCheck != 0
	opt.Elim = f1&cfgElim != 0
	opt.ElimDom = f1&cfgElimDom != 0
	opt.Batch = f1&cfgBatch != 0
	opt.Merge = f1&cfgMerge != 0
	opt.NoClobberSpec = f2&cfgNoClobberSpec != 0
	opt.LocalLiveness = f2&cfgLocalLiveness != 0
	opt.NoLibcCheck = f2&cfgNoLibcCheck != 0
	opt.NoIndirect = f2&cfgNoIndirect != 0
	opt.MaxBatch = int(binary.LittleEndian.Uint16(data[3:]))
	return opt, f2&cfgAllowList != 0, nil
}
