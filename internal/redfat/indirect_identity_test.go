package redfat_test

import (
	"bytes"
	"testing"

	"redfat/internal/redfat"
	"redfat/internal/relf"
	"redfat/internal/rtlib"
	"redfat/internal/workload"
)

// TestNoIndirectIdentityNonMarker: for binaries without the .rf.jt
// marker the recovery never runs, so the -noindirect knob must be a
// perfect no-op — the hardened binaries are bit-identical outside the
// recorded config (which legitimately stores the knob for replay), and
// the guest results are identical. This is the knob's half of the
// identity matrix; the marker-built half (identical checksums, check
// counts allowed to differ) lives in the workload switch-dense tests.
func TestNoIndirectIdentityNonMarker(t *testing.T) {
	for _, name := range []string{"libquantum", "mcf"} {
		bm := workload.ByName(name)
		cp := *bm
		cp.TrainScale, cp.RefScale = 300, 1500
		t.Run(name, func(t *testing.T) {
			bin, err := cp.Build()
			if err != nil {
				t.Fatal(err)
			}
			var hards []*relf.Binary
			var cycles, exits []uint64
			for _, noind := range []bool{false, true} {
				opt := redfat.Defaults()
				opt.NoIndirect = noind
				hard, _, err := redfat.Harden(bin, opt)
				if err != nil {
					t.Fatal(err)
				}
				hards = append(hards, hard)
				v, _, err := rtlib.RunHardened(hard,
					rtlib.RunConfig{Input: cp.RefInput(), NoIndirect: noind})
				if err != nil {
					t.Fatal(err)
				}
				cycles = append(cycles, v.Cycles)
				exits = append(exits, v.ExitCode)
			}
			if exits[0] != exits[1] || cycles[0] != cycles[1] {
				t.Errorf("guest results differ across -noindirect: %#x/%d vs %#x/%d",
					exits[0], cycles[0], exits[1], cycles[1])
			}
			a, b := hards[0], hards[1]
			if len(a.Sections) != len(b.Sections) {
				t.Fatalf("section counts differ: %d vs %d", len(a.Sections), len(b.Sections))
			}
			for i, sa := range a.Sections {
				sb := b.Sections[i]
				if sa.Name != sb.Name {
					t.Fatalf("section order differs: %q vs %q", sa.Name, sb.Name)
				}
				if sa.Name == redfat.ConfigSection {
					continue // records the knob itself
				}
				if sa.Addr != sb.Addr || sa.Size != sb.Size || !bytes.Equal(sa.Data, sb.Data) {
					t.Errorf("section %q differs across -noindirect on a non-marker input", sa.Name)
				}
			}
		})
	}
}
