package redfat_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"redfat/internal/juliet"
	"redfat/internal/redfat"
	"redfat/internal/workload"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestAnalysisReportGolden pins the -analysis-report output for a
// deterministic benchmark: the JSON must be byte-identical run to run
// (stable key order, sorted functions) and match the checked-in golden.
func TestAnalysisReportGolden(t *testing.T) {
	// A Juliet case keeps its function symbols (workload binaries are
	// stripped), so the per-function breakdown is exercised too.
	c := juliet.JulietCases()[0]
	bin, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	a, err := redfat.Analyze(bin, redfat.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}

	// Determinism: a second run must be byte-identical.
	a2, err := redfat.Analyze(bin, redfat.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := a2.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("analysis report is not deterministic")
	}

	golden := filepath.Join("testdata", "analysis_juliet.json")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("analysis report drifted from %s (re-run with -update if intended)\ngot:\n%s",
			golden, buf.String())
	}
}

// TestAnalyzeConsistency cross-checks the analysis totals against the
// instrumentation report Harden produces under the same options.
func TestAnalyzeConsistency(t *testing.T) {
	bin, err := workload.ByName("sjeng").Build()
	if err != nil {
		t.Fatal(err)
	}
	opt := redfat.Defaults()
	a, err := redfat.Analyze(bin, opt)
	if err != nil {
		t.Fatal(err)
	}
	_, rep, err := redfat.Harden(bin, opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.Total.Operands != rep.Operands {
		t.Errorf("operands: analyze %d, harden %d", a.Total.Operands, rep.Operands)
	}
	if a.Total.ElimSyntactic != rep.Eliminated {
		t.Errorf("syntactic elim: analyze %d, harden %d", a.Total.ElimSyntactic, rep.Eliminated)
	}
	if a.Total.ElimDominated != rep.ElimDominated {
		t.Errorf("dominated elim: analyze %d, harden %d", a.Total.ElimDominated, rep.ElimDominated)
	}
	if a.Total.ChecksEmitted != rep.Instrumented {
		t.Errorf("checks: analyze %d, harden %d", a.Total.ChecksEmitted, rep.Instrumented)
	}
	if a.Total.Blocks == 0 || a.Total.Edges == 0 || a.Total.DomDepth == 0 {
		t.Errorf("degenerate CFG stats: %+v", a.Total)
	}
}
