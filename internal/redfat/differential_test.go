package redfat_test

import (
	"math/rand"
	"testing"

	"redfat/internal/asm"
	"redfat/internal/isa"
	"redfat/internal/juliet"
	"redfat/internal/redfat"
	"redfat/internal/relf"
	"redfat/internal/rtlib"
	"redfat/internal/vm"
)

// genProgram builds a random but well-behaved program: every memory
// access is in bounds by construction, control flow terminates, and the
// exit code is a deterministic data-only checksum. This underpins the
// central rewriting property: on error-free executions, the hardened
// binary is observationally identical to the original.
func genProgram(r *rand.Rand) (*relf.Binary, error) {
	b := asm.NewBuilder(asm.Options{FuncAlign: 16})
	b.Func("main")
	b.Push(isa.RBX)
	b.Push(isa.R12)
	b.Push(isa.R13)
	b.Push(isa.R14)

	// 1-3 heap buffers; sizes are powers of two so masking keeps
	// accesses in bounds.
	bufRegs := []isa.Reg{isa.RBX, isa.R12, isa.R13}
	nBufs := 1 + r.Intn(3)
	sizes := make([]int64, nBufs)
	for i := 0; i < nBufs; i++ {
		sizes[i] = 64 << r.Intn(5) // 64..1024 bytes
		b.MovRI(isa.RDI, sizes[i])
		b.CallImport("malloc")
		b.MovRR(bufRegs[i], isa.RAX)
		// Deterministic contents.
		b.MovRR(isa.RDI, bufRegs[i])
		b.MovRI(isa.RSI, int64(i))
		b.MovRI(isa.RDX, sizes[i])
		b.CallImport("memset")
	}

	// Main loop: RCX counts, R14 accumulates.
	iters := int64(16 + r.Intn(100))
	b.MovRI(isa.RCX, 0)
	b.MovRI(isa.R14, 0)
	b.Label("loop")

	nOps := 2 + r.Intn(8)
	for op := 0; op < nOps; op++ {
		buf := r.Intn(nBufs)
		reg := bufRegs[buf]
		elems := sizes[buf] / 8
		// RDX = in-bounds element index derived from the counter.
		b.MovRR(isa.RDX, isa.RCX)
		if r.Intn(2) == 0 {
			b.AluRI(isa.ADD, isa.RDX, int64(r.Intn(16)))
		}
		b.AluRI(isa.AND, isa.RDX, elems-1)
		m := asm.MemBID(reg, isa.RDX, 8, 0)
		switch r.Intn(6) {
		case 0:
			b.StoreM(m, isa.RCX, 8)
		case 1:
			b.AluRM(isa.ADD, isa.R14, m, 8)
		case 2:
			b.AluMR(isa.ADD, m, isa.RCX, 8)
		case 3: // struct-style multi-field stores (batch/merge food)
			base := asm.MemBID(reg, isa.RegNone, 1, int32(8*r.Intn(4)))
			b.StoreMI(base, int64(r.Intn(100)), 8)
			base.Disp += 8
			b.StoreMI(base, int64(r.Intn(100)), 8)
		case 4: // stack spill pair (elimination food)
			b.Store(isa.RSP, -32, isa.RCX, 8)
			b.Load(isa.RCX, isa.RSP, -32, 8)
		case 5: // sub-width access
			b.StoreM(asm.MemBID(reg, isa.RDX, 1, 0), isa.RCX, 1)
			b.Emit(isa.Inst{Op: isa.MOVZX, Form: isa.FRM, Reg: isa.RSI, Size: 1,
				Mem: asm.MemBID(reg, isa.RDX, 1, 0)})
			b.AluRR(isa.ADD, isa.R14, isa.RSI)
		}
		// Occasional in-loop branch (control-flow variety).
		if r.Intn(4) == 0 {
			skip := b0Label(r)
			b.Emit(isa.Inst{Op: isa.TEST, Form: isa.FRR, Reg: isa.RCX, Reg2: isa.RCX, Size: 8})
			b.Jcc(isa.JS, skip) // never taken (counter ≥ 0); still a block split
			b.AluRI(isa.ADD, isa.R14, 1)
			b.Label(skip)
		}
	}

	b.AluRI(isa.ADD, isa.RCX, 1)
	b.AluRI(isa.CMP, isa.RCX, iters)
	b.Jcc(isa.JL, "loop")

	for i := 0; i < nBufs; i++ {
		b.MovRR(isa.RDI, bufRegs[i])
		b.CallImport("free")
	}
	b.MovRR(isa.RAX, isa.R14)
	b.Pop(isa.R14)
	b.Pop(isa.R13)
	b.Pop(isa.R12)
	b.Pop(isa.RBX)
	b.Ret()
	return b.Build()
}

var labelCounter int

func b0Label(r *rand.Rand) string {
	labelCounter++
	return "rnd_" + string(rune('a'+labelCounter%26)) + string(rune('0'+labelCounter%10)) +
		string(rune('a'+(labelCounter/10)%26)) + string(rune('0'+(labelCounter/260)%10))
}

// TestDifferentialRandomPrograms: for random well-behaved programs, every
// instrumentation configuration preserves behaviour exactly and reports
// no errors.
func TestDifferentialRandomPrograms(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	configs := []redfat.Options{
		redfat.Defaults(),
		{LowFat: true, CheckReads: true, SizeCheck: true}, // unoptimized
		{LowFat: false, CheckReads: true, SizeCheck: true, Elim: true, Batch: true, Merge: true},
		{LowFat: true, SizeCheck: true, Elim: true, Batch: true, Merge: true}, // writes only
	}
	for trial := 0; trial < 25; trial++ {
		bin, err := genProgram(r)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		base, err := rtlib.RunBaseline(bin, rtlib.RunConfig{})
		if err != nil {
			t.Fatalf("trial %d baseline: %v", trial, err)
		}
		for ci, opt := range configs {
			hard, _, err := redfat.Harden(bin, opt)
			if err != nil {
				t.Fatalf("trial %d config %d: %v", trial, ci, err)
			}
			v, _, err := rtlib.RunHardened(hard, rtlib.RunConfig{Abort: true})
			if err != nil {
				t.Fatalf("trial %d config %d run: %v", trial, ci, err)
			}
			if v.ExitCode != base.ExitCode {
				t.Fatalf("trial %d config %d: checksum %#x != baseline %#x",
					trial, ci, v.ExitCode, base.ExitCode)
			}
			if len(v.Errors) != 0 {
				t.Fatalf("trial %d config %d: spurious errors %v", trial, ci, v.Errors)
			}
		}
	}
}

// TestDifferentialRandomizedAllocator: random programs also behave
// identically under placement randomization.
func TestDifferentialRandomizedAllocator(t *testing.T) {
	r := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 10; trial++ {
		bin, err := genProgram(r)
		if err != nil {
			t.Fatal(err)
		}
		hard, _, err := redfat.Harden(bin, redfat.Defaults())
		if err != nil {
			t.Fatal(err)
		}
		plain, _, err := rtlib.RunHardened(hard, rtlib.RunConfig{Abort: true})
		if err != nil {
			t.Fatal(err)
		}
		rnd, _, err := rtlib.RunHardened(hard, rtlib.RunConfig{Abort: true, RandomizeHeap: true})
		if err != nil {
			t.Fatal(err)
		}
		if plain.ExitCode != rnd.ExitCode {
			t.Fatalf("trial %d: randomization changed checksum: %#x vs %#x",
				trial, plain.ExitCode, rnd.ExitCode)
		}
	}
}

// detection is the observable outcome of running one hardened bad-variant
// case: whether an error was reported and, if so, its kind and location.
type detection struct {
	caught   bool
	kind     vm.MemErrorKind
	pc       uint64
	exitCode uint64
}

// runDetect hardens a case under opt and runs its trigger input,
// mirroring the detection logic of the Juliet suite: an error is a
// detection whether it surfaced as a recorded check violation or as a
// VM-level fault under Abort.
func runDetect(t *testing.T, c *juliet.Case, opt redfat.Options) detection {
	t.Helper()
	bin, err := c.Build()
	if err != nil {
		t.Fatalf("%s: %v", c.ID, err)
	}
	hard, _, err := redfat.Harden(bin, opt)
	if err != nil {
		t.Fatalf("%s: harden (%+v): %v", c.ID, opt, err)
	}
	v, _, err := rtlib.RunHardened(hard, rtlib.RunConfig{
		Input: juliet.Trigger(c), Abort: true,
	})
	var d detection
	d.exitCode = v.ExitCode
	if len(v.Errors) > 0 {
		d.caught = true
		d.kind = v.Errors[0].Kind
		d.pc = v.Errors[0].PC
	}
	if me, ok := err.(*vm.MemError); ok {
		if !d.caught {
			d.caught, d.kind, d.pc = true, me.Kind, me.PC
		}
	} else if err != nil {
		t.Fatalf("%s: hardened run (%+v): %v", c.ID, opt, err)
	}
	return d
}

// TestDifferentialElimKnobMatrix: dominator-based check elimination and
// the liveness-scope knob are pure optimizations — across the whole
// {ElimDom} × {LocalLiveness} matrix, every Juliet and CVE case must
// produce the identical detection verdict, error kind, faulting PC, and
// exit code. An elimination pass that drops a security-relevant check
// shows up here as a knob-dependent detection.
func TestDifferentialElimKnobMatrix(t *testing.T) {
	combos := []struct {
		name      string
		elimDom   bool
		localLive bool
	}{
		{"elimdom+global", true, false},
		{"elimdom+local", true, true},
		{"noelimdom+global", false, false},
		{"noelimdom+local", false, true},
	}

	var cases []*juliet.Case
	cases = append(cases, juliet.CVECases()...)
	js := juliet.JulietCases()
	stride := 17
	if testing.Short() {
		stride = 97
	}
	for i := 0; i < len(js); i += stride {
		cases = append(cases, js[i])
	}

	for _, c := range cases {
		var ref detection
		for ci, combo := range combos {
			opt := redfat.Defaults()
			opt.ElimDom = combo.elimDom
			opt.LocalLiveness = combo.localLive
			d := runDetect(t, c, opt)
			if ci == 0 {
				ref = d
				if !d.caught {
					t.Errorf("%s: bad variant not detected under %s", c.ID, combo.name)
				}
				continue
			}
			if d != ref {
				t.Errorf("%s: detection differs under %s: got %+v, want %+v",
					c.ID, combo.name, d, ref)
			}
		}
	}
}
