// Package redfat implements the paper's primary contribution: the RedFat
// binary-hardening instrumentation.
//
// Given a RELF binary (stripped or not, PIC or not), Harden produces a
// drop-in replacement binary in which memory accesses are protected by the
// complementary (Redzone)+(LowFat) check of paper Fig. 4, inserted through
// E9Patch-style trampoline rewriting, with the paper's three optimizations:
// check elimination, check batching and check merging (§6), and the
// profile-based allow-list policy for false-positive avoidance (§5).
package redfat

import (
	"fmt"
	"sort"

	"redfat/internal/cfg"
	"redfat/internal/e9"
	"redfat/internal/isa"
	"redfat/internal/lowfat"
	"redfat/internal/relf"
	"redfat/internal/rtlib"
	"redfat/internal/telemetry"
	"redfat/internal/vm"
)

// Options selects the instrumentation configuration. The zero value is a
// valid conservative configuration (redzone-only, unoptimized, read+write
// checking); use Defaults() for the fully optimized production defaults.
type Options struct {
	// LowFat enables the combined (Redzone)+(LowFat) check. Sites not in
	// the allow-list (when one is given) fall back to redzone-only.
	LowFat bool

	// AllowList restricts full checking to the given instruction
	// addresses (from the profiling phase). Nil means "all sites" —
	// the configuration the paper evaluates for false positives.
	AllowList map[uint64]bool

	// Profile builds the profiling binary of paper Fig. 5 step 1:
	// every site uses the profiling check variant and never aborts.
	Profile bool

	// CheckReads instruments read accesses as well as writes. Disabling
	// it is the paper's -reads configuration (write-only protection).
	CheckReads bool

	// SizeCheck enables metadata hardening (validating the stored SIZE
	// against the immutable low-fat slot size). Disabling it is the
	// paper's -size configuration.
	SizeCheck bool

	// Elim, Batch, Merge enable the three optimizations of paper §6.
	Elim  bool
	Batch bool
	Merge bool

	// ElimDom enables dominator-based redundant-check elimination on
	// top of the syntactic Elim rule: a checked operand whose address
	// shape (segment/base/index/scale), mode and displacement span are
	// already covered by a check that dominates it — with the address
	// registers unredefined and no call in between — is dropped; the
	// dominating check subsumes it. Ignored in Profile mode, where
	// per-site execution statistics must stay complete.
	ElimDom bool

	// LocalLiveness restricts the dead-register/dead-flags trampoline
	// specialization to the legacy block-local scans instead of the
	// whole-CFG liveness solution. Exposed for ablation measurements;
	// the block-local answer is never more precise.
	LocalLiveness bool

	// MaxBatch bounds the number of accesses per trampoline (0 = 8).
	MaxBatch int

	// NoLibcCheck records that the binary is intended to deploy without
	// the span-checked libc intrinsics (the libredfat interposition).
	// Policy metadata only — the run-time knob of the same name drives
	// execution — but recording it in .rf.config lets runpack replay and
	// the validator reconstruct the intended deployment, and puts the
	// bit under the runpack digest (tamper detection).
	NoLibcCheck bool

	// NoClobberSpec disables the dead-register trampoline
	// specialization (paper §6, "Additional low-level optimizations"):
	// every trampoline then saves the full scratch set and flags.
	// Exposed for ablation measurements.
	NoClobberSpec bool

	// NoIndirect disables indirect-flow recovery (jump-table resolution,
	// landing-pad target sets, RET/call-site pairing) in the dataflow
	// engine: indirect control flow stays ⊤ as in the seed analysis.
	// Only observable on marker-built inputs (those carrying .rf.jt);
	// exposed for ablation measurements.
	NoIndirect bool
}

// Defaults returns the fully optimized production configuration
// (the paper's "+merge" column).
func Defaults() Options {
	return Options{
		LowFat:     true,
		CheckReads: true,
		SizeCheck:  true,
		Elim:       true,
		Batch:      true,
		Merge:      true,
		ElimDom:    true,
	}
}

// Report summarizes an instrumentation run.
type Report struct {
	Operands      int // memory operands considered
	Eliminated    int // removed by (syntactic) check elimination
	ElimDominated int // removed as redundant under a dominating check
	SkippedReads  int // skipped because CheckReads is off
	Instrumented  int // operands receiving a check of their own
	Checks        int // emitted check records (after merging)
	Batches       int // trampolines
	MergedAway    int // checks saved by merging
	FullChecks    int // checks with the combined lowfat+redzone mode
	Rewrite       e9.Stats
	FailedSites   int // operands whose patch failed (left unprotected)

	// Liveness-driven trampoline specialization totals: registers the
	// emitted trampolines save (sum over trampolines) and how many of
	// them must preserve the flags.
	LiveRegsSaved  int
	LiveFlagsSaved int

	// Indirect-flow recovery outcome on marker-built inputs: resolved
	// indirect jump sites (table or landing-pad-set) and paired RETs.
	IndirectResolved int
	IndirectRets     int
}

// Publish exports the instrumentation report as counters in reg (no-op
// when reg is nil), including the embedded rewriting statistics.
func (r *Report) Publish(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	reg.Counter("harden.operands").Add(uint64(r.Operands))
	reg.Counter("harden.eliminated").Add(uint64(r.Eliminated))
	reg.Counter("harden.reads.skipped").Add(uint64(r.SkippedReads))
	reg.Counter("harden.instrumented").Add(uint64(r.Instrumented))
	reg.Counter("harden.checks").Add(uint64(r.Checks))
	reg.Counter("harden.batches").Add(uint64(r.Batches))
	reg.Counter("harden.merged.away").Add(uint64(r.MergedAway))
	reg.Counter("harden.checks.full").Add(uint64(r.FullChecks))
	reg.Counter("harden.sites.failed").Add(uint64(r.FailedSites))
	reg.Counter("harden.elim.dom").Add(uint64(r.ElimDominated))
	reg.Counter("harden.liveness.regs").Add(uint64(r.LiveRegsSaved))
	reg.Counter("harden.liveness.flags").Add(uint64(r.LiveFlagsSaved))
	reg.Counter("harden.indirect.resolved").Add(uint64(r.IndirectResolved))
	reg.Counter("harden.indirect.rets").Add(uint64(r.IndirectRets))
	r.Rewrite.Publish(reg)
}

// String renders a human-readable summary.
func (r *Report) String() string {
	return fmt.Sprintf(
		"operands %d (eliminated %d, reads skipped %d) → checks %d in %d trampolines "+
			"(merged away %d, full %d) tactics T1=%d T2=%d T3=%d tramp=%dB",
		r.Operands, r.Eliminated, r.SkippedReads, r.Checks, r.Batches,
		r.MergedAway, r.FullChecks,
		r.Rewrite.T1, r.Rewrite.T2, r.Rewrite.T3, r.Rewrite.TrampBytes)
}

// Eliminable implements check elimination (paper §6): a memory operand
// that provably cannot reach low-fat heap memory needs no check. The rule:
// no index register, and either no base register (with an absolute
// displacement outside the heap range), or a base register that is %rip
// or %rsp (code and stack are ≫2 GB away from the heap regions under the
// standard layout).
func Eliminable(m isa.Mem) bool {
	if m.Index != isa.RegNone {
		return false
	}
	switch m.Base {
	case isa.RegNone:
		addr := uint64(int64(m.Disp))
		return addr < lowfat.HeapLow || addr >= lowfat.HeapHigh
	case isa.RIP, isa.RSP:
		// ±2 GB displacement from text/stack cannot reach the heap.
		return true
	}
	return false
}

// site is an operand selected for checking.
type site struct {
	idx   int // instruction index
	addr  uint64
	inst  *isa.Inst
	mode  rtlib.Mode
	write bool
}

// Harden instruments bin according to opt, returning the hardened binary
// and a report. The input binary is not modified. Hardening an
// already-hardened binary is rejected (double instrumentation would
// install checks on trampoline code and re-patch patched sites).
func Harden(bin *relf.Binary, opt Options) (*relf.Binary, *Report, error) {
	if bin.Section(rtlib.SitesSection) != nil {
		return nil, nil, fmt.Errorf("redfat: binary is already instrumented")
	}
	if opt.MaxBatch == 0 {
		opt.MaxBatch = 8
	}
	rw, err := e9.New(bin)
	if err != nil {
		return nil, nil, err
	}
	prog := rw.Prog
	rep := &Report{}

	// Whole-CFG dataflow engine: needed for dominator-based check
	// elimination and for the global liveness trampoline specialization.
	var df *cfg.Dataflow
	if (opt.ElimDom && !opt.Profile) || (!opt.NoClobberSpec && !opt.LocalLiveness) {
		df = cfg.NewDataflowOpts(prog, cfg.GraphOptions{NoIndirect: opt.NoIndirect})
		if ind := df.Graph.Indirect; ind != nil {
			for _, r := range ind.Resolved {
				if r.Kind == cfg.ResolvedRet {
					rep.IndirectRets++
				} else {
					rep.IndirectResolved++
				}
			}
		}
	}

	// Pass A: select sites and decide their check mode.
	siteOf := make(map[int]*site)
	want := make([]bool, len(prog.Insts))
	for i := range prog.Insts {
		di := &prog.Insts[i]
		in := &di.Inst
		if !in.IsMemAccess() {
			continue
		}
		rep.Operands++
		if !opt.CheckReads && !in.Writes() {
			rep.SkippedReads++
			continue
		}
		if opt.Elim && Eliminable(in.Mem) {
			rep.Eliminated++
			continue
		}
		mode := rtlib.ModeRedzone
		switch {
		case opt.Profile:
			mode = rtlib.ModeProfile
		case opt.LowFat && (opt.AllowList == nil || opt.AllowList[di.Addr]):
			mode = rtlib.ModeFull
		}
		siteOf[i] = &site{idx: i, addr: di.Addr, inst: in, mode: mode,
			write: in.Writes()}
		want[i] = true
		rep.Instrumented++
	}

	// Pass A': dominator-based redundant-check elimination. A site whose
	// address shape, mode and span are covered by an available dominating
	// check is dropped; the provider protects it. Skipped in Profile
	// mode (per-site execution statistics must stay complete). Under
	// AbortOnError the guest-visible detections are identical: the
	// provider executes first on every path and fails on a superset of
	// the dropped check's failures.
	elimBy := make(map[int][]int) // provider inst → eliminated dependents
	elimSites := make(map[int]*site)
	if opt.ElimDom && !opt.Profile {
		var cands []cfg.CheckSite
		for i := range prog.Insts {
			if !want[i] {
				continue
			}
			s := siteOf[i]
			if s.inst.Mem.Base == isa.RIP {
				continue // PC-relative shapes never repeat
			}
			lo := int64(s.inst.Mem.Disp)
			cands = append(cands, cfg.CheckSite{
				Inst: i, Mode: uint8(s.mode),
				Lo: lo, Hi: lo + int64(s.inst.MemWidth()),
			})
		}
		for i, w := range df.Redundant(cands) {
			want[i] = false
			elimSites[i] = siteOf[i]
			delete(siteOf, i)
			elimBy[w] = append(elimBy[w], i)
			rep.ElimDominated++
			rep.Instrumented--
		}
	}

	// Pass B: group sites into batches.
	var batches []cfg.Batch
	if opt.Batch {
		batches = prog.Batches(func(i int) bool { return want[i] }, opt.MaxBatch)
	} else {
		for i := range prog.Insts {
			if want[i] {
				batches = append(batches, cfg.Batch{Members: []int{i}})
			}
		}
	}

	// Reserve all batch heads so byte stealing never swallows one.
	for _, b := range batches {
		rw.Reserve(prog.Insts[b.Members[0]].Addr)
	}

	checkIdx := rw.Binary().ImportIndex(rtlib.CheckImport)
	var checks []rtlib.Check

	// clobberSpec computes the trampoline prologue requirements at a
	// batch head from the selected liveness analysis.
	clobberSpec := func(head int) (int, bool) {
		savedRegs, saveFlags := 4, true
		if opt.NoClobberSpec {
			return savedRegs, saveFlags
		}
		var dead cfg.RegSet
		var flagsDead bool
		if df != nil && !opt.LocalLiveness {
			dead = df.DeadRegsAt(head)
			flagsDead = df.FlagsDeadAt(head)
		} else {
			dead = prog.DeadRegsAt(head)
			flagsDead = prog.FlagsDeadAt(head)
		}
		if d := dead.Count(); d < savedRegs {
			savedRegs -= d
		} else {
			savedRegs = 0
		}
		return savedRegs, !flagsDead
	}

	// instrument emits the checks for one batch and patches its head.
	instrument := func(members []int) error {
		head := members[0]
		savedRegs, saveFlags := clobberSpec(head)
		groups := mergeGroups(members, siteOf, opt.Merge)
		var payload []isa.Inst
		for gi, g := range groups {
			c := buildCheck(prog, g, siteOf, opt)
			c.Leader = gi == 0
			c.SavedRegs = uint8(savedRegs)
			c.SaveFlags = saveFlags
			siteIndex := uint32(len(checks))
			checks = append(checks, c)
			if c.Mode == rtlib.ModeFull {
				rep.FullChecks++
			}
			rep.MergedAway += int(c.Merged) - 1
			payload = append(payload, isa.Inst{
				Op: isa.RTCALL, Form: isa.FI,
				Imm: vm.RTCallImm(checkIdx, siteIndex),
			})
		}
		if err := rw.Instrument(head, payload); err != nil {
			// Drop this batch's checks again; the caller decides how to
			// account for the unprotected members.
			checks = checks[:len(checks)-len(groups)]
			return err
		}
		rep.Batches++
		rep.LiveRegsSaved += savedRegs
		if saveFlags {
			rep.LiveFlagsSaved++
		}
		return nil
	}

	// Pass C: emit checks (merging within each batch) and patch.
	failed := make(map[int]bool) // member insts of batches that failed to patch
	var unprot []uint64          // operand addresses left unprotected
	for _, b := range batches {
		if err := instrument(b.Members); err != nil {
			// Leave this batch unprotected rather than fail the whole
			// rewrite.
			rep.FailedSites += len(b.Members)
			for _, m := range b.Members {
				failed[m] = true
				unprot = append(unprot, prog.Insts[m].Addr)
			}
		}
	}

	// Repair round: a site eliminated under a dominating check whose
	// batch failed to patch would be silently unprotected. Re-instrument
	// such dependents individually (their own bytes were never reserved,
	// so this is best-effort; failures are reported as unprotected).
	var repair []int
	for w, deps := range elimBy {
		if failed[w] {
			repair = append(repair, deps...)
		}
	}
	sort.Ints(repair)
	for _, i := range repair {
		s := elimSites[i]
		siteOf[i] = s
		if err := instrument([]int{i}); err != nil {
			rep.FailedSites++
			unprot = append(unprot, s.addr)
			continue
		}
		rep.ElimDominated--
		rep.Instrumented++
	}
	rep.Checks = len(checks)

	hard, err := rw.Finalize()
	if err != nil {
		return nil, nil, err
	}
	hard.AddSection(&relf.Section{
		Name: rtlib.SitesSection, Kind: relf.SecMeta,
		Data: rtlib.EncodeSites(checks),
	})
	hard.AddSection(&relf.Section{
		Name: ConfigSection, Kind: relf.SecMeta,
		Data: EncodeConfig(opt),
	})
	if len(unprot) > 0 {
		m := make(map[uint64]uint64, len(unprot))
		for _, a := range unprot {
			m[a] = 0
		}
		hard.AddSection(&relf.Section{
			Name: UnprotSection, Kind: relf.SecMeta,
			Data: relf.EncodePatchTable(m),
		})
	}
	rep.Rewrite = rw.Stats()
	return hard, rep, nil
}

// mergeKey identifies operands that may merge: same segment, base, index,
// scale and check mode (paper §6, "Check merging").
type mergeKey struct {
	seg         isa.Seg
	base, index isa.Reg
	scale       uint8
	mode        rtlib.Mode
	uniq        int // nonzero forces a singleton group (RIP-relative operands)
}

// mergeGroups partitions batch members into mergeable groups, preserving
// program order of group leaders.
func mergeGroups(members []int, siteOf map[int]*site, merge bool) [][]int {
	if !merge {
		out := make([][]int, 0, len(members))
		for _, m := range members {
			out = append(out, []int{m})
		}
		return out
	}
	var order []mergeKey
	byKey := make(map[mergeKey][]int)
	for _, m := range members {
		s := siteOf[m]
		k := mergeKey{
			seg:   s.inst.Mem.Seg,
			base:  s.inst.Mem.Base,
			index: s.inst.Mem.Index,
			scale: s.inst.Mem.Scale,
			mode:  s.mode,
		}
		if s.inst.Mem.Base == isa.RIP {
			// RIP-relative displacements are relative to different
			// instruction addresses; do not merge them.
			k.uniq = m + 1
		}
		if _, seen := byKey[k]; !seen {
			order = append(order, k)
		}
		byKey[k] = append(byKey[k], m)
	}
	out := make([][]int, 0, len(order))
	for _, k := range order {
		out = append(out, byKey[k])
	}
	return out
}

// buildCheck constructs the check record for a merge group.
func buildCheck(prog *cfg.Program, group []int, siteOf map[int]*site, opt Options) rtlib.Check {
	first := siteOf[group[0]]
	c := rtlib.Check{
		PC:          first.addr,
		Mode:        first.mode,
		Operand:     first.inst.Mem,
		NoSizeCheck: !opt.SizeCheck,
		Merged:      uint16(len(group)),
	}
	if first.inst.Mem.Base == isa.RIP {
		c.RipNext = first.addr + uint64(first.inst.Len)
	}
	minDisp := first.inst.Mem.Disp
	maxEnd := int64(first.inst.Mem.Disp) + int64(first.inst.MemWidth())
	for _, m := range group {
		s := siteOf[m]
		if s.write {
			c.Write = true
		}
		d := s.inst.Mem.Disp
		if d < minDisp {
			minDisp = d
		}
		if end := int64(d) + int64(s.inst.MemWidth()); end > maxEnd {
			maxEnd = end
		}
	}
	c.Operand.Disp = minDisp
	c.Len = uint32(maxEnd - int64(minDisp))
	return c
}
