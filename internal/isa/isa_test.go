package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, in Inst) Inst {
	t.Helper()
	buf, err := Encode(nil, &in)
	if err != nil {
		t.Fatalf("Encode(%v): %v", in.String(), err)
	}
	if int(in.Len) != len(buf) {
		t.Fatalf("Encode(%v): Len=%d, buffer=%d", in.String(), in.Len, len(buf))
	}
	out, err := Decode(buf)
	if err != nil {
		t.Fatalf("Decode(% x) of %v: %v", buf, in.String(), err)
	}
	if out.Len != in.Len {
		t.Fatalf("decode length %d != encode length %d for %v", out.Len, in.Len, in.String())
	}
	return out
}

func TestEncodeDecodeBasic(t *testing.T) {
	cases := []Inst{
		{Op: NOP, Form: FNone},
		{Op: TRAP, Form: FNone},
		{Op: RET, Form: FNone},
		{Op: HLT, Form: FNone},
		{Op: PUSHF, Form: FNone},
		{Op: POPF, Form: FNone},
		{Op: MOV, Form: FRR, Reg: RBX, Reg2: RAX},
		{Op: MOV, Form: FRR, Reg: R15, Reg2: R8},
		{Op: MOV, Form: FRI, Reg: RCX, Imm: 42},
		{Op: MOV, Form: FRI, Reg: RCX, Imm: -70000},
		{Op: MOVABS, Form: FRI, Reg: RDX, Imm: 0x1234567890},
		{Op: MOV, Form: FRM, Reg: RAX, Size: 8,
			Mem: Mem{Base: RBX, Index: RCX, Scale: 4, Disp: 0x10}},
		{Op: MOV, Form: FMR, Reg: RAX, Size: 4,
			Mem: Mem{Base: R13, Index: RegNone, Scale: 1}},
		{Op: MOV, Form: FMR, Reg: R9, Size: 1,
			Mem: Mem{Base: RSP, Index: RegNone, Scale: 1, Disp: -8}},
		{Op: MOV, Form: FMI, Size: 8, Imm: 0,
			Mem: Mem{Base: RAX, Index: RegNone, Scale: 1, Disp: 8}},
		{Op: MOV, Form: FRM, Reg: RSI, Size: 8,
			Mem: Mem{Base: RIP, Index: RegNone, Scale: 1, Disp: 0x2000}},
		{Op: MOV, Form: FRM, Reg: RDI, Size: 8,
			Mem: Mem{Base: RegNone, Index: RegNone, Scale: 1, Disp: 0x601000}},
		{Op: MOV, Form: FRM, Reg: RDI, Size: 8,
			Mem: Mem{Base: RegNone, Index: R12, Scale: 8, Disp: 0x601000}},
		{Op: MOV, Form: FRM, Reg: RDI, Size: 2,
			Mem: Mem{Seg: SegFS, Base: RAX, Index: RegNone, Scale: 1, Disp: 0x28}},
		{Op: LEA, Form: FRM, Reg: RAX,
			Mem: Mem{Base: RBP, Index: RDX, Scale: 2, Disp: -4}},
		{Op: ADD, Form: FRR, Reg: RAX, Reg2: RBX},
		{Op: ADD, Form: FRI, Reg: RSP, Imm: 32},
		{Op: ADD, Form: FMR, Reg: RCX, Size: 8,
			Mem: Mem{Base: RDI, Index: RegNone, Scale: 1}},
		{Op: CMP, Form: FRM, Reg: RAX, Size: 8,
			Mem: Mem{Base: RBX, Index: RegNone, Scale: 1, Disp: 127}},
		{Op: CMP, Form: FRI, Reg: RAX, Imm: 1000},
		{Op: TEST, Form: FRR, Reg: RAX, Reg2: RAX},
		{Op: IMUL, Form: FRR, Reg: RDX, Reg2: RSI},
		{Op: IMUL, Form: FRI, Reg: RDX, Imm: 24},
		{Op: SHL, Form: FRI, Reg: RAX, Imm: 3},
		{Op: SHR, Form: FRR, Reg: RAX, Reg2: RCX},
		{Op: INC, Form: FR, Reg: R14},
		{Op: DEC, Form: FM, Size: 4,
			Mem: Mem{Base: RBX, Index: RegNone, Scale: 1, Disp: 1 << 20}},
		{Op: NEG, Form: FR, Reg: RAX},
		{Op: NOT, Form: FR, Reg: RDX},
		{Op: UDIV, Form: FR, Reg: RCX},
		{Op: IDIV, Form: FR, Reg: RBX},
		{Op: PUSH, Form: FR, Reg: RBP},
		{Op: POP, Form: FR, Reg: RBP},
		{Op: PUSH, Form: FM, Size: 8, Mem: Mem{Base: RAX, Index: RegNone, Scale: 1}},
		{Op: MOVZX, Form: FRM, Reg: RAX, Size: 1,
			Mem: Mem{Base: RSI, Index: RDI, Scale: 1}},
		{Op: MOVSX, Form: FRM, Reg: RAX, Size: 4,
			Mem: Mem{Base: RSI, Index: RegNone, Scale: 1, Disp: 3}},
		{Op: XCHG, Form: FRR, Reg: RAX, Reg2: R11},
		{Op: JMP, Form: FRel32, Imm: 0x1000},
		{Op: JMP, Form: FRel8, Imm: -20},
		{Op: JMP, Form: FR, Reg: RAX},
		{Op: JMP, Form: FM, Size: 8, Mem: Mem{Base: RegNone, Index: RBX, Scale: 8, Disp: 0x400000}},
		{Op: CALL, Form: FRel32, Imm: -0x200},
		{Op: CALL, Form: FR, Reg: R10},
		{Op: JE, Form: FRel32, Imm: 64},
		{Op: JNE, Form: FRel8, Imm: 8},
		{Op: JA, Form: FRel32, Imm: 1 << 20},
		{Op: RTCALL, Form: FI, Imm: 0x1234},
	}
	for _, in := range cases {
		out := roundTrip(t, in)
		if out.Op != in.Op || out.Form != in.Form {
			t.Errorf("round trip %v: got %v", in.String(), out.String())
			continue
		}
		if in.Form == FRR && (out.Reg != in.Reg || out.Reg2 != in.Reg2) {
			t.Errorf("round trip %v: regs %v,%v", in.String(), out.Reg, out.Reg2)
		}
		if in.HasMem() {
			want, got := in.Mem, out.Mem
			if want.Scale == 0 {
				want.Scale = 1
			}
			if got != want {
				t.Errorf("round trip %v: mem %v != %v", in.String(), got, want)
			}
			if out.Size != normSize(in.Size) {
				t.Errorf("round trip %v: size %d != %d", in.String(), out.Size, in.Size)
			}
		}
		switch in.Form {
		case FRI, FMI, FI, FRel8, FRel32:
			if out.Imm != in.Imm {
				t.Errorf("round trip %v: imm %#x != %#x", in.String(), out.Imm, in.Imm)
			}
		}
	}
}

func normSize(s uint8) uint8 {
	if s == 0 {
		return 8
	}
	return s
}

func TestOneByteInstructions(t *testing.T) {
	for _, op := range []Op{NOP, TRAP, HLT, RET, PUSHF, POPF, CQO} {
		in := Inst{Op: op, Form: FNone}
		buf, err := Encode(nil, &in)
		if err != nil {
			t.Fatalf("Encode(%v): %v", op, err)
		}
		if len(buf) != 1 {
			t.Errorf("%v encodes to %d bytes, want 1", op, len(buf))
		}
	}
}

func TestJumpEncodingLengths(t *testing.T) {
	short := Inst{Op: JMP, Form: FRel8, Imm: 5}
	long := Inst{Op: JMP, Form: FRel32, Imm: 5}
	sb, err := Encode(nil, &short)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := Encode(nil, &long)
	if err != nil {
		t.Fatal(err)
	}
	// These lengths are load-bearing for the e9 patch tactics.
	if len(sb) != 3 {
		t.Errorf("jmp rel8 is %d bytes, want 3", len(sb))
	}
	if len(lb) != 6 {
		t.Errorf("jmp rel32 is %d bytes, want 6", len(lb))
	}
}

func TestEncodeErrors(t *testing.T) {
	cases := []Inst{
		{Op: BAD, Form: FNone},
		{Op: RET, Form: FR, Reg: RAX},                // no-operand op with operand
		{Op: MOV, Form: FRI, Reg: RAX, Imm: 1 << 40}, // needs movabs
		{Op: JMP, Form: FRel8, Imm: 300},             // rel8 overflow
		{Op: LEA, Form: FMR, Reg: RAX, Mem: Mem{Base: RBX, Index: RegNone, Scale: 1}}, // lea store
		{Op: MOV, Form: FRM, Reg: RAX,
			Mem: Mem{Base: RBX, Index: RSP, Scale: 1}}, // rsp index
		{Op: MOV, Form: FRM, Reg: RAX,
			Mem: Mem{Base: RIP, Index: RCX, Scale: 1}}, // rip with index
		{Op: MOV, Form: FRM, Reg: RAX,
			Mem: Mem{Base: RBX, Index: RCX, Scale: 3}}, // bad scale
		{Op: RTCALL, Form: FRel32, Imm: 0},
	}
	for _, in := range cases {
		if _, err := Encode(nil, &in); err == nil {
			t.Errorf("Encode(%+v) succeeded, want error", in)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := [][]byte{
		{},                       // empty
		{0x00},                   // BAD opcode
		{0xF0},                   // out-of-range opcode
		{byte(MOV)},              // missing descriptor
		{byte(MOV), byte(FRR)},   // missing modrm
		{0x40},                   // lone REX prefix
		{0x64, byte(RET)},        // prefix on no-operand op
		{byte(MOV), byte(FRel8)}, // invalid form for op
		{byte(JMP), byte(FRel32) | imm32<<6, 1, 2}, // truncated imm32
	}
	for _, code := range cases {
		if _, err := Decode(code); err == nil {
			t.Errorf("Decode(% x) succeeded, want error", code)
		}
	}
}

// randomInst builds a random but valid instruction for property testing.
func randomInst(r *rand.Rand) Inst {
	regs := []Reg{RAX, RCX, RDX, RBX, RSP, RBP, RSI, RDI, R8, R9, R10, R11, R12, R13, R14, R15}
	idxRegs := []Reg{RAX, RCX, RDX, RBX, RBP, RSI, RDI, R8, R9, R10, R11, R12, R13, R14, R15, RegNone}
	sizes := []uint8{1, 2, 4, 8}
	scales := []uint8{1, 2, 4, 8}
	segs := []Seg{SegNone, SegNone, SegNone, SegFS, SegGS}

	randMem := func() Mem {
		m := Mem{
			Seg:   segs[r.Intn(len(segs))],
			Base:  regs[r.Intn(len(regs))],
			Index: idxRegs[r.Intn(len(idxRegs))],
			Scale: scales[r.Intn(len(scales))],
			Disp:  int32(r.Int63()),
		}
		switch r.Intn(5) {
		case 0:
			m.Base = RegNone // index-only or absolute
		case 1:
			m.Base = RIP
			m.Index = RegNone
		case 2:
			m.Disp = int32(int8(r.Int63())) // small disp
		case 3:
			m.Disp = 0
		}
		return m
	}

	type shape struct {
		op   Op
		form Form
	}
	shapes := []shape{
		{MOV, FRR}, {MOV, FRM}, {MOV, FMR}, {MOV, FRI}, {MOV, FMI},
		{MOVABS, FRI}, {MOVZX, FRM}, {MOVSX, FRM}, {LEA, FRM},
		{PUSH, FR}, {POP, FR}, {PUSH, FM}, {XCHG, FRR},
		{ADD, FRR}, {ADD, FRM}, {ADD, FMR}, {ADD, FRI}, {ADD, FMI},
		{SUB, FRM}, {AND, FMR}, {OR, FRI}, {XOR, FRR},
		{CMP, FRM}, {CMP, FRI}, {TEST, FRR},
		{IMUL, FRR}, {IMUL, FRI}, {INC, FR}, {DEC, FM},
		{NEG, FR}, {NOT, FR}, {SHL, FRI}, {SHR, FRR}, {SAR, FRI},
		{UDIV, FR}, {IDIV, FR},
		{JMP, FRel8}, {JMP, FRel32}, {JMP, FR}, {JMP, FM},
		{CALL, FRel32}, {CALL, FR},
		{JE, FRel32}, {JNE, FRel8}, {JG, FRel32}, {JBE, FRel8},
		{RTCALL, FI},
	}
	s := shapes[r.Intn(len(shapes))]
	in := Inst{Op: s.op, Form: s.form, Reg: RegNone, Reg2: RegNone,
		Mem: Mem{Base: RegNone, Index: RegNone, Scale: 1}}
	switch s.form {
	case FR, FRI:
		in.Reg = regs[r.Intn(len(regs))]
	case FRR:
		in.Reg = regs[r.Intn(len(regs))]
		in.Reg2 = regs[r.Intn(len(regs))]
	case FRM, FMR:
		in.Reg = regs[r.Intn(len(regs))]
		in.Mem = randMem()
	case FM, FMI:
		in.Mem = randMem()
	}
	if in.HasMem() || s.form == FMR || s.form == FRM {
		in.Size = sizes[r.Intn(len(sizes))]
	} else {
		in.Size = 8
	}
	switch s.form {
	case FRI, FMI:
		if s.op == MOVABS {
			in.Imm = int64(r.Uint64())
		} else if s.op == SHL || s.op == SAR {
			in.Imm = int64(r.Intn(64))
		} else {
			in.Imm = int64(int32(r.Uint32()))
		}
	case FI:
		in.Imm = int64(int32(r.Uint32()))
	case FRel8:
		in.Imm = int64(int8(r.Uint32()))
	case FRel32:
		in.Imm = int64(int32(r.Uint32()))
	}
	// Respect encoding constraints the encoder rejects.
	if in.Mem.Base == RIP {
		in.Mem.Index = RegNone
	}
	if in.Mem.Index == RSP {
		in.Mem.Index = RegNone
	}
	return in
}

// TestQuickRoundTrip is the central encoder/decoder property:
// Decode(Encode(i)) == i for every valid instruction.
func TestQuickRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func() bool {
		in := randomInst(r)
		buf, err := Encode(nil, &in)
		if err != nil {
			t.Fatalf("Encode(%v): %v", in.String(), err)
		}
		out, err := Decode(buf)
		if err != nil {
			t.Fatalf("Decode(%v = % x): %v", in.String(), buf, err)
		}
		// Normalize fields that legitimately canonicalize.
		want := in
		want.Len = out.Len
		if !want.HasMem() {
			want.Mem = Mem{Base: RegNone, Index: RegNone, Scale: 1}
		}
		if want.Mem.Scale == 0 {
			want.Mem.Scale = 1
		}
		if !want.Mem.HasIndex() {
			want.Mem.Scale = out.Mem.Scale // scale is meaningless without index
		}
		if want.Size == 0 {
			want.Size = 8
		}
		switch want.Form {
		case FR, FRI:
			want.Reg2 = RegNone
		case FNone, FI, FRel8, FRel32:
			want.Reg, want.Reg2 = RegNone, RegNone
		}
		if out != want {
			t.Logf("in:  %+v", want)
			t.Logf("out: %+v", out)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// TestDecodeLenMatchesBytes verifies that decoding consumes exactly the
// encoded bytes even when followed by other data.
func TestDecodeLenMatchesBytes(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		in := randomInst(r)
		buf, err := Encode(nil, &in)
		if err != nil {
			t.Fatal(err)
		}
		enc := len(buf)
		// Append garbage; decode must stop at the instruction boundary.
		buf = append(buf, 0xEE, 0xFF, 0x01)
		out, err := Decode(buf)
		if err != nil {
			t.Fatalf("Decode(%v): %v", in.String(), err)
		}
		if int(out.Len) != enc {
			t.Fatalf("%v: decoded len %d, encoded len %d", in.String(), out.Len, enc)
		}
		if enc > MaxInstLen {
			t.Fatalf("%v: length %d exceeds MaxInstLen", in.String(), enc)
		}
	}
}

func TestMemString(t *testing.T) {
	m := Mem{Seg: SegGS, Disp: 0x10, Base: RAX, Index: RBX, Scale: 4}
	if got := m.String(); got != "%gs:0x10(%rax,%rbx,4)" {
		t.Errorf("Mem.String() = %q", got)
	}
	abs := Mem{Disp: 0x601000, Base: RegNone, Index: RegNone}
	if got := abs.String(); got != "0x601000" {
		t.Errorf("absolute Mem.String() = %q", got)
	}
}

func TestAccessClassification(t *testing.T) {
	load := Inst{Op: MOV, Form: FRM, Reg: RAX, Size: 8,
		Mem: Mem{Base: RBX, Index: RegNone, Scale: 1}}
	store := Inst{Op: MOV, Form: FMR, Reg: RAX, Size: 4,
		Mem: Mem{Base: RBX, Index: RegNone, Scale: 1}}
	lea := Inst{Op: LEA, Form: FRM, Reg: RAX,
		Mem: Mem{Base: RBX, Index: RegNone, Scale: 1}}
	rmw := Inst{Op: ADD, Form: FMR, Reg: RAX, Size: 8,
		Mem: Mem{Base: RBX, Index: RegNone, Scale: 1}}
	cmp := Inst{Op: CMP, Form: FMR, Reg: RAX, Size: 8,
		Mem: Mem{Base: RBX, Index: RegNone, Scale: 1}}

	if !load.Reads() || load.Writes() {
		t.Error("load misclassified")
	}
	if store.Reads() || !store.Writes() {
		t.Error("store misclassified")
	}
	if store.MemWidth() != 4 {
		t.Errorf("store width = %d", store.MemWidth())
	}
	if lea.IsMemAccess() {
		t.Error("lea classified as memory access")
	}
	if !rmw.Reads() || !rmw.Writes() {
		t.Error("read-modify-write misclassified")
	}
	if !cmp.Reads() || cmp.Writes() {
		t.Error("cmp-to-mem misclassified")
	}
}

func TestRegNames(t *testing.T) {
	for r := Reg(0); r < NumRegs; r++ {
		got, ok := RegFromName(r.String())
		if !ok || got != r {
			t.Errorf("RegFromName(%q) = %v, %v", r.String(), got, ok)
		}
	}
	if _, ok := RegFromName("%bogus"); ok {
		t.Error("RegFromName accepted bogus register")
	}
	if r, ok := RegFromName("rip"); !ok || r != RIP {
		t.Error("RegFromName(rip) failed")
	}
}

func TestOpNames(t *testing.T) {
	for op := NOP; op < opMax; op++ {
		got, ok := OpFromName(op.String())
		if !ok || got != op {
			t.Errorf("OpFromName(%q) = %v, %v", op.String(), got, ok)
		}
	}
}
