package isa

import (
	"encoding/binary"
	"fmt"
)

// RF64 binary encoding.
//
// An instruction is laid out as:
//
//	[seg prefix]? [rex]? opcode [desc]? [modrm]? [sib]? [disp8|disp32]? [imm]?
//
// Prefixes:
//
//	0x64 — FS segment override
//	0x65 — GS segment override
//	0x40..0x47 — REX-style register-extension prefix:
//	    bit 0 (B): extends ModRM.rm / SIB.base
//	    bit 1 (X): extends SIB.index
//	    bit 2 (R): extends ModRM.reg
//
// The opcode byte is the Op value itself (1..opMax-1). Zero-operand ops
// (NOP, TRAP, HLT, RET, PUSHF, POPF, CQO, LPAD) are exactly one byte; every
// other op is followed by a descriptor byte:
//
//	bits 0..3: Form
//	bits 4..5: size code (0 → 8 bytes, 1 → 1, 2 → 2, 3 → 4)
//	bits 6..7: immediate width code (0 → none, 1 → imm8, 2 → imm32, 3 → imm64)
//
// ModRM and SIB follow x86-64 semantics:
//
//	mod=3: rm is a register (register-direct forms)
//	mod=0: [base]; rm=0b100 → SIB follows; rm=0b101 → RIP+disp32
//	mod=1: [base]+disp8
//	mod=2: [base]+disp32
//	SIB: scale(2)|index(3)|base(3); index=0b100 → none (RSP cannot index);
//	     base=0b101 with mod=0 → absolute disp32, no base register
//
// Consequences relevant to the rewriter: instructions are 1 byte (the
// no-operand group) or ≥3 bytes; `jmp rel32` is 6 bytes and `jmp rel8` is
// 3 bytes, which defines the patch-tactic thresholds in internal/e9.
const (
	prefixFS  = 0x64
	prefixGS  = 0x65
	prefixREX = 0x40 // 0x40..0x47
	rexB      = 1 << 0
	rexX      = 1 << 1
	rexR      = 1 << 2
)

// MaxInstLen is the maximum encoded instruction length in bytes.
const MaxInstLen = 16

// Immediate width codes in the descriptor byte.
const (
	immNone = 0
	imm8    = 1
	imm32   = 2
	imm64   = 3
)

func sizeCode(size uint8) (uint8, error) {
	switch size {
	case 0, 8:
		return 0, nil
	case 1:
		return 1, nil
	case 2:
		return 2, nil
	case 4:
		return 3, nil
	}
	return 0, fmt.Errorf("isa: bad operand size %d", size)
}

func sizeFromCode(code uint8) uint8 {
	switch code & 3 {
	case 1:
		return 1
	case 2:
		return 2
	case 3:
		return 4
	}
	return 8
}

func isNoOperand(op Op) bool {
	switch op {
	case NOP, TRAP, HLT, RET, PUSHF, POPF, CQO, LPAD:
		return true
	}
	return false
}

// validForm reports whether form is an acceptable operand shape for op.
// The encoder and decoder share this single source of truth.
func validForm(op Op, form Form) bool {
	switch op {
	case NOP, TRAP, HLT, RET, PUSHF, POPF, CQO, LPAD:
		return form == FNone
	case MOV:
		switch form {
		case FRR, FRM, FMR, FRI, FMI:
			return true
		}
	case MOVABS:
		return form == FRI
	case MOVZX, MOVSX:
		return form == FRM
	case LEA:
		return form == FRM
	case PUSH, POP:
		return form == FR || form == FM
	case XCHG:
		return form == FRR
	case ADD, SUB, AND, OR, XOR, CMP, TEST:
		switch form {
		case FRR, FRM, FMR, FRI, FMI:
			return true
		}
	case IMUL:
		switch form {
		case FRR, FRM, FRI:
			return true
		}
	case INC, DEC, NEG, NOT:
		return form == FR || form == FM
	case SHL, SHR, SAR:
		return form == FRI || form == FRR // FRR means shift by %cl
	case UDIV, IDIV:
		return form == FR
	case JMP:
		switch form {
		case FRel8, FRel32, FR, FM:
			return true
		}
	case CALL:
		switch form {
		case FRel32, FR, FM:
			return true
		}
	case RTCALL:
		return form == FI
	default:
		if op.IsCondJump() {
			return form == FRel8 || form == FRel32
		}
	}
	return false
}

// immWidth decides the immediate width code for an instruction instance.
func immWidth(in *Inst) (uint8, error) {
	switch in.Form {
	case FRI, FMI:
		if in.Op == MOVABS {
			return imm64, nil
		}
		if in.Imm >= -128 && in.Imm <= 127 {
			return imm8, nil
		}
		if in.Imm >= -(1<<31) && in.Imm < (1<<31) {
			return imm32, nil
		}
		return 0, fmt.Errorf("isa: immediate %#x needs movabs", in.Imm)
	case FI:
		return imm32, nil
	case FRel8:
		if in.Imm < -128 || in.Imm > 127 {
			return 0, fmt.Errorf("isa: rel8 displacement %d out of range", in.Imm)
		}
		return imm8, nil
	case FRel32:
		if in.Imm < -(1<<31) || in.Imm >= (1<<31) {
			return 0, fmt.Errorf("isa: rel32 displacement %d out of range", in.Imm)
		}
		return imm32, nil
	case FRR:
		if in.Op == SHL || in.Op == SHR || in.Op == SAR {
			return immNone, nil
		}
		return immNone, nil
	}
	return immNone, nil
}

// Encode appends the binary encoding of in to dst and returns the extended
// slice. It sets in.Len as a side effect.
func Encode(dst []byte, in *Inst) ([]byte, error) {
	if in.Op == BAD || in.Op >= opMax {
		return dst, fmt.Errorf("isa: cannot encode op %v", in.Op)
	}
	if !validForm(in.Op, in.Form) {
		return dst, fmt.Errorf("isa: op %v does not accept form %v", in.Op, in.Form)
	}
	start := len(dst)

	if isNoOperand(in.Op) {
		dst = append(dst, byte(in.Op))
		in.Len = uint8(len(dst) - start)
		return dst, nil
	}

	szCode, err := sizeCode(in.Size)
	if err != nil {
		return dst, err
	}
	iw, err := immWidth(in)
	if err != nil {
		return dst, err
	}

	// Segment prefix.
	if in.HasMem() {
		switch in.Mem.Seg {
		case SegFS:
			dst = append(dst, prefixFS)
		case SegGS:
			dst = append(dst, prefixGS)
		}
	}

	// Work out REX bits and ModRM/SIB.
	var rex, modrm, sib byte
	var haveModRM, haveSIB bool
	var disp int32
	var dispWidth int // 0, 1 or 4 bytes

	setReg := func(r Reg) { // ModRM.reg field
		if r >= 8 && r < NumRegs {
			rex |= rexR
		}
		modrm |= (byte(r) & 7) << 3
	}
	setRM := func(r Reg) { // ModRM.rm field, mod=3
		modrm |= 3 << 6
		if r >= 8 && r < NumRegs {
			rex |= rexB
		}
		modrm |= byte(r) & 7
	}
	setMem := func(m Mem) error {
		haveModRM = true
		disp = m.Disp
		switch {
		case m.Base == RIP:
			if m.HasIndex() {
				return fmt.Errorf("isa: rip-relative operand cannot have an index")
			}
			modrm |= 0b101 // mod=0, rm=101 → RIP+disp32
			dispWidth = 4
			return nil
		case !m.HasBase() && !m.HasIndex():
			// Absolute disp32: SIB with base=101, index=100, mod=0.
			modrm |= 0b100
			haveSIB = true
			sib = 0b00_100_101
			dispWidth = 4
			return nil
		}
		// General base/index forms.
		mod := byte(0)
		switch {
		case m.Disp == 0 && (byte(m.Base)&7) != 0b101:
			// mod=0 needs base low bits != 101 (that slot means RIP/abs).
			mod = 0
			dispWidth = 0
		case m.Disp >= -128 && m.Disp <= 127:
			mod = 1
			dispWidth = 1
		default:
			mod = 2
			dispWidth = 4
		}
		if !m.HasBase() {
			// Index without base: must use SIB with base=101, mod=0, disp32.
			mod = 0
			dispWidth = 4
		}
		modrm |= mod << 6
		if m.HasIndex() || !m.HasBase() || (byte(m.Base)&7) == 0b100 {
			// Need SIB (x86 rule: rm=100 selects SIB; RSP/R12 base forces it).
			modrm |= 0b100
			haveSIB = true
			switch m.Scale {
			case 0, 1:
				sib |= 0 << 6
			case 2:
				sib |= 1 << 6
			case 4:
				sib |= 2 << 6
			case 8:
				sib |= 3 << 6
			default:
				return fmt.Errorf("isa: bad scale %d", m.Scale)
			}
			if m.HasIndex() {
				if m.Index == RSP {
					return fmt.Errorf("isa: %%rsp cannot be an index register")
				}
				if m.Index >= 8 && m.Index < NumRegs {
					rex |= rexX
				}
				sib |= (byte(m.Index) & 7) << 3
			} else {
				sib |= 0b100 << 3
			}
			if m.HasBase() {
				if m.Base >= 8 && m.Base < NumRegs {
					rex |= rexB
				}
				sib |= byte(m.Base) & 7
			} else {
				sib |= 0b101
			}
		} else {
			if m.Base >= 8 && m.Base < NumRegs {
				rex |= rexB
			}
			modrm |= byte(m.Base) & 7
		}
		return nil
	}

	switch in.Form {
	case FR, FRI:
		haveModRM = true
		setReg(in.Reg)
		modrm |= 3 << 6
	case FRR:
		haveModRM = true
		setReg(in.Reg)
		setRM(in.Reg2)
	case FRM, FMR:
		setReg(in.Reg)
		if err := setMem(in.Mem); err != nil {
			return dst, err
		}
	case FM, FMI:
		if err := setMem(in.Mem); err != nil {
			return dst, err
		}
	case FI, FRel8, FRel32:
		// no modrm
	}

	if rex != 0 {
		dst = append(dst, prefixREX|rex)
	}
	dst = append(dst, byte(in.Op))
	desc := byte(in.Form) | szCode<<4 | iw<<6
	dst = append(dst, desc)
	if haveModRM {
		dst = append(dst, modrm)
	}
	if haveSIB {
		dst = append(dst, sib)
	}
	switch dispWidth {
	case 1:
		dst = append(dst, byte(disp))
	case 4:
		dst = binary.LittleEndian.AppendUint32(dst, uint32(disp))
	}
	switch iw {
	case imm8:
		dst = append(dst, byte(in.Imm))
	case imm32:
		dst = binary.LittleEndian.AppendUint32(dst, uint32(in.Imm))
	case imm64:
		dst = binary.LittleEndian.AppendUint64(dst, uint64(in.Imm))
	}
	in.Len = uint8(len(dst) - start)
	return dst, nil
}

// EncodeLen returns the encoded length of in without materializing it.
func EncodeLen(in *Inst) (int, error) {
	buf, err := Encode(make([]byte, 0, MaxInstLen), in)
	if err != nil {
		return 0, err
	}
	return len(buf), nil
}

// Decode decodes a single instruction from code. It returns the decoded
// instruction with Len set to the number of bytes consumed.
func Decode(code []byte) (Inst, error) {
	var in Inst
	pos := 0
	need := func(n int) error {
		if pos+n > len(code) {
			return fmt.Errorf("isa: truncated instruction at offset %d", pos)
		}
		return nil
	}

	// Prefixes.
	seg := SegNone
	var rex byte
	for {
		if err := need(1); err != nil {
			return in, err
		}
		b := code[pos]
		switch {
		case b == prefixFS:
			seg = SegFS
			pos++
			continue
		case b == prefixGS:
			seg = SegGS
			pos++
			continue
		case b >= prefixREX && b <= prefixREX|7:
			rex = b & 7
			pos++
			continue
		}
		break
	}

	op := Op(code[pos])
	pos++
	if op == BAD || op >= opMax {
		return in, fmt.Errorf("isa: bad opcode %#x", byte(op))
	}
	in.Op = op
	in.Size = 8
	in.Reg = RegNone
	in.Reg2 = RegNone
	in.Mem = Mem{Base: RegNone, Index: RegNone, Scale: 1}

	if isNoOperand(op) {
		if seg != SegNone || rex != 0 {
			return in, fmt.Errorf("isa: prefix on no-operand op %v", op)
		}
		in.Form = FNone
		in.Len = uint8(pos)
		return in, nil
	}

	if err := need(1); err != nil {
		return in, err
	}
	desc := code[pos]
	pos++
	in.Form = Form(desc & 0x0F)
	in.Size = sizeFromCode(desc >> 4)
	iw := desc >> 6
	if !validForm(op, in.Form) {
		return in, fmt.Errorf("isa: op %v does not accept form %v", op, in.Form)
	}

	decodeMem := func(modrm byte) error {
		mod := modrm >> 6
		rm := modrm & 7
		m := &in.Mem
		m.Seg = seg
		switch {
		case mod == 0 && rm == 0b101:
			m.Base = RIP
			if err := need(4); err != nil {
				return err
			}
			m.Disp = int32(binary.LittleEndian.Uint32(code[pos:]))
			pos += 4
			return nil
		case rm == 0b100:
			if err := need(1); err != nil {
				return err
			}
			sib := code[pos]
			pos++
			m.Scale = 1 << (sib >> 6)
			// index=0b100 means "no index" only without REX.X; with
			// REX.X set it denotes %r12 (x86-64 rule).
			idx := (sib >> 3) & 7
			if idx != 0b100 || rex&rexX != 0 {
				m.Index = Reg(idx)
				if rex&rexX != 0 {
					m.Index += 8
				}
			}
			base := sib & 7
			if base == 0b101 && mod == 0 {
				m.Base = RegNone
				if err := need(4); err != nil {
					return err
				}
				m.Disp = int32(binary.LittleEndian.Uint32(code[pos:]))
				pos += 4
				return nil
			}
			m.Base = Reg(base)
			if rex&rexB != 0 {
				m.Base += 8
			}
		default:
			m.Base = Reg(rm)
			if rex&rexB != 0 {
				m.Base += 8
			}
		}
		switch mod {
		case 1:
			if err := need(1); err != nil {
				return err
			}
			m.Disp = int32(int8(code[pos]))
			pos++
		case 2:
			if err := need(4); err != nil {
				return err
			}
			m.Disp = int32(binary.LittleEndian.Uint32(code[pos:]))
			pos += 4
		}
		return nil
	}

	switch in.Form {
	case FR, FRI:
		if err := need(1); err != nil {
			return in, err
		}
		modrm := code[pos]
		pos++
		if modrm>>6 != 3 {
			return in, fmt.Errorf("isa: register form with mod=%d", modrm>>6)
		}
		in.Reg = Reg((modrm >> 3) & 7)
		if rex&rexR != 0 {
			in.Reg += 8
		}
	case FRR:
		if err := need(1); err != nil {
			return in, err
		}
		modrm := code[pos]
		pos++
		if modrm>>6 != 3 {
			return in, fmt.Errorf("isa: rr form with mod=%d", modrm>>6)
		}
		in.Reg = Reg((modrm >> 3) & 7)
		if rex&rexR != 0 {
			in.Reg += 8
		}
		in.Reg2 = Reg(modrm & 7)
		if rex&rexB != 0 {
			in.Reg2 += 8
		}
	case FRM, FMR:
		if err := need(1); err != nil {
			return in, err
		}
		modrm := code[pos]
		pos++
		in.Reg = Reg((modrm >> 3) & 7)
		if rex&rexR != 0 {
			in.Reg += 8
		}
		if err := decodeMem(modrm); err != nil {
			return in, err
		}
	case FM, FMI:
		if err := need(1); err != nil {
			return in, err
		}
		modrm := code[pos]
		pos++
		if err := decodeMem(modrm); err != nil {
			return in, err
		}
	}

	switch iw {
	case imm8:
		if err := need(1); err != nil {
			return in, err
		}
		in.Imm = int64(int8(code[pos]))
		pos++
	case imm32:
		if err := need(4); err != nil {
			return in, err
		}
		in.Imm = int64(int32(binary.LittleEndian.Uint32(code[pos:])))
		pos += 4
	case imm64:
		if err := need(8); err != nil {
			return in, err
		}
		in.Imm = int64(binary.LittleEndian.Uint64(code[pos:]))
		pos += 8
	}

	// Immediate-bearing forms must actually have an immediate.
	switch in.Form {
	case FRI, FMI, FI, FRel8, FRel32:
		if iw == immNone {
			return in, fmt.Errorf("isa: form %v lacks immediate", in.Form)
		}
	}

	in.Len = uint8(pos)
	return in, nil
}
