// Package isa defines the RF64 instruction set architecture: an x86-64
// subset used throughout RedFat-Go as the binary-code substrate.
//
// RF64 mirrors the properties of x86-64 that the RedFat paper's techniques
// depend on:
//
//   - sixteen 64-bit general-purpose registers plus RIP and an EFLAGS-style
//     flags register;
//   - memory operands of the general x86-64 form
//     seg:disp(base, index, scale), combining pointer arithmetic and memory
//     access in a single instruction (paper §3, "Pointer arithmetic");
//   - a variable-length binary encoding (1..16 bytes) with REX-style
//     prefixes, ModRM/SIB operand bytes, and rel8/rel32 branch forms, so
//     that trampoline patch tactics (jmp rel32, jmp rel8, 1-byte trap) face
//     the same constraints as on real x86-64.
//
// The byte-level opcode map is RF64's own (documented in encode.go); the
// operand model and ModRM/SIB semantics follow x86-64.
package isa

import "fmt"

// Reg is a general-purpose register number. The numbering follows x86-64:
// the low 3 bits go in ModRM/SIB fields and the 4th bit in the REX-style
// prefix.
type Reg uint8

// General purpose registers.
const (
	RAX Reg = iota
	RCX
	RDX
	RBX
	RSP
	RBP
	RSI
	RDI
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15

	// RegNone marks an absent base or index register in a memory operand.
	RegNone Reg = 0xFF
	// RIP is the pseudo register for RIP-relative memory operands.
	RIP Reg = 0xFE
)

// NumRegs is the number of addressable general-purpose registers.
const NumRegs = 16

var regNames = [NumRegs]string{
	"rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
	"r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
}

// String returns the AT&T-style name of the register (without size suffix).
func (r Reg) String() string {
	switch {
	case r < NumRegs:
		return "%" + regNames[r]
	case r == RIP:
		return "%rip"
	case r == RegNone:
		return "%none"
	}
	return fmt.Sprintf("%%bad(%d)", uint8(r))
}

// RegFromName maps a register name (with or without the leading '%') to a
// Reg. The boolean reports whether the name was recognized.
func RegFromName(name string) (Reg, bool) {
	if len(name) > 0 && name[0] == '%' {
		name = name[1:]
	}
	for i, n := range regNames {
		if n == name {
			return Reg(i), true
		}
	}
	if name == "rip" {
		return RIP, true
	}
	return RegNone, false
}

// Seg is a segment override. RF64 supports the two segment overrides that
// survive into x86-64 (FS and GS); everything else uses the flat address
// space.
type Seg uint8

// Segment override values.
const (
	SegNone Seg = iota
	SegFS
	SegGS
)

// String returns the AT&T segment prefix ("%fs:", "%gs:" or "").
func (s Seg) String() string {
	switch s {
	case SegFS:
		return "%fs:"
	case SegGS:
		return "%gs:"
	}
	return ""
}

// Mem is a memory operand: the 5-tuple seg:disp(base, index, scale) of
// paper §4.1. Semantically it denotes the address
//
//	segbase(Seg) + Disp + value(Base) + value(Index)*Scale
//
// with absent components contributing zero (and Scale one).
type Mem struct {
	Seg   Seg
	Disp  int32
	Base  Reg // RegNone if absent; RIP for RIP-relative
	Index Reg // RegNone if absent; never RSP/RIP
	Scale uint8
}

// HasBase reports whether the operand has a base register (including RIP).
func (m Mem) HasBase() bool { return m.Base != RegNone }

// HasIndex reports whether the operand has an index register.
func (m Mem) HasIndex() bool { return m.Index != RegNone }

// IsAbsolute reports whether the operand is a bare disp32 absolute address.
func (m Mem) IsAbsolute() bool { return !m.HasBase() && !m.HasIndex() }

// String renders the operand in AT&T syntax, e.g. "%gs:0x10(%rax,%rbx,4)".
func (m Mem) String() string {
	s := m.Seg.String()
	if m.Disp != 0 || m.IsAbsolute() {
		s += fmt.Sprintf("%#x", m.Disp)
	}
	if !m.HasBase() && !m.HasIndex() {
		return s
	}
	s += "("
	if m.HasBase() {
		s += m.Base.String()
	}
	if m.HasIndex() {
		s += "," + m.Index.String()
		s += fmt.Sprintf(",%d", m.Scale)
	}
	return s + ")"
}

// Op is an RF64 operation mnemonic.
type Op uint8

// Operations. The set is a pragmatic x86-64 subset: enough for compiled
// C/C++/Fortran-style code (the workload generators), the trampoline code
// emitted by the rewriter, and the runtime-call glue.
const (
	BAD Op = iota

	// No-operand instructions.
	NOP   // 1-byte no-op
	TRAP  // 1-byte trap; consults the VM patch table (models int3 punning)
	HLT   // halt the machine (process exit)
	RET   // pop return address, jump
	PUSHF // push flags
	POPF  // pop flags
	CQO   // sign-extend RAX into RDX (for IDIV)

	// Data movement.
	MOV    // general move (reg/reg, load, store, imm)
	MOVABS // 64-bit immediate load into register
	MOVZX  // zero-extending load (size = source width)
	MOVSX  // sign-extending load (size = source width)
	LEA    // load effective address
	PUSH   // push register
	POP    // pop register
	XCHG   // exchange reg with reg/mem

	// ALU. Two-operand forms; CMP/TEST set flags only.
	ADD
	SUB
	AND
	OR
	XOR
	CMP
	TEST
	IMUL // two-operand signed multiply (reg ← reg * rm)
	INC
	DEC
	NEG
	NOT
	SHL // shift by imm8 or by CL
	SHR
	SAR
	UDIV // unsigned divide: RDX:RAX / rm → RAX quot, RDX rem
	IDIV // signed divide: RDX:RAX / rm → RAX quot, RDX rem

	// Control flow.
	JMP  // rel8/rel32, or indirect through reg/mem
	CALL // rel32 or indirect through reg/mem
	JE
	JNE
	JL
	JLE
	JG
	JGE
	JB
	JBE
	JA
	JAE
	JS
	JNS
	JO
	JNO

	// RTCALL invokes a host runtime function identified by a 32-bit
	// immediate. It models both PLT calls into shared libraries (libc,
	// the LD_PRELOADed libredfat allocator) and the rewriter-emitted
	// calls into the libredfat check routines.
	RTCALL

	// LPAD is a CET-style landing pad (models ENDBR64): a 1-byte no-op
	// that marks a legal indirect-branch target. When a binary opts in
	// via its .rf.config, indirect JMP/CALL to an address whose first
	// byte is not an LPAD faults in the VM, which is what makes the
	// marker-based indirect-flow recovery in internal/cfg sound.
	LPAD

	opMax
)

// NumOps is the number of defined operations (including BAD); Op values
// are always < NumOps, so it sizes per-opcode lookup tables.
const NumOps = int(opMax)

var opNames = [...]string{
	BAD: "(bad)", NOP: "nop", TRAP: "trap", HLT: "hlt", RET: "ret",
	PUSHF: "pushf", POPF: "popf", CQO: "cqo",
	MOV: "mov", MOVABS: "movabs", MOVZX: "movzx", MOVSX: "movsx",
	LEA: "lea", PUSH: "push", POP: "pop", XCHG: "xchg",
	ADD: "add", SUB: "sub", AND: "and", OR: "or", XOR: "xor",
	CMP: "cmp", TEST: "test", IMUL: "imul", INC: "inc", DEC: "dec",
	NEG: "neg", NOT: "not", SHL: "shl", SHR: "shr", SAR: "sar",
	UDIV: "udiv", IDIV: "idiv",
	JMP: "jmp", CALL: "call",
	JE: "je", JNE: "jne", JL: "jl", JLE: "jle", JG: "jg", JGE: "jge",
	JB: "jb", JBE: "jbe", JA: "ja", JAE: "jae", JS: "js", JNS: "jns",
	JO: "jo", JNO: "jno",
	RTCALL: "rtcall",
	LPAD:   "lpad",
}

// String returns the mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// OpFromName maps a mnemonic back to an Op.
func OpFromName(name string) (Op, bool) {
	for op, n := range opNames {
		if n == name && Op(op) != BAD {
			return Op(op), true
		}
	}
	return BAD, false
}

// IsCondJump reports whether o is a conditional jump.
func (o Op) IsCondJump() bool { return o >= JE && o <= JNO }

// IsBranch reports whether o transfers control (jump, call, ret, halt).
func (o Op) IsBranch() bool {
	return o == JMP || o == CALL || o == RET || o == HLT || o.IsCondJump()
}

// Form describes the operand shape of an instruction instance.
type Form uint8

// Instruction operand forms.
const (
	FNone  Form = iota // no operands
	FR                 // single register
	FM                 // single memory operand
	FRR                // reg ← reg (dst, src)
	FRM                // reg ← mem (load / lea / alu-from-mem)
	FMR                // mem ← reg (store / alu-to-mem)
	FRI                // reg ← imm (or reg op= imm)
	FMI                // mem ← imm (or mem op= imm)
	FI                 // immediate only (RTCALL)
	FRel8              // rel8 branch
	FRel32             // rel32 branch
)

// String names the form for diagnostics.
func (f Form) String() string {
	switch f {
	case FNone:
		return "none"
	case FR:
		return "r"
	case FM:
		return "m"
	case FRR:
		return "rr"
	case FRM:
		return "rm"
	case FMR:
		return "mr"
	case FRI:
		return "ri"
	case FMI:
		return "mi"
	case FI:
		return "i"
	case FRel8:
		return "rel8"
	case FRel32:
		return "rel32"
	}
	return fmt.Sprintf("form(%d)", uint8(f))
}

// Inst is a decoded (or not-yet-encoded) RF64 instruction.
type Inst struct {
	Op   Op
	Form Form
	Size uint8 // memory access width in bytes (1, 2, 4, 8); 8 if N/A
	Reg  Reg   // register operand (dst for loads, src for stores)
	Reg2 Reg   // second register operand (src for FRR)
	Mem  Mem   // memory operand (valid for FM/FRM/FMR/FMI)
	Imm  int64 // immediate or branch displacement

	// Len is the encoded length in bytes. Set by Decode and by Encode.
	Len uint8
}

// HasMem reports whether the instruction has a memory operand.
func (in *Inst) HasMem() bool {
	switch in.Form {
	case FM, FRM, FMR, FMI:
		return true
	}
	return false
}

// IsMemAccess reports whether the instruction actually reads or writes
// memory through its memory operand (LEA has a memory operand but performs
// no access; branches through memory do access it).
func (in *Inst) IsMemAccess() bool {
	return in.HasMem() && in.Op != LEA
}

// MemWidth returns the memory access width in bytes, or 0 if the
// instruction does not access memory.
func (in *Inst) MemWidth() uint16 {
	if !in.IsMemAccess() {
		return 0
	}
	if in.Size == 0 {
		return 8
	}
	return uint16(in.Size)
}

// Writes reports whether the memory operand is written. CMP and TEST only
// read; MOV/ALU in FMR/FMI forms write (ALU also reads).
func (in *Inst) Writes() bool {
	if !in.IsMemAccess() {
		return false
	}
	switch in.Form {
	case FMR, FMI:
		return in.Op != CMP && in.Op != TEST
	case FM:
		// Single-memory-operand forms: PUSH/JMP/CALL read, POP writes,
		// INC/DEC/NEG/NOT read-modify-write.
		switch in.Op {
		case POP, INC, DEC, NEG, NOT:
			return true
		}
		return false
	}
	return false
}

// Reads reports whether the memory operand is read.
func (in *Inst) Reads() bool {
	if !in.IsMemAccess() {
		return false
	}
	switch in.Form {
	case FRM:
		return true
	case FMR, FMI:
		// Plain MOV stores do not read their destination; ALU stores do.
		return in.Op != MOV
	case FM:
		return in.Op != POP
	}
	return false
}

// String renders the instruction in AT&T-flavoured syntax.
func (in *Inst) String() string {
	suffix := ""
	switch in.Size {
	case 1:
		suffix = "b"
	case 2:
		suffix = "w"
	case 4:
		suffix = "l"
	}
	op := in.Op.String() + suffix
	switch in.Form {
	case FNone:
		return in.Op.String()
	case FR:
		return fmt.Sprintf("%s %s", op, in.Reg)
	case FM:
		return fmt.Sprintf("%s %s", op, in.Mem)
	case FRR:
		// AT&T order: src, dst. Reg is dst; Reg2 is src.
		return fmt.Sprintf("%s %s, %s", op, in.Reg2, in.Reg)
	case FRM:
		return fmt.Sprintf("%s %s, %s", op, in.Mem, in.Reg)
	case FMR:
		return fmt.Sprintf("%s %s, %s", op, in.Reg, in.Mem)
	case FRI:
		return fmt.Sprintf("%s $%#x, %s", op, in.Imm, in.Reg)
	case FMI:
		return fmt.Sprintf("%s $%#x, %s", op, in.Imm, in.Mem)
	case FI:
		return fmt.Sprintf("%s $%#x", op, in.Imm)
	case FRel8, FRel32:
		return fmt.Sprintf("%s .%+d", op, in.Imm)
	}
	return "(bad)"
}
