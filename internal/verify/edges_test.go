package verify_test

import (
	"strings"
	"testing"

	"redfat/internal/asm"
	"redfat/internal/cfg"
	"redfat/internal/isa"
	"redfat/internal/relf"
	"redfat/internal/verify"
)

// edgeSwitch assembles the canonical marker-built guarded jump-table
// dispatch (same shape the cfg recovery tests use). cmpImm controls the
// guard bound; preLoad (optional) is injected between guard and load.
func edgeSwitch(t *testing.T, cmpImm int64, preLoad func(*asm.Builder)) *relf.Binary {
	t.Helper()
	b := asm.NewBuilder(asm.Options{})
	b.Func("main")
	b.MovRI(isa.RCX, 1)
	b.AluRI(isa.CMP, isa.RCX, cmpImm)
	b.Jcc(isa.JA, "default")
	if preLoad != nil {
		preLoad(b)
	}
	b.LoadIndexed(isa.RAX, "table", isa.RCX, 8, 8)
	b.JmpReg(isa.RAX)
	for _, h := range []string{"h0", "h1", "h2"} {
		b.Label(h)
		b.Lpad()
		b.MovRI(isa.RBX, 7)
		b.Jmp("out")
	}
	b.Label("default")
	b.MovRI(isa.RBX, 99)
	b.Label("out")
	b.Emit(isa.Inst{Op: isa.HLT, Form: isa.FNone})
	b.JumpTable("table", "h0", "h1", "h2")
	bin, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return bin
}

// edgeRet assembles a closed leaf function with two direct callers; if
// escape is set the leaf's address is also taken as data, opening it.
func edgeRet(t *testing.T, escape bool) *relf.Binary {
	t.Helper()
	b := asm.NewBuilder(asm.Options{})
	b.Func("main")
	b.Lpad() // marker-built; main itself is never paired (it is the entry)
	b.Call("leaf")
	b.MovRI(isa.RBX, 1)
	b.Call("leaf")
	if escape {
		b.LoadAddr(isa.RDX, "leaf", 0)
	}
	b.Emit(isa.Inst{Op: isa.HLT, Form: isa.FNone})
	b.Func("leaf")
	b.MovRI(isa.RAX, 42)
	b.Ret()
	bin, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return bin
}

// cloneInfo deep-copies the recovery's claims so a mutant cannot leak
// into the shared graph.
func cloneInfo(info *cfg.IndirectInfo) *cfg.IndirectInfo {
	out := &cfg.IndirectInfo{
		Resolved: append([]cfg.Resolved(nil), info.Resolved...),
		Tables:   append([]relf.JumpTable(nil), info.Tables...),
	}
	for i := range out.Resolved {
		out.Resolved[i].Targets = append([]uint64(nil), info.Resolved[i].Targets...)
	}
	return out
}

// auditClaims runs the recovery on bin, applies mutate to a copy of its
// claims, and audits the result against the claim-free base graph.
func auditClaims(t *testing.T, bin *relf.Binary, mutate func(*cfg.IndirectInfo)) *verify.Report {
	t.Helper()
	prog, err := cfg.Disassemble(bin)
	if err != nil {
		t.Fatalf("disassemble: %v", err)
	}
	recovered := cfg.NewGraphOpts(prog, cfg.GraphOptions{})
	if recovered.Indirect == nil {
		t.Fatal("marker-built binary: recovery must attach claims")
	}
	info := cloneInfo(recovered.Indirect)
	if mutate != nil {
		mutate(info)
	}
	base := cfg.NewGraphOpts(prog, cfg.GraphOptions{NoIndirect: true})
	rep := &verify.Report{}
	verify.AuditEdges(rep, bin, prog, base, info)
	return rep
}

// claimOfKind returns the first claim of kind k, failing if absent.
func claimOfKind(t *testing.T, info *cfg.IndirectInfo, k cfg.ResolvedKind) *cfg.Resolved {
	t.Helper()
	for i := range info.Resolved {
		if info.Resolved[i].Kind == k {
			return &info.Resolved[i]
		}
	}
	t.Fatalf("no %v claim recovered", k)
	return nil
}

func wantEdgeViolation(t *testing.T, rep *verify.Report, substr string) {
	t.Helper()
	for _, v := range rep.Violations {
		if v.Kind == verify.KindEdge && strings.Contains(v.Detail, substr) {
			return
		}
	}
	t.Fatalf("want a %q edge violation containing %q, got %+v",
		verify.KindEdge, substr, rep.Violations)
}

func TestEdgeAuditHonestClaims(t *testing.T) {
	for _, tc := range []struct {
		name string
		bin  *relf.Binary
	}{
		{"switch", edgeSwitch(t, 2, nil)},
		{"ret-pairing", edgeRet(t, false)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rep := auditClaims(t, tc.bin, nil)
			if !rep.OK() {
				t.Fatalf("honest claims must audit clean: %+v", rep.Violations)
			}
			if rep.EdgeSites == 0 || rep.EdgeTargets == 0 {
				t.Fatalf("audit saw no claims: sites=%d targets=%d",
					rep.EdgeSites, rep.EdgeTargets)
			}
		})
	}
}

// The seeded unsound-edge mutants: each models a distinct analysis bug
// and each must be rejected with a KindEdge violation.

func TestEdgeAuditRejectsBoundUnderclaim(t *testing.T) {
	// Missing-edge mutant: the claim admits fewer table entries than the
	// guard allows, so a legal index would escape the recovered Succs.
	rep := auditClaims(t, edgeSwitch(t, 2, nil), func(info *cfg.IndirectInfo) {
		r := claimOfKind(t, info, cfg.ResolvedTable)
		r.Bound--
		r.Targets = r.Targets[:len(r.Targets)-1]
	})
	wantEdgeViolation(t, rep, "guard proves")
}

func TestEdgeAuditRejectsBoundOverclaim(t *testing.T) {
	// The claim reads past the declared table end.
	rep := auditClaims(t, edgeSwitch(t, 2, nil), func(info *cfg.IndirectInfo) {
		claimOfKind(t, info, cfg.ResolvedTable).Bound++
	})
	wantEdgeViolation(t, rep, "outside declared table")
}

func TestEdgeAuditRejectsForeignTarget(t *testing.T) {
	// A target swapped for an address the table does not contain.
	bin := edgeSwitch(t, 2, nil)
	rep := auditClaims(t, bin, func(info *cfg.IndirectInfo) {
		r := claimOfKind(t, info, cfg.ResolvedTable)
		r.Targets[0] = r.Addr // the dispatch jump itself: decidedly not a pad
	})
	wantEdgeViolation(t, rep, "differs")
}

func TestEdgeAuditRejectsWrongTableBase(t *testing.T) {
	// The claim names a table the dispatch does not load from.
	rep := auditClaims(t, edgeSwitch(t, 2, nil), func(info *cfg.IndirectInfo) {
		claimOfKind(t, info, cfg.ResolvedTable).Table += 8
	})
	wantEdgeViolation(t, rep, "dispatch loads from")
}

func TestEdgeAuditRejectsUnguardedSite(t *testing.T) {
	// The index is clobbered between guard and load, so the honest
	// recovery falls back to the landing-pad set; a fabricated table
	// claim at that site asserts a bound no guard protects.
	bin := edgeSwitch(t, 2, func(b *asm.Builder) {
		b.Emit(isa.Inst{Op: isa.INC, Form: isa.FR, Reg: isa.RCX, Size: 8})
	})
	rep := auditClaims(t, bin, func(info *cfg.IndirectInfo) {
		r := claimOfKind(t, info, cfg.ResolvedLPADSet)
		// Steal the honest binary's table geometry: same base, all pads.
		honest := auditHonestTable(t)
		r.Kind = cfg.ResolvedTable
		r.Table = honest.Table
		r.Bound = honest.Bound
	})
	wantEdgeViolation(t, rep, "index register redefined")
}

// auditHonestTable recovers the table claim from the clean switch so
// mutant tests can reuse its geometry.
func auditHonestTable(t *testing.T) *cfg.Resolved {
	t.Helper()
	prog, err := cfg.Disassemble(edgeSwitch(t, 2, nil))
	if err != nil {
		t.Fatalf("disassemble: %v", err)
	}
	g := cfg.NewGraphOpts(prog, cfg.GraphOptions{})
	return claimOfKind(t, g.Indirect, cfg.ResolvedTable)
}

func TestEdgeAuditRejectsIncompleteLPADSet(t *testing.T) {
	// A landing-pad-set claim that omits a decoded pad misses a legal
	// dynamic target.
	bin := edgeSwitch(t, 5, nil) // overclaimed bound: recovery → LPAD set
	rep := auditClaims(t, bin, func(info *cfg.IndirectInfo) {
		r := claimOfKind(t, info, cfg.ResolvedLPADSet)
		r.Targets = r.Targets[:len(r.Targets)-1]
	})
	wantEdgeViolation(t, rep, "decoded landing pads")
}

func TestEdgeAuditRejectsMissingReturnPoint(t *testing.T) {
	// A RET pairing that forgets one caller's return point.
	rep := auditClaims(t, edgeRet(t, false), func(info *cfg.IndirectInfo) {
		r := claimOfKind(t, info, cfg.ResolvedRet)
		r.Targets = r.Targets[:1]
	})
	wantEdgeViolation(t, rep, "return points differ")
}

func TestEdgeAuditRejectsOpenFunctionPairing(t *testing.T) {
	// The leaf's address escapes as data, so its RET can run under a
	// stack the direct callers never built; a fabricated pairing claim
	// must fail the closed-function re-derivation.
	bin := edgeRet(t, true)
	prog, err := cfg.Disassemble(bin)
	if err != nil {
		t.Fatalf("disassemble: %v", err)
	}
	var retIdx = -1
	var retPoint uint64
	for i := range prog.Insts {
		in := &prog.Insts[i].Inst
		if in.Op == isa.RET {
			retIdx = i
		}
		if in.Op == isa.CALL && retPoint == 0 &&
			(in.Form == isa.FRel8 || in.Form == isa.FRel32) {
			retPoint = prog.Insts[i].Addr + uint64(in.Len)
		}
	}
	if retIdx < 0 || retPoint == 0 {
		t.Fatal("test binary shape changed: no RET or CALL found")
	}
	rep := auditClaims(t, bin, func(info *cfg.IndirectInfo) {
		info.Resolved = append(info.Resolved, cfg.Resolved{
			Inst: retIdx, Addr: prog.Insts[retIdx].Addr,
			Kind: cfg.ResolvedRet, Targets: []uint64{retPoint},
		})
	})
	wantEdgeViolation(t, rep, "escapes beyond direct calls")
}
