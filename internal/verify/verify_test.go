package verify_test

import (
	"strings"
	"testing"

	"redfat/internal/cfg"
	"redfat/internal/juliet"
	"redfat/internal/kraken"
	"redfat/internal/redfat"
	"redfat/internal/relf"
	"redfat/internal/rtlib"
	"redfat/internal/verify"
	"redfat/internal/workload"
)

// knobCombos are the rewriter configurations the validator must accept:
// every combination a user can reach from the CLI, including the
// degraded ones (block-local liveness, no clobber specialization) that
// save strictly more state than the whole-CFG solution requires.
func knobCombos() map[string]redfat.Options {
	combos := map[string]redfat.Options{}
	add := func(name string, mut func(*redfat.Options)) {
		opt := redfat.Defaults()
		mut(&opt)
		combos[name] = opt
	}
	add("defaults", func(o *redfat.Options) {})
	add("no-elimdom", func(o *redfat.Options) { o.ElimDom = false })
	add("local-liveness", func(o *redfat.Options) { o.LocalLiveness = true })
	add("no-clobber-spec", func(o *redfat.Options) { o.NoClobberSpec = true })
	add("no-batch", func(o *redfat.Options) { o.Batch = false; o.Merge = false })
	add("no-reads", func(o *redfat.Options) { o.CheckReads = false })
	add("profile", func(o *redfat.Options) { o.Profile = true })
	return combos
}

// corpus returns a set of original binaries spanning the shipped
// workloads: the full SPEC suite, a CVE case, a Juliet case, and the
// Chrome-scale image (small filler count — hardening is static, but the
// trampoline walk is linear in patches).
func corpus(t *testing.T) map[string]*relf.Binary {
	t.Helper()
	bins := map[string]*relf.Binary{}
	benches := workload.All()
	if testing.Short() {
		benches = benches[:6]
	}
	for _, bm := range benches {
		bin, err := bm.Build()
		if err != nil {
			t.Fatalf("%s: %v", bm.Name, err)
		}
		bins[bm.Name] = bin
	}
	cve := juliet.CVECases()[0]
	bin, err := cve.Build()
	if err != nil {
		t.Fatal(err)
	}
	bins["cve/"+cve.ID] = bin
	jc := juliet.JulietCases()[0]
	if bin, err = jc.Build(); err != nil {
		t.Fatal(err)
	}
	bins["juliet/"+jc.ID] = bin
	if !testing.Short() {
		if bin, err = kraken.Build(256); err != nil {
			t.Fatal(err)
		}
		bins["chrome"] = bin
	}
	return bins
}

// TestCleanOnCorpora is the validator's false-positive gate: every
// shipped corpus hardened under every reachable knob combination must
// validate with zero violations.
func TestCleanOnCorpora(t *testing.T) {
	for name, bin := range corpus(t) {
		for combo, opt := range knobCombos() {
			hard, _, err := redfat.Harden(bin, opt)
			if err != nil {
				t.Fatalf("%s/%s: harden: %v", name, combo, err)
			}
			rep, err := verify.Verify(bin, hard)
			if err != nil {
				t.Fatalf("%s/%s: verify: %v", name, combo, err)
			}
			if !rep.OK() {
				var sb strings.Builder
				rep.Render(&sb)
				t.Errorf("%s/%s: %s", name, combo, sb.String())
			}
			if rep.Trampolines == 0 || rep.Checks == 0 {
				t.Errorf("%s/%s: validated nothing (%d trampolines, %d checks)",
					name, combo, rep.Trampolines, rep.Checks)
			}
		}
	}
}

// TestStructuralClean exercises the no-original subset on the same
// hardened images.
func TestStructuralClean(t *testing.T) {
	bin, err := workload.ByName("libquantum").Build()
	if err != nil {
		t.Fatal(err)
	}
	for combo, opt := range knobCombos() {
		hard, _, err := redfat.Harden(bin, opt)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := verify.Structural(hard)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK() {
			var sb strings.Builder
			rep.Render(&sb)
			t.Errorf("%s: %s", combo, sb.String())
		}
	}
}

// mutate applies f to a fresh clone of hard and returns the clone.
func mutate(t *testing.T, hard *relf.Binary, f func(*relf.Binary)) *relf.Binary {
	t.Helper()
	m := hard.Clone()
	f(m)
	return m
}

// resites re-encodes a mutated site table into the binary.
func resites(t *testing.T, bin *relf.Binary, recs []rtlib.Check) {
	t.Helper()
	s := bin.Section(rtlib.SitesSection)
	if s == nil {
		t.Fatal("no .rf.sites section")
	}
	s.Data = rtlib.EncodeSites(recs)
	s.Size = uint64(len(s.Data))
}

// TestMutationsDetected seeds one defect of each class into a hardened
// binary and checks the validator pins it with the right kind.
func TestMutationsDetected(t *testing.T) {
	bin, err := workload.ByName("libquantum").Build()
	if err != nil {
		t.Fatal(err)
	}
	hard, _, err := redfat.Harden(bin, redfat.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	recs, err := rtlib.SitesFrom(hard)
	if err != nil {
		t.Fatal(err)
	}

	expectAgainst := func(name string, orig *relf.Binary, want verify.Kind, m *relf.Binary) {
		t.Helper()
		rep, err := verify.Verify(orig, m)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep.OK() {
			t.Errorf("%s: mutation not detected", name)
			return
		}
		for _, v := range rep.Violations {
			if v.Kind == want {
				return
			}
		}
		t.Errorf("%s: no %q violation in %+v", name, want, rep.Violations)
	}
	expect := func(name string, want verify.Kind, m *relf.Binary) {
		t.Helper()
		expectAgainst(name, bin, want, m)
	}

	// (a) Under-save a trampoline: find a leader that saves registers and
	// claim it saves one fewer.
	savIdx := -1
	for i := range recs {
		if recs[i].Leader && recs[i].SavedRegs > 0 {
			savIdx = i
			break
		}
	}
	if savIdx >= 0 {
		expect("saved-regs", verify.KindLiveness, mutate(t, hard, func(m *relf.Binary) {
			mrecs := append([]rtlib.Check(nil), recs...)
			mrecs[savIdx].SavedRegs--
			resites(t, m, mrecs)
		}))
	} else {
		t.Log("no leader with SavedRegs > 0; skipping saved-regs mutation")
	}

	// (a') Drop a flags save from a leader that needs one. Clobber
	// specialization proves flags dead at most heads, so use the
	// conservative configuration (which saves flags everywhere) on a
	// benchmark with a check head where flags are provably live.
	ncOpt := redfat.Defaults()
	ncOpt.NoClobberSpec = true
	binNC, err := workload.ByName("perlbench").Build()
	if err != nil {
		t.Fatal(err)
	}
	hardNC, _, err := redfat.Harden(binNC, ncOpt)
	if err != nil {
		t.Fatal(err)
	}
	ncRecs, err := rtlib.SitesFrom(hardNC)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := cfg.Disassemble(binNC)
	if err != nil {
		t.Fatal(err)
	}
	df := cfg.NewDataflow(prog)
	flIdx := -1
	for i := range ncRecs {
		if !ncRecs[i].Leader || !ncRecs[i].SaveFlags {
			continue
		}
		// Only a head where flags are provably live makes the drop a
		// defect the validator must report.
		if j, ok := prog.InstAt(ncRecs[i].PC); ok && !df.FlagsDeadAt(j) {
			flIdx = i
			break
		}
	}
	if flIdx < 0 {
		t.Fatal("perlbench has no live-flags check head under NoClobberSpec")
	}
	expectAgainst("save-flags", binNC, verify.KindLiveness, mutate(t, hardNC, func(m *relf.Binary) {
		mrecs := append([]rtlib.Check(nil), ncRecs...)
		mrecs[flIdx].SaveFlags = false
		resites(t, m, mrecs)
	}))

	// (b) Drop a check record: every payload reference after it now
	// points one record off, and the final record is out of range.
	expect("dropped-record", verify.KindSites, mutate(t, hard, func(m *relf.Binary) {
		mrecs := append([]rtlib.Check(nil), recs[:len(recs)/2]...)
		mrecs = append(mrecs, recs[len(recs)/2+1:]...)
		resites(t, m, mrecs)
	}))

	// (c) Corrupt one .rf.origins entry: the patched site no longer
	// jumps to the trampoline the table claims.
	expect("corrupt-origins", verify.KindPatch, mutate(t, hard, func(m *relf.Binary) {
		s := m.Section(relf.OriginTableSection)
		tbl, err := relf.DecodePatchTable(s.Data)
		if err != nil {
			t.Fatal(err)
		}
		for from := range tbl {
			tbl[from]++
			break
		}
		s.Data = relf.EncodePatchTable(tbl)
		s.Size = uint64(len(s.Data))
	}))

	// (d) Flip a byte inside a patched jump: the site decodes to neither
	// a jump to its trampoline nor a dispatched trap.
	origins, err := relf.DecodePatchTable(hard.Section(relf.OriginTableSection).Data)
	if err != nil {
		t.Fatal(err)
	}
	var patchAddr uint64
	for _, o := range origins {
		if patchAddr == 0 || o < patchAddr {
			patchAddr = o
		}
	}
	expect("corrupt-patch", verify.KindPatch, mutate(t, hard, func(m *relf.Binary) {
		text := m.Text()
		text.Data[patchAddr-text.Addr+1] ^= 0x40 // jump displacement byte
	}))

	// (e) Scribble on unpatched text.
	expect("text-diff", verify.KindPatch, mutate(t, hard, func(m *relf.Binary) {
		text := m.Text()
		// Find a byte outside every patched span.
		spans := map[uint64]bool{}
		for _, o := range origins {
			for k := uint64(0); k < 8; k++ {
				spans[o+k] = true
			}
		}
		for a := text.Addr; a < text.End(); a++ {
			if !spans[a] {
				text.Data[a-text.Addr] ^= 0xFF
				return
			}
		}
		t.Fatal("no unpatched byte found")
	}))
}
