package verify_test

import (
	"strings"
	"testing"

	"redfat/internal/asm"
	"redfat/internal/isa"
	"redfat/internal/juliet"
	"redfat/internal/redfat"
	"redfat/internal/rtlib"
	"redfat/internal/verify"
	"redfat/internal/vm"
	"redfat/internal/workload"
)

// certProgram is an uninstrumented workload exercising most of the
// compilable instruction set inside hot loops: both conditional-branch
// directions, push/pop, shifts, a static call with a RET dynamic exit,
// and global load/store traffic.
func certProgram(b *asm.Builder) {
	b.Func("main")
	b.MovRI(isa.RAX, 0)
	b.MovRI(isa.RBX, 0)
	b.MovRI(isa.RCX, 0)
	b.Label("loop")
	b.AluRI(isa.XOR, isa.RCX, 1)
	b.AluRI(isa.CMP, isa.RCX, 0)
	b.Jcc(isa.JE, "even")
	b.AluRI(isa.ADD, isa.RAX, 3)
	b.Jmp("join")
	b.Label("even")
	b.AluRI(isa.ADD, isa.RAX, 1)
	b.Label("join")
	b.Push(isa.RAX)
	b.Pop(isa.RDX)
	b.Shift(isa.SHL, isa.RDX, 2)
	b.Shift(isa.SHR, isa.RDX, 2)
	b.Call("twiddle")
	b.StoreGlobal("acc", 0, isa.RAX, 8)
	b.LoadGlobal(isa.RDX, "acc", 0, 8)
	b.AluRI(isa.ADD, isa.RBX, 1)
	b.AluRI(isa.CMP, isa.RBX, 2000)
	b.Jcc(isa.JL, "loop")
	b.MovRI(isa.RAX, 0)
	b.Ret()
	b.Func("twiddle")
	b.Emit(isa.Inst{Op: isa.NEG, Form: isa.FR, Reg: isa.RAX, Size: 8})
	b.Emit(isa.Inst{Op: isa.NEG, Form: isa.FR, Reg: isa.RAX, Size: 8})
	b.Ret()
	b.GlobalU64("acc", 0)
}

// requireOK fails the test with the rendered report when the certifier
// found violations.
func requireOK(t *testing.T, rep *verify.Report) {
	t.Helper()
	if rep.OK() {
		return
	}
	var sb strings.Builder
	rep.Render(&sb)
	t.Fatalf("certifier rejected compiled traces:\n%s", sb.String())
}

// TestSuperblockCertifierBaseline certifies the traces of an
// uninstrumented hot program: every compiled plan must agree with the
// certifier's independent re-derivation.
func TestSuperblockCertifierBaseline(t *testing.T) {
	b := asm.NewBuilder(asm.Options{})
	certProgram(b)
	bin, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	v, err := rtlib.RunBaseline(bin, rtlib.RunConfig{JITThreshold: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(v.CompiledTraces()) == 0 {
		t.Fatal("no superblocks compiled")
	}
	rep := verify.Superblocks(v)
	requireOK(t, rep)
	if rep.Traces == 0 || rep.TraceSteps == 0 {
		t.Fatalf("certifier saw %d traces, %d steps", rep.Traces, rep.TraceSteps)
	}
}

// TestSuperblockCertifierCorpora runs shipped corpora hardened under the
// default policy with a low compile threshold and certifies every trace
// the tier compiled, including fused check steps inside trampolines.
func TestSuperblockCertifierCorpora(t *testing.T) {
	type testRun struct {
		name string
		hard func() (*vm.VM, error)
	}
	var runs []testRun
	benches := workload.All()
	n := 3
	if testing.Short() {
		n = 1
	}
	for _, bm := range benches[:n] {
		bm := bm
		runs = append(runs, testRun{bm.Name, func() (*vm.VM, error) {
			bin, err := bm.Build()
			if err != nil {
				return nil, err
			}
			hard, _, err := redfat.Harden(bin, redfat.Defaults())
			if err != nil {
				return nil, err
			}
			v, _, _ := rtlib.RunHardened(hard, rtlib.RunConfig{Input: bm.RefInput(), JITThreshold: 8})
			return v, nil
		}})
	}
	cve := juliet.CVECases()[0]
	runs = append(runs, testRun{"cve/" + cve.ID, func() (*vm.VM, error) {
		bin, err := cve.Build()
		if err != nil {
			return nil, err
		}
		hard, _, err := redfat.Harden(bin, redfat.Defaults())
		if err != nil {
			return nil, err
		}
		v, _, _ := rtlib.RunHardened(hard, rtlib.RunConfig{JITThreshold: 8})
		return v, nil
	}})

	traces, checks := 0, 0
	for _, r := range runs {
		t.Run(r.name, func(t *testing.T) {
			v, err := r.hard()
			if err != nil {
				t.Fatal(err)
			}
			rep := verify.Superblocks(v)
			requireOK(t, rep)
			traces += rep.Traces
			checks += rep.TraceChecks
		})
	}
	if traces == 0 {
		t.Fatal("no superblocks compiled across the corpus")
	}
	if checks == 0 {
		t.Fatal("no fused checks certified across the corpus")
	}
	t.Logf("certified %d traces, %d fused checks", traces, checks)
}

// mutantProgram has two same-plan loads back to back in a hot loop, so
// the compiled trace carries both a leading and an elided fused check.
func mutantProgram(b *asm.Builder) {
	b.Func("main")
	b.LoadAddr(isa.RSI, "buf", 0)
	b.MovRI(isa.RBX, 0)
	b.MovRI(isa.RAX, 0)
	b.Label("loop")
	b.Load(isa.RDX, isa.RSI, 0, 8)
	b.Load(isa.RDI, isa.RSI, 0, 8)
	b.AluRR(isa.ADD, isa.RAX, isa.RDX)
	b.AluRI(isa.ADD, isa.RBX, 1)
	b.AluRI(isa.CMP, isa.RBX, 4000)
	b.Jcc(isa.JL, "loop")
	b.MovRI(isa.RAX, 0)
	b.Ret()
	b.GlobalU64("buf", 7)
}

// copyInfo deep-copies a trace plan so mutations cannot leak into the
// VM's live traces.
func copyInfo(info *vm.TraceInfo) *vm.TraceInfo {
	out := *info
	out.Steps = append([]vm.TraceStep(nil), info.Steps...)
	for i := range out.Steps {
		if c := out.Steps[i].Check; c != nil {
			cc := *c
			out.Steps[i].Check = &cc
		}
	}
	out.Exits = append([]vm.TraceExit(nil), info.Exits...)
	return &out
}

// TestSuperblockCertifierRejectsMutants seeds targeted corruptions into
// a real compiled plan — dropped checks, wrong spill state, stale flag
// claims, illegal elisions, misstated costs — and requires the certifier
// to reject every one while accepting the original.
func TestSuperblockCertifierRejectsMutants(t *testing.T) {
	b := asm.NewBuilder(asm.Options{})
	mutantProgram(b)
	bin, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Keep both sites: no batching/merging (one trampoline per site) and
	// no static dominator elimination, so the redundant second check
	// survives to run time and the trace tier elides it dynamically.
	opt := redfat.Defaults()
	opt.Batch = false
	opt.Merge = false
	opt.ElimDom = false
	hard, _, err := redfat.Harden(bin, opt)
	if err != nil {
		t.Fatal(err)
	}
	v, _, err := rtlib.RunHardened(hard, rtlib.RunConfig{JITThreshold: 2})
	if err != nil {
		t.Fatal(err)
	}

	// Pick the trace that carries both a leading and an elided check.
	var target *vm.TraceInfo
	for _, info := range v.CompiledTraces() {
		elided := false
		for i := range info.Steps {
			if c := info.Steps[i].Check; c != nil && c.Elided {
				elided = true
			}
		}
		if elided {
			target = info
			break
		}
	}
	if target == nil {
		t.Fatal("no compiled trace with an elided check (mutant corpus needs one)")
	}
	requireOK(t, verify.CertifyTrace(v, target))

	checkStep, elidedStep, cmpStep, plainStep, staticExit := -1, -1, -1, -1, -1
	for i := range target.Steps {
		st := &target.Steps[i]
		switch {
		case st.Check != nil && !st.Check.Elided && checkStep == -1:
			checkStep = i
		case st.Check != nil && st.Check.Elided && elidedStep == -1:
			elidedStep = i
		}
		if cmpStep == -1 && st.Inst.Op == isa.CMP &&
			i+1 < len(target.Steps) && target.Steps[i+1].Inst.Op.IsCondJump() {
			cmpStep = i
		}
		if plainStep == -1 && st.Check == nil {
			plainStep = i
		}
	}
	for i := range target.Exits {
		if !target.Exits[i].Dynamic {
			staticExit = i
			break
		}
	}
	if checkStep == -1 || elidedStep == -1 || cmpStep == -1 || plainStep == -1 || staticExit == -1 {
		t.Fatalf("trace shape unsuitable: check=%d elided=%d cmp=%d plain=%d staticExit=%d",
			checkStep, elidedStep, cmpStep, plainStep, staticExit)
	}

	mutants := map[string]func(*vm.TraceInfo){
		"dropped-check": func(m *vm.TraceInfo) {
			m.Steps[checkStep].Check = nil
		},
		"wrong-spill-cycles": func(m *vm.TraceInfo) {
			m.Exits[len(m.Exits)-1].Cycles++
		},
		"wrong-spill-retired": func(m *vm.TraceInfo) {
			m.Exits[0].Retired++
		},
		"wrong-spill-rip": func(m *vm.TraceInfo) {
			m.Exits[staticExit].RIP += 4
		},
		"stale-flags": func(m *vm.TraceInfo) {
			m.Steps[cmpStep].FlagsElided = true
		},
		"illegal-elide-leader": func(m *vm.TraceInfo) {
			m.Steps[elidedStep].Check.Leader = plainStep
		},
		"plan-key-drift": func(m *vm.TraceInfo) {
			m.Steps[checkStep].Check.Length += 8
		},
		"wrong-cost": func(m *vm.TraceInfo) {
			m.Steps[0].Cost++
		},
	}
	for name, mutate := range mutants {
		t.Run(name, func(t *testing.T) {
			mut := copyInfo(target)
			mutate(mut)
			rep := verify.CertifyTrace(v, mut)
			if rep.OK() {
				t.Fatalf("certifier accepted the %s mutant", name)
			}
			for _, viol := range rep.Violations {
				if viol.Kind != verify.KindTrace {
					t.Errorf("unexpected violation kind %s: %s", viol.Kind, viol.Detail)
				}
			}
		})
	}
}
