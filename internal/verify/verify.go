// Package verify implements a static translation validator for hardened
// binaries: given the original and the rewritten RELF image, it
// re-derives what the rewriter must have done and checks the result
// against the metadata the rewriter shipped (.rf.sites, .rf.config,
// .rf.origins, .rf.patch, .rf.unprot), without executing either binary.
//
// The audits:
//
//   - round-trip: every patched site decodes back to a jump to its
//     trampoline (or a dispatched trap), the trampoline replays the
//     displaced original instructions with PC-relative fields re-resolved
//     to the same absolute targets, and control returns to the original
//     successor; all text bytes outside patched spans are untouched;
//   - stealing: byte stealing never swallowed a recovered block leader
//     or another trampoline's batch head;
//   - site table: every check record is referenced by exactly one
//     trampoline payload, leaders first and only first;
//   - liveness: every trampoline saves at least the registers and flags
//     the whole-CFG liveness analysis proves live at its head;
//   - coverage: every memory operand the recorded policy selects for
//     checking is protected by a check record at its own address or by
//     an available dominating check (operands in .rf.unprot are exempt).
//
// The package also hosts the superblock certifier (superblock.go): a
// run-time analogue of the same idea that re-derives every claim in a
// compiled trace plan (vm.TraceInfo) from the guest image and the
// single-step semantics, independently of the trace compiler.
package verify

import (
	"fmt"
	"io"
	"sort"

	"redfat/internal/cfg"
	"redfat/internal/isa"
	"redfat/internal/redfat"
	"redfat/internal/relf"
	"redfat/internal/rtlib"
	"redfat/internal/vm"
)

// Kind classifies a violation.
type Kind string

// Violation kinds.
const (
	KindMeta     Kind = "metadata" // missing or undecodable metadata section
	KindPatch    Kind = "patch"    // patched site does not round-trip
	KindTramp    Kind = "tramp"    // trampoline does not round-trip
	KindSteal    Kind = "steal"    // byte stealing swallowed a leader or batch head
	KindSites    Kind = "sites"    // site table inconsistent with the trampolines
	KindLiveness Kind = "liveness" // trampoline saves less state than is live
	KindCoverage Kind = "coverage" // selected operand not protected by any check
	KindTrace    Kind = "trace"    // superblock plan contradicts single-step semantics
	KindEdge     Kind = "edge"     // recovered indirect edge fails re-derivation
)

// Violation is one validation failure, anchored at a guest address.
type Violation struct {
	Kind   Kind   `json:"kind"`
	Addr   uint64 `json:"addr"`
	Detail string `json:"detail"`
}

// Report is the outcome of a validation run.
type Report struct {
	Trampolines int `json:"trampolines"` // origin entries validated
	Checks      int `json:"checks"`      // site-table records
	Operands    int `json:"operands"`    // policy-selected operands audited
	Covered     int `json:"covered"`     // operands protected by a check
	Exempt      int `json:"exempt"`      // operands exempted via .rf.unprot

	// Superblock certification (Superblocks / CertifyTrace).
	Traces      int `json:"traces,omitempty"`       // compiled trace plans certified
	TraceSteps  int `json:"trace_steps,omitempty"`  // instructions across those plans
	TraceChecks int `json:"trace_checks,omitempty"` // fused check sites
	TraceElided int `json:"trace_elided,omitempty"` // fused sites forwarding a leader

	// Indirect-flow edge audit (AuditEdges).
	EdgeSites   int `json:"edge_sites,omitempty"`   // recovered sites audited
	EdgeTargets int `json:"edge_targets,omitempty"` // recovered edges audited

	Violations []Violation `json:"violations,omitempty"`
}

// OK reports whether the binary validated cleanly.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// Render writes a human-readable summary followed by every violation.
func (r *Report) Render(w io.Writer) {
	status := "OK"
	if !r.OK() {
		status = fmt.Sprintf("%d violations", len(r.Violations))
	}
	fmt.Fprintf(w, "verify: %s — %d trampolines, %d checks, %d/%d operands covered (%d exempt)\n",
		status, r.Trampolines, r.Checks, r.Covered, r.Operands, r.Exempt)
	if r.Traces > 0 {
		fmt.Fprintf(w, "verify: %d superblocks — %d steps, %d fused checks (%d forwarded)\n",
			r.Traces, r.TraceSteps, r.TraceChecks, r.TraceElided)
	}
	if r.EdgeSites > 0 {
		fmt.Fprintf(w, "verify: %d indirect sites audited — %d recovered edges\n",
			r.EdgeSites, r.EdgeTargets)
	}
	for _, v := range r.Violations {
		fmt.Fprintf(w, "  [%s] %#x: %s\n", v.Kind, v.Addr, v.Detail)
	}
}

func (r *Report) violate(k Kind, addr uint64, format string, args ...any) {
	r.Violations = append(r.Violations, Violation{
		Kind: k, Addr: addr, Detail: fmt.Sprintf(format, args...),
	})
}

const jmp32Len = 6 // encoded length of jmp rel32, the patch the rewriter plants

// Verify validates hard as a hardening of orig. An error means the
// inputs are unusable (no text section, undecodable original); problems
// with the hardened binary itself are reported as violations.
func Verify(orig, hard *relf.Binary) (*Report, error) {
	rep := &Report{}
	prog, err := cfg.Disassemble(orig)
	if err != nil {
		return nil, fmt.Errorf("verify: original: %w", err)
	}
	origText := orig.Text()
	hardText := hard.Text()
	if hardText == nil {
		rep.violate(KindMeta, 0, "hardened binary has no text section")
		return rep, nil
	}
	if hardText.Addr != origText.Addr || len(hardText.Data) != len(origText.Data) {
		rep.violate(KindMeta, hardText.Addr,
			"hardened text layout differs from original (%#x+%d vs %#x+%d)",
			hardText.Addr, len(hardText.Data), origText.Addr, len(origText.Data))
		return rep, nil
	}

	recs, err := rtlib.SitesFrom(hard)
	if err != nil {
		rep.violate(KindMeta, 0, "%v", err)
		return rep, nil
	}
	rep.Checks = len(recs)

	origins := sectionTable(hard, relf.OriginTableSection, rep)
	patches := sectionTable(hard, relf.PatchTableSection, rep)
	unprot := sectionTable(hard, redfat.UnprotSection, rep)
	trampSec := hard.Section(".tramp")

	var opt redfat.Options
	haveConfig := false
	if s := hard.Section(redfat.ConfigSection); s == nil {
		rep.violate(KindMeta, 0, "missing %s section", redfat.ConfigSection)
	} else if opt, _, err = redfat.DecodeConfig(s.Data); err != nil {
		rep.violate(KindMeta, 0, "%v", err)
	} else {
		haveConfig = true
	}

	checkIdx := -1
	for i, n := range hard.Imports {
		if n == rtlib.CheckImport {
			checkIdx = i
		}
	}

	// Batch heads (leader record PCs): stealing must never swallow one.
	leaderPC := make(map[uint64]bool)
	for i := range recs {
		if recs[i].Leader {
			leaderPC[recs[i].PC] = true
		}
	}

	// The validator's graph must be built under the same recovery knob the
	// rewriter recorded: recovered edges change the liveness and
	// availability solutions in both directions (new edges can both prove
	// and break facts), and the audits below compare against what the
	// rewriter actually used.
	df := cfg.NewDataflowOpts(prog, cfg.GraphOptions{NoIndirect: opt.NoIndirect})

	// Walk every trampoline (sorted for deterministic reports).
	trampAddrs := make([]uint64, 0, len(origins))
	for t := range origins {
		trampAddrs = append(trampAddrs, t)
	}
	sort.Slice(trampAddrs, func(i, j int) bool { return trampAddrs[i] < trampAddrs[j] })

	usedBy := make(map[int]uint64)  // record index → referencing trampoline
	patchedSpan := map[uint64]int{} // origin addr → overwritten byte count
	for _, trampAddr := range trampAddrs {
		origAddr := origins[trampAddr]
		rep.Trampolines++
		head, ok := prog.InstAt(origAddr)
		if !ok {
			rep.violate(KindPatch, origAddr, "origin is not an instruction boundary")
			continue
		}

		// Re-derive the patch: a jmp rel32 to the trampoline (T1/T2,
		// trailing stolen bytes trap-filled) or a dispatched trap (T3).
		off := int(origAddr - hardText.Addr)
		displaced := []int{head}
		span := int(prog.Insts[head].Inst.Len)
		site, derr := isa.Decode(hardText.Data[off:])
		switch {
		case derr == nil && site.Op == isa.JMP && site.Form == isa.FRel32 &&
			origAddr+uint64(site.Len)+uint64(site.Imm) == trampAddr:
			for span < jmp32Len {
				j := displaced[len(displaced)-1] + 1
				if j >= len(prog.Insts) {
					rep.violate(KindPatch, origAddr, "patch span runs past the text section")
					break
				}
				displaced = append(displaced, j)
				span += int(prog.Insts[j].Inst.Len)
			}
			for k := int(site.Len); k < span; k++ {
				if hardText.Data[off+k] != byte(isa.TRAP) {
					rep.violate(KindPatch, origAddr+uint64(k),
						"stolen byte %#x not trap-filled", hardText.Data[off+k])
				}
			}
		case hardText.Data[off] == byte(isa.TRAP) && patches[origAddr] == trampAddr:
			// T3: single-instruction trap dispatched through .rf.patch.
		default:
			rep.violate(KindPatch, origAddr,
				"patched site decodes to neither a jump to its trampoline %#x nor a dispatched trap", trampAddr)
			continue
		}
		patchedSpan[origAddr] = span

		// Stolen instructions must not include a recovered leader (a
		// potential jump target) or another trampoline's batch head.
		for _, j := range displaced[1:] {
			a := prog.Insts[j].Addr
			if prog.Leaders[a] {
				rep.violate(KindSteal, a, "byte stealing swallowed block leader (patch at %#x)", origAddr)
			}
			if leaderPC[a] && a != origAddr {
				rep.violate(KindSteal, a, "byte stealing swallowed batch head (patch at %#x)", origAddr)
			}
		}

		if trampSec == nil {
			rep.violate(KindMeta, trampAddr, "origin entry but no .tramp section")
			continue
		}
		walkTrampoline(rep, prog, trampSec, trampAddr, origAddr, head, displaced,
			span, recs, checkIdx, usedBy)
	}

	// Every check record must be referenced by exactly one trampoline.
	for i := range recs {
		if _, ok := usedBy[i]; !ok {
			rep.violate(KindSites, recs[i].PC, "check record %d referenced by no trampoline", i)
		}
	}

	// Text bytes outside patched spans must be untouched.
	touched := make([]bool, len(hardText.Data))
	for a, n := range patchedSpan {
		for k := 0; k < n; k++ {
			touched[int(a-hardText.Addr)+k] = true
		}
	}
	mismatch, first := 0, uint64(0)
	for i := range hardText.Data {
		if !touched[i] && hardText.Data[i] != origText.Data[i] {
			if mismatch == 0 {
				first = hardText.Addr + uint64(i)
			}
			mismatch++
		}
	}
	if mismatch > 0 {
		rep.violate(KindPatch, first, "%d unpatched text bytes differ from the original", mismatch)
	}

	// Liveness audit: the leader record of every trampoline must save at
	// least what the whole-CFG solution proves live at the head.
	auditLiveness(rep, df, prog, recs, usedBy)

	// Coverage audit: re-run the recorded selection policy and require
	// every selected operand to be protected or explicitly exempted.
	if haveConfig {
		auditCoverage(rep, df, prog, recs, unprot, opt)
	}

	// Edge audit: every recovered indirect-flow claim the rewriter's
	// dataflow consumed must be independently re-derivable from the
	// original binary alone. The base graph is built with recovery off so
	// its edges owe nothing to the claims under audit.
	if haveConfig && !opt.NoIndirect && df.Graph.Indirect != nil {
		base := cfg.NewGraphOpts(prog, cfg.GraphOptions{NoIndirect: true})
		AuditEdges(rep, orig, prog, base, df.Graph.Indirect)
	}
	return rep, nil
}

// sectionTable decodes an optional patch-table-format section; a missing
// section is an empty table, a corrupt one is a violation.
func sectionTable(bin *relf.Binary, name string, rep *Report) map[uint64]uint64 {
	s := bin.Section(name)
	if s == nil {
		return map[uint64]uint64{}
	}
	m, err := relf.DecodePatchTable(s.Data)
	if err != nil {
		rep.violate(KindMeta, 0, "%s: %v", name, err)
		return map[uint64]uint64{}
	}
	return m
}

// walkTrampoline decodes one trampoline and checks it against the
// displaced original instructions: payload check calls, then each
// displaced instruction relocated but semantically unchanged, then the
// jump back to the original successor.
func walkTrampoline(rep *Report, prog *cfg.Program, trampSec *relf.Section,
	trampAddr, origAddr uint64, head int, displaced []int, span int,
	recs []rtlib.Check, checkIdx int, usedBy map[int]uint64) {

	pos := trampAddr
	decodeNext := func() (isa.Inst, bool) {
		o := int(pos - trampSec.Addr)
		if o < 0 || o >= len(trampSec.Data) {
			rep.violate(KindTramp, pos, "trampoline for %#x runs past .tramp", origAddr)
			return isa.Inst{}, false
		}
		in, err := isa.Decode(trampSec.Data[o:])
		if err != nil {
			rep.violate(KindTramp, pos, "trampoline for %#x undecodable: %v", origAddr, err)
			return isa.Inst{}, false
		}
		pos += uint64(in.Len)
		return in, true
	}

	// Payload: the run of RTCALLs into the check import.
	var payload []int
	for {
		save := pos
		in, ok := decodeNext()
		if !ok {
			return
		}
		if in.Op != isa.RTCALL || in.Form != isa.FI {
			pos = save
			break
		}
		idx, arg := vm.SplitRTCallImm(in.Imm)
		if idx != checkIdx {
			pos = save
			break
		}
		si := int(arg)
		if si >= len(recs) {
			rep.violate(KindSites, save, "trampoline for %#x calls out-of-range check record %d", origAddr, si)
			return
		}
		if prev, dup := usedBy[si]; dup {
			rep.violate(KindSites, recs[si].PC,
				"check record %d referenced by trampolines %#x and %#x", si, prev, trampAddr)
		}
		usedBy[si] = trampAddr
		payload = append(payload, si)
	}
	if len(payload) == 0 {
		rep.violate(KindTramp, trampAddr, "trampoline for %#x has no check payload", origAddr)
	} else {
		lead := &recs[payload[0]]
		if !lead.Leader {
			rep.violate(KindSites, lead.PC,
				"first check of trampoline %#x is not flagged as batch leader", trampAddr)
		}
		if lead.PC != origAddr {
			rep.violate(KindSites, lead.PC,
				"leader check PC does not match patch origin %#x", origAddr)
		}
		for _, si := range payload[1:] {
			if recs[si].Leader {
				rep.violate(KindSites, recs[si].PC,
					"non-head check record %d flagged as batch leader (trampoline %#x)", si, trampAddr)
			}
		}
	}

	// Displaced instructions: relocated, semantically identical.
	for _, j := range displaced {
		tAddr := pos
		t, ok := decodeNext()
		if !ok {
			return
		}
		if d := displacedMismatch(prog.Insts[j], t, tAddr); d != "" {
			rep.violate(KindTramp, tAddr,
				"displaced %s at %#x does not round-trip: %s",
				prog.Insts[j].Inst.String(), prog.Insts[j].Addr, d)
		}
	}

	// Jump back to the first non-displaced original instruction.
	tAddr := pos
	jb, ok := decodeNext()
	if !ok {
		return
	}
	resume := origAddr + uint64(span)
	if jb.Op != isa.JMP || jb.Form != isa.FRel32 ||
		tAddr+uint64(jb.Len)+uint64(jb.Imm) != resume {
		rep.violate(KindTramp, tAddr,
			"trampoline for %#x does not return to %#x", origAddr, resume)
	}
}

// displacedMismatch compares a displaced original instruction with its
// trampoline copy at tAddr. Relocation may widen rel8 branches to rel32
// and rewrite PC-relative fields, but the absolute targets must be
// unchanged; everything else must be identical.
func displacedMismatch(o cfg.DecodedInst, t isa.Inst, tAddr uint64) string {
	if t.Op != o.Inst.Op {
		return fmt.Sprintf("opcode %s != %s", t.Op, o.Inst.Op)
	}
	oNext := int64(o.Addr) + int64(o.Inst.Len)
	tNext := int64(tAddr) + int64(t.Len)
	if o.Inst.Form == isa.FRel8 || o.Inst.Form == isa.FRel32 {
		if t.Form != isa.FRel32 {
			return fmt.Sprintf("relocated branch has form %d, want rel32", t.Form)
		}
		if oNext+o.Inst.Imm != tNext+t.Imm {
			return fmt.Sprintf("branch target %#x != original %#x",
				uint64(tNext+t.Imm), uint64(oNext+o.Inst.Imm))
		}
		return ""
	}
	if t.Form != o.Inst.Form || t.Reg != o.Inst.Reg || t.Reg2 != o.Inst.Reg2 {
		return "operands differ"
	}
	if o.Inst.HasMem() && o.Inst.Mem.Base == isa.RIP {
		om, tm := o.Inst.Mem, t.Mem
		if tm.Base != isa.RIP || tm.Seg != om.Seg || tm.Index != om.Index || tm.Scale != om.Scale {
			return "rip-relative operand shape differs"
		}
		if t.Imm != o.Inst.Imm {
			return "immediate differs"
		}
		if oNext+int64(om.Disp) != tNext+int64(tm.Disp) {
			return fmt.Sprintf("rip-relative target %#x != original %#x",
				uint64(tNext+int64(tm.Disp)), uint64(oNext+int64(om.Disp)))
		}
		return ""
	}
	if t.Imm != o.Inst.Imm || t.Mem != o.Inst.Mem {
		return "immediate or memory operand differs"
	}
	return ""
}

// auditLiveness checks every trampoline leader's save set against the
// validator's own whole-CFG liveness solution. The rewriter may save
// more (block-local liveness, or specialization disabled) but never
// less.
func auditLiveness(rep *Report, df *cfg.Dataflow, prog *cfg.Program,
	recs []rtlib.Check, usedBy map[int]uint64) {
	for i := range recs {
		c := &recs[i]
		if !c.Leader {
			continue
		}
		if _, ok := usedBy[i]; !ok {
			continue // already reported as unreferenced
		}
		head, ok := prog.InstAt(c.PC)
		if !ok {
			rep.violate(KindSites, c.PC, "leader check PC is not an instruction boundary")
			continue
		}
		required := 4 - df.DeadRegsAt(head).Count()
		if required < 0 {
			required = 0
		}
		if int(c.SavedRegs) < required {
			rep.violate(KindLiveness, c.PC,
				"trampoline saves %d scratch registers, %d live at head", c.SavedRegs, required)
		}
		if !c.SaveFlags && !df.FlagsDeadAt(head) {
			rep.violate(KindLiveness, c.PC, "trampoline drops flags that are live at head")
		}
	}
}

// auditCoverage re-runs the recorded site-selection policy over the
// original program and requires every selected operand to be protected:
// either a check record at its own address covering its span, or an
// available check (same address shape, unredefined registers, no
// intervening call) from a dominating site. Operands listed in
// .rf.unprot — patches the rewriter reported as failed — are exempt.
//
// Coverage is mode-agnostic: with an allow-list in effect the full/
// redzone split per site is not recoverable from the binary alone.
func auditCoverage(rep *Report, df *cfg.Dataflow, prog *cfg.Program,
	recs []rtlib.Check, unprot map[uint64]uint64, opt redfat.Options) {

	recsAt := make(map[uint64][]int)
	gens := make([]cfg.CheckSite, 0, len(recs))
	for i := range recs {
		c := &recs[i]
		recsAt[c.PC] = append(recsAt[c.PC], i)
		if j, ok := prog.InstAt(c.PC); ok {
			lo := int64(c.Operand.Disp)
			gens = append(gens, cfg.CheckSite{Inst: j, Lo: lo, Hi: lo + int64(c.Len)})
		}
	}
	av := cfg.NewAvail(df.Graph, gens)

	for i := range prog.Insts {
		di := &prog.Insts[i]
		in := &di.Inst
		if !in.IsMemAccess() {
			continue
		}
		if !opt.CheckReads && !in.Writes() {
			continue
		}
		if opt.Elim && redfat.Eliminable(in.Mem) {
			continue
		}
		rep.Operands++
		if _, ok := unprot[di.Addr]; ok {
			rep.Exempt++
			continue
		}
		lo := int64(in.Mem.Disp)
		hi := lo + int64(in.MemWidth())
		covered := false
		for _, ri := range recsAt[di.Addr] {
			c := &recs[ri]
			if c.Operand.Seg == in.Mem.Seg && c.Operand.Base == in.Mem.Base &&
				c.Operand.Index == in.Mem.Index && c.Operand.Scale == in.Mem.Scale &&
				int64(c.Operand.Disp) <= lo && int64(c.Operand.Disp)+int64(c.Len) >= hi {
				covered = true
				break
			}
		}
		if !covered {
			_, covered = av.CoverageAt(cfg.CheckSite{Inst: i, Lo: lo, Hi: hi})
		}
		if covered {
			rep.Covered++
			continue
		}
		rep.violate(KindCoverage, di.Addr,
			"selected operand %s is protected by no check", in.Mem.String())
	}
}

// Structural validates a hardened binary without its original: metadata
// sections decode, every trampoline's payload references valid check
// records (leaders first and only first), every record is referenced
// exactly once, and every trampoline ends in a jump back into the text
// section past its origin. Round-trip, liveness and coverage audits
// require the original binary (use Verify).
func Structural(hard *relf.Binary) (*Report, error) {
	rep := &Report{}
	text := hard.Text()
	if text == nil {
		rep.violate(KindMeta, 0, "no text section")
		return rep, nil
	}
	recs, err := rtlib.SitesFrom(hard)
	if err != nil {
		rep.violate(KindMeta, 0, "%v", err)
		return rep, nil
	}
	rep.Checks = len(recs)
	if s := hard.Section(redfat.ConfigSection); s == nil {
		rep.violate(KindMeta, 0, "missing %s section", redfat.ConfigSection)
	} else if _, _, err := redfat.DecodeConfig(s.Data); err != nil {
		rep.violate(KindMeta, 0, "%v", err)
	}
	origins := sectionTable(hard, relf.OriginTableSection, rep)
	trampSec := hard.Section(".tramp")
	if len(origins) > 0 && trampSec == nil {
		rep.violate(KindMeta, 0, "origin entries but no .tramp section")
		return rep, nil
	}

	checkIdx := -1
	for i, n := range hard.Imports {
		if n == rtlib.CheckImport {
			checkIdx = i
		}
	}

	trampAddrs := make([]uint64, 0, len(origins))
	for t := range origins {
		trampAddrs = append(trampAddrs, t)
	}
	sort.Slice(trampAddrs, func(i, j int) bool { return trampAddrs[i] < trampAddrs[j] })

	usedBy := make(map[int]uint64)
	for _, trampAddr := range trampAddrs {
		origAddr := origins[trampAddr]
		rep.Trampolines++
		if origAddr < text.Addr || origAddr >= text.End() {
			rep.violate(KindPatch, origAddr, "origin outside the text section")
			continue
		}
		pos := trampAddr
		var payload []int
		sawBack := false
		inPayload := true // the payload is a prefix: ends at the first non-check instruction
		for {
			o := int(pos - trampSec.Addr)
			if o < 0 || o >= len(trampSec.Data) {
				rep.violate(KindTramp, pos, "trampoline for %#x runs past .tramp", origAddr)
				break
			}
			in, err := isa.Decode(trampSec.Data[o:])
			if err != nil {
				rep.violate(KindTramp, pos, "trampoline for %#x undecodable: %v", origAddr, err)
				break
			}
			if inPayload && in.Op == isa.RTCALL && in.Form == isa.FI {
				if idx, arg := vm.SplitRTCallImm(in.Imm); idx == checkIdx {
					si := int(arg)
					if si >= len(recs) {
						rep.violate(KindSites, pos, "out-of-range check record %d", si)
					} else {
						if prev, dup := usedBy[si]; dup {
							rep.violate(KindSites, recs[si].PC,
								"check record %d referenced by trampolines %#x and %#x", si, prev, trampAddr)
						}
						usedBy[si] = trampAddr
						payload = append(payload, si)
					}
					pos += uint64(in.Len)
					continue
				}
			}
			inPayload = false
			// Past the payload: scan for the jump back into text.
			if in.Op == isa.JMP && in.Form == isa.FRel32 {
				if tgt := pos + uint64(in.Len) + uint64(in.Imm); tgt > origAddr && tgt <= text.End() {
					sawBack = true
					break
				}
			}
			pos += uint64(in.Len)
			if pos > trampAddr+4096 {
				rep.violate(KindTramp, trampAddr, "trampoline for %#x has no return jump", origAddr)
				break
			}
		}
		if !sawBack {
			continue
		}
		if len(payload) == 0 {
			rep.violate(KindTramp, trampAddr, "trampoline for %#x has no check payload", origAddr)
			continue
		}
		if lead := &recs[payload[0]]; !lead.Leader || lead.PC != origAddr {
			rep.violate(KindSites, lead.PC,
				"trampoline %#x head record is not the leader at its origin", trampAddr)
		}
		for _, si := range payload[1:] {
			if recs[si].Leader {
				rep.violate(KindSites, recs[si].PC, "non-head check record %d flagged as leader", si)
			}
		}
	}
	for i := range recs {
		if _, ok := usedBy[i]; !ok {
			rep.violate(KindSites, recs[i].PC, "check record %d referenced by no trampoline", i)
		}
	}
	return rep, nil
}
