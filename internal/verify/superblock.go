package verify

// Superblock certifier (DESIGN.md §14). The trace compiler is two-phase:
// analyzeTrace derives a declarative plan (vm.TraceInfo) and emitTrace
// compiles closures from the plan and nothing else. That makes the plan
// the certifiable artifact: if every claim in it is consistent with the
// single-step semantics, the compiled trace is equivalent to the
// interpreter on every path.
//
// This file re-derives every claim independently of internal/vm's
// analyzer — it re-decodes each step's instruction from guest memory,
// recomputes the per-step cost model and the full exit table (kind,
// stage, resume RIP, retired count, cycle prefix) from its own per-op
// tables, re-resolves every fused check plan through VM.InlineCheck,
// re-proves each flag-elision claim with its own backward liveness, and
// re-proves each check-elision claim by scanning the leader→follower
// gap for plan-register writes and guest stores. The tables here
// intentionally duplicate the interpreter's documented semantics rather
// than calling into the analyzer: the point is two independent
// derivations that must agree.

import (
	"redfat/internal/isa"
	"redfat/internal/vm"
)

// Superblocks certifies every trace plan the VM has compiled so far.
// Counts accumulate in the report; any disagreement with the re-derived
// model is a KindTrace violation anchored at the offending step's PC.
func Superblocks(v *vm.VM) *Report {
	rep := &Report{}
	for _, info := range v.CompiledTraces() {
		certifyTrace(v, info, rep)
	}
	return rep
}

// CertifyTrace certifies a single trace plan against the VM it was
// compiled for (exported so tests can certify mutated copies).
func CertifyTrace(v *vm.VM, info *vm.TraceInfo) *Report {
	rep := &Report{}
	certifyTrace(v, info, rep)
	return rep
}

func certifyTrace(v *vm.VM, info *vm.TraceInfo, rep *Report) {
	rep.Traces++
	rep.TraceSteps += len(info.Steps)
	if len(info.Steps) == 0 {
		rep.violate(KindTrace, info.EntryPC, "trace has no steps")
		return
	}
	if info.Steps[0].PC != info.EntryPC {
		rep.violate(KindTrace, info.EntryPC,
			"trace entry %#x is not the first step's PC %#x", info.EntryPC, info.Steps[0].PC)
	}
	models := make([]sbStep, len(info.Steps))
	ok := true
	for i := range info.Steps {
		st := &info.Steps[i]
		certifyDecode(v, st, rep)
		certifyCheck(v, st, rep)
		m, mok := sbModel(v, info, i, rep)
		if !mok {
			ok = false
			continue
		}
		models[i] = m
		if m.terminal && i != len(info.Steps)-1 {
			rep.violate(KindTrace, st.PC, "trace continues past terminal %s", st.Inst.Op)
			ok = false
		}
		if st.Next != m.next {
			rep.violate(KindTrace, st.PC,
				"step continues at %#x, single-step model derives %#x", st.Next, m.next)
			ok = false
		}
		if st.Cost != m.cost {
			rep.violate(KindTrace, st.PC,
				"step charges %d cycles, single-step model charges %d", st.Cost, m.cost)
			ok = false
		}
		if i+1 < len(info.Steps) && st.Next != info.Steps[i+1].PC {
			rep.violate(KindTrace, st.PC,
				"step continues at %#x but the next step is at %#x", st.Next, info.Steps[i+1].PC)
			ok = false
		}
	}
	if ok {
		certifyExits(info, models, rep)
		certifyMaxCost(info, models, rep)
	}
	certifyFlags(info, rep)
	certifyElision(info, rep)
}

// certifyDecode re-decodes the step's instruction from guest memory: a
// compiled trace must embed exactly what the current code bytes say
// (FlushICache discards traces over modified code, so a mismatch means
// the plan and the image disagree).
func certifyDecode(v *vm.VM, st *vm.TraceStep, rep *Report) {
	var buf [isa.MaxInstLen]byte
	n := v.Mem.Fetch(st.PC, buf[:])
	if n == 0 {
		rep.violate(KindTrace, st.PC, "compiled step is not in executable memory")
		return
	}
	in, err := isa.Decode(buf[:n])
	if err != nil {
		rep.violate(KindTrace, st.PC, "compiled step does not decode: %v", err)
		return
	}
	if in != st.Inst {
		rep.violate(KindTrace, st.PC,
			"compiled %s differs from guest memory (%s)", st.Inst.String(), in.String())
	}
}

// certifyCheck re-resolves a fused check step's plan through the VM's
// check resolver and requires the recorded plan key to match it field
// for field. A fused RTCALL with no check record is a dropped check: the
// emitter would compile the call as a plain step and skip the runtime
// check entirely.
func certifyCheck(v *vm.VM, st *vm.TraceStep, rep *Report) {
	if st.Inst.Op != isa.RTCALL {
		if st.Check != nil {
			rep.violate(KindTrace, st.PC, "non-RTCALL step carries a check record")
		}
		return
	}
	idx, arg := vm.SplitRTCallImm(st.Inst.Imm)
	c := st.Check
	if c == nil {
		rep.violate(KindTrace, st.PC, "fused RTCALL has no check record (dropped check)")
		return
	}
	if c.ImportIdx != idx || c.Arg != arg {
		rep.violate(KindTrace, st.PC,
			"check record names site %d/%d, the RTCALL encodes %d/%d", c.ImportIdx, c.Arg, idx, arg)
	}
	if v.InlineCheck == nil {
		rep.violate(KindTrace, st.PC, "fused check but the VM has no check resolver")
		return
	}
	plan := v.InlineCheck(v, st.PC, idx, arg)
	if plan == nil {
		rep.violate(KindTrace, st.PC, "RTCALL does not resolve to an instrumented check")
		return
	}
	if plan.BaseReg != c.BaseReg || plan.IndexReg != c.IndexReg ||
		plan.Scale != c.Scale || plan.Seg != c.Seg ||
		plan.StaticOff != c.StaticOff || plan.Length != c.Length ||
		plan.TryLowFat != c.TryLowFat || plan.SizeCheck != c.SizeCheck ||
		plan.Profile != c.Profile || plan.MaxCost != c.MaxCost {
		rep.violate(KindTrace, st.PC,
			"check record's plan differs from the runtime's plan for site %d", c.Arg)
	}
}

// sbExit is one re-derived exit of a step. extra holds only the exiting
// step's own charge on that path; the prefix of the preceding steps is
// added when comparing against the plan's absolute totals.
type sbExit struct {
	kind    vm.ExitKind
	stage   uint8
	rip     uint64
	dynamic bool
	extra   uint64
}

// sbStep is the re-derivation of one trace step: its continue-path cost
// and successor, its exits in chronological order, and whether it must
// terminate the trace (dynamic control flow or halt).
type sbStep struct {
	cost     uint64
	next     uint64
	exits    []sbExit
	terminal bool
}

// sbModel recomputes one step's cost and exit structure from the
// instruction alone, mirroring the interpreter's documented charge
// points: each memory access charges CostMem before it can fault, a
// compute charge (CostMul) lands after the load, and branch/call/div
// charges follow the interpreter's order exactly.
func sbModel(v *vm.VM, info *vm.TraceInfo, i int, rep *Report) (sbStep, bool) {
	st := &info.Steps[i]
	in := &st.Inst
	pc := st.PC
	next := pc + uint64(in.Len)
	base := vm.CostInst + info.Overhead
	m := sbStep{next: next}
	bad := func(format string, args ...any) (sbStep, bool) {
		rep.violate(KindTrace, pc, format, args...)
		return m, false
	}
	fault := func(stage uint8, rip, extra uint64) {
		m.exits = append(m.exits, sbExit{kind: vm.ExitFault, stage: stage, rip: rip, extra: extra})
	}

	switch in.Op {
	case isa.NOP, isa.CQO, isa.LEA, isa.LPAD:
		m.cost = base

	case isa.XCHG:
		if in.Form != isa.FRR {
			return bad("unsupported %s form compiled into a trace", in.Op)
		}
		m.cost = base

	case isa.MOV, isa.MOVABS, isa.MOVZX, isa.MOVSX,
		isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR,
		isa.CMP, isa.TEST, isa.IMUL:
		var mul uint64
		if in.Op == isa.IMUL {
			mul = vm.CostMul
		}
		switch in.Form {
		case isa.FRR, isa.FRI:
			m.cost = base + mul
		case isa.FRM:
			m.cost = base + vm.CostMem + mul
			fault(1, pc, base+vm.CostMem)
		case isa.FMR, isa.FMI:
			switch in.Op {
			case isa.MOV, isa.CMP, isa.TEST: // plain store / load only
				m.cost = base + vm.CostMem
				fault(1, pc, base+vm.CostMem)
			case isa.MOVABS, isa.MOVZX, isa.MOVSX:
				return bad("unsupported %s form compiled into a trace", in.Op)
			default: // read-modify-write
				m.cost = base + 2*vm.CostMem + mul
				fault(1, pc, base+vm.CostMem)
				fault(2, pc, base+2*vm.CostMem+mul)
			}
		default:
			return bad("unsupported %s form compiled into a trace", in.Op)
		}

	case isa.PUSH:
		switch in.Form {
		case isa.FR:
			m.cost = base + vm.CostMem
			fault(1, pc, base)
		case isa.FM:
			m.cost = base + 2*vm.CostMem
			fault(1, pc, base+vm.CostMem)
			fault(2, pc, base+vm.CostMem)
		default:
			return bad("unsupported %s form compiled into a trace", in.Op)
		}

	case isa.PUSHF, isa.POPF:
		m.cost = base + vm.CostMem
		fault(1, pc, base)

	case isa.POP:
		switch in.Form {
		case isa.FR:
			m.cost = base + vm.CostMem
			fault(1, pc, base)
		case isa.FM:
			m.cost = base + 2*vm.CostMem
			fault(1, pc, base)
			fault(2, pc, base+2*vm.CostMem)
		default:
			return bad("unsupported %s form compiled into a trace", in.Op)
		}

	case isa.INC, isa.DEC, isa.NEG, isa.NOT:
		if in.Form == isa.FR {
			m.cost = base
			break
		}
		m.cost = base + 2*vm.CostMem
		fault(1, pc, base+vm.CostMem)
		fault(2, pc, base+2*vm.CostMem)

	case isa.SHL, isa.SHR, isa.SAR:
		m.cost = base

	case isa.UDIV, isa.IDIV:
		m.cost = base + vm.CostDiv
		fault(1, pc, base+vm.CostDiv)

	case isa.HLT:
		m.cost = base
		m.terminal = true
		m.exits = append(m.exits, sbExit{kind: vm.ExitHalt, rip: next, extra: base})

	case isa.TRAP:
		target, found := v.PatchTable[pc]
		if !found {
			return bad("TRAP step has no patch-table entry")
		}
		m.cost = base + vm.CostTrap
		m.next = target

	case isa.JMP:
		switch in.Form {
		case isa.FRel8, isa.FRel32:
			m.cost = base + vm.CostBranch
			m.next = next + uint64(in.Imm)
		case isa.FR:
			m.cost = base + vm.CostBranch
			m.next = 0
			m.terminal = true
			m.exits = append(m.exits, sbExit{kind: vm.ExitDyn, dynamic: true, extra: m.cost})
		case isa.FM:
			m.cost = base + vm.CostMem + vm.CostBranch
			m.next = 0
			m.terminal = true
			fault(1, pc, base+vm.CostMem)
			m.exits = append(m.exits, sbExit{kind: vm.ExitDyn, dynamic: true, extra: m.cost})
		default:
			return bad("unsupported %s form compiled into a trace", in.Op)
		}

	case isa.CALL:
		switch in.Form {
		case isa.FRel32:
			m.cost = base + vm.CostCall + vm.CostBranch
			m.next = next + uint64(in.Imm)
			fault(1, pc, base+vm.CostCall)
		case isa.FR:
			m.cost = base + vm.CostCall + vm.CostBranch
			m.next = 0
			m.terminal = true
			fault(1, pc, base+vm.CostCall)
			m.exits = append(m.exits, sbExit{kind: vm.ExitDyn, dynamic: true, extra: m.cost})
		case isa.FM:
			m.cost = base + vm.CostCall + vm.CostMem + vm.CostBranch
			m.next = 0
			m.terminal = true
			fault(1, pc, base+vm.CostCall+vm.CostMem)
			fault(2, pc, base+vm.CostCall+vm.CostMem)
			m.exits = append(m.exits, sbExit{kind: vm.ExitDyn, dynamic: true, extra: m.cost})
		default:
			return bad("unsupported %s form compiled into a trace", in.Op)
		}

	case isa.RET:
		m.cost = base + vm.CostCall + vm.CostBranch
		m.next = 0
		m.terminal = true
		fault(1, pc, base+vm.CostCall)
		// Exit sentinel: the interpreter halts with RIP still at the RET.
		m.exits = append(m.exits, sbExit{kind: vm.ExitHalt, rip: pc, extra: base + vm.CostCall})
		m.exits = append(m.exits, sbExit{kind: vm.ExitDyn, dynamic: true, extra: m.cost})

	case isa.RTCALL:
		m.cost = base
		fault(1, next, base)

	default:
		if !in.Op.IsCondJump() {
			return bad("unsupported %s compiled into a trace", in.Op)
		}
		tt := next + uint64(in.Imm)
		taken := st.Next == tt
		if in.Imm == 0 {
			// Both directions resume at the same PC; the claimed cost
			// identifies which one the plan predicted.
			taken = st.Cost == base+vm.CostBranch
		}
		if taken {
			m.cost = base + vm.CostBranch
			m.next = tt
			m.exits = append(m.exits, sbExit{kind: vm.ExitSide, rip: next, extra: base})
		} else {
			if st.Next != next {
				return bad("conditional continues at %#x, neither %#x nor %#x", st.Next, next, tt)
			}
			m.cost = base
			m.next = next
			m.exits = append(m.exits, sbExit{kind: vm.ExitSide, rip: tt, extra: base + vm.CostBranch})
		}
	}
	return m, true
}

// certifyExits rebuilds the full exit table from the per-step models —
// chronological within a step, steps in order, the terminal fall/loop
// exit last — and requires the plan's table to match it exactly: kind,
// stage, resume RIP, dynamic bit, retired count, and the absolute cycle
// total materialized on that path.
func certifyExits(info *vm.TraceInfo, models []sbStep, rep *Report) {
	n := len(info.Steps)
	start := make([]uint64, n+1)
	for i := range models {
		start[i+1] = start[i] + models[i].cost
	}
	var want []vm.TraceExit
	for i := range models {
		for _, e := range models[i].exits {
			want = append(want, vm.TraceExit{
				Step: i, Kind: e.kind, Stage: e.stage, RIP: e.rip, Dynamic: e.dynamic,
				Retired: uint64(i + 1), Cycles: start[i] + e.extra,
			})
		}
	}
	if last := &models[n-1]; !last.terminal {
		kind := vm.ExitFall
		if info.Steps[n-1].Next == info.EntryPC {
			kind = vm.ExitLoop
		}
		want = append(want, vm.TraceExit{
			Step: n - 1, Kind: kind, RIP: info.Steps[n-1].Next,
			Retired: uint64(n), Cycles: start[n-1] + last.cost,
		})
	}
	if len(info.Exits) != len(want) {
		rep.violate(KindTrace, info.EntryPC,
			"trace has %d exits, single-step model derives %d", len(info.Exits), len(want))
		return
	}
	for i := range want {
		if info.Exits[i] != want[i] {
			rep.violate(KindTrace, info.Steps[want[i].Step].PC,
				"exit %d materializes %+v, single-step model derives %+v", i, info.Exits[i], want[i])
		}
	}
}

// certifyMaxCost recomputes the worst-case charge of one full iteration
// — per-step maxima over the continue and every fault path, plus each
// fused check's dynamic bound — which gates trace entry against the
// cycle budget. An understated bound would let the compiled trace run
// past the abort point.
func certifyMaxCost(info *vm.TraceInfo, models []sbStep, rep *Report) {
	var total uint64
	for i := range models {
		worst := models[i].cost
		for _, e := range models[i].exits {
			if e.extra > worst {
				worst = e.extra
			}
		}
		total += worst
		if c := info.Steps[i].Check; c != nil {
			total += c.MaxCost
		}
	}
	if info.MaxCost != total {
		rep.violate(KindTrace, info.EntryPC,
			"trace bounds one iteration at %d cycles, single-step model derives %d", info.MaxCost, total)
	}
}

// Per-flag liveness masks, local to the certifier.
const (
	sbZ uint8 = 1 << iota
	sbS
	sbC
	sbO

	sbAll = sbZ | sbS | sbC | sbO
)

// sbFlagNames renders a flag mask for violation details.
func sbFlagNames(mask uint8) string {
	names := [...]struct {
		bit  uint8
		name string
	}{{sbZ, "Z"}, {sbS, "S"}, {sbC, "C"}, {sbO, "O"}}
	out := ""
	for _, f := range names {
		if mask&f.bit != 0 {
			out += f.name
		}
	}
	return out
}

// sbCondReads returns the flags a conditional jump observes.
func sbCondReads(op isa.Op) uint8 {
	switch op {
	case isa.JE, isa.JNE:
		return sbZ
	case isa.JL, isa.JGE:
		return sbS | sbO
	case isa.JLE, isa.JG:
		return sbZ | sbS | sbO
	case isa.JB, isa.JAE:
		return sbC
	case isa.JBE, isa.JA:
		return sbC | sbZ
	case isa.JS, isa.JNS:
		return sbS
	case isa.JO, isa.JNO:
		return sbO
	}
	return 0
}

// sbFlagsRead returns the flags an on-trace instruction observes.
func sbFlagsRead(in *isa.Inst) uint8 {
	if in.Op.IsCondJump() {
		return sbCondReads(in.Op)
	}
	if in.Op == isa.PUSHF {
		return sbAll
	}
	return 0
}

// sbFlagsKilled returns the flags an instruction unconditionally
// overwrites on its continue path.
func sbFlagsKilled(in *isa.Inst) uint8 {
	switch in.Op {
	case isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR,
		isa.CMP, isa.TEST, isa.IMUL, isa.NEG, isa.POPF:
		return sbAll
	case isa.INC, isa.DEC:
		return sbZ | sbS | sbO // CF preserved
	case isa.SHL, isa.SHR, isa.SAR:
		if in.Form == isa.FRI && uint64(in.Imm)&63 != 0 {
			return sbAll
		}
		return 0
	}
	return 0
}

// sbFlagsMayWrite returns the flags an instruction might write: the
// kill set, except that a CL-count shift may write without being
// guaranteed to.
func sbFlagsMayWrite(in *isa.Inst) uint8 {
	if in.Op == isa.SHL || in.Op == isa.SHR || in.Op == isa.SAR {
		if in.Form == isa.FRI {
			if uint64(in.Imm)&63 != 0 {
				return sbAll
			}
			return 0
		}
		return sbAll
	}
	return sbFlagsKilled(in)
}

// certifyFlags re-proves every flag-elision claim with its own backward
// per-flag liveness. Flags are forced live at the trace end and at every
// conditional jump (its side exit resumes in the interpreter); fault
// exits terminate the run, so they force nothing.
func certifyFlags(info *vm.TraceInfo, rep *Report) {
	live := sbAll
	for i := len(info.Steps) - 1; i >= 0; i-- {
		st := &info.Steps[i]
		if i == len(info.Steps)-1 || st.Inst.Op.IsCondJump() {
			live = sbAll
		}
		if st.FlagsElided {
			if mw := sbFlagsMayWrite(&st.Inst); mw == 0 {
				rep.violate(KindTrace, st.PC, "flag elision claimed on an instruction that writes no flags")
			} else if obs := live & mw; obs != 0 {
				rep.violate(KindTrace, st.PC,
					"flag update elided but %s observed before being overwritten", sbFlagNames(obs))
			}
		}
		live = (live &^ sbFlagsKilled(&st.Inst)) | sbFlagsRead(&st.Inst)
	}
}

// sbRegBit maps a register to its bit in a written-registers mask.
func sbRegBit(r isa.Reg) uint32 {
	if r >= isa.NumRegs {
		return 0
	}
	return 1 << r
}

// sbRegsWritten returns the general-purpose registers an instruction
// writes, for elision invalidation.
func sbRegsWritten(in *isa.Inst) uint32 {
	switch in.Op {
	case isa.MOV, isa.MOVABS, isa.MOVZX, isa.MOVSX,
		isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.IMUL:
		switch in.Form {
		case isa.FRR, isa.FRI, isa.FRM:
			return sbRegBit(in.Reg)
		}
		return 0
	case isa.LEA:
		return sbRegBit(in.Reg)
	case isa.XCHG:
		return sbRegBit(in.Reg) | sbRegBit(in.Reg2)
	case isa.PUSH, isa.PUSHF, isa.CALL, isa.POPF, isa.RET:
		return sbRegBit(isa.RSP)
	case isa.POP:
		if in.Form == isa.FR {
			return sbRegBit(isa.RSP) | sbRegBit(in.Reg)
		}
		return sbRegBit(isa.RSP)
	case isa.INC, isa.DEC, isa.NEG, isa.NOT:
		if in.Form == isa.FR {
			return sbRegBit(in.Reg)
		}
		return 0
	case isa.SHL, isa.SHR, isa.SAR:
		return sbRegBit(in.Reg)
	case isa.UDIV, isa.IDIV:
		return sbRegBit(isa.RAX) | sbRegBit(isa.RDX)
	case isa.CQO:
		return sbRegBit(isa.RDX)
	}
	return 0
}

// sbStoresMem reports whether an instruction can store to guest memory
// (explicit memory destinations plus the implicit stack stores).
func sbStoresMem(in *isa.Inst) bool {
	switch in.Op {
	case isa.PUSH, isa.PUSHF, isa.CALL:
		return true
	case isa.MOV, isa.MOVABS, isa.MOVZX, isa.MOVSX,
		isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.IMUL:
		return in.Form == isa.FMR || in.Form == isa.FMI
	case isa.INC, isa.DEC, isa.NEG, isa.NOT, isa.POP:
		return in.Form == isa.FM
	case isa.XCHG:
		return in.Form != isa.FRR
	}
	return false
}

// sbSamePlan reports whether two check records share the elision key.
func sbSamePlan(a, b *vm.TraceCheck) bool {
	return a.BaseReg == b.BaseReg && a.IndexReg == b.IndexReg &&
		a.Scale == b.Scale && a.Seg == b.Seg &&
		a.StaticOff == b.StaticOff && a.Length == b.Length &&
		a.TryLowFat == b.TryLowFat && a.SizeCheck == b.SizeCheck &&
		a.Profile == b.Profile
}

// certifyElision re-proves every check-elision claim: the leader must be
// an earlier, non-elided check with the identical plan key publishing
// the same outcome slot, and nothing between leader and follower may
// overwrite a plan register or store to guest memory (either would let
// the two sites compute different outcomes). Leading checks must occupy
// consecutive slots in appearance order.
func certifyElision(info *vm.TraceInfo, rep *Report) {
	slot := 0
	for i := range info.Steps {
		st := &info.Steps[i]
		c := st.Check
		if c == nil {
			continue
		}
		rep.TraceChecks++
		if !c.Elided {
			if c.Leader != -1 {
				rep.violate(KindTrace, st.PC, "leading check carries leader index %d", c.Leader)
			}
			if c.Slot != slot {
				rep.violate(KindTrace, st.PC, "leading check publishes slot %d, expected %d", c.Slot, slot)
			}
			slot++
			continue
		}
		rep.TraceElided++
		if c.Leader < 0 || c.Leader >= i {
			rep.violate(KindTrace, st.PC, "elided check names invalid leader step %d", c.Leader)
			continue
		}
		lead := info.Steps[c.Leader].Check
		if lead == nil || lead.Elided {
			rep.violate(KindTrace, st.PC, "elided check's leader step %d is not a leading check", c.Leader)
			continue
		}
		if !sbSamePlan(c, lead) {
			rep.violate(KindTrace, st.PC, "elided check's plan differs from its leader's")
		}
		if c.Slot != lead.Slot {
			rep.violate(KindTrace, st.PC,
				"elided check reads slot %d, leader publishes slot %d", c.Slot, lead.Slot)
		}
		regs := sbRegBit(c.BaseReg) | sbRegBit(c.IndexReg)
		for j := c.Leader + 1; j < i; j++ {
			mid := &info.Steps[j]
			if mid.Check != nil {
				continue // a check neither writes registers nor stores
			}
			if sbStoresMem(&mid.Inst) {
				rep.violate(KindTrace, st.PC,
					"guest store at %#x between leader and elided check", mid.PC)
			}
			if sbRegsWritten(&mid.Inst)&regs != 0 {
				rep.violate(KindTrace, st.PC,
					"plan register overwritten at %#x between leader and elided check", mid.PC)
			}
		}
	}
}
