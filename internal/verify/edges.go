// Indirect-flow edge audit: re-derive every claim the cfg recovery pass
// makes about indirect control flow, independently of that pass.
//
// The recovered edges feed dominance- and liveness-driven optimizations,
// so an unsound edge (a dynamic transfer the claimed successor set
// misses) silently breaks the hardening guarantees. Following the
// package's translation-validation philosophy, the auditor does not
// trust the recovery implementation: it re-slices the jump operand,
// re-proves the guard bound, re-reads the table, and re-checks the
// closed-function conditions itself, sharing with the recovery only the
// primitives every analysis shares (the decoder, the block partition,
// and the def/use tables). Any claim the auditor cannot re-derive
// EXACTLY is rejected — divergence signals an analysis bug even when
// the particular instance happens to be sound.
package verify

import (
	"encoding/binary"

	"redfat/internal/cfg"
	"redfat/internal/isa"
	"redfat/internal/relf"
)

// AuditEdges re-derives every recovered indirect-flow claim in info
// against bin and reports each failure as a KindEdge violation. The
// graph g must be the claim-free base graph (built with NoIndirect), so
// its edges and predecessors owe nothing to the claims under audit.
func AuditEdges(rep *Report, bin *relf.Binary, prog *cfg.Program, g *cfg.Graph, info *cfg.IndirectInfo) {
	if info == nil {
		return
	}
	a := &edgeAuditor{rep: rep, bin: bin, prog: prog, g: g, info: info}
	a.prepare()
	for i := range info.Resolved {
		r := &info.Resolved[i]
		rep.EdgeSites++
		rep.EdgeTargets += len(r.Targets)
		switch r.Kind {
		case cfg.ResolvedTable:
			a.auditTable(r)
		case cfg.ResolvedLPADSet:
			a.auditLPADSet(r)
		case cfg.ResolvedRet:
			a.auditRet(r)
		default:
			rep.violate(KindEdge, r.Addr, "unknown resolution kind %d", r.Kind)
		}
	}
}

// VerifyEdges is the standalone entry point (rfverify -edges): run the
// recovery on bin and audit its own claims. Returns the report and the
// number of claims audited.
func VerifyEdges(bin *relf.Binary) (*Report, error) {
	rep := &Report{}
	if !cfg.MarkerBuilt(bin) {
		return rep, nil
	}
	prog, err := cfg.Disassemble(bin)
	if err != nil {
		return nil, err
	}
	recovered := cfg.NewGraphOpts(prog, cfg.GraphOptions{})
	base := cfg.NewGraphOpts(prog, cfg.GraphOptions{NoIndirect: true})
	AuditEdges(rep, bin, prog, base, recovered.Indirect)
	return rep, nil
}

type edgeAuditor struct {
	rep  *Report
	bin  *relf.Binary
	prog *cfg.Program
	g    *cfg.Graph
	info *cfg.IndirectInfo

	declared map[uint64]uint32 // .rf.jt table base → declared entries
	lpads    map[uint64]bool   // decoded LPAD instruction addresses
	cand     map[uint64]bool   // address-taken candidates (no exclusions)
}

// prepare computes the auditor's own view of the binary: declared
// tables, decoded landing pads, and address-taken candidates.
func (a *edgeAuditor) prepare() {
	a.declared = map[uint64]uint32{}
	if sec := a.bin.Section(relf.JumpTableSection); sec != nil {
		if tables, err := relf.DecodeJumpTables(sec.Data); err == nil {
			for _, t := range tables {
				if t.Entries > a.declared[t.Addr] {
					a.declared[t.Addr] = t.Entries
				}
			}
		}
	}

	a.lpads = map[uint64]bool{}
	for i := range a.prog.Insts {
		if a.prog.Insts[i].Inst.Op == isa.LPAD {
			a.lpads[a.prog.Insts[i].Addr] = true
		}
	}

	p := a.prog
	a.cand = map[uint64]bool{}
	textLow := p.Insts[0].Addr
	last := p.Insts[len(p.Insts)-1]
	textHigh := last.Addr + uint64(last.Inst.Len)
	mark := func(v uint64) {
		if v >= textLow && v < textHigh {
			a.cand[v] = true
		}
	}
	mark(p.Binary.Entry)
	for _, s := range p.Binary.Symbols {
		if s.Func {
			mark(s.Addr)
		}
	}
	for i := range p.Insts {
		in := &p.Insts[i].Inst
		next := p.Insts[i].Addr + uint64(in.Len)
		if in.Op == isa.CALL && (in.Form == isa.FRel8 || in.Form == isa.FRel32) {
			mark(next + uint64(in.Imm))
		}
		if in.Form == isa.FRI || in.Form == isa.FMI {
			mark(uint64(in.Imm))
		}
		if in.HasMem() && in.Mem.IsAbsolute() {
			mark(uint64(uint32(in.Mem.Disp)))
		}
	}
	for _, s := range p.Binary.Sections {
		if s.Exec || len(s.Data) < 8 {
			continue
		}
		for off := 0; off+8 <= len(s.Data); off += 8 {
			if a.tableWord(s.Addr + uint64(off)) {
				continue
			}
			mark(binary.LittleEndian.Uint64(s.Data[off:]))
		}
	}
}

// tableWord reports whether addr lies inside a table span the recovery
// claims proven. Such words are excluded from the address-taken scan
// only because the claimed edges represent their flow — which is exactly
// what the table audits establish.
func (a *edgeAuditor) tableWord(addr uint64) bool {
	for _, t := range a.info.Tables {
		if addr >= t.Addr && addr < t.Addr+8*uint64(t.Entries) {
			return true
		}
	}
	return false
}

// blockOf returns the base-graph block whose instruction range contains
// instruction index i.
func (a *edgeAuditor) blockOf(i int) *cfg.Block { return &a.g.Blocks[a.g.BlockOf[i]] }

// auditTable re-derives a bounded jump-table claim from scratch.
func (a *edgeAuditor) auditTable(r *cfg.Resolved) {
	p := a.prog
	rep := a.rep
	j, ok := p.InstAt(r.Addr)
	if !ok {
		rep.violate(KindEdge, r.Addr, "claimed site is not an instruction boundary")
		return
	}
	jin := &p.Insts[j].Inst
	if jin.Op != isa.JMP || (jin.Form != isa.FR && jin.Form != isa.FM) {
		rep.violate(KindEdge, r.Addr, "claimed table site is not an indirect jump")
		return
	}
	if p.Binary.PIC {
		rep.violate(KindEdge, r.Addr, "table claims are not derivable for PIC binaries")
		return
	}
	blk := a.blockOf(j)
	if blk.End-1 != j {
		rep.violate(KindEdge, r.Addr, "claimed site does not terminate its block")
		return
	}

	// Re-slice the jump operand to the table load.
	var tm isa.Mem
	loadIdx := j
	switch jin.Form {
	case isa.FM:
		tm = jin.Mem
	case isa.FR:
		reg := jin.Reg
		found := false
		for i := j - 1; i >= blk.Start; i-- {
			in := &p.Insts[i].Inst
			if in.Op == isa.MOV && in.Form == isa.FRM && in.Reg == reg && in.Size == 8 {
				tm, loadIdx, found = in.Mem, i, true
				break
			}
			if cfg.RegsWritten(in).Has(reg) {
				rep.violate(KindEdge, r.Addr, "jump register defined by a non-load in the dispatch block")
				return
			}
		}
		if !found {
			rep.violate(KindEdge, r.Addr, "jump register has no table load in the dispatch block")
			return
		}
		for i := loadIdx + 1; i < j; i++ {
			if cfg.RegsWritten(&p.Insts[i].Inst).Has(reg) {
				rep.violate(KindEdge, r.Addr, "jump register redefined between load and jump")
				return
			}
		}
	}
	if tm.Seg != isa.SegNone || tm.Base != isa.RegNone || !tm.HasIndex() || tm.Scale != 8 {
		rep.violate(KindEdge, r.Addr, "dispatch operand is not a scaled absolute table access")
		return
	}
	if got := uint64(uint32(tm.Disp)); got != r.Table {
		rep.violate(KindEdge, r.Addr, "claimed table %#x but dispatch loads from %#x", r.Table, got)
		return
	}
	entries, ok := a.declared[r.Table]
	if !ok {
		rep.violate(KindEdge, r.Addr, "table %#x is not declared in %s", r.Table, relf.JumpTableSection)
		return
	}
	if r.Bound == 0 || r.Bound > entries {
		rep.violate(KindEdge, r.Addr, "claimed bound %d outside declared table (%d entries)", r.Bound, entries)
		return
	}
	idx := tm.Index
	for i := blk.Start; i < loadIdx; i++ {
		if cfg.RegsWritten(&p.Insts[i].Inst).Has(idx) {
			rep.violate(KindEdge, r.Addr, "index register redefined between guard and load")
			return
		}
	}

	// The dispatch block must be enterable only via its guard edge.
	if len(blk.Preds) != 1 || &a.g.Blocks[blk.Preds[0]] == blk {
		rep.violate(KindEdge, r.Addr, "dispatch block does not have a unique guard predecessor")
		return
	}
	start := p.Insts[blk.Start].Addr
	if a.cand[start] || p.Insts[blk.Start].Inst.Op == isa.LPAD {
		rep.violate(KindEdge, r.Addr, "dispatch block is itself an indirect-entry candidate")
		return
	}
	bound, ok := a.proveBound(blk.Preds[0], a.g.BlockOf[j], idx)
	if !ok {
		rep.violate(KindEdge, r.Addr, "guard bound could not be re-proven")
		return
	}
	if r.Bound != bound {
		rep.violate(KindEdge, r.Addr, "claimed bound %d but guard proves %d", r.Bound, bound)
		return
	}

	// Re-read the table and compare targets; every entry must be a
	// decoded landing-pad instruction.
	if r.Table%8 != 0 {
		rep.violate(KindEdge, r.Addr, "table %#x is not word-aligned", r.Table)
		return
	}
	s := p.Binary.SectionAt(r.Table)
	if s == nil || s.Write || s.Exec || len(s.Data) == 0 {
		rep.violate(KindEdge, r.Addr, "table %#x is not in a read-only data section", r.Table)
		return
	}
	off := r.Table - s.Addr
	if off+8*uint64(r.Bound) > uint64(len(s.Data)) {
		rep.violate(KindEdge, r.Addr, "table span runs past section %s", s.Name)
		return
	}
	want := map[uint64]bool{}
	for k := uint64(0); k < uint64(r.Bound); k++ {
		v := binary.LittleEndian.Uint64(s.Data[off+8*k:])
		if !a.lpads[v] {
			rep.violate(KindEdge, r.Addr, "table entry %d (%#x) is not a decoded landing pad", k, v)
			return
		}
		want[v] = true
	}
	if !sameTargetSet(r.Targets, want) {
		rep.violate(KindEdge, r.Addr, "claimed target set differs from the table contents")
	}
}

// proveBound re-derives the unsigned guard bound on the edge pb→b, the
// auditor's own version of the proof.
func (a *edgeAuditor) proveBound(pb, b int, idx isa.Reg) (uint32, bool) {
	p := a.prog
	pblk := &a.g.Blocks[pb]
	t := pblk.End - 1
	tin := &p.Insts[t].Inst
	if !tin.Op.IsCondJump() {
		return 0, false
	}
	next := p.Insts[t].Addr + uint64(tin.Len)
	bAddr := p.Insts[a.g.Blocks[b].Start].Addr
	taken := next+uint64(tin.Imm) == bAddr
	fall := next == bAddr
	if taken == fall {
		return 0, false
	}
	var n int64
	found := false
	for i := t - 1; i >= pblk.Start; i-- {
		in := &p.Insts[i].Inst
		if cfg.RegsWritten(in).Has(idx) {
			return 0, false
		}
		if cfg.WritesFlags(in) {
			if in.Op == isa.CMP && in.Form == isa.FRI && in.Reg == idx && in.Size == 8 {
				n, found = in.Imm, true
			}
			break
		}
	}
	if !found || n < 0 || n >= int64(^uint32(0)) {
		return 0, false
	}
	switch {
	case fall && tin.Op == isa.JA:
		return uint32(n) + 1, true
	case fall && tin.Op == isa.JAE:
		return uint32(n), true
	case taken && tin.Op == isa.JBE:
		return uint32(n) + 1, true
	case taken && tin.Op == isa.JB:
		return uint32(n), true
	}
	return 0, false
}

// auditLPADSet checks a landing-pad-set claim: the binary must be free of
// phantom LPAD bytes (interior instruction bytes the VM would accept as
// landing pads), and the claimed set must be exactly the decoded pads.
func (a *edgeAuditor) auditLPADSet(r *cfg.Resolved) {
	p := a.prog
	rep := a.rep
	j, ok := p.InstAt(r.Addr)
	if !ok {
		rep.violate(KindEdge, r.Addr, "claimed site is not an instruction boundary")
		return
	}
	jin := &p.Insts[j].Inst
	if jin.Op != isa.JMP || (jin.Form != isa.FR && jin.Form != isa.FM) {
		rep.violate(KindEdge, r.Addr, "landing-pad-set claim on a non-indirect-jump")
		return
	}
	text := p.Binary.Text()
	if text == nil {
		rep.violate(KindEdge, r.Addr, "no text section")
		return
	}
	for i := range p.Insts {
		off := p.Insts[i].Addr - text.Addr
		for k := uint64(1); k < uint64(p.Insts[i].Inst.Len); k++ {
			if isa.Op(text.Data[off+k]) == isa.LPAD {
				rep.violate(KindEdge, r.Addr,
					"phantom landing-pad byte inside instruction at %#x invalidates the set claim",
					p.Insts[i].Addr)
				return
			}
		}
	}
	want := make(map[uint64]bool, len(a.lpads))
	for v := range a.lpads {
		want[v] = true
	}
	if !sameTargetSet(r.Targets, want) {
		rep.violate(KindEdge, r.Addr, "claimed set differs from the decoded landing pads")
	}
}

// auditRet re-derives the closed-function conditions for a RET pairing.
func (a *edgeAuditor) auditRet(r *cfg.Resolved) {
	p := a.prog
	rep := a.rep
	j, ok := p.InstAt(r.Addr)
	if !ok {
		rep.violate(KindEdge, r.Addr, "claimed site is not an instruction boundary")
		return
	}
	if p.Insts[j].Inst.Op != isa.RET {
		rep.violate(KindEdge, r.Addr, "RET pairing claimed at a non-RET instruction")
		return
	}

	// The enclosing function, from the symbol table.
	var lo, hi uint64
	found := false
	for _, s := range p.Binary.Symbols {
		if s.Func && s.Size > 0 && r.Addr >= s.Addr && r.Addr < s.Addr+s.Size {
			lo, hi, found = s.Addr, s.Addr+s.Size, true
			break
		}
	}
	if !found {
		rep.violate(KindEdge, r.Addr, "RET is not inside a sized function symbol")
		return
	}
	inF := func(v uint64) bool { return v >= lo && v < hi }
	if inF(p.Binary.Entry) {
		rep.violate(KindEdge, r.Addr, "function contains the process entry point")
		return
	}

	// Is there unproven indirect flow anywhere? Indirect calls always
	// count; indirect jumps count unless a (validated elsewhere) claim
	// covers them.
	claimed := map[uint64]bool{}
	for i := range a.info.Resolved {
		c := &a.info.Resolved[i]
		if c.Kind != cfg.ResolvedRet {
			claimed[c.Addr] = true
		}
	}
	unresolved := false
	for i := range p.Insts {
		in := &p.Insts[i].Inst
		if in.Op == isa.CALL && (in.Form == isa.FR || in.Form == isa.FM) {
			unresolved = true
		}
		if in.Op == isa.JMP && (in.Form == isa.FR || in.Form == isa.FM) && !claimed[p.Insts[i].Addr] {
			unresolved = true
		}
	}

	// Claimed indirect edges are entries too: the recovery ran its
	// closure check on the post-resolution graph, where every table and
	// landing-pad-set claim contributes static edges. An edge from a site
	// outside F to a target inside F breaks closure exactly like a tail
	// call in. (If those other claims are bogus the audit flags them
	// separately; zero violations overall means they equal the true flow.)
	for i := range a.info.Resolved {
		c := &a.info.Resolved[i]
		if c.Kind == cfg.ResolvedRet || inF(c.Addr) {
			continue
		}
		for _, t := range c.Targets {
			if inF(t) {
				rep.violate(KindEdge, r.Addr,
					"recovered indirect edge from %#x enters the function at %#x", c.Addr, t)
				return
			}
		}
	}

	for b := range a.g.Blocks {
		blk := &a.g.Blocks[b]
		if !inF(p.Insts[blk.Start].Addr) {
			continue
		}
		for _, pr := range blk.Preds {
			if !inF(p.Insts[a.g.Blocks[pr].Start].Addr) {
				rep.violate(KindEdge, r.Addr, "function has a static edge from outside (block %#x)",
					p.Insts[a.g.Blocks[pr].Start].Addr)
				return
			}
		}
		for i := blk.Start; i < blk.End; i++ {
			ia := p.Insts[i].Addr
			if a.cand[ia] && ia != lo {
				rep.violate(KindEdge, r.Addr, "function body address %#x is address-taken", ia)
				return
			}
			if p.Insts[i].Inst.Op == isa.LPAD && unresolved {
				rep.violate(KindEdge, r.Addr,
					"function contains a landing pad while unproven indirect flow exists")
				return
			}
		}
	}
	if a.cand[lo] && !a.onlyCallTaken(lo) {
		rep.violate(KindEdge, r.Addr, "function address escapes beyond direct calls")
		return
	}

	// Re-derive the return points of every direct call into the function.
	want := map[uint64]bool{}
	for i := range p.Insts {
		in := &p.Insts[i].Inst
		if in.Op != isa.CALL || (in.Form != isa.FRel8 && in.Form != isa.FRel32) {
			continue
		}
		next := p.Insts[i].Addr + uint64(in.Len)
		if !inF(next + uint64(in.Imm)) {
			continue
		}
		if _, ok := p.InstAt(next); !ok {
			rep.violate(KindEdge, r.Addr, "call at %#x has no decoded return point", p.Insts[i].Addr)
			return
		}
		want[next] = true
	}
	if len(want) == 0 {
		rep.violate(KindEdge, r.Addr, "function has no direct callers")
		return
	}
	if !sameTargetSet(r.Targets, want) {
		rep.violate(KindEdge, r.Addr, "claimed return points differ from the direct call sites")
	}
}

// onlyCallTaken reports whether addr never appears as an immediate,
// absolute displacement, or data word — i.e. its only address-taken
// occurrences are symbols and direct call targets.
func (a *edgeAuditor) onlyCallTaken(addr uint64) bool {
	p := a.prog
	for i := range p.Insts {
		in := &p.Insts[i].Inst
		if (in.Form == isa.FRI || in.Form == isa.FMI) && uint64(in.Imm) == addr {
			return false
		}
		if in.HasMem() && in.Mem.IsAbsolute() && uint64(uint32(in.Mem.Disp)) == addr {
			return false
		}
	}
	for _, s := range p.Binary.Sections {
		if s.Exec || len(s.Data) < 8 {
			continue
		}
		for off := 0; off+8 <= len(s.Data); off += 8 {
			if binary.LittleEndian.Uint64(s.Data[off:]) == addr {
				return false
			}
		}
	}
	return true
}

// sameTargetSet compares a claimed target list with a derived set.
func sameTargetSet(targets []uint64, want map[uint64]bool) bool {
	if len(targets) != len(want) {
		return false
	}
	seen := map[uint64]bool{}
	for _, t := range targets {
		if !want[t] || seen[t] {
			return false
		}
		seen[t] = true
	}
	return true
}
