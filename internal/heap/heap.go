// Package heap implements a glibc-style baseline memory allocator.
//
// This is the allocator uninstrumented binaries run with: a brk-style
// arena with boundary-tag headers and size-binned free lists. It lives in
// a non-fat region (well below the low-fat regions at 32 GB), so pointers
// it returns are non-fat by construction.
//
// The RedFat workflow replaces this allocator with the redzone/low-fat one
// (package redzone) by rebinding the malloc/free imports — the simulation
// of the paper's LD_PRELOAD interposition.
package heap

import (
	"fmt"

	"redfat/internal/mem"
	"redfat/internal/telemetry"
)

// Arena placement: a classic brk heap placed above the data segment and
// far (≫2 GB) below the low-fat regions.
const (
	ArenaBase = 0x10000000        // 256 MB
	ArenaEnd  = ArenaBase + 1<<30 // 1 GB arena
)

// headerSize is the boundary-tag header prepended to each chunk: 8 bytes
// holding the chunk size (including header), plus 8 bytes of padding to
// keep 16-byte alignment, like glibc.
const headerSize = 16

// Heap is the baseline allocator.
type Heap struct {
	Mem *mem.Memory

	next     uint64 // wilderness bump pointer
	mappedTo uint64
	bins     map[uint64][]uint64 // chunk size → free chunk addresses

	allocs    uint64
	frees     uint64
	errors    uint64
	liveBytes uint64 // chunk bytes currently handed out

	// TrackSites enables forensic per-chunk allocation records; SiteDepth
	// is the guest-backtrace depth captured per allocator call (0 = call
	// site PC only). Both are set by the runtime layer; capture is
	// host-side only.
	TrackSites bool
	SiteDepth  int

	sites      map[uint64]AllocRecord // chunk base → forensic record
	notedPC    uint64
	notedStack []uint64

	tel *heapMetrics
}

// AllocRecord is the forensic bookkeeping of one chunk: where it was
// allocated (and, once freed, released), by whom. Stacks are guest
// return-address chains, innermost caller first.
type AllocRecord struct {
	PC    uint64   // guest PC of the allocating call site
	Size  uint64   // requested size
	Stack []uint64 // guest backtrace at allocation (nil unless SiteDepth > 0)

	FreePC    uint64   // guest PC of the free call, 0 while live
	FreeStack []uint64 // guest backtrace at free (nil unless captured)
}

// heapMetrics holds the allocator's registry handles (nil when telemetry
// is off; every handle method is nil-safe anyway).
type heapMetrics struct {
	allocs    *telemetry.Counter
	frees     *telemetry.Counter
	errors    *telemetry.Counter
	liveBytes *telemetry.Gauge
	sizes     *telemetry.Histogram
}

// AttachTelemetry binds the baseline heap's counters to reg.
func (h *Heap) AttachTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	h.tel = &heapMetrics{
		allocs:    reg.Counter("heap.allocs"),
		frees:     reg.Counter("heap.frees"),
		errors:    reg.Counter("heap.errors"),
		liveBytes: reg.Gauge("heap.live.bytes"),
		sizes:     reg.Histogram("heap.alloc.size", telemetry.Pow2Bounds(4, 26)),
	}
}

// New creates a baseline heap on m.
func New(m *mem.Memory) *Heap {
	return &Heap{
		Mem:      m,
		next:     ArenaBase,
		mappedTo: ArenaBase,
		bins:     make(map[uint64][]uint64),
	}
}

// NoteAllocPC records the guest call site of the next Malloc/Free (set by
// the libc binding, which knows the VM's program counter).
func (h *Heap) NoteAllocPC(pc uint64) { h.notedPC, h.notedStack = pc, nil }

// NoteAllocStack additionally records the guest backtrace of the next
// Malloc/Free (captured by the libc binding when SiteDepth asks for it).
func (h *Heap) NoteAllocStack(stack []uint64) { h.notedStack = stack }

// SiteStackDepth reports the backtrace depth the heap wants captured per
// allocator call; 0 when site tracking is off.
func (h *Heap) SiteStackDepth() int {
	if !h.TrackSites {
		return 0
	}
	return h.SiteDepth
}

// EnableSiteTracking turns on forensic per-chunk records with backtraces
// bounded to the given depth.
func (h *Heap) EnableSiteTracking(depth int) {
	h.TrackSites = true
	h.SiteDepth = depth
}

// noteSite records the forensic allocation record for the chunk at base.
// Chunk reuse overwrites the previous generation's record, matching what
// the memory itself can still prove.
func (h *Heap) noteSite(base, size uint64) {
	if !h.TrackSites {
		return
	}
	if h.sites == nil {
		h.sites = make(map[uint64]AllocRecord)
	}
	h.sites[base] = AllocRecord{PC: h.notedPC, Size: size, Stack: h.notedStack}
}

// chunkSize rounds a request up to a binned chunk size: multiples of 16 up
// to 512 bytes, then powers of two. The padding this introduces is the
// padding the paper notes redzone tools cannot protect (§2.1).
func chunkSize(size uint64) uint64 {
	n := size + headerSize
	if n <= 512 {
		return (n + 15) &^ 15
	}
	c := uint64(1024)
	for c < n {
		c <<= 1
	}
	return c
}

// Malloc allocates size bytes, 16-byte aligned.
func (h *Heap) Malloc(size uint64) (uint64, error) {
	c := chunkSize(size)
	if lst := h.bins[c]; len(lst) > 0 {
		chunk := lst[len(lst)-1]
		h.bins[c] = lst[:len(lst)-1]
		h.allocs++
		if err := h.Mem.Store(chunk, 8, c); err != nil {
			return 0, err
		}
		h.noteAlloc(size, c)
		h.noteSite(chunk, size)
		return chunk + headerSize, nil
	}
	if h.next+c > ArenaEnd {
		return 0, fmt.Errorf("heap: arena exhausted")
	}
	chunk := h.next
	h.next += c
	if h.next > h.mappedTo {
		grow := c
		if grow < 1<<16 {
			grow = 1 << 16
		}
		end := (h.mappedTo + grow + mem.PageSize - 1) &^ uint64(mem.PageSize-1)
		if end > ArenaEnd {
			end = ArenaEnd
		}
		h.Mem.Map(h.mappedTo, end-h.mappedTo, mem.PermRW)
		h.mappedTo = end
	}
	if err := h.Mem.Store(chunk, 8, c); err != nil {
		return 0, err
	}
	h.allocs++
	h.noteAlloc(size, c)
	h.noteSite(chunk, size)
	return chunk + headerSize, nil
}

// noteAlloc and noteFree keep the live-byte account and mirror it into
// the attached telemetry registry.
func (h *Heap) noteAlloc(size, chunk uint64) {
	h.liveBytes += chunk
	if h.tel != nil {
		h.tel.allocs.Inc()
		h.tel.sizes.Observe(size)
		h.tel.liveBytes.Set(h.liveBytes)
	}
}

func (h *Heap) noteFree(chunk uint64) {
	if chunk > h.liveBytes {
		chunk = h.liveBytes
	}
	h.liveBytes -= chunk
	if h.tel != nil {
		h.tel.frees.Inc()
		h.tel.liveBytes.Set(h.liveBytes)
	}
}

func (h *Heap) noteError() {
	h.errors++
	if h.tel != nil {
		h.tel.errors.Inc()
	}
}

// Calloc allocates zeroed memory.
func (h *Heap) Calloc(n, size uint64) (uint64, error) {
	total := n * size
	if size != 0 && total/size != n {
		return 0, fmt.Errorf("heap: calloc overflow")
	}
	p, err := h.Malloc(total)
	if err != nil {
		return 0, err
	}
	if err := h.Mem.Memset(p, 0, total); err != nil {
		return 0, err
	}
	return p, nil
}

// Free returns a chunk to its bin. The baseline allocator performs only
// the cheap sanity checks glibc does; corrupted headers lead to the same
// class of undefined behaviour as on real systems (which is exactly what
// heap-overflow attacks exploit).
func (h *Heap) Free(ptr uint64) error {
	if ptr == 0 {
		return nil
	}
	chunk := ptr - headerSize
	c, err := h.Mem.Load(chunk, 8)
	if err != nil {
		h.noteError()
		return fmt.Errorf("heap: free of unmapped pointer %#x", ptr)
	}
	if c < headerSize || c > ArenaEnd-ArenaBase || c%16 != 0 {
		h.noteError()
		return fmt.Errorf("heap: free(%#x): invalid chunk size %#x", ptr, c)
	}
	h.bins[c] = append(h.bins[c], chunk)
	h.frees++
	h.noteFree(c)
	if s, ok := h.sites[chunk]; ok {
		s.FreePC = h.notedPC
		s.FreeStack = h.notedStack
		h.sites[chunk] = s
	}
	return nil
}

// Realloc resizes an allocation.
func (h *Heap) Realloc(ptr, size uint64) (uint64, error) {
	if ptr == 0 {
		return h.Malloc(size)
	}
	if size == 0 {
		return 0, h.Free(ptr)
	}
	c, err := h.Mem.Load(ptr-headerSize, 8)
	if err != nil {
		return 0, fmt.Errorf("heap: realloc of invalid pointer %#x", ptr)
	}
	old := c - headerSize
	if size <= old {
		return ptr, nil
	}
	np, err := h.Malloc(size)
	if err != nil {
		return 0, err
	}
	if err := h.Mem.Memcpy(np, ptr, old); err != nil {
		return 0, err
	}
	return np, h.Free(ptr)
}

// UsableSize returns the usable bytes of an allocation (chunk minus header).
func (h *Heap) UsableSize(ptr uint64) (uint64, error) {
	c, err := h.Mem.Load(ptr-headerSize, 8)
	if err != nil {
		return 0, err
	}
	return c - headerSize, nil
}

// ObjectInfo describes the baseline-heap chunk that owns an address,
// resolved for forensic reports.
type ObjectInfo struct {
	Chunk     uint64 // chunk base (boundary-tag header)
	Ptr       uint64 // user pointer (Chunk + header)
	ChunkSize uint64 // binned chunk size including header
	Offset    int64  // addr − Ptr
	Freed     bool   // chunk had been freed when resolved (per its record)

	Record    AllocRecord
	HasRecord bool
}

// ObjectAt resolves addr to its owning chunk by walking the boundary tags
// from the arena base — O(chunks), acceptable at error-report time. The
// walk trusts the headers; a corrupted header ends it early (the same
// blindness real allocator forensics have after a header smash).
func (h *Heap) ObjectAt(addr uint64) (ObjectInfo, bool) {
	if addr < ArenaBase || addr >= h.next {
		return ObjectInfo{}, false
	}
	base := uint64(ArenaBase)
	for base < h.next {
		c, err := h.Mem.Load(base, 8)
		if err != nil || c < headerSize || c%16 != 0 || base+c > ArenaEnd {
			return ObjectInfo{}, false // corrupted or unmapped header
		}
		if addr < base+c {
			info := ObjectInfo{
				Chunk:     base,
				Ptr:       base + headerSize,
				ChunkSize: c,
				Offset:    int64(addr) - int64(base+headerSize),
			}
			info.Record, info.HasRecord = h.sites[base]
			info.Freed = info.HasRecord && info.Record.FreePC != 0
			return info, true
		}
		base += c
	}
	return ObjectInfo{}, false
}

// Stats returns (allocs, frees, detected errors).
func (h *Heap) Stats() (allocs, frees, errors uint64) {
	return h.allocs, h.frees, h.errors
}
