package heap

import (
	"math/rand"
	"testing"

	"redfat/internal/lowfat"
	"redfat/internal/mem"
)

func TestMallocBasic(t *testing.T) {
	h := New(mem.New())
	p, err := h.Malloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if p%16 != 0 {
		t.Errorf("allocation %#x not 16-aligned", p)
	}
	if p < ArenaBase || p >= ArenaEnd {
		t.Errorf("allocation %#x outside arena", p)
	}
	if lowfat.IsLowFat(p) {
		t.Error("baseline heap produced a low-fat pointer")
	}
	if err := h.Mem.Store(p+92, 8, 1); err != nil {
		t.Errorf("allocated memory unusable: %v", err)
	}
	u, err := h.UsableSize(p)
	if err != nil || u < 100 {
		t.Errorf("UsableSize = %d, %v", u, err)
	}
}

func TestChunkSizes(t *testing.T) {
	cases := []struct{ req, chunk uint64 }{
		{1, 32}, {16, 32}, {17, 48}, {100, 128}, {496, 512},
		{497, 1024}, {1000, 1024}, {1009, 2048}, {100000, 131072},
	}
	for _, c := range cases {
		if got := chunkSize(c.req); got != c.chunk {
			t.Errorf("chunkSize(%d) = %d, want %d", c.req, got, c.chunk)
		}
	}
}

func TestFreeReuse(t *testing.T) {
	h := New(mem.New())
	p1, _ := h.Malloc(64)
	if err := h.Free(p1); err != nil {
		t.Fatal(err)
	}
	p2, _ := h.Malloc(64)
	if p1 != p2 {
		t.Errorf("bin reuse failed: %#x vs %#x", p1, p2)
	}
	if err := h.Free(0); err != nil {
		t.Errorf("free(NULL): %v", err)
	}
	if err := h.Free(0x123); err == nil {
		t.Error("free of wild pointer succeeded")
	}
}

func TestAdjacentChunks(t *testing.T) {
	// Fresh chunks are carved contiguously from the wilderness — this is
	// what makes "skip the redzone into the next object" attacks work
	// against redzone-only tools (paper Example 1).
	h := New(mem.New())
	p1, _ := h.Malloc(16) // 32-byte chunk
	p2, _ := h.Malloc(16)
	if p2-p1 != 32 {
		t.Errorf("chunks not adjacent: %#x, %#x", p1, p2)
	}
	// Overflow from p1 with a large enough offset lands inside p2's data.
	if err := h.Mem.Store(p1+(p2-p1), 8, 0xEE1); err != nil {
		t.Errorf("overflow store into adjacent chunk faulted: %v", err)
	}
}

func TestRealloc(t *testing.T) {
	h := New(mem.New())
	p, _ := h.Malloc(16)
	h.Mem.Store(p, 8, 42)
	q, err := h.Realloc(p, 500)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := h.Mem.Load(q, 8)
	if v != 42 {
		t.Errorf("realloc lost data: %d", v)
	}
	// Shrinking realloc keeps the chunk.
	r, err := h.Realloc(q, 10)
	if err != nil || r != q {
		t.Errorf("shrinking realloc moved: %#x → %#x, %v", q, r, err)
	}
}

func TestCalloc(t *testing.T) {
	h := New(mem.New())
	p, _ := h.Malloc(64)
	h.Mem.Memset(p, 0xFF, 64)
	h.Free(p)
	q, err := h.Calloc(4, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 64; i += 8 {
		if v, _ := h.Mem.Load(q+i, 8); v != 0 {
			t.Fatalf("calloc not zeroed at +%d", i)
		}
	}
}

func TestStressNoOverlap(t *testing.T) {
	h := New(mem.New())
	r := rand.New(rand.NewSource(21))
	live := map[uint64]uint64{}
	for i := 0; i < 5000; i++ {
		if len(live) > 0 && r.Intn(2) == 0 {
			for p := range live {
				if err := h.Free(p); err != nil {
					t.Fatal(err)
				}
				delete(live, p)
				break
			}
			continue
		}
		size := uint64(1 + r.Intn(2000))
		p, err := h.Malloc(size)
		if err != nil {
			t.Fatal(err)
		}
		for q, qsize := range live {
			if p < q+qsize && q < p+size {
				t.Fatalf("overlap: [%#x,+%d) and [%#x,+%d)", p, size, q, qsize)
			}
		}
		live[p] = size
	}
	allocs, frees, errs := h.Stats()
	if allocs == 0 || frees == 0 || errs != 0 {
		t.Errorf("stats: %d %d %d", allocs, frees, errs)
	}
}
