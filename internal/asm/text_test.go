package asm_test

import (
	"strings"
	"testing"

	"redfat/internal/asm"
	"redfat/internal/heap"
	"redfat/internal/mem"
	"redfat/internal/rtlib"
	"redfat/internal/vm"
)

func runText(t *testing.T, src string, input ...uint64) *vm.VM {
	t.Helper()
	bin, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := mem.New()
	v := vm.New(m)
	v.Input = input
	v.MaxCycles = 50_000_000
	if err := v.Load(bin, rtlib.LibC(heap.New(m), m)); err != nil {
		t.Fatal(err)
	}
	if err := v.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return v
}

func TestAssembleQuickstart(t *testing.T) {
	v := runText(t, `
# sum the numbers 1..10
.func main
    mov $0, %rax
    mov $1, %rcx
loop:
    add %rcx, %rax
    add $1, %rcx
    cmp $10, %rcx
    jle loop
    ret
`)
	if v.ExitCode != 55 {
		t.Errorf("exit = %d, want 55", v.ExitCode)
	}
}

func TestAssembleMemoryAndData(t *testing.T) {
	v := runText(t, `
.data
table: .quad 5, 10, 15
msg:   .asciz "hi"
buf:   .zero 64

.text
.func main
    mov $table, %rbx
    mov (%rbx), %rax
    add 8(%rbx), %rax
    add 16(%rbx), %rax      ; 30
    mov $buf, %rcx
    mov %rax, (%rcx)
    movb $7, 9(%rcx)
    movzxb 9(%rcx), %rdx     ; not real x86 syntax; see below
    ret
`)
	// movzxb parses as movzx with b suffix.
	if v.ExitCode != 30 {
		t.Errorf("exit = %d, want 30", v.ExitCode)
	}
}

func TestAssembleCallsAndImports(t *testing.T) {
	v := runText(t, `
.func main
    mov $24, %rdi
    call @malloc
    mov %rax, %rbx
    mov $42, %rcx
    mov %rcx, (%rbx)
    call helper
    mov %rbx, %rdi
    push %rax
    call @free
    pop %rax
    ret

.func helper
    mov (%rbx), %rax
    ret
`)
	if v.ExitCode != 42 {
		t.Errorf("exit = %d, want 42", v.ExitCode)
	}
}

func TestAssembleIndirect(t *testing.T) {
	v := runText(t, `
.func main
    mov $target, %rbx
    call *%rbx
    ret
.func target
    mov $9, %rax
    ret
`)
	if v.ExitCode != 9 {
		t.Errorf("exit = %d, want 9", v.ExitCode)
	}
}

func TestAssembleScaledOperand(t *testing.T) {
	v := runText(t, `
.data
arr: .quad 1, 2, 4, 8

.text
.func main
    mov $arr, %rbx
    mov $2, %rcx
    mov (%rbx,%rcx,8), %rax    ; arr[2] = 4
    add -8(%rbx,%rcx,8), %rax  ; + arr[1] = 6
    ret
`)
	if v.ExitCode != 6 {
		t.Errorf("exit = %d, want 6", v.ExitCode)
	}
}

func TestAssemblePIC(t *testing.T) {
	bin, err := asm.Assemble(`
.pic
.data
g: .quad 41

.text
.func main
    mov g, %rax
    add $1, %rax
    ret
`)
	if err != nil {
		t.Fatal(err)
	}
	if !bin.PIC {
		t.Fatal("not PIC")
	}
	bin.Rebase(0x3000_0000_0000)
	m := mem.New()
	v := vm.New(m)
	if err := v.Load(bin, rtlib.LibC(heap.New(m), m)); err != nil {
		t.Fatal(err)
	}
	if err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if v.ExitCode != 42 {
		t.Errorf("exit = %d, want 42", v.ExitCode)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"bogus %rax",                                             // unknown mnemonic
		".func main\n mov $1, $2",                                // bad operands
		".func main\n jmp @malloc",                               // jump to import
		".unknowndirective",                                      // bad directive
		".func main\n mov %nope, %rax",                           // bad register
		".func main\n mov 4(%rbx, %rax",                          // unclosed operand
		".data\nx: .quad 1\nx: .quad 2\n.text\n.func main\n ret", // dup label
	}
	for _, src := range cases {
		if _, err := asm.Assemble(src); err == nil {
			t.Errorf("Assemble(%q) succeeded, want error", src)
		}
	}
	// Errors carry line information.
	_, err := asm.Assemble(".func main\n ret\n bogus %rax\n")
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error lacks line info: %v", err)
	}
}
