// Package asm provides an RF64 assembler: a programmatic Builder API used
// by the workload generators and tests, plus a textual assembler (see
// text.go) for the command-line tools.
//
// The Builder produces fully linked RELF executables. It supports both
// position-dependent code (absolute addressing of globals) and PIC
// (RIP-relative addressing), mirroring the two binary flavours the paper's
// tool must handle.
package asm

import (
	"fmt"
	"sort"

	"redfat/internal/isa"
	"redfat/internal/relf"
	"redfat/internal/vm"
)

// Options configures a Builder.
type Options struct {
	PIC      bool
	TextBase uint64 // 0 → relf.DefaultTextBase
	DataBase uint64 // 0 → relf.DefaultDataBase

	// FuncAlign pads with NOPs so each Func starts at a multiple of this
	// power of two (0 = no alignment), like a compiler's .p2align.
	FuncAlign uint64
}

// fixKind distinguishes the kinds of symbol references that need patching.
type fixKind uint8

const (
	fixNone   fixKind = iota
	fixBranch         // rel32 branch/call to a label
	fixAbs            // absolute address immediate (non-PIC)
	fixRIP            // RIP-relative displacement (PIC)
	fixMemAbs         // absolute displacement in a memory operand (non-PIC)
	fixAlign          // NOP padding to the alignment in addend
)

type item struct {
	inst   isa.Inst
	kind   fixKind
	target string
	addend int64 // added to the symbol address
	offset uint64
}

type global struct {
	name  string
	data  []byte // nil for BSS
	size  uint64
	align uint64
}

// dataFixup patches a symbol address into initialized data at build time
// (e.g. function-pointer jump tables).
type dataFixup struct {
	global string // containing global
	offset uint64 // byte offset within the global
	sym    string // symbol whose address is written (8 bytes, LE)
}

// jtRec records one declared jump table (a rodata global) so Build can
// emit the .rf.jt metadata section the indirect-flow recovery trusts.
type jtRec struct {
	name    string
	entries uint32
}

// Builder incrementally assembles a program.
type Builder struct {
	opts    Options
	items   []item
	labels  map[string]int // label name → item index it precedes
	funcs   []relf.Symbol  // accumulated function symbols (sizes fixed later)
	globals []global
	rodata  []global
	bss     []global
	jts     []jtRec
	fixups  []dataFixup
	imports []string
	entry   string
	err     error
}

// NewBuilder returns an empty Builder.
func NewBuilder(opts Options) *Builder {
	if opts.TextBase == 0 {
		opts.TextBase = relf.DefaultTextBase
	}
	if opts.DataBase == 0 {
		opts.DataBase = relf.DefaultDataBase
	}
	return &Builder{opts: opts, labels: make(map[string]int)}
}

// Err returns the first error recorded during building.
func (b *Builder) Err() error { return b.err }

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf(format, args...)
	}
}

// Label defines a code label at the current position.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.fail("asm: duplicate label %q", name)
		return
	}
	b.labels[name] = len(b.items)
}

// Func starts a new function: it defines a label and records a function
// symbol. The first Func (or an explicit SetEntry) becomes the entry point.
func (b *Builder) Func(name string) {
	if a := b.opts.FuncAlign; a > 1 && len(b.items) > 0 {
		// NOP padding; exact count is resolved in pass 1 via alignment
		// items (each NOP is 1 byte, so emit a marker resolved later).
		b.items = append(b.items, item{kind: fixAlign, addend: int64(a)})
	}
	b.Label(name)
	b.funcs = append(b.funcs, relf.Symbol{Name: name, Func: true})
	if b.entry == "" {
		b.entry = name
	}
}

// SetEntry selects the entry-point label.
func (b *Builder) SetEntry(name string) { b.entry = name }

// Emit appends a raw instruction.
func (b *Builder) Emit(in isa.Inst) {
	b.items = append(b.items, item{inst: in})
}

func (b *Builder) emitFix(in isa.Inst, kind fixKind, target string, addend int64) {
	b.items = append(b.items, item{inst: in, kind: kind, target: target, addend: addend})
}

// ImportIndex interns an import name.
func (b *Builder) ImportIndex(name string) int {
	for i, n := range b.imports {
		if n == name {
			return i
		}
	}
	b.imports = append(b.imports, name)
	return len(b.imports) - 1
}

// --- data definitions ---

// Global defines an initialized data object.
func (b *Builder) Global(name string, data []byte) {
	b.globals = append(b.globals, global{name: name, data: data,
		size: uint64(len(data)), align: 8})
}

// GlobalU64 defines an initialized array of 64-bit values.
func (b *Builder) GlobalU64(name string, vals ...uint64) {
	data := make([]byte, 8*len(vals))
	for i, v := range vals {
		for j := 0; j < 8; j++ {
			data[8*i+j] = byte(v >> (8 * j))
		}
	}
	b.Global(name, data)
}

// FuncTable defines an initialized global holding the addresses of the
// given symbols (a jump table), resolved at build time. The table lives in
// writable .data and is NOT declared in .rf.jt, so the indirect-flow
// recovery must leave jumps through it Unknown; use JumpTable for a
// recoverable one.
func (b *Builder) FuncTable(name string, syms ...string) {
	b.Global(name, make([]byte, 8*len(syms)))
	for i, s := range syms {
		b.fixups = append(b.fixups, dataFixup{global: name, offset: uint64(8 * i), sym: s})
	}
}

// ROData defines an initialized object in the read-only data section.
func (b *Builder) ROData(name string, data []byte) {
	b.rodata = append(b.rodata, global{name: name, data: data,
		size: uint64(len(data)), align: 8})
}

// JumpTable defines a word-aligned jump table in .rodata holding the
// addresses of the given symbols, and declares it in the .rf.jt metadata
// section with a relocation record per entry. Declaring any jump table
// (or emitting any LPAD) marks the binary as marker-built: the VM then
// enforces that indirect branches land on LPAD instructions, and the
// indirect-flow recovery in internal/cfg may resolve jumps through the
// table to its entries.
func (b *Builder) JumpTable(name string, syms ...string) {
	b.ROData(name, make([]byte, 8*len(syms)))
	for i, s := range syms {
		b.fixups = append(b.fixups, dataFixup{global: name, offset: uint64(8 * i), sym: s})
	}
	b.jts = append(b.jts, jtRec{name: name, entries: uint32(len(syms))})
}

// Zero defines a zero-initialized (BSS) object.
func (b *Builder) Zero(name string, size uint64) {
	b.bss = append(b.bss, global{name: name, size: size, align: 16})
}

// --- instruction helpers ---

// mem8 builds a memory operand with the default 1 scale.
func memOp(base isa.Reg, disp int32) isa.Mem {
	return isa.Mem{Base: base, Index: isa.RegNone, Scale: 1, Disp: disp}
}

// MemBID builds a base+index*scale+disp memory operand.
func MemBID(base, index isa.Reg, scale uint8, disp int32) isa.Mem {
	return isa.Mem{Base: base, Index: index, Scale: scale, Disp: disp}
}

// MovRR emits mov src → dst.
func (b *Builder) MovRR(dst, src isa.Reg) {
	b.Emit(isa.Inst{Op: isa.MOV, Form: isa.FRR, Reg: dst, Reg2: src, Size: 8})
}

// MovRI emits mov $imm → dst (using movabs if needed).
func (b *Builder) MovRI(dst isa.Reg, imm int64) {
	if imm >= -(1<<31) && imm < 1<<31 {
		b.Emit(isa.Inst{Op: isa.MOV, Form: isa.FRI, Reg: dst, Imm: imm, Size: 8})
		return
	}
	b.Emit(isa.Inst{Op: isa.MOVABS, Form: isa.FRI, Reg: dst, Imm: imm, Size: 8})
}

// Load emits a load of width size from [base+disp] into dst.
func (b *Builder) Load(dst isa.Reg, base isa.Reg, disp int32, size uint8) {
	b.Emit(isa.Inst{Op: isa.MOV, Form: isa.FRM, Reg: dst, Mem: memOp(base, disp), Size: size})
}

// LoadM emits a load through an arbitrary memory operand.
func (b *Builder) LoadM(dst isa.Reg, m isa.Mem, size uint8) {
	b.Emit(isa.Inst{Op: isa.MOV, Form: isa.FRM, Reg: dst, Mem: m, Size: size})
}

// Store emits a store of width size of src into [base+disp].
func (b *Builder) Store(base isa.Reg, disp int32, src isa.Reg, size uint8) {
	b.Emit(isa.Inst{Op: isa.MOV, Form: isa.FMR, Reg: src, Mem: memOp(base, disp), Size: size})
}

// StoreM emits a store through an arbitrary memory operand.
func (b *Builder) StoreM(m isa.Mem, src isa.Reg, size uint8) {
	b.Emit(isa.Inst{Op: isa.MOV, Form: isa.FMR, Reg: src, Mem: m, Size: size})
}

// StoreI emits a store of an immediate into [base+disp].
func (b *Builder) StoreI(base isa.Reg, disp int32, imm int64, size uint8) {
	b.Emit(isa.Inst{Op: isa.MOV, Form: isa.FMI, Mem: memOp(base, disp), Imm: imm, Size: size})
}

// StoreMI emits an immediate store through an arbitrary memory operand.
func (b *Builder) StoreMI(m isa.Mem, imm int64, size uint8) {
	b.Emit(isa.Inst{Op: isa.MOV, Form: isa.FMI, Mem: m, Imm: imm, Size: size})
}

// Lea emits lea of a memory operand into dst.
func (b *Builder) Lea(dst isa.Reg, m isa.Mem) {
	b.Emit(isa.Inst{Op: isa.LEA, Form: isa.FRM, Reg: dst, Mem: m, Size: 8})
}

// ALU helpers (register forms).

// AluRR emits op src → dst (e.g. add %src, %dst).
func (b *Builder) AluRR(op isa.Op, dst, src isa.Reg) {
	b.Emit(isa.Inst{Op: op, Form: isa.FRR, Reg: dst, Reg2: src, Size: 8})
}

// AluRI emits op $imm → dst.
func (b *Builder) AluRI(op isa.Op, dst isa.Reg, imm int64) {
	b.Emit(isa.Inst{Op: op, Form: isa.FRI, Reg: dst, Imm: imm, Size: 8})
}

// AluRM emits op mem → dst.
func (b *Builder) AluRM(op isa.Op, dst isa.Reg, m isa.Mem, size uint8) {
	b.Emit(isa.Inst{Op: op, Form: isa.FRM, Reg: dst, Mem: m, Size: size})
}

// AluMR emits op src → mem.
func (b *Builder) AluMR(op isa.Op, m isa.Mem, src isa.Reg, size uint8) {
	b.Emit(isa.Inst{Op: op, Form: isa.FMR, Reg: src, Mem: m, Size: size})
}

// Push/Pop registers.

// Push emits push reg.
func (b *Builder) Push(r isa.Reg) { b.Emit(isa.Inst{Op: isa.PUSH, Form: isa.FR, Reg: r, Size: 8}) }

// Pop emits pop reg.
func (b *Builder) Pop(r isa.Reg) { b.Emit(isa.Inst{Op: isa.POP, Form: isa.FR, Reg: r, Size: 8}) }

// Ret emits ret.
func (b *Builder) Ret() { b.Emit(isa.Inst{Op: isa.RET, Form: isa.FNone}) }

// Nop emits nop.
func (b *Builder) Nop() { b.Emit(isa.Inst{Op: isa.NOP, Form: isa.FNone}) }

// Lpad emits a landing-pad marker (a legal indirect-branch target).
func (b *Builder) Lpad() { b.Emit(isa.Inst{Op: isa.LPAD, Form: isa.FNone}) }

// Shift emits a shift by immediate.
func (b *Builder) Shift(op isa.Op, r isa.Reg, count int64) {
	b.Emit(isa.Inst{Op: op, Form: isa.FRI, Reg: r, Imm: count, Size: 8})
}

// Jmp emits an unconditional jump to a label.
func (b *Builder) Jmp(label string) {
	b.emitFix(isa.Inst{Op: isa.JMP, Form: isa.FRel32}, fixBranch, label, 0)
}

// Jcc emits a conditional jump to a label.
func (b *Builder) Jcc(cond isa.Op, label string) {
	if !cond.IsCondJump() {
		b.fail("asm: %v is not a conditional jump", cond)
		return
	}
	b.emitFix(isa.Inst{Op: cond, Form: isa.FRel32}, fixBranch, label, 0)
}

// Call emits a call to a local label.
func (b *Builder) Call(label string) {
	b.emitFix(isa.Inst{Op: isa.CALL, Form: isa.FRel32}, fixBranch, label, 0)
}

// CallImport emits a call to an imported function (models a PLT call).
func (b *Builder) CallImport(name string) {
	idx := b.ImportIndex(name)
	b.Emit(isa.Inst{Op: isa.RTCALL, Form: isa.FI, Imm: vm.RTCallImm(idx, 0)})
}

// LoadAddr materializes the address of a global symbol (plus addend) into
// dst, using the addressing mode appropriate for the binary flavour:
// absolute immediate for position-dependent code, RIP-relative LEA for PIC.
func (b *Builder) LoadAddr(dst isa.Reg, sym string, addend int64) {
	if b.opts.PIC {
		b.emitFix(isa.Inst{Op: isa.LEA, Form: isa.FRM, Reg: dst, Size: 8,
			Mem: isa.Mem{Base: isa.RIP, Index: isa.RegNone, Scale: 1}},
			fixRIP, sym, addend)
		return
	}
	b.emitFix(isa.Inst{Op: isa.MOV, Form: isa.FRI, Reg: dst, Size: 8},
		fixAbs, sym, addend)
}

// LoadGlobal emits a load from a global symbol using an absolute memory
// operand (non-PIC) or RIP-relative operand (PIC).
func (b *Builder) LoadGlobal(dst isa.Reg, sym string, addend int64, size uint8) {
	m := isa.Mem{Base: isa.RegNone, Index: isa.RegNone, Scale: 1}
	if b.opts.PIC {
		m.Base = isa.RIP
	}
	b.emitFix(isa.Inst{Op: isa.MOV, Form: isa.FRM, Reg: dst, Mem: m, Size: size},
		fixAbsOrRIP(b.opts.PIC), sym, addend)
}

// StoreGlobal emits a store to a global symbol.
func (b *Builder) StoreGlobal(sym string, addend int64, src isa.Reg, size uint8) {
	m := isa.Mem{Base: isa.RegNone, Index: isa.RegNone, Scale: 1}
	if b.opts.PIC {
		m.Base = isa.RIP
	}
	b.emitFix(isa.Inst{Op: isa.MOV, Form: isa.FMR, Reg: src, Mem: m, Size: size},
		fixAbsOrRIP(b.opts.PIC), sym, addend)
}

// LoadIndexed emits `mov sym(,idx,scale), dst` — the jump-table load
// pattern the indirect-flow recovery slicer recognises. Position-dependent
// code only: PIC tables would hold offsets, which recovery does not model.
func (b *Builder) LoadIndexed(dst isa.Reg, sym string, idx isa.Reg, scale uint8, size uint8) {
	if b.opts.PIC {
		b.fail("asm: LoadIndexed requires position-dependent code")
		return
	}
	b.emitFix(isa.Inst{Op: isa.MOV, Form: isa.FRM, Reg: dst,
		Mem: isa.Mem{Base: isa.RegNone, Index: idx, Scale: scale}, Size: size},
		fixMemAbs, sym, 0)
}

// JmpReg emits an indirect jump through a register.
func (b *Builder) JmpReg(r isa.Reg) {
	b.Emit(isa.Inst{Op: isa.JMP, Form: isa.FR, Reg: r, Size: 8})
}

// JmpIndexed emits `jmp *sym(,idx,8)` — the memory-form table dispatch.
func (b *Builder) JmpIndexed(sym string, idx isa.Reg) {
	if b.opts.PIC {
		b.fail("asm: JmpIndexed requires position-dependent code")
		return
	}
	b.emitFix(isa.Inst{Op: isa.JMP, Form: isa.FM,
		Mem: isa.Mem{Base: isa.RegNone, Index: idx, Scale: 8}, Size: 8},
		fixMemAbs, sym, 0)
}

// CallReg emits an indirect call through a register.
func (b *Builder) CallReg(r isa.Reg) {
	b.Emit(isa.Inst{Op: isa.CALL, Form: isa.FR, Reg: r, Size: 8})
}

func fixAbsOrRIP(pic bool) fixKind {
	if pic {
		return fixRIP
	}
	return fixMemAbs
}

// --- assembly ---

// Build assembles the program into a RELF binary.
func (b *Builder) Build() (*relf.Binary, error) {
	if b.err != nil {
		return nil, b.err
	}
	if b.entry == "" {
		return nil, fmt.Errorf("asm: no entry point (no Func defined)")
	}

	// Lay out data sections first so symbol addresses are known.
	dataAddr := b.opts.DataBase
	symAddr := make(map[string]uint64)
	var dataBytes []byte
	dataStart := dataAddr
	for _, g := range b.globals {
		if g.align > 1 {
			pad := (g.align - (dataAddr % g.align)) % g.align
			dataAddr += pad
			dataBytes = append(dataBytes, make([]byte, pad)...)
		}
		if _, dup := symAddr[g.name]; dup {
			return nil, fmt.Errorf("asm: duplicate global %q", g.name)
		}
		symAddr[g.name] = dataAddr
		dataBytes = append(dataBytes, g.data...)
		dataAddr += g.size
	}
	// Read-only data follows .data on its own pages, so the page-granular
	// memory protections keep it genuinely unwritable at run time (the
	// property the jump-table recovery relies on).
	roStart := (dataAddr + 0xFFF) &^ 0xFFF
	roAddr := roStart
	var roBytes []byte
	for _, g := range b.rodata {
		if g.align > 1 {
			pad := (g.align - (roAddr % g.align)) % g.align
			roAddr += pad
			roBytes = append(roBytes, make([]byte, pad)...)
		}
		if _, dup := symAddr[g.name]; dup {
			return nil, fmt.Errorf("asm: duplicate global %q", g.name)
		}
		symAddr[g.name] = roAddr
		roBytes = append(roBytes, g.data...)
		roAddr += g.size
	}
	bssStart := (roAddr + 0xFFF) &^ 0xFFF
	bssAddr := bssStart
	for _, g := range b.bss {
		if g.align > 1 {
			bssAddr = (bssAddr + g.align - 1) &^ (g.align - 1)
		}
		if _, dup := symAddr[g.name]; dup {
			return nil, fmt.Errorf("asm: duplicate global %q", g.name)
		}
		symAddr[g.name] = bssAddr
		bssAddr += g.size
	}

	// Pass 1: compute instruction offsets. Label-fixup instructions are
	// encoded with a placeholder to get their length.
	offsets := make([]uint64, len(b.items)+1)
	var off uint64
	var scratch []byte
	for i := range b.items {
		offsets[i] = off
		it := &b.items[i]
		in := it.inst
		if it.kind == fixAlign {
			a := uint64(it.addend)
			pad := (a - (b.opts.TextBase+off)%a) % a
			it.offset = off
			off += pad
			continue
		}
		switch it.kind {
		case fixBranch, fixRIP:
			in.Imm = 0
			if it.kind == fixRIP {
				in.Mem.Disp = 0x7FFFFFF // force disp32 (RIP form always is)
			}
		case fixAbs:
			in.Imm = 0x7FFFFFF
		case fixMemAbs:
			in.Mem.Disp = 0x7FFFFFF
		}
		var err error
		scratch, err = isa.Encode(scratch[:0], &in)
		if err != nil {
			return nil, fmt.Errorf("asm: item %d (%s): %w", i, it.inst.String(), err)
		}
		it.offset = off
		off += uint64(len(scratch))
	}
	offsets[len(b.items)] = off

	textBase := b.opts.TextBase
	labelAddr := func(name string) (uint64, bool) {
		if idx, ok := b.labels[name]; ok {
			return textBase + offsets[idx], true
		}
		if a, ok := symAddr[name]; ok {
			return a, true
		}
		return 0, false
	}

	// Pass 2: encode with resolved addresses.
	text := make([]byte, 0, off)
	for i := range b.items {
		it := &b.items[i]
		in := it.inst
		nextAddr := textBase + offsets[i+1]
		if it.kind == fixAlign {
			for uint64(len(text)) < offsets[i+1] {
				text = append(text, byte(isa.NOP))
			}
			continue
		}
		if it.kind != fixNone {
			target, ok := labelAddr(it.target)
			if !ok {
				return nil, fmt.Errorf("asm: undefined symbol %q", it.target)
			}
			target = uint64(int64(target) + it.addend)
			switch it.kind {
			case fixBranch:
				in.Imm = int64(target) - int64(nextAddr)
			case fixAbs:
				in.Imm = int64(target)
			case fixRIP:
				in.Mem.Disp = int32(int64(target) - int64(nextAddr))
			case fixMemAbs:
				if int64(target) != int64(int32(target)) {
					return nil, fmt.Errorf("asm: symbol %q out of disp32 range", it.target)
				}
				in.Mem.Disp = int32(target)
			}
		}
		var err error
		text, err = isa.Encode(text, &in)
		if err != nil {
			return nil, fmt.Errorf("asm: encoding %s: %w", in.String(), err)
		}
		if uint64(len(text)) != offsets[i+1] {
			return nil, fmt.Errorf("asm: phase error at item %d (%s): %d != %d",
				i, in.String(), len(text), offsets[i+1])
		}
	}

	// Apply data fixups (jump tables), in .data or .rodata.
	for _, f := range b.fixups {
		gaddr, ok := symAddr[f.global]
		if !ok {
			return nil, fmt.Errorf("asm: fixup in undefined global %q", f.global)
		}
		target, ok := labelAddr(f.sym)
		if !ok {
			return nil, fmt.Errorf("asm: fixup to undefined symbol %q", f.sym)
		}
		bytes, start := dataBytes, dataStart
		if gaddr >= roStart && len(roBytes) > 0 {
			bytes, start = roBytes, roStart
		}
		off := gaddr - start + f.offset
		if off+8 > uint64(len(bytes)) {
			return nil, fmt.Errorf("asm: fixup outside global %q", f.global)
		}
		for j := 0; j < 8; j++ {
			bytes[off+uint64(j)] = byte(target >> (8 * j))
		}
	}

	entry, ok := b.labels[b.entry]
	if !ok {
		return nil, fmt.Errorf("asm: entry label %q undefined", b.entry)
	}

	bin := &relf.Binary{
		PIC:     b.opts.PIC,
		Entry:   textBase + offsets[entry],
		Imports: append([]string(nil), b.imports...),
	}
	bin.AddSection(&relf.Section{
		Name: ".text", Kind: relf.SecText, Addr: textBase,
		Size: uint64(len(text)), Data: text, Exec: true,
	})
	if len(dataBytes) > 0 {
		bin.AddSection(&relf.Section{
			Name: ".data", Kind: relf.SecData, Addr: dataStart,
			Size: uint64(len(dataBytes)), Data: dataBytes, Write: true,
		})
	}
	if len(roBytes) > 0 {
		bin.AddSection(&relf.Section{
			Name: ".rodata", Kind: relf.SecROData, Addr: roStart,
			Size: uint64(len(roBytes)), Data: roBytes,
		})
	}
	marker := len(b.jts) > 0
	for i := range b.items {
		if b.items[i].inst.Op == isa.LPAD {
			marker = true
			break
		}
	}
	if marker {
		tables := make([]relf.JumpTable, len(b.jts))
		for i, t := range b.jts {
			tables[i] = relf.JumpTable{Addr: symAddr[t.name], Entries: t.entries}
		}
		bin.AddSection(&relf.Section{
			Name: relf.JumpTableSection, Kind: relf.SecMeta,
			Data: relf.EncodeJumpTables(tables),
		})
	}
	if bssAddr > bssStart {
		bin.AddSection(&relf.Section{
			Name: ".bss", Kind: relf.SecBSS, Addr: bssStart,
			Size: bssAddr - bssStart, Write: true,
		})
	}

	// Symbols: function sizes run to the next function start (or text end).
	funcSyms := make([]relf.Symbol, len(b.funcs))
	for i, f := range b.funcs {
		f.Addr = textBase + offsets[b.labels[f.Name]]
		funcSyms[i] = f
	}
	sort.Slice(funcSyms, func(i, j int) bool { return funcSyms[i].Addr < funcSyms[j].Addr })
	for i := range funcSyms {
		end := textBase + off
		if i+1 < len(funcSyms) {
			end = funcSyms[i+1].Addr
		}
		funcSyms[i].Size = end - funcSyms[i].Addr
	}
	bin.Symbols = append(bin.Symbols, funcSyms...)
	for _, g := range b.globals {
		bin.Symbols = append(bin.Symbols,
			relf.Symbol{Name: g.name, Addr: symAddr[g.name], Size: g.size})
	}
	for _, g := range b.rodata {
		bin.Symbols = append(bin.Symbols,
			relf.Symbol{Name: g.name, Addr: symAddr[g.name], Size: g.size})
	}
	for _, g := range b.bss {
		bin.Symbols = append(bin.Symbols,
			relf.Symbol{Name: g.name, Addr: symAddr[g.name], Size: g.size})
	}

	if err := bin.CheckOverlaps(); err != nil {
		return nil, err
	}
	return bin, nil
}
