package asm

import (
	"testing"

	"redfat/internal/isa"
	"redfat/internal/relf"
)

func TestBuildSimple(t *testing.T) {
	b := NewBuilder(Options{})
	b.Func("main")
	b.MovRI(isa.RAX, 1)
	b.Ret()
	bin, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if bin.Entry != relf.DefaultTextBase {
		t.Errorf("entry = %#x", bin.Entry)
	}
	text := bin.Text()
	if text == nil || len(text.Data) == 0 {
		t.Fatal("no text section")
	}
	// Decode the whole text section linearly.
	var n int
	for off := 0; off < len(text.Data); {
		in, err := isa.Decode(text.Data[off:])
		if err != nil {
			t.Fatalf("decode at %d: %v", off, err)
		}
		off += int(in.Len)
		n++
	}
	if n != 2 {
		t.Errorf("decoded %d instructions, want 2", n)
	}
}

func TestForwardAndBackwardBranches(t *testing.T) {
	b := NewBuilder(Options{})
	b.Func("main")
	b.Jmp("fwd") // forward reference
	b.Label("back")
	b.Ret()
	b.Label("fwd")
	b.Jmp("back") // backward reference
	bin, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Verify branch targets by decoding.
	text := bin.Text()
	in1, _ := isa.Decode(text.Data)
	target1 := bin.Entry + uint64(in1.Len) + uint64(in1.Imm)
	in2, _ := isa.Decode(text.Data[int(in1.Len):])
	retAddr := bin.Entry + uint64(in1.Len)
	if target1 != retAddr+uint64(in2.Len) {
		t.Errorf("forward jump target %#x", target1)
	}
}

func TestUndefinedLabel(t *testing.T) {
	b := NewBuilder(Options{})
	b.Func("main")
	b.Jmp("nowhere")
	if _, err := b.Build(); err == nil {
		t.Error("undefined label accepted")
	}
}

func TestDuplicateLabel(t *testing.T) {
	b := NewBuilder(Options{})
	b.Func("main")
	b.Label("x")
	b.Label("x")
	b.Ret()
	if _, err := b.Build(); err == nil {
		t.Error("duplicate label accepted")
	}
}

func TestDuplicateGlobal(t *testing.T) {
	b := NewBuilder(Options{})
	b.Func("main")
	b.Ret()
	b.Zero("g", 8)
	b.Zero("g", 8)
	if _, err := b.Build(); err == nil {
		t.Error("duplicate global accepted")
	}
}

func TestNoEntry(t *testing.T) {
	b := NewBuilder(Options{})
	b.Emit(isa.Inst{Op: isa.RET, Form: isa.FNone})
	if _, err := b.Build(); err == nil {
		t.Error("build without entry accepted")
	}
}

func TestGlobalLayout(t *testing.T) {
	b := NewBuilder(Options{})
	b.Func("main")
	b.Ret()
	b.Global("a", []byte{1, 2, 3})
	b.GlobalU64("b", 0xAABBCCDD)
	b.Zero("z", 100)
	bin, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	aAddr, ok := bin.Lookup("a")
	if !ok || aAddr != relf.DefaultDataBase {
		t.Errorf("a at %#x", aAddr)
	}
	bAddr, _ := bin.Lookup("b")
	if bAddr%8 != 0 || bAddr < aAddr+3 {
		t.Errorf("b at %#x", bAddr)
	}
	zAddr, _ := bin.Lookup("z")
	bss := bin.Section(".bss")
	if bss == nil || zAddr < bss.Addr || zAddr+100 > bss.End() {
		t.Errorf("z at %#x not in bss", zAddr)
	}
	// Initialized data present in .data.
	data := bin.Section(".data")
	off := bAddr - data.Addr
	if data.Data[off] != 0xDD || data.Data[off+3] != 0xAA {
		t.Errorf("b data = % x", data.Data[off:off+8])
	}
}

func TestFunctionSymbolSizes(t *testing.T) {
	b := NewBuilder(Options{})
	b.Func("main")
	b.MovRI(isa.RAX, 1)
	b.Ret()
	b.Func("helper")
	b.Ret()
	bin, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var mainSym, helperSym relf.Symbol
	for _, s := range bin.Symbols {
		switch s.Name {
		case "main":
			mainSym = s
		case "helper":
			helperSym = s
		}
	}
	if mainSym.Size == 0 || helperSym.Addr != mainSym.Addr+mainSym.Size {
		t.Errorf("main=%+v helper=%+v", mainSym, helperSym)
	}
	if helperSym.Size != 1 { // single RET
		t.Errorf("helper size = %d", helperSym.Size)
	}
}

func TestPICUsesRIPRelative(t *testing.T) {
	b := NewBuilder(Options{PIC: true})
	b.GlobalU64("g", 5)
	b.Func("main")
	b.LoadGlobal(isa.RAX, "g", 0, 8)
	b.Ret()
	bin, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	in, err := isa.Decode(bin.Text().Data)
	if err != nil {
		t.Fatal(err)
	}
	if in.Mem.Base != isa.RIP {
		t.Errorf("PIC load uses %v base, want %%rip", in.Mem.Base)
	}
	if !bin.PIC {
		t.Error("binary not marked PIC")
	}
}

func TestNonPICUsesAbsolute(t *testing.T) {
	b := NewBuilder(Options{})
	b.GlobalU64("g", 5)
	b.Func("main")
	b.LoadGlobal(isa.RAX, "g", 0, 8)
	b.Ret()
	bin, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	in, err := isa.Decode(bin.Text().Data)
	if err != nil {
		t.Fatal(err)
	}
	if !in.Mem.IsAbsolute() {
		t.Errorf("non-PIC load operand = %v, want absolute", in.Mem)
	}
	gAddr, _ := bin.Lookup("g")
	if uint64(in.Mem.Disp) != gAddr {
		t.Errorf("absolute disp %#x != symbol %#x", in.Mem.Disp, gAddr)
	}
}

func TestImportInterning(t *testing.T) {
	b := NewBuilder(Options{})
	b.Func("main")
	b.CallImport("malloc")
	b.CallImport("free")
	b.CallImport("malloc")
	b.Ret()
	bin, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(bin.Imports) != 2 {
		t.Errorf("imports = %v", bin.Imports)
	}
}

func TestBuilderErrAccumulates(t *testing.T) {
	b := NewBuilder(Options{})
	b.Func("main")
	b.Jcc(isa.ADD, "x") // not a condition
	b.Ret()
	if _, err := b.Build(); err == nil {
		t.Error("invalid Jcc accepted")
	}
}
