package asm

import (
	"fmt"
	"strconv"
	"strings"

	"redfat/internal/isa"
	"redfat/internal/relf"
)

// Assemble parses AT&T-flavoured RF64 assembly text and produces a RELF
// binary. Supported syntax:
//
//	.text / .data                section switch
//	.func name                   begin a function (first = entry)
//	.entry name                  select the entry point
//	.pic                         build position-independent code
//	label:                       code or data label
//	.quad v, v, ...              64-bit data values
//	.byte v, v, ...              byte data
//	.ascii "str" / .asciz "str"  string data
//	.zero n                      BSS object (in .data)
//	.jumptable name, l1, l2...   word-aligned read-only jump table of code
//	                             labels, declared in .rf.jt (see internal/cfg)
//
// Instructions use AT&T operand order (src, dst), "$imm" immediates,
// "%reg" registers, "disp(base,index,scale)" memory operands with
// optional %fs:/%gs: segment prefixes, "@name" import calls, "*%reg" and
// "*mem" indirect branches, and b/w/l/q size suffixes on mnemonics.
// "$sym" (a known label) materializes the symbol address.
func Assemble(src string) (*relf.Binary, error) {
	p := &parser{b: NewBuilder(Options{})}
	// First pass over directives to detect .pic (affects the builder).
	if strings.Contains(src, ".pic") {
		p.b = NewBuilder(Options{PIC: true})
	}
	for i, line := range strings.Split(src, "\n") {
		p.line = i + 1
		if err := p.parseLine(line); err != nil {
			return nil, fmt.Errorf("line %d: %w", p.line, err)
		}
	}
	if err := p.flushData(); err != nil {
		return nil, err
	}
	return p.b.Build()
}

type parser struct {
	b       *Builder
	line    int
	inData  bool
	dataLbl string
	dataBuf []byte
	dataBSS uint64
}

func (p *parser) flushData() error {
	if p.dataLbl == "" {
		return nil
	}
	if p.dataBSS > 0 {
		if len(p.dataBuf) > 0 {
			return fmt.Errorf("label %q mixes data and .zero", p.dataLbl)
		}
		p.b.Zero(p.dataLbl, p.dataBSS)
	} else {
		p.b.Global(p.dataLbl, p.dataBuf)
	}
	p.dataLbl, p.dataBuf, p.dataBSS = "", nil, 0
	return nil
}

func (p *parser) parseLine(line string) error {
	// Strip comments.
	if i := strings.IndexAny(line, "#;"); i >= 0 {
		// ';' inside a string literal would break; keep literals first.
		if !strings.Contains(line[:i], `"`) {
			line = line[:i]
		}
	}
	line = strings.TrimSpace(line)
	if line == "" {
		return nil
	}

	// Labels.
	if i := strings.Index(line, ":"); i >= 0 && !strings.ContainsAny(line[:i], " \t$%(") {
		name := line[:i]
		rest := strings.TrimSpace(line[i+1:])
		if p.inData {
			if err := p.flushData(); err != nil {
				return err
			}
			p.dataLbl = name
		} else {
			p.b.Label(name)
		}
		if rest == "" {
			return nil
		}
		line = rest
	}

	// Directives.
	if strings.HasPrefix(line, ".") {
		return p.directive(line)
	}
	if p.inData {
		return fmt.Errorf("instruction %q in .data section", line)
	}
	return p.instruction(line)
}

func (p *parser) directive(line string) error {
	fields := strings.SplitN(line, " ", 2)
	dir := fields[0]
	arg := ""
	if len(fields) == 2 {
		arg = strings.TrimSpace(fields[1])
	}
	switch dir {
	case ".text":
		return p.flushData2(false)
	case ".data":
		return p.flushData2(true)
	case ".pic":
		return nil // handled up front
	case ".func":
		if p.inData {
			return fmt.Errorf(".func in .data")
		}
		p.b.Func(arg)
		return nil
	case ".entry":
		p.b.SetEntry(arg)
		return nil
	case ".quad":
		for _, v := range splitArgs(arg) {
			n, err := parseInt(v)
			if err != nil {
				return err
			}
			var buf [8]byte
			for j := 0; j < 8; j++ {
				buf[j] = byte(uint64(n) >> (8 * j))
			}
			p.dataBuf = append(p.dataBuf, buf[:]...)
		}
		return nil
	case ".byte":
		for _, v := range splitArgs(arg) {
			n, err := parseInt(v)
			if err != nil {
				return err
			}
			p.dataBuf = append(p.dataBuf, byte(n))
		}
		return nil
	case ".ascii", ".asciz":
		s, err := strconv.Unquote(arg)
		if err != nil {
			return fmt.Errorf("bad string %s", arg)
		}
		p.dataBuf = append(p.dataBuf, s...)
		if dir == ".asciz" {
			p.dataBuf = append(p.dataBuf, 0)
		}
		return nil
	case ".jumptable":
		if err := p.flushData(); err != nil {
			return err
		}
		args := splitArgs(arg)
		if len(args) < 2 {
			return fmt.Errorf(".jumptable needs a name and at least one target label")
		}
		p.b.JumpTable(args[0], args[1:]...)
		return nil
	case ".zero":
		n, err := parseInt(arg)
		if err != nil {
			return err
		}
		p.dataBSS += uint64(n)
		return nil
	}
	return fmt.Errorf("unknown directive %s", dir)
}

func (p *parser) flushData2(toData bool) error {
	if err := p.flushData(); err != nil {
		return err
	}
	p.inData = toData
	return nil
}

func splitArgs(s string) []string {
	var out []string
	depth := 0
	start := 0
	for i, c := range s {
		switch c {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	if t := strings.TrimSpace(s[start:]); t != "" {
		out = append(out, t)
	}
	return out
}

func parseInt(s string) (int64, error) {
	s = strings.TrimSpace(s)
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	v, err := strconv.ParseUint(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad integer %q", s)
	}
	n := int64(v)
	if neg {
		n = -n
	}
	return n, nil
}

// operand is a parsed AT&T operand.
type operand struct {
	kind byte // 'i' imm, 'r' reg, 'm' mem, 's' symbol-imm, 'l' label, '@' import, '*' indirect
	imm  int64
	reg  isa.Reg
	mem  isa.Mem
	sym  string
	ind  *operand // for '*'
}

func (p *parser) parseOperand(s string) (operand, error) {
	s = strings.TrimSpace(s)
	switch {
	case s == "":
		return operand{}, fmt.Errorf("empty operand")
	case s[0] == '$':
		body := s[1:]
		if n, err := parseInt(body); err == nil {
			return operand{kind: 'i', imm: n}, nil
		}
		return operand{kind: 's', sym: body}, nil
	case s[0] == '%':
		r, ok := isa.RegFromName(s)
		if !ok {
			// Could be a segment-prefixed memory operand (%fs:...).
			if strings.HasPrefix(s, "%fs:") || strings.HasPrefix(s, "%gs:") {
				return p.parseMem(s)
			}
			return operand{}, fmt.Errorf("bad register %q", s)
		}
		return operand{kind: 'r', reg: r}, nil
	case s[0] == '*':
		inner, err := p.parseOperand(s[1:])
		if err != nil {
			return operand{}, err
		}
		return operand{kind: '*', ind: &inner}, nil
	case s[0] == '@':
		return operand{kind: '@', sym: s[1:]}, nil
	case strings.ContainsAny(s, "(") || isNumeric(s):
		return p.parseMem(s)
	default:
		return operand{kind: 'l', sym: s}, nil
	}
}

func isNumeric(s string) bool {
	if s == "" {
		return false
	}
	if s[0] == '-' {
		s = s[1:]
	}
	if s == "" {
		return false
	}
	return s[0] >= '0' && s[0] <= '9'
}

// parseMem parses seg:disp(base,index,scale).
func (p *parser) parseMem(s string) (operand, error) {
	m := isa.Mem{Base: isa.RegNone, Index: isa.RegNone, Scale: 1}
	if strings.HasPrefix(s, "%fs:") {
		m.Seg = isa.SegFS
		s = s[4:]
	} else if strings.HasPrefix(s, "%gs:") {
		m.Seg = isa.SegGS
		s = s[4:]
	}
	dispStr := s
	var inner string
	if i := strings.Index(s, "("); i >= 0 {
		if !strings.HasSuffix(s, ")") {
			return operand{}, fmt.Errorf("unclosed memory operand %q", s)
		}
		dispStr = s[:i]
		inner = s[i+1 : len(s)-1]
	}
	var symDisp string
	if dispStr != "" {
		if n, err := parseInt(dispStr); err == nil {
			m.Disp = int32(n)
		} else {
			symDisp = dispStr // symbolic displacement
		}
	}
	if inner != "" {
		parts := strings.Split(inner, ",")
		for i := range parts {
			parts[i] = strings.TrimSpace(parts[i])
		}
		if parts[0] != "" {
			r, ok := isa.RegFromName(parts[0])
			if !ok {
				return operand{}, fmt.Errorf("bad base register %q", parts[0])
			}
			m.Base = r
		}
		if len(parts) >= 2 && parts[1] != "" {
			r, ok := isa.RegFromName(parts[1])
			if !ok {
				return operand{}, fmt.Errorf("bad index register %q", parts[1])
			}
			m.Index = r
		}
		if len(parts) >= 3 && parts[2] != "" {
			n, err := parseInt(parts[2])
			if err != nil {
				return operand{}, err
			}
			m.Scale = uint8(n)
		}
	}
	op := operand{kind: 'm', mem: m, sym: symDisp}
	return op, nil
}

// sizeFromSuffix splits a mnemonic into base op name and operand size.
// A mnemonic that is itself a valid op (e.g. "sub", "shl", "jb") is never
// treated as suffixed; otherwise a trailing b/w/l/q selects the width.
func sizeFromSuffix(mnem string) (string, uint8) {
	if _, ok := isa.OpFromName(mnem); ok {
		return mnem, 8
	}
	if len(mnem) < 3 {
		return mnem, 8
	}
	base := mnem[:len(mnem)-1]
	if _, ok := isa.OpFromName(base); !ok {
		return mnem, 8
	}
	switch mnem[len(mnem)-1] {
	case 'b':
		return base, 1
	case 'w':
		return base, 2
	case 'l':
		return base, 4
	case 'q':
		return base, 8
	}
	return mnem, 8
}

func (p *parser) instruction(line string) error {
	fields := strings.SplitN(line, " ", 2)
	mnem := strings.ToLower(fields[0])
	var args []string
	if len(fields) == 2 {
		args = splitArgs(fields[1])
	}
	name, size := sizeFromSuffix(mnem)

	// Zero-operand forms.
	if len(args) == 0 {
		op, ok := isa.OpFromName(name)
		if !ok {
			return fmt.Errorf("unknown mnemonic %q", mnem)
		}
		p.b.Emit(isa.Inst{Op: op, Form: isa.FNone})
		return nil
	}

	ops := make([]operand, len(args))
	for i, a := range args {
		o, err := p.parseOperand(a)
		if err != nil {
			return err
		}
		ops[i] = o
	}

	// Branches and calls.
	switch name {
	case "jmp", "call", "je", "jne", "jl", "jle", "jg", "jge", "jb", "jbe",
		"ja", "jae", "js", "jns", "jo", "jno":
		op, _ := isa.OpFromName(name)
		o := ops[0]
		switch o.kind {
		case 'l':
			switch {
			case op == isa.JMP:
				p.b.Jmp(o.sym)
			case op == isa.CALL:
				p.b.Call(o.sym)
			default:
				p.b.Jcc(op, o.sym)
			}
			return nil
		case '@':
			if op != isa.CALL {
				return fmt.Errorf("imports can only be called")
			}
			p.b.CallImport(o.sym)
			return nil
		case '*':
			t := *o.ind
			switch t.kind {
			case 'r':
				p.b.Emit(isa.Inst{Op: op, Form: isa.FR, Reg: t.reg, Size: 8})
			case 'm':
				p.b.Emit(isa.Inst{Op: op, Form: isa.FM, Mem: t.mem, Size: 8})
			default:
				return fmt.Errorf("bad indirect target")
			}
			return nil
		}
		return fmt.Errorf("bad branch target %q", args[0])
	}

	op, ok := isa.OpFromName(name)
	if !ok {
		return fmt.Errorf("unknown mnemonic %q", mnem)
	}

	// One-operand forms.
	if len(ops) == 1 {
		o := ops[0]
		switch o.kind {
		case 'r':
			p.b.Emit(isa.Inst{Op: op, Form: isa.FR, Reg: o.reg, Size: 8})
			return nil
		case 'm':
			if o.sym != "" {
				return fmt.Errorf("symbolic memory operand not supported here")
			}
			p.b.Emit(isa.Inst{Op: op, Form: isa.FM, Mem: o.mem, Size: size})
			return nil
		}
		return fmt.Errorf("bad operand for %s", mnem)
	}
	if len(ops) != 2 {
		return fmt.Errorf("%s takes at most two operands", mnem)
	}

	// Two operands: AT&T order src, dst.
	src, dst := ops[0], ops[1]
	switch {
	case src.kind == 'i' && dst.kind == 'r':
		if op == isa.MOV && (src.imm < -(1<<31) || src.imm >= 1<<31) {
			op = isa.MOVABS
		}
		p.b.Emit(isa.Inst{Op: op, Form: isa.FRI, Reg: dst.reg, Imm: src.imm, Size: 8})
	case src.kind == 's' && dst.kind == 'r':
		if op != isa.MOV {
			return fmt.Errorf("symbol immediates only with mov")
		}
		p.b.LoadAddr(dst.reg, src.sym, 0)
	case src.kind == 'l' && dst.kind == 'r':
		// Bare symbol as source: load from the global.
		if op != isa.MOV {
			return fmt.Errorf("symbolic loads only with mov")
		}
		p.b.LoadGlobal(dst.reg, src.sym, 0, size)
	case src.kind == 'r' && dst.kind == 'l':
		if op != isa.MOV {
			return fmt.Errorf("symbolic stores only with mov")
		}
		p.b.StoreGlobal(dst.sym, 0, src.reg, size)
	case src.kind == 'i' && dst.kind == 'm':
		if dst.sym != "" {
			return fmt.Errorf("symbolic store destinations not supported")
		}
		p.b.Emit(isa.Inst{Op: op, Form: isa.FMI, Mem: dst.mem, Imm: src.imm, Size: size})
	case src.kind == 'r' && dst.kind == 'r':
		p.b.Emit(isa.Inst{Op: op, Form: isa.FRR, Reg: dst.reg, Reg2: src.reg, Size: 8})
	case src.kind == 'm' && dst.kind == 'r':
		if src.sym != "" {
			if op == isa.MOV {
				p.b.LoadGlobal(dst.reg, src.sym, int64(src.mem.Disp), size)
				return nil
			}
			return fmt.Errorf("symbolic loads only with mov")
		}
		p.b.Emit(isa.Inst{Op: op, Form: isa.FRM, Reg: dst.reg, Mem: src.mem, Size: size})
	case src.kind == 'r' && dst.kind == 'm':
		if dst.sym != "" {
			if op == isa.MOV {
				p.b.StoreGlobal(dst.sym, int64(dst.mem.Disp), src.reg, size)
				return nil
			}
			return fmt.Errorf("symbolic stores only with mov")
		}
		p.b.Emit(isa.Inst{Op: op, Form: isa.FMR, Reg: src.reg, Mem: dst.mem, Size: size})
	default:
		return fmt.Errorf("unsupported operand combination for %s", mnem)
	}
	return nil
}
