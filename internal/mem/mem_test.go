package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMapLoadStore(t *testing.T) {
	m := New()
	m.Map(0x1000, 0x2000, PermRW)
	for _, width := range []uint16{1, 2, 4, 8} {
		val := uint64(0x1122334455667788) & (1<<(8*width) - 1)
		if width == 8 {
			val = 0x1122334455667788
		}
		if err := m.Store(0x1800, width, val); err != nil {
			t.Fatalf("Store width %d: %v", width, err)
		}
		got, err := m.Load(0x1800, width)
		if err != nil {
			t.Fatalf("Load width %d: %v", width, err)
		}
		if got != val {
			t.Errorf("width %d: got %#x want %#x", width, got, val)
		}
	}
}

func TestUnmappedFaults(t *testing.T) {
	m := New()
	if _, err := m.Load(0x5000, 8); err == nil {
		t.Error("load of unmapped memory succeeded")
	}
	if err := m.Store(0x5000, 8, 1); err == nil {
		t.Error("store to unmapped memory succeeded")
	}
	m.Map(0x5000, 0x1000, PermRead)
	if _, err := m.Load(0x5000, 8); err != nil {
		t.Errorf("read from read-only page: %v", err)
	}
	err := m.Store(0x5000, 8, 1)
	if err == nil {
		t.Error("store to read-only page succeeded")
	}
	if f, ok := err.(*Fault); !ok || !f.Write || f.Addr != 0x5000 {
		t.Errorf("fault = %v", err)
	}
}

func TestCrossPageAccess(t *testing.T) {
	m := New()
	m.Map(0x1000, 0x2000, PermRW)
	addr := uint64(0x2000 - 3) // straddles page boundary
	want := uint64(0xDEADBEEFCAFEBABE)
	if err := m.Store(addr, 8, want); err != nil {
		t.Fatal(err)
	}
	got, err := m.Load(addr, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("cross-page load = %#x, want %#x", got, want)
	}
	// Partial mapping: second page unmapped must fault.
	m2 := New()
	m2.Map(0x1000, 0x1000, PermRW)
	if err := m2.Store(0x2000-3, 8, 1); err == nil {
		t.Error("cross-page store into unmapped page succeeded")
	}
}

func TestUnmapProtect(t *testing.T) {
	m := New()
	m.Map(0x10000, 0x3000, PermRW)
	if got := m.MappedPages(); got != 3 {
		t.Errorf("MappedPages = %d, want 3", got)
	}
	m.Unmap(0x11000, 0x1000)
	if m.Mapped(0x11000) {
		t.Error("page still mapped after Unmap")
	}
	if !m.Mapped(0x10000) || !m.Mapped(0x12000) {
		t.Error("Unmap removed neighbouring pages")
	}
	m.Protect(0x10000, 0x1000, PermRead)
	if m.PermAt(0x10000) != PermRead {
		t.Errorf("PermAt = %v", m.PermAt(0x10000))
	}
	if err := m.Store(0x10000, 1, 0); err == nil {
		t.Error("store after Protect(read-only) succeeded")
	}
}

func TestReadWriteAt(t *testing.T) {
	m := New()
	m.Map(0x8000, 0x3000, PermRW)
	src := make([]byte, 5000)
	for i := range src {
		src[i] = byte(i * 7)
	}
	if err := m.WriteAt(0x8100, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, len(src))
	if err := m.ReadAt(0x8100, dst); err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if src[i] != dst[i] {
			t.Fatalf("byte %d: %#x != %#x", i, dst[i], src[i])
		}
	}
}

func TestFetch(t *testing.T) {
	m := New()
	m.Map(0x400000, 0x1000, PermRX)
	m.Map(0x401000, 0x1000, PermRW) // next page not executable
	code := []byte{0x90, 0x91, 0x92}
	m.Protect(0x400000, 0x1000, PermRW)
	if err := m.WriteAt(0x400ffd, code); err != nil {
		t.Fatal(err)
	}
	m.Protect(0x400000, 0x1000, PermRX)

	buf := make([]byte, 16)
	n := m.Fetch(0x400ffd, buf)
	if n != 3 {
		t.Errorf("Fetch across NX boundary = %d bytes, want 3", n)
	}
	if buf[0] != 0x90 || buf[2] != 0x92 {
		t.Errorf("Fetch bytes = % x", buf[:n])
	}
	if n := m.Fetch(0x401000, buf); n != 0 {
		t.Errorf("Fetch from NX page = %d, want 0", n)
	}
	if n := m.Fetch(0x999000, buf); n != 0 {
		t.Errorf("Fetch from unmapped = %d, want 0", n)
	}
}

func TestMemsetMemcpy(t *testing.T) {
	m := New()
	m.Map(0x1000, 0x4000, PermRW)
	if err := m.Memset(0x1100, 0xAB, 1000); err != nil {
		t.Fatal(err)
	}
	v, _ := m.Load(0x1100+999, 1)
	if v != 0xAB {
		t.Errorf("Memset tail = %#x", v)
	}
	v, _ = m.Load(0x1100+1000, 1)
	if v != 0 {
		t.Errorf("Memset overran: %#x", v)
	}
	if err := m.Memcpy(0x3000, 0x1100, 1000); err != nil {
		t.Fatal(err)
	}
	v, _ = m.Load(0x3000+500, 1)
	if v != 0xAB {
		t.Errorf("Memcpy = %#x", v)
	}
}

func TestReadCString(t *testing.T) {
	m := New()
	m.Map(0x1000, 0x1000, PermRW)
	m.WriteAt(0x1000, []byte("hello\x00world"))
	s, err := m.ReadCString(0x1000, 64)
	if err != nil || s != "hello" {
		t.Errorf("ReadCString = %q, %v", s, err)
	}
	m.Memset(0x1000, 'x', 0x1000)
	if _, err := m.ReadCString(0x1000, 16); err == nil {
		t.Error("unterminated string not detected")
	}
}

// Property: for random mapped offsets, a Store followed by a Load of the
// same width returns the stored value truncated to the width, and bytes
// outside the store are untouched.
func TestQuickStoreLoad(t *testing.T) {
	m := New()
	const base, size = 0x100000, 0x10000
	m.Map(base, size, PermRW)
	r := rand.New(rand.NewSource(11))
	widths := []uint16{1, 2, 4, 8}
	f := func() bool {
		addr := base + uint64(r.Intn(size-8))
		w := widths[r.Intn(len(widths))]
		val := r.Uint64()
		// Sentinel bytes around the store.
		m.Store(addr-1, 1, 0x5A)
		m.Store(addr+uint64(w), 1, 0xA5)
		if err := m.Store(addr, w, val); err != nil {
			t.Fatal(err)
		}
		got, err := m.Load(addr, w)
		if err != nil {
			t.Fatal(err)
		}
		mask := ^uint64(0)
		if w < 8 {
			mask = 1<<(8*w) - 1
		}
		if got != val&mask {
			return false
		}
		lo, _ := m.Load(addr-1, 1)
		hi, _ := m.Load(addr+uint64(w), 1)
		return lo == 0x5A && hi == 0xA5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestPermString(t *testing.T) {
	if got := (PermRead | PermExec).String(); got != "r-x" {
		t.Errorf("Perm.String = %q", got)
	}
	if got := Perm(0).String(); got != "---" {
		t.Errorf("Perm.String = %q", got)
	}
}

func BenchmarkLoad8(b *testing.B) {
	m := New()
	m.Map(0x1000, 0x100000, PermRW)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Load(0x1000+uint64(i&0xFFF8), 8)
	}
}

func BenchmarkStore8(b *testing.B) {
	m := New()
	m.Map(0x1000, 0x100000, PermRW)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Store(0x1000+uint64(i&0xFFF8), 8, uint64(i))
	}
}
