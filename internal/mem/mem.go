// Package mem implements the sparse paged virtual memory used by the RF64
// virtual machine.
//
// The address space is the full 64-bit range, backed lazily by 4 KiB page
// frames allocated on Map. This is what lets the low-fat allocator (package
// lowfat) reserve many 32 GB virtual regions (paper Fig. 2) without
// committing physical memory — exactly the virtual-address-space trick the
// LowFat allocator plays on Linux with mmap(PROT_NONE) reservations.
//
// All simulated program memory lives in these explicitly managed frames, so
// the Go garbage collector never interacts with simulated pointers.
//
// # The software TLB
//
// Every guest memory access resolves its page through a direct-mapped
// software TLB (the classic binary-translation fast path), not through the
// Go page map. The TLB has TLBSize entries per access kind, with separate
// read/write/exec ways: an entry is only ever installed in a way whose
// permission the page actually grants, so the permission check is folded
// into the tag match and the hot path is one compare plus one indexed load
// — no branch on perm. Map/Unmap/Protect invalidate precisely (by page
// index when the affected range is small, full flush otherwise), so a TLB
// hit is always coherent with the page map.
//
// The TLB is a host-side cache only: hit or miss, every access faults at
// the same address with the same verdict as a page-map walk, so guest
// behaviour is bit-identical with the TLB disabled (NoTLB).
package mem

import (
	"encoding/binary"
	"fmt"

	"redfat/internal/obs"
)

// PageShift and PageSize define the 4 KiB page geometry.
const (
	PageShift = 12
	PageSize  = 1 << PageShift
	pageMask  = PageSize - 1
)

// TLB geometry: TLBSize direct-mapped entries per way (read/write/exec).
const (
	TLBBits = 6
	TLBSize = 1 << TLBBits
	tlbMask = TLBSize - 1
)

// invalidTag is a page index that cannot occur (it would require an
// address above 2^64), used to mark empty TLB entries.
const invalidTag = ^uint64(0)

// Perm is a page permission bitmask.
type Perm uint8

// Permission bits.
const (
	PermRead  Perm = 1 << 0
	PermWrite Perm = 1 << 1
	PermExec  Perm = 1 << 2

	// PermRW and PermRX are the common combinations.
	PermRW = PermRead | PermWrite
	PermRX = PermRead | PermExec
)

// String renders the permissions as "rwx" flags.
func (p Perm) String() string {
	b := []byte("---")
	if p&PermRead != 0 {
		b[0] = 'r'
	}
	if p&PermWrite != 0 {
		b[1] = 'w'
	}
	if p&PermExec != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// Fault describes a memory access violation.
type Fault struct {
	Addr  uint64
	Write bool
	Exec  bool
}

// Error implements the error interface.
func (f *Fault) Error() string {
	kind := "read"
	if f.Write {
		kind = "write"
	}
	if f.Exec {
		kind = "execute"
	}
	return fmt.Sprintf("segmentation fault: %s at %#x", kind, f.Addr)
}

type page struct {
	data [PageSize]byte
}

// pte maps one guest page: its permissions plus the backing frame. frame
// is nil until the first write materializes it, so mapping a large range
// allocates (and zeroes) nothing; reads and fetches of an unmaterialized
// page are served from the shared zeroFrame. Guest-visible behaviour is
// unchanged — pages are demand-zero either way.
type pte struct {
	frame *page
	perm  Perm
}

// zeroFrame backs every mapped-but-never-written page. It is shared
// across address spaces and must never be written: the write path always
// materializes a private frame first.
var zeroFrame page

// tlbEntry is one direct-mapped translation: the page index it covers and
// the resolved frame. The permission is implied by the way the entry lives
// in (an entry in the write way is only installed for writable pages).
type tlbEntry struct {
	tag  uint64
	page *page
}

// TLBStats reports the software TLB's hit/miss counters (host-side
// accounting; never affects guest state).
type TLBStats struct {
	Hits   uint64
	Misses uint64
}

// HitRate returns the fraction of probes that hit (0 when no probes ran).
func (s TLBStats) HitRate() float64 {
	if n := s.Hits + s.Misses; n > 0 {
		return float64(s.Hits) / float64(n)
	}
	return 0
}

// Memory is a sparse paged address space. The zero value is not ready for
// use; call New.
type Memory struct {
	pages map[uint64]pte

	// The software TLB: direct-mapped, one way per access kind.
	tlbRead  [TLBSize]tlbEntry
	tlbWrite [TLBSize]tlbEntry
	tlbExec  [TLBSize]tlbEntry

	// NoTLB disables TLB fills (every probe misses and walks the page
	// map), restoring the pre-TLB lookup behaviour for A/B validation.
	// Set it before the first access; guest-visible behaviour is
	// identical either way.
	NoTLB bool

	tlbHits   uint64
	tlbMisses uint64

	// Flight, when set, records TLB invalidations into the flight
	// recorder. Invalidation is already off the access fast path (it runs
	// on Map/Unmap/Protect, never on loads or stores), so recording adds
	// nothing to the hot probe. Nil-safe.
	Flight *obs.Flight

	mapped uint64 // number of mapped pages, for accounting

	// slab is the bump allocator behind materialized page frames: frames
	// are carved out of slabPages-sized arrays so first-write
	// materialization costs one bulk allocation (and one bulk zeroing)
	// per slabPages frames instead of one small heap object per 4 KiB
	// page. Frames are never recycled within a Memory (an unmapped
	// page's frame is dropped with its map entry), so every frame handed
	// out is still demand-zero.
	slab []page
}

// slabPages is the bump-allocation granule for page frames (1 MiB of
// guest memory per host allocation).
const slabPages = 256

// newPage carves the next zeroed frame out of the slab.
func (m *Memory) newPage() *page {
	if len(m.slab) == 0 {
		m.slab = make([]page, slabPages)
	}
	p := &m.slab[0]
	m.slab = m.slab[1:]
	return p
}

// New returns an empty address space.
func New() *Memory {
	m := &Memory{pages: make(map[uint64]pte, 1024)}
	m.flushTLB()
	return m
}

// TLB returns the TLB hit/miss counters accumulated so far.
func (m *Memory) TLB() TLBStats { return TLBStats{Hits: m.tlbHits, Misses: m.tlbMisses} }

// flushTLB empties every way.
func (m *Memory) flushTLB() {
	for i := range m.tlbRead {
		m.tlbRead[i] = tlbEntry{tag: invalidTag}
		m.tlbWrite[i] = tlbEntry{tag: invalidTag}
		m.tlbExec[i] = tlbEntry{tag: invalidTag}
	}
}

// invalidate drops any TLB entries covering page indexes [first, last].
// Small ranges are evicted entry by entry; ranges at least as large as the
// TLB flush everything (cheaper than probing each index).
func (m *Memory) invalidate(first, last uint64) {
	m.Flight.Record(obs.EvTLBFlush, 0, first<<PageShift, last-first+1)
	if last-first >= TLBSize-1 {
		m.flushTLB()
		return
	}
	for idx := first; ; idx++ {
		slot := idx & tlbMask
		if m.tlbRead[slot].tag == idx {
			m.tlbRead[slot] = tlbEntry{tag: invalidTag}
		}
		if m.tlbWrite[slot].tag == idx {
			m.tlbWrite[slot] = tlbEntry{tag: invalidTag}
		}
		if m.tlbExec[slot].tag == idx {
			m.tlbExec[slot] = tlbEntry{tag: invalidTag}
		}
		if idx == last {
			break
		}
	}
}

// readPage resolves the page containing addr for a read access, or nil if
// the access would fault. The TLB probe is the hot path: one compare, one
// indexed load.
func (m *Memory) readPage(addr uint64) *page {
	idx := addr >> PageShift
	e := &m.tlbRead[idx&tlbMask]
	if e.tag == idx {
		m.tlbHits++
		return e.page
	}
	return m.readPageSlow(idx)
}

func (m *Memory) readPageSlow(idx uint64) *page {
	m.tlbMisses++
	e, ok := m.pages[idx]
	if !ok || e.perm&PermRead == 0 {
		return nil
	}
	f := e.frame
	if f == nil {
		f = &zeroFrame
	}
	if !m.NoTLB {
		m.tlbRead[idx&tlbMask] = tlbEntry{tag: idx, page: f}
	}
	return f
}

// writePage resolves the page containing addr for a write access, or nil.
func (m *Memory) writePage(addr uint64) *page {
	idx := addr >> PageShift
	e := &m.tlbWrite[idx&tlbMask]
	if e.tag == idx {
		m.tlbHits++
		return e.page
	}
	return m.writePageSlow(idx)
}

func (m *Memory) writePageSlow(idx uint64) *page {
	m.tlbMisses++
	e, ok := m.pages[idx]
	if !ok || e.perm&PermWrite == 0 {
		return nil
	}
	if e.frame == nil {
		e.frame = m.newPage()
		m.pages[idx] = e
		// The read and exec ways may alias this page to the shared
		// zeroFrame; drop those entries so future reads see the
		// materialized frame.
		slot := idx & tlbMask
		if m.tlbRead[slot].tag == idx {
			m.tlbRead[slot] = tlbEntry{tag: invalidTag}
		}
		if m.tlbExec[slot].tag == idx {
			m.tlbExec[slot] = tlbEntry{tag: invalidTag}
		}
	}
	if !m.NoTLB {
		m.tlbWrite[idx&tlbMask] = tlbEntry{tag: idx, page: e.frame}
	}
	return e.frame
}

// execPage resolves the page containing addr for instruction fetch, or nil.
func (m *Memory) execPage(addr uint64) *page {
	idx := addr >> PageShift
	e := &m.tlbExec[idx&tlbMask]
	if e.tag == idx {
		m.tlbHits++
		return e.page
	}
	return m.execPageSlow(idx)
}

func (m *Memory) execPageSlow(idx uint64) *page {
	m.tlbMisses++
	e, ok := m.pages[idx]
	if !ok || e.perm&PermExec == 0 {
		return nil
	}
	f := e.frame
	if f == nil {
		f = &zeroFrame
	}
	if !m.NoTLB {
		m.tlbExec[idx&tlbMask] = tlbEntry{tag: idx, page: f}
	}
	return f
}

// Map ensures [addr, addr+size) is mapped with the given permissions.
// Already-mapped pages have their permissions replaced. Mapping rounds
// outward to page boundaries, as mmap does.
func (m *Memory) Map(addr, size uint64, perm Perm) {
	if size == 0 {
		return
	}
	first := addr >> PageShift
	last := (addr + size - 1) >> PageShift
	for idx := first; ; idx++ {
		e, ok := m.pages[idx]
		if !ok {
			m.mapped++ // new page; its frame materializes on first write
		}
		e.perm = perm
		m.pages[idx] = e
		if idx == last {
			break
		}
	}
	m.invalidate(first, last) // permissions changed
}

// Unmap removes the pages covering [addr, addr+size).
func (m *Memory) Unmap(addr, size uint64) {
	if size == 0 {
		return
	}
	first := addr >> PageShift
	last := (addr + size - 1) >> PageShift
	for idx := first; ; idx++ {
		if _, ok := m.pages[idx]; ok {
			delete(m.pages, idx)
			m.mapped--
		}
		if idx == last {
			break
		}
	}
	m.invalidate(first, last)
}

// Protect changes permissions on the pages covering [addr, addr+size).
// Unmapped pages in the range are left unmapped.
func (m *Memory) Protect(addr, size uint64, perm Perm) {
	if size == 0 {
		return
	}
	first := addr >> PageShift
	last := (addr + size - 1) >> PageShift
	for idx := first; ; idx++ {
		if e, ok := m.pages[idx]; ok {
			e.perm = perm
			m.pages[idx] = e
		}
		if idx == last {
			break
		}
	}
	m.invalidate(first, last)
}

// Mapped reports whether addr lies on a mapped page.
func (m *Memory) Mapped(addr uint64) bool {
	_, ok := m.pages[addr>>PageShift]
	return ok
}

// PermAt returns the permissions of the page containing addr (zero if
// unmapped).
func (m *Memory) PermAt(addr uint64) Perm {
	if e, ok := m.pages[addr>>PageShift]; ok {
		return e.perm
	}
	return 0
}

// MappedPages returns the number of mapped pages (for memory accounting).
func (m *Memory) MappedPages() uint64 { return m.mapped }

// Load reads a little-endian integer of the given width (1, 2, 4 or 8
// bytes) from addr.
func (m *Memory) Load(addr uint64, width uint16) (uint64, error) {
	p := m.readPage(addr)
	if p == nil {
		return 0, &Fault{Addr: addr}
	}
	off := addr & pageMask
	if off+uint64(width) <= PageSize {
		switch width {
		case 1:
			return uint64(p.data[off]), nil
		case 2:
			return uint64(binary.LittleEndian.Uint16(p.data[off:])), nil
		case 4:
			return uint64(binary.LittleEndian.Uint32(p.data[off:])), nil
		case 8:
			return binary.LittleEndian.Uint64(p.data[off:]), nil
		}
		return 0, fmt.Errorf("mem: bad load width %d", width)
	}
	return m.loadCross(p, addr, width)
}

// loadCross assembles a load that straddles a page boundary: the tail of
// the already-resolved first page, then the head of the next, iteratively
// (never byte-at-a-time recursion). A fault reports the exact address of
// the first inaccessible byte, as the per-byte path did.
func (m *Memory) loadCross(p *page, addr uint64, width uint16) (uint64, error) {
	var v uint64
	shift := uint(0)
	remain := uint64(width)
	for {
		off := addr & pageMask
		n := uint64(PageSize) - off
		if n > remain {
			n = remain
		}
		for _, b := range p.data[off : off+n] {
			v |= uint64(b) << shift
			shift += 8
		}
		remain -= n
		if remain == 0 {
			return v, nil
		}
		addr += n
		if p = m.readPage(addr); p == nil {
			return 0, &Fault{Addr: addr}
		}
	}
}

// Store writes a little-endian integer of the given width to addr.
func (m *Memory) Store(addr uint64, width uint16, val uint64) error {
	p := m.writePage(addr)
	if p == nil {
		return &Fault{Addr: addr, Write: true}
	}
	off := addr & pageMask
	if off+uint64(width) <= PageSize {
		switch width {
		case 1:
			p.data[off] = byte(val)
		case 2:
			binary.LittleEndian.PutUint16(p.data[off:], uint16(val))
		case 4:
			binary.LittleEndian.PutUint32(p.data[off:], uint32(val))
		case 8:
			binary.LittleEndian.PutUint64(p.data[off:], val)
		default:
			return fmt.Errorf("mem: bad store width %d", width)
		}
		return nil
	}
	return m.storeCross(p, addr, width, val)
}

// storeCross scatters a page-straddling store iteratively over the pages
// it touches. Permissions are checked per page before any of that page's
// bytes are written, and the fault address is the first inaccessible byte
// — identical to the byte-recursive path it replaces. (Bytes on earlier
// pages stay written on a fault, exactly as before.)
func (m *Memory) storeCross(p *page, addr uint64, width uint16, val uint64) error {
	remain := uint64(width)
	for {
		off := addr & pageMask
		n := uint64(PageSize) - off
		if n > remain {
			n = remain
		}
		for i := uint64(0); i < n; i++ {
			p.data[off+i] = byte(val)
			val >>= 8
		}
		remain -= n
		if remain == 0 {
			return nil
		}
		addr += n
		if p = m.writePage(addr); p == nil {
			return &Fault{Addr: addr, Write: true}
		}
	}
}

// LoadSlice returns the readable bytes starting at addr, up to max bytes
// or the end of addr's page, whichever is shorter — one TLB probe for the
// whole span. The returned slice aliases guest memory: it is valid until
// the next Unmap and writes through it are visible to the guest, so
// callers must treat it as read-only.
func (m *Memory) LoadSlice(addr uint64, max int) ([]byte, error) {
	p := m.readPage(addr)
	if p == nil {
		return nil, &Fault{Addr: addr}
	}
	off := addr & pageMask
	span := p.data[off:]
	if max >= 0 && max < len(span) {
		span = span[:max]
	}
	return span, nil
}

// ReadAt copies len(buf) bytes starting at addr into buf: one TLB probe
// per page touched.
func (m *Memory) ReadAt(addr uint64, buf []byte) error {
	for len(buf) > 0 {
		p := m.readPage(addr)
		if p == nil {
			return &Fault{Addr: addr}
		}
		off := addr & pageMask
		n := copy(buf, p.data[off:])
		buf = buf[n:]
		addr += uint64(n)
	}
	return nil
}

// WriteAt copies buf into memory starting at addr: one TLB probe per page
// touched.
func (m *Memory) WriteAt(addr uint64, buf []byte) error {
	for len(buf) > 0 {
		p := m.writePage(addr)
		if p == nil {
			return &Fault{Addr: addr, Write: true}
		}
		off := addr & pageMask
		n := copy(p.data[off:], buf)
		buf = buf[n:]
		addr += uint64(n)
	}
	return nil
}

// Fetch reads up to n instruction bytes at addr from executable pages into
// buf, returning the number of bytes available (which may be short if the
// next page is not executable). A zero return means addr itself is not
// executable.
func (m *Memory) Fetch(addr uint64, buf []byte) int {
	total := 0
	for total < len(buf) {
		p := m.execPage(addr)
		if p == nil {
			break
		}
		off := addr & pageMask
		n := copy(buf[total:], p.data[off:])
		total += n
		addr += uint64(n)
	}
	return total
}

// Memset fills [addr, addr+size) with the byte b, one TLB probe per page.
func (m *Memory) Memset(addr uint64, b byte, size uint64) error {
	for size > 0 {
		p := m.writePage(addr)
		if p == nil {
			return &Fault{Addr: addr, Write: true}
		}
		off := addr & pageMask
		n := uint64(PageSize) - off
		if n > size {
			n = size
		}
		span := p.data[off : off+n]
		for i := range span {
			span[i] = b
		}
		addr += n
		size -= n
	}
	return nil
}

// Memcpy copies size bytes from src to dst within the address space. Each
// chunk's source range is read in full before any of it is written, so
// fault ordering (source faults before destination faults within a chunk)
// matches the historical chunked implementation.
func (m *Memory) Memcpy(dst, src, size uint64) error {
	buf := make([]byte, 4096)
	for size > 0 {
		n := uint64(len(buf))
		if n > size {
			n = size
		}
		if err := m.ReadAt(src, buf[:n]); err != nil {
			return err
		}
		if err := m.WriteAt(dst, buf[:n]); err != nil {
			return err
		}
		dst += n
		src += n
		size -= n
	}
	return nil
}

// ReadCString reads a NUL-terminated string at addr (bounded by max
// bytes), scanning page-sized spans with one TLB probe each instead of a
// per-byte load.
func (m *Memory) ReadCString(addr uint64, max int) (string, error) {
	var out []byte
	for len(out) < max {
		span, err := m.LoadSlice(addr, max-len(out))
		if err != nil {
			return "", err
		}
		for i, b := range span {
			if b == 0 {
				return string(append(out, span[:i]...)), nil
			}
		}
		out = append(out, span...)
		addr += uint64(len(span))
	}
	return string(out), fmt.Errorf("mem: unterminated string at %#x", addr-uint64(len(out)))
}
