// Package mem implements the sparse paged virtual memory used by the RF64
// virtual machine.
//
// The address space is the full 64-bit range, backed lazily by 4 KiB page
// frames allocated on Map. This is what lets the low-fat allocator (package
// lowfat) reserve many 32 GB virtual regions (paper Fig. 2) without
// committing physical memory — exactly the virtual-address-space trick the
// LowFat allocator plays on Linux with mmap(PROT_NONE) reservations.
//
// All simulated program memory lives in these explicitly managed frames, so
// the Go garbage collector never interacts with simulated pointers.
package mem

import (
	"encoding/binary"
	"fmt"
)

// PageShift and PageSize define the 4 KiB page geometry.
const (
	PageShift = 12
	PageSize  = 1 << PageShift
	pageMask  = PageSize - 1
)

// Perm is a page permission bitmask.
type Perm uint8

// Permission bits.
const (
	PermRead  Perm = 1 << 0
	PermWrite Perm = 1 << 1
	PermExec  Perm = 1 << 2

	// PermRW and PermRX are the common combinations.
	PermRW = PermRead | PermWrite
	PermRX = PermRead | PermExec
)

// String renders the permissions as "rwx" flags.
func (p Perm) String() string {
	b := []byte("---")
	if p&PermRead != 0 {
		b[0] = 'r'
	}
	if p&PermWrite != 0 {
		b[1] = 'w'
	}
	if p&PermExec != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// Fault describes a memory access violation.
type Fault struct {
	Addr  uint64
	Write bool
	Exec  bool
}

// Error implements the error interface.
func (f *Fault) Error() string {
	kind := "read"
	if f.Write {
		kind = "write"
	}
	if f.Exec {
		kind = "execute"
	}
	return fmt.Sprintf("segmentation fault: %s at %#x", kind, f.Addr)
}

type page struct {
	data [PageSize]byte
	perm Perm
}

// Memory is a sparse paged address space. The zero value is not ready for
// use; call New.
type Memory struct {
	pages map[uint64]*page

	// Single-entry caches for the hot paths (sequential data access and
	// instruction fetch tend to hit the same page repeatedly).
	cacheIdx  uint64
	cachePage *page

	mapped uint64 // number of mapped pages, for accounting
}

// New returns an empty address space.
func New() *Memory {
	return &Memory{pages: make(map[uint64]*page, 1024), cacheIdx: ^uint64(0)}
}

// lookup returns the page containing addr, or nil if unmapped.
func (m *Memory) lookup(addr uint64) *page {
	idx := addr >> PageShift
	if idx == m.cacheIdx {
		return m.cachePage
	}
	p := m.pages[idx]
	if p != nil {
		m.cacheIdx, m.cachePage = idx, p
	}
	return p
}

// Map ensures [addr, addr+size) is mapped with the given permissions.
// Already-mapped pages have their permissions replaced. Mapping rounds
// outward to page boundaries, as mmap does.
func (m *Memory) Map(addr, size uint64, perm Perm) {
	if size == 0 {
		return
	}
	first := addr >> PageShift
	last := (addr + size - 1) >> PageShift
	for idx := first; ; idx++ {
		p := m.pages[idx]
		if p == nil {
			p = &page{}
			m.pages[idx] = p
			m.mapped++
		}
		p.perm = perm
		if idx == last {
			break
		}
	}
	m.cacheIdx = ^uint64(0) // permissions changed; drop cache
}

// Unmap removes the pages covering [addr, addr+size).
func (m *Memory) Unmap(addr, size uint64) {
	if size == 0 {
		return
	}
	first := addr >> PageShift
	last := (addr + size - 1) >> PageShift
	for idx := first; ; idx++ {
		if _, ok := m.pages[idx]; ok {
			delete(m.pages, idx)
			m.mapped--
		}
		if idx == last {
			break
		}
	}
	m.cacheIdx = ^uint64(0)
}

// Protect changes permissions on the pages covering [addr, addr+size).
// Unmapped pages in the range are left unmapped.
func (m *Memory) Protect(addr, size uint64, perm Perm) {
	if size == 0 {
		return
	}
	first := addr >> PageShift
	last := (addr + size - 1) >> PageShift
	for idx := first; ; idx++ {
		if p := m.pages[idx]; p != nil {
			p.perm = perm
		}
		if idx == last {
			break
		}
	}
	m.cacheIdx = ^uint64(0)
}

// Mapped reports whether addr lies on a mapped page.
func (m *Memory) Mapped(addr uint64) bool { return m.lookup(addr) != nil }

// PermAt returns the permissions of the page containing addr (zero if
// unmapped).
func (m *Memory) PermAt(addr uint64) Perm {
	if p := m.lookup(addr); p != nil {
		return p.perm
	}
	return 0
}

// MappedPages returns the number of mapped pages (for memory accounting).
func (m *Memory) MappedPages() uint64 { return m.mapped }

// Load reads a little-endian integer of the given width (1, 2, 4 or 8
// bytes) from addr.
func (m *Memory) Load(addr uint64, width uint16) (uint64, error) {
	p := m.lookup(addr)
	if p == nil || p.perm&PermRead == 0 {
		return 0, &Fault{Addr: addr}
	}
	off := addr & pageMask
	if off+uint64(width) <= PageSize {
		switch width {
		case 1:
			return uint64(p.data[off]), nil
		case 2:
			return uint64(binary.LittleEndian.Uint16(p.data[off:])), nil
		case 4:
			return uint64(binary.LittleEndian.Uint32(p.data[off:])), nil
		case 8:
			return binary.LittleEndian.Uint64(p.data[off:]), nil
		}
		return 0, fmt.Errorf("mem: bad load width %d", width)
	}
	// Cross-page access.
	var v uint64
	for i := uint16(0); i < width; i++ {
		b, err := m.Load(addr+uint64(i), 1)
		if err != nil {
			return 0, err
		}
		v |= b << (8 * i)
	}
	return v, nil
}

// Store writes a little-endian integer of the given width to addr.
func (m *Memory) Store(addr uint64, width uint16, val uint64) error {
	p := m.lookup(addr)
	if p == nil || p.perm&PermWrite == 0 {
		return &Fault{Addr: addr, Write: true}
	}
	off := addr & pageMask
	if off+uint64(width) <= PageSize {
		switch width {
		case 1:
			p.data[off] = byte(val)
		case 2:
			binary.LittleEndian.PutUint16(p.data[off:], uint16(val))
		case 4:
			binary.LittleEndian.PutUint32(p.data[off:], uint32(val))
		case 8:
			binary.LittleEndian.PutUint64(p.data[off:], val)
		default:
			return fmt.Errorf("mem: bad store width %d", width)
		}
		return nil
	}
	for i := uint16(0); i < width; i++ {
		if err := m.Store(addr+uint64(i), 1, val>>(8*i)); err != nil {
			return err
		}
	}
	return nil
}

// ReadAt copies len(buf) bytes starting at addr into buf.
func (m *Memory) ReadAt(addr uint64, buf []byte) error {
	for len(buf) > 0 {
		p := m.lookup(addr)
		if p == nil || p.perm&PermRead == 0 {
			return &Fault{Addr: addr}
		}
		off := addr & pageMask
		n := copy(buf, p.data[off:])
		buf = buf[n:]
		addr += uint64(n)
	}
	return nil
}

// WriteAt copies buf into memory starting at addr.
func (m *Memory) WriteAt(addr uint64, buf []byte) error {
	for len(buf) > 0 {
		p := m.lookup(addr)
		if p == nil || p.perm&PermWrite == 0 {
			return &Fault{Addr: addr, Write: true}
		}
		off := addr & pageMask
		n := copy(p.data[off:], buf)
		buf = buf[n:]
		addr += uint64(n)
	}
	return nil
}

// Fetch reads up to n instruction bytes at addr from executable pages into
// buf, returning the number of bytes available (which may be short if the
// next page is not executable). A zero return means addr itself is not
// executable.
func (m *Memory) Fetch(addr uint64, buf []byte) int {
	total := 0
	for total < len(buf) {
		p := m.lookup(addr)
		if p == nil || p.perm&PermExec == 0 {
			break
		}
		off := addr & pageMask
		n := copy(buf[total:], p.data[off:])
		total += n
		addr += uint64(n)
	}
	return total
}

// Memset fills [addr, addr+size) with the byte b.
func (m *Memory) Memset(addr uint64, b byte, size uint64) error {
	chunk := make([]byte, 256)
	for i := range chunk {
		chunk[i] = b
	}
	for size > 0 {
		n := uint64(len(chunk))
		if n > size {
			n = size
		}
		if err := m.WriteAt(addr, chunk[:n]); err != nil {
			return err
		}
		addr += n
		size -= n
	}
	return nil
}

// Memcpy copies size bytes from src to dst within the address space.
func (m *Memory) Memcpy(dst, src, size uint64) error {
	buf := make([]byte, 4096)
	for size > 0 {
		n := uint64(len(buf))
		if n > size {
			n = size
		}
		if err := m.ReadAt(src, buf[:n]); err != nil {
			return err
		}
		if err := m.WriteAt(dst, buf[:n]); err != nil {
			return err
		}
		dst += n
		src += n
		size -= n
	}
	return nil
}

// ReadCString reads a NUL-terminated string at addr (bounded by max bytes).
func (m *Memory) ReadCString(addr uint64, max int) (string, error) {
	var out []byte
	for i := 0; i < max; i++ {
		b, err := m.Load(addr+uint64(i), 1)
		if err != nil {
			return "", err
		}
		if b == 0 {
			return string(out), nil
		}
		out = append(out, byte(b))
	}
	return string(out), fmt.Errorf("mem: unterminated string at %#x", addr)
}
