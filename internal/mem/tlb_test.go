package mem

import (
	"math/rand"
	"testing"
)

// TestTLBHitMiss checks the basic hit/miss accounting: repeated access to
// one page hits after the first fill, NoTLB never hits.
func TestTLBHitMiss(t *testing.T) {
	m := New()
	m.Map(0x1000, PageSize, PermRW)
	for i := 0; i < 10; i++ {
		if _, err := m.Load(0x1000+uint64(i*8), 8); err != nil {
			t.Fatal(err)
		}
	}
	st := m.TLB()
	if st.Hits != 9 || st.Misses != 1 {
		t.Errorf("TLB stats = %+v, want 9 hits / 1 miss", st)
	}
	if r := st.HitRate(); r < 0.89 || r > 0.91 {
		t.Errorf("HitRate = %v, want 0.9", r)
	}

	n := New()
	n.NoTLB = true
	n.Map(0x1000, PageSize, PermRW)
	for i := 0; i < 10; i++ {
		if _, err := n.Load(0x1000, 8); err != nil {
			t.Fatal(err)
		}
	}
	if st := n.TLB(); st.Hits != 0 || st.Misses != 10 {
		t.Errorf("NoTLB stats = %+v, want 0 hits / 10 misses", st)
	}
}

// TestTLBWaysSplitPermissions verifies that permission is folded into the
// way: a read-only page fills the read way but never the write way, so a
// store faults even right after a successful load of the same address.
func TestTLBWaysSplitPermissions(t *testing.T) {
	m := New()
	m.Map(0x2000, PageSize, PermRead)
	if _, err := m.Load(0x2000, 8); err != nil {
		t.Fatal(err)
	}
	if err := m.Store(0x2000, 8, 1); err == nil {
		t.Fatal("store to read-only page succeeded after load cached it")
	}
	if n := m.Fetch(0x2000, make([]byte, 4)); n != 0 {
		t.Fatalf("fetch from non-exec page returned %d bytes", n)
	}
	// Upgrade to RWX: every kind must now succeed (Protect invalidated).
	m.Protect(0x2000, PageSize, PermRead|PermWrite|PermExec)
	if err := m.Store(0x2000, 8, 1); err != nil {
		t.Fatalf("store after Protect(rwx): %v", err)
	}
	if n := m.Fetch(0x2000, make([]byte, 4)); n != 4 {
		t.Fatalf("fetch after Protect(rwx) = %d bytes", n)
	}
}

// TestTLBInvalidation exercises the precise-invalidation paths: Protect
// revoking a permission, Unmap dropping a page, and Map replacing a page's
// permissions must all evict stale translations; unrelated entries and
// aliasing slots must be handled correctly.
func TestTLBInvalidation(t *testing.T) {
	m := New()
	m.Map(0x1000, PageSize, PermRW)
	if err := m.Store(0x1000, 8, 42); err != nil {
		t.Fatal(err)
	}
	m.Protect(0x1000, PageSize, PermRead)
	if err := m.Store(0x1000, 8, 1); err == nil {
		t.Fatal("store through stale write translation after Protect")
	}
	if v, err := m.Load(0x1000, 8); err != nil || v != 42 {
		t.Fatalf("load after Protect = %#x, %v", v, err)
	}
	m.Unmap(0x1000, PageSize)
	if _, err := m.Load(0x1000, 8); err == nil {
		t.Fatal("load through stale translation after Unmap")
	}
	// Remap: fresh page (zeroed), and the read way must see the new frame.
	m.Map(0x1000, PageSize, PermRW)
	if v, err := m.Load(0x1000, 8); err != nil || v != 0 {
		t.Fatalf("load after remap = %#x, %v (want fresh zero page)", v, err)
	}

	// Aliasing: two pages TLBSize pages apart share a slot; accessing the
	// second must evict the first cleanly, and invalidating one must not
	// disturb the resident translation of the other.
	a := uint64(0x100000)
	b := a + TLBSize*PageSize
	m.Map(a, PageSize, PermRW)
	m.Map(b, PageSize, PermRW)
	m.Store(a, 8, 0xA)
	m.Store(b, 8, 0xB)
	if v, _ := m.Load(a, 8); v != 0xA {
		t.Fatalf("aliased page a = %#x", v)
	}
	if v, _ := m.Load(b, 8); v != 0xB {
		t.Fatalf("aliased page b = %#x", v)
	}
	m.Unmap(a, PageSize) // must not evict b's translation validity
	if v, err := m.Load(b, 8); err != nil || v != 0xB {
		t.Fatalf("page b after unmapping aliased a = %#x, %v", v, err)
	}
}

// TestTLBLargeRangeFlush covers the full-flush invalidation path (ranges
// spanning at least TLBSize pages).
func TestTLBLargeRangeFlush(t *testing.T) {
	m := New()
	size := uint64((TLBSize + 8) * PageSize)
	m.Map(0x100000, size, PermRW)
	for off := uint64(0); off < size; off += PageSize {
		if err := m.Store(0x100000+off, 8, off); err != nil {
			t.Fatal(err)
		}
	}
	m.Protect(0x100000, size, PermRead) // large range → full flush
	for off := uint64(0); off < size; off += PageSize {
		if err := m.Store(0x100000+off, 8, 1); err == nil {
			t.Fatalf("store at +%#x through stale translation after bulk Protect", off)
		}
	}
}

// TestCrossPageFaultAddress pins the fault semantics of the iterative
// cross-page paths: the reported address is the first inaccessible byte,
// and for stores the accessible prefix is written (as the old per-byte
// recursion left it).
func TestCrossPageFaultAddress(t *testing.T) {
	m := New()
	m.Map(0x1000, PageSize, PermRW) // 0x2000.. unmapped
	addr := uint64(0x2000 - 3)
	_, err := m.Load(addr, 8)
	f, ok := err.(*Fault)
	if !ok || f.Addr != 0x2000 || f.Write {
		t.Fatalf("cross-page load fault = %v, want read fault at 0x2000", err)
	}
	err = m.Store(addr, 8, 0x1122334455667788)
	f, ok = err.(*Fault)
	if !ok || f.Addr != 0x2000 || !f.Write {
		t.Fatalf("cross-page store fault = %v, want write fault at 0x2000", err)
	}
	// The three in-page bytes must have been written (low-order first).
	for i, want := range []uint64{0x88, 0x77, 0x66} {
		if v, _ := m.Load(addr+uint64(i), 1); v != want {
			t.Errorf("partial store byte %d = %#x, want %#x", i, v, want)
		}
	}
}

// TestTLBIdentityRandomOps drives an identical random operation sequence
// against a TLB-enabled and a TLB-disabled Memory and requires identical
// results — the mem-level statement of the repo's bit-identity invariant.
func TestTLBIdentityRandomOps(t *testing.T) {
	run := func(noTLB bool) (vals []uint64, errs []string) {
		m := New()
		m.NoTLB = noTLB
		r := rand.New(rand.NewSource(7))
		record := func(v uint64, err error) {
			vals = append(vals, v)
			if err != nil {
				errs = append(errs, err.Error())
			} else {
				errs = append(errs, "")
			}
		}
		const base, span = 0x10000, 0x40000
		for i := 0; i < 5000; i++ {
			addr := base + uint64(r.Intn(span))
			switch r.Intn(7) {
			case 0:
				m.Map(addr&^uint64(pageMask), uint64(1+r.Intn(4))*PageSize, Perm(1+r.Intn(7)))
				record(0, nil)
			case 1:
				m.Unmap(addr&^uint64(pageMask), uint64(1+r.Intn(4))*PageSize)
				record(0, nil)
			case 2:
				m.Protect(addr&^uint64(pageMask), uint64(1+r.Intn(4))*PageSize, Perm(1+r.Intn(7)))
				record(0, nil)
			case 3:
				w := []uint16{1, 2, 4, 8}[r.Intn(4)]
				v, err := m.Load(addr, w)
				record(v, err)
			case 4:
				w := []uint16{1, 2, 4, 8}[r.Intn(4)]
				record(0, m.Store(addr, w, r.Uint64()))
			case 5:
				buf := make([]byte, r.Intn(3*PageSize))
				record(0, m.ReadAt(addr, buf))
			case 6:
				record(uint64(m.Fetch(addr, make([]byte, 16))), nil)
			}
		}
		return vals, errs
	}
	v1, e1 := run(false)
	v2, e2 := run(true)
	for i := range v1 {
		if v1[i] != v2[i] || e1[i] != e2[i] {
			t.Fatalf("op %d diverged: tlb=(%#x,%q) map=(%#x,%q)", i, v1[i], e1[i], v2[i], e2[i])
		}
	}
}

// TestLoadSlice covers the span accessor: page-bounded, max-bounded,
// aliasing guest memory, and faulting on unreadable pages.
func TestLoadSlice(t *testing.T) {
	m := New()
	m.Map(0x1000, PageSize, PermRW)
	m.WriteAt(0x1ff0, []byte("abcdef"))
	span, err := m.LoadSlice(0x1ff0, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if len(span) != 16 { // clipped at the page end
		t.Errorf("span len = %d, want 16", len(span))
	}
	if string(span[:6]) != "abcdef" {
		t.Errorf("span = %q", span[:6])
	}
	if span, _ = m.LoadSlice(0x1000, 4); len(span) != 4 {
		t.Errorf("max-bounded span len = %d, want 4", len(span))
	}
	if _, err := m.LoadSlice(0x9000, 8); err == nil {
		t.Error("LoadSlice of unmapped memory succeeded")
	}
	m.Protect(0x1000, PageSize, PermWrite)
	if _, err := m.LoadSlice(0x1000, 8); err == nil {
		t.Error("LoadSlice of write-only memory succeeded")
	}
}

// TestPerfSmokeTLB is the cheap perf guard wired into `make check`: on the
// dispatch-shaped micro (a load loop over a multi-page working set) the
// TLB path must not be slower than the page-map path. It compares the two
// paths against each other rather than an absolute threshold, so it is
// robust to slow CI hosts; it retries to ride out scheduling noise.
func TestPerfSmokeTLB(t *testing.T) {
	if testing.Short() {
		t.Skip("perf smoke skipped in -short (race) mode")
	}
	measure := func(noTLB bool) float64 {
		m := New()
		m.NoTLB = noTLB
		m.Map(0x10000, 16*PageSize, PermRW)
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				addr := 0x10000 + uint64(i%(16*PageSize-8))
				if _, err := m.Load(addr, 8); err != nil {
					b.Fatal(err)
				}
			}
		})
		return float64(res.NsPerOp())
	}
	for attempt := 1; ; attempt++ {
		tlb, pmap := measure(false), measure(true)
		if tlb <= pmap*1.05 { // equality tolerance: both paths in noise
			t.Logf("tlb %.2f ns/access vs map %.2f ns/access", tlb, pmap)
			return
		}
		if attempt == 3 {
			t.Fatalf("TLB path slower than page-map path after %d attempts: %.2f vs %.2f ns/access",
				attempt, tlb, pmap)
		}
	}
}

// BenchmarkTLBHit measures the steady-state hit path: loads confined to a
// working set that fits the TLB.
func BenchmarkTLBHit(b *testing.B) {
	m := New()
	m.Map(0x10000, 8*PageSize, PermRW)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Load(0x10000+uint64(i)%(8*PageSize-8), 8)
	}
	b.ReportMetric(m.TLB().HitRate()*100, "hit-%")
}

// BenchmarkTLBMiss measures the miss path: a page-granular stride over
// more pages than the TLB holds, so every probe misses and refills.
func BenchmarkTLBMiss(b *testing.B) {
	m := New()
	pages := uint64(4 * TLBSize)
	m.Map(0x100000, pages*PageSize, PermRW)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Load(0x100000+(uint64(i)%pages)*PageSize, 8)
	}
	b.ReportMetric(m.TLB().HitRate()*100, "hit-%")
}

// BenchmarkMapLookup is the no-TLB baseline the smoke test guards against.
func BenchmarkMapLookup(b *testing.B) {
	m := New()
	m.NoTLB = true
	m.Map(0x10000, 8*PageSize, PermRW)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Load(0x10000+uint64(i)%(8*PageSize-8), 8)
	}
}

// BenchmarkCrossPage measures the iterative page-straddling load/store
// path (formerly byte-at-a-time recursion).
func BenchmarkCrossPage(b *testing.B) {
	m := New()
	m.Map(0x10000, 2*PageSize, PermRW)
	addr := uint64(0x11000 - 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Store(addr, 8, uint64(i))
		m.Load(addr, 8)
	}
}

// BenchmarkReadCString measures the span-scanning string reader.
func BenchmarkReadCString(b *testing.B) {
	m := New()
	m.Map(0x10000, 2*PageSize, PermRW)
	s := make([]byte, 3000) // crosses one page boundary from 0x10800
	for i := range s {
		s[i] = 'x'
	}
	s[len(s)-1] = 0
	m.WriteAt(0x10800, s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.ReadCString(0x10800, 4096); err != nil {
			b.Fatal(err)
		}
	}
}
