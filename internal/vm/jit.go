package vm

// The superblock translation tier (tier 1).
//
// The interpreter pays a fixed per-instruction toll: the exec dispatch
// switch, the cycle-budget poll, the Halted check, the telemetry
// branches, and a RIP/Insts/Cycles update per retired instruction. Once
// block chaining has linked a hot path into a stable straight line
// (chain hit rate on the bench workloads is ~99.9%), that toll is almost
// the entire cost. The superblock tier removes it: when a block's entry
// counter crosses JITThreshold, the chained trace rooted at that block
// is compiled into a sequence of specialized Go closures — one per
// instruction, each a residual computation with every decode-dependent
// decision (operand form, width, registers, immediates, branch targets,
// check plans) folded away at compile time.
//
// Deferred state and the single spill. Inside a trace the VM defers
// everything the interpreter updates per instruction: condition flags
// live in a context register (jctx.flags), and RIP, the retired-
// instruction count, the statically-known cycle total and the telemetry
// deltas are materialized exactly once per trace exit from precomputed
// per-exit records. The general-purpose register file deliberately stays
// architectural (v.Regs): fused check handlers read registers directly
// and error reports walk v.Regs[RSP], so spilling registers would buy
// nothing and cost a copy. Dynamically-determined cycles (the per-site
// check cost, which depends on the run-time fat/non-fat outcome) are
// charged to v.Cycles by the check closure itself, so v.Cycles is the
// interpreter's value at every materialization point.
//
// Check fusion and elision. An RTCALL that resolves (via VM.InlineCheck)
// to an instrumented-check plan stays on-trace as a fused closure. When
// two sites in one trace have the same access plan (same base/index
// registers, scale, segment, static offset, length and mode) and no
// instruction between them writes those registers or stores to guest
// memory, the later site is elided: instead of recomputing the low-fat
// base and reloading heap metadata it forwards the leader's outcome —
// still charging its own cycle cost, updating its own site statistics
// and reporting its own error — so guest-visible behaviour is
// bit-identical while the redundant base derivation disappears.
//
// Exact semantics. The tier preserves, instruction for instruction:
// cycle accounting (including partial charges on faulting instructions),
// retired-instruction counts, telemetry counters, error report order and
// content, the cycle-budget abort point (a trace is only entered when a
// full worst-case iteration fits in the remaining budget, so aborts
// always fire in the interpreter at the exact instruction), and the halt
// protocol. Side exits (the unpredicted branch direction), dynamic exits
// (indirect control flow), faults and detections all materialize full
// state and deopt to the interpreter, which remains the always-correct
// tier 0. Condition flags are exact at every resumable exit; after a
// faulting exit the run terminates with an error and flags are not
// observable.
//
// The compiler is two-phase: analyzeTrace derives a declarative plan
// (TraceInfo — steps, costs, exits, flag-elision and check-elision
// claims) and emitTrace generates closures from nothing but that plan.
// internal/verify re-derives every claim independently and certifies the
// plan against the single-step semantics (DESIGN.md §14).

import (
	"time"

	"redfat/internal/isa"
	"redfat/internal/obs"
)

// DefaultJITThreshold is the block entry count that triggers trace
// compilation when VM.JITThreshold is zero. High enough that cold code
// never pays compilation, low enough that the bench loops (thousands of
// iterations) spend almost all their trips in compiled code.
const DefaultJITThreshold = 64

// maxTraceInsts bounds a trace; longer chains simply end in a fall exit
// and the successor trace starts its own counter.
const maxTraceInsts = 256

// minTraceInsts is the shortest trace worth compiling: below this the
// per-entry overhead (budget guard, materialization) eats the win.
const minTraceInsts = 3

// CheckClass abstracts a check verdict for forwarding: the class is a
// pure function of the access range and heap metadata, which elision
// guarantees are identical at leader and follower, while the concrete
// error kind (read vs write) is the follower's own.
type CheckClass uint8

// Check outcome classes.
const (
	CheckOK   CheckClass = iota
	CheckMeta            // corrupted metadata (size-check failure)
	CheckUAF             // use-after-free (SIZE=0, mapped header)
	CheckOOB             // out-of-bounds (incl. wild pointers, SIZE reads 0)
)

// CheckOutcome is what a leading check execution publishes for elided
// followers: the derived object base, which derivation succeeded (the
// cost-table index), the metadata size word, and the verdict class.
type CheckOutcome struct {
	Base        uint64
	Fat         bool // base(ptr) succeeded (LowFat component)
	FallbackFat bool // base(LB) fallback succeeded (Redzone component)
	Size        uint64
	Class       CheckClass
}

// JITCheck is the fusable plan of one instrumentation site, exported by
// the runtime layer through VM.InlineCheck. The address-plan fields
// mirror the site's precompiled operand plan and form the elision key;
// Exec runs the full check and fills the outcome, Forward replays a
// leader's outcome with the site's own accounting.
type JITCheck struct {
	BaseReg   isa.Reg
	IndexReg  isa.Reg
	Scale     uint64
	Seg       isa.Seg
	StaticOff uint64
	Length    uint64
	TryLowFat bool
	SizeCheck bool
	Profile   bool

	// MaxCost bounds the guest cycles one execution can charge (the
	// maximum over the site's cost table), for the budget guard.
	MaxCost uint64

	Exec    func(v *VM, o *CheckOutcome) error
	Forward func(v *VM, o *CheckOutcome) error
}

// samePlan reports whether two sites share the elision key: identical
// access plans checked under identical modes compute identical outcomes
// from identical register and heap state.
func (c *JITCheck) samePlan(o *JITCheck) bool {
	return c.BaseReg == o.BaseReg && c.IndexReg == o.IndexReg &&
		c.Scale == o.Scale && c.Seg == o.Seg &&
		c.StaticOff == o.StaticOff && c.Length == o.Length &&
		c.TryLowFat == o.TryLowFat && c.SizeCheck == o.SizeCheck &&
		c.Profile == o.Profile
}

// ExitKind classifies how control leaves a compiled trace.
type ExitKind uint8

// Trace exit kinds.
const (
	ExitFall  ExitKind = iota // static successor off the trace end
	ExitLoop                  // back edge to the trace entry (stay compiled)
	ExitSide                  // unpredicted conditional-branch direction
	ExitDyn                   // dynamic target (ret / indirect jmp / indirect call)
	ExitHalt                  // HLT or RET to the exit sentinel
	ExitFault                 // error: memory fault, div fault, or aborting detection
)

// DeoptReason classifies why control left the compiled tier for the
// interpreter. Side exits and dynamic transfers are the benign steady-
// state reasons; faults and traps mean the trace hit an error or an
// aborting detection; halt means the program ended inside the trace;
// budget means the cycle-budget guard refused or curtailed an entry so
// the abort could fire at the exact instruction. ExitFall and ExitLoop
// are not deopts: control stays in (or re-enters) compiled code.
type DeoptReason uint8

// Deopt reasons, the buckets behind vm.jit.deopt.<reason>.count.
const (
	DeoptSide       DeoptReason = iota // unpredicted conditional-branch direction
	DeoptDyn                           // dynamic transfer (ret / indirect jmp / indirect call)
	DeoptHalt                          // HLT or RET to the exit sentinel inside the trace
	DeoptFault                         // memory or divide fault on a plain instruction
	DeoptTrap                          // fused check reported an aborting detection
	DeoptBudget                        // cycle-budget guard refused or curtailed the trace
	NumDeoptReasons = int(iota)
)

// String names the reason as telemetry and flight dumps render it.
func (r DeoptReason) String() string {
	switch r {
	case DeoptSide:
		return "side"
	case DeoptDyn:
		return "dyn"
	case DeoptHalt:
		return "halt"
	case DeoptFault:
		return "fault"
	case DeoptTrap:
		return "trap"
	case DeoptBudget:
		return "budget"
	}
	return "deopt?"
}

// String names the exit kind.
func (k ExitKind) String() string {
	switch k {
	case ExitFall:
		return "fall"
	case ExitLoop:
		return "loop"
	case ExitSide:
		return "side"
	case ExitDyn:
		return "dyn"
	case ExitHalt:
		return "halt"
	case ExitFault:
		return "fault"
	}
	return "exit?"
}

// TraceCheck is the declarative record of one fused check site inside a
// TraceInfo: the site identity, the elision decision, and a copy of the
// plan key so the certifier can match it against an independently
// re-resolved plan.
type TraceCheck struct {
	Arg       uint32 // instrumentation-site index (RTCALL static argument)
	ImportIdx int    // RTCALL import slot
	Elided    bool   // true: forwards Leader's outcome instead of executing
	Leader    int    // step index of the leading site (when Elided)
	Slot      int    // outcome slot shared by leader and followers

	// Plan key (mirrors JITCheck).
	BaseReg   isa.Reg
	IndexReg  isa.Reg
	Scale     uint64
	Seg       isa.Seg
	StaticOff uint64
	Length    uint64
	TryLowFat bool
	SizeCheck bool
	Profile   bool
	MaxCost   uint64
}

// TraceStep is one instruction of a compiled trace, with the claims the
// emitter compiles from and the certifier re-proves: the static on-trace
// successor, the continue-path cycle cost, and whether the flag update
// was elided as dead.
type TraceStep struct {
	PC   uint64
	Inst isa.Inst
	Next uint64 // successor pc when the trace continues past this step
	Cost uint64 // static cycles on the continue path (CostInst+overhead included)

	// FlagsElided marks an instruction whose condition-flag update was
	// proven dead within the trace (no flag it may write is observed
	// before being unconditionally overwritten, on any resumable path).
	FlagsElided bool

	Check *TraceCheck // non-nil when the step is a fused check RTCALL
}

// TraceExit is one way control can leave the trace, with the exact state
// the runner materializes: the resume RIP (or dynamic), and the retired
// instructions and statically-charged cycles accumulated on that path.
type TraceExit struct {
	Step    int // index of the step this exit leaves at
	Kind    ExitKind
	Stage   uint8 // 0: after the step's effects; 1,2: n-th memory/fault point inside it
	RIP     uint64
	Dynamic bool   // resume RIP is run-time determined (jctx.dynRIP)
	Retired uint64 // instructions retired when leaving here (always Step+1)
	Cycles  uint64 // static cycles charged when leaving here
}

// TraceInfo is the declarative compilation plan of one superblock: the
// certifiable contract between analyzeTrace (which derives it), emitTrace
// (which compiles closures from it and nothing else), and the
// internal/verify certifier (which re-derives and checks every claim).
type TraceInfo struct {
	EntryPC  uint64
	Overhead uint64 // PerInstOverhead baked into step costs
	MaxCost  uint64 // upper bound on cycles charged by one full iteration
	Steps    []TraceStep
	Exits    []TraceExit
}

// CompiledTraces returns the plans of every superblock compiled so far,
// in compilation order (for the verify certifier and -stats reporting).
func (v *VM) CompiledTraces() []*TraceInfo {
	out := make([]*TraceInfo, len(v.traces))
	for i, t := range v.traces {
		out[i] = t.info
	}
	return out
}

// jctx is the deferred machine state threaded through a trace's step
// closures: the cached condition flags and, for dynamic exits, the
// run-time resume RIP. err carries the terminating error of a fault
// exit.
type jctx struct {
	flags  Flags
	dynRIP uint64
	err    error
}

// jstep executes one compiled instruction against the deferred context.
// It returns 0 to continue to the next step, or the 1-based index of the
// taken exit.
type jstep func(j *jctx) int

// stepTel is the telemetry delta of one step (or of a partial, faulting
// step): the retired opcode plus the load/store/branch/patch counter
// increments the interpreter would have made.
type stepTel struct {
	op       isa.Op
	loads    uint8
	stores   uint8
	branches uint8
	patch    uint8
}

// telBatch is a precomputed aggregate of the per-step telemetry along
// one exit path, applied with a handful of counter adds instead of a
// per-step replay. Built only for the terminal (hot) exits.
type telBatch struct {
	loads, stores, branches, patch uint64
	ops                            []opCount
}

// opCount is one per-opcode retirement total inside a telBatch.
type opCount struct {
	op isa.Op
	n  uint64
}

// traceExit is the runner-side record of one exit: the materialization
// constants from TraceExit plus the telemetry replay data and a
// one-entry successor-block cache (the trace-level BTB).
type traceExit struct {
	kind    ExitKind
	rip     uint64
	dynamic bool
	retired uint64
	cycles  uint64
	step    int
	self    stepTel   // the exiting step's own (possibly partial) telemetry
	batch   *telBatch // aggregate for terminal exits; nil → replay per-step meta

	// deopt marks exits that leave the compiled tier; reason is the
	// attribution bucket (computed once at emit time, so the runner pays
	// one branch, not a classification).
	deopt  bool
	reason DeoptReason

	nextPC uint64 // last successor block resolved after this exit
	next   *block
}

// trace is one compiled superblock.
type trace struct {
	entryPC  uint64
	overhead uint64 // PerInstOverhead the costs were compiled against
	maxCost  uint64
	steps    []jstep
	meta     []stepTel // continue-path telemetry per step
	exits    []traceExit
	outc     []CheckOutcome // leader→follower forwarding slots
	ctx      jctx           // reused across entries (one VM, one goroutine)
	info     *TraceInfo

	// Per-trace runtime history for the /traces table and -stats:
	// guest-deterministic (counted in dispatch, not sampled), kept even
	// without a telemetry registry.
	entries uint64
	deopts  [NumDeoptReasons]uint64
}

// TraceStat is the exported runtime record of one compiled trace: its
// shape plus its entry count and per-reason deopt histogram.
type TraceStat struct {
	EntryPC uint64
	EndPC   uint64 // PC of the last step
	Steps   int
	Checks  int // fused check sites
	Elided  int // of which forwarded a leader's outcome
	Entries uint64
	Deopts  [NumDeoptReasons]uint64
}

// TraceStats reports every compiled trace's runtime history, in
// compilation order (deterministic: compilation order is a function of
// guest execution).
func (v *VM) TraceStats() []TraceStat {
	if len(v.traces) == 0 {
		return nil
	}
	out := make([]TraceStat, len(v.traces))
	for i, t := range v.traces {
		s := TraceStat{
			EntryPC: t.entryPC,
			Steps:   len(t.info.Steps),
			Entries: t.entries,
			Deopts:  t.deopts,
		}
		if n := len(t.info.Steps); n > 0 {
			s.EndPC = t.info.Steps[n-1].PC
		}
		for j := range t.info.Steps {
			if c := t.info.Steps[j].Check; c != nil {
				s.Checks++
				if c.Elided {
					s.Elided++
				}
			}
		}
		out[i] = s
	}
	return out
}

// jitEnabled decides whether this run may use the superblock tier: the
// tier needs the block cache with chaining (a trace is a chain) and no
// per-instruction observers — trace/mem/block hooks, the event tracer
// and the guest profiler all require interpreter-grain callbacks, so
// any of them pins execution to tier 0.
func (v *VM) jitEnabled() bool {
	return !v.NoJIT && !v.NoChain && !v.NoBlockCache &&
		v.TraceHook == nil && v.Tracer == nil && v.Profiler == nil &&
		v.MemHook == nil && v.BlockHook == nil
}

// jitThreshold resolves the configured hotness threshold.
func (v *VM) jitThreshold() uint32 {
	if v.JITThreshold != 0 {
		if v.JITThreshold > 1<<30 {
			return 1 << 30
		}
		return uint32(v.JITThreshold)
	}
	return DefaultJITThreshold
}

// jitTrace returns the compiled trace rooted at b, counting entries and
// compiling once the hotness threshold is crossed. nil while cold or
// when b cannot root a trace.
func (v *VM) jitTrace(b *block) *trace {
	if b.trace != nil {
		return b.trace
	}
	if b.noTrace {
		return nil
	}
	b.hot++
	if b.hot < v.jitThreshold() {
		return nil
	}
	v.compileTrace(b)
	if b.trace == nil {
		b.noTrace = true
	}
	return b.trace
}

// compileTrace runs the two compiler phases for the trace rooted at b
// and installs the result on the block.
func (v *VM) compileTrace(b *block) {
	var start time.Time
	if v.tel != nil {
		start = time.Now()
	}
	info, aux := v.analyzeTrace(b)
	if info == nil {
		return
	}
	t := v.emitTrace(info, aux)
	if t == nil {
		return
	}
	b.trace = t
	v.traces = append(v.traces, t)
	v.Flight.Record(obs.EvJITCompile, 0, t.entryPC, uint64(len(t.steps)))
	if v.tel != nil {
		v.tel.jitCompiles.Inc()
		v.tel.jitCompileNS.Observe(uint64(time.Since(start).Nanoseconds()))
	}
}

// noteBudgetDeopt attributes one budget-guard refusal (or loop-exit
// curtailment): the trace was hot but the remaining cycle budget could
// not absorb a worst-case iteration, so the interpreter runs the block
// to make the abort land on the exact instruction.
func (v *VM) noteBudgetDeopt(t *trace) {
	t.deopts[DeoptBudget]++
	if v.tel != nil {
		v.tel.jitDeopts.Inc()
		v.tel.jitDeoptBy[DeoptBudget].Inc()
	}
	v.Flight.Record(obs.EvDeopt, uint8(DeoptBudget), v.RIP, t.entryPC)
}

// runTrace executes t until control leaves it. It returns (nil, nil)
// when entry is refused — the remaining cycle budget cannot absorb a
// worst-case iteration, or the overhead configuration changed — in which
// case no state was touched and the caller interprets the block. On an
// exit it returns the exit record with the VM state fully materialized;
// err carries the fault of an ExitFault.
func (v *VM) runTrace(t *trace) (*traceExit, error) {
	if v.PerInstOverhead != t.overhead {
		return nil, nil // costs were compiled for a different overhead
	}
	if v.MaxCycles != 0 && (v.Cycles > v.MaxCycles || v.MaxCycles-v.Cycles < t.maxCost) {
		v.noteBudgetDeopt(t)
		return nil, nil // budget too tight: abort must fire at the exact inst
	}
	v.Flight.Record(obs.EvTraceEnter, 0, t.entryPC, 0)
	j := &t.ctx
	for {
		t.entries++
		if v.tel != nil {
			v.tel.jitEnters.Inc()
		}
		j.flags = v.Flags
		j.err = nil
		var id int
		for _, s := range t.steps {
			if id = s(j); id != 0 {
				break
			}
		}
		e := &t.exits[id-1]
		// The single spill: deferred flags, RIP, retired count and the
		// statically-known cycle total materialize here. Dynamic cycles
		// (check costs) were already charged by their closures.
		v.Flags = j.flags
		if e.dynamic {
			v.RIP = j.dynRIP
		} else {
			v.RIP = e.rip
		}
		v.Cycles += e.cycles
		v.Insts += e.retired
		if e.deopt {
			t.deopts[e.reason]++
			v.Flight.Record(obs.EvDeopt, uint8(e.reason), v.RIP, t.entryPC)
		}
		if v.tel != nil {
			v.applyTraceTel(t, e)
		}
		if j.err != nil {
			return e, j.err
		}
		if e.kind != ExitLoop {
			return e, nil
		}
		// Back edge: state is fully materialized at the loop boundary,
		// so re-check the budget guard before the next iteration.
		if v.MaxCycles != 0 && v.MaxCycles-v.Cycles < t.maxCost {
			v.noteBudgetDeopt(t)
			return e, nil
		}
	}
}

// applyTraceTel replays the telemetry the interpreter would have
// recorded along e's path: the precomputed aggregate for terminal exits,
// or a per-step replay (plus the exiting step's partial delta) for side
// and fault exits.
func (v *VM) applyTraceTel(t *trace, e *traceExit) {
	tel := v.tel
	tel.retiredAll.Add(e.retired)
	tel.jitInsts.Add(e.retired)
	if e.deopt {
		tel.jitDeopts.Inc()
		tel.jitDeoptBy[e.reason].Inc()
	}
	if b := e.batch; b != nil {
		for i := range b.ops {
			tel.retired[b.ops[i].op].Add(b.ops[i].n)
		}
		tel.loads.Add(b.loads)
		tel.stores.Add(b.stores)
		tel.branches.Add(b.branches)
		tel.patchHits.Add(b.patch)
		return
	}
	for i := 0; i < e.step; i++ {
		v.applyStepTel(&t.meta[i])
	}
	v.applyStepTel(&e.self)
}

// applyStepTel applies one step's counter deltas.
func (v *VM) applyStepTel(m *stepTel) {
	tel := v.tel
	tel.retired[m.op].Inc()
	if m.loads != 0 {
		tel.loads.Add(uint64(m.loads))
	}
	if m.stores != 0 {
		tel.stores.Add(uint64(m.stores))
	}
	if m.branches != 0 {
		tel.branches.Add(uint64(m.branches))
	}
	if m.patch != 0 {
		tel.patchHits.Add(uint64(m.patch))
	}
}
