package vm_test

import (
	"errors"
	"reflect"
	"testing"

	"redfat/internal/asm"
	"redfat/internal/heap"
	"redfat/internal/isa"
	"redfat/internal/mem"
	"redfat/internal/obs"
	core "redfat/internal/redfat"
	"redfat/internal/relf"
	"redfat/internal/rtlib"
	"redfat/internal/telemetry"
	"redfat/internal/vm"
)

// deoptReasonNames enumerates the telemetry series the reason split
// registers, in enum order.
func deoptReasonNames() []string {
	names := make([]string, 0, vm.NumDeoptReasons)
	for r := vm.DeoptReason(0); int(r) < vm.NumDeoptReasons; r++ {
		names = append(names, "vm.jit.deopt."+r.String()+".count")
	}
	return names
}

// checkDeoptAccounting asserts the split is internally consistent: the
// aggregate equals the sum of the per-reason counters, and both equal
// the per-trace histograms TraceStats reports.
func checkDeoptAccounting(t *testing.T, label string, v *vm.VM, snap *telemetry.Snapshot) {
	t.Helper()
	var byReason uint64
	for _, name := range deoptReasonNames() {
		byReason += snap.Counters[name]
	}
	if agg := snap.Counters["vm.jit.deopt.count"]; agg != byReason {
		t.Errorf("%s: aggregate deopts %d != per-reason sum %d", label, agg, byReason)
	}
	var byTrace uint64
	for _, st := range v.TraceStats() {
		for _, n := range st.Deopts {
			byTrace += n
		}
	}
	if byTrace != byReason {
		t.Errorf("%s: per-trace deopts %d != per-reason counters %d", label, byTrace, byReason)
	}
}

// buildHaltTrace is a straight-line program whose RET pops the exit
// sentinel from inside the compiled trace (threshold 1 compiles on the
// first dispatch).
func buildHaltTrace(t *testing.T) *relf.Binary {
	t.Helper()
	b := asm.NewBuilder(asm.Options{})
	b.Func("main")
	b.MovRI(isa.RAX, 5)
	b.AluRI(isa.ADD, isa.RAX, 2)
	b.AluRI(isa.SUB, isa.RAX, 3)
	b.Ret()
	bin, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return bin
}

// buildDivFault is the division-fault loop from TestJITDivFaultIdentity:
// the divisor hits zero on iteration 40, well after the loop compiled.
func buildDivFault(t *testing.T) *relf.Binary {
	t.Helper()
	b := asm.NewBuilder(asm.Options{})
	b.Func("main")
	b.MovRI(isa.RAX, 1000)
	b.MovRI(isa.RBX, 0)
	b.MovRI(isa.RCX, 40)
	b.Label("loop")
	b.AluRI(isa.ADD, isa.RBX, 1)
	b.MovRR(isa.RDI, isa.RCX)
	b.Emit(isa.Inst{Op: isa.UDIV, Form: isa.FR, Reg: isa.RDI})
	b.AluRI(isa.SUB, isa.RCX, 1)
	b.AluRI(isa.CMP, isa.RBX, 100)
	b.Jcc(isa.JL, "loop")
	b.Ret()
	bin, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return bin
}

// buildOverflowLoop walks a store pointer off the end of a 40-byte heap
// object: iterations 0-4 are in bounds, the later ones cross into the
// redzone, so a hardened run aborts from the fused check after the loop
// has been running compiled.
func buildOverflowLoop(t *testing.T) *relf.Binary {
	t.Helper()
	b := asm.NewBuilder(asm.Options{})
	b.Func("main")
	b.MovRI(isa.RDI, 40)
	b.CallImport("malloc")
	b.MovRR(isa.RBX, isa.RAX)
	b.MovRI(isa.RCX, 0)
	b.Label("loop")
	b.StoreI(isa.RBX, 0, 0x41, 8)
	b.AluRI(isa.ADD, isa.RBX, 8)
	b.AluRI(isa.ADD, isa.RCX, 1)
	b.AluRI(isa.CMP, isa.RCX, 12)
	b.Jcc(isa.JL, "loop")
	b.MovRI(isa.RAX, 0)
	b.Ret()
	bin, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return bin
}

// hardenedRun executes a hardened binary under the superblock tier with
// telemetry (and optionally a flight recorder) attached.
func hardenedRun(t *testing.T, hard *relf.Binary, flight *obs.Flight) (*vm.VM, *telemetry.Snapshot, error) {
	t.Helper()
	reg := telemetry.New()
	v, _, err := rtlib.RunHardened(hard, rtlib.RunConfig{
		Abort: true, JITThreshold: 2, MaxCycles: 1_000_000,
		Metrics: reg, Flight: flight,
	})
	return v, reg.Snapshot(), err
}

// TestJITDeoptReasons exercises every deopt-reason bucket and checks the
// attribution arithmetic: side and dyn from the alternating workload,
// halt from a sentinel RET inside a trace, fault from a division fault,
// budget from the cycle-budget guard, and trap from an aborting fused
// check in a hardened run.
func TestJITDeoptReasons(t *testing.T) {
	exercised := map[string]bool{}
	note := func(snap *telemetry.Snapshot) {
		for _, r := range []vm.DeoptReason{vm.DeoptSide, vm.DeoptDyn, vm.DeoptHalt,
			vm.DeoptFault, vm.DeoptTrap, vm.DeoptBudget} {
			if snap.Counters["vm.jit.deopt."+r.String()+".count"] > 0 {
				exercised[r.String()] = true
			}
		}
	}

	// side + dyn: the alternating conditional and the retargeting
	// indirect jump of the trace-shape workload.
	v, snap, err := jitRun(t, buildJIT(t), false, false, 2, 100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Counters["vm.jit.deopt.side.count"] == 0 {
		t.Error("alternating branch produced no side deopts")
	}
	if snap.Counters["vm.jit.deopt.dyn.count"] == 0 {
		t.Error("retargeting indirect jump produced no dyn deopts")
	}
	checkDeoptAccounting(t, "side/dyn", v, snap)
	note(snap)

	// halt: threshold 1 compiles the straight line on first dispatch, so
	// the program ends by popping the sentinel inside the trace.
	v, snap, err = jitRun(t, buildHaltTrace(t), false, false, 1, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if v.ExitCode != 4 {
		t.Fatalf("halt workload exit = %d, want 4", v.ExitCode)
	}
	if snap.Counters["vm.jit.compile.count"] == 0 {
		t.Fatal("halt workload never compiled; the halt path is unexercised")
	}
	if snap.Counters["vm.jit.deopt.halt.count"] == 0 {
		t.Error("sentinel RET inside a trace produced no halt deopt")
	}
	checkDeoptAccounting(t, "halt", v, snap)
	note(snap)

	// fault: the division fault fires on iteration 40 of a compiled loop.
	v, snap, err = jitRun(t, buildDivFault(t), false, false, 2, 1_000_000)
	if err == nil {
		t.Fatal("division workload did not fault")
	}
	if snap.Counters["vm.jit.deopt.fault.count"] == 0 {
		t.Error("in-trace division fault produced no fault deopt")
	}
	checkDeoptAccounting(t, "fault", v, snap)
	note(snap)

	// budget: a budget the loop outlives forces the entry guard (or the
	// back-edge guard) to hand the block back to the interpreter.
	v, snap, err = jitRun(t, buildJIT(t), false, false, 2, 4096)
	var cle *vm.CycleLimitError
	if !errors.As(err, &cle) {
		t.Fatalf("budget workload: %v, want cycle-limit abort", err)
	}
	if snap.Counters["vm.jit.deopt.budget.count"] == 0 {
		t.Error("budget abort produced no budget deopt")
	}
	checkDeoptAccounting(t, "budget", v, snap)
	note(snap)

	// trap: the fused check aborts mid-loop in a hardened run.
	hard, _, err := core.Harden(buildOverflowLoop(t), core.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	v, snap, err = hardenedRun(t, hard, nil)
	var me *vm.MemError
	if !errors.As(err, &me) {
		t.Fatalf("hardened overflow loop: %v, want detection", err)
	}
	if snap.Counters["vm.jit.compile.count"] == 0 {
		t.Fatal("hardened loop never compiled; the trap path is unexercised")
	}
	if snap.Counters["vm.jit.deopt.trap.count"] == 0 {
		t.Error("aborting fused check produced no trap deopt")
	}
	checkDeoptAccounting(t, "trap", v, snap)
	note(snap)

	for _, r := range []string{"side", "dyn", "halt", "fault", "trap", "budget"} {
		if !exercised[r] {
			t.Errorf("deopt reason %q never exercised across the suite", r)
		}
	}
}

// flightRun is jitRun plus an optional flight recorder on both the VM
// and its guest memory.
func flightRun(t *testing.T, bin *relf.Binary, flight *obs.Flight, maxCycles uint64) (*vm.VM, *telemetry.Snapshot, error) {
	t.Helper()
	m := mem.New()
	v := vm.New(m)
	v.MaxCycles = maxCycles
	v.JITThreshold = 2
	v.Flight = flight
	m.Flight = flight
	reg := telemetry.New()
	v.AttachTelemetry(reg, nil)
	if err := v.Load(bin, rtlib.LibC(heap.New(m), m)); err != nil {
		t.Fatalf("load: %v", err)
	}
	err := v.Run()
	return v, reg.Snapshot(), err
}

// TestFlightIdentityMatrix proves the flight recorder is a pure
// observer: across clean, budget-aborting, faulting and hardened
// detection runs, attaching a recorder leaves guest cycles, retirement,
// exit state, detections and the whole (host-time-stripped) telemetry
// snapshot bit-identical — while the ring actually records events.
func TestFlightIdentityMatrix(t *testing.T) {
	type runner func(t *testing.T, flight *obs.Flight) (*vm.VM, *telemetry.Snapshot, error)
	hard, _, err := core.Harden(buildOverflowLoop(t), core.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		run  runner
	}{
		{"clean-jit", func(t *testing.T, f *obs.Flight) (*vm.VM, *telemetry.Snapshot, error) {
			return flightRun(t, buildJIT(t), f, 100_000_000)
		}},
		{"budget-abort", func(t *testing.T, f *obs.Flight) (*vm.VM, *telemetry.Snapshot, error) {
			return flightRun(t, buildJIT(t), f, 4096)
		}},
		{"div-fault", func(t *testing.T, f *obs.Flight) (*vm.VM, *telemetry.Snapshot, error) {
			return flightRun(t, buildDivFault(t), f, 1_000_000)
		}},
		{"hardened-detect", func(t *testing.T, f *obs.Flight) (*vm.VM, *telemetry.Snapshot, error) {
			return hardenedRun(t, hard, f)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			flight := obs.NewFlight(256)
			on, onSnap, onErr := tc.run(t, flight)
			off, offSnap, offErr := tc.run(t, nil)
			if (onErr == nil) != (offErr == nil) ||
				(onErr != nil && onErr.Error() != offErr.Error()) {
				t.Fatalf("error divergence: flight-on %v, flight-off %v", onErr, offErr)
			}
			if on.ExitCode != off.ExitCode || on.Cycles != off.Cycles ||
				on.Insts != off.Insts || on.RIP != off.RIP {
				t.Errorf("state divergence: exit %d/%d cycles %d/%d insts %d/%d rip %#x/%#x",
					on.ExitCode, off.ExitCode, on.Cycles, off.Cycles,
					on.Insts, off.Insts, on.RIP, off.RIP)
			}
			if !reflect.DeepEqual(on.Errors, off.Errors) {
				t.Errorf("detection divergence: flight-on %v, flight-off %v", on.Errors, off.Errors)
			}
			if !reflect.DeepEqual(on.TraceStats(), off.TraceStats()) {
				t.Errorf("trace-table divergence:\non:  %+v\noff: %+v", on.TraceStats(), off.TraceStats())
			}
			if !reflect.DeepEqual(onSnap.StripHostTime(), offSnap.StripHostTime()) {
				t.Errorf("telemetry divergence:\non:  %+v\noff: %+v", onSnap, offSnap)
			}
			if flight.Total() == 0 {
				t.Error("flight recorded nothing; the identity claim is vacuous")
			}
			// Determinism of the ring itself: a third run with a fresh
			// recorder must dump byte-identical events.
			flight2 := obs.NewFlight(256)
			tc.run(t, flight2)
			if !reflect.DeepEqual(flight.Dump(), flight2.Dump()) {
				t.Error("two identical runs dumped different flight rings")
			}
		})
	}
}
