package vm

import (
	"fmt"

	"redfat/internal/mem"
	"redfat/internal/relf"
)

// Dynamic linking support (paper §7.4): RELF shared objects can be loaded
// alongside the main executable, and each module — executable or library —
// can be instrumented by RedFat *separately*. Only explicitly instrumented
// modules enjoy protection at runtime, exactly the property the paper
// describes for main programs vs library dependencies.
//
// Cross-module calls work through the import mechanism: an import that no
// host binding satisfies is resolved against the exported function symbols
// of previously loaded libraries, and the RTCALL becomes a guest-to-guest
// call (the PLT model).

// moduleEntry records one loaded module's address range and bindings.
type moduleEntry struct {
	lo, hi uint64
	host   []HostFunc
	bin    *relf.Binary
}

// GuestFunc returns a host function that transfers control to guest code
// at addr, exactly like a resolved PLT entry: the return address is the
// instruction after the RTCALL, and the callee's RET resumes there.
func (v *VM) GuestFunc(addr uint64) HostFunc {
	return func(v *VM, _ uint32) error {
		v.Cycles += CostCall
		if err := v.push(v.RIP); err != nil {
			return err
		}
		v.branchTo(addr)
		return nil
	}
}

// mapSections maps a binary's sections into memory.
func (v *VM) mapSections(bin *relf.Binary) error {
	if err := bin.CheckOverlaps(); err != nil {
		return err
	}
	for _, s := range bin.Sections {
		if s.Kind == relf.SecMeta || s.Size == 0 {
			continue
		}
		perm := mem.PermRead
		if s.Write {
			perm |= mem.PermWrite
		}
		if s.Exec {
			perm |= mem.PermExec
		}
		v.Mem.Map(s.Addr, s.Size, perm)
		if len(s.Data) > 0 {
			v.Mem.Protect(s.Addr, s.Size, perm|mem.PermWrite)
			if err := v.Mem.WriteAt(s.Addr, s.Data); err != nil {
				return fmt.Errorf("vm: loading %q: %w", s.Name, err)
			}
			v.Mem.Protect(s.Addr, s.Size, perm)
		}
	}
	return nil
}

// bindImports resolves a module's import table against host bindings
// first, then against guest exports of already-loaded libraries.
func (v *VM) bindImports(bin *relf.Binary, env Bindings) ([]HostFunc, error) {
	funcs := make([]HostFunc, len(bin.Imports))
	for i, name := range bin.Imports {
		if fn, ok := env[name]; ok {
			funcs[i] = fn
			continue
		}
		if addr, ok := v.exports[name]; ok {
			funcs[i] = v.GuestFunc(addr)
			continue
		}
		return nil, fmt.Errorf("vm: unresolved import %q", name)
	}
	return funcs, nil
}

// registerModule records a module's range and merges its patch table.
func (v *VM) registerModule(bin *relf.Binary, host []HostFunc) error {
	lo := ^uint64(0)
	var hi uint64
	for _, s := range bin.Sections {
		if s.Kind == relf.SecMeta {
			continue
		}
		if s.Addr < lo {
			lo = s.Addr
		}
		if s.End() > hi {
			hi = s.End()
		}
	}
	v.modules = append(v.modules, moduleEntry{lo: lo, hi: hi, host: host, bin: bin})
	v.modCache = nil
	if ps := bin.Section(relf.PatchTableSection); ps != nil {
		pt, err := relf.DecodePatchTable(ps.Data)
		if err != nil {
			return err
		}
		if v.PatchTable == nil {
			v.PatchTable = make(map[uint64]uint64, len(pt))
		}
		for from, to := range pt {
			v.PatchTable[from] = to
		}
	}
	return nil
}

// LoadLibrary maps a RELF shared object and registers its exported
// function symbols for subsequent import resolution. Libraries must be
// placed (rebased) at non-conflicting addresses *before* being hardened,
// so that instrumentation metadata needs no relocation — mirroring how
// RedFat instruments a DSO on disk for its load address.
func (v *VM) LoadLibrary(bin *relf.Binary, env Bindings) error {
	if err := v.mapSections(bin); err != nil {
		return err
	}
	host, err := v.bindImports(bin, env)
	if err != nil {
		return err
	}
	if err := v.registerModule(bin, host); err != nil {
		return err
	}
	if v.exports == nil {
		v.exports = make(map[string]uint64)
	}
	for _, s := range bin.Symbols {
		if s.Func {
			v.exports[s.Name] = s.Addr
		}
	}
	return nil
}

// ModuleBinary returns the binary of the module containing pc, falling
// back to the main executable. The runtime layer uses it to resolve
// which site table an RTCALL at pc indexes when building JIT check
// plans (per-DSO import tables, like moduleFor for bindings).
func (v *VM) ModuleBinary(pc uint64) *relf.Binary {
	for i := range v.modules {
		m := &v.modules[i]
		if pc >= m.lo && pc < m.hi {
			return m.bin
		}
	}
	return v.binary
}

// moduleFor returns the bindings of the module containing pc, falling
// back to the main executable's bindings.
func (v *VM) moduleFor(pc uint64) []HostFunc {
	if m := v.modCache; m != nil && pc >= m.lo && pc < m.hi {
		return m.host
	}
	for i := range v.modules {
		m := &v.modules[i]
		if pc >= m.lo && pc < m.hi {
			v.modCache = m
			return m.host
		}
	}
	return v.hostFuncs
}
