package vm_test

import (
	"errors"
	"testing"

	"redfat/internal/asm"
	"redfat/internal/heap"
	"redfat/internal/isa"
	"redfat/internal/mem"
	"redfat/internal/relf"
	"redfat/internal/rtlib"
	"redfat/internal/telemetry"
	"redfat/internal/vm"
)

// jitProgram builds a workload exercising every trace shape the
// superblock tier handles: a hot counted loop (the compiled back edge),
// an alternating conditional inside it (side exits in both directions),
// memory traffic through the stack and a global, calls/returns, shifts
// and flag consumers, and an indirect jump whose target alternates (a
// dynamic exit that retargets every iteration).
func jitProgram(b *asm.Builder) {
	b.Func("main")
	b.GlobalU64("acc", 0)
	b.MovRI(isa.RAX, 0)
	b.MovRI(isa.RBX, 0)
	b.MovRI(isa.RCX, 0)
	b.Label("loop")
	b.AluRI(isa.CMP, isa.RCX, 0)
	b.Jcc(isa.JE, "even") // alternates: side exit on both predictions
	b.LoadAddr(isa.RDX, "odd", 0)
	b.Jmp("dispatch")
	b.Label("even")
	b.LoadAddr(isa.RDX, "evenbody", 0)
	b.Label("dispatch")
	b.Emit(isa.Inst{Op: isa.JMP, Form: isa.FR, Reg: isa.RDX})
	b.Label("odd")
	b.AluRI(isa.ADD, isa.RAX, 3)
	b.Jmp("join")
	b.Label("evenbody")
	b.AluRI(isa.ADD, isa.RAX, 1)
	b.Label("join")
	b.Push(isa.RAX)
	b.Pop(isa.RDX)
	b.LoadGlobal(isa.RSI, "acc", 0, 8)
	b.AluRR(isa.ADD, isa.RSI, isa.RDX)
	b.StoreGlobal("acc", 0, isa.RSI, 8)
	b.Call("twiddle")
	b.AluRI(isa.XOR, isa.RCX, 1)
	b.AluRI(isa.ADD, isa.RBX, 1)
	b.AluRI(isa.CMP, isa.RBX, 400)
	b.Jcc(isa.JL, "loop")
	b.Ret()

	b.Func("twiddle")
	b.MovRR(isa.RDI, isa.RAX)
	b.Shift(isa.SHL, isa.RDI, 3)
	b.Shift(isa.SHR, isa.RDI, 3)
	b.Emit(isa.Inst{Op: isa.NEG, Form: isa.FR, Reg: isa.RDI})
	b.Emit(isa.Inst{Op: isa.NEG, Form: isa.FR, Reg: isa.RDI})
	b.Ret()
}

// buildJIT assembles jitProgram once per test.
func buildJIT(t *testing.T) *relf.Binary {
	t.Helper()
	b := asm.NewBuilder(asm.Options{})
	jitProgram(b)
	bin, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return bin
}

// jitRun executes bin under the given tier knobs and returns the VM, its
// telemetry snapshot, and the run error.
func jitRun(t *testing.T, bin *relf.Binary, noJIT, noChain bool, threshold, maxCycles uint64) (*vm.VM, *telemetry.Snapshot, error) {
	t.Helper()
	m := mem.New()
	v := vm.New(m)
	v.MaxCycles = maxCycles
	v.NoJIT = noJIT
	v.NoChain = noChain
	v.JITThreshold = threshold
	reg := telemetry.New()
	v.AttachTelemetry(reg, nil)
	if err := v.Load(bin, rtlib.LibC(heap.New(m), m)); err != nil {
		t.Fatalf("load: %v", err)
	}
	err := v.Run()
	return v, reg.Snapshot(), err
}

// stripJITHost removes the host-side tier metrics (and the icache
// counters chaining perturbs) so the remaining guest-derived telemetry
// can be compared across knob settings.
func stripJITHost(s *telemetry.Snapshot) *telemetry.Snapshot {
	for name := range s.Counters {
		if hasJITPrefix(name) {
			delete(s.Counters, name)
		}
	}
	for name := range s.Gauges {
		if hasJITPrefix(name) {
			delete(s.Gauges, name)
		}
	}
	for name := range s.Histograms {
		if hasJITPrefix(name) {
			delete(s.Histograms, name)
		}
	}
	return s
}

func hasJITPrefix(name string) bool {
	return len(name) >= 7 && name[:7] == "vm.jit." ||
		len(name) >= 10 && name[:10] == "vm.icache."
}

// TestJITIdentity runs the trace-shape workload hot enough to compile
// and checks every guest-visible quantity is bit-identical with the tier
// on and off, while the tier telemetry proves real activity: traces
// compiled, entered, instructions retired in compiled code, and deopts
// from the alternating side exits.
func TestJITIdentity(t *testing.T) {
	bin := buildJIT(t)
	jit, jitTel, jitErr := jitRun(t, bin, false, false, 4, 100_000_000)
	ref, refTel, refErr := jitRun(t, bin, true, false, 4, 100_000_000)
	if (jitErr == nil) != (refErr == nil) {
		t.Fatalf("error divergence: jit %v, nojit %v", jitErr, refErr)
	}
	if jit.ExitCode != ref.ExitCode || jit.Cycles != ref.Cycles || jit.Insts != ref.Insts {
		t.Fatalf("jit/nojit divergence: exit %d/%d cycles %d/%d insts %d/%d",
			jit.ExitCode, ref.ExitCode, jit.Cycles, ref.Cycles, jit.Insts, ref.Insts)
	}
	// 200 even + 200 odd iterations: 200*1 + 200*3 (mod 2^7 guest mask
	// is not applied at the VM layer; ExitCode is the raw RAX).
	if jit.ExitCode != 800 {
		t.Fatalf("exit = %d, want 800", jit.ExitCode)
	}
	if n := jitTel.Counters["vm.jit.compile.count"]; n == 0 {
		t.Error("no traces compiled on a hot loop")
	}
	if n := jitTel.Counters["vm.jit.enter.count"]; n == 0 {
		t.Error("no trace entries recorded")
	}
	if n := jitTel.Counters["vm.jit.exec.insts"]; n == 0 {
		t.Error("no instructions retired in compiled code")
	}
	if n := jitTel.Counters["vm.jit.deopt.count"]; n == 0 {
		t.Error("alternating branch produced no deopts")
	}
	if len(jit.CompiledTraces()) == 0 {
		t.Error("CompiledTraces is empty after compilation")
	}
	if n := refTel.Counters["vm.jit.compile.count"]; n != 0 {
		t.Errorf("NoJIT run compiled %d traces", n)
	}
	// Guest-derived telemetry (retired per-op, loads/stores/branches,
	// rtcall costs) must match exactly once host-side metrics are gone.
	a, b := stripJITHost(jitTel), stripJITHost(refTel)
	for name, av := range a.Counters {
		if bv := b.Counters[name]; av != bv {
			t.Errorf("counter %s: jit %d, nojit %d", name, av, bv)
		}
	}
	for name, bv := range b.Counters {
		if _, ok := a.Counters[name]; !ok && bv != 0 {
			t.Errorf("counter %s only in nojit run (%d)", name, bv)
		}
	}
}

// TestJITNoChainDisablesTraces pins the NoChain contract: traces are
// built over chained successor links, so -nochain must disable trace
// formation entirely, not just chaining (the knob ablates both layers).
func TestJITNoChainDisablesTraces(t *testing.T) {
	bin := buildJIT(t)
	v, tel, err := jitRun(t, bin, false, true, 1, 100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if n := tel.Counters["vm.jit.compile.count"]; n != 0 {
		t.Errorf("NoChain run compiled %d traces; chaining off must imply tier off", n)
	}
	if n := len(v.CompiledTraces()); n != 0 {
		t.Errorf("NoChain run retained %d compiled traces", n)
	}
	ref, _, _ := jitRun(t, bin, true, true, 1, 100_000_000)
	if v.Cycles != ref.Cycles || v.ExitCode != ref.ExitCode {
		t.Errorf("NoChain jit/nojit divergence: cycles %d/%d exit %d/%d",
			v.Cycles, ref.Cycles, v.ExitCode, ref.ExitCode)
	}
}

// TestJITThreshold checks the hotness knob: a threshold above the
// workload's iteration count must keep everything interpreted, and the
// lowest threshold must compile the loop.
func TestJITThreshold(t *testing.T) {
	bin := buildJIT(t)
	_, cold, err := jitRun(t, bin, false, false, 1<<20, 100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if n := cold.Counters["vm.jit.compile.count"]; n != 0 {
		t.Errorf("threshold 1<<20 still compiled %d traces", n)
	}
	_, hot, err := jitRun(t, bin, false, false, 1, 100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if n := hot.Counters["vm.jit.compile.count"]; n == 0 {
		t.Error("threshold 1 compiled nothing")
	}
}

// TestJITBudgetAbortIdentity sweeps cycle budgets across trace
// boundaries and mid-trace points: the abort must fire at the exact
// cycle count and instruction the interpreter aborts at, which the tier
// guarantees by refusing trace entry when the worst-case iteration
// exceeds the remaining budget.
func TestJITBudgetAbortIdentity(t *testing.T) {
	bin := buildJIT(t)
	aborted := 0
	for _, budget := range []uint64{50, 101, 777, 1001, 4096, 54321} {
		jit, _, jitErr := jitRun(t, bin, false, false, 2, budget)
		ref, _, refErr := jitRun(t, bin, true, false, 2, budget)
		var jl, rl *vm.CycleLimitError
		if errors.As(refErr, &rl) {
			aborted++
			if !errors.As(jitErr, &jl) {
				t.Fatalf("budget %d: interpreter aborted, jit did not: %v", budget, jitErr)
			}
			if jl.Cycles != rl.Cycles {
				t.Errorf("budget %d: abort cycle differs: jit %d, nojit %d", budget, jl.Cycles, rl.Cycles)
			}
		} else if jitErr != nil {
			t.Fatalf("budget %d: jit errored where interpreter completed: %v", budget, jitErr)
		}
		if jit.Cycles != ref.Cycles || jit.Insts != ref.Insts || jit.RIP != ref.RIP {
			t.Errorf("budget %d: abort state differs: cycles %d/%d insts %d/%d rip %#x/%#x",
				budget, jit.Cycles, ref.Cycles, jit.Insts, ref.Insts, jit.RIP, ref.RIP)
		}
	}
	if aborted == 0 {
		t.Fatal("no budget in the sweep aborted; the abort path is unexercised")
	}
}

// TestJITFlushICache rewrites hot compiled code in place: FlushICache
// must drop the trace with the block generation so re-execution decodes
// and recompiles the new code instead of running the stale superblock.
func TestJITFlushICache(t *testing.T) {
	b := asm.NewBuilder(asm.Options{})
	b.Func("main")
	b.MovRI(isa.RAX, 0)
	b.MovRI(isa.RBX, 0)
	b.Label("loop")
	b.AluRI(isa.ADD, isa.RAX, 7)
	b.AluRI(isa.ADD, isa.RBX, 1)
	b.AluRI(isa.CMP, isa.RBX, 100)
	b.Jcc(isa.JL, "loop")
	b.Ret()
	bin, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New()
	v := vm.New(m)
	v.MaxCycles = 1_000_000
	v.JITThreshold = 2
	if err := v.Load(bin, rtlib.LibC(heap.New(m), m)); err != nil {
		t.Fatal(err)
	}
	entry := v.RIP
	if err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if v.ExitCode != 700 {
		t.Fatalf("first run exit = %d, want 700", v.ExitCode)
	}
	if len(v.CompiledTraces()) == 0 {
		t.Fatal("hot loop did not compile; the flush path is unexercised")
	}

	// Patch the ADD immediate 7 → 9 in place and flush.
	text := bin.Section(".text")
	m.Protect(text.Addr, uint64(len(text.Data)), mem.PermRW)
	var buf [64]byte
	if err := m.ReadAt(entry, buf[:]); err != nil {
		t.Fatal(err)
	}
	patched := false
	for i := range buf {
		if buf[i] == 7 {
			if err := m.Store(entry+uint64(i), 1, 9); err != nil {
				t.Fatal(err)
			}
			patched = true
			break
		}
	}
	if !patched {
		t.Fatal("could not locate immediate to patch")
	}
	m.Protect(text.Addr, uint64(len(text.Data)), mem.PermRX)
	v.FlushICache()
	if len(v.CompiledTraces()) != 0 {
		t.Fatal("FlushICache retained compiled traces")
	}

	v.Halted = false
	v.RIP = entry
	v.Regs[isa.RSP] = relf.DefaultStackTop - 64
	if err := v.Mem.Store(v.Regs[isa.RSP]-8, 8, vm.ExitSentinel); err != nil {
		t.Fatal(err)
	}
	v.Regs[isa.RSP] -= 8
	if err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if v.ExitCode != 900 {
		t.Fatalf("post-flush exit = %d, want 900 (stale superblock executed)", v.ExitCode)
	}
	if len(v.CompiledTraces()) == 0 {
		t.Error("patched loop did not recompile after the flush")
	}
}

// TestJITDivFaultIdentity checks that a division fault inside a hot
// compiled loop carries the exact interpreter error text and machine
// state (cycles are charged before the fault, RIP points at the DIV).
func TestJITDivFaultIdentity(t *testing.T) {
	b := asm.NewBuilder(asm.Options{})
	b.Func("main")
	b.MovRI(isa.RAX, 1000)
	b.MovRI(isa.RBX, 0)
	b.MovRI(isa.RCX, 40) // countdown: divisor hits zero on iteration 40
	b.Label("loop")
	b.AluRI(isa.ADD, isa.RBX, 1)
	b.MovRR(isa.RDI, isa.RCX)
	b.Emit(isa.Inst{Op: isa.UDIV, Form: isa.FR, Reg: isa.RDI})
	b.AluRI(isa.SUB, isa.RCX, 1)
	b.AluRI(isa.CMP, isa.RBX, 100)
	b.Jcc(isa.JL, "loop")
	b.Ret()
	bin, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	jit, _, jitErr := jitRun(t, bin, false, false, 2, 1_000_000)
	ref, _, refErr := jitRun(t, bin, true, false, 2, 1_000_000)
	if jitErr == nil || refErr == nil {
		t.Fatalf("expected division fault, got jit %v, nojit %v", jitErr, refErr)
	}
	if jitErr.Error() != refErr.Error() {
		t.Errorf("fault text differs:\njit:   %v\nnojit: %v", jitErr, refErr)
	}
	if jit.Cycles != ref.Cycles || jit.Insts != ref.Insts || jit.RIP != ref.RIP {
		t.Errorf("fault state differs: cycles %d/%d insts %d/%d rip %#x/%#x",
			jit.Cycles, ref.Cycles, jit.Insts, ref.Insts, jit.RIP, ref.RIP)
	}
}
