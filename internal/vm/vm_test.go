package vm_test

import (
	"testing"

	"redfat/internal/asm"
	"redfat/internal/heap"
	"redfat/internal/isa"
	"redfat/internal/mem"
	"redfat/internal/relf"
	"redfat/internal/rtlib"
	"redfat/internal/vm"
)

// run assembles, loads and runs a program built by build, returning the VM.
func run(t *testing.T, build func(b *asm.Builder), input ...uint64) *vm.VM {
	t.Helper()
	b := asm.NewBuilder(asm.Options{})
	build(b)
	bin, err := b.Build()
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return runBin(t, bin, input...)
}

func runBin(t *testing.T, bin *relf.Binary, input ...uint64) *vm.VM {
	t.Helper()
	m := mem.New()
	v := vm.New(m)
	v.Input = input
	v.MaxCycles = 100_000_000
	env := rtlib.LibC(heap.New(m), m)
	if err := v.Load(bin, env); err != nil {
		t.Fatalf("load: %v", err)
	}
	if err := v.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return v
}

func TestArithmetic(t *testing.T) {
	v := run(t, func(b *asm.Builder) {
		b.Func("main")
		b.MovRI(isa.RAX, 10)
		b.MovRI(isa.RBX, 32)
		b.AluRR(isa.ADD, isa.RAX, isa.RBX) // 42
		b.AluRI(isa.SUB, isa.RAX, 2)       // 40
		b.MovRI(isa.RCX, 3)
		b.Emit(isa.Inst{Op: isa.IMUL, Form: isa.FRR, Reg: isa.RAX, Reg2: isa.RCX, Size: 8}) // 120
		b.Shift(isa.SHR, isa.RAX, 1)                                                        // 60
		b.AluRI(isa.XOR, isa.RAX, 0xF)                                                      // 51
		b.Ret()
	})
	if v.ExitCode != 51 {
		t.Errorf("exit = %d, want 51", v.ExitCode)
	}
}

func TestLoop(t *testing.T) {
	// Sum 1..100 = 5050.
	v := run(t, func(b *asm.Builder) {
		b.Func("main")
		b.MovRI(isa.RAX, 0)
		b.MovRI(isa.RCX, 1)
		b.Label("loop")
		b.AluRR(isa.ADD, isa.RAX, isa.RCX)
		b.AluRI(isa.ADD, isa.RCX, 1)
		b.AluRI(isa.CMP, isa.RCX, 100)
		b.Jcc(isa.JLE, "loop")
		b.Ret()
	})
	if v.ExitCode != 5050 {
		t.Errorf("exit = %d, want 5050", v.ExitCode)
	}
	if v.Insts < 400 {
		t.Errorf("instruction count %d implausibly low", v.Insts)
	}
	if v.Cycles <= v.Insts {
		t.Error("cycles should exceed instruction count")
	}
}

func TestCallsAndStack(t *testing.T) {
	v := run(t, func(b *asm.Builder) {
		b.Func("main")
		b.MovRI(isa.RDI, 7)
		b.Call("double")
		b.Call("double")
		b.Ret() // returns RAX = 28
		b.Func("double")
		b.MovRR(isa.RAX, isa.RDI)
		b.AluRR(isa.ADD, isa.RAX, isa.RDI)
		b.MovRR(isa.RDI, isa.RAX)
		b.Ret()
	})
	if v.ExitCode != 28 {
		t.Errorf("exit = %d, want 28", v.ExitCode)
	}
}

func TestMemoryOperands(t *testing.T) {
	// Write an array via base+index*scale, then sum it.
	v := run(t, func(b *asm.Builder) {
		b.Zero("arr", 80)
		b.Func("main")
		b.LoadAddr(isa.RBX, "arr", 0)
		b.MovRI(isa.RCX, 0)
		b.Label("fill")
		b.StoreM(asm.MemBID(isa.RBX, isa.RCX, 8, 0), isa.RCX, 8)
		b.AluRI(isa.ADD, isa.RCX, 1)
		b.AluRI(isa.CMP, isa.RCX, 10)
		b.Jcc(isa.JL, "fill")
		b.MovRI(isa.RAX, 0)
		b.MovRI(isa.RCX, 0)
		b.Label("sum")
		b.AluRM(isa.ADD, isa.RAX, asm.MemBID(isa.RBX, isa.RCX, 8, 0), 8)
		b.AluRI(isa.ADD, isa.RCX, 1)
		b.AluRI(isa.CMP, isa.RCX, 10)
		b.Jcc(isa.JL, "sum")
		b.Ret()
	})
	if v.ExitCode != 45 {
		t.Errorf("exit = %d, want 45", v.ExitCode)
	}
}

func TestSubWidthAccess(t *testing.T) {
	v := run(t, func(b *asm.Builder) {
		b.Zero("buf", 16)
		b.Func("main")
		b.LoadAddr(isa.RBX, "buf", 0)
		b.StoreI(isa.RBX, 0, -1, 8) // 0xFFFF...
		b.StoreI(isa.RBX, 2, 0, 1)  // clear byte 2
		b.Load(isa.RAX, isa.RBX, 0, 4)
		// bytes: FF FF 00 FF → 0xFF00FFFF
		b.Ret()
	})
	if v.ExitCode != 0xFF00FFFF {
		t.Errorf("exit = %#x, want 0xFF00FFFF", v.ExitCode)
	}
}

func TestSignExtension(t *testing.T) {
	v := run(t, func(b *asm.Builder) {
		b.Global("vals", []byte{0xFE, 0xFF}) // -2 as int16
		b.Func("main")
		b.LoadAddr(isa.RBX, "vals", 0)
		b.Emit(isa.Inst{Op: isa.MOVSX, Form: isa.FRM, Reg: isa.RAX, Size: 2,
			Mem: isa.Mem{Base: isa.RBX, Index: isa.RegNone, Scale: 1}})
		b.AluRI(isa.ADD, isa.RAX, 44) // -2 + 44 = 42
		b.Ret()
	})
	if v.ExitCode != 42 {
		t.Errorf("exit = %d, want 42", v.ExitCode)
	}
}

func TestConditionCodes(t *testing.T) {
	// Test each signed/unsigned comparison outcome.
	cases := []struct {
		a, b int64
		cond isa.Op
		want uint64
	}{
		{5, 5, isa.JE, 1}, {5, 6, isa.JE, 0},
		{5, 6, isa.JNE, 1},
		{-1, 1, isa.JL, 1}, {1, -1, isa.JL, 0},
		{-1, 1, isa.JB, 0}, // unsigned: -1 is huge
		{1, 2, isa.JB, 1},
		{2, 1, isa.JA, 1}, {1, 1, isa.JA, 0},
		{1, 1, isa.JAE, 1}, {1, 1, isa.JGE, 1},
		{-5, -4, isa.JLE, 1}, {-4, -5, isa.JG, 1},
		{-1, 0, isa.JS, 1}, {1, 0, isa.JNS, 1},
	}
	for _, c := range cases {
		v := run(t, func(b *asm.Builder) {
			b.Func("main")
			b.MovRI(isa.RAX, 0)
			b.MovRI(isa.RBX, c.a)
			b.MovRI(isa.RCX, c.b)
			b.AluRR(isa.CMP, isa.RBX, isa.RCX)
			b.Jcc(c.cond, "yes")
			b.Ret()
			b.Label("yes")
			b.MovRI(isa.RAX, 1)
			b.Ret()
		})
		if v.ExitCode != c.want {
			t.Errorf("cmp(%d,%d) %v = %d, want %d", c.a, c.b, c.cond, v.ExitCode, c.want)
		}
	}
}

func TestOverflowFlag(t *testing.T) {
	v := run(t, func(b *asm.Builder) {
		b.Func("main")
		b.MovRI(isa.RAX, 0)
		b.MovRI(isa.RBX, int64(^uint64(0)>>1)) // INT64_MAX
		b.AluRI(isa.ADD, isa.RBX, 1)
		b.Jcc(isa.JO, "of")
		b.Ret()
		b.Label("of")
		b.MovRI(isa.RAX, 1)
		b.Ret()
	})
	if v.ExitCode != 1 {
		t.Error("signed overflow did not set OF")
	}
}

func TestDivision(t *testing.T) {
	v := run(t, func(b *asm.Builder) {
		b.Func("main")
		b.MovRI(isa.RAX, 1000)
		b.MovRI(isa.RBX, 7)
		b.Emit(isa.Inst{Op: isa.UDIV, Form: isa.FR, Reg: isa.RBX, Size: 8})
		// RAX=142, RDX=6 → return 142*10+6
		b.Emit(isa.Inst{Op: isa.IMUL, Form: isa.FRI, Reg: isa.RAX, Imm: 10, Size: 8})
		b.AluRR(isa.ADD, isa.RAX, isa.RDX)
		b.Ret()
	})
	if v.ExitCode != 1426 {
		t.Errorf("exit = %d, want 1426", v.ExitCode)
	}
}

func TestSignedDivision(t *testing.T) {
	v := run(t, func(b *asm.Builder) {
		b.Func("main")
		b.MovRI(isa.RAX, -1000)
		b.Emit(isa.Inst{Op: isa.CQO, Form: isa.FNone})
		b.MovRI(isa.RBX, 7)
		b.Emit(isa.Inst{Op: isa.IDIV, Form: isa.FR, Reg: isa.RBX, Size: 8})
		b.Emit(isa.Inst{Op: isa.NEG, Form: isa.FR, Reg: isa.RAX, Size: 8})
		b.Ret()
	})
	if v.ExitCode != 142 {
		t.Errorf("exit = %d, want 142", v.ExitCode)
	}
}

func TestMallocFreeRoundTrip(t *testing.T) {
	v := run(t, func(b *asm.Builder) {
		b.Func("main")
		b.MovRI(isa.RDI, 64)
		b.CallImport("malloc")
		b.MovRR(isa.RBX, isa.RAX)
		b.StoreI(isa.RBX, 0, 1234, 8)
		b.Load(isa.RCX, isa.RBX, 0, 8)
		b.Push(isa.RCX)
		b.MovRR(isa.RDI, isa.RBX)
		b.CallImport("free")
		b.Pop(isa.RAX)
		b.Ret()
	})
	if v.ExitCode != 1234 {
		t.Errorf("exit = %d, want 1234", v.ExitCode)
	}
}

func TestInputOutput(t *testing.T) {
	v := run(t, func(b *asm.Builder) {
		b.Func("main")
		b.CallImport("rf_input")
		b.MovRR(isa.RBX, isa.RAX)
		b.CallImport("rf_input")
		b.AluRR(isa.ADD, isa.RBX, isa.RAX)
		b.MovRR(isa.RDI, isa.RBX)
		b.CallImport("rf_output")
		b.MovRR(isa.RAX, isa.RBX)
		b.Ret()
	}, 40, 2)
	if v.ExitCode != 42 {
		t.Errorf("exit = %d, want 42", v.ExitCode)
	}
	if len(v.Output) != 8 || v.Output[0] != 42 {
		t.Errorf("output = % x", v.Output)
	}
}

func TestPushfPopf(t *testing.T) {
	v := run(t, func(b *asm.Builder) {
		b.Func("main")
		b.MovRI(isa.RAX, 0)
		b.AluRI(isa.CMP, isa.RAX, 0) // ZF=1
		b.Emit(isa.Inst{Op: isa.PUSHF, Form: isa.FNone})
		b.AluRI(isa.CMP, isa.RAX, 1) // ZF=0
		b.Emit(isa.Inst{Op: isa.POPF, Form: isa.FNone})
		b.Jcc(isa.JE, "ok") // restored ZF=1
		b.Ret()
		b.Label("ok")
		b.MovRI(isa.RAX, 1)
		b.Ret()
	})
	if v.ExitCode != 1 {
		t.Error("pushf/popf did not preserve flags")
	}
}

func TestIndirectJumpAndCall(t *testing.T) {
	v := run(t, func(b *asm.Builder) {
		b.Func("main")
		b.LoadAddr(isa.RBX, "target", 0)
		b.Emit(isa.Inst{Op: isa.CALL, Form: isa.FR, Reg: isa.RBX, Size: 8})
		b.Ret()
		b.Func("target")
		b.MovRI(isa.RAX, 77)
		b.Ret()
	})
	if v.ExitCode != 77 {
		t.Errorf("exit = %d, want 77", v.ExitCode)
	}
}

func TestPICBinary(t *testing.T) {
	b := asm.NewBuilder(asm.Options{PIC: true})
	b.GlobalU64("val", 33)
	b.Func("main")
	b.LoadGlobal(isa.RAX, "val", 0, 8)
	b.AluRI(isa.ADD, isa.RAX, 9)
	b.StoreGlobal("val", 0, isa.RAX, 8)
	b.LoadGlobal(isa.RAX, "val", 0, 8)
	b.Ret()
	bin, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Rebase the PIC image to a fresh address (models PIE/ASLR load).
	bin.Rebase(0x5000_0000_0000)
	v := runBin(t, bin)
	if v.ExitCode != 42 {
		t.Errorf("exit = %d, want 42", v.ExitCode)
	}
}

func TestSegmentOverride(t *testing.T) {
	b := asm.NewBuilder(asm.Options{})
	b.Func("main")
	b.Emit(isa.Inst{Op: isa.MOV, Form: isa.FRM, Reg: isa.RAX, Size: 8,
		Mem: isa.Mem{Seg: isa.SegFS, Base: isa.RegNone, Index: isa.RegNone, Scale: 1, Disp: 0x10}})
	b.Ret()
	bin, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New()
	v := vm.New(m)
	if err := v.Load(bin, rtlib.LibC(heap.New(m), m)); err != nil {
		t.Fatal(err)
	}
	// Set up a TLS-style block at the FS base.
	v.FSBase = 0x7000_0000
	m.Map(0x7000_0000, 0x1000, mem.PermRW)
	m.Store(0x7000_0010, 8, 4242)
	if err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if v.ExitCode != 4242 {
		t.Errorf("exit = %d, want 4242", v.ExitCode)
	}
}

func TestTrapPatchDispatch(t *testing.T) {
	// Build a program with a TRAP whose patch table redirects to a
	// landing pad — the 1-byte patch tactic.
	b := asm.NewBuilder(asm.Options{})
	b.Func("main")
	b.MovRI(isa.RAX, 1)
	b.Func("trapsite")
	b.Emit(isa.Inst{Op: isa.TRAP, Form: isa.FNone})
	b.Ret() // skipped: trampoline jumps past it
	b.Func("landing")
	b.MovRI(isa.RAX, 99)
	b.Ret()
	bin, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	trap, _ := bin.Lookup("trapsite")
	landing, _ := bin.Lookup("landing")
	bin.AddSection(&relf.Section{
		Name: relf.PatchTableSection, Kind: relf.SecMeta,
		Data: relf.EncodePatchTable(map[uint64]uint64{trap: landing}),
	})

	m := mem.New()
	v := vm.New(m)
	if err := v.Load(bin, rtlib.LibC(heap.New(m), m)); err != nil {
		t.Fatal(err)
	}
	before := v.Cycles
	if err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if v.ExitCode != 99 {
		t.Errorf("exit = %d, want 99 (trap not dispatched)", v.ExitCode)
	}
	if v.Cycles-before < vm.CostTrap {
		t.Error("trap dispatch cost not charged")
	}
}

func TestTrapWithoutPatchFails(t *testing.T) {
	b := asm.NewBuilder(asm.Options{})
	b.Func("main")
	b.Emit(isa.Inst{Op: isa.TRAP, Form: isa.FNone})
	b.Ret()
	bin, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New()
	v := vm.New(m)
	if err := v.Load(bin, rtlib.LibC(heap.New(m), m)); err != nil {
		t.Fatal(err)
	}
	if err := v.Run(); err == nil {
		t.Error("unpatched trap executed successfully")
	}
}

func TestSegfaultOnWildAccess(t *testing.T) {
	b := asm.NewBuilder(asm.Options{})
	b.Func("main")
	b.MovRI(isa.RBX, 0x1234)
	b.Load(isa.RAX, isa.RBX, 0, 8)
	b.Ret()
	bin, _ := b.Build()
	m := mem.New()
	v := vm.New(m)
	if err := v.Load(bin, rtlib.LibC(heap.New(m), m)); err != nil {
		t.Fatal(err)
	}
	err := v.Run()
	if err == nil {
		t.Fatal("wild access did not fault")
	}
	if _, ok := err.(*mem.Fault); !ok {
		t.Errorf("error = %v, want *mem.Fault", err)
	}
}

func TestCycleLimit(t *testing.T) {
	b := asm.NewBuilder(asm.Options{})
	b.Func("main")
	b.Label("spin")
	b.Jmp("spin")
	bin, _ := b.Build()
	m := mem.New()
	v := vm.New(m)
	v.MaxCycles = 10_000
	if err := v.Load(bin, rtlib.LibC(heap.New(m), m)); err != nil {
		t.Fatal(err)
	}
	err := v.Run()
	if _, ok := err.(*vm.CycleLimitError); !ok {
		t.Errorf("error = %v, want CycleLimitError", err)
	}
}

func TestUnresolvedImport(t *testing.T) {
	b := asm.NewBuilder(asm.Options{})
	b.Func("main")
	b.CallImport("no_such_function")
	b.Ret()
	bin, _ := b.Build()
	m := mem.New()
	v := vm.New(m)
	if err := v.Load(bin, rtlib.LibC(heap.New(m), m)); err == nil {
		t.Error("load with unresolved import succeeded")
	}
}

func TestMemcpyMemsetHostFuncs(t *testing.T) {
	v := run(t, func(b *asm.Builder) {
		b.Zero("a", 64)
		b.Zero("b", 64)
		b.Func("main")
		b.LoadAddr(isa.RDI, "a", 0)
		b.MovRI(isa.RSI, 0x5A)
		b.MovRI(isa.RDX, 64)
		b.CallImport("memset")
		b.LoadAddr(isa.RDI, "b", 0)
		b.LoadAddr(isa.RSI, "a", 0)
		b.MovRI(isa.RDX, 64)
		b.CallImport("memcpy")
		b.LoadGlobal(isa.RAX, "b", 63, 1)
		b.Ret()
	})
	if v.ExitCode != 0x5A {
		t.Errorf("exit = %#x, want 0x5A", v.ExitCode)
	}
}

func TestStrlen(t *testing.T) {
	v := run(t, func(b *asm.Builder) {
		b.Global("s", append([]byte("hello world"), 0))
		b.Func("main")
		b.LoadAddr(isa.RDI, "s", 0)
		b.CallImport("strlen")
		b.Ret()
	})
	if v.ExitCode != 11 {
		t.Errorf("strlen = %d, want 11", v.ExitCode)
	}
}

func TestIncDecPreserveCF(t *testing.T) {
	v := run(t, func(b *asm.Builder) {
		b.Func("main")
		b.MovRI(isa.RAX, 0)
		b.MovRI(isa.RBX, 1)
		b.AluRI(isa.CMP, isa.RAX, 1) // CF=1 (0 < 1 unsigned)
		b.Emit(isa.Inst{Op: isa.INC, Form: isa.FR, Reg: isa.RBX, Size: 8})
		b.Jcc(isa.JB, "cfset") // CF must survive INC
		b.Ret()
		b.Label("cfset")
		b.MovRI(isa.RAX, 1)
		b.Ret()
	})
	if v.ExitCode != 1 {
		t.Error("INC clobbered CF")
	}
}

func TestExitHostFunc(t *testing.T) {
	v := run(t, func(b *asm.Builder) {
		b.Func("main")
		b.MovRI(isa.RDI, 7)
		b.CallImport("exit")
		b.MovRI(isa.RAX, 1) // unreachable
		b.Ret()
	})
	if v.ExitCode != 7 {
		t.Errorf("exit = %d, want 7", v.ExitCode)
	}
}
