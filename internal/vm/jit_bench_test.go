package vm_test

import (
	"testing"

	"redfat/internal/asm"
	"redfat/internal/heap"
	"redfat/internal/isa"
	"redfat/internal/mem"
	"redfat/internal/obs"
	"redfat/internal/relf"
	"redfat/internal/rtlib"
	"redfat/internal/vm"
)

// benchHotLoop is a tight counted loop: the superblock tier's best case
// (one trace, entered once per iteration via the loop back edge).
func benchHotLoop(iters int64) func(b *asm.Builder) {
	return func(b *asm.Builder) {
		b.Func("main")
		b.MovRI(isa.RAX, 0)
		b.MovRI(isa.RBX, 0)
		b.Label("loop")
		b.AluRI(isa.ADD, isa.RAX, 3)
		b.Shift(isa.SHL, isa.RAX, 1)
		b.Shift(isa.SHR, isa.RAX, 1)
		b.AluRI(isa.ADD, isa.RBX, 1)
		b.AluRI(isa.CMP, isa.RBX, iters)
		b.Jcc(isa.JL, "loop")
		b.Ret()
	}
}

// benchSideExit alternates a conditional every iteration, so half the
// trace entries leave through the unpredicted side exit with per-step
// telemetry replay and full state materialization.
func benchSideExit(iters int64) func(b *asm.Builder) {
	return func(b *asm.Builder) {
		b.Func("main")
		b.MovRI(isa.RAX, 0)
		b.MovRI(isa.RBX, 0)
		b.MovRI(isa.RCX, 0)
		b.Label("loop")
		b.AluRI(isa.XOR, isa.RCX, 1)
		b.AluRI(isa.CMP, isa.RCX, 0)
		b.Jcc(isa.JE, "even")
		b.AluRI(isa.ADD, isa.RAX, 3)
		b.Jmp("join")
		b.Label("even")
		b.AluRI(isa.ADD, isa.RAX, 1)
		b.Label("join")
		b.AluRI(isa.ADD, isa.RBX, 1)
		b.AluRI(isa.CMP, isa.RBX, iters)
		b.Jcc(isa.JL, "loop")
		b.Ret()
	}
}

// benchDeoptStorm retargets an indirect jump every iteration: the trace
// ends at a dynamic exit whose one-entry successor cache is defeated
// each round, the worst case for trace exit dispatch.
func benchDeoptStorm(iters int64) func(b *asm.Builder) {
	return func(b *asm.Builder) {
		b.Func("main")
		b.MovRI(isa.RAX, 0)
		b.MovRI(isa.RBX, 0)
		b.MovRI(isa.RCX, 0)
		b.Label("loop")
		b.AluRI(isa.XOR, isa.RCX, 1)
		b.AluRI(isa.CMP, isa.RCX, 0)
		b.Jcc(isa.JE, "even")
		b.LoadAddr(isa.RDX, "odd", 0)
		b.Jmp("dispatch")
		b.Label("even")
		b.LoadAddr(isa.RDX, "evenbody", 0)
		b.Label("dispatch")
		b.Emit(isa.Inst{Op: isa.JMP, Form: isa.FR, Reg: isa.RDX})
		b.Label("odd")
		b.AluRI(isa.ADD, isa.RAX, 3)
		b.Jmp("join")
		b.Label("evenbody")
		b.AluRI(isa.ADD, isa.RAX, 1)
		b.Label("join")
		b.AluRI(isa.ADD, isa.RBX, 1)
		b.AluRI(isa.CMP, isa.RBX, iters)
		b.Jcc(isa.JL, "loop")
		b.Ret()
	}
}

// buildBench assembles one benchmark program.
func buildBench(tb testing.TB, gen func(b *asm.Builder)) *relf.Binary {
	tb.Helper()
	b := asm.NewBuilder(asm.Options{})
	gen(b)
	bin, err := b.Build()
	if err != nil {
		tb.Fatal(err)
	}
	return bin
}

// benchRun executes bin once on a fresh VM and returns retired guest
// instructions.
func benchRun(tb testing.TB, bin *relf.Binary, noJIT bool) uint64 {
	m := mem.New()
	v := vm.New(m)
	v.MaxCycles = 2_000_000_000
	v.NoJIT = noJIT
	v.JITThreshold = 8
	if err := v.Load(bin, rtlib.LibC(heap.New(m), m)); err != nil {
		tb.Fatal(err)
	}
	if err := v.Run(); err != nil {
		tb.Fatal(err)
	}
	return v.Insts
}

// benchRunFlight is benchRun with a flight recorder attached (nil runs
// bare, the flight-off baseline).
func benchRunFlight(tb testing.TB, bin *relf.Binary, flight *obs.Flight) uint64 {
	m := mem.New()
	v := vm.New(m)
	v.MaxCycles = 2_000_000_000
	v.JITThreshold = 8
	v.Flight = flight
	m.Flight = flight
	if err := v.Load(bin, rtlib.LibC(heap.New(m), m)); err != nil {
		tb.Fatal(err)
	}
	if err := v.Run(); err != nil {
		tb.Fatal(err)
	}
	return v.Insts
}

// benchSuperblock reports ns per retired guest instruction for one
// program under one tier setting.
func benchSuperblock(b *testing.B, gen func(*asm.Builder), noJIT bool) {
	bin := buildBench(b, gen)
	var insts uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		insts = benchRun(b, bin, noJIT)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(insts)/float64(b.N), "ns/inst")
}

func BenchmarkSuperblockHotLoop(b *testing.B) {
	b.Run("jit", func(b *testing.B) { benchSuperblock(b, benchHotLoop(200_000), false) })
	b.Run("nojit", func(b *testing.B) { benchSuperblock(b, benchHotLoop(200_000), true) })
}

func BenchmarkSuperblockSideExit(b *testing.B) {
	b.Run("jit", func(b *testing.B) { benchSuperblock(b, benchSideExit(200_000), false) })
	b.Run("nojit", func(b *testing.B) { benchSuperblock(b, benchSideExit(200_000), true) })
}

func BenchmarkSuperblockDeoptStorm(b *testing.B) {
	b.Run("jit", func(b *testing.B) { benchSuperblock(b, benchDeoptStorm(200_000), false) })
	b.Run("nojit", func(b *testing.B) { benchSuperblock(b, benchDeoptStorm(200_000), true) })
}

// TestPerfSmokeJIT is the superblock tier's perf guard in `make check`:
// on the hot-loop micro the compiled tier must beat the block
// interpreter by at least 20%. Relative comparison (both paths measured
// back to back), with retries to ride out scheduling noise; -short
// (the race pass) skips it.
func TestPerfSmokeJIT(t *testing.T) {
	if testing.Short() {
		t.Skip("perf smoke skipped in -short (race) mode")
	}
	bin := buildBench(t, benchHotLoop(200_000))
	measure := func(noJIT bool) float64 {
		var insts uint64
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				insts = benchRun(b, bin, noJIT)
			}
		})
		return float64(res.NsPerOp()) / float64(insts)
	}
	for attempt := 1; ; attempt++ {
		jit, interp := measure(false), measure(true)
		if jit <= interp*0.8 {
			t.Logf("jit %.2f ns/inst vs interpreter %.2f ns/inst (%.1f%% faster)",
				jit, interp, (1-jit/interp)*100)
			return
		}
		if attempt == 3 {
			t.Fatalf("superblock tier not ≥20%% faster after %d attempts: %.2f vs %.2f ns/inst",
				attempt, jit, interp)
		}
	}
}

// TestPerfSmokeFlight is the flight recorder's hot-path guard: with a
// recorder attached, hot-loop dispatch (trace entries record one ring
// event per iteration) must stay within 3% of the bare run. The budget
// is deliberately tight — the ring write is a handful of stores into a
// preallocated slice — so a Record that starts allocating or locking
// fails here. Same relative back-to-back measurement and retry shape as
// TestPerfSmokeJIT, with more attempts because the margin is narrower.
func TestPerfSmokeFlight(t *testing.T) {
	if testing.Short() {
		t.Skip("perf smoke skipped in -short (race) mode")
	}
	bin := buildBench(t, benchHotLoop(200_000))
	measure := func(flight *obs.Flight) float64 {
		var insts uint64
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				insts = benchRunFlight(b, bin, flight)
			}
		})
		return float64(res.NsPerOp()) / float64(insts)
	}
	for attempt := 1; ; attempt++ {
		off, on := measure(nil), measure(obs.NewFlight(0))
		if on <= off*1.03 {
			t.Logf("flight-on %.2f ns/inst vs flight-off %.2f ns/inst (%+.1f%%)",
				on, off, (on/off-1)*100)
			return
		}
		if attempt == 5 {
			t.Fatalf("flight recorder costs more than 3%% on hot-loop dispatch after %d attempts: %.2f vs %.2f ns/inst",
				attempt, on, off)
		}
	}
}
