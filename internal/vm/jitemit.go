package vm

// Phase two of the superblock compiler: compile a TraceInfo into step
// closures. Every decode-dependent decision — operand form, width,
// registers, immediates, effective-address shape, branch prediction,
// check plans, flag elision — is resolved here, once, so the closures
// are residual computations over v.Regs, guest memory and the deferred
// jctx state.
//
// The closures deliberately bypass v.load/v.store/v.branchTo: those
// helpers charge cycles and bump telemetry per event, which the trace
// accounts statically per exit instead (tel replay data is prepared
// here too, mirroring exactly which counters the interpreter would have
// bumped on each partial path). Guest memory is accessed through the
// same Mem.Load/Mem.Store primitives, so fault detection is identical.
// jitEnabled guarantees no MemHook/BlockHook/Tracer/Profiler is
// attached, which is what makes the bypass behaviour-preserving.

import (
	"fmt"

	"redfat/internal/isa"
)

// emitEA compiles an effective-address computation, folding the
// displacement (and the static next-RIP of RIP-relative operands) into
// a constant and specializing on which components exist.
func emitEA(m isa.Mem, next uint64) func(v *VM) uint64 {
	off := uint64(int64(m.Disp))
	base := m.Base
	if base == isa.RIP {
		off += next
		base = isa.RegNone
	}
	idx, scale, seg := m.Index, uint64(m.Scale), m.Seg
	switch {
	case seg != isa.SegNone: // segment-relative: rare, keep general
		return func(v *VM) uint64 {
			a := off
			if base != isa.RegNone {
				a += v.Regs[base]
			}
			if idx != isa.RegNone {
				a += v.Regs[idx] * scale
			}
			if seg == isa.SegFS {
				a += v.FSBase
			} else {
				a += v.GSBase
			}
			return a
		}
	case base != isa.RegNone && idx != isa.RegNone:
		return func(v *VM) uint64 { return v.Regs[base] + v.Regs[idx]*scale + off }
	case base != isa.RegNone:
		return func(v *VM) uint64 { return v.Regs[base] + off }
	case idx != isa.RegNone:
		return func(v *VM) uint64 { return v.Regs[idx]*scale + off }
	default:
		return func(v *VM) uint64 { return off }
	}
}

// aluApply is the pure mirror of aluCompute: same results, same flags,
// no cycle charges (the trace charges IMUL's CostMul statically).
func aluApply(op isa.Op, a, b uint64, w uint16, cur Flags) (uint64, Flags) {
	mask := widthMask(w)
	switch op {
	case isa.MOV, isa.MOVABS, isa.MOVZX:
		return b & mask, cur
	case isa.MOVSX:
		r := b & mask
		if signBit(r, w) {
			r |= ^mask
		}
		return r, cur
	case isa.ADD:
		r := (a + b) & mask
		return r, addFlags(a, b, r, w)
	case isa.SUB:
		r := (a - b) & mask
		return r, subFlags(a, b, r, w)
	case isa.CMP:
		r := (a - b) & mask
		return a & mask, subFlags(a, b, r, w)
	case isa.AND, isa.TEST:
		r := (a & b) & mask
		if op == isa.TEST {
			return a & mask, logicFlags(r, w)
		}
		return r, logicFlags(r, w)
	case isa.OR:
		r := (a | b) & mask
		return r, logicFlags(r, w)
	case isa.XOR:
		r := (a ^ b) & mask
		return r, logicFlags(r, w)
	case isa.IMUL:
		r := uint64(int64(a)*int64(b)) & mask
		return r, logicFlags(r, w)
	}
	return 0, cur
}

// unaryApply is the pure mirror of stepUnary's compute.
func unaryApply(op isa.Op, val uint64, w uint16, cur Flags) (uint64, Flags) {
	mask := widthMask(w)
	switch op {
	case isa.INC:
		r := (val + 1) & mask
		fl := addFlags(val, 1, r, w)
		fl.CF = cur.CF
		return r, fl
	case isa.DEC:
		r := (val - 1) & mask
		fl := subFlags(val, 1, r, w)
		fl.CF = cur.CF
		return r, fl
	case isa.NEG:
		r := (-val) & mask
		fl := subFlags(0, val, r, w)
		fl.CF = val&mask != 0
		return r, fl
	}
	return (^val) & mask, cur // NOT: flags untouched
}

// emitALURR compiles a register-register ALU op (always 64-bit, like
// aluRegFast). MOVZX/MOVSX degenerate to plain moves at width 8.
func emitALURR(v *VM, op isa.Op, dst, src isa.Reg, elide bool, cont int) jstep {
	switch op {
	case isa.MOV, isa.MOVABS, isa.MOVZX, isa.MOVSX:
		return func(j *jctx) int { v.Regs[dst] = v.Regs[src]; return cont }
	case isa.ADD:
		if elide {
			return func(j *jctx) int { v.Regs[dst] += v.Regs[src]; return cont }
		}
		return func(j *jctx) int {
			a, b := v.Regs[dst], v.Regs[src]
			r := a + b
			j.flags = addFlags(a, b, r, 8)
			v.Regs[dst] = r
			return cont
		}
	case isa.SUB:
		if elide {
			return func(j *jctx) int { v.Regs[dst] -= v.Regs[src]; return cont }
		}
		return func(j *jctx) int {
			a, b := v.Regs[dst], v.Regs[src]
			r := a - b
			j.flags = subFlags(a, b, r, 8)
			v.Regs[dst] = r
			return cont
		}
	case isa.CMP:
		if elide {
			return func(j *jctx) int { return cont }
		}
		return func(j *jctx) int {
			a, b := v.Regs[dst], v.Regs[src]
			j.flags = subFlags(a, b, a-b, 8)
			return cont
		}
	case isa.AND:
		if elide {
			return func(j *jctx) int { v.Regs[dst] &= v.Regs[src]; return cont }
		}
		return func(j *jctx) int {
			r := v.Regs[dst] & v.Regs[src]
			j.flags = logicFlags(r, 8)
			v.Regs[dst] = r
			return cont
		}
	case isa.OR:
		if elide {
			return func(j *jctx) int { v.Regs[dst] |= v.Regs[src]; return cont }
		}
		return func(j *jctx) int {
			r := v.Regs[dst] | v.Regs[src]
			j.flags = logicFlags(r, 8)
			v.Regs[dst] = r
			return cont
		}
	case isa.XOR:
		if elide {
			return func(j *jctx) int { v.Regs[dst] ^= v.Regs[src]; return cont }
		}
		return func(j *jctx) int {
			r := v.Regs[dst] ^ v.Regs[src]
			j.flags = logicFlags(r, 8)
			v.Regs[dst] = r
			return cont
		}
	case isa.TEST:
		if elide {
			return func(j *jctx) int { return cont }
		}
		return func(j *jctx) int {
			j.flags = logicFlags(v.Regs[dst]&v.Regs[src], 8)
			return cont
		}
	case isa.IMUL:
		if elide {
			return func(j *jctx) int {
				v.Regs[dst] = uint64(int64(v.Regs[dst]) * int64(v.Regs[src]))
				return cont
			}
		}
		return func(j *jctx) int {
			r := uint64(int64(v.Regs[dst]) * int64(v.Regs[src]))
			j.flags = logicFlags(r, 8)
			v.Regs[dst] = r
			return cont
		}
	}
	return nil
}

// emitALURI compiles a register-immediate ALU op (always 64-bit).
func emitALURI(v *VM, op isa.Op, dst isa.Reg, imm uint64, elide bool, cont int) jstep {
	switch op {
	case isa.MOV, isa.MOVABS, isa.MOVZX, isa.MOVSX:
		return func(j *jctx) int { v.Regs[dst] = imm; return cont }
	case isa.ADD:
		if elide {
			return func(j *jctx) int { v.Regs[dst] += imm; return cont }
		}
		return func(j *jctx) int {
			a := v.Regs[dst]
			r := a + imm
			j.flags = addFlags(a, imm, r, 8)
			v.Regs[dst] = r
			return cont
		}
	case isa.SUB:
		if elide {
			return func(j *jctx) int { v.Regs[dst] -= imm; return cont }
		}
		return func(j *jctx) int {
			a := v.Regs[dst]
			r := a - imm
			j.flags = subFlags(a, imm, r, 8)
			v.Regs[dst] = r
			return cont
		}
	case isa.CMP:
		if elide {
			return func(j *jctx) int { return cont }
		}
		return func(j *jctx) int {
			a := v.Regs[dst]
			j.flags = subFlags(a, imm, a-imm, 8)
			return cont
		}
	case isa.AND:
		if elide {
			return func(j *jctx) int { v.Regs[dst] &= imm; return cont }
		}
		return func(j *jctx) int {
			r := v.Regs[dst] & imm
			j.flags = logicFlags(r, 8)
			v.Regs[dst] = r
			return cont
		}
	case isa.OR:
		if elide {
			return func(j *jctx) int { v.Regs[dst] |= imm; return cont }
		}
		return func(j *jctx) int {
			r := v.Regs[dst] | imm
			j.flags = logicFlags(r, 8)
			v.Regs[dst] = r
			return cont
		}
	case isa.XOR:
		if elide {
			return func(j *jctx) int { v.Regs[dst] ^= imm; return cont }
		}
		return func(j *jctx) int {
			r := v.Regs[dst] ^ imm
			j.flags = logicFlags(r, 8)
			v.Regs[dst] = r
			return cont
		}
	case isa.TEST:
		if elide {
			return func(j *jctx) int { return cont }
		}
		return func(j *jctx) int {
			j.flags = logicFlags(v.Regs[dst]&imm, 8)
			return cont
		}
	case isa.IMUL:
		if elide {
			return func(j *jctx) int {
				v.Regs[dst] = uint64(int64(v.Regs[dst]) * int64(imm))
				return cont
			}
		}
		return func(j *jctx) int {
			r := uint64(int64(v.Regs[dst]) * int64(imm))
			j.flags = logicFlags(r, 8)
			v.Regs[dst] = r
			return cont
		}
	}
	return nil
}

// emitStep compiles one analyzed step into its closure. Returns nil on
// an inconsistency between the analyzer and the emitter, which aborts
// the whole compilation (the block is then pinned to the interpreter).
func (v *VM) emitStep(t *trace, info *TraceInfo, aux []stepAux, i int) jstep {
	st := &info.Steps[i]
	in := &st.Inst
	ax := &aux[i]
	pc := st.PC
	next := pc + uint64(in.Len)
	cont := ax.contID
	elide := st.FlagsElided

	switch in.Op {
	case isa.NOP:
		return func(j *jctx) int { return cont }

	case isa.CQO:
		return func(j *jctx) int {
			v.Regs[isa.RDX] = uint64(int64(v.Regs[isa.RAX]) >> 63)
			return cont
		}

	case isa.XCHG:
		r1, r2 := in.Reg, in.Reg2
		return func(j *jctx) int {
			v.Regs[r1], v.Regs[r2] = v.Regs[r2], v.Regs[r1]
			return cont
		}

	case isa.LEA:
		ea := emitEA(in.Mem, next)
		dst := in.Reg
		return func(j *jctx) int { v.Regs[dst] = ea(v); return cont }

	case isa.MOV, isa.MOVABS, isa.MOVZX, isa.MOVSX,
		isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR,
		isa.CMP, isa.TEST, isa.IMUL:
		op := in.Op
		w := uint16(in.Size)
		if w == 0 {
			w = 8
		}
		switch in.Form {
		case isa.FRR:
			return emitALURR(v, op, in.Reg, in.Reg2, elide, cont)
		case isa.FRI:
			return emitALURI(v, op, in.Reg, uint64(in.Imm), elide, cont)
		case isa.FRM:
			ea := emitEA(in.Mem, next)
			dst := in.Reg
			f1 := ax.exits[0]
			if op == isa.MOV || op == isa.MOVZX {
				return func(j *jctx) int {
					b, err := v.Mem.Load(ea(v), w)
					if err != nil {
						j.err = err
						return f1
					}
					v.Regs[dst] = b
					return cont
				}
			}
			wr := op != isa.CMP && op != isa.TEST
			return func(j *jctx) int {
				b, err := v.Mem.Load(ea(v), w)
				if err != nil {
					j.err = err
					return f1
				}
				r, fl := aluApply(op, v.Regs[dst], b, w, j.flags)
				if !elide {
					j.flags = fl
				}
				if wr {
					v.Regs[dst] = r
				}
				return cont
			}
		case isa.FMR, isa.FMI:
			ea := emitEA(in.Mem, next)
			f1 := ax.exits[0]
			src := in.Reg
			imm := uint64(in.Imm)
			isImm := in.Form == isa.FMI
			switch op {
			case isa.MOV:
				if isImm {
					return func(j *jctx) int {
						if err := v.Mem.Store(ea(v), w, imm); err != nil {
							j.err = err
							return f1
						}
						return cont
					}
				}
				return func(j *jctx) int {
					if err := v.Mem.Store(ea(v), w, v.Regs[src]); err != nil {
						j.err = err
						return f1
					}
					return cont
				}
			case isa.CMP, isa.TEST:
				return func(j *jctx) int {
					a, err := v.Mem.Load(ea(v), w)
					if err != nil {
						j.err = err
						return f1
					}
					if !elide {
						b := imm
						if !isImm {
							b = v.Regs[src]
						}
						_, fl := aluApply(op, a, b, w, j.flags)
						j.flags = fl
					}
					return cont
				}
			default: // read-modify-write
				f2 := ax.exits[1]
				return func(j *jctx) int {
					addr := ea(v)
					a, err := v.Mem.Load(addr, w)
					if err != nil {
						j.err = err
						return f1
					}
					b := imm
					if !isImm {
						b = v.Regs[src]
					}
					r, fl := aluApply(op, a, b, w, j.flags)
					if !elide {
						j.flags = fl // before the store, like stepALU
					}
					if err := v.Mem.Store(addr, w, r); err != nil {
						j.err = err
						return f2
					}
					return cont
				}
			}
		}
		return nil

	case isa.PUSH:
		f1 := ax.exits[0]
		if in.Form == isa.FR {
			src := in.Reg
			return func(j *jctx) int {
				val := v.Regs[src] // read before RSP moves (src may be RSP)
				if err := v.push(val); err != nil {
					j.err = err
					return f1
				}
				return cont
			}
		}
		ea := emitEA(in.Mem, next)
		f2 := ax.exits[1]
		return func(j *jctx) int {
			val, err := v.Mem.Load(ea(v), 8)
			if err != nil {
				j.err = err
				return f1
			}
			if err := v.push(val); err != nil {
				j.err = err
				return f2
			}
			return cont
		}

	case isa.PUSHF:
		f1 := ax.exits[0]
		return func(j *jctx) int {
			if err := v.push(j.flags.pack()); err != nil {
				j.err = err
				return f1
			}
			return cont
		}

	case isa.POP:
		f1 := ax.exits[0]
		if in.Form == isa.FR {
			dst := in.Reg
			return func(j *jctx) int {
				val, err := v.pop()
				if err != nil {
					j.err = err
					return f1
				}
				v.Regs[dst] = val
				return cont
			}
		}
		ea := emitEA(in.Mem, next)
		f2 := ax.exits[1]
		return func(j *jctx) int {
			val, err := v.pop()
			if err != nil {
				j.err = err
				return f1
			}
			// EA after the pop: RSP-relative destinations see the
			// incremented stack pointer, exactly like the interpreter.
			if err := v.Mem.Store(ea(v), 8, val); err != nil {
				j.err = err
				return f2
			}
			return cont
		}

	case isa.POPF:
		f1 := ax.exits[0]
		return func(j *jctx) int {
			val, err := v.pop()
			if err != nil {
				j.err = err
				return f1
			}
			j.flags = unpackFlags(val)
			return cont
		}

	case isa.INC, isa.DEC, isa.NEG, isa.NOT:
		op := in.Op
		if in.Form == isa.FR {
			reg := in.Reg
			return func(j *jctx) int {
				r, fl := unaryApply(op, v.Regs[reg], 8, j.flags)
				if !elide {
					j.flags = fl
				}
				v.Regs[reg] = r
				return cont
			}
		}
		w := uint16(in.Size)
		if w == 0 {
			w = 8
		}
		ea := emitEA(in.Mem, next)
		f1, f2 := ax.exits[0], ax.exits[1]
		return func(j *jctx) int {
			addr := ea(v)
			val, err := v.Mem.Load(addr, w)
			if err != nil {
				j.err = err
				return f1
			}
			r, fl := unaryApply(op, val, w, j.flags)
			if !elide {
				j.flags = fl
			}
			if err := v.Mem.Store(addr, w, r); err != nil {
				j.err = err
				return f2
			}
			return cont
		}

	case isa.SHL, isa.SHR, isa.SAR:
		op := in.Op
		reg := in.Reg
		if in.Form == isa.FRI {
			count := uint64(in.Imm) & 63
			if count == 0 {
				return func(j *jctx) int { return cont }
			}
			switch op {
			case isa.SHL:
				hi := uint64(1) << (64 - count)
				if elide {
					return func(j *jctx) int { v.Regs[reg] <<= count; return cont }
				}
				return func(j *jctx) int {
					val := v.Regs[reg]
					r := val << count
					j.flags = Flags{ZF: r == 0, SF: signBit(r, 8), CF: val&hi != 0}
					v.Regs[reg] = r
					return cont
				}
			case isa.SHR:
				lo := uint64(1) << (count - 1)
				if elide {
					return func(j *jctx) int { v.Regs[reg] >>= count; return cont }
				}
				return func(j *jctx) int {
					val := v.Regs[reg]
					r := val >> count
					j.flags = Flags{ZF: r == 0, SF: signBit(r, 8), CF: val&lo != 0}
					v.Regs[reg] = r
					return cont
				}
			default: // SAR
				lo := uint64(1) << (count - 1)
				if elide {
					return func(j *jctx) int {
						v.Regs[reg] = uint64(int64(v.Regs[reg]) >> count)
						return cont
					}
				}
				return func(j *jctx) int {
					val := v.Regs[reg]
					r := uint64(int64(val) >> count)
					j.flags = Flags{ZF: r == 0, SF: signBit(r, 8), CF: val&lo != 0}
					v.Regs[reg] = r
					return cont
				}
			}
		}
		// CL-count shift: everything is dynamic, mirror exec's body.
		return func(j *jctx) int {
			count := v.Regs[isa.RCX] & 63
			val := v.Regs[reg]
			if count > 0 {
				var r uint64
				var cf bool
				switch op {
				case isa.SHL:
					cf = val&(1<<(64-count)) != 0
					r = val << count
				case isa.SHR:
					cf = val&(1<<(count-1)) != 0
					r = val >> count
				default:
					cf = val&(1<<(count-1)) != 0
					r = uint64(int64(val) >> count)
				}
				if !elide {
					j.flags = Flags{ZF: r == 0, SF: signBit(r, 8), CF: cf}
				}
				v.Regs[reg] = r
			}
			return cont
		}

	case isa.UDIV, isa.IDIV:
		reg := in.Reg
		f1 := ax.exits[0]
		if in.Op == isa.UDIV {
			return func(j *jctx) int {
				d := v.Regs[reg]
				if d == 0 {
					j.err = fmt.Errorf("vm: division by zero at %#x", pc)
					return f1
				}
				a := v.Regs[isa.RAX]
				v.Regs[isa.RAX] = a / d
				v.Regs[isa.RDX] = a % d
				return cont
			}
		}
		return func(j *jctx) int {
			d := v.Regs[reg]
			if d == 0 {
				j.err = fmt.Errorf("vm: division by zero at %#x", pc)
				return f1
			}
			sa, sd := int64(v.Regs[isa.RAX]), int64(d)
			if sa == -1<<63 && sd == -1 {
				j.err = fmt.Errorf("vm: division overflow at %#x", pc)
				return f1
			}
			v.Regs[isa.RAX] = uint64(sa / sd)
			v.Regs[isa.RDX] = uint64(sa % sd)
			return cont
		}

	case isa.HLT:
		halt := ax.exits[0]
		return func(j *jctx) int {
			v.Halted = true
			v.ExitCode = v.Regs[isa.RAX]
			return halt
		}

	case isa.TRAP:
		// Patch target and cost are static; the dispatch is a no-op here.
		return func(j *jctx) int { return cont }

	case isa.JMP:
		switch in.Form {
		case isa.FRel8, isa.FRel32:
			return func(j *jctx) int { return cont }
		case isa.FR:
			reg := in.Reg
			dyn := ax.exits[0]
			return func(j *jctx) int {
				j.dynRIP = v.Regs[reg]
				return dyn
			}
		case isa.FM:
			ea := emitEA(in.Mem, next)
			f1, dyn := ax.exits[0], ax.exits[1]
			return func(j *jctx) int {
				target, err := v.Mem.Load(ea(v), 8)
				if err != nil {
					j.err = err
					return f1
				}
				j.dynRIP = target
				return dyn
			}
		}
		return nil

	case isa.CALL:
		switch in.Form {
		case isa.FRel32:
			f1 := ax.exits[0]
			return func(j *jctx) int {
				if err := v.push(next); err != nil {
					j.err = err
					return f1
				}
				return cont
			}
		case isa.FR:
			reg := in.Reg
			f1, dyn := ax.exits[0], ax.exits[1]
			return func(j *jctx) int {
				target := v.Regs[reg] // read before the push moves RSP
				if err := v.push(next); err != nil {
					j.err = err
					return f1
				}
				j.dynRIP = target
				return dyn
			}
		case isa.FM:
			ea := emitEA(in.Mem, next)
			f1, f2, dyn := ax.exits[0], ax.exits[1], ax.exits[2]
			return func(j *jctx) int {
				target, err := v.Mem.Load(ea(v), 8)
				if err != nil {
					j.err = err
					return f1
				}
				if err := v.push(next); err != nil {
					j.err = err
					return f2
				}
				j.dynRIP = target
				return dyn
			}
		}
		return nil

	case isa.RET:
		f1, halt, dyn := ax.exits[0], ax.exits[1], ax.exits[2]
		return func(j *jctx) int {
			addr, err := v.pop()
			if err != nil {
				j.err = err
				return f1
			}
			if addr == ExitSentinel {
				v.Halted = true
				v.ExitCode = v.Regs[isa.RAX]
				return halt
			}
			j.dynRIP = addr
			return dyn
		}

	case isa.RTCALL:
		plan := ax.plan
		c := st.Check
		if plan == nil || c == nil {
			return nil
		}
		exec := plan.Exec
		if c.Elided {
			exec = plan.Forward
		}
		o := &t.outc[c.Slot]
		f1 := ax.exits[0]
		return func(j *jctx) int {
			v.RIP = next // handlers attribute errors to the resume RIP
			before := v.Cycles
			err := exec(v, o)
			if v.tel != nil {
				cost := v.Cycles - before
				v.tel.rtcalls.Inc()
				v.tel.rtcallCost.Add(cost)
				v.tel.rtcallHist.Observe(cost)
			}
			if err != nil {
				j.err = err
				return f1
			}
			return cont
		}

	default:
		if !in.Op.IsCondJump() {
			return nil
		}
		op := in.Op
		side := ax.exits[0]
		if ax.onTaken {
			return func(j *jctx) int {
				if j.flags.cond(op) {
					return cont
				}
				return side
			}
		}
		return func(j *jctx) int {
			if j.flags.cond(op) {
				return side
			}
			return cont
		}
	}
}

// contStepTel computes the telemetry the interpreter records for one
// instruction on its continue path (the per-opcode retirement plus
// load/store/branch/patch increments).
func contStepTel(st *TraceStep, ax *stepAux) stepTel {
	in := &st.Inst
	m := stepTel{op: in.Op}
	switch in.Op {
	case isa.MOV, isa.MOVABS, isa.MOVZX, isa.MOVSX,
		isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR,
		isa.CMP, isa.TEST, isa.IMUL:
		switch in.Form {
		case isa.FRM:
			m.loads = 1
		case isa.FMR, isa.FMI:
			switch in.Op {
			case isa.MOV:
				m.stores = 1
			case isa.CMP, isa.TEST:
				m.loads = 1
			default:
				m.loads, m.stores = 1, 1
			}
		}
	case isa.PUSH:
		if in.Form == isa.FM {
			m.loads = 1 // the push itself is a raw store: no counter
		}
	case isa.POP:
		if in.Form == isa.FM {
			m.stores = 1 // the pop itself is a raw load: no counter
		}
	case isa.INC, isa.DEC, isa.NEG, isa.NOT:
		if in.Form != isa.FR {
			m.loads, m.stores = 1, 1
		}
	case isa.TRAP:
		m.patch = 1
	case isa.JMP, isa.CALL:
		m.branches = 1
		if in.Form == isa.FM {
			m.loads = 1
		}
	case isa.RET:
		m.branches = 1 // the non-sentinel path; halt/fault exits override
	default:
		if in.Op.IsCondJump() && ax.onTaken {
			m.branches = 1
		}
	}
	return m
}

// exitSelfTel computes the exiting step's own telemetry on one exit
// path: the full continue delta for resumable terminal exits, a partial
// delta for fault stages, and the unpredicted-direction delta for side
// exits.
func exitSelfTel(info *TraceInfo, aux []stepAux, e *TraceExit) stepTel {
	st := &info.Steps[e.Step]
	in := &st.Inst
	ax := &aux[e.Step]
	m := stepTel{op: in.Op}
	switch e.Kind {
	case ExitFall, ExitLoop, ExitDyn:
		return contStepTel(st, ax)
	case ExitHalt:
		return m // HLT, or RET to the sentinel: no branch, no memory
	case ExitSide:
		if !ax.onTaken {
			m.branches = 1 // side exit takes the branch
		}
		return m
	}
	// Fault stages: exactly the counters bumped before the fault.
	switch in.Op {
	case isa.MOV, isa.MOVABS, isa.MOVZX, isa.MOVSX,
		isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR,
		isa.CMP, isa.TEST, isa.IMUL:
		switch in.Form {
		case isa.FRM:
			m.loads = 1
		case isa.FMR, isa.FMI:
			switch in.Op {
			case isa.MOV:
				m.stores = 1
			case isa.CMP, isa.TEST:
				m.loads = 1
			default:
				m.loads = 1
				if e.Stage == 2 {
					m.stores = 1
				}
			}
		}
	case isa.PUSH:
		if in.Form == isa.FM {
			m.loads = 1 // both stages: the counted load happened or faulted
		}
	case isa.POP:
		if in.Form == isa.FM && e.Stage == 2 {
			m.stores = 1
		}
	case isa.INC, isa.DEC, isa.NEG, isa.NOT:
		if in.Form != isa.FR {
			m.loads = 1
			if e.Stage == 2 {
				m.stores = 1
			}
		}
	case isa.JMP, isa.CALL:
		if in.Form == isa.FM {
			m.loads = 1 // target load counted; branch never taken
		}
	}
	return m
}

// buildBatch aggregates the per-step telemetry along one exit path into
// a handful of counter adds, preserving first-retirement opcode order.
func buildBatch(t *trace, e *traceExit) *telBatch {
	b := &telBatch{}
	idx := make(map[isa.Op]int)
	add := func(m *stepTel) {
		k, ok := idx[m.op]
		if !ok {
			k = len(b.ops)
			idx[m.op] = k
			b.ops = append(b.ops, opCount{op: m.op})
		}
		b.ops[k].n++
		b.loads += uint64(m.loads)
		b.stores += uint64(m.stores)
		b.branches += uint64(m.branches)
		b.patch += uint64(m.patch)
	}
	for i := 0; i < e.step; i++ {
		add(&t.meta[i])
	}
	add(&e.self)
	return b
}

// emitTrace compiles a TraceInfo into an executable trace. Returns nil
// if any step cannot be emitted (which pins the root block to the
// interpreter).
func (v *VM) emitTrace(info *TraceInfo, aux []stepAux) *trace {
	t := &trace{
		entryPC:  info.EntryPC,
		overhead: info.Overhead,
		maxCost:  info.MaxCost,
		info:     info,
	}
	slots := 0
	for i := range info.Steps {
		if c := info.Steps[i].Check; c != nil && c.Slot+1 > slots {
			slots = c.Slot + 1
		}
	}
	t.outc = make([]CheckOutcome, slots)
	t.meta = make([]stepTel, len(info.Steps))
	for i := range info.Steps {
		t.meta[i] = contStepTel(&info.Steps[i], &aux[i])
	}
	t.exits = make([]traceExit, len(info.Exits))
	for i := range info.Exits {
		e := &info.Exits[i]
		t.exits[i] = traceExit{
			kind:    e.Kind,
			rip:     e.RIP,
			dynamic: e.Dynamic,
			retired: e.Retired,
			cycles:  e.Cycles,
			step:    e.Step,
			self:    exitSelfTel(info, aux, e),
		}
		// Attribute the deopt reason once, at compile time. Fall and
		// loop exits keep control in compiled code and are not deopts;
		// a fault exit at a fused-check step is a trap (an aborting
		// detection), every other fault is a machine fault.
		switch e.Kind {
		case ExitSide:
			t.exits[i].deopt, t.exits[i].reason = true, DeoptSide
		case ExitDyn:
			t.exits[i].deopt, t.exits[i].reason = true, DeoptDyn
		case ExitHalt:
			t.exits[i].deopt, t.exits[i].reason = true, DeoptHalt
		case ExitFault:
			if info.Steps[e.Step].Check != nil {
				t.exits[i].deopt, t.exits[i].reason = true, DeoptTrap
			} else {
				t.exits[i].deopt, t.exits[i].reason = true, DeoptFault
			}
		}
	}
	for i := range t.exits {
		switch t.exits[i].kind {
		case ExitFall, ExitLoop, ExitDyn, ExitHalt:
			t.exits[i].batch = buildBatch(t, &t.exits[i])
		}
	}
	t.steps = make([]jstep, len(info.Steps))
	for i := range info.Steps {
		s := v.emitStep(t, info, aux, i)
		if s == nil {
			return nil
		}
		t.steps[i] = s
	}
	return t
}
