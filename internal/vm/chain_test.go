package vm_test

import (
	"testing"

	"redfat/internal/asm"
	"redfat/internal/heap"
	"redfat/internal/isa"
	"redfat/internal/mem"
	"redfat/internal/relf"
	"redfat/internal/rtlib"
	"redfat/internal/telemetry"
	"redfat/internal/vm"
)

// chainProgram builds a workload with every chain-edge shape: a loop
// (taken back-edge), a non-taken conditional (fall-through edge), direct
// calls/returns, and an indirect jump whose target alternates between two
// labels (exercising the one-entry BTB retarget path).
func chainProgram(b *asm.Builder) {
	b.Func("main")
	b.MovRI(isa.RAX, 0)
	b.MovRI(isa.RCX, 0)
	b.Label("loop")
	b.AluRI(isa.CMP, isa.RCX, 0)
	b.Jcc(isa.JE, "even") // alternates taken / not taken
	b.LoadAddr(isa.RDX, "odd", 0)
	b.Jmp("dispatch")
	b.Label("even")
	b.LoadAddr(isa.RDX, "evenbody", 0)
	b.Label("dispatch")
	// Indirect jump: the target register alternates every iteration.
	b.Emit(isa.Inst{Op: isa.JMP, Form: isa.FR, Reg: isa.RDX})
	b.Label("odd")
	b.AluRI(isa.ADD, isa.RAX, 3)
	b.Jmp("join")
	b.Label("evenbody")
	b.AluRI(isa.ADD, isa.RAX, 1)
	b.Label("join")
	b.AluRI(isa.XOR, isa.RCX, 1)
	b.AluRI(isa.ADD, isa.RBX, 1)
	b.AluRI(isa.CMP, isa.RBX, 400)
	b.Jcc(isa.JL, "loop")
	b.Ret()
}

// runChainVM executes the given binary with the given knobs and returns
// the VM plus its telemetry snapshot.
func runChainVM(t *testing.T, bin *relf.Binary, noChain bool) (*vm.VM, *telemetry.Snapshot) {
	t.Helper()
	m := mem.New()
	v := vm.New(m)
	v.MaxCycles = 100_000_000
	v.NoChain = noChain
	reg := telemetry.New()
	v.AttachTelemetry(reg, nil)
	if err := v.Load(bin, rtlib.LibC(heap.New(m), m)); err != nil {
		t.Fatalf("load: %v", err)
	}
	if err := v.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return v, reg.Snapshot()
}

// TestChainIdentityAndHits checks that chaining changes nothing
// guest-visible while absorbing nearly all block exits on a loop-heavy
// workload, and that the alternating indirect target keeps retargeting
// the BTB slot without misdirecting execution.
func TestChainIdentityAndHits(t *testing.T) {
	b := asm.NewBuilder(asm.Options{})
	chainProgram(b)
	bin, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	chained, chainTel := runChainVM(t, bin, false)
	plain, plainTel := runChainVM(t, bin, true)

	if chained.ExitCode != plain.ExitCode || chained.Cycles != plain.Cycles ||
		chained.Insts != plain.Insts {
		t.Fatalf("chain/no-chain divergence: exit %d/%d cycles %d/%d insts %d/%d",
			chained.ExitCode, plain.ExitCode, chained.Cycles, plain.Cycles,
			chained.Insts, plain.Insts)
	}
	// 200 even + 200 odd iterations: 200*1 + 200*3.
	if chained.ExitCode != 800 {
		t.Fatalf("exit = %d, want 800", chained.ExitCode)
	}
	hits := chainTel.Counters["vm.icache.chain.hits"]
	misses := chainTel.Counters["vm.icache.chain.misses"]
	if hits == 0 {
		t.Fatal("no chain hits on a loop-heavy workload")
	}
	// The alternating indirect jump defeats its BTB slot every iteration,
	// so misses stay proportional to iterations — but every static edge
	// (loop back-edge, conditionals, joins) must chain.
	if hits < misses {
		t.Errorf("chain hits %d < misses %d; static edges not chaining", hits, misses)
	}
	if got := plainTel.Counters["vm.icache.chain.hits"]; got != 0 {
		t.Errorf("NoChain run recorded %d chain hits", got)
	}
}

// TestChainFlushICache checks that FlushICache severs chained successors:
// after code is rewritten in place, execution must decode the new code,
// not follow a stale chain into the old blocks.
func TestChainFlushICache(t *testing.T) {
	b := asm.NewBuilder(asm.Options{})
	b.Func("main")
	b.MovRI(isa.RAX, 7)
	b.Ret()
	bin, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New()
	v := vm.New(m)
	v.MaxCycles = 1_000_000
	if err := v.Load(bin, rtlib.LibC(heap.New(m), m)); err != nil {
		t.Fatal(err)
	}
	entry := v.RIP
	if err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if v.ExitCode != 7 {
		t.Fatalf("first run exit = %d", v.ExitCode)
	}

	// Patch the MOV immediate in place (the text section is mapped r-x;
	// flip it writable for the patch), flush, and re-run.
	text := bin.Section(".text")
	m.Protect(text.Addr, uint64(len(text.Data)), mem.PermRW)
	// MOV r,imm encoding: find the imm bytes of "MOV RAX, 7" at entry.
	var buf [16]byte
	if err := m.ReadAt(entry, buf[:]); err != nil {
		t.Fatal(err)
	}
	patched := false
	for i := range buf {
		if buf[i] == 7 {
			if err := m.Store(entry+uint64(i), 1, 9); err != nil {
				t.Fatal(err)
			}
			patched = true
			break
		}
	}
	if !patched {
		t.Fatal("could not locate immediate to patch")
	}
	m.Protect(text.Addr, uint64(len(text.Data)), mem.PermRX)
	v.FlushICache()

	v.Halted = false
	v.RIP = entry
	v.Regs[isa.RSP] = relf.DefaultStackTop - 64
	if err := v.Mem.Store(v.Regs[isa.RSP]-8, 8, vm.ExitSentinel); err != nil {
		t.Fatal(err)
	}
	v.Regs[isa.RSP] -= 8
	if err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if v.ExitCode != 9 {
		t.Fatalf("post-flush exit = %d, want 9 (stale block or chain served)", v.ExitCode)
	}
}
