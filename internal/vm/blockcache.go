package vm

// The decoded basic-block cache: the VM's host-side fast path.
//
// The seed interpreter paid one map[uint64] lookup per retired guest
// instruction (the per-PC decode cache). The block cache replaces that
// with straight-line execution over predecoded runs: code is decoded once
// into blocks — maximal fall-through sequences ending at the first
// control transfer, TRAP patch site, or RTCALL — and Run executes a whole
// block with nothing but a slice index per instruction. Blocks are
// indexed by flat per-code-page tables (one pointer per page offset), so
// locating the next block after a branch costs a single-entry page-cache
// hit plus an array index in the common case.
//
// The cache is host-side only: cycle accounting, hook invocation order
// (TraceHook, MemHook, BlockHook), error reporting and the cycle-budget
// abort point are bit-identical to the legacy per-instruction path, which
// remains available behind VM.NoBlockCache for A/B validation.

import (
	"fmt"

	"redfat/internal/isa"
	"redfat/internal/mem"
)

// maxBlockInsts bounds eager decode-ahead so a pathological straight-line
// run cannot stall the first instruction of a block; longer runs simply
// chain into the next block.
const maxBlockInsts = 64

// pageOffMask extracts the page offset of an address.
const pageOffMask = mem.PageSize - 1

// block is one straight-line run of predecoded instructions.
type block struct {
	pcs   []uint64   // program counter of each instruction
	insts []isa.Inst // predecoded instructions, pcs-parallel
}

// codePage indexes the blocks that begin on one 4 KiB code page by page
// offset.
type codePage struct {
	blocks [mem.PageSize]*block
}

// endsBlock reports whether op terminates a straight-line block: control
// transfers, TRAP (patch-table redirection), and RTCALL (host handlers may
// rewrite RIP).
func endsBlock(op isa.Op) bool {
	return op.IsBranch() || op == isa.TRAP || op == isa.RTCALL
}

// blockAt returns the block starting at pc, building and caching it on
// first use.
func (v *VM) blockAt(pc uint64) (*block, error) {
	idx := pc >> mem.PageShift
	cp := v.bcPage
	if idx != v.bcPageIdx {
		cp = v.bcache[idx]
		if cp == nil {
			cp = &codePage{}
			v.bcache[idx] = cp
		}
		v.bcPageIdx, v.bcPage = idx, cp
	}
	b := cp.blocks[pc&pageOffMask]
	if b == nil {
		var err error
		if b, err = v.buildBlock(pc); err != nil {
			return nil, err
		}
		cp.blocks[pc&pageOffMask] = b
		v.nBlocks++
		v.nBlockInsts += len(b.insts)
	}
	return b, nil
}

// buildBlock decodes the straight-line run beginning at start. Fetch or
// decode failures after the first instruction end the block early rather
// than erroring: execution that actually falls through to the bad address
// reports the fault there, exactly as the legacy path would.
func (v *VM) buildBlock(start uint64) (*block, error) {
	b := &block{}
	pc := start
	for len(b.insts) < maxBlockInsts {
		var buf [isa.MaxInstLen]byte
		n := v.Mem.Fetch(pc, buf[:])
		if n == 0 {
			if len(b.insts) == 0 {
				return nil, &mem.Fault{Addr: pc, Exec: true}
			}
			break
		}
		in, err := isa.Decode(buf[:n])
		if err != nil {
			if len(b.insts) == 0 {
				return nil, fmt.Errorf("vm: at %#x: %w", pc, err)
			}
			break
		}
		if v.tel != nil {
			v.tel.icacheMiss.Inc()
		}
		b.pcs = append(b.pcs, pc)
		b.insts = append(b.insts, in)
		if endsBlock(in.Op) {
			break
		}
		pc += uint64(in.Len)
	}
	return b, nil
}

// runBlocks is Run's fast path: execute straight-line through cached
// blocks, re-entering the cache only at control transfers.
func (v *VM) runBlocks() error {
	for !v.Halted {
		b, err := v.blockAt(v.RIP)
		if err != nil {
			v.FlushTelemetry()
			return err
		}
		for i := 0; ; {
			if err := v.exec(b.pcs[i], &b.insts[i]); err != nil {
				v.FlushTelemetry()
				return err
			}
			if v.MaxCycles != 0 && v.Cycles > v.MaxCycles {
				if v.tel != nil {
					v.tel.cycleAborts.Inc()
				}
				v.FlushTelemetry()
				return &CycleLimitError{v.Cycles}
			}
			if v.Halted {
				v.FlushTelemetry()
				return nil
			}
			i++
			if i == len(b.insts) || v.RIP != b.pcs[i] {
				break // block done, or control left the fall-through path
			}
		}
	}
	v.FlushTelemetry()
	return nil
}
