package vm

// The decoded basic-block cache: the VM's host-side fast path.
//
// The seed interpreter paid one map[uint64] lookup per retired guest
// instruction (the per-PC decode cache). The block cache replaces that
// with straight-line execution over predecoded runs: code is decoded once
// into blocks — maximal fall-through sequences ending at the first
// control transfer, TRAP patch site, or RTCALL — and Run executes a whole
// block with nothing but a slice index per instruction. Blocks are
// indexed by flat per-code-page tables (one pointer per page offset), so
// locating the next block after a branch costs a single-entry page-cache
// hit plus an array index in the common case.
//
// Block chaining removes even that cost from the steady state: each block
// carries two successor slots — a fall-through slot (keyed by the fixed
// address after the block's last instruction) and a taken slot (a
// one-entry BTB keyed by the last observed branch target). On block exit
// the chain is consulted first, so straight-line and loop-heavy code
// never touches the block tables at all; only a changed indirect target
// or a cold edge falls back to the page-table walk, which then installs
// the chain for next time. Chains are pointers into the same cache the
// per-page tables index, so FlushICache invalidates both together (the
// tables and every chain die with the cache generation).
//
// The cache is host-side only: cycle accounting, hook invocation order
// (TraceHook, MemHook, BlockHook), error reporting and the cycle-budget
// abort point are bit-identical to the legacy per-instruction path, which
// remains available behind VM.NoBlockCache for A/B validation, with
// VM.NoChain ablating just the chaining layer.

import (
	"fmt"

	"redfat/internal/isa"
	"redfat/internal/mem"
	"redfat/internal/obs"
)

// maxBlockInsts bounds eager decode-ahead so a pathological straight-line
// run cannot stall the first instruction of a block; longer runs simply
// chain into the next block.
const maxBlockInsts = 64

// pageOffMask extracts the page offset of an address.
const pageOffMask = mem.PageSize - 1

// blockInst is one predecoded instruction with its program counter.
// Fusing the two into a single slice element keeps the hot execution
// loop to one bounds check and one sequential cache stream per
// instruction.
type blockInst struct {
	pc uint64
	in isa.Inst
}

// block is one straight-line run of predecoded instructions, plus the
// chain slots linking it to its observed successors.
type block struct {
	insts []blockInst // predecoded instructions in fall-through order

	fallPC uint64 // address after the last instruction (fall-through edge)
	fall   *block // successor when control falls through (nil until chained)

	takenPC uint64 // last observed non-fall-through exit target
	taken   *block // its block (a one-entry BTB for indirect exits)

	// Superblock tier state: hot counts dispatches to this block as a
	// potential trace root; trace is the compiled superblock once the
	// hotness threshold is crossed; noTrace pins the block to the
	// interpreter after a failed compilation attempt. All three die with
	// the cache generation on FlushICache.
	hot     uint32
	noTrace bool
	trace   *trace
}

// codePage indexes the blocks that begin on one 4 KiB code page by page
// offset.
type codePage struct {
	blocks [mem.PageSize]*block
}

// endsBlock reports whether op terminates a straight-line block: control
// transfers, TRAP (patch-table redirection), and RTCALL (host handlers may
// rewrite RIP).
func endsBlock(op isa.Op) bool {
	return op.IsBranch() || op == isa.TRAP || op == isa.RTCALL
}

// blockAt returns the block starting at pc, building and caching it on
// first use.
func (v *VM) blockAt(pc uint64) (*block, error) {
	idx := pc >> mem.PageShift
	cp := v.bcPage
	if idx != v.bcPageIdx {
		cp = v.bcache[idx]
		if cp == nil {
			cp = &codePage{}
			v.bcache[idx] = cp
		}
		v.bcPageIdx, v.bcPage = idx, cp
	}
	b := cp.blocks[pc&pageOffMask]
	if b == nil {
		var err error
		if b, err = v.buildBlock(pc); err != nil {
			return nil, err
		}
		cp.blocks[pc&pageOffMask] = b
		v.nBlocks++
		v.nBlockInsts += len(b.insts)
		v.Flight.Record(obs.EvBlockEntry, 0, pc, 1)
	} else {
		// Table walk on a cold or re-targeted edge (chain hits never get
		// here, so this stays off the per-instruction fast path).
		v.Flight.Record(obs.EvBlockEntry, 0, pc, 0)
	}
	return b, nil
}

// buildBlock decodes the straight-line run beginning at start. Fetch or
// decode failures after the first instruction end the block early rather
// than erroring: execution that actually falls through to the bad address
// reports the fault there, exactly as the legacy path would.
func (v *VM) buildBlock(start uint64) (*block, error) {
	b := &block{}
	pc := start
	for len(b.insts) < maxBlockInsts {
		var buf [isa.MaxInstLen]byte
		n := v.Mem.Fetch(pc, buf[:])
		if n == 0 {
			if len(b.insts) == 0 {
				return nil, &mem.Fault{Addr: pc, Exec: true}
			}
			break
		}
		in, err := isa.Decode(buf[:n])
		if err != nil {
			if len(b.insts) == 0 {
				return nil, fmt.Errorf("vm: at %#x: %w", pc, err)
			}
			break
		}
		if v.tel != nil {
			v.tel.icacheMiss.Inc()
		}
		b.insts = append(b.insts, blockInst{pc: pc, in: in})
		pc += uint64(in.Len)
		if endsBlock(in.Op) {
			break
		}
	}
	b.fallPC = pc
	return b, nil
}

// runBlocks is Run's fast path: execute straight-line through cached
// blocks, following chained successors on block exit and touching the
// block tables only on cold or re-targeted edges.
func (v *VM) runBlocks() error {
	jitOK := v.jitEnabled()
	var b *block
	for !v.Halted {
		if b == nil {
			nb, err := v.blockAt(v.RIP)
			if err != nil {
				v.FlushTelemetry()
				return err
			}
			b = nb
		}
		// Superblock tier: once this block is hot, execute the compiled
		// trace rooted here instead of interpreting. A nil exit means
		// entry was refused (cycle budget too tight for a worst-case
		// iteration) and the block is interpreted this round so the
		// abort fires at the exact instruction.
		if jitOK {
			if t := v.jitTrace(b); t != nil {
				e, err := v.runTrace(t)
				if err != nil {
					v.FlushTelemetry()
					return err
				}
				if e != nil {
					if v.Halted {
						v.FlushTelemetry()
						return nil
					}
					if e.next != nil && e.nextPC == v.RIP {
						b = e.next
						continue
					}
					nb, err := v.blockAt(v.RIP)
					if err != nil {
						v.FlushTelemetry()
						return err
					}
					e.nextPC, e.next = v.RIP, nb
					b = nb
					continue
				}
			}
		}
		for i := 0; ; {
			bi := &b.insts[i]
			if err := v.exec(bi.pc, &bi.in); err != nil {
				v.FlushTelemetry()
				return err
			}
			if v.MaxCycles != 0 && v.Cycles > v.MaxCycles {
				v.Flight.Record(obs.EvBudgetPoll, 0, v.RIP, v.Cycles)
				if v.tel != nil {
					v.tel.cycleAborts.Inc()
				}
				v.FlushTelemetry()
				return &CycleLimitError{v.Cycles}
			}
			if v.Halted {
				v.FlushTelemetry()
				return nil
			}
			i++
			if i == len(b.insts) {
				break
			}
			// Mid-block instructions cannot transfer control: blocks end
			// at the first branch/TRAP/RTCALL, and HLT trips the Halted
			// check above. So RIP here is always insts[i].pc — no re-check.
		}
		// Block exit: follow the chain if the observed target matches.
		rip := v.RIP
		if !v.NoChain {
			if rip == b.fallPC && b.fall != nil {
				b = b.fall
				if v.tel != nil {
					v.tel.chainHits.Inc()
				}
				continue
			}
			if rip == b.takenPC && b.taken != nil {
				b = b.taken
				if v.tel != nil {
					v.tel.chainHits.Inc()
				}
				continue
			}
		}
		nb, err := v.blockAt(rip)
		if err != nil {
			v.FlushTelemetry()
			return err
		}
		if !v.NoChain {
			if v.tel != nil {
				v.tel.chainMisses.Inc()
			}
			if rip == b.fallPC {
				b.fall = nb
			} else {
				b.takenPC, b.taken = rip, nb
			}
		}
		b = nb
	}
	v.FlushTelemetry()
	return nil
}
