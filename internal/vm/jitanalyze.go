package vm

// Phase one of the superblock compiler: derive a declarative TraceInfo
// from a chained block sequence. analyzeTrace walks the chain rooted at
// a hot block, mirrors the interpreter's cost model per instruction
// (including the partial charges of every fault point), predicts
// conditional branches from the chain slots, and then runs two
// optimization analyses over the straight line:
//
//   - markDeadFlags: per-flag backward liveness. A step's condition-flag
//     update is elided when no flag it may write is observed (by a
//     conditional jump or PUSHF) before being unconditionally
//     overwritten, on any path that materializes flags. Flags are forced
//     live at the trace end and at every side exit — those resume in the
//     interpreter — but not at fault exits, where the run terminates and
//     flags are unobservable (nothing outside the VM reads them).
//
//   - elideChecks: available-checks within the trace. A fused check site
//     whose access plan matches an earlier site's, with no intervening
//     write to the plan's registers and no intervening guest store, is
//     downgraded to forwarding the leader's outcome.
//
// Everything the phase decides is recorded in TraceInfo/stepAux; the
// emitter compiles from the record alone, and internal/verify re-derives
// the record independently (DESIGN.md §14).

import "redfat/internal/isa"

// Per-flag liveness masks. These are local to the JIT (the cfg package
// has a coarser whole-program notion that treats calls as reading all
// flags; inside a trace every successor is explicit, so the JIT can be
// exact). fAll is the conservative "everything live" element.
const (
	fZ uint8 = 1 << iota
	fS
	fC
	fO

	fAll = fZ | fS | fC | fO
)

// jitCondFlags returns the flags a conditional jump reads.
func jitCondFlags(op isa.Op) uint8 {
	switch op {
	case isa.JE, isa.JNE:
		return fZ
	case isa.JL, isa.JGE:
		return fS | fO
	case isa.JLE, isa.JG:
		return fZ | fS | fO
	case isa.JB, isa.JAE:
		return fC
	case isa.JBE, isa.JA:
		return fC | fZ
	case isa.JS, isa.JNS:
		return fS
	case isa.JO, isa.JNO:
		return fO
	}
	return 0
}

// jitFlagsRead returns the flags an on-trace instruction observes.
// CALL/TRAP/RTCALL read nothing here: their on-trace successors are
// explicit steps, and off-trace exits force full liveness separately.
func jitFlagsRead(in *isa.Inst) uint8 {
	if in.Op.IsCondJump() {
		return jitCondFlags(in.Op)
	}
	if in.Op == isa.PUSHF {
		return fAll
	}
	return 0
}

// jitFlagsKilled returns the flags an instruction unconditionally
// overwrites on its continue path.
func jitFlagsKilled(in *isa.Inst) uint8 {
	switch in.Op {
	case isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR,
		isa.CMP, isa.TEST, isa.IMUL, isa.NEG, isa.POPF:
		return fAll
	case isa.INC, isa.DEC:
		return fZ | fS | fO // CF preserved (x86 semantics)
	case isa.SHL, isa.SHR, isa.SAR:
		// A shift writes flags only when the masked count is nonzero;
		// that is static for immediate counts, unknowable for CL.
		if in.Form == isa.FRI && uint64(in.Imm)&63 != 0 {
			return fAll
		}
		return 0
	}
	return 0
}

// jitFlagsMayWrite returns the flags an instruction might write — the
// kill set, except that a CL-count shift may write without being
// guaranteed to.
func jitFlagsMayWrite(in *isa.Inst) uint8 {
	if in.Op == isa.SHL || in.Op == isa.SHR || in.Op == isa.SAR {
		if in.Form == isa.FRI {
			if uint64(in.Imm)&63 != 0 {
				return fAll
			}
			return 0
		}
		return fAll
	}
	return jitFlagsKilled(in)
}

// regBit maps a register to its bit in a written-registers mask.
func regBit(r isa.Reg) uint32 {
	if r >= isa.NumRegs {
		return 0
	}
	return 1 << r
}

// jitRegsWritten returns the mask of general-purpose registers an
// instruction writes, for check-elision invalidation.
func jitRegsWritten(in *isa.Inst) uint32 {
	switch in.Op {
	case isa.MOV, isa.MOVABS, isa.MOVZX, isa.MOVSX,
		isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.IMUL:
		switch in.Form {
		case isa.FRR, isa.FRI, isa.FRM:
			return regBit(in.Reg)
		}
		return 0
	case isa.CMP, isa.TEST, isa.NOP, isa.JMP, isa.TRAP, isa.HLT, isa.RTCALL:
		return 0
	case isa.LEA:
		return regBit(in.Reg)
	case isa.XCHG:
		return regBit(in.Reg) | regBit(in.Reg2)
	case isa.PUSH, isa.PUSHF, isa.CALL:
		return regBit(isa.RSP)
	case isa.POP:
		if in.Form == isa.FR {
			return regBit(isa.RSP) | regBit(in.Reg)
		}
		return regBit(isa.RSP)
	case isa.POPF, isa.RET:
		return regBit(isa.RSP)
	case isa.INC, isa.DEC, isa.NEG, isa.NOT:
		if in.Form == isa.FR {
			return regBit(in.Reg)
		}
		return 0
	case isa.SHL, isa.SHR, isa.SAR:
		return regBit(in.Reg)
	case isa.UDIV, isa.IDIV:
		return regBit(isa.RAX) | regBit(isa.RDX)
	case isa.CQO:
		return regBit(isa.RDX)
	}
	return 0
}

// jitStoresMem reports whether an instruction can store to guest memory
// (isa.Inst.Writes plus the implicit stack stores it does not model).
func jitStoresMem(in *isa.Inst) bool {
	switch in.Op {
	case isa.PUSH, isa.PUSHF, isa.CALL:
		return true
	}
	return in.Writes()
}

// stepAux is the emitter-facing side channel of one analyzed step: data
// the closures need that is not part of the certifiable TraceInfo
// contract (the resolved check plan; exit-id bookkeeping).
type stepAux struct {
	plan    *JITCheck // resolved plan of a fused check step
	onTaken bool      // conditional branch predicted taken
	exits   []int     // 1-based exit ids of this step, in chronological order
	contID  int       // terminal exit id returned on the last step's continue path
}

// traceBuilder accumulates the TraceInfo during the chain walk.
type traceBuilder struct {
	v     *VM
	info  *TraceInfo
	aux   []stepAux
	base  uint64 // CostInst + PerInstOverhead
	entry uint64
}

// addStep appends one step and its aux record, returning the step index.
func (tb *traceBuilder) addStep(pc uint64, in *isa.Inst, next, cost uint64) int {
	tb.info.Steps = append(tb.info.Steps, TraceStep{
		PC: pc, Inst: *in, Next: next, Cost: cost,
	})
	tb.aux = append(tb.aux, stepAux{contID: 0})
	return len(tb.info.Steps) - 1
}

// addExit appends one exit for step. Cycles temporarily holds only the
// exiting step's own charge on that path; finalize adds the prefix sum
// of the preceding steps.
func (tb *traceBuilder) addExit(step int, kind ExitKind, stage uint8, rip uint64, dyn bool, extra uint64) int {
	tb.info.Exits = append(tb.info.Exits, TraceExit{
		Step: step, Kind: kind, Stage: stage, RIP: rip, Dynamic: dyn,
		Retired: uint64(step + 1), Cycles: extra,
	})
	id := len(tb.info.Exits)
	tb.aux[step].exits = append(tb.aux[step].exits, id)
	return id
}

// terminate ends the trace with a fall exit resuming at rip (always the
// last step's static successor).
func (tb *traceBuilder) terminate(rip uint64) {
	last := len(tb.info.Steps) - 1
	tb.aux[last].contID = tb.addExit(last, ExitFall, 0, rip, false, tb.info.Steps[last].Cost)
}

// loopExit ends the trace with a back edge to its own entry.
func (tb *traceBuilder) loopExit() {
	last := len(tb.info.Steps) - 1
	tb.aux[last].contID = tb.addExit(last, ExitLoop, 0, tb.entry, false, tb.info.Steps[last].Cost)
}

// step analyzes one instruction, mirroring the interpreter's cost and
// fault structure exactly. It reports ok=false when the instruction
// cannot be compiled (the trace then ends just before it) and done=true
// when the instruction itself terminates the trace (dynamic control
// flow or halt).
func (tb *traceBuilder) step(b *block, pc uint64, in *isa.Inst) (ok, done bool) {
	v := tb.v
	base := tb.base
	next := pc + uint64(in.Len)

	switch in.Op {
	case isa.NOP, isa.CQO, isa.LPAD:
		tb.addStep(pc, in, next, base)

	case isa.XCHG:
		if in.Form != isa.FRR {
			return false, false
		}
		tb.addStep(pc, in, next, base)

	case isa.LEA:
		tb.addStep(pc, in, next, base)

	case isa.MOV, isa.MOVABS, isa.MOVZX, isa.MOVSX,
		isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR,
		isa.CMP, isa.TEST, isa.IMUL:
		var mul uint64
		if in.Op == isa.IMUL {
			mul = CostMul
		}
		switch in.Form {
		case isa.FRR, isa.FRI:
			tb.addStep(pc, in, next, base+mul)
		case isa.FRM:
			s := tb.addStep(pc, in, next, base+CostMem+mul)
			// The load charges CostMem before faulting; IMUL's CostMul
			// is charged by the compute after the load, so a load fault
			// excludes it.
			tb.addExit(s, ExitFault, 1, pc, false, base+CostMem)
		case isa.FMR, isa.FMI:
			switch in.Op {
			case isa.MOV: // plain store
				s := tb.addStep(pc, in, next, base+CostMem)
				tb.addExit(s, ExitFault, 1, pc, false, base+CostMem)
			case isa.CMP, isa.TEST: // load only
				s := tb.addStep(pc, in, next, base+CostMem)
				tb.addExit(s, ExitFault, 1, pc, false, base+CostMem)
			case isa.MOVABS, isa.MOVZX, isa.MOVSX:
				return false, false
			default: // read-modify-write
				s := tb.addStep(pc, in, next, base+2*CostMem+mul)
				tb.addExit(s, ExitFault, 1, pc, false, base+CostMem)
				// Store fault: load and compute (incl. CostMul) already
				// charged, plus the store's own CostMem.
				tb.addExit(s, ExitFault, 2, pc, false, base+2*CostMem+mul)
			}
		default:
			return false, false
		}

	case isa.PUSH:
		switch in.Form {
		case isa.FR:
			s := tb.addStep(pc, in, next, base+CostMem)
			// push itself is a raw store; the explicit CostMem is only
			// charged after it succeeds.
			tb.addExit(s, ExitFault, 1, pc, false, base)
		case isa.FM:
			s := tb.addStep(pc, in, next, base+2*CostMem)
			tb.addExit(s, ExitFault, 1, pc, false, base+CostMem) // load fault
			tb.addExit(s, ExitFault, 2, pc, false, base+CostMem) // push fault
		default:
			return false, false
		}

	case isa.PUSHF:
		s := tb.addStep(pc, in, next, base+CostMem)
		tb.addExit(s, ExitFault, 1, pc, false, base)

	case isa.POP:
		switch in.Form {
		case isa.FR:
			s := tb.addStep(pc, in, next, base+CostMem)
			tb.addExit(s, ExitFault, 1, pc, false, base) // raw pop fault
		case isa.FM:
			s := tb.addStep(pc, in, next, base+2*CostMem)
			tb.addExit(s, ExitFault, 1, pc, false, base) // raw pop fault
			// Store fault: pop's explicit CostMem plus the store's.
			tb.addExit(s, ExitFault, 2, pc, false, base+2*CostMem)
		default:
			return false, false
		}

	case isa.POPF:
		s := tb.addStep(pc, in, next, base+CostMem)
		tb.addExit(s, ExitFault, 1, pc, false, base)

	case isa.INC, isa.DEC, isa.NEG, isa.NOT:
		if in.Form == isa.FR {
			tb.addStep(pc, in, next, base)
			break
		}
		s := tb.addStep(pc, in, next, base+2*CostMem)
		tb.addExit(s, ExitFault, 1, pc, false, base+CostMem)
		tb.addExit(s, ExitFault, 2, pc, false, base+2*CostMem)

	case isa.SHL, isa.SHR, isa.SAR:
		tb.addStep(pc, in, next, base)

	case isa.UDIV, isa.IDIV:
		s := tb.addStep(pc, in, next, base+CostDiv)
		tb.addExit(s, ExitFault, 1, pc, false, base+CostDiv)

	case isa.HLT:
		s := tb.addStep(pc, in, next, base)
		tb.aux[s].contID = tb.addExit(s, ExitHalt, 0, next, false, base)
		return true, true

	case isa.TRAP:
		target, found := v.PatchTable[pc]
		if !found {
			return false, false // executing it would be a VM error
		}
		tb.addStep(pc, in, target, base+CostTrap)

	case isa.JMP:
		switch in.Form {
		case isa.FRel8, isa.FRel32:
			tb.addStep(pc, in, next+uint64(in.Imm), base+CostBranch)
		case isa.FR:
			if v.LPADCheck || v.IndirectTargets != nil || v.IndirectHook != nil {
				// Landing-pad enforcement, the escape monitor and the
				// indirect-transfer observation hook all live in the
				// interpreter's checkIndirect; end the trace before
				// the indirect branch so it retires there. Host-side
				// only: the trace boundary never changes guest cycles.
				return false, false
			}
			s := tb.addStep(pc, in, 0, base+CostBranch)
			tb.aux[s].contID = tb.addExit(s, ExitDyn, 0, 0, true, base+CostBranch)
			return true, true
		case isa.FM:
			if v.LPADCheck || v.IndirectTargets != nil || v.IndirectHook != nil {
				return false, false
			}
			s := tb.addStep(pc, in, 0, base+CostMem+CostBranch)
			tb.addExit(s, ExitFault, 1, pc, false, base+CostMem)
			tb.aux[s].contID = tb.addExit(s, ExitDyn, 0, 0, true, base+CostMem+CostBranch)
			return true, true
		default:
			return false, false
		}

	case isa.CALL:
		switch in.Form {
		case isa.FRel32:
			s := tb.addStep(pc, in, next+uint64(in.Imm), base+CostCall+CostBranch)
			tb.addExit(s, ExitFault, 1, pc, false, base+CostCall) // push fault
		case isa.FR:
			if v.LPADCheck || v.IndirectTargets != nil || v.IndirectHook != nil {
				return false, false
			}
			s := tb.addStep(pc, in, 0, base+CostCall+CostBranch)
			tb.addExit(s, ExitFault, 1, pc, false, base+CostCall)
			tb.aux[s].contID = tb.addExit(s, ExitDyn, 0, 0, true, base+CostCall+CostBranch)
			return true, true
		case isa.FM:
			if v.LPADCheck || v.IndirectTargets != nil || v.IndirectHook != nil {
				return false, false
			}
			s := tb.addStep(pc, in, 0, base+CostCall+CostMem+CostBranch)
			tb.addExit(s, ExitFault, 1, pc, false, base+CostCall+CostMem) // load fault
			tb.addExit(s, ExitFault, 2, pc, false, base+CostCall+CostMem) // push fault
			tb.aux[s].contID = tb.addExit(s, ExitDyn, 0, 0, true, base+CostCall+CostMem+CostBranch)
			return true, true
		default:
			return false, false
		}

	case isa.RET:
		s := tb.addStep(pc, in, 0, base+CostCall+CostBranch)
		tb.addExit(s, ExitFault, 1, pc, false, base+CostCall) // raw pop fault
		// Exit sentinel: the interpreter halts with RIP still at the
		// RET itself (it returns before updating RIP).
		tb.addExit(s, ExitHalt, 0, pc, false, base+CostCall)
		tb.aux[s].contID = tb.addExit(s, ExitDyn, 0, 0, true, base+CostCall+CostBranch)
		return true, true

	case isa.RTCALL:
		if v.InlineCheck == nil {
			return false, false
		}
		idx, arg := SplitRTCallImm(in.Imm)
		plan := v.InlineCheck(v, pc, idx, arg)
		if plan == nil {
			return false, false // not an instrumented check: stay in tier 0
		}
		s := tb.addStep(pc, in, next, base)
		tb.info.Steps[s].Check = &TraceCheck{
			Arg: arg, ImportIdx: idx, Leader: -1,
			BaseReg: plan.BaseReg, IndexReg: plan.IndexReg,
			Scale: plan.Scale, Seg: plan.Seg,
			StaticOff: plan.StaticOff, Length: plan.Length,
			TryLowFat: plan.TryLowFat, SizeCheck: plan.SizeCheck,
			Profile: plan.Profile, MaxCost: plan.MaxCost,
		}
		tb.aux[s].plan = plan
		// An aborting detection (or corrupt-meta error) terminates the
		// run; the handler's dynamic cycles are charged by the closure.
		tb.addExit(s, ExitFault, 1, next, false, base)

	default:
		if !in.Op.IsCondJump() {
			return false, false
		}
		tt := next + uint64(in.Imm)
		var onTaken bool
		switch {
		case tt == tb.entry:
			onTaken = true // loop back edge
		case b.taken != nil && b.takenPC == tt:
			onTaken = true // chain says taken
		case next == tb.entry:
			onTaken = false
		case b.fall != nil:
			onTaken = false // chain says fall-through
		default:
			return false, false // no prediction signal: end the trace here
		}
		if onTaken {
			s := tb.addStep(pc, in, tt, base+CostBranch)
			tb.aux[s].onTaken = true
			tb.addExit(s, ExitSide, 0, next, false, base)
		} else {
			s := tb.addStep(pc, in, next, base)
			tb.addExit(s, ExitSide, 0, tt, false, base+CostBranch)
		}
	}
	return true, false
}

// analyzeTrace derives the compilation plan for the trace rooted at
// root, or nil when the trace is not worth compiling (too short, or its
// first instruction is unsupported).
func (v *VM) analyzeTrace(root *block) (*TraceInfo, []stepAux) {
	if len(root.insts) == 0 {
		return nil, nil
	}
	entry := root.insts[0].pc
	tb := &traceBuilder{
		v:     v,
		info:  &TraceInfo{EntryPC: entry, Overhead: v.PerInstOverhead},
		base:  CostInst + v.PerInstOverhead,
		entry: entry,
	}
	b := root
walk:
	for {
		for i := range b.insts {
			bi := &b.insts[i]
			if len(tb.info.Steps) >= maxTraceInsts {
				tb.terminate(bi.pc)
				break walk
			}
			ok, done := tb.step(b, bi.pc, &bi.in)
			if !ok {
				if len(tb.info.Steps) == 0 {
					return nil, nil
				}
				tb.terminate(bi.pc)
				break walk
			}
			if done {
				break walk
			}
		}
		succ := tb.info.Steps[len(tb.info.Steps)-1].Next
		if succ == entry {
			tb.loopExit()
			break walk
		}
		switch {
		case b.fall != nil && succ == b.fallPC:
			b = b.fall
		case b.taken != nil && succ == b.takenPC:
			b = b.taken
		default:
			tb.terminate(succ)
			break walk
		}
	}
	if len(tb.info.Steps) < minTraceInsts {
		return nil, nil
	}
	markDeadFlags(tb.info, tb.aux)
	elideChecks(tb.info, tb.aux)
	finalizeCosts(tb.info)
	return tb.info, tb.aux
}

// markDeadFlags runs per-flag backward liveness over the trace and sets
// FlagsElided on steps whose entire may-write set is dead. Liveness is
// forced to all-live after the last step and after any step with a side
// exit (both resume in the interpreter with materialized flags); fault
// exits terminate the run and do not force liveness.
func markDeadFlags(info *TraceInfo, aux []stepAux) {
	sideAt := make([]bool, len(info.Steps))
	for i := range info.Exits {
		if info.Exits[i].Kind == ExitSide {
			sideAt[info.Exits[i].Step] = true
		}
	}
	live := fAll
	for i := len(info.Steps) - 1; i >= 0; i-- {
		st := &info.Steps[i]
		if i == len(info.Steps)-1 || sideAt[i] {
			live = fAll
		}
		if mw := jitFlagsMayWrite(&st.Inst); mw != 0 && live&mw == 0 {
			st.FlagsElided = true
		}
		live = (live &^ jitFlagsKilled(&st.Inst)) | jitFlagsRead(&st.Inst)
	}
}

// elideChecks runs available-checks over the trace: a later site with a
// plan identical to a still-valid leader forwards the leader's outcome.
// A leader dies when any plan register is overwritten or any guest
// store occurs (the metadata load could change).
func elideChecks(info *TraceInfo, aux []stepAux) {
	var leaders []int
	slots := 0
	for i := range info.Steps {
		st := &info.Steps[i]
		if c := st.Check; c != nil {
			p := aux[i].plan
			elided := false
			for _, l := range leaders {
				if aux[l].plan.samePlan(p) {
					c.Elided, c.Leader, c.Slot = true, l, info.Steps[l].Check.Slot
					elided = true
					break
				}
			}
			if !elided {
				c.Slot = slots
				slots++
				leaders = append(leaders, i)
			}
			continue
		}
		if jitStoresMem(&st.Inst) {
			leaders = leaders[:0]
			continue
		}
		if regs := jitRegsWritten(&st.Inst); regs != 0 {
			kept := leaders[:0]
			for _, l := range leaders {
				p := aux[l].plan
				if regBit(p.BaseReg)&regs == 0 && regBit(p.IndexReg)&regs == 0 {
					kept = append(kept, l)
				}
			}
			leaders = kept
		}
	}
}

// finalizeCosts turns per-exit step charges into absolute path totals
// and computes MaxCost, the worst-case cycles one full iteration can
// charge (static per-step maxima plus every check's dynamic bound).
func finalizeCosts(info *TraceInfo) {
	n := len(info.Steps)
	stepStart := make([]uint64, n+1)
	perStepMax := make([]uint64, n)
	for i := range info.Steps {
		stepStart[i+1] = stepStart[i] + info.Steps[i].Cost
		perStepMax[i] = info.Steps[i].Cost
	}
	for i := range info.Exits {
		e := &info.Exits[i]
		if e.Cycles > perStepMax[e.Step] {
			perStepMax[e.Step] = e.Cycles
		}
		e.Cycles += stepStart[e.Step]
	}
	var max uint64
	for i := range info.Steps {
		max += perStepMax[i]
		if c := info.Steps[i].Check; c != nil {
			max += c.MaxCost
		}
	}
	info.MaxCost = max
}
