package vm_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"redfat/internal/asm"
	"redfat/internal/heap"
	"redfat/internal/isa"
	"redfat/internal/mem"
	"redfat/internal/rtlib"
	"redfat/internal/vm"
)

// evalCond runs cmp a, b followed by the given conditional jump and
// reports whether the jump was taken (guest-truth).
func evalCond(t *testing.T, op isa.Op, a, b uint64) bool {
	t.Helper()
	bld := asm.NewBuilder(asm.Options{})
	bld.Func("main")
	bld.MovRI(isa.RAX, 0)
	bld.Emit(isa.Inst{Op: isa.MOVABS, Form: isa.FRI, Reg: isa.RBX, Imm: int64(a)})
	bld.Emit(isa.Inst{Op: isa.MOVABS, Form: isa.FRI, Reg: isa.RCX, Imm: int64(b)})
	bld.AluRR(isa.CMP, isa.RBX, isa.RCX)
	bld.Jcc(op, "taken")
	bld.Ret()
	bld.Label("taken")
	bld.MovRI(isa.RAX, 1)
	bld.Ret()
	bin, err := bld.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New()
	v := vm.New(m)
	if err := v.Load(bin, rtlib.LibC(heap.New(m), m)); err != nil {
		t.Fatal(err)
	}
	if err := v.Run(); err != nil {
		t.Fatal(err)
	}
	return v.ExitCode == 1
}

// TestQuickConditionSemantics: every conditional jump after cmp a, b
// agrees with the Go reference comparison, for random 64-bit operands.
func TestQuickConditionSemantics(t *testing.T) {
	refs := map[isa.Op]func(a, b uint64) bool{
		isa.JE:  func(a, b uint64) bool { return a == b },
		isa.JNE: func(a, b uint64) bool { return a != b },
		isa.JL:  func(a, b uint64) bool { return int64(a) < int64(b) },
		isa.JLE: func(a, b uint64) bool { return int64(a) <= int64(b) },
		isa.JG:  func(a, b uint64) bool { return int64(a) > int64(b) },
		isa.JGE: func(a, b uint64) bool { return int64(a) >= int64(b) },
		isa.JB:  func(a, b uint64) bool { return a < b },
		isa.JBE: func(a, b uint64) bool { return a <= b },
		isa.JA:  func(a, b uint64) bool { return a > b },
		isa.JAE: func(a, b uint64) bool { return a >= b },
		isa.JS:  func(a, b uint64) bool { return int64(a-b) < 0 },
		isa.JNS: func(a, b uint64) bool { return int64(a-b) >= 0 },
	}
	r := rand.New(rand.NewSource(77))
	interesting := []uint64{0, 1, ^uint64(0), 1 << 63, 1<<63 - 1, 42}
	sample := func() uint64 {
		if r.Intn(2) == 0 {
			return interesting[r.Intn(len(interesting))]
		}
		return r.Uint64()
	}
	for op, ref := range refs {
		op, ref := op, ref
		f := func() bool {
			a, b := sample(), sample()
			got := evalCond(t, op, a, b)
			want := ref(a, b)
			if got != want {
				t.Logf("%v with a=%#x b=%#x: guest %v, reference %v", op, a, b, got, want)
			}
			return got == want
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Errorf("%v: %v", op, err)
		}
	}
}

// TestQuickArithmeticSemantics: ADD/SUB/IMUL/AND/OR/XOR results match the
// Go reference for random operands.
func TestQuickArithmeticSemantics(t *testing.T) {
	ops := map[isa.Op]func(a, b uint64) uint64{
		isa.ADD:  func(a, b uint64) uint64 { return a + b },
		isa.SUB:  func(a, b uint64) uint64 { return a - b },
		isa.AND:  func(a, b uint64) uint64 { return a & b },
		isa.OR:   func(a, b uint64) uint64 { return a | b },
		isa.XOR:  func(a, b uint64) uint64 { return a ^ b },
		isa.IMUL: func(a, b uint64) uint64 { return uint64(int64(a) * int64(b)) },
	}
	r := rand.New(rand.NewSource(78))
	for op, ref := range ops {
		for i := 0; i < 40; i++ {
			a, b := r.Uint64(), r.Uint64()
			bld := asm.NewBuilder(asm.Options{})
			bld.Func("main")
			bld.Emit(isa.Inst{Op: isa.MOVABS, Form: isa.FRI, Reg: isa.RAX, Imm: int64(a)})
			bld.Emit(isa.Inst{Op: isa.MOVABS, Form: isa.FRI, Reg: isa.RBX, Imm: int64(b)})
			bld.AluRR(op, isa.RAX, isa.RBX)
			bld.Ret()
			bin, err := bld.Build()
			if err != nil {
				t.Fatal(err)
			}
			m := mem.New()
			v := vm.New(m)
			if err := v.Load(bin, rtlib.LibC(heap.New(m), m)); err != nil {
				t.Fatal(err)
			}
			if err := v.Run(); err != nil {
				t.Fatal(err)
			}
			if want := ref(a, b); v.ExitCode != want {
				t.Fatalf("%v(%#x, %#x) = %#x, want %#x", op, a, b, v.ExitCode, want)
			}
		}
	}
}

// TestQuickShiftSemantics: shifts by immediate match Go references.
func TestQuickShiftSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(79))
	for i := 0; i < 120; i++ {
		a := r.Uint64()
		count := int64(r.Intn(64))
		var op isa.Op
		var want uint64
		switch i % 3 {
		case 0:
			op, want = isa.SHL, a<<count
		case 1:
			op, want = isa.SHR, a>>count
		case 2:
			op, want = isa.SAR, uint64(int64(a)>>count)
		}
		bld := asm.NewBuilder(asm.Options{})
		bld.Func("main")
		bld.Emit(isa.Inst{Op: isa.MOVABS, Form: isa.FRI, Reg: isa.RAX, Imm: int64(a)})
		bld.Shift(op, isa.RAX, count)
		bld.Ret()
		bin, err := bld.Build()
		if err != nil {
			t.Fatal(err)
		}
		m := mem.New()
		v := vm.New(m)
		if err := v.Load(bin, rtlib.LibC(heap.New(m), m)); err != nil {
			t.Fatal(err)
		}
		if err := v.Run(); err != nil {
			t.Fatal(err)
		}
		if v.ExitCode != want {
			t.Fatalf("%v(%#x, %d) = %#x, want %#x", op, a, count, v.ExitCode, want)
		}
	}
}

// TestSubWidthFlagSemantics: flags for sub-width memory compares are
// computed at the access width (a cmpb loop must terminate).
func TestSubWidthFlagSemantics(t *testing.T) {
	bld := asm.NewBuilder(asm.Options{})
	bld.GlobalU64("data", 0x00FF_0000_0000_0080) // byte 0 = 0x80, byte 6 = 0xFF
	bld.Func("main")
	bld.MovRI(isa.RAX, 0)
	bld.LoadAddr(isa.RBX, "data", 0)
	// cmpb $0x80, (%rbx): equal at byte width even though the 64-bit
	// word differs.
	bld.Emit(isa.Inst{Op: isa.CMP, Form: isa.FMI, Size: 1, Imm: -128, // 0x80 sign-extended
		Mem: isa.Mem{Base: isa.RBX, Index: isa.RegNone, Scale: 1}})
	bld.Jcc(isa.JE, "eq")
	bld.Ret()
	bld.Label("eq")
	bld.MovRI(isa.RAX, 1)
	bld.Ret()
	bin, err := bld.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New()
	v := vm.New(m)
	if err := v.Load(bin, rtlib.LibC(heap.New(m), m)); err != nil {
		t.Fatal(err)
	}
	if err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if v.ExitCode != 1 {
		t.Error("byte-width compare did not match at byte width")
	}
}

func TestGuestFuncTransfer(t *testing.T) {
	// vm.GuestFunc is the PLT mechanism for cross-module calls: verify
	// the return path lands after the RTCALL.
	bld := asm.NewBuilder(asm.Options{})
	bld.Func("main")
	bld.CallImport("external")
	bld.AluRI(isa.ADD, isa.RAX, 1)
	bld.Ret()
	bld.Func("callee")
	bld.MovRI(isa.RAX, 41)
	bld.Ret()
	bin, err := bld.Build()
	if err != nil {
		t.Fatal(err)
	}
	calleeAddr, _ := bin.Lookup("callee")
	m := mem.New()
	v := vm.New(m)
	env := rtlib.LibC(heap.New(m), m)
	env["external"] = v.GuestFunc(calleeAddr)
	if err := v.Load(bin, env); err != nil {
		t.Fatal(err)
	}
	if err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if v.ExitCode != 42 {
		t.Errorf("exit = %d, want 42", v.ExitCode)
	}
}
