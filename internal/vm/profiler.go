package vm

// The guest sampling profiler: a cycle-budget-driven PC sampler hooked
// into the shared dispatch body (exec), so the block-cache and legacy
// paths sample identically. Every Interval guest cycles the profiler
// records the current PC plus a bounded backtrace and attributes to that
// stack all cycles elapsed since the previous sample — the standard
// sampling-profiler accounting, but driven by the deterministic guest
// cycle counter instead of wall-clock, so profiles are reproducible.
//
// Sampling is host-side only. The dispatch loop pays one nil-check per
// retired instruction when no profiler is attached, and the sampler never
// writes guest state or charges guest cycles, so cycle counts, errors and
// output are bit-identical with profiling on or off.

import (
	"encoding/binary"
	"sort"
)

// Default sampler parameters.
const (
	DefaultSampleInterval = 4096 // guest cycles between samples
	DefaultSampleDepth    = 16   // frames per sample, leaf included
	defaultTimelineCap    = 4096 // retained raw samples for timeline export
)

// ProfSample is one aggregated call-stack bucket: a unique guest stack
// (leaf PC first) with the cycles and sample hits attributed to it.
type ProfSample struct {
	Stack  []uint64 // leaf PC first, outermost caller last
	Cycles uint64   // guest cycles attributed to this stack
	Count  uint64   // number of samples that hit it
}

// TimeSample is one raw (non-aggregated) sample on the guest timeline,
// retained in a bounded ring for trace export.
type TimeSample struct {
	Cycles uint64 // guest cycle counter when the sample fired
	Weight uint64 // cycles attributed to this sample
	PC     uint64 // leaf PC
}

// GuestProfiler samples guest execution by cycle budget. Attach one via
// VM.Profiler before Run; read results with Samples/HotPCs after.
type GuestProfiler struct {
	// Interval is the cycle budget between samples
	// (0 = DefaultSampleInterval).
	Interval uint64
	// MaxDepth bounds the captured stack, leaf included
	// (0 = DefaultSampleDepth).
	MaxDepth int
	// TimelineCap bounds the retained raw-sample ring
	// (0 = defaultTimelineCap, negative = no timeline).
	TimelineCap int

	next    uint64 // cycle counter threshold for the next sample
	last    uint64 // cycle counter at the previous sample
	total   uint64 // cycles attributed across all samples
	count   uint64 // samples taken
	buckets map[string]*ProfSample

	timeline []TimeSample
	timePos  int // next overwrite position once the ring is full
}

func (p *GuestProfiler) interval() uint64 {
	if p.Interval == 0 {
		return DefaultSampleInterval
	}
	return p.Interval
}

func (p *GuestProfiler) depth() int {
	if p.MaxDepth <= 0 {
		return DefaultSampleDepth
	}
	return p.MaxDepth
}

// maybeSample fires when the guest cycle counter has crossed the next
// sampling threshold. Called from exec before the instruction at pc
// retires; hot path cost when attached is one comparison.
func (p *GuestProfiler) maybeSample(v *VM, pc uint64) {
	if p.buckets == nil {
		p.buckets = make(map[string]*ProfSample)
		p.next = p.interval()
		return
	}
	if v.Cycles < p.next {
		return
	}
	weight := v.Cycles - p.last
	p.last = v.Cycles
	p.next = v.Cycles + p.interval()
	p.total += weight
	p.count++

	stack := make([]uint64, 0, p.depth())
	stack = append(stack, pc)
	stack = append(stack, v.Backtrace(p.depth()-1)...)

	key := stackKey(stack)
	b := p.buckets[key]
	if b == nil {
		b = &ProfSample{Stack: stack}
		p.buckets[key] = b
	}
	b.Cycles += weight
	b.Count++

	if p.TimelineCap >= 0 {
		capacity := p.TimelineCap
		if capacity == 0 {
			capacity = defaultTimelineCap
		}
		ts := TimeSample{Cycles: v.Cycles, Weight: weight, PC: pc}
		if len(p.timeline) < capacity {
			p.timeline = append(p.timeline, ts)
		} else {
			p.timeline[p.timePos] = ts
			p.timePos++
			if p.timePos == capacity {
				p.timePos = 0
			}
		}
	}
}

// stackKey encodes a stack as a map key without allocation surprises.
func stackKey(stack []uint64) string {
	buf := make([]byte, 8*len(stack))
	for i, pc := range stack {
		binary.LittleEndian.PutUint64(buf[8*i:], pc)
	}
	return string(buf)
}

// Samples returns the aggregated stack buckets, hottest first (ties
// broken by stack content for determinism).
func (p *GuestProfiler) Samples() []ProfSample {
	if p == nil {
		return nil
	}
	out := make([]ProfSample, 0, len(p.buckets))
	for _, b := range p.buckets {
		out = append(out, *b)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cycles != out[j].Cycles {
			return out[i].Cycles > out[j].Cycles
		}
		return stackLess(out[i].Stack, out[j].Stack)
	})
	return out
}

func stackLess(a, b []uint64) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// HotPCs aggregates sampled cycles by leaf PC, hottest first.
func (p *GuestProfiler) HotPCs() []ProfSample {
	if p == nil {
		return nil
	}
	flat := make(map[uint64]*ProfSample)
	for _, b := range p.buckets {
		pc := b.Stack[0]
		f := flat[pc]
		if f == nil {
			f = &ProfSample{Stack: []uint64{pc}}
			flat[pc] = f
		}
		f.Cycles += b.Cycles
		f.Count += b.Count
	}
	out := make([]ProfSample, 0, len(flat))
	for _, f := range flat {
		out = append(out, *f)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cycles != out[j].Cycles {
			return out[i].Cycles > out[j].Cycles
		}
		return out[i].Stack[0] < out[j].Stack[0]
	})
	return out
}

// Timeline returns the retained raw samples in guest-cycle order.
func (p *GuestProfiler) Timeline() []TimeSample {
	if p == nil {
		return nil
	}
	if len(p.timeline) < cap(p.timeline) || p.timePos == 0 {
		return append([]TimeSample(nil), p.timeline...)
	}
	out := make([]TimeSample, 0, len(p.timeline))
	out = append(out, p.timeline[p.timePos:]...)
	out = append(out, p.timeline[:p.timePos]...)
	return out
}

// TotalCycles returns the guest cycles attributed across all samples.
func (p *GuestProfiler) TotalCycles() uint64 {
	if p == nil {
		return 0
	}
	return p.total
}

// SampleCount returns the number of samples taken.
func (p *GuestProfiler) SampleCount() uint64 {
	if p == nil {
		return 0
	}
	return p.count
}
