// Package vm implements the RF64 virtual machine: a CPU interpreter over
// the sparse paged memory of package mem.
//
// The VM is the testbed on which all experiments run. It executes RELF
// binaries — original, RedFat-hardened, or under the Memcheck DBI model —
// and accounts execution in cycles so that the paper's slow-down factors
// can be measured deterministically.
//
// Host runtime functions (the RTCALL instruction) model calls into shared
// libraries: libc (malloc, memset, I/O) and libredfat (the instrumented
// checks). A handler reads guest registers directly and charges an explicit
// cycle cost equal to the instruction sequence it stands for; the cost
// model is documented in internal/rtlib.
package vm

import (
	"fmt"
	"sort"

	"redfat/internal/isa"
	"redfat/internal/mem"
	"redfat/internal/obs"
	"redfat/internal/relf"
	"redfat/internal/telemetry"
)

// Flags is the RF64 condition-code state (an EFLAGS subset).
type Flags struct {
	ZF, SF, CF, OF bool
}

// pack encodes flags using the x86 EFLAGS bit layout.
func (f Flags) pack() uint64 {
	var v uint64 = 0x2 // bit 1 is always set in EFLAGS
	if f.CF {
		v |= 1 << 0
	}
	if f.ZF {
		v |= 1 << 6
	}
	if f.SF {
		v |= 1 << 7
	}
	if f.OF {
		v |= 1 << 11
	}
	return v
}

func unpackFlags(v uint64) Flags {
	return Flags{
		CF: v&(1<<0) != 0,
		ZF: v&(1<<6) != 0,
		SF: v&(1<<7) != 0,
		OF: v&(1<<11) != 0,
	}
}

// HostFunc is a runtime function bound to an RTCALL import slot. arg is
// the static argument encoded in the RTCALL immediate (bits 12..31);
// ordinary libc functions ignore it, libredfat checks use it as the
// instrumentation-site index.
type HostFunc func(v *VM, arg uint32) error

// RTCallImm builds an RTCALL immediate from an import index and a static
// argument.
func RTCallImm(importIdx int, arg uint32) int64 {
	return int64(uint32(importIdx)&0xFFF) | int64(arg)<<12
}

// SplitRTCallImm is the inverse of RTCallImm.
func SplitRTCallImm(imm int64) (importIdx int, arg uint32) {
	return int(imm & 0xFFF), uint32(uint64(imm) >> 12)
}

// ExitSentinel is the return address pushed below the entry point; a RET
// to it terminates the program (models returning from main into
// __libc_start_main).
const ExitSentinel = 0xFFFF_FFFF_FFFF_F000

// Default cycle costs. These approximate a simple in-order machine; the
// absolute values are arbitrary but the *relative* costs (memory ops,
// branch redirection, trap dispatch) are what shape the measured
// overheads.
const (
	CostInst   = 1   // any instruction
	CostMem    = 2   // extra for a memory access
	CostBranch = 1   // extra for a taken branch
	CostCall   = 2   // extra for call/ret
	CostMul    = 2   // extra for imul
	CostDiv    = 20  // extra for udiv/idiv
	CostTrap   = 150 // trap-patch dispatch (signal-style redirection)
)

// MemErrorKind classifies a detected memory error.
type MemErrorKind uint8

// Memory error kinds reported by instrumentation.
const (
	ErrOOBWrite MemErrorKind = iota
	ErrOOBRead
	ErrUseAfterFree
	ErrCorruptMeta
	ErrInvalidFree
	ErrOverlap
)

// String names the error kind.
func (k MemErrorKind) String() string {
	switch k {
	case ErrOOBWrite:
		return "out-of-bounds write"
	case ErrOOBRead:
		return "out-of-bounds read"
	case ErrUseAfterFree:
		return "use-after-free"
	case ErrCorruptMeta:
		return "corrupted metadata"
	case ErrInvalidFree:
		return "invalid free"
	case ErrOverlap:
		return "overlapping copy"
	}
	return "memory error"
}

// MemError is a detected memory error report.
type MemError struct {
	Kind MemErrorKind
	Addr uint64 // faulting access address
	PC   uint64 // program counter of the access
	Site uint32 // instrumentation site (0 if not site-based)
	Note string

	// Component attributes the detection to a methodology when known:
	// "lowfat" (found via base(ptr)) or "redzone" (found via the
	// base(LB) fallback). Empty for allocator-detected errors.
	Component string

	// Stack is the guest return-address chain at the faulting access,
	// innermost caller first, captured host-side by VM.Backtrace when
	// VM.ErrorStackDepth is set. Nil otherwise.
	Stack []uint64
}

// Error implements the error interface. The message carries every
// populated diagnostic field: the site index when the error came from an
// instrumented check, and the free-form Note.
func (e *MemError) Error() string {
	s := fmt.Sprintf("%s at address %#x (pc %#x", e.Kind, e.Addr, e.PC)
	if e.Site != 0 {
		s += fmt.Sprintf(", site %d", e.Site)
	}
	s += ")"
	if e.Note != "" {
		s += ": " + e.Note
	}
	return s
}

// SiteList returns the sorted distinct values of pcs. It is the single
// dedup/ordering implementation behind every "distinct error sites" view:
// ErrorSites and DistinctErrorSites here, and rtlib.Runtime.ErrorSites on
// the check-stat side, all reduce to it.
func SiteList(pcs []uint64) []uint64 {
	out := append([]uint64(nil), pcs...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	n := 0
	for _, pc := range out {
		if n == 0 || out[n-1] != pc {
			out[n] = pc
			n++
		}
	}
	return out[:n]
}

// ErrorSites returns the set of distinct program counters among the given
// error reports — the unit the paper counts detections and false
// positives in (one site, many dynamic occurrences).
func ErrorSites(errs []MemError) map[uint64]bool {
	pcs := make([]uint64, len(errs))
	for i := range errs {
		pcs[i] = errs[i].PC
	}
	set := make(map[uint64]bool, len(errs))
	for _, pc := range SiteList(pcs) {
		set[pc] = true
	}
	return set
}

// DistinctErrorSites counts the distinct program counters among errs.
func DistinctErrorSites(errs []MemError) int { return len(ErrorSites(errs)) }

// VM is an RF64 machine instance.
//
// Field order is deliberate: the dispatch loop touches Mem, RIP, Flags,
// the cycle/instruction counters and the hook pointers on every retired
// instruction, so they are grouped (with the register file immediately
// after) to share the struct's first cache lines.
type VM struct {
	Mem   *mem.Memory
	RIP   uint64
	Flags Flags

	Cycles    uint64
	MaxCycles uint64 // execution budget; 0 means none
	Insts     uint64 // retired instruction count

	// PerInstOverhead adds cycles to every retired instruction; the
	// Memcheck DBI model uses it for its dispatch overhead.
	PerInstOverhead uint64

	// Profiler, when set, samples the guest PC (with a backtrace) every
	// Profiler.Interval guest cycles from the shared dispatch body, on
	// both the block-cache and legacy paths. Sampling is host-side only:
	// guest cycles, errors and output are bit-identical with and without
	// a profiler attached.
	Profiler *GuestProfiler

	// Flight, when set, records dispatch-level events (trace entries,
	// compiles, deopts with reason, icache generations, check failures,
	// budget aborts) into the always-on flight recorder. Unlike the
	// per-instruction hooks it never pins execution to the interpreter:
	// every record point is off the per-instruction fast path, events are
	// stamped in guest cycles, and the ring's content is deterministic —
	// guest cycles, detections and telemetry are bit-identical with a
	// recorder attached or not. Nil-safe: all record calls go through
	// obs.Flight's nil receiver.
	Flight *obs.Flight

	// TraceHook, if set, is invoked before every instruction retires
	// (single-step debugging / execution tracing).
	TraceHook func(v *VM, pc uint64, in *isa.Inst)

	// Tracer, if set, records dispatch events (instruction retirement,
	// patch dispatch, runtime calls) into a bounded ring buffer. Other
	// layers (checks, allocators) append their events to the same tracer.
	Tracer *telemetry.Tracer

	// tel holds pre-resolved metric handles when telemetry is attached;
	// nil (the default) means every instrumentation point is a single
	// predictable branch and the cycle accounting is untouched.
	tel *vmMetrics

	// MemHook, if set, is invoked for every memory access the guest
	// performs (before it happens). The Memcheck model uses this to run
	// shadow checks. Returning an error aborts execution.
	MemHook func(v *VM, addr uint64, size uint16, write bool) error

	// BlockHook, if set, is invoked at every branch target (basic-block
	// entry, approximately). The Memcheck model charges JIT translation
	// cost here.
	BlockHook func(v *VM, addr uint64)

	Regs [isa.NumRegs]uint64

	// FSBase and GSBase are the segment base registers.
	FSBase, GSBase uint64

	Halted   bool
	ExitCode uint64

	// PatchTable redirects TRAP instructions to trampolines (the 1-byte
	// patch tactic). Loaded from the binary's .rf.patch section.
	PatchTable map[uint64]uint64

	// AbortOnError makes detected memory errors terminate execution
	// (hardening mode); otherwise they are recorded and execution
	// continues (profiling / bug-finding mode).
	AbortOnError bool
	Errors       []MemError

	// ErrorStackDepth, when positive, makes Report capture a guest
	// backtrace of up to that many frames into MemError.Stack. Capture is
	// host-side only (a frame-walk over guest memory) and never charges
	// guest cycles.
	ErrorStackDepth int

	// Allocator is set by the runtime layer at load time to the guest
	// allocator instance serving this run (a *heap.Heap, *redzone.Heap,
	// or Memcheck wrapper). The VM never touches it; it exists so
	// host-side forensics can resolve faulting addresses to owning
	// objects without threading the allocator through every return path.
	Allocator any

	// Output collects bytes written by the output host functions.
	Output []byte

	// Input supplies values to the rf_input host function.
	Input    []uint64
	inputPos int

	// randState drives the deterministic rf_rand host function.
	randState uint64

	hostFuncs []HostFunc // import bindings of the main executable
	binary    *relf.Binary

	// NoBlockCache makes Run use the legacy per-instruction decode cache
	// instead of the decoded basic-block cache. Guest-visible behaviour
	// (cycles, errors, hook order) is identical on both paths; the knob
	// exists so tests and benchmarks can compare them.
	NoBlockCache bool

	// NoChain disables block chaining on the block-cache path: every
	// block exit re-enters the per-page block tables instead of following
	// cached successor pointers. An ablation knob; guest-visible
	// behaviour is identical with chaining on or off. A superblock trace
	// is a chain, so NoChain also disables the JIT tier (see jit.go).
	NoChain bool

	// NoJIT disables the superblock translation tier: hot chained traces
	// are never compiled and every instruction retires through the
	// interpreter. An ablation knob with the same identity guarantee as
	// NoChain — guest cycles, detections and exit codes are bit-identical
	// with the tier on or off.
	NoJIT bool

	// JITThreshold is the number of block entries before a trace rooted
	// at that block is compiled (0 selects DefaultJITThreshold).
	JITThreshold uint64

	// LPADCheck enforces CET-style landing pads: an indirect JMP or CALL
	// whose target byte is not an LPAD instruction faults. Set by the
	// runtime layer when the binary opted in (it carries a .rf.jt
	// section); this is guest-visible binary semantics, not an ablation
	// knob, so it is never toggled by -noindirect.
	LPADCheck bool

	// IndirectTargets, when set by the runtime layer, maps each
	// statically resolved indirect-branch site (PC) to its recovered
	// target set from internal/cfg's indirect-flow recovery. The
	// interpreter uses it as a dynamic soundness monitor: a transfer
	// outside the recovered set bumps vm.indirect.escape.count. The
	// monitor is host-side telemetry only — guest cycles, detections and
	// output are bit-identical with or without it attached.
	IndirectTargets map[uint64]map[uint64]bool

	// IndirectHook, when set, observes every indirect JMP/CALL transfer
	// (pc → target) before it commits. Host-side observability only — it
	// feeds the differential edge oracle that validates the static
	// recovery against actual execution; guest behaviour is identical
	// with or without it. Indirect sites always retire through the
	// interpreter when enforcement or the monitor is armed, but attach
	// NoJIT when using the hook on non-marker binaries.
	IndirectHook func(pc, target uint64)

	// InlineCheck, when set by the runtime layer, resolves an RTCALL at
	// pc (import importIdx, static argument arg) into a fusable check
	// plan, or nil when the call is not an instrumented check. The JIT
	// uses it to keep check sites on-trace; the interpreter never calls
	// it.
	InlineCheck func(v *VM, pc uint64, importIdx int, arg uint32) *JITCheck

	// traces holds every compiled superblock, for the verify certifier
	// (CompiledTraces) and -stats reporting. Cleared by FlushICache:
	// traces embed predecoded instructions exactly like blocks do.
	traces []*trace

	icache map[uint64]*isa.Inst // legacy per-PC decode cache (Step)

	// Decoded basic-block cache (see blockcache.go).
	bcache      map[uint64]*codePage
	bcPageIdx   uint64
	bcPage      *codePage
	nBlocks     int // blocks currently cached
	nBlockInsts int // predecoded instructions currently cached

	// modules supports dynamically-linked RELF shared objects: each
	// loaded module carries its own import bindings (RTCALL immediates
	// index the containing module's import table, like per-DSO PLTs).
	modules []moduleEntry
	// exports accumulates function symbols of loaded libraries for
	// import resolution (the dynamic-linker view).
	exports  map[string]uint64
	modCache *moduleEntry
}

// vmMetrics is the VM's set of registry handles, resolved once at attach
// time so the dispatch loop never performs a map lookup.
type vmMetrics struct {
	retired      [isa.NumOps]*telemetry.Counter // per-opcode retirement
	retiredAll   *telemetry.Counter
	loads        *telemetry.Counter
	stores       *telemetry.Counter
	branches     *telemetry.Counter
	patchHits    *telemetry.Counter // TRAP dispatches through the patch table
	rtcalls      *telemetry.Counter
	rtcallCost   *telemetry.Counter   // guest cycles attributed to RTCALL handlers
	rtcallHist   *telemetry.Histogram // cycles-per-dispatch distribution
	memErrors    *telemetry.Counter
	cycles       *telemetry.Gauge
	insts        *telemetry.Gauge
	icacheSize   *telemetry.Gauge
	icacheBlocks *telemetry.Gauge
	icacheMiss   *telemetry.Counter
	chainHits    *telemetry.Counter // block exits resolved via chained successors
	chainMisses  *telemetry.Counter // block exits that walked the block tables
	exitCode     *telemetry.Gauge
	cycleAborts  *telemetry.Counter
	jitCompiles  *telemetry.Counter // superblock traces compiled
	jitEnters    *telemetry.Counter // trace entries (incl. loop-back iterations)
	jitInsts     *telemetry.Counter // instructions retired inside traces
	jitDeopts    *telemetry.Counter // deopts back to the interpreter (all reasons)
	jitDeoptBy   [NumDeoptReasons]*telemetry.Counter
	jitCompileNS *telemetry.Histogram // wall-clock nanoseconds per compile

	libcSpanChecks *telemetry.Counter // hardened-libc span checks executed
	libcSpanFails  *telemetry.Counter // hardened-libc span checks that flagged

	indirectEscapes *telemetry.Counter // indirect transfers outside the recovered target set
}

// AttachTelemetry binds the VM's dispatch-level metrics to reg and its
// event stream to tr (either may be nil). Must be called before Run;
// attaching costs nothing on the guest cycle count.
func (v *VM) AttachTelemetry(reg *telemetry.Registry, tr *telemetry.Tracer) {
	v.Tracer = tr
	if reg == nil {
		return
	}
	t := &vmMetrics{
		retiredAll:   reg.Counter("vm.retired.total"),
		loads:        reg.Counter("vm.mem.loads"),
		stores:       reg.Counter("vm.mem.stores"),
		branches:     reg.Counter("vm.branches.taken"),
		patchHits:    reg.Counter("vm.patch.hits"),
		rtcalls:      reg.Counter("vm.rtcall.count"),
		rtcallCost:   reg.Counter("vm.rtcall.cycles"),
		rtcallHist:   reg.Histogram("vm.rtcall.dispatch.cycles", telemetry.Pow2Bounds(2, 12)),
		memErrors:    reg.Counter("vm.mem.errors"),
		cycles:       reg.Gauge("vm.cycles"),
		insts:        reg.Gauge("vm.insts"),
		icacheSize:   reg.Gauge("vm.icache.entries"),
		icacheBlocks: reg.Gauge("vm.icache.blocks"),
		icacheMiss:   reg.Counter("vm.icache.misses"),
		chainHits:    reg.Counter("vm.icache.chain.hits"),
		chainMisses:  reg.Counter("vm.icache.chain.misses"),
		exitCode:     reg.Gauge("vm.exit.code"),
		cycleAborts:  reg.Counter("vm.cycle.limit.aborts"),
		jitCompiles:  reg.Counter("vm.jit.compile.count"),
		jitEnters:    reg.Counter("vm.jit.enter.count"),
		jitInsts:     reg.Counter("vm.jit.exec.insts"),
		jitDeopts:    reg.Counter("vm.jit.deopt.count"),
		jitCompileNS: reg.Histogram("vm.jit.compile.ns", telemetry.Pow2Bounds(10, 20)),

		libcSpanChecks: reg.Counter("vm.libc.span.check.count"),
		libcSpanFails:  reg.Counter("vm.libc.span.fail.count"),

		indirectEscapes: reg.Counter("vm.indirect.escape.count"),
	}
	for op := 0; op < isa.NumOps; op++ {
		t.retired[op] = reg.Counter("vm.retired." + isa.Op(op).String())
	}
	for r := DeoptReason(0); int(r) < NumDeoptReasons; r++ {
		t.jitDeoptBy[r] = reg.Counter("vm.jit.deopt." + r.String() + ".count")
	}
	v.tel = t
}

// FlushTelemetry publishes the VM's end-of-run totals (cycles, retired
// instructions, exit code) into the attached registry. Safe to call any
// number of times, including after an aborted run.
//
// The vm.icache.* gauges describe whichever decode cache is active:
// per-PC map entries on the legacy path, predecoded instructions and
// block count on the block-cache path.
func (v *VM) FlushTelemetry() {
	if v.tel == nil {
		return
	}
	v.tel.cycles.Set(v.Cycles)
	v.tel.insts.Set(v.Insts)
	if v.NoBlockCache {
		v.tel.icacheSize.Set(uint64(len(v.icache)))
	} else {
		v.tel.icacheSize.Set(uint64(v.nBlockInsts))
	}
	v.tel.icacheBlocks.Set(uint64(v.nBlocks))
	v.tel.exitCode.Set(v.ExitCode)
}

// New creates a VM over the given memory.
func New(m *mem.Memory) *VM {
	return &VM{
		Mem:       m,
		icache:    make(map[uint64]*isa.Inst, 4096),
		bcache:    make(map[uint64]*codePage),
		bcPageIdx: ^uint64(0),
	}
}

// Binary returns the loaded binary, if any.
func (v *VM) Binary() *relf.Binary { return v.binary }

// Bindings maps import names to host functions.
type Bindings map[string]HostFunc

// Load maps a RELF executable into memory, binds its imports (against
// host bindings and the exports of any libraries loaded earlier via
// LoadLibrary), initializes the stack and sets RIP to the entry point.
func (v *VM) Load(bin *relf.Binary, env Bindings) error {
	if err := v.mapSections(bin); err != nil {
		return err
	}
	host, err := v.bindImports(bin, env)
	if err != nil {
		return err
	}
	v.hostFuncs = host
	if err := v.registerModule(bin, host); err != nil {
		return err
	}

	// Stack.
	stackBase := uint64(relf.DefaultStackTop - relf.DefaultStackSize)
	v.Mem.Map(stackBase, relf.DefaultStackSize, mem.PermRW)
	v.Regs[isa.RSP] = relf.DefaultStackTop - 64
	if err := v.push(ExitSentinel); err != nil {
		return err
	}

	v.RIP = bin.Entry
	v.binary = bin
	return nil
}

// Report records a detected memory error, honouring AbortOnError. When
// ErrorStackDepth is set and the reporter did not capture a stack itself,
// the guest backtrace at the point of detection is attached.
func (v *VM) Report(e MemError) error {
	if v.ErrorStackDepth > 0 && e.Stack == nil {
		e.Stack = v.Backtrace(v.ErrorStackDepth)
	}
	v.Errors = append(v.Errors, e)
	v.Flight.Record(obs.EvCheckFail, uint8(e.Kind), e.PC, e.Addr)
	if v.tel != nil {
		v.tel.memErrors.Inc()
	}
	if v.AbortOnError {
		v.Halted = true
		cp := e
		return &cp
	}
	return nil
}

// CountLibcSpanCheck records one hardened-libc span check execution in
// the attached telemetry. Nil-safe: without a registry it is a single
// branch, and it never touches guest cycle accounting.
func (v *VM) CountLibcSpanCheck() {
	if v.tel != nil {
		v.tel.libcSpanChecks.Inc()
	}
}

// CountLibcSpanFail records one hardened-libc span check that flagged a
// violation. Nil-safe like CountLibcSpanCheck.
func (v *VM) CountLibcSpanFail() {
	if v.tel != nil {
		v.tel.libcSpanFails.Inc()
	}
}

// maxBacktraceScan bounds the stack words examined per frame-walk, so a
// walk over a huge or unusual stack stays cheap and deterministic.
const maxBacktraceScan = 512

// Backtrace captures the guest return-address chain, innermost caller
// first, with at most max frames. It is a conservative frame-walk: guest
// stack words from RSP upward are scanned for values that land in
// executable memory (the shape CALL leaves behind), stopping at the exit
// sentinel, the end of mapped stack, or the scan bound. The walk is
// heuristic — data words that alias code addresses can appear as frames —
// but it is read-only, host-side, and charges zero guest cycles, so
// enabling capture never perturbs measured slow-downs.
func (v *VM) Backtrace(max int) []uint64 {
	if max <= 0 {
		max = 8
	}
	var pcs []uint64
	sp := v.Regs[isa.RSP]
	for scanned := 0; scanned < maxBacktraceScan && len(pcs) < max; scanned++ {
		w, err := v.Mem.Load(sp, 8)
		if err != nil {
			break // walked off the mapped stack
		}
		sp += 8
		if w == ExitSentinel {
			break // reached the frame below main
		}
		if w == 0 || v.Mem.PermAt(w)&mem.PermExec == 0 {
			continue // not a plausible return address
		}
		pcs = append(pcs, w)
	}
	return pcs
}

func (v *VM) push(val uint64) error {
	v.Regs[isa.RSP] -= 8
	return v.Mem.Store(v.Regs[isa.RSP], 8, val)
}

func (v *VM) pop() (uint64, error) {
	val, err := v.Mem.Load(v.Regs[isa.RSP], 8)
	if err != nil {
		return 0, err
	}
	v.Regs[isa.RSP] += 8
	return val, nil
}

// EA computes the effective address of a memory operand given the current
// register state, with nextRIP used for RIP-relative operands.
func (v *VM) EA(m isa.Mem, nextRIP uint64) uint64 {
	addr := uint64(int64(m.Disp))
	if m.Base != isa.RegNone {
		if m.Base == isa.RIP {
			addr += nextRIP
		} else {
			addr += v.Regs[m.Base]
		}
	}
	if m.Index != isa.RegNone {
		addr += v.Regs[m.Index] * uint64(m.Scale)
	}
	if m.Seg != isa.SegNone {
		if m.Seg == isa.SegFS {
			addr += v.FSBase
		} else if m.Seg == isa.SegGS {
			addr += v.GSBase
		}
	}
	return addr
}

// CycleLimitError reports that execution exceeded the cycle budget.
type CycleLimitError struct{ Cycles uint64 }

// Error implements the error interface.
func (e *CycleLimitError) Error() string {
	return fmt.Sprintf("vm: cycle limit exceeded (%d cycles)", e.Cycles)
}

// Run executes until the program halts or faults. Execution proceeds
// through the decoded basic-block cache unless NoBlockCache selects the
// legacy per-instruction path; both retire the same instruction stream
// with identical cycle accounting.
func (v *VM) Run() error {
	if v.Flight != nil {
		v.Flight.BindCycles(&v.Cycles)
		v.Flight.SetLabeler(flightLabel)
	}
	if !v.NoBlockCache {
		return v.runBlocks()
	}
	for !v.Halted {
		if err := v.Step(); err != nil {
			v.FlushTelemetry()
			return err
		}
		if v.MaxCycles != 0 && v.Cycles > v.MaxCycles {
			v.Flight.Record(obs.EvBudgetPoll, 0, v.RIP, v.Cycles)
			if v.tel != nil {
				v.tel.cycleAborts.Inc()
			}
			v.FlushTelemetry()
			return &CycleLimitError{v.Cycles}
		}
	}
	v.FlushTelemetry()
	return nil
}

// flightLabel names the kind-specific reason bytes of flight events: the
// deopt-reason enum for deopts and the memory-error kind for check
// failures (obs cannot import these enums itself).
func flightLabel(kind obs.EventKind, reason uint8) string {
	switch kind {
	case obs.EvDeopt:
		return DeoptReason(reason).String()
	case obs.EvCheckFail:
		return MemErrorKind(reason).String()
	}
	return ""
}

// fetch decodes (with caching) the instruction at addr.
func (v *VM) fetch(addr uint64) (*isa.Inst, error) {
	if in, ok := v.icache[addr]; ok {
		return in, nil
	}
	if v.tel != nil {
		v.tel.icacheMiss.Inc()
	}
	var buf [isa.MaxInstLen]byte
	n := v.Mem.Fetch(addr, buf[:])
	if n == 0 {
		return nil, &mem.Fault{Addr: addr, Exec: true}
	}
	in, err := isa.Decode(buf[:n])
	if err != nil {
		return nil, fmt.Errorf("vm: at %#x: %w", addr, err)
	}
	cp := in
	v.icache[addr] = &cp
	return &cp, nil
}

// FlushICache drops cached decodes — the legacy per-PC cache and the
// basic-block cache, including every chained successor pointer: chains
// only ever reference blocks reachable from the per-page tables being
// dropped here, so tables and chains are invalidated together (needed
// only if code is modified after it has executed; offline rewriting does
// not require it). Compiled superblock traces embed the same predecoded
// instructions, so they die with the cache generation too: the trace
// list is cleared and every per-block trace pointer is unreachable once
// the block tables are dropped.
func (v *VM) FlushICache() {
	v.Flight.Record(obs.EvICacheGen, 0, v.RIP, uint64(v.nBlocks))
	v.icache = make(map[uint64]*isa.Inst, 4096)
	v.bcache = make(map[uint64]*codePage)
	v.bcPageIdx = ^uint64(0)
	v.bcPage = nil
	v.nBlocks, v.nBlockInsts = 0, 0
	v.traces = nil
}

// NextInput returns the next value from the input vector (0 when
// exhausted, like EOF).
func (v *VM) NextInput() uint64 {
	if v.inputPos >= len(v.Input) {
		return 0
	}
	val := v.Input[v.inputPos]
	v.inputPos++
	return val
}

// NextRand steps the VM's deterministic PRNG (xorshift64*).
func (v *VM) NextRand() uint64 {
	if v.randState == 0 {
		v.randState = 0x853C49E6748FEA9B
	}
	x := v.randState
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	v.randState = x
	return x * 0x2545F4914F6CDD1D
}
