package vm_test

import (
	"errors"
	"fmt"
	"testing"

	"redfat/internal/asm"
	"redfat/internal/heap"
	"redfat/internal/isa"
	"redfat/internal/mem"
	"redfat/internal/relf"
	"redfat/internal/rtlib"
	"redfat/internal/telemetry"
	"redfat/internal/vm"
)

// buildStraightLine assembles a single long basic block (no branches), so
// a small cycle budget is exceeded in the middle of the block rather than
// at a block boundary.
func buildStraightLine(t *testing.T, n int) *relf.Binary {
	t.Helper()
	b := asm.NewBuilder(asm.Options{})
	b.Func("main")
	b.MovRI(isa.RAX, 0)
	for i := 0; i < n; i++ {
		b.AluRI(isa.ADD, isa.RAX, 1)
	}
	b.Ret()
	bin, err := b.Build()
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return bin
}

func TestCycleBudgetMidBlock(t *testing.T) {
	bin := buildStraightLine(t, 10_000)
	m := mem.New()
	v := vm.New(m)
	v.MaxCycles = 500
	if err := v.Load(bin, rtlib.LibC(heap.New(m), m)); err != nil {
		t.Fatal(err)
	}
	err := v.Run()
	var cle *vm.CycleLimitError
	if !errors.As(err, &cle) {
		t.Fatalf("error = %v, want *CycleLimitError", err)
	}
	if v.Halted {
		t.Error("VM halted; the budget should have fired mid-block")
	}
	if cle.Cycles <= v.MaxCycles {
		t.Errorf("reported %d cycles, want > budget %d", cle.Cycles, v.MaxCycles)
	}
	if cle.Cycles != v.Cycles {
		t.Errorf("error cycles %d != VM cycles %d", cle.Cycles, v.Cycles)
	}
}

func TestCycleLimitErrorUnwrap(t *testing.T) {
	bin := buildStraightLine(t, 10_000)
	m := mem.New()
	v := vm.New(m)
	v.MaxCycles = 100
	if err := v.Load(bin, rtlib.LibC(heap.New(m), m)); err != nil {
		t.Fatal(err)
	}
	wrapped := fmt.Errorf("run failed: %w", v.Run())
	var cle *vm.CycleLimitError
	if !errors.As(wrapped, &cle) {
		t.Fatalf("errors.As failed through the wrapper: %v", wrapped)
	}
	if cle.Cycles <= v.MaxCycles {
		t.Errorf("unwrapped cycles = %d, want > %d", cle.Cycles, v.MaxCycles)
	}
}

// TestTelemetrySurvivesCycleAbort checks that the counters and the final
// gauge flush reflect the partial execution after a budget abort.
func TestTelemetrySurvivesCycleAbort(t *testing.T) {
	bin := buildStraightLine(t, 10_000)
	m := mem.New()
	v := vm.New(m)
	v.MaxCycles = 500
	reg := telemetry.New()
	tr := telemetry.NewTracer(16)
	v.AttachTelemetry(reg, tr)
	if err := v.Load(bin, rtlib.LibC(heap.New(m), m)); err != nil {
		t.Fatal(err)
	}
	err := v.Run()
	var cle *vm.CycleLimitError
	if !errors.As(err, &cle) {
		t.Fatalf("error = %v, want *CycleLimitError", err)
	}
	if n := reg.CounterValue("vm.retired.total"); n == 0 || n != v.Insts {
		t.Errorf("vm.retired.total = %d, want %d (nonzero)", n, v.Insts)
	}
	if n := reg.CounterValue("vm.retired.add"); n == 0 {
		t.Error("vm.retired.add = 0, want the aborted block's ADDs counted")
	}
	if n := reg.CounterValue("vm.cycle.limit.aborts"); n != 1 {
		t.Errorf("vm.cycle.limit.aborts = %d, want 1", n)
	}
	if g := reg.GaugeValue("vm.cycles"); g != v.Cycles {
		t.Errorf("vm.cycles gauge = %d, want flushed %d", g, v.Cycles)
	}
	if g := reg.GaugeValue("vm.insts"); g != v.Insts {
		t.Errorf("vm.insts gauge = %d, want flushed %d", g, v.Insts)
	}
	if tr.Total() == 0 {
		t.Error("tracer recorded no events before the abort")
	}
	if got := len(tr.Events()); got != 16 {
		t.Errorf("ring kept %d events, want capacity 16", got)
	}
}
