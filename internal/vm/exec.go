package vm

import (
	"fmt"

	"redfat/internal/isa"
	"redfat/internal/telemetry"
)

func widthMask(w uint16) uint64 {
	if w >= 8 {
		return ^uint64(0)
	}
	return 1<<(8*w) - 1
}

func signBit(v uint64, w uint16) bool {
	return v&(1<<(8*w-1)) != 0
}

// addFlags computes flags for a + b = r at width w. The w == 8 fast
// path avoids the masking entirely (the mask is all-ones); it computes
// the same four booleans as the general path.
func addFlags(a, b, r uint64, w uint16) Flags {
	if w == 8 {
		return Flags{
			ZF: r == 0,
			SF: int64(r) < 0,
			CF: r < a,
			OF: int64((a^r)&(b^r)) < 0,
		}
	}
	mask := widthMask(w)
	a, b, r = a&mask, b&mask, r&mask
	return Flags{
		ZF: r == 0,
		SF: signBit(r, w),
		CF: r < a,
		OF: signBit((a^r)&(b^r), w),
	}
}

// subFlags computes flags for a - b = r at width w (same w == 8 fast
// path as addFlags).
func subFlags(a, b, r uint64, w uint16) Flags {
	if w == 8 {
		return Flags{
			ZF: r == 0,
			SF: int64(r) < 0,
			CF: a < b,
			OF: int64((a^b)&(a^r)) < 0,
		}
	}
	mask := widthMask(w)
	a, b, r = a&mask, b&mask, r&mask
	return Flags{
		ZF: r == 0,
		SF: signBit(r, w),
		CF: a < b,
		OF: signBit((a^b)&(a^r), w),
	}
}

// logicFlags computes flags for logical operations (CF=OF=0).
func logicFlags(r uint64, w uint16) Flags {
	if w == 8 {
		return Flags{ZF: r == 0, SF: int64(r) < 0}
	}
	mask := widthMask(w)
	r &= mask
	return Flags{ZF: r == 0, SF: signBit(r, w)}
}

func (v *VM) condition(op isa.Op) bool { return v.Flags.cond(op) }

// cond evaluates a conditional-jump predicate against the flag state. It
// is the shared implementation behind the interpreter's dispatch and the
// JIT's emitted branch closures, so the two tiers cannot diverge.
func (f Flags) cond(op isa.Op) bool {
	switch op {
	case isa.JE:
		return f.ZF
	case isa.JNE:
		return !f.ZF
	case isa.JL:
		return f.SF != f.OF
	case isa.JLE:
		return f.ZF || f.SF != f.OF
	case isa.JG:
		return !f.ZF && f.SF == f.OF
	case isa.JGE:
		return f.SF == f.OF
	case isa.JB:
		return f.CF
	case isa.JBE:
		return f.CF || f.ZF
	case isa.JA:
		return !f.CF && !f.ZF
	case isa.JAE:
		return !f.CF
	case isa.JS:
		return f.SF
	case isa.JNS:
		return !f.SF
	case isa.JO:
		return f.OF
	case isa.JNO:
		return !f.OF
	}
	return false
}

func (v *VM) load(addr uint64, w uint16) (uint64, error) {
	if v.MemHook != nil {
		if err := v.MemHook(v, addr, w, false); err != nil {
			return 0, err
		}
	}
	if v.tel != nil {
		v.tel.loads.Inc()
	}
	v.Cycles += CostMem
	return v.Mem.Load(addr, w)
}

func (v *VM) store(addr uint64, w uint16, val uint64) error {
	if v.MemHook != nil {
		if err := v.MemHook(v, addr, w, true); err != nil {
			return err
		}
	}
	if v.tel != nil {
		v.tel.stores.Inc()
	}
	v.Cycles += CostMem
	return v.Mem.Store(addr, w, val)
}

// checkIndirect runs at every indirect JMP/CALL, before the transfer from
// pc to target commits. When the binary opted into landing-pad
// enforcement (LPADCheck) the target's first byte must be an LPAD opcode
// — the byte at target is exactly the instruction that would decode there,
// since LPAD takes no prefixes. Independently, when the runtime layer
// attached recovered target sets (IndirectTargets), a transfer outside
// the site's set bumps the escape counter; the monitor never alters guest
// behaviour.
func (v *VM) checkIndirect(pc, target uint64) error {
	if v.IndirectHook != nil {
		v.IndirectHook(pc, target)
	}
	if v.IndirectTargets != nil {
		if set, ok := v.IndirectTargets[pc]; ok && !set[target] {
			if v.tel != nil {
				v.tel.indirectEscapes.Inc()
			}
		}
	}
	if !v.LPADCheck {
		return nil
	}
	var b [1]byte
	if v.Mem.Fetch(target, b[:]) != 1 || isa.Op(b[0]) != isa.LPAD {
		return fmt.Errorf("vm: indirect branch at %#x to %#x, which is not a landing pad", pc, target)
	}
	return nil
}

func (v *VM) branchTo(target uint64) {
	v.RIP = target
	v.Cycles += CostBranch
	if v.tel != nil {
		v.tel.branches.Inc()
	}
	if v.BlockHook != nil {
		v.BlockHook(v, target)
	}
}

// aluOp applies a binary ALU operation at width w, returning the result
// and whether flags follow add/sub/logic semantics.
func (v *VM) aluCompute(op isa.Op, a, b uint64, w uint16) (uint64, Flags, error) {
	mask := widthMask(w)
	switch op {
	case isa.MOV, isa.MOVZX:
		return b & mask, v.Flags, nil // moves don't touch flags
	case isa.MOVSX:
		r := b & mask
		if signBit(r, w) {
			r |= ^mask
		}
		return r, v.Flags, nil
	case isa.ADD:
		r := (a + b) & mask
		return r, addFlags(a, b, r, w), nil
	case isa.SUB:
		r := (a - b) & mask
		return r, subFlags(a, b, r, w), nil
	case isa.CMP:
		r := (a - b) & mask
		return a & mask, subFlags(a, b, r, w), nil
	case isa.AND, isa.TEST:
		r := (a & b) & mask
		if op == isa.TEST {
			return a & mask, logicFlags(r, w), nil
		}
		return r, logicFlags(r, w), nil
	case isa.OR:
		r := (a | b) & mask
		return r, logicFlags(r, w), nil
	case isa.XOR:
		r := (a ^ b) & mask
		return r, logicFlags(r, w), nil
	case isa.IMUL:
		v.Cycles += CostMul
		r := uint64(int64(a)*int64(b)) & mask
		return r, logicFlags(r, w), nil
	}
	return 0, v.Flags, fmt.Errorf("vm: alu cannot execute %v", op)
}

// Step executes a single instruction, fetching through the legacy per-PC
// decode cache. Run's block-cache path bypasses Step; Step remains the
// single-stepping entry point.
func (v *VM) Step() error {
	pc := v.RIP
	in, err := v.fetch(pc)
	if err != nil {
		return err
	}
	return v.exec(pc, in)
}

// exec retires one predecoded instruction at pc. It is the shared
// dispatch body of both execution paths (Step and the block cache), so
// cycle accounting, hook order and error behaviour cannot diverge.
func (v *VM) exec(pc uint64, in *isa.Inst) error {
	next := pc + uint64(in.Len)
	var err error
	if v.Profiler != nil {
		v.Profiler.maybeSample(v, pc)
	}
	if v.TraceHook != nil {
		v.TraceHook(v, pc, in)
	}
	if v.tel != nil {
		v.tel.retiredAll.Inc()
		v.tel.retired[in.Op].Inc()
	}
	if v.Tracer != nil {
		v.Tracer.RecordAt(telemetry.EvInst, pc, 0, uint64(in.Op), v.Cycles)
	}
	v.Insts++
	v.Cycles += CostInst + v.PerInstOverhead

	switch in.Op {
	case isa.NOP, isa.LPAD:
		// LPAD retires like a NOP; its meaning is consumed at indirect
		// branches (checkIndirect), not when it executes.
		v.RIP = next

	case isa.TRAP:
		target, ok := v.PatchTable[pc]
		if !ok {
			return fmt.Errorf("vm: trap at %#x with no patch-table entry", pc)
		}
		v.Cycles += CostTrap
		if v.tel != nil {
			v.tel.patchHits.Inc()
		}
		if v.Tracer != nil {
			v.Tracer.RecordAt(telemetry.EvTramp, pc, target, 0, v.Cycles)
		}
		v.RIP = target // trap dispatch is not a guest branch; no hook

	case isa.HLT:
		v.Halted = true
		v.ExitCode = v.Regs[isa.RAX]
		v.RIP = next

	case isa.RET:
		v.Cycles += CostCall
		addr, err := v.pop()
		if err != nil {
			return err
		}
		if addr == ExitSentinel {
			v.Halted = true
			v.ExitCode = v.Regs[isa.RAX]
			return nil
		}
		v.branchTo(addr)

	case isa.PUSHF:
		if err := v.push(v.Flags.pack()); err != nil {
			return err
		}
		v.Cycles += CostMem
		v.RIP = next

	case isa.POPF:
		val, err := v.pop()
		if err != nil {
			return err
		}
		v.Cycles += CostMem
		v.Flags = unpackFlags(val)
		v.RIP = next

	case isa.CQO:
		v.Regs[isa.RDX] = uint64(int64(v.Regs[isa.RAX]) >> 63)
		v.RIP = next

	case isa.MOV, isa.MOVABS, isa.MOVZX, isa.MOVSX,
		isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR,
		isa.CMP, isa.TEST, isa.IMUL:
		// Register-form ops on the hot list retire right here — one
		// dispatch, no stepALU call; everything else (memory forms,
		// sub-width ops) takes the general path.
		switch in.Form {
		case isa.FRR:
			if v.aluRegFast(in, v.Regs[in.Reg2]) {
				v.RIP = next
				return nil
			}
		case isa.FRI:
			if v.aluRegFast(in, uint64(in.Imm)) {
				v.RIP = next
				return nil
			}
		case isa.FRM:
			// Plain loads: the value is the (already zero-extended)
			// memory word, flags untouched — same as stepALU's path.
			if in.Op == isa.MOV || in.Op == isa.MOVZX {
				w := uint16(in.Size)
				if w == 0 {
					w = 8
				}
				b, err := v.load(v.EA(in.Mem, next), w)
				if err != nil {
					return err
				}
				v.Regs[in.Reg] = b
				v.RIP = next
				return nil
			}
		case isa.FMR:
			// Plain stores, likewise.
			if in.Op == isa.MOV {
				w := uint16(in.Size)
				if w == 0 {
					w = 8
				}
				if err := v.store(v.EA(in.Mem, next), w, v.Regs[in.Reg]); err != nil {
					return err
				}
				v.RIP = next
				return nil
			}
		}
		if err := v.stepALU(in, next); err != nil {
			return err
		}
		v.RIP = next

	case isa.LEA:
		v.Regs[in.Reg] = v.EA(in.Mem, next)
		v.RIP = next

	case isa.PUSH:
		var val uint64
		if in.Form == isa.FR {
			val = v.Regs[in.Reg]
		} else {
			val, err = v.load(v.EA(in.Mem, next), 8)
			if err != nil {
				return err
			}
		}
		if err := v.push(val); err != nil {
			return err
		}
		v.Cycles += CostMem
		v.RIP = next

	case isa.POP:
		val, err := v.pop()
		if err != nil {
			return err
		}
		v.Cycles += CostMem
		if in.Form == isa.FR {
			v.Regs[in.Reg] = val
		} else {
			if err := v.store(v.EA(in.Mem, next), 8, val); err != nil {
				return err
			}
		}
		v.RIP = next

	case isa.XCHG:
		v.Regs[in.Reg], v.Regs[in.Reg2] = v.Regs[in.Reg2], v.Regs[in.Reg]
		v.RIP = next

	case isa.INC, isa.DEC, isa.NEG, isa.NOT:
		if err := v.stepUnary(in, next); err != nil {
			return err
		}
		v.RIP = next

	case isa.SHL, isa.SHR, isa.SAR:
		var count uint64
		if in.Form == isa.FRI {
			count = uint64(in.Imm)
		} else {
			count = v.Regs[isa.RCX]
		}
		count &= 63
		val := v.Regs[in.Reg]
		var r uint64
		var cf bool
		if count > 0 {
			switch in.Op {
			case isa.SHL:
				cf = val&(1<<(64-count)) != 0
				r = val << count
			case isa.SHR:
				cf = val&(1<<(count-1)) != 0
				r = val >> count
			case isa.SAR:
				cf = val&(1<<(count-1)) != 0
				r = uint64(int64(val) >> count)
			}
			v.Flags = Flags{ZF: r == 0, SF: signBit(r, 8), CF: cf}
		} else {
			r = val
		}
		v.Regs[in.Reg] = r
		v.RIP = next

	case isa.UDIV, isa.IDIV:
		v.Cycles += CostDiv
		d := v.Regs[in.Reg]
		if d == 0 {
			return fmt.Errorf("vm: division by zero at %#x", pc)
		}
		a := v.Regs[isa.RAX]
		if in.Op == isa.UDIV {
			v.Regs[isa.RAX] = a / d
			v.Regs[isa.RDX] = a % d
		} else {
			sa, sd := int64(a), int64(d)
			if sa == -1<<63 && sd == -1 {
				return fmt.Errorf("vm: division overflow at %#x", pc)
			}
			v.Regs[isa.RAX] = uint64(sa / sd)
			v.Regs[isa.RDX] = uint64(sa % sd)
		}
		v.RIP = next

	case isa.JMP:
		switch in.Form {
		case isa.FRel8, isa.FRel32:
			v.branchTo(next + uint64(in.Imm))
		case isa.FR:
			target := v.Regs[in.Reg]
			if err := v.checkIndirect(pc, target); err != nil {
				return err
			}
			v.branchTo(target)
		case isa.FM:
			target, err := v.load(v.EA(in.Mem, next), 8)
			if err != nil {
				return err
			}
			if err := v.checkIndirect(pc, target); err != nil {
				return err
			}
			v.branchTo(target)
		}

	case isa.CALL:
		v.Cycles += CostCall
		var target uint64
		switch in.Form {
		case isa.FRel32:
			target = next + uint64(in.Imm)
		case isa.FR:
			target = v.Regs[in.Reg]
		case isa.FM:
			target, err = v.load(v.EA(in.Mem, next), 8)
			if err != nil {
				return err
			}
		}
		if in.Form != isa.FRel32 {
			if err := v.checkIndirect(pc, target); err != nil {
				return err
			}
		}
		if err := v.push(next); err != nil {
			return err
		}
		v.branchTo(target)

	case isa.RTCALL:
		idx, arg := SplitRTCallImm(in.Imm)
		host := v.moduleFor(pc)
		if idx >= len(host) || host[idx] == nil {
			return fmt.Errorf("vm: rtcall to unbound import %d at %#x", idx, pc)
		}
		v.RIP = next // handlers may inspect/modify RIP (e.g. longjmp-style)
		before := v.Cycles
		err := host[idx](v, arg)
		if v.tel != nil {
			// Attribute the cycles the handler charged to RTCALL dispatch
			// (the paper's per-stage overhead breakdown needs this split).
			cost := v.Cycles - before
			v.tel.rtcalls.Inc()
			v.tel.rtcallCost.Add(cost)
			v.tel.rtcallHist.Observe(cost)
		}
		if v.Tracer != nil {
			v.Tracer.RecordAt(telemetry.EvRTCall, pc, 0, v.Cycles-before, v.Cycles)
		}
		if err != nil {
			return err
		}

	default:
		if in.Op.IsCondJump() {
			if v.condition(in.Op) {
				v.branchTo(next + uint64(in.Imm))
			} else {
				v.RIP = next
			}
			break
		}
		return fmt.Errorf("vm: unimplemented op %v at %#x", in.Op, pc)
	}
	return nil
}

// aluRegFast executes the hot register-form ALU operations (which are
// always 64-bit, so every width mask is all-ones) without the
// aluCompute call, reporting whether it handled the op. Results and
// flags are exactly those of aluCompute at w == 8: the flag helpers
// below are the shared implementation.
func (v *VM) aluRegFast(in *isa.Inst, b uint64) bool {
	a := v.Regs[in.Reg]
	switch in.Op {
	case isa.MOV, isa.MOVABS:
		v.Regs[in.Reg] = b
	case isa.ADD:
		r := a + b
		v.Flags = addFlags(a, b, r, 8)
		v.Regs[in.Reg] = r
	case isa.SUB:
		r := a - b
		v.Flags = subFlags(a, b, r, 8)
		v.Regs[in.Reg] = r
	case isa.CMP:
		v.Flags = subFlags(a, b, a-b, 8)
	case isa.AND:
		r := a & b
		v.Flags = logicFlags(r, 8)
		v.Regs[in.Reg] = r
	case isa.OR:
		r := a | b
		v.Flags = logicFlags(r, 8)
		v.Regs[in.Reg] = r
	case isa.XOR:
		r := a ^ b
		v.Flags = logicFlags(r, 8)
		v.Regs[in.Reg] = r
	case isa.TEST:
		v.Flags = logicFlags(a&b, 8)
	default:
		return false // MOVZX/MOVSX/IMUL: take the general path
	}
	return true
}

// stepALU executes two-operand ALU/MOV forms.
func (v *VM) stepALU(in *isa.Inst, next uint64) error {
	w := uint16(in.Size)
	if w == 0 {
		w = 8
	}
	regW := w
	if in.Form == isa.FRR || in.Form == isa.FRI {
		// Register-to-register arithmetic is always 64-bit in RF64.
		regW = 8
	}
	switch in.Form {
	case isa.FRR:
		if v.aluRegFast(in, v.Regs[in.Reg2]) {
			return nil
		}
		a, b := v.Regs[in.Reg], v.Regs[in.Reg2]
		r, fl, err := v.aluCompute(in.Op, a, b, regW)
		if err != nil {
			return err
		}
		v.Flags = fl
		if in.Op != isa.CMP && in.Op != isa.TEST {
			v.Regs[in.Reg] = r
		}
	case isa.FRI:
		if v.aluRegFast(in, uint64(in.Imm)) {
			return nil
		}
		a, b := v.Regs[in.Reg], uint64(in.Imm)
		r, fl, err := v.aluCompute(in.Op, a, b, regW)
		if err != nil {
			return err
		}
		v.Flags = fl
		if in.Op != isa.CMP && in.Op != isa.TEST {
			v.Regs[in.Reg] = r
		}
	case isa.FRM:
		addr := v.EA(in.Mem, next)
		b, err := v.load(addr, w)
		if err != nil {
			return err
		}
		if in.Op == isa.MOV || in.Op == isa.MOVZX {
			// Loads already zero-extend to the access width, so the
			// result is b with flags untouched — skip the call.
			v.Regs[in.Reg] = b
			return nil
		}
		a := v.Regs[in.Reg]
		// Moves (zero/sign-extending) and ALU-from-memory both operate at
		// the access width; sub-width results zero-extend into the
		// register (MOVSX sign-extends inside aluCompute).
		r, fl, err := v.aluCompute(in.Op, a, b, w)
		if err != nil {
			return err
		}
		v.Flags = fl
		if in.Op != isa.CMP && in.Op != isa.TEST {
			v.Regs[in.Reg] = r
		}
	case isa.FMR, isa.FMI:
		addr := v.EA(in.Mem, next)
		var b uint64
		if in.Form == isa.FMR {
			b = v.Regs[in.Reg]
		} else {
			b = uint64(in.Imm)
		}
		if in.Op == isa.MOV {
			return v.store(addr, w, b)
		}
		a, err := v.load(addr, w)
		if err != nil {
			return err
		}
		r, fl, err := v.aluCompute(in.Op, a, b, w)
		if err != nil {
			return err
		}
		v.Flags = fl
		if in.Op != isa.CMP && in.Op != isa.TEST {
			return v.store(addr, w, r)
		}
	default:
		return fmt.Errorf("vm: bad ALU form %v", in.Form)
	}
	return nil
}

// stepUnary executes INC/DEC/NEG/NOT on a register or memory operand.
func (v *VM) stepUnary(in *isa.Inst, next uint64) error {
	w := uint16(in.Size)
	if w == 0 || in.Form == isa.FR {
		w = 8
	}
	var val uint64
	var addr uint64
	if in.Form == isa.FR {
		val = v.Regs[in.Reg]
	} else {
		addr = v.EA(in.Mem, next)
		var err error
		val, err = v.load(addr, w)
		if err != nil {
			return err
		}
	}
	mask := widthMask(w)
	var r uint64
	switch in.Op {
	case isa.INC:
		r = (val + 1) & mask
		fl := addFlags(val, 1, r, w)
		fl.CF = v.Flags.CF // INC preserves CF (x86 semantics)
		v.Flags = fl
	case isa.DEC:
		r = (val - 1) & mask
		fl := subFlags(val, 1, r, w)
		fl.CF = v.Flags.CF
		v.Flags = fl
	case isa.NEG:
		r = (-val) & mask
		fl := subFlags(0, val, r, w)
		fl.CF = val&mask != 0
		v.Flags = fl
	case isa.NOT:
		r = (^val) & mask // NOT does not touch flags
	}
	if in.Form == isa.FR {
		v.Regs[in.Reg] = r
		return nil
	}
	return v.store(addr, w, r)
}
