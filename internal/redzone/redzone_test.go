package redzone

import (
	"math/rand"
	"testing"
	"testing/quick"

	"redfat/internal/lowfat"
	"redfat/internal/mem"
)

func newHeap() *Heap {
	m := mem.New()
	return NewHeap(lowfat.New(m), m)
}

func TestMallocLayout(t *testing.T) {
	h := newHeap()
	p, err := h.Malloc(100)
	if err != nil {
		t.Fatal(err)
	}
	base := lowfat.Base(p)
	if base != p-Size {
		t.Fatalf("object pointer %#x not 16 past slot base %#x", p, base)
	}
	// The slot services size+16 = 116 → class size 128.
	if lowfat.Size(p) != 128 {
		t.Errorf("slot size = %d, want 128", lowfat.Size(p))
	}
	size, err := h.ObjectSize(base)
	if err != nil || size != 100 {
		t.Errorf("ObjectSize = %d, %v", size, err)
	}
	// Object memory usable.
	if err := h.Mem.Store(p+92, 8, 0xFEED); err != nil {
		t.Errorf("object memory not writable: %v", err)
	}
}

func TestStateClassification(t *testing.T) {
	h := newHeap()
	p, _ := h.Malloc(40) // slot = 40+16=56 → class 64
	base := p - Size
	cases := []struct {
		ptr  uint64
		want State
	}{
		{base, StateRedzone},          // metadata itself
		{base + 15, StateRedzone},     // last redzone byte
		{p, StateAllocated},           // first object byte
		{p + 39, StateAllocated},      // last object byte
		{p + 40, StateRedzone},        // padding: OOB under accurate SIZE check
		{0x400000, StateNonFat},       // code address
		{0x7FFF00000000, StateNonFat}, // stack-ish address
	}
	for _, c := range cases {
		if got := h.StateOf(c.ptr); got != c.want {
			t.Errorf("StateOf(%#x) = %v, want %v", c.ptr, got, c.want)
		}
	}
	if err := h.Free(p); err != nil {
		t.Fatal(err)
	}
	if got := h.StateOf(p); got != StateFree {
		t.Errorf("StateOf(freed) = %v, want free", got)
	}
}

func TestNextObjectRedzone(t *testing.T) {
	// The prepended redzone of the next slot protects the end of the
	// previous object (paper Fig. 3).
	h := newHeap()
	p1, _ := h.Malloc(48) // slot 64
	p2, _ := h.Malloc(48)
	base1, base2 := p1-Size, p2-Size
	if base2 != base1+64 && base1 != base2+64 {
		t.Skipf("slots not adjacent: %#x, %#x", base1, base2)
	}
	lo, hi := base1, base2
	if lo > hi {
		lo, hi = hi, lo
	}
	// Walking off the end of the low object hits the high slot's redzone.
	past := lo + 64
	if got := h.StateOf(past); got != StateRedzone {
		t.Errorf("StateOf(end of object) = %v, want redzone", got)
	}
}

func TestFreeErrors(t *testing.T) {
	h := newHeap()
	p, _ := h.Malloc(32)
	if err := h.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(p); err == nil {
		t.Error("double free undetected")
	}
	if err := h.Free(p + 8); err == nil {
		t.Error("interior free undetected")
	}
	if err := h.Free(0); err != nil {
		t.Errorf("free(NULL) failed: %v", err)
	}
	if h.MallocErrors != 2 {
		t.Errorf("MallocErrors = %d, want 2", h.MallocErrors)
	}
}

func TestQuarantineDelaysReuse(t *testing.T) {
	h := newHeap()
	h.QuarantineBytes = 1 << 20
	p1, _ := h.Malloc(32)
	h.Free(p1)
	p2, _ := h.Malloc(32)
	if p1 == p2 {
		t.Error("quarantine did not delay slot reuse")
	}
	// Freed object remains classified Free while quarantined.
	if got := h.StateOf(p1); got != StateFree {
		t.Errorf("StateOf(quarantined) = %v", got)
	}

	// Without quarantine, reuse is immediate.
	h2 := newHeap()
	h2.QuarantineBytes = 0
	q1, _ := h2.Malloc(32)
	h2.Free(q1)
	q2, _ := h2.Malloc(32)
	if q1 != q2 {
		t.Error("expected immediate reuse with quarantine disabled")
	}
}

func TestQuarantineEviction(t *testing.T) {
	h := newHeap()
	h.QuarantineBytes = 128 // tiny: forces eviction
	var ptrs []uint64
	for i := 0; i < 10; i++ {
		p, _ := h.Malloc(32) // 48-byte slots
		ptrs = append(ptrs, p)
	}
	for _, p := range ptrs {
		if err := h.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	if h.LF.LiveCount() > 3 {
		t.Errorf("quarantine not evicting: %d slots still live", h.LF.LiveCount())
	}
}

func TestCallocZeroes(t *testing.T) {
	h := newHeap()
	// Dirty a slot, free it past the quarantine, then calloc into it.
	h.QuarantineBytes = 0
	p, _ := h.Malloc(64)
	h.Mem.Memset(p, 0xAA, 64)
	h.Free(p)
	q, err := h.Calloc(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if q != p {
		t.Skip("slot not reused")
	}
	for i := uint64(0); i < 64; i += 8 {
		v, _ := h.Mem.Load(q+i, 8)
		if v != 0 {
			t.Fatalf("calloc memory not zeroed at +%d: %#x", i, v)
		}
	}
	if _, err := h.Calloc(1<<32, 1<<32); err == nil {
		t.Error("calloc overflow undetected")
	}
}

func TestRealloc(t *testing.T) {
	h := newHeap()
	p, _ := h.Malloc(16)
	h.Mem.Store(p, 8, 0x1234)
	h.Mem.Store(p+8, 8, 0x5678)
	q, err := h.Realloc(p, 200)
	if err != nil {
		t.Fatal(err)
	}
	v1, _ := h.Mem.Load(q, 8)
	v2, _ := h.Mem.Load(q+8, 8)
	if v1 != 0x1234 || v2 != 0x5678 {
		t.Errorf("realloc lost contents: %#x %#x", v1, v2)
	}
	if got := h.StateOf(p); got != StateFree {
		t.Errorf("old object state = %v", got)
	}
	sz, _ := h.ObjectSize(q - Size)
	if sz != 200 {
		t.Errorf("new object size = %d", sz)
	}
	// realloc(NULL, n) == malloc(n); realloc(p, 0) == free(p).
	r, err := h.Realloc(0, 32)
	if err != nil || r == 0 {
		t.Errorf("realloc(NULL) = %#x, %v", r, err)
	}
	if _, err := h.Realloc(r, 0); err != nil {
		t.Errorf("realloc(p, 0): %v", err)
	}
}

// Property: for any allocation, every byte of the object is Allocated,
// every byte of the 16-byte redzone is Redzone, and the first byte past
// the object is never Allocated.
func TestQuickStateInvariant(t *testing.T) {
	h := newHeap()
	r := rand.New(rand.NewSource(13))
	f := func() bool {
		size := uint64(1 + r.Intn(5000))
		p, err := h.Malloc(size)
		if err != nil {
			t.Fatal(err)
		}
		base := p - Size
		for i := 0; i < 8; i++ {
			off := uint64(r.Intn(Size))
			if h.StateOf(base+off) != StateRedzone {
				return false
			}
			objOff := uint64(r.Int63n(int64(size)))
			if h.StateOf(p+objOff) != StateAllocated {
				return false
			}
		}
		return h.StateOf(p+size) != StateAllocated
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
