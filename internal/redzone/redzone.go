// Package redzone implements the RedFat replacement memory allocator: a
// wrapper over the low-fat allocator that prepends a 16-byte redzone to
// every object (paper §4.1, Fig. 3).
//
// The redzone serves two purposes at once:
//
//  1. it is poisoned memory — any access to it is an out-of-bounds error;
//  2. it is the shadow storage for the object's STATE/SIZE metadata,
//     eliminating ASAN-style separate shadow memory.
//
// Conceptually: malloc(SIZE) = lowfat_malloc(SIZE+16)+16.
//
// The object layout (addresses grow up):
//
//	BASE+0  .. BASE+8   SIZE  (uint64; >0 ⇒ Allocated, 0 ⇒ Free)
//	BASE+8  .. BASE+16  object id (allocation counter; diagnostic)
//	BASE+16 ..          OBJECT (SIZE bytes), then slot padding
//
// Because a redzone is prepended to every object, the redzone of the *next*
// object in memory doubles as the redzone at the end of the current object,
// even if the next slot is unallocated (paper §4.1).
//
// State is recovered from a pointer with the low-fat base operation:
//
//	state(ptr) = ptr − base(ptr) < 16 ? Redzone : *base(ptr)
package redzone

import (
	"errors"
	"fmt"

	"redfat/internal/lowfat"
	"redfat/internal/mem"
	"redfat/internal/telemetry"
)

// Size is the redzone size in bytes (which is also the metadata size).
const Size = 16

// CanaryByte is the pattern the canary mode writes into slot slack (the
// bytes between the object end and the end of its low-fat slot). An
// overwrite that stays inside the slot — invisible to the merged bounds
// check, which only knows the slot geometry via SIZE — still destroys
// the pattern and is caught on free and on span-check crossings.
const CanaryByte = 0xA5

// CanaryError reports a smashed canary discovered while freeing an
// object. The free itself still completes (the detection must not leak
// the slot); callers translate the error into a corrupted-metadata
// report.
type CanaryError struct {
	Addr uint64 // first smashed slack byte
	Ptr  uint64 // the object pointer being freed
}

// Error implements the error interface.
func (e *CanaryError) Error() string {
	return fmt.Sprintf("redzone: canary smashed at %#x (detected freeing %#x)", e.Addr, e.Ptr)
}

// State is an object state, as encoded in the redzone metadata.
type State uint8

// Object states.
const (
	StateNonFat State = iota // pointer not managed by the low-fat heap
	StateRedzone
	StateAllocated
	StateFree
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateNonFat:
		return "nonfat"
	case StateRedzone:
		return "redzone"
	case StateAllocated:
		return "allocated"
	case StateFree:
		return "free"
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// Heap is the RedFat replacement allocator. In the real system this lives
// in libredfat.so and is interposed over glibc malloc via LD_PRELOAD; here
// the VM binds the malloc/free imports to it when hardening is enabled.
type Heap struct {
	LF  *lowfat.Allocator
	Mem *mem.Memory

	// QuarantineBytes delays slot reuse after free to improve
	// use-after-free detection, like ASAN's quarantine. Zero disables.
	QuarantineBytes uint64

	// Canary poisons the slot slack (object end → slot end) with
	// CanaryByte on every allocation and verifies it on free; span
	// checks additionally verify it when they cross an object. Guest
	// visible (slack bytes read back as the pattern), so the mode is
	// recorded in runpack RunSpecs.
	Canary bool

	// UnderAllocEvery enables the REDFAT_TEST-style self-test mode:
	// roughly one in every UnderAllocEvery allocations records SIZE one
	// byte short of the request, so a legitimate full-extent access
	// trips the bounds check and proves the detection machinery live.
	// Zero disables. Requires Rand; induced reports carry a
	// "self-test under-allocation" note tag.
	UnderAllocEvery uint64

	// Rand supplies the deterministic randomness for UnderAllocEvery
	// (the runtime layer wires it to vm.NextRand so replays reproduce
	// the same under-allocation sequence).
	Rand func() uint64

	quarantine      []uint64 // FIFO of slot bases awaiting real free
	quarantineUsage uint64
	nextID          uint64

	// MallocErrors counts invalid/double frees detected by the allocator
	// itself (as opposed to instrumentation-detected errors).
	MallocErrors uint64

	// SiteDepth is the guest-backtrace depth captured per allocation and
	// free (0 = call-site PC only). Set by the runtime layer when
	// forensics is enabled; capture is host-side only.
	SiteDepth int

	// allocPC maps object id → the call site that allocated it, for
	// ASAN-style error diagnostics ("allocated at ..."). The id is the
	// counter stored in the second metadata word of the redzone.
	allocPC    map[uint64]AllocRecord
	notedPC    uint64
	notedStack []uint64

	tel *rzMetrics
}

// rzMetrics holds the redzone wrapper's registry handles.
type rzMetrics struct {
	poisonOps       *telemetry.Counter // redzone metadata writes (arm on malloc, poison on free)
	mallocErrors    *telemetry.Counter
	quarantineBytes *telemetry.Gauge
	quarantineObjs  *telemetry.Gauge
	canaryFills     *telemetry.Counter // slots armed with the canary pattern
	canarySmashes   *telemetry.Counter // canary verifications that found an overwrite
	underAllocs     *telemetry.Counter // self-test under-allocations handed out
}

// AttachTelemetry binds the redzone wrapper's counters to reg and
// propagates the registry to the underlying low-fat allocator.
func (h *Heap) AttachTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	h.tel = &rzMetrics{
		poisonOps:       reg.Counter("redzone.poison.ops"),
		mallocErrors:    reg.Counter("redzone.malloc.errors"),
		quarantineBytes: reg.Gauge("redzone.quarantine.bytes"),
		quarantineObjs:  reg.Gauge("redzone.quarantine.objects"),
		canaryFills:     reg.Counter("redzone.canary.fills"),
		canarySmashes:   reg.Counter("redzone.canary.smashes"),
		underAllocs:     reg.Counter("redzone.underalloc.allocs"),
	}
	h.LF.AttachTelemetry(reg)
}

func (h *Heap) noteMallocError() {
	h.MallocErrors++
	if h.tel != nil {
		h.tel.mallocErrors.Inc()
	}
}

// AllocRecord is the forensic bookkeeping of one object: where it was
// allocated (and, once dead, freed), by whom. Stacks are guest
// return-address chains, innermost caller first; they are captured only
// when Heap.SiteDepth is set.
type AllocRecord struct {
	PC    uint64   // guest PC of the allocating call site
	Size  uint64   // recorded SIZE (requested, minus one when under-allocated)
	Stack []uint64 // guest backtrace at allocation (nil unless SiteDepth > 0)

	FreePC    uint64   // guest PC of the free call, 0 while live
	FreeStack []uint64 // guest backtrace at free (nil unless captured)

	// UnderAlloc marks a self-test under-allocation: the object's SIZE
	// was recorded one byte short of the request, so the detection it
	// induces can be tagged and filtered from false-positive counts.
	UnderAlloc bool
}

// NewHeap creates a RedFat heap over the given allocator and memory.
func NewHeap(lf *lowfat.Allocator, m *mem.Memory) *Heap {
	return &Heap{LF: lf, Mem: m, QuarantineBytes: 1 << 20,
		allocPC: make(map[uint64]AllocRecord)}
}

// NoteAllocPC records the guest call site of the next Malloc/Free (set by
// the libc binding, which knows the VM's program counter).
func (h *Heap) NoteAllocPC(pc uint64) { h.notedPC, h.notedStack = pc, nil }

// NoteAllocStack additionally records the guest backtrace of the next
// Malloc/Free (captured by the libc binding when SiteDepth asks for it).
func (h *Heap) NoteAllocStack(stack []uint64) { h.notedStack = stack }

// SiteStackDepth reports the backtrace depth the heap wants captured per
// allocator call (the libc binding consults it before walking frames).
func (h *Heap) SiteStackDepth() int { return h.SiteDepth }

// EnableSiteTracking turns on backtrace capture at the given depth (the
// PC-only allocPC bookkeeping is always on for this heap).
func (h *Heap) EnableSiteTracking(depth int) { h.SiteDepth = depth }

// SiteOf returns the allocation diagnostics for the object with the given
// id (the second metadata word at the object's redzone base).
func (h *Heap) SiteOf(id uint64) (allocPC, size, freePC uint64, ok bool) {
	s, ok := h.allocPC[id]
	return s.PC, s.Size, s.FreePC, ok
}

// RecordOf returns the full forensic record for the object with the given
// id, including captured backtraces.
func (h *Heap) RecordOf(id uint64) (AllocRecord, bool) {
	s, ok := h.allocPC[id]
	return s, ok
}

// Malloc allocates size bytes and returns the object pointer (BASE+16).
// In self-test mode (UnderAllocEvery) the recorded SIZE is randomly one
// byte short of the request; in canary mode the slot slack is filled
// with the canary pattern.
func (h *Heap) Malloc(size uint64) (uint64, error) {
	slot, err := h.LF.Alloc(size + Size)
	if err != nil {
		return 0, err
	}
	stored, under := size, false
	if h.UnderAllocEvery > 0 && size > 0 && h.Rand != nil &&
		h.Rand()%h.UnderAllocEvery == 0 {
		stored, under = size-1, true
		if h.tel != nil {
			h.tel.underAllocs.Inc()
		}
	}
	h.nextID++
	if err := h.Mem.Store(slot, 8, stored); err != nil {
		return 0, fmt.Errorf("redzone: header write: %w", err)
	}
	if err := h.Mem.Store(slot+8, 8, h.nextID); err != nil {
		return 0, err
	}
	h.allocPC[h.nextID] = AllocRecord{PC: h.notedPC, Size: stored,
		Stack: h.notedStack, UnderAlloc: under}
	if h.tel != nil {
		h.tel.poisonOps.Inc() // armed the redzone metadata for this object
	}
	if h.Canary {
		if err := h.armCanary(slot, stored); err != nil {
			return 0, err
		}
	}
	return slot + Size, nil
}

// Calloc allocates zeroed memory for n objects of the given size. Only
// the recorded SIZE is zeroed: an under-allocated object must not have
// its missing last byte zeroed through the slack (that would smash the
// canary and over-promise addressability the checks will deny).
func (h *Heap) Calloc(n, size uint64) (uint64, error) {
	total := n * size
	if size != 0 && total/size != n {
		return 0, fmt.Errorf("redzone: calloc overflow (%d × %d)", n, size)
	}
	ptr, err := h.Malloc(total)
	if err != nil {
		return 0, err
	}
	zero := total
	if stored, err := h.Mem.Load(ptr-Size, 8); err == nil && stored < zero {
		zero = stored
	}
	if err := h.Mem.Memset(ptr, 0, zero); err != nil {
		return 0, err
	}
	return ptr, nil
}

// armCanary fills the slot slack [object end, slot end) with CanaryByte.
// Legacy (non-low-fat) slots have no slot geometry to bound the slack
// and are skipped.
func (h *Heap) armCanary(slot, stored uint64) error {
	slotSize := lowfat.Size(slot)
	if slotSize == lowfat.SizeMax {
		return nil
	}
	start, end := slot+Size+stored, slot+slotSize
	if start >= end {
		return nil
	}
	if err := h.Mem.Memset(start, CanaryByte, end-start); err != nil {
		return err
	}
	if h.tel != nil {
		h.tel.canaryFills.Inc()
	}
	return nil
}

// CheckCanary verifies the canary slack of the allocated object in the
// slot at base, returning the address of the first smashed byte when
// the pattern was overwritten. It reports ok for freed slots, legacy
// slots and when the mode is off.
func (h *Heap) CheckCanary(base uint64) (uint64, bool) {
	if !h.Canary {
		return 0, true
	}
	size, err := h.Mem.Load(base, 8)
	if err != nil || size == 0 {
		return 0, true // freed or never handed out: nothing armed
	}
	return h.checkCanarySlack(base, size)
}

// checkCanarySlack scans the slack of an allocated slot for the first
// byte that no longer carries the canary pattern.
func (h *Heap) checkCanarySlack(base, size uint64) (uint64, bool) {
	slotSize := lowfat.Size(base)
	if slotSize == lowfat.SizeMax {
		return 0, true
	}
	addr, end := base+Size+size, base+slotSize
	for addr < end {
		span, err := h.Mem.LoadSlice(addr, int(end-addr))
		if err != nil {
			return 0, true // slack page unmapped: nothing to verify
		}
		for i, b := range span {
			if b != CanaryByte {
				if h.tel != nil {
					h.tel.canarySmashes.Inc()
				}
				return addr + uint64(i), false
			}
		}
		addr += uint64(len(span))
	}
	return 0, true
}

// UnderAllocated reports whether the object with the given id was
// deliberately under-allocated by the self-test mode.
func (h *Heap) UnderAllocated(id uint64) bool {
	s, ok := h.allocPC[id]
	return ok && s.UnderAlloc
}

// Free releases the object at ptr. Freeing a non-object pointer or an
// already-free object is detected and reported as an error.
func (h *Heap) Free(ptr uint64) error {
	if ptr == 0 {
		return nil // free(NULL) is a no-op
	}
	base := ptr - Size
	if lowfat.IsLowFat(ptr) {
		if lowfat.Base(base) != base || lowfat.Base(ptr) != base {
			h.noteMallocError()
			return fmt.Errorf("redzone: free of non-object pointer %#x", ptr)
		}
	}
	size, err := h.Mem.Load(base, 8)
	if err != nil {
		h.noteMallocError()
		return fmt.Errorf("redzone: free of unmapped pointer %#x", ptr)
	}
	if size == 0 {
		h.noteMallocError()
		return fmt.Errorf("redzone: double free of %#x", ptr)
	}
	// Canary mode: verify the slack before poisoning the header. A smash
	// is reported after the free completes — the detection must not leak
	// the slot or perturb quarantine accounting.
	var canaryErr error
	if h.Canary {
		if addr, ok := h.checkCanarySlack(base, size); !ok {
			canaryErr = &CanaryError{Addr: addr, Ptr: ptr}
		}
	}
	// Mark Free: SIZE=0 merges the free state into the bounds check
	// (paper §4.2, "Mergeable code").
	if err := h.Mem.Store(base, 8, 0); err != nil {
		return err
	}
	if h.tel != nil {
		h.tel.poisonOps.Inc() // poisoned the slot's Free state
	}
	if id, err := h.Mem.Load(base+8, 8); err == nil {
		if s, ok := h.allocPC[id]; ok {
			s.FreePC = h.notedPC
			s.FreeStack = h.notedStack
			h.allocPC[id] = s
		}
	}
	if h.QuarantineBytes == 0 {
		if err := h.LF.Free(base); err != nil {
			return err
		}
		return canaryErr
	}
	h.quarantine = append(h.quarantine, base)
	h.quarantineUsage += lowfat.Size(base)
	for h.quarantineUsage > h.QuarantineBytes && len(h.quarantine) > 0 {
		old := h.quarantine[0]
		h.quarantine = h.quarantine[1:]
		h.quarantineUsage -= lowfat.Size(old)
		if err := h.LF.Free(old); err != nil {
			return err
		}
	}
	if h.tel != nil {
		h.tel.quarantineBytes.Set(h.quarantineUsage)
		h.tel.quarantineObjs.Set(uint64(len(h.quarantine)))
	}
	return canaryErr
}

// Realloc resizes an allocation, copying the contents.
func (h *Heap) Realloc(ptr, size uint64) (uint64, error) {
	if ptr == 0 {
		return h.Malloc(size)
	}
	if size == 0 {
		return 0, h.Free(ptr)
	}
	oldSize, err := h.Mem.Load(ptr-Size, 8)
	if err != nil || oldSize == 0 {
		h.noteMallocError()
		return 0, fmt.Errorf("redzone: realloc of invalid pointer %#x", ptr)
	}
	np, err := h.Malloc(size)
	if err != nil {
		return 0, err
	}
	n := oldSize
	if size < n {
		n = size
	}
	if err := h.Mem.Memcpy(np, ptr, n); err != nil {
		return 0, err
	}
	if err := h.Free(ptr); err != nil {
		var ce *CanaryError
		if errors.As(err, &ce) {
			return np, err // the resize succeeded; surface the detection
		}
		return 0, err
	}
	return np, nil
}

// ObjectSize returns the malloc'd SIZE stored in the metadata of the object
// whose redzone base is base.
func (h *Heap) ObjectSize(base uint64) (uint64, error) {
	return h.Mem.Load(base, 8)
}

// ObjectInfo describes the heap object that owns (or is nearest to) a
// faulting address, resolved for forensic reports.
type ObjectInfo struct {
	Base     uint64 // redzone base of the owning slot
	Ptr      uint64 // object start (Base + redzone Size)
	Size     uint64 // object SIZE metadata (0 once freed; Record.Size keeps the original)
	ID       uint64 // allocation counter stored in the metadata
	SlotSize uint64 // low-fat slot size holding the object

	// Offset is addr − Ptr: negative inside the leading redzone,
	// ≥ Size past the end of the object.
	Offset  int64
	PastEnd bool // addr is beyond the object's last byte
	Freed   bool // SIZE metadata is 0, i.e. the object was freed

	Record    AllocRecord // forensic alloc/free record, if tracked
	HasRecord bool
}

// maxNeighborScan bounds the backward slot scan for far overflows.
const maxNeighborScan = 64

// ObjectAt resolves addr to its owning heap object. An address inside a
// slot's leading redzone doubles as the tail redzone of the *previous*
// adjacent slot (paper §4.1), so when the previous slot holds a tracked
// object the overflow is attributed to it as a past-the-end access —
// that is the common off-by-N heap overflow. A far (non-incremental)
// overflow lands in a slot never handed out; for those the scan walks
// backwards a bounded number of slots to the nearest tracked object, the
// ASan "N bytes to the right of" attribution.
func (h *Heap) ObjectAt(addr uint64) (ObjectInfo, bool) {
	base := lowfat.Base(addr)
	if base == 0 {
		return ObjectInfo{}, false
	}
	if addr-base < Size {
		// In the leading redzone: prefer the adjacent previous object.
		prev := base - lowfat.Size(base)
		if lowfat.Base(prev) == prev {
			if info, ok := h.slotInfo(prev, addr); ok && info.HasRecord {
				return info, true
			}
		}
	}
	if info, ok := h.slotInfo(base, addr); ok {
		return info, true
	}
	slot := lowfat.Size(base)
	for i := uint64(1); i <= maxNeighborScan && i*slot <= base; i++ {
		cand := base - i*slot
		if lowfat.Base(cand) != cand {
			break // left the size-class region
		}
		if info, ok := h.slotInfo(cand, addr); ok && info.HasRecord {
			return info, true
		}
	}
	return ObjectInfo{}, false
}

// slotInfo builds the ObjectInfo for the slot at base, classifying addr
// relative to that slot's object.
func (h *Heap) slotInfo(base, addr uint64) (ObjectInfo, bool) {
	size, err := h.Mem.Load(base, 8)
	if err != nil {
		return ObjectInfo{}, false // slot never handed out
	}
	id, err := h.Mem.Load(base+8, 8)
	if err != nil {
		return ObjectInfo{}, false
	}
	info := ObjectInfo{
		Base:     base,
		Ptr:      base + Size,
		Size:     size,
		ID:       id,
		SlotSize: lowfat.Size(base),
		Offset:   int64(addr) - int64(base+Size),
		Freed:    size == 0,
	}
	info.Record, info.HasRecord = h.allocPC[id]
	objSize := size
	if info.Freed && info.HasRecord {
		objSize = info.Record.Size // SIZE metadata poisoned on free
	}
	info.PastEnd = info.Offset >= 0 && uint64(info.Offset) >= objSize
	return info, info.ID != 0 || !info.Freed
}

// StateOf classifies ptr exactly as the instrumented check does: via the
// low-fat base operation and the in-redzone metadata (paper §4.1).
func (h *Heap) StateOf(ptr uint64) State {
	base := lowfat.Base(ptr)
	if base == 0 {
		return StateNonFat
	}
	if ptr-base < Size {
		return StateRedzone
	}
	size, err := h.Mem.Load(base, 8)
	if err != nil {
		return StateNonFat // slot never handed out; header unmapped
	}
	if size == 0 {
		return StateFree
	}
	if ptr-base < Size+size {
		return StateAllocated
	}
	// Past the object but inside the slot: allocation padding. The
	// accurate SIZE-based check treats this as out of bounds.
	return StateRedzone
}
