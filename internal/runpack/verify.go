package runpack

import (
	"archive/tar"
	"compress/gzip"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Stable exit codes for rfpack (and the documented contract for CI
// scripts asserting on runpack integrity). Each seeded tamper mode maps
// to exactly one code: flipping a member byte or truncating it is
// ExitBadDigest; editing the manifest or its seal is ExitBadManifest;
// renaming or removing a member is ExitMissing; an unknown or future
// manifest schema is ExitBadSchema.
const (
	ExitOK          = 0 // pack verified / replay byte-identical
	ExitToolError   = 1 // I/O or internal failure
	ExitUsage       = 2 // bad command line
	ExitBadDigest   = 3 // member content digest or size mismatch
	ExitBadManifest = 4 // manifest seal or chain digest broken
	ExitMissing     = 5 // member missing, renamed, or not in the manifest
	ExitBadSchema   = 6 // unsupported schema version / malformed manifest
	ExitReplayDiff  = 7 // replay diverged from the packed artifacts
)

// VerifyError is a verification failure carrying its stable exit code.
type VerifyError struct {
	Code   int
	Member string // offending member, when one is identifiable
	Reason string
}

// Error implements the error interface.
func (e *VerifyError) Error() string {
	if e.Member != "" {
		return fmt.Sprintf("runpack: %s: %s", e.Member, e.Reason)
	}
	return "runpack: " + e.Reason
}

// ExitCode maps an error from Verify/Replay to the rfpack exit code:
// nil is ExitOK, a *VerifyError carries its own code, anything else is
// ExitToolError.
func ExitCode(err error) int {
	if err == nil {
		return ExitOK
	}
	var ve *VerifyError
	if errors.As(err, &ve) {
		return ve.Code
	}
	return ExitToolError
}

// Pack is an opened runpack: a directory or an in-memory tarball image.
type Pack struct {
	dir     string            // non-empty when directory-backed
	files   map[string][]byte // non-nil when tarball-backed
	listing []string          // every file present, sorted
}

// Open opens a pack directory or a .tar.gz/.tgz tarball of one.
func Open(path string) (*Pack, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if fi.IsDir() {
		ents, err := os.ReadDir(path)
		if err != nil {
			return nil, err
		}
		p := &Pack{dir: path}
		for _, e := range ents {
			if e.Type().IsRegular() {
				p.listing = append(p.listing, e.Name())
			}
		}
		sort.Strings(p.listing)
		return p, nil
	}
	if strings.HasSuffix(path, ".tgz") || strings.HasSuffix(path, ".tar.gz") {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return openTar(f)
	}
	return nil, fmt.Errorf("runpack: %s is neither a directory nor a .tar.gz pack", path)
}

// openTar reads a gzipped tarball into an in-memory pack.
func openTar(r io.Reader) (*Pack, error) {
	gz, err := gzip.NewReader(r)
	if err != nil {
		return nil, err
	}
	defer gz.Close()
	tr := tar.NewReader(gz)
	p := &Pack{files: map[string][]byte{}}
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if hdr.Typeflag != tar.TypeReg {
			continue
		}
		name := filepath.Base(hdr.Name)
		data, err := io.ReadAll(tr)
		if err != nil {
			return nil, err
		}
		p.files[name] = data
		p.listing = append(p.listing, name)
	}
	sort.Strings(p.listing)
	return p, nil
}

// ReadMember returns one file's content, or os.ErrNotExist.
func (p *Pack) ReadMember(name string) ([]byte, error) {
	if p.files != nil {
		data, ok := p.files[name]
		if !ok {
			return nil, fmt.Errorf("runpack member %s: %w", name, os.ErrNotExist)
		}
		return data, nil
	}
	return os.ReadFile(filepath.Join(p.dir, name))
}

// List returns every file present in the pack, sorted.
func (p *Pack) List() []string { return p.listing }

// Manifest reads and parses the manifest without verifying anything.
// Use Verify for the integrity-checked path.
func (p *Pack) Manifest() (*Manifest, error) {
	data, err := p.ReadMember(ManifestName)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, err
	}
	return &m, nil
}

// Verify re-checks the pack end to end: the outer manifest seal, the
// manifest schema, every member's size and SHA-256, the chained content
// digest, and that no unknown files hide inside the pack. On success it
// returns the (now trusted) manifest.
func Verify(p *Pack) (*Manifest, error) {
	sealData, err := p.ReadMember(DigestName)
	if err != nil {
		return nil, &VerifyError{Code: ExitBadManifest, Member: DigestName,
			Reason: "missing pack seal"}
	}
	manData, err := p.ReadMember(ManifestName)
	if err != nil {
		return nil, &VerifyError{Code: ExitBadManifest, Member: ManifestName,
			Reason: "missing manifest"}
	}
	fields := strings.Fields(string(sealData))
	if len(fields) != 2 || fields[0] != digestPrefix {
		return nil, &VerifyError{Code: ExitBadManifest, Member: DigestName,
			Reason: "malformed pack seal"}
	}
	sum := sha256.Sum256(manData)
	if fields[1] != hex.EncodeToString(sum[:]) {
		return nil, &VerifyError{Code: ExitBadManifest, Member: ManifestName,
			Reason: "manifest does not match its seal digest"}
	}
	var man Manifest
	if err := json.Unmarshal(manData, &man); err != nil {
		return nil, &VerifyError{Code: ExitBadSchema, Member: ManifestName,
			Reason: fmt.Sprintf("malformed manifest: %v", err)}
	}
	if man.SchemaVersion != SchemaVersion {
		return nil, &VerifyError{Code: ExitBadSchema, Member: ManifestName,
			Reason: fmt.Sprintf("unsupported schema_version %d (tool supports %d)",
				man.SchemaVersion, SchemaVersion)}
	}
	known := map[string]bool{ManifestName: true, DigestName: true}
	for _, m := range man.Members {
		known[m.Name] = true
		data, err := p.ReadMember(m.Name)
		if err != nil {
			return nil, &VerifyError{Code: ExitMissing, Member: m.Name,
				Reason: "member missing from pack"}
		}
		if int64(len(data)) != m.Size {
			return nil, &VerifyError{Code: ExitBadDigest, Member: m.Name,
				Reason: fmt.Sprintf("size %d, manifest records %d", len(data), m.Size)}
		}
		sum := sha256.Sum256(data)
		if hex.EncodeToString(sum[:]) != m.SHA256 {
			return nil, &VerifyError{Code: ExitBadDigest, Member: m.Name,
				Reason: "content digest mismatch"}
		}
	}
	if got := chainDigest(man.Members); got != man.ChainDigest {
		return nil, &VerifyError{Code: ExitBadManifest, Member: ManifestName,
			Reason: "chain digest mismatch"}
	}
	for _, name := range p.List() {
		if !known[name] {
			return nil, &VerifyError{Code: ExitMissing, Member: name,
				Reason: "file present in pack but not in manifest"}
		}
	}
	return &man, nil
}

// VerifyPath opens and verifies a pack directory or tarball in one step.
func VerifyPath(path string) (*Manifest, error) {
	p, err := Open(path)
	if err != nil {
		return nil, err
	}
	return Verify(p)
}

// Tar writes a sealed pack directory as a deterministic gzipped tarball:
// entries sorted by name, zeroed timestamps and ownership, fixed modes.
// The same pack always produces the same bytes.
func Tar(dir string, w io.Writer) error {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var names []string
	for _, e := range ents {
		if e.Type().IsRegular() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	gz, err := gzip.NewWriterLevel(w, gzip.BestCompression)
	if err != nil {
		return err
	}
	tw := tar.NewWriter(gz)
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		hdr := &tar.Header{
			Name:     name,
			Mode:     0o644,
			Size:     int64(len(data)),
			ModTime:  time.Unix(0, 0),
			Typeflag: tar.TypeReg,
			Format:   tar.FormatPAX,
		}
		if err := tw.WriteHeader(hdr); err != nil {
			return err
		}
		if _, err := tw.Write(data); err != nil {
			return err
		}
	}
	if err := tw.Close(); err != nil {
		return err
	}
	return gz.Close()
}
