package runpack

import (
	"errors"

	"redfat/internal/vm"
)

// Stable rfvm exit codes: 0 for a clean run, one distinct code per
// detection kind, and a distinct code for a cycle-budget abort, so
// runpack replay and CI scripts can assert on the *kind* of failure
// without scraping stderr. Codes 10–20 take precedence over the guest's
// own exit status (which rfvm otherwise passes through masked to 7 bits).
const (
	ExitDetectOOBWrite    = 10
	ExitDetectOOBRead     = 11
	ExitDetectUAF         = 12
	ExitDetectCorruptMeta = 13
	ExitDetectInvalidFree = 14
	ExitCycleBudget       = 20
)

// DetectionExit maps a memory-error kind to its stable exit code.
func DetectionExit(kind vm.MemErrorKind) int {
	switch kind {
	case vm.ErrOOBWrite:
		return ExitDetectOOBWrite
	case vm.ErrOOBRead:
		return ExitDetectOOBRead
	case vm.ErrUseAfterFree:
		return ExitDetectUAF
	case vm.ErrCorruptMeta:
		return ExitDetectCorruptMeta
	case vm.ErrInvalidFree:
		return ExitDetectInvalidFree
	}
	return ExitToolError
}

// RunExit computes the rfvm process exit status for a finished run:
// detections first (the first recorded error decides the code, which is
// deterministic — the VM retires errors in execution order), then a
// cycle-budget abort, then any other run failure, then the guest's own
// exit code masked to 7 bits. Replay packs record this value and assert
// it reproduces.
func RunExit(guestExit uint64, errs []vm.MemError, runErr error) int {
	if len(errs) > 0 {
		return DetectionExit(errs[0].Kind)
	}
	var me *vm.MemError
	if errors.As(runErr, &me) {
		return DetectionExit(me.Kind)
	}
	var cle *vm.CycleLimitError
	if errors.As(runErr, &cle) {
		return ExitCycleBudget
	}
	if runErr != nil {
		return ExitToolError
	}
	return int(guestExit & 0x7F)
}
