// Package runpack implements digest-signed run artifacts: every hardened
// run (rfvm execution, redfat rewrite, rfbench matrix) can be captured as
// a self-describing directory — the inputs, knobs, detection reports and
// measurements that produced a result — integrity-checked so that any
// later reader can prove the artifact is exactly what the tool wrote, and
// replayable so that any detection or cycle count can be reproduced
// byte-for-byte on demand.
//
// A runpack is a flat directory (or a deterministic .tar.gz of one, see
// Tar) holding:
//
//   - manifest.json — the signed manifest: schema version, pack kind,
//     tool identity, CLI argv, the run/knob specification, and one entry
//     per member file (name, size, SHA-256), plus the chained content
//     digest over all members in order.
//   - runpack.digest — "rfpack1 <hex sha256 of manifest.json>". Editing
//     the manifest (or its digest) breaks this outer seal.
//   - member files — the recorded binary, result.json, reports.json,
//     telemetry.json, bench.json, ... as listed in the manifest.
//
// The digest chain is
//
//	chain_0 = SHA-256("redfat-runpack-chain-v1")
//	chain_i = SHA-256(chain_{i-1} ‖ name_i ‖ 0x00 ‖ SHA-256(content_i))
//
// so tampering with any member, reordering, renaming, or dropping one
// changes the final chain digest even if the per-member hashes are also
// edited to match — and editing the manifest to cover the tracks breaks
// the outer runpack.digest seal instead.
//
// Manifests are deliberately timestamp-free: a pack's bytes are a pure
// function of the inputs, knobs and tool version, which keeps packs
// content-addressable and lets replay demand byte equality.
package runpack

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/debug"
	"strings"
)

// SchemaVersion versions the manifest encoding. Verify rejects packs
// written by a different major schema.
const SchemaVersion = 1

// ToolVersion identifies the writing tool generation inside manifests.
const ToolVersion = "redfat-go/6"

// Reserved file names inside a pack (not members of the digest chain;
// the manifest is sealed by runpack.digest instead).
const (
	ManifestName = "manifest.json"
	DigestName   = "runpack.digest"
)

// digestPrefix tags the outer seal file format.
const digestPrefix = "rfpack1"

// chainSeed starts the member digest chain.
const chainSeed = "redfat-runpack-chain-v1"

// Pack kinds.
const (
	KindRun     = "run"     // an rfvm execution (binary + result + reports)
	KindRewrite = "rewrite" // a redfat hardening (input + hardened binary)
	KindBench   = "bench"   // an rfbench experiment matrix (bench.json)
)

// Member is one recorded file of a pack.
type Member struct {
	Name   string `json:"name"`
	Size   int64  `json:"size"`
	SHA256 string `json:"sha256"`
}

// RunSpec records everything replay needs to re-execute a run pack's
// binary deterministically. Host-only performance knobs (block cache,
// TLB, chaining) are deliberately absent: they cannot change guest
// cycles, detections or output.
type RunSpec struct {
	Input     []uint64 `json:"input,omitempty"`
	Hardened  bool     `json:"hardened,omitempty"`
	Memcheck  bool     `json:"memcheck,omitempty"`
	Abort     bool     `json:"abort,omitempty"`
	MaxCycles uint64   `json:"max_cycles,omitempty"`
	Forensics bool     `json:"forensics,omitempty"`
	// Superblock-tier configuration: replay must execute under the
	// recorded tier knobs so host-side dispatch matches the recording
	// (guest results are identical regardless; this is provenance and
	// belt-and-suspenders for replay).
	NoJIT        bool   `json:"no_jit,omitempty"`
	NoIndirect   bool   `json:"no_indirect,omitempty"`
	JITThreshold uint64 `json:"jit_threshold,omitempty"`
	// Libc-interposition and allocator hardening modes. Unlike the tier
	// knobs these are guest-visible (they change cycles and detections),
	// so replay must restore them exactly.
	NoLibcCheck     bool   `json:"no_libc_check,omitempty"`
	QuarantineBytes int64  `json:"quarantine_bytes,omitempty"`
	Canary          bool   `json:"canary,omitempty"`
	UnderAllocEvery uint64 `json:"under_alloc_every,omitempty"`
}

// KnobSpec is the decoded .rf.config hardening configuration: which
// checks the binary carries and which optimizations shaped them. For
// rewrite packs it is the configuration to replay; for run packs it is
// provenance extracted from the executed binary.
type KnobSpec struct {
	LowFat        bool   `json:"lowfat"`
	CheckReads    bool   `json:"check_reads"`
	SizeCheck     bool   `json:"size_check"`
	Elim          bool   `json:"elim"`
	Batch         bool   `json:"batch"`
	Merge         bool   `json:"merge"`
	ElimDom       bool   `json:"elim_dom"`
	LocalLiveness bool   `json:"local_liveness,omitempty"`
	NoClobberSpec bool   `json:"no_clobber_spec,omitempty"`
	Profile       bool   `json:"profile,omitempty"`
	MaxBatch      int    `json:"max_batch"`
	AllowList     bool   `json:"allow_list,omitempty"`
	NoLibcCheck   bool   `json:"no_libc_check,omitempty"`
	NoIndirect    bool   `json:"no_indirect,omitempty"`
	ConfigHex     string `json:"config_hex,omitempty"` // raw .rf.config bytes
}

// Manifest is the signed description of a pack.
type Manifest struct {
	SchemaVersion int       `json:"schema_version"`
	Kind          string    `json:"kind"`
	Tool          string    `json:"tool"`
	ToolVersion   string    `json:"tool_version"`
	GitRev        string    `json:"git_rev,omitempty"`
	Args          []string  `json:"args,omitempty"`
	Run           *RunSpec  `json:"run,omitempty"`
	Knobs         *KnobSpec `json:"knobs,omitempty"`
	Members       []Member  `json:"members"`
	ChainDigest   string    `json:"chain_digest"`
}

// GitRev best-effort reads the VCS revision stamped into the running
// binary ("" when the build carries none, e.g. test binaries).
func GitRev() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	for _, s := range info.Settings {
		if s.Key == "vcs.revision" {
			if len(s.Value) > 12 {
				return s.Value[:12]
			}
			return s.Value
		}
	}
	return ""
}

// Builder accumulates members and seals them into a pack directory.
// Member order is insertion order and becomes part of the digest chain,
// so callers must add members in a deterministic sequence (never from a
// map iteration — rfvet enforces this).
type Builder struct {
	dir string
	man Manifest
	err error
}

// NewBuilder creates (or reuses) the pack directory and starts a
// manifest of the given kind for the given tool invocation.
func NewBuilder(dir, kind, tool string, args []string) (*Builder, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Builder{
		dir: dir,
		man: Manifest{
			SchemaVersion: SchemaVersion,
			Kind:          kind,
			Tool:          tool,
			ToolVersion:   ToolVersion,
			GitRev:        GitRev(),
			Args:          args,
		},
	}, nil
}

// SetRun attaches the replay specification (run packs).
func (b *Builder) SetRun(spec *RunSpec) { b.man.Run = spec }

// SetKnobs attaches the hardening configuration.
func (b *Builder) SetKnobs(k *KnobSpec) { b.man.Knobs = k }

// AddBytes records one member file. Names must be flat (no separators)
// and must not collide with the reserved manifest/digest names. Errors
// are sticky and reported by Seal.
func (b *Builder) AddBytes(name string, data []byte) {
	if b.err != nil {
		return
	}
	if strings.ContainsAny(name, "/\\") || name == ManifestName || name == DigestName || name == "" {
		b.err = fmt.Errorf("runpack: invalid member name %q", name)
		return
	}
	for _, m := range b.man.Members {
		if m.Name == name {
			b.err = fmt.Errorf("runpack: duplicate member %q", name)
			return
		}
	}
	if err := os.WriteFile(filepath.Join(b.dir, name), data, 0o644); err != nil {
		b.err = err
		return
	}
	sum := sha256.Sum256(data)
	b.man.Members = append(b.man.Members, Member{
		Name:   name,
		Size:   int64(len(data)),
		SHA256: hex.EncodeToString(sum[:]),
	})
}

// AddJSON records a member serialized as indented JSON (struct key order,
// so byte-stable for tagged types; map keys are sorted by encoding/json).
func (b *Builder) AddJSON(name string, v any) {
	if b.err != nil {
		return
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		b.err = err
		return
	}
	b.AddBytes(name, append(data, '\n'))
}

// Seal computes the digest chain, writes manifest.json, and signs it
// with runpack.digest. After Seal the pack verifies.
func (b *Builder) Seal() error {
	if b.err != nil {
		return b.err
	}
	b.man.ChainDigest = chainDigest(b.man.Members)
	data, err := json.MarshalIndent(&b.man, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(filepath.Join(b.dir, ManifestName), data, 0o644); err != nil {
		return err
	}
	seal := sha256.Sum256(data)
	line := fmt.Sprintf("%s %s\n", digestPrefix, hex.EncodeToString(seal[:]))
	return os.WriteFile(filepath.Join(b.dir, DigestName), []byte(line), 0o644)
}

// chainDigest folds the members, in order, into the chained digest: each
// link binds the previous link, the member name, and the member content
// hash, so renames and reorders change the result as surely as edits.
func chainDigest(members []Member) string {
	h := sha256.Sum256([]byte(chainSeed))
	chain := h[:]
	for _, m := range members {
		raw, err := hex.DecodeString(m.SHA256)
		if err != nil {
			raw = []byte(m.SHA256) // malformed hex still chains deterministically
		}
		e := sha256.New()
		e.Write(chain)
		e.Write([]byte(m.Name))
		e.Write([]byte{0})
		e.Write(raw)
		chain = e.Sum(nil)
	}
	return hex.EncodeToString(chain)
}
