package runpack

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"redfat"
	"redfat/internal/juliet"
	"redfat/internal/vm"
)

// hardenCase assembles one Juliet/CVE case and hardens it under opt.
func hardenCase(t *testing.T, c *juliet.Case, opt redfat.Options) (orig, hard *redfat.Binary, rep *redfat.Report) {
	t.Helper()
	bin, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	h, r, err := redfat.Harden(bin, opt)
	if err != nil {
		t.Fatal(err)
	}
	return bin, h, r
}

// makeRunPack executes a hardened detection case with forensics and the
// flight recorder on and packs the run into a fresh directory.
func makeRunPack(t *testing.T) (dir string, res *redfat.Result, runErr error) {
	t.Helper()
	c := juliet.CVECases()[0]
	_, hard, _ := hardenCase(t, c, redfat.Defaults())
	spec := RunSpec{Input: juliet.Trigger(c), Hardened: true, Forensics: true}
	flight := redfat.NewFlight(0)
	res, runErr = redfat.Run(hard, redfat.RunOptions{
		Input: spec.Input, Hardened: true, Forensics: true, Flight: flight,
	})
	if res == nil {
		t.Fatalf("run produced no result: %v", runErr)
	}
	if len(res.Errors) == 0 {
		t.Fatal("detection case detected nothing; tamper tests need reports")
	}
	hardData, err := hard.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	dir = filepath.Join(t.TempDir(), "pack")
	if err := PackRun(dir, []string{"-hardened", "prog.relf"}, hardData, hard, spec, res, runErr, nil, flight.Dump()); err != nil {
		t.Fatal(err)
	}
	return dir, res, runErr
}

func TestRunPackVerifiesAndReplaysByteIdentical(t *testing.T) {
	dir, res, _ := makeRunPack(t)
	p, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	man, err := Verify(p)
	if err != nil {
		t.Fatalf("clean pack failed verify: %v", err)
	}
	if man.Kind != KindRun || man.Run == nil || man.Knobs == nil {
		t.Fatalf("manifest incomplete: kind=%q run=%v knobs=%v", man.Kind, man.Run, man.Knobs)
	}
	rep, err := Replay(p, man)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if !rep.Identical() {
		t.Fatalf("replay diverged in %v", rep.Mismatched)
	}
	if rep.ReplayCycles != res.Cycles || rep.PackedCycles != res.Cycles {
		t.Fatalf("cycles: packed %d, replay %d, run %d", rep.PackedCycles, rep.ReplayCycles, res.Cycles)
	}
	if rep.ReplayExit != rep.PackedExit {
		t.Fatalf("exit: packed %d, replay %d", rep.PackedExit, rep.ReplayExit)
	}
	// The reports must have been part of the byte comparison.
	found := false
	for _, name := range rep.Compared {
		if name == MemberReports {
			found = true
		}
	}
	if !found {
		t.Fatalf("reports.json not compared (compared %v)", rep.Compared)
	}
}

// TestRunSpecRecordsJITConfig packs a run under a non-default superblock
// configuration, checks the tier knobs round-trip through the sealed
// manifest, replays byte-identically under them, and rejects a tampered
// tier field (the seal covers the run spec).
func TestRunSpecRecordsJITConfig(t *testing.T) {
	c := juliet.CVECases()[0]
	_, hard, _ := hardenCase(t, c, redfat.Defaults())
	spec := RunSpec{Input: juliet.Trigger(c), Hardened: true, Forensics: true,
		JITThreshold: 2}
	res, runErr := redfat.Run(hard, redfat.RunOptions{
		Input: spec.Input, Hardened: true, Forensics: true,
		NoJIT: spec.NoJIT, JITThreshold: spec.JITThreshold,
	})
	if res == nil {
		t.Fatalf("run produced no result: %v", runErr)
	}
	hardData, err := hard.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "pack")
	if err := PackRun(dir, []string{"-hardened", "-jit-threshold", "2", "prog.relf"},
		hardData, hard, spec, res, runErr, nil, nil); err != nil {
		t.Fatal(err)
	}
	man, err := VerifyPath(dir)
	if err != nil {
		t.Fatalf("clean pack failed verify: %v", err)
	}
	if man.Run == nil || man.Run.NoJIT || man.Run.JITThreshold != 2 {
		t.Fatalf("tier config did not round-trip: %+v", man.Run)
	}
	p, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Replay(p, man)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if !rep.Identical() {
		t.Fatalf("replay diverged in %v", rep.Mismatched)
	}
	// Flipping the recorded tier config must break the manifest seal.
	bad := tamper(t, dir, func(t *testing.T, dir string) {
		path := filepath.Join(dir, ManifestName)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		edited := bytes.Replace(data, []byte(`"jit_threshold": 2`), []byte(`"jit_threshold": 3`), 1)
		if bytes.Equal(edited, data) {
			t.Fatal("jit_threshold edit did not apply")
		}
		if err := os.WriteFile(path, edited, 0o644); err != nil {
			t.Fatal(err)
		}
	})
	if _, err := VerifyPath(bad); ExitCode(err) != ExitBadManifest {
		t.Fatalf("tampered tier config: exit %d (%v), want %d", ExitCode(err), err, ExitBadManifest)
	}
}

// TestRunSpecRecordsLibcAndAllocatorModes packs a libc-span detection run
// under non-default hardening modes, checks the knobs round-trip through
// the sealed manifest, replays byte-identically under them (the knobs are
// guest-visible: replay without them would diverge), and rejects tampered
// mode fields.
func TestRunSpecRecordsLibcAndAllocatorModes(t *testing.T) {
	c := juliet.LibcCases()[0] // OOB through memcpy: only the span check sees it
	_, hard, _ := hardenCase(t, c, redfat.Defaults())
	spec := RunSpec{Input: juliet.Trigger(c), Hardened: true,
		QuarantineBytes: 4096, Canary: true, UnderAllocEvery: 64}
	res, runErr := redfat.Run(hard, redfat.RunOptions{
		Input: spec.Input, Hardened: true,
		QuarantineBytes: spec.QuarantineBytes, Canary: spec.Canary,
		UnderAllocEvery: spec.UnderAllocEvery,
	})
	if res == nil {
		t.Fatalf("run produced no result: %v", runErr)
	}
	if len(res.Errors) == 0 {
		t.Fatal("span check missed the libc overflow; replay test needs a detection")
	}
	hardData, err := hard.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "pack")
	if err := PackRun(dir, []string{"-hardened", "-canary", "prog.relf"},
		hardData, hard, spec, res, runErr, nil, nil); err != nil {
		t.Fatal(err)
	}
	man, err := VerifyPath(dir)
	if err != nil {
		t.Fatalf("clean pack failed verify: %v", err)
	}
	if man.Run == nil || man.Run.NoLibcCheck || !man.Run.Canary ||
		man.Run.QuarantineBytes != 4096 || man.Run.UnderAllocEvery != 64 {
		t.Fatalf("mode config did not round-trip: %+v", man.Run)
	}
	p, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Replay(p, man)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if !rep.Identical() {
		t.Fatalf("replay diverged in %v", rep.Mismatched)
	}
	// Flipping any recorded mode knob must break the manifest seal.
	edits := []struct {
		name     string
		old, new string
	}{
		{"canary", `"canary": true`, `"canary": false`},
		{"quarantine", `"quarantine_bytes": 4096`, `"quarantine_bytes": 0`},
		{"underalloc", `"under_alloc_every": 64`, `"under_alloc_every": 1`},
	}
	for _, e := range edits {
		t.Run(e.name, func(t *testing.T) {
			bad := tamper(t, dir, func(t *testing.T, dir string) {
				path := filepath.Join(dir, ManifestName)
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				edited := bytes.Replace(data, []byte(e.old), []byte(e.new), 1)
				if bytes.Equal(edited, data) {
					t.Fatalf("%s edit did not apply", e.name)
				}
				if err := os.WriteFile(path, edited, 0o644); err != nil {
					t.Fatal(err)
				}
			})
			if _, err := VerifyPath(bad); ExitCode(err) != ExitBadManifest {
				t.Fatalf("tampered %s: exit %d (%v), want %d",
					e.name, ExitCode(err), err, ExitBadManifest)
			}
		})
	}
}

// TestRunSpecNoLibcCheckIdentity packs the same libc overflow case with
// the span intrinsics disabled: the run must detect nothing, and replay
// must restore the knob (replaying with checks on would re-detect and
// diverge).
func TestRunSpecNoLibcCheckIdentity(t *testing.T) {
	c := juliet.LibcCases()[0]
	_, hard, _ := hardenCase(t, c, redfat.Defaults())
	spec := RunSpec{Input: juliet.Trigger(c), Hardened: true, NoLibcCheck: true}
	res, runErr := redfat.Run(hard, redfat.RunOptions{
		Input: spec.Input, Hardened: true, NoLibcCheck: true,
	})
	if res == nil {
		t.Fatalf("run produced no result: %v", runErr)
	}
	if len(res.Errors) != 0 {
		t.Fatalf("libc checks disabled but run still detected: %v", res.Errors)
	}
	hardData, err := hard.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "pack")
	if err := PackRun(dir, []string{"-hardened", "-nolibccheck", "prog.relf"},
		hardData, hard, spec, res, runErr, nil, nil); err != nil {
		t.Fatal(err)
	}
	man, err := VerifyPath(dir)
	if err != nil {
		t.Fatalf("clean pack failed verify: %v", err)
	}
	if man.Run == nil || !man.Run.NoLibcCheck {
		t.Fatalf("no_libc_check did not round-trip: %+v", man.Run)
	}
	p, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Replay(p, man)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if !rep.Identical() {
		t.Fatalf("replay diverged in %v", rep.Mismatched)
	}
}

func TestRewritePackReplayAcrossKnobMatrix(t *testing.T) {
	base := redfat.Defaults()
	o0 := base
	o0.Elim, o0.Batch, o0.Merge, o0.ElimDom = false, false, false, false
	noLowFat := base
	noLowFat.LowFat = false
	noReads := base
	noReads.CheckReads = false
	knobs := []struct {
		name string
		opt  redfat.Options
	}{
		{"defaults", base},
		{"O0", o0},
		{"redzone-only", noLowFat},
		{"write-only", noReads},
	}
	c := juliet.CVECases()[0]
	for _, k := range knobs {
		t.Run(k.name, func(t *testing.T) {
			orig, hard, rep := hardenCase(t, c, k.opt)
			origData, err := orig.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			dir := filepath.Join(t.TempDir(), "pack")
			if err := PackRewrite(dir, []string{"-o", "out.relf"}, origData, hard, k.opt, nil, rep); err != nil {
				t.Fatal(err)
			}
			man, err := VerifyPath(dir)
			if err != nil {
				t.Fatalf("clean %s pack failed verify: %v", k.name, err)
			}
			p, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			rr, err := Replay(p, man)
			if err != nil {
				t.Fatalf("replay: %v", err)
			}
			if !rr.Identical() {
				t.Fatalf("re-hardening diverged in %v", rr.Mismatched)
			}
		})
	}
}

// tamper clones the pack directory and applies one mutation, so every
// subtest starts from the same sealed pack.
func tamper(t *testing.T, src string, mutate func(t *testing.T, dir string)) string {
	t.Helper()
	dst := filepath.Join(t.TempDir(), "tampered")
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	mutate(t, dst)
	return dst
}

func TestVerifyDetectsTampering(t *testing.T) {
	dir, _, _ := makeRunPack(t)
	if _, err := VerifyPath(dir); err != nil {
		t.Fatalf("pristine pack must verify before tampering: %v", err)
	}
	cases := []struct {
		name   string
		want   int
		mutate func(t *testing.T, dir string)
	}{
		{"flipped-report-byte", ExitBadDigest, func(t *testing.T, dir string) {
			path := filepath.Join(dir, MemberReports)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)/2] ^= 0x01
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"flipped-flight-byte", ExitBadDigest, func(t *testing.T, dir string) {
			path := filepath.Join(dir, MemberFlight)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)/2] ^= 0x01
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"truncated-member", ExitBadDigest, func(t *testing.T, dir string) {
			path := filepath.Join(dir, MemberBinary)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"edited-manifest", ExitBadManifest, func(t *testing.T, dir string) {
			path := filepath.Join(dir, ManifestName)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			edited := bytes.Replace(data, []byte(`"kind": "run"`), []byte(`"kind": "ran"`), 1)
			if bytes.Equal(edited, data) {
				t.Fatal("manifest edit did not apply")
			}
			if err := os.WriteFile(path, edited, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"edited-seal-digest", ExitBadManifest, func(t *testing.T, dir string) {
			path := filepath.Join(dir, DigestName)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			// Flip one hex digit of the seal without breaking its format.
			i := bytes.IndexByte(data, ' ') + 1
			if data[i] == '0' {
				data[i] = '1'
			} else {
				data[i] = '0'
			}
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"renamed-member", ExitMissing, func(t *testing.T, dir string) {
			if err := os.Rename(filepath.Join(dir, MemberResult),
				filepath.Join(dir, "renamed.json")); err != nil {
				t.Fatal(err)
			}
		}},
		{"deleted-member", ExitMissing, func(t *testing.T, dir string) {
			if err := os.Remove(filepath.Join(dir, MemberResult)); err != nil {
				t.Fatal(err)
			}
		}},
		{"smuggled-extra-file", ExitMissing, func(t *testing.T, dir string) {
			if err := os.WriteFile(filepath.Join(dir, "extra.bin"), []byte("x"), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := VerifyPath(tamper(t, dir, tc.mutate))
			if err == nil {
				t.Fatal("tampered pack verified clean")
			}
			if got := ExitCode(err); got != tc.want {
				t.Fatalf("exit code %d (%v), want %d", got, err, tc.want)
			}
		})
	}
}

// TestFlightIsHostOnly pins the observability knobs outside the replay
// contract: flight.json is sealed in the pack (the tamper matrix covers
// it) but the RunSpec carries no flight or listen field, so replay —
// which runs without any recorder or server attached — still reproduces
// the packed result byte-for-byte and never re-derives the flight dump.
func TestFlightIsHostOnly(t *testing.T) {
	dir, _, _ := makeRunPack(t)
	p, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	man, err := Verify(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.ReadMember(MemberFlight); err != nil {
		t.Fatalf("flight.json not packed: %v", err)
	}
	specJSON, err := json.Marshal(man.Run)
	if err != nil {
		t.Fatal(err)
	}
	for _, knob := range []string{"flight", "listen"} {
		if strings.Contains(strings.ToLower(string(specJSON)), knob) {
			t.Errorf("run spec leaks host-only knob %q: %s", knob, specJSON)
		}
	}
	rep, err := Replay(p, man)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if !rep.Identical() {
		t.Fatalf("replay diverged in %v", rep.Mismatched)
	}
	for _, name := range rep.Compared {
		if name == MemberFlight {
			t.Fatal("replay re-derived flight.json; it must stay un-replayed")
		}
	}
}

func TestVerifyRejectsUnknownSchema(t *testing.T) {
	dir, _, _ := makeRunPack(t)
	// A future-schema pack with an intact seal must fail on the schema
	// check specifically, not on the seal: re-sign the edited manifest the
	// way a newer tool would.
	bad := tamper(t, dir, func(t *testing.T, dir string) {
		path := filepath.Join(dir, ManifestName)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		edited := bytes.Replace(data, []byte(`"schema_version": 1`), []byte(`"schema_version": 999`), 1)
		if bytes.Equal(edited, data) {
			t.Fatal("schema edit did not apply")
		}
		if err := os.WriteFile(path, edited, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := resign(dir, edited); err != nil {
			t.Fatal(err)
		}
	})
	_, err := VerifyPath(bad)
	if got := ExitCode(err); got != ExitBadSchema {
		t.Fatalf("exit code %d (%v), want %d", got, err, ExitBadSchema)
	}
}

// resign rewrites runpack.digest over edited manifest bytes (what a
// hostile editor covering their tracks, or a future tool, would do).
func resign(dir string, manData []byte) error {
	sum := sha256.Sum256(manData)
	line := digestPrefix + " " + hex.EncodeToString(sum[:]) + "\n"
	return os.WriteFile(filepath.Join(dir, DigestName), []byte(line), 0o644)
}

func TestTarRoundtrip(t *testing.T) {
	dir, _, _ := makeRunPack(t)
	var a, b bytes.Buffer
	if err := Tar(dir, &a); err != nil {
		t.Fatal(err)
	}
	if err := Tar(dir, &b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("Tar is not deterministic: two runs differ")
	}
	path := filepath.Join(t.TempDir(), "pack.tgz")
	if err := os.WriteFile(path, a.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	man, err := VerifyPath(path)
	if err != nil {
		t.Fatalf("tarball failed verify: %v", err)
	}
	p, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Replay(p, man)
	if err != nil {
		t.Fatalf("replay from tarball: %v", err)
	}
	if !rep.Identical() {
		t.Fatalf("tarball replay diverged in %v", rep.Mismatched)
	}
}

func TestBuilderRejectsBadMemberNames(t *testing.T) {
	for _, name := range []string{"", "a/b", `a\b`, ManifestName, DigestName} {
		b, err := NewBuilder(t.TempDir(), KindRun, "test", nil)
		if err != nil {
			t.Fatal(err)
		}
		b.AddBytes(name, []byte("x"))
		if err := b.Seal(); err == nil {
			t.Errorf("member name %q accepted", name)
		}
	}
	b, err := NewBuilder(t.TempDir(), KindRun, "test", nil)
	if err != nil {
		t.Fatal(err)
	}
	b.AddBytes("dup.bin", []byte("x"))
	b.AddBytes("dup.bin", []byte("y"))
	if err := b.Seal(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate member not rejected: %v", err)
	}
}

func TestRunExitCodes(t *testing.T) {
	kindCases := []struct {
		kind vm.MemErrorKind
		want int
	}{
		{vm.ErrOOBWrite, ExitDetectOOBWrite},
		{vm.ErrOOBRead, ExitDetectOOBRead},
		{vm.ErrUseAfterFree, ExitDetectUAF},
		{vm.ErrCorruptMeta, ExitDetectCorruptMeta},
		{vm.ErrInvalidFree, ExitDetectInvalidFree},
	}
	for _, tc := range kindCases {
		if got := RunExit(0, []vm.MemError{{Kind: tc.kind}}, nil); got != tc.want {
			t.Errorf("RunExit(%v) = %d, want %d", tc.kind, got, tc.want)
		}
		// A detection surfaced only through the abort error maps the same.
		if got := RunExit(0, nil, &vm.MemError{Kind: tc.kind}); got != tc.want {
			t.Errorf("RunExit(err %v) = %d, want %d", tc.kind, got, tc.want)
		}
	}
	if got := RunExit(0, nil, &vm.CycleLimitError{Cycles: 7}); got != ExitCycleBudget {
		t.Errorf("cycle budget exit = %d, want %d", got, ExitCycleBudget)
	}
	if got := RunExit(0, nil, os.ErrClosed); got != ExitToolError {
		t.Errorf("generic error exit = %d, want %d", got, ExitToolError)
	}
	if got := RunExit(0, nil, nil); got != ExitOK {
		t.Errorf("clean exit = %d, want 0", got)
	}
	if got := RunExit(42, nil, nil); got != 42 {
		t.Errorf("guest exit passthrough = %d, want 42", got)
	}
	if got := RunExit(0x1FF, nil, nil); got != 0x7F {
		t.Errorf("guest exit mask = %d, want %d", got, 0x7F)
	}
	// Detections take precedence over the guest code.
	if got := RunExit(42, []vm.MemError{{Kind: vm.ErrOOBRead}}, nil); got != ExitDetectOOBRead {
		t.Errorf("detection precedence = %d, want %d", got, ExitDetectOOBRead)
	}
}
