package runpack

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"

	"redfat"
	"redfat/internal/forensics"
	"redfat/internal/obs"
	"redfat/internal/profile"
	core "redfat/internal/redfat"
	"redfat/internal/relf"
	"redfat/internal/telemetry"
	"redfat/internal/vm"
)

// Well-known member names. Which members a pack carries depends on its
// kind and the flags of the recording run; the manifest is authoritative.
const (
	MemberBinary    = "binary.relf"   // run packs: the executed image
	MemberInput     = "input.relf"    // rewrite packs: the original image
	MemberHardened  = "hardened.relf" // rewrite packs: the produced image
	MemberResult    = "result.json"   // run packs: RunResult
	MemberReports   = "reports.json"  // run packs: forensic error reports
	MemberTelemetry = "telemetry.json"
	MemberFlight    = "flight.json"    // run packs: flight-recorder dump
	MemberProfile   = "profile.folded" // run packs: guest profile (folded stacks)
	MemberBench     = "bench.json"     // bench packs: bench.Results document
	MemberAllowList = "allowlist.txt"  // rewrite packs: profiling allow-list
	MemberRewrite   = "rewrite.json"   // rewrite packs: instrumentation report
)

// RunError is one detection in a packed RunResult (the replay-comparable
// projection of vm.MemError).
type RunError struct {
	Kind      string `json:"kind"`
	Addr      uint64 `json:"addr"`
	PC        uint64 `json:"pc"`
	Site      uint32 `json:"site,omitempty"`
	Component string `json:"component,omitempty"`
	Note      string `json:"note,omitempty"`
}

// RunResult is the packed outcome of an execution: everything replay
// must reproduce byte-for-byte (cycle counts, detections, output, and
// the stable exit status), plus a schema version so future readers can
// reject incompatible packs instead of misparsing them.
type RunResult struct {
	SchemaVersion int        `json:"schema_version"`
	ExitStatus    int        `json:"exit_status"` // stable rfvm exit code
	GuestExit     uint64     `json:"guest_exit"`
	Cycles        uint64     `json:"cycles"`
	Insts         uint64     `json:"insts"`
	Coverage      float64    `json:"coverage,omitempty"`
	Output        []byte     `json:"output,omitempty"`
	Errors        []RunError `json:"errors,omitempty"`
	DistinctSites int        `json:"distinct_sites,omitempty"`
	// Failure records a non-detection run failure (e.g. the cycle-budget
	// message); detections live in Errors instead.
	Failure string `json:"failure,omitempty"`
}

// BuildRunResult projects a finished execution into the packed form.
func BuildRunResult(res *redfat.Result, runErr error) *RunResult {
	rr := &RunResult{
		SchemaVersion: SchemaVersion,
		ExitStatus:    RunExit(res.ExitCode, res.Errors, runErr),
		GuestExit:     res.ExitCode,
		Cycles:        res.Cycles,
		Insts:         res.Insts,
		Coverage:      res.Coverage,
		Output:        res.Output,
		DistinctSites: redfat.DistinctErrorSites(res.Errors),
	}
	for i := range res.Errors {
		e := &res.Errors[i]
		rr.Errors = append(rr.Errors, RunError{
			Kind:      e.Kind.String(),
			Addr:      e.Addr,
			PC:        e.PC,
			Site:      e.Site,
			Component: e.Component,
			Note:      e.Note,
		})
	}
	var me *vm.MemError
	if runErr != nil && !errors.As(runErr, &me) {
		rr.Failure = runErr.Error()
	}
	return rr
}

// stableJSON is the single serialization used both when packing and when
// replaying, so byte comparison compares semantics, not formatting.
func stableJSON(v any) ([]byte, error) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// reportsJSON serializes forensic reports; an error-free run packs "[]"
// rather than omitting the member, so replay can always compare.
func reportsJSON(reps []*forensics.ErrorReport) ([]byte, error) {
	if reps == nil {
		reps = []*forensics.ErrorReport{}
	}
	return stableJSON(reps)
}

// KnobsFromOptions encodes a hardening configuration as a manifest
// KnobSpec, including the raw .rf.config bytes for exact replay.
func KnobsFromOptions(opt redfat.Options) *KnobSpec {
	return &KnobSpec{
		LowFat:        opt.LowFat,
		CheckReads:    opt.CheckReads,
		SizeCheck:     opt.SizeCheck,
		Elim:          opt.Elim,
		Batch:         opt.Batch,
		Merge:         opt.Merge,
		ElimDom:       opt.ElimDom,
		LocalLiveness: opt.LocalLiveness,
		NoClobberSpec: opt.NoClobberSpec,
		Profile:       opt.Profile,
		MaxBatch:      opt.MaxBatch,
		AllowList:     opt.AllowList != nil,
		NoLibcCheck:   opt.NoLibcCheck,
		NoIndirect:    opt.NoIndirect,
		ConfigHex:     hex.EncodeToString(core.EncodeConfig(opt)),
	}
}

// KnobsFromBinary extracts the KnobSpec recorded in a hardened binary's
// .rf.config section (provenance for run packs). Reports false for
// unhardened binaries.
func KnobsFromBinary(bin *relf.Binary) (*KnobSpec, bool) {
	s := bin.Section(core.ConfigSection)
	if s == nil {
		return nil, false
	}
	opt, hasAllow, err := core.DecodeConfig(s.Data)
	if err != nil {
		return nil, false
	}
	k := KnobsFromOptions(opt)
	k.AllowList = hasAllow
	k.ConfigHex = hex.EncodeToString(s.Data)
	return k, true
}

// Options reconstructs the hardening configuration a rewrite pack
// recorded (the allow-list itself, if any, is a separate member).
func (k *KnobSpec) Options() (redfat.Options, error) {
	if k.ConfigHex == "" {
		return redfat.Options{}, fmt.Errorf("runpack: knob spec has no config bytes")
	}
	raw, err := hex.DecodeString(k.ConfigHex)
	if err != nil {
		return redfat.Options{}, fmt.Errorf("runpack: bad config_hex: %v", err)
	}
	opt, _, err := core.DecodeConfig(raw)
	return opt, err
}

// RewriteReport is the packed projection of an instrumentation report —
// the counts replay re-derives and compares.
type RewriteReport struct {
	SchemaVersion int `json:"schema_version"`
	Operands      int `json:"operands"`
	Eliminated    int `json:"eliminated"`
	ElimDominated int `json:"elim_dominated"`
	Instrumented  int `json:"instrumented"`
	Checks        int `json:"checks"`
	Batches       int `json:"batches"`
	FullChecks    int `json:"full_checks"`
}

func buildRewriteReport(rep *redfat.Report) *RewriteReport {
	return &RewriteReport{
		SchemaVersion: SchemaVersion,
		Operands:      rep.Operands,
		Eliminated:    rep.Eliminated,
		ElimDominated: rep.ElimDominated,
		Instrumented:  rep.Instrumented,
		Checks:        rep.Checks,
		Batches:       rep.Batches,
		FullChecks:    rep.FullChecks,
	}
}

// PackRun writes a sealed run pack: the executed binary image (as loaded
// from disk), the replay spec, the packed result, forensic reports when
// the run collected them, and — when attached — the telemetry snapshot
// and the flight-recorder dump. flight.json participates in the digest
// chain like every member (tampering is detected), but replay does not
// re-derive it: the flight ring is a host-side observability artifact,
// and its knobs are deliberately absent from the RunSpec.
func PackRun(dir string, args []string, binData []byte, bin *relf.Binary,
	spec RunSpec, res *redfat.Result, runErr error, metrics *telemetry.Registry,
	flight *obs.FlightDump) error {
	b, err := NewBuilder(dir, KindRun, "rfvm", args)
	if err != nil {
		return err
	}
	sp := spec
	b.SetRun(&sp)
	if k, ok := KnobsFromBinary(bin); ok {
		b.SetKnobs(k)
	}
	b.AddBytes(MemberBinary, binData)
	resultData, err := stableJSON(BuildRunResult(res, runErr))
	if err != nil {
		return err
	}
	b.AddBytes(MemberResult, resultData)
	if spec.Forensics {
		repData, err := reportsJSON(res.Reports)
		if err != nil {
			return err
		}
		b.AddBytes(MemberReports, repData)
	}
	if metrics != nil {
		b.AddJSON(MemberTelemetry, metrics.Snapshot())
	}
	if flight != nil {
		flightData, err := stableJSON(flight)
		if err != nil {
			return err
		}
		b.AddBytes(MemberFlight, flightData)
	}
	return b.Seal()
}

// PackRewrite writes a sealed rewrite pack: original and hardened image,
// the knob configuration (raw .rf.config bytes for exact replay), the
// allow-list when one was used, and the instrumentation report.
func PackRewrite(dir string, args []string, origData []byte, hard *relf.Binary,
	opt redfat.Options, allowData []byte, rep *redfat.Report) error {
	b, err := NewBuilder(dir, KindRewrite, "redfat", args)
	if err != nil {
		return err
	}
	b.SetKnobs(KnobsFromOptions(opt))
	hardData, err := hard.Marshal()
	if err != nil {
		return err
	}
	b.AddBytes(MemberInput, origData)
	b.AddBytes(MemberHardened, hardData)
	if allowData != nil {
		b.AddBytes(MemberAllowList, allowData)
	}
	b.AddJSON(MemberRewrite, buildRewriteReport(rep))
	return b.Seal()
}

// PackBench writes a sealed bench pack around an rfbench results JSON
// document (already serialized by internal/bench with its own schema
// version).
func PackBench(dir string, args []string, benchJSON []byte) error {
	b, err := NewBuilder(dir, KindBench, "rfbench", args)
	if err != nil {
		return err
	}
	b.AddBytes(MemberBench, benchJSON)
	return b.Seal()
}

// ReplayReport is the outcome of re-executing a pack's recorded work and
// diffing it against the packed artifacts.
type ReplayReport struct {
	Kind       string
	Compared   []string // members re-derived and compared
	Mismatched []string // subset whose replayed bytes differ
	// Run packs: packed vs replayed cycle counts and exit status.
	PackedCycles uint64
	ReplayCycles uint64
	PackedExit   int
	ReplayExit   int
}

// Identical reports whether every compared member reproduced exactly.
func (r *ReplayReport) Identical() bool { return len(r.Mismatched) == 0 }

// Err returns the replay verdict as an error (nil when identical), with
// the stable ExitReplayDiff code on divergence.
func (r *ReplayReport) Err() error {
	if r.Identical() {
		return nil
	}
	return &VerifyError{Code: ExitReplayDiff,
		Reason: fmt.Sprintf("replay diverged in %v", r.Mismatched)}
}

// Replay re-executes the work a verified pack recorded and byte-compares
// the regenerated artifacts against the packed ones. Callers should
// Verify first; Replay trusts the manifest.
func Replay(p *Pack, man *Manifest) (*ReplayReport, error) {
	switch man.Kind {
	case KindRun:
		return replayRun(p, man)
	case KindRewrite:
		return replayRewrite(p, man)
	}
	return nil, &VerifyError{Code: ExitUsage,
		Reason: fmt.Sprintf("replay is not supported for %q packs; use verify and rfbench -baseline", man.Kind)}
}

// replayRun re-executes the packed binary under the recorded spec and
// compares result.json (cycles, detections, output, exit status) and
// reports.json byte-for-byte.
func replayRun(p *Pack, man *Manifest) (*ReplayReport, error) {
	if man.Run == nil {
		return nil, &VerifyError{Code: ExitBadSchema,
			Reason: "run pack has no run spec"}
	}
	binData, err := p.ReadMember(MemberBinary)
	if err != nil {
		return nil, err
	}
	bin, err := relf.Unmarshal(binData)
	if err != nil {
		return nil, err
	}
	spec := man.Run
	res, runErr := redfat.Run(bin, redfat.RunOptions{
		Input:           spec.Input,
		Hardened:        spec.Hardened,
		Memcheck:        spec.Memcheck,
		AbortOnError:    spec.Abort,
		MaxCycles:       spec.MaxCycles,
		Forensics:       spec.Forensics,
		NoJIT:           spec.NoJIT,
		NoIndirect:      spec.NoIndirect,
		JITThreshold:    spec.JITThreshold,
		NoLibcCheck:     spec.NoLibcCheck,
		QuarantineBytes: spec.QuarantineBytes,
		Canary:          spec.Canary,
		UnderAllocEvery: spec.UnderAllocEvery,
	})
	if res == nil {
		return nil, runErr
	}
	rep := &ReplayReport{Kind: KindRun}
	fresh, err := stableJSON(BuildRunResult(res, runErr))
	if err != nil {
		return nil, err
	}
	if err := rep.compare(p, MemberResult, fresh); err != nil {
		return nil, err
	}
	if spec.Forensics {
		freshReports, err := reportsJSON(res.Reports)
		if err != nil {
			return nil, err
		}
		if err := rep.compare(p, MemberReports, freshReports); err != nil {
			return nil, err
		}
	}
	var packed RunResult
	if data, err := p.ReadMember(MemberResult); err == nil {
		if err := json.Unmarshal(data, &packed); err != nil {
			return nil, &VerifyError{Code: ExitBadSchema, Member: MemberResult,
				Reason: fmt.Sprintf("malformed packed result: %v", err)}
		}
	}
	rep.PackedCycles, rep.ReplayCycles = packed.Cycles, res.Cycles
	rep.PackedExit = packed.ExitStatus
	rep.ReplayExit = RunExit(res.ExitCode, res.Errors, runErr)
	return rep, nil
}

// replayRewrite re-hardens the packed original under the recorded knobs
// and compares the produced image (and report) byte-for-byte.
func replayRewrite(p *Pack, man *Manifest) (*ReplayReport, error) {
	if man.Knobs == nil {
		return nil, &VerifyError{Code: ExitBadSchema,
			Reason: "rewrite pack has no knob spec"}
	}
	origData, err := p.ReadMember(MemberInput)
	if err != nil {
		return nil, err
	}
	bin, err := relf.Unmarshal(origData)
	if err != nil {
		return nil, err
	}
	opt, err := man.Knobs.Options()
	if err != nil {
		return nil, err
	}
	if allowData, err := p.ReadMember(MemberAllowList); err == nil {
		allow, err := profile.Load(bytes.NewReader(allowData))
		if err != nil {
			return nil, err
		}
		opt.AllowList = allow
	}
	hard, hrep, err := redfat.Harden(bin, opt)
	if err != nil {
		return nil, err
	}
	rep := &ReplayReport{Kind: KindRewrite}
	hardData, err := hard.Marshal()
	if err != nil {
		return nil, err
	}
	if err := rep.compare(p, MemberHardened, hardData); err != nil {
		return nil, err
	}
	freshReport, err := stableJSON(buildRewriteReport(hrep))
	if err != nil {
		return nil, err
	}
	if err := rep.compare(p, MemberRewrite, freshReport); err != nil {
		return nil, err
	}
	return rep, nil
}

// compare diffs freshly regenerated member bytes against the packed ones.
func (r *ReplayReport) compare(p *Pack, name string, fresh []byte) error {
	packed, err := p.ReadMember(name)
	if err != nil {
		return &VerifyError{Code: ExitMissing, Member: name,
			Reason: "member missing from pack"}
	}
	r.Compared = append(r.Compared, name)
	if !bytes.Equal(packed, fresh) {
		r.Mismatched = append(r.Mismatched, name)
	}
	return nil
}
