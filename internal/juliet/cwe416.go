package juliet

import (
	"fmt"

	"redfat/internal/asm"
	"redfat/internal/isa"
	"redfat/internal/relf"
)

// Extension suites beyond the paper's Table 2: CWE-416 (use-after-free)
// and CWE-415 (double free) cases in the same Juliet good/bad structure.
// The paper's title promises hardening against "more memory errors" —
// these suites validate the temporal-error side of the complementary
// design: use-after-free is caught by the redzone component's Free state
// (SIZE=0 in the merged check), which the low-fat component alone could
// never see (paper §2.1, "No use-after-free detection").

// uafFlow enumerates how the dangling pointer reaches the sink.
type uafFlow int

const (
	uafDirect  uafFlow = iota // free then use in straight line
	uafLoop                   // use under a loop after the free
	uafHelper                 // dangling pointer passed to a helper
	uafRealloc                // dangling alias left by realloc
	numUafFlows
)

// UAFCases generates the CWE-416 suite: flows × sinks (write/read) ×
// 8 sizes = 64 bad cases (each with a good variant).
func UAFCases() []*Case {
	var out []*Case
	for f := uafFlow(0); f < numUafFlows; f++ {
		for _, write := range []bool{true, false} {
			for v := 0; v < 8; v++ {
				f, write, v := f, write, v
				size := int64(24 + 24*v)
				kind := "R"
				if write {
					kind = "W"
				}
				out = append(out, &Case{
					ID:    fmt.Sprintf("CWE416_f%d_%s_v%d", f, kind, v),
					Group: "CWE416",
					Write: write,
					Input: []uint64{0},
					build: func(good bool) (*relf.Binary, error) {
						return buildUAF(f, write, size, good)
					},
				})
			}
		}
	}
	return out
}

func buildUAF(f uafFlow, write bool, size int64, good bool) (*relf.Binary, error) {
	b := asm.NewBuilder(asm.Options{})
	b.Func("main")
	b.MovRI(isa.RDI, size)
	b.CallImport("malloc")
	b.MovRR(isa.RBX, isa.RAX)
	b.StoreI(isa.RBX, 0, 7, 8)

	if !good {
		switch f {
		case uafRealloc:
			// realloc moves the object; RBX keeps the stale alias.
			b.MovRR(isa.RDI, isa.RBX)
			b.MovRI(isa.RSI, size*4)
			b.CallImport("realloc")
			b.MovRR(isa.R13, isa.RAX) // new pointer (unused)
		default:
			b.MovRR(isa.RDI, isa.RBX)
			b.CallImport("free")
		}
	}

	sink := func() {
		if write {
			b.StoreI(isa.RBX, 8, 0x42, 8)
		} else {
			b.Load(isa.RDX, isa.RBX, 8, 8)
			b.Emit(isa.Inst{Op: isa.TEST, Form: isa.FRR, Reg: isa.RDX, Reg2: isa.RDX, Size: 8})
		}
	}
	switch f {
	case uafDirect, uafRealloc:
		sink()
	case uafLoop:
		b.MovRI(isa.RCX, 0)
		b.Label("uloop")
		sink()
		b.AluRI(isa.ADD, isa.RCX, 1)
		b.AluRI(isa.CMP, isa.RCX, 4)
		b.Jcc(isa.JL, "uloop")
	case uafHelper:
		b.MovRR(isa.RDI, isa.RBX)
		b.Call("use")
	}
	if good {
		b.MovRR(isa.RDI, isa.RBX)
		b.CallImport("free")
	}
	b.MovRI(isa.RAX, 0)
	b.Ret()
	if f == uafHelper {
		b.Func("use")
		if write {
			b.StoreI(isa.RDI, 8, 0x42, 8)
		} else {
			b.Load(isa.RDX, isa.RDI, 8, 8)
			b.Emit(isa.Inst{Op: isa.TEST, Form: isa.FRR, Reg: isa.RDX, Reg2: isa.RDX, Size: 8})
		}
		b.Ret()
	}
	return b.Build()
}

// DoubleFreeCases generates the CWE-415 suite: 16 bad cases. Double frees
// are caught by the allocator interposition itself (the redzone wrapper's
// SIZE=0 state), not by instrumented checks — exactly how the real
// libredfat reports invalid frees.
func DoubleFreeCases() []*Case {
	var out []*Case
	for v := 0; v < 16; v++ {
		v := v
		size := int64(16 + 16*v)
		out = append(out, &Case{
			ID:    fmt.Sprintf("CWE415_v%02d", v),
			Group: "CWE415",
			Write: false,
			Input: []uint64{0},
			build: func(good bool) (*relf.Binary, error) {
				return buildDoubleFree(size, v%2 == 1, good)
			},
		})
	}
	return out
}

func buildDoubleFree(size int64, viaHelper, good bool) (*relf.Binary, error) {
	b := asm.NewBuilder(asm.Options{})
	b.Func("main")
	b.MovRI(isa.RDI, size)
	b.CallImport("malloc")
	b.MovRR(isa.RBX, isa.RAX)
	b.MovRR(isa.RDI, isa.RBX)
	if viaHelper {
		b.Call("release")
	} else {
		b.CallImport("free")
	}
	if !good {
		b.MovRR(isa.RDI, isa.RBX)
		b.CallImport("free") // the second free
	}
	b.MovRI(isa.RAX, 0)
	b.Ret()
	if viaHelper {
		b.Func("release")
		b.CallImport("free")
		b.Ret()
	}
	return b.Build()
}
