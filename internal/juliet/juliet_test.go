package juliet_test

import (
	"testing"

	"redfat/internal/juliet"
	"redfat/internal/memcheck"
	"redfat/internal/redfat"
	"redfat/internal/rtlib"
	"redfat/internal/vm"
)

func TestSuiteSizes(t *testing.T) {
	if n := len(juliet.CVECases()); n != 4 {
		t.Errorf("CVE cases = %d, want 4", n)
	}
	js := juliet.JulietCases()
	if len(js) != 480 || juliet.NumJuliet != 480 {
		t.Errorf("Juliet cases = %d/%d, want 480", len(js), juliet.NumJuliet)
	}
	ids := map[string]bool{}
	for _, c := range js {
		if ids[c.ID] {
			t.Fatalf("duplicate case id %s", c.ID)
		}
		ids[c.ID] = true
	}
}

// runCase returns (redfatDetected, memcheckDetected) for a bad case.
func runCase(t *testing.T, c *juliet.Case) (bool, bool) {
	t.Helper()
	bin, err := c.Build()
	if err != nil {
		t.Fatalf("%s: %v", c.ID, err)
	}
	hard, _, err := redfat.Harden(bin, redfat.Defaults())
	if err != nil {
		t.Fatalf("%s: %v", c.ID, err)
	}
	v, _, err := rtlib.RunHardened(hard, rtlib.RunConfig{
		Input: juliet.Trigger(c), Abort: true,
	})
	rf := len(v.Errors) > 0
	if _, ok := err.(*vm.MemError); ok {
		rf = true
	} else if err != nil {
		t.Fatalf("%s: hardened run: %v", c.ID, err)
	}

	mv, err := memcheck.Run(bin, rtlib.RunConfig{Input: juliet.Trigger(c), Abort: true})
	mc := len(mv.Errors) > 0
	if _, ok := err.(*vm.MemError); ok {
		mc = true
	} else if err != nil {
		t.Fatalf("%s: memcheck run: %v", c.ID, err)
	}
	return rf, mc
}

func TestCVEDetection(t *testing.T) {
	// Table 2: RedFat 4/4, Memcheck 0/4.
	for _, c := range juliet.CVECases() {
		rf, mc := runCase(t, c)
		if !rf {
			t.Errorf("%s: RedFat missed the non-incremental overflow", c.ID)
		}
		if mc {
			t.Errorf("%s: Memcheck unexpectedly detected the redzone skip", c.ID)
		}
	}
}

func TestJulietSample(t *testing.T) {
	// A representative slice of the 480 (the full sweep runs in the
	// bench harness); every 31st case to cover all flows and sinks.
	cases := juliet.JulietCases()
	for i := 0; i < len(cases); i += 31 {
		c := cases[i]
		rf, mc := runCase(t, c)
		if !rf {
			t.Errorf("%s: RedFat missed", c.ID)
		}
		if mc {
			t.Errorf("%s: Memcheck detected a redzone skip (should be invisible)", c.ID)
		}
	}
}

func TestGoodVariantsClean(t *testing.T) {
	// Good (in-bounds) variants must run clean under full hardening:
	// no false alarms on the Juliet structure itself.
	var cases []*juliet.Case
	cases = append(cases, juliet.CVECases()...)
	js := juliet.JulietCases()
	for i := 0; i < len(js); i += 53 {
		cases = append(cases, js[i])
	}
	for _, c := range cases {
		bin, err := c.BuildGood()
		if err != nil {
			t.Fatalf("%s: %v", c.ID, err)
		}
		hard, _, err := redfat.Harden(bin, redfat.Defaults())
		if err != nil {
			t.Fatalf("%s: %v", c.ID, err)
		}
		v, _, err := rtlib.RunHardened(hard, rtlib.RunConfig{
			Input: juliet.GoodInput(c), Abort: true,
		})
		if err != nil || len(v.Errors) != 0 {
			t.Errorf("%s (good): false alarm: %v %v", c.ID, err, v.Errors)
		}
	}
}
