package juliet

import (
	"redfat/internal/asm"
	"redfat/internal/isa"
	"redfat/internal/relf"
)

// Libc cases: out-of-bounds accesses that happen *inside* an interposed
// libc routine rather than in guest instructions. Per-access hardening
// cannot see them (the bytes move in the host-side binding); detection
// relies on the libredfat-style span check each hardened intrinsic runs
// over its operands. The str* rows double as the Memcheck contrast:
// Memcheck wraps the mem* entry points but not the string routines, so
// only the span-checked intrinsics catch the strcpy overflow.

// libcCopyRead builds a bad-variant read overflow through copy(dst, src, n):
// src is a 64-byte buffer, n = 64 + input, dst is large enough that only
// the source span is out of bounds.
func libcCopyRead(fn string) func(bool) (*relf.Binary, error) {
	return func(good bool) (*relf.Binary, error) {
		b := asm.NewBuilder(asm.Options{})
		b.Func("main")
		emitVictimPair(b, 64)
		b.MovRI(isa.RDI, 256) // dst: big enough for the overlong read
		b.CallImport("malloc")
		b.MovRR(isa.R12, isa.RAX)
		b.CallImport("rf_input") // extra bytes past the end (bad) or n (good)
		if !good {
			b.AluRI(isa.ADD, isa.RAX, 64) // n = size + extra
		}
		b.MovRR(isa.RDX, isa.RAX) // n
		b.MovRR(isa.RDI, isa.R12) // dst
		b.MovRR(isa.RSI, isa.RBX) // src
		b.CallImport(fn)
		b.MovRI(isa.RAX, 0)
		b.Ret()
		return b.Build()
	}
}

// libcMemsetWrite builds a bad-variant write overflow through
// memset(buf, 0x41, 64+input) on a 64-byte buffer.
func libcMemsetWrite(good bool) (*relf.Binary, error) {
	b := asm.NewBuilder(asm.Options{})
	b.Func("main")
	emitVictimPair(b, 64)
	b.CallImport("rf_input")
	if !good {
		b.AluRI(isa.ADD, isa.RAX, 64) // n = size + extra
	}
	b.MovRR(isa.RDX, isa.RAX) // n
	b.MovRR(isa.RDI, isa.RBX)
	b.MovRI(isa.RSI, 0x41)
	b.CallImport("memset")
	b.MovRI(isa.RAX, 0)
	b.Ret()
	return b.Build()
}

// libcStrcpyWrite builds the classic unbounded-string-copy overflow:
// strcpy of an input-length string (filled in a 64-byte source) into a
// 32-byte destination. Input > 31 overflows the destination; the good
// input fits. Both variants are the same program — the input alone
// decides, exactly as in the real CWE-121/787 strcpy idiom.
func libcStrcpyWrite(good bool) (*relf.Binary, error) {
	_ = good
	b := asm.NewBuilder(asm.Options{})
	b.Func("main")
	b.MovRI(isa.RDI, 32) // dst
	b.CallImport("malloc")
	b.MovRR(isa.RBX, isa.RAX)
	b.MovRI(isa.RDI, 64) // src
	b.CallImport("malloc")
	b.MovRR(isa.R13, isa.RAX)
	b.CallImport("rf_input") // string length (≤ 63)
	b.MovRR(isa.R14, isa.RAX)
	// Fill src with R14 non-NUL bytes, then the terminator.
	b.MovRI(isa.RCX, 0)
	b.Label("fill")
	b.AluRR(isa.CMP, isa.RCX, isa.R14)
	b.Jcc(isa.JGE, "copy")
	b.MovRI(isa.RDX, 0x41)
	b.StoreM(asm.MemBID(isa.R13, isa.RCX, 1, 0), isa.RDX, 1)
	b.AluRI(isa.ADD, isa.RCX, 1)
	b.Jmp("fill")
	b.Label("copy")
	b.StoreMI(asm.MemBID(isa.R13, isa.R14, 1, 0), 0, 1)
	b.MovRR(isa.RDI, isa.RBX) // dst
	b.MovRR(isa.RSI, isa.R13) // src
	b.CallImport("strcpy")
	b.MovRI(isa.RAX, 0)
	b.Ret()
	return b.Build()
}

// LibcCases returns the OOB-through-libc suite: overflows whose faulting
// access is performed by an interposed libc routine. They are not part of
// CVECases/JulietCases, so the seeded Table 2 rows are unchanged; the
// bench layer appends them as their own rows.
func LibcCases() []*Case {
	return []*Case{
		{
			ID: "LIBC-memcpy-read", Group: "Libc", Write: false,
			Input: []uint64{24}, // bytes past the end of the 64-byte source
			build: libcCopyRead("memcpy"),
		},
		{
			ID: "LIBC-memmove-read", Group: "Libc", Write: false,
			Input: []uint64{24},
			build: libcCopyRead("memmove"),
		},
		{
			ID: "LIBC-memset-write", Group: "Libc", Write: true,
			Input: []uint64{24}, // bytes past the end of the 64-byte buffer
			build: libcMemsetWrite,
		},
		{
			ID: "LIBC-strcpy-write", Group: "Libc", Write: true,
			Input: []uint64{48}, // string length: 49 bytes into a 32-byte dst
			build: libcStrcpyWrite,
		},
	}
}
