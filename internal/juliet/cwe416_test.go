package juliet_test

import (
	"testing"

	"redfat/internal/juliet"
	"redfat/internal/redfat"
	"redfat/internal/rtlib"
	"redfat/internal/vm"
)

func TestUAFSuiteSizes(t *testing.T) {
	if n := len(juliet.UAFCases()); n != 64 {
		t.Errorf("CWE-416 cases = %d, want 64", n)
	}
	if n := len(juliet.DoubleFreeCases()); n != 16 {
		t.Errorf("CWE-415 cases = %d, want 16", n)
	}
}

func TestUAFDetection(t *testing.T) {
	for i, c := range juliet.UAFCases() {
		if i%5 != 0 && !testing.Verbose() {
			continue // sample for test speed; the bench sweeps all
		}
		bin, err := c.Build()
		if err != nil {
			t.Fatalf("%s: %v", c.ID, err)
		}
		hard, _, err := redfat.Harden(bin, redfat.Defaults())
		if err != nil {
			t.Fatalf("%s: %v", c.ID, err)
		}
		v, _, err := rtlib.RunHardened(hard, rtlib.RunConfig{
			Input: juliet.Trigger(c), Abort: true,
		})
		detected := len(v.Errors) > 0
		if me, ok := err.(*vm.MemError); ok {
			if me.Kind != vm.ErrUseAfterFree {
				t.Errorf("%s: kind = %v, want use-after-free", c.ID, me.Kind)
			}
			detected = true
		} else if err != nil {
			t.Fatalf("%s: %v", c.ID, err)
		}
		if !detected {
			t.Errorf("%s: use-after-free not detected", c.ID)
		}
	}
}

func TestUAFGoodVariantsClean(t *testing.T) {
	for i, c := range juliet.UAFCases() {
		if i%7 != 0 {
			continue
		}
		bin, err := c.BuildGood()
		if err != nil {
			t.Fatalf("%s: %v", c.ID, err)
		}
		hard, _, err := redfat.Harden(bin, redfat.Defaults())
		if err != nil {
			t.Fatalf("%s: %v", c.ID, err)
		}
		v, _, err := rtlib.RunHardened(hard, rtlib.RunConfig{
			Input: juliet.GoodInput(c), Abort: true,
		})
		if err != nil || len(v.Errors) != 0 {
			t.Errorf("%s (good): false alarm: %v %v", c.ID, err, v.Errors)
		}
	}
}

func TestDoubleFreeDetection(t *testing.T) {
	for _, c := range juliet.DoubleFreeCases() {
		bin, err := c.Build()
		if err != nil {
			t.Fatalf("%s: %v", c.ID, err)
		}
		hard, _, err := redfat.Harden(bin, redfat.Defaults())
		if err != nil {
			t.Fatalf("%s: %v", c.ID, err)
		}
		v, _, err := rtlib.RunHardened(hard, rtlib.RunConfig{
			Input: juliet.Trigger(c), Abort: true,
		})
		detected := false
		for _, e := range v.Errors {
			if e.Kind == vm.ErrInvalidFree {
				detected = true
			}
		}
		if me, ok := err.(*vm.MemError); ok && me.Kind == vm.ErrInvalidFree {
			detected = true
		} else if err != nil && !ok {
			t.Fatalf("%s: %v", c.ID, err)
		}
		if !detected {
			t.Errorf("%s: double free not detected", c.ID)
		}

		// Good variant: clean.
		gbin, err := c.BuildGood()
		if err != nil {
			t.Fatal(err)
		}
		ghard, _, err := redfat.Harden(gbin, redfat.Defaults())
		if err != nil {
			t.Fatal(err)
		}
		gv, _, err := rtlib.RunHardened(ghard, rtlib.RunConfig{Abort: true})
		if err != nil || len(gv.Errors) != 0 {
			t.Errorf("%s (good): false alarm: %v %v", c.ID, err, gv.Errors)
		}
	}
}
