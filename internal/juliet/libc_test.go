package juliet_test

import (
	"strings"
	"testing"

	"redfat/internal/juliet"
	"redfat/internal/redfat"
	"redfat/internal/rtlib"
)

func TestLibcDetection(t *testing.T) {
	// OOB through interposed libc routines: the faulting bytes move in
	// the host-side binding, invisible to per-access instrumentation, so
	// a RedFat hit proves the intrinsic span checks. Memcheck wraps the
	// mem* entry points (the contiguous overflow crosses the redzone and
	// is caught) but not the string routines — strcpy is RedFat-only.
	for _, c := range juliet.LibcCases() {
		rf, mc := runCase(t, c)
		if !rf {
			t.Errorf("%s: span check missed the libc overflow", c.ID)
		}
		wantMC := strings.HasPrefix(c.ID, "LIBC-mem")
		if mc != wantMC {
			t.Errorf("%s: Memcheck detected=%v, want %v", c.ID, mc, wantMC)
		}
	}
}

func TestLibcGoodVariantsClean(t *testing.T) {
	for _, c := range juliet.LibcCases() {
		bin, err := c.BuildGood()
		if err != nil {
			t.Fatalf("%s: %v", c.ID, err)
		}
		hard, _, err := redfat.Harden(bin, redfat.Defaults())
		if err != nil {
			t.Fatalf("%s: %v", c.ID, err)
		}
		v, _, err := rtlib.RunHardened(hard, rtlib.RunConfig{
			Input: juliet.GoodInput(c), Abort: true,
		})
		if err != nil || len(v.Errors) != 0 {
			t.Errorf("%s (good): false alarm: %v %v", c.ID, err, v.Errors)
		}
	}
}
