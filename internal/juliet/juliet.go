// Package juliet builds the non-incremental-overflow detection suite of
// paper §7.2 (Table 2): four real-world CVE models and a 480-case Juliet
// CWE-122 (heap buffer overflow) suite.
//
// Every bad case performs an attacker-controlled *non-incremental*
// out-of-bounds access: the offset skips past the 16-byte redzone of the
// overflowed object and lands inside an adjacent allocated object. This is
// exactly the class redzone-only tools (Valgrind Memcheck) cannot see and
// RedFat's LowFat component catches (paper Problem #1).
//
// Each case also has a "good" variant (in-bounds access), mirroring the
// Juliet good/bad structure, used to confirm the absence of false alarms.
package juliet

import (
	"fmt"

	"redfat/internal/asm"
	"redfat/internal/isa"
	"redfat/internal/relf"
)

// Case is one test program of the suite.
type Case struct {
	ID    string
	Group string // "CVE" or "Juliet"
	Write bool   // the overflowing access is a write
	// Input is the attack input (the in-victim offset and flow values).
	Input []uint64
	// build assembles the program; good selects the in-bounds variant.
	build func(good bool) (*relf.Binary, error)
}

// Build assembles the bad (vulnerable+triggered) variant.
func (c *Case) Build() (*relf.Binary, error) { return c.build(false) }

// BuildGood assembles the good (in-bounds) variant.
func (c *Case) BuildGood() (*relf.Binary, error) { return c.build(true) }

// emitVictimPair emits the standard preamble: RBX = buffer of size s,
// R13 = adjacent victim of the same size, R14 = byte distance victim−buffer.
func emitVictimPair(b *asm.Builder, size int64) {
	b.MovRI(isa.RDI, size)
	b.CallImport("malloc")
	b.MovRR(isa.RBX, isa.RAX)
	b.MovRI(isa.RDI, size)
	b.CallImport("malloc")
	b.MovRR(isa.R13, isa.RAX)
	b.MovRR(isa.R14, isa.R13)
	b.AluRR(isa.SUB, isa.R14, isa.RBX)
}

// --- CVE models ---

// cveWireshark models CVE-2012-4295 (paper Fig. 1):
// channelised_fill_sdh_g707_format. The struct layout:
//
//	offset 0  m_vc_size      (u8)
//	offset 1  m_sdh_line_rate(u8)
//	offset 16 m_vc_index_array[5]
//
// Line 15: in_fmt->m_vc_index_array[speed-1] = 0, with attacker-chosen
// speed large enough to skip the redzone into the adjacent heap object.
func cveWireshark(good bool) (*relf.Binary, error) {
	b := asm.NewBuilder(asm.Options{})
	b.Func("main")
	emitVictimPair(b, 24) // sizeof(sdh_g707_format_t)
	// vc_size/speed from the (attacker's) packet.
	b.CallImport("rf_input")
	b.MovRR(isa.RCX, isa.RAX) // vc_size
	b.CallImport("rf_input")
	b.MovRR(isa.RDX, isa.RAX) // speed (attacker controlled)
	// if (vc_size == 0) return -1
	b.AluRI(isa.CMP, isa.RCX, 0)
	b.Jcc(isa.JNE, "fill")
	b.MovRI(isa.RAX, -1)
	b.Ret()
	b.Label("fill")
	b.Store(isa.RBX, 0, isa.RCX, 1) // in_fmt->m_vc_size = vc_size
	b.Store(isa.RBX, 1, isa.RDX, 1) // in_fmt->m_sdh_line_rate = speed
	// memset(&m_vc_index_array[0], 0xff, 5)
	b.MovRR(isa.R12, isa.RDX) // preserve speed across the call
	b.MovRR(isa.RDI, isa.RBX)
	b.AluRI(isa.ADD, isa.RDI, 16)
	b.MovRI(isa.RSI, 0xFF)
	b.MovRI(isa.RDX, 5)
	b.CallImport("memset")
	b.MovRR(isa.RDX, isa.R12)
	_ = good
	// in_fmt->m_vc_index_array[speed-1] = 0  — the vulnerable store.
	b.StoreMI(asm.MemBID(isa.RBX, isa.RDX, 1, 16-1), 0, 1)
	b.MovRI(isa.RAX, 0)
	b.Ret()
	return b.Build()
}

// cveIndexed models the php/7zip-style CVEs: a heap array accessed at an
// attacker-controlled index. In the bad variant the guest adds the
// groomed object distance (R14) to the input — the attacker's knowledge
// of the heap layout — so the access lands inside the adjacent victim
// under any allocator.
func cveIndexed(size int64, elem uint8, write bool) func(bool) (*relf.Binary, error) {
	return func(good bool) (*relf.Binary, error) {
		b := asm.NewBuilder(asm.Options{})
		b.Func("main")
		emitVictimPair(b, size)
		b.CallImport("rf_input") // attacker offset
		if !good {
			b.AluRR(isa.ADD, isa.RAX, isa.R14) // heap grooming
		}
		if write {
			b.MovRI(isa.RCX, 0x41)
			b.StoreM(asm.MemBID(isa.RBX, isa.RAX, 1, 0), isa.RCX, elem)
		} else {
			b.LoadM(isa.RDX, asm.MemBID(isa.RBX, isa.RAX, 1, 0), 8)
			b.Emit(isa.Inst{Op: isa.TEST, Form: isa.FRR, Reg: isa.RDX, Reg2: isa.RDX, Size: 8})
		}
		b.MovRI(isa.RAX, 0)
		b.Ret()
		return b.Build()
	}
}

// CVECases returns the four real-world CVE models of Table 2.
func CVECases() []*Case {
	return []*Case{
		{
			ID: "CVE-2007-3476", Group: "CVE", Write: true,
			Input: []uint64{0}, // first victim byte
			build: cveIndexed(64, 1, true),
		},
		{
			ID: "CVE-2016-1903", Group: "CVE", Write: false,
			Input: []uint64{8},
			build: cveIndexed(128, 8, false),
		},
		{
			ID: "CVE-2012-4295", Group: "CVE", Write: true,
			// vc_size=3, speed=200: the paper's example value, enough to
			// skip the 16-byte redzone into the adjacent heap object.
			Input: []uint64{3, 200},
			build: cveWireshark,
		},
		{
			ID: "CVE-2016-2335", Group: "CVE", Write: true,
			Input: []uint64{4},
			build: cveIndexed(96, 4, true),
		},
	}
}

// Trigger returns the attack input for the bad variant of a case.
func Trigger(c *Case) []uint64 { return c.Input }

// GoodInput returns an in-bounds input for the good variant.
func GoodInput(c *Case) []uint64 {
	if c.ID == "CVE-2012-4295" {
		return []uint64{3, 5} // speed ≤ 5: in bounds
	}
	return []uint64{1}
}

// --- Juliet CWE-122 generation ---

// flow enumerates Juliet-style data-flow variants for the overflow index.
type flow int

const (
	flowDirect      flow = iota // index straight from input
	flowArith                   // index = input + constant arithmetic
	flowHelper                  // index passed through a helper function
	flowConditional             // index selected by a branch
	flowStride                  // index reached by a striding loop
	flowMemory                  // index stored to and reloaded from memory
	flowScaled                  // index computed with a scaled operand
	flowDouble                  // index doubled through two helpers
	numFlows
)

// sink enumerates the overflowing access shapes.
type sink int

const (
	sinkStore8 sink = iota
	sinkStore4
	sinkStore2
	sinkStore1
	sinkLoad8
	sinkRMW
	numSinks
)

// NumJuliet is the number of generated CWE-122 bad cases (Table 2: 480).
const NumJuliet = int(numFlows) * int(numSinks) * 10

// JulietCases generates the CWE-122 suite: numFlows × numSinks × 10
// buffer sizes = 480 cases.
func JulietCases() []*Case {
	var out []*Case
	for f := flow(0); f < numFlows; f++ {
		for s := sink(0); s < numSinks; s++ {
			for v := 0; v < 10; v++ {
				f, s, v := f, s, v
				size := int64(16 + 16*v) // 16..160 bytes
				id := fmt.Sprintf("CWE122_f%02d_s%02d_v%02d", f, s, v)
				out = append(out, &Case{
					ID: id, Group: "Juliet",
					Write: s != sinkLoad8,
					Input: []uint64{4}, // in-victim offset
					build: func(good bool) (*relf.Binary, error) {
						return buildJuliet(f, s, size, good)
					},
				})
			}
		}
	}
	return out
}

// buildJuliet assembles one Juliet-style case.
func buildJuliet(f flow, s sink, size int64, good bool) (*relf.Binary, error) {
	b := asm.NewBuilder(asm.Options{})
	b.Func("main")
	emitVictimPair(b, size)
	b.CallImport("rf_input") // in-victim offset (bad) or in-bounds index (good)

	// Bad variants compute index = distance(R14) + input; good variants
	// use the input directly (kept within bounds by the harness).
	if !good {
		b.AluRR(isa.ADD, isa.RAX, isa.R14)
	}

	// Data-flow shaping.
	switch f {
	case flowDirect:
		// nothing
	case flowArith:
		b.AluRI(isa.ADD, isa.RAX, 7)
		b.AluRI(isa.SUB, isa.RAX, 7)
	case flowHelper:
		b.MovRR(isa.RDI, isa.RAX)
		b.Call("identity")
	case flowConditional:
		b.AluRI(isa.CMP, isa.RAX, 0)
		b.Jcc(isa.JE, "zero")
		b.Jmp("after")
		b.Label("zero")
		b.MovRI(isa.RAX, 0)
		b.Label("after")
	case flowStride:
		// Reach the index by striding in steps of 64 — a loop, but the
		// final access still skips redzones (non-incremental in effect).
		b.MovRR(isa.RDX, isa.RAX)
		b.MovRI(isa.RAX, 0)
		b.Label("stride")
		b.AluRI(isa.ADD, isa.RAX, 64)
		b.AluRR(isa.CMP, isa.RAX, isa.RDX)
		b.Jcc(isa.JLE, "stride")
		b.AluRI(isa.SUB, isa.RAX, 64)
		b.MovRR(isa.RCX, isa.RDX)
		b.AluRR(isa.SUB, isa.RCX, isa.RAX)
		b.AluRR(isa.ADD, isa.RAX, isa.RCX) // exact index again
	case flowMemory:
		b.Zero("spill", 8)
		b.StoreGlobal("spill", 0, isa.RAX, 8)
		b.LoadGlobal(isa.RAX, "spill", 0, 8)
	case flowScaled:
		b.MovRR(isa.RDX, isa.RAX)
		b.Shift(isa.SHR, isa.RDX, 1)
		b.AluRR(isa.SUB, isa.RAX, isa.RDX) // rax = ceil(rax/2)
		b.AluRR(isa.ADD, isa.RAX, isa.RDX) // back to full
	case flowDouble:
		b.MovRR(isa.RDI, isa.RAX)
		b.Call("identity")
		b.MovRR(isa.RDI, isa.RAX)
		b.Call("identity")
	}

	// Sink.
	b.MovRI(isa.RCX, 0x42)
	m := asm.MemBID(isa.RBX, isa.RAX, 1, 0)
	switch s {
	case sinkStore8:
		b.StoreM(m, isa.RCX, 8)
	case sinkStore4:
		b.StoreM(m, isa.RCX, 4)
	case sinkStore2:
		b.StoreM(m, isa.RCX, 2)
	case sinkStore1:
		b.StoreM(m, isa.RCX, 1)
	case sinkLoad8:
		b.LoadM(isa.RDX, m, 8)
		b.Emit(isa.Inst{Op: isa.TEST, Form: isa.FRR, Reg: isa.RDX, Reg2: isa.RDX, Size: 8})
	case sinkRMW:
		b.AluMR(isa.ADD, m, isa.RCX, 8)
	}
	b.MovRI(isa.RAX, 0)
	b.Ret()

	if f == flowHelper || f == flowDouble {
		b.Func("identity")
		b.MovRR(isa.RAX, isa.RDI)
		b.Ret()
	}
	return b.Build()
}
