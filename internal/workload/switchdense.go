package workload

import (
	"fmt"

	"redfat/internal/asm"
	"redfat/internal/isa"
	"redfat/internal/relf"
)

// This file holds the switch-dense benchmarks (computed-goto interpreter,
// jump-table state machine) that exercise the indirect-flow recovery, and
// the adversarial variants whose jump-table evidence is deliberately
// broken so the recovery must refuse to resolve them.
//
// The kernel shape is chosen so the recovery measurably unlocks check
// elimination: the loop head performs a dominating access to cell
// buf[i&255], and every dispatch handler touches the same cell through
// the same base/index registers. With recovered edges the handlers'
// checks are dominated by the loop head's and -elimdom removes them;
// with -noindirect the handlers are only reachable through ⊤ (they are
// address-taken entry points), no dominator crosses the dispatch, and
// the checks stay.

// dispatch: a computed-goto bytecode interpreter. opcode = i & 7;
// opcodes 0..3 dispatch through a declared jump table behind a bounds
// guard, opcodes 4..7 take the guarded default path.
func (e *emitter) dispatch() {
	b := e.b
	e.prologue()
	const cells = 256
	e.malloc(isa.RBX, cells*8)
	b.MovRR(isa.RDI, isa.RBX)
	b.MovRI(isa.RSI, 0)
	b.MovRI(isa.RDX, cells*8)
	b.CallImport("memset")
	b.MovRI(isa.RAX, 0)
	b.MovRI(isa.RCX, 0)
	tbl := e.pfx + "_ops"
	loop := e.lbl("loop")
	def := e.lbl("default")
	next := e.lbl("next")
	ops := []string{e.lbl("op0"), e.lbl("op1"), e.lbl("op2"), e.lbl("op3")}
	b.Label(loop)
	// The dominating access: cell = &buf[i & 255].
	b.MovRR(isa.R9, isa.RCX)
	b.AluRI(isa.AND, isa.R9, cells-1)
	b.AluMR(isa.ADD, asm.MemBID(isa.RBX, isa.R9, 8, 0), isa.RCX, 8)
	// opcode = i & 7, bounds-checked against the 4-entry table.
	b.MovRR(isa.RDX, isa.RCX)
	b.AluRI(isa.AND, isa.RDX, 7)
	b.AluRI(isa.CMP, isa.RDX, 3)
	b.Jcc(isa.JA, def)
	b.LoadIndexed(isa.R10, tbl, isa.RDX, 8, 8)
	b.JmpReg(isa.R10)
	// op0: cell += i
	b.Label(ops[0])
	b.Lpad()
	b.AluMR(isa.ADD, asm.MemBID(isa.RBX, isa.R9, 8, 0), isa.RCX, 8)
	b.Jmp(next)
	// op1: acc += cell
	b.Label(ops[1])
	b.Lpad()
	b.AluRM(isa.ADD, isa.RAX, asm.MemBID(isa.RBX, isa.R9, 8, 0), 8)
	b.Jmp(next)
	// op2: cell = opcode
	b.Label(ops[2])
	b.Lpad()
	b.StoreM(asm.MemBID(isa.RBX, isa.R9, 8, 0), isa.RDX, 8)
	b.Jmp(next)
	// op3: cell -= i
	b.Label(ops[3])
	b.Lpad()
	b.AluMR(isa.SUB, asm.MemBID(isa.RBX, isa.R9, 8, 0), isa.RCX, 8)
	b.Jmp(next)
	b.Label(def)
	b.AluRI(isa.ADD, isa.RAX, 3)
	b.Label(next)
	b.AluRI(isa.ADD, isa.RCX, 1)
	b.AluRR(isa.CMP, isa.RCX, isa.R12)
	b.Jcc(isa.JL, loop)

	sum := e.lbl("sum")
	b.MovRI(isa.RCX, 0)
	b.Label(sum)
	b.AluRM(isa.ADD, isa.RAX, asm.MemBID(isa.RBX, isa.RCX, 8, 0), 8)
	b.AluRI(isa.ADD, isa.RCX, 1)
	b.AluRI(isa.CMP, isa.RCX, cells)
	b.Jcc(isa.JL, sum)
	e.callFree(isa.RBX)
	e.epilogue()
	b.JumpTable(tbl, ops[0], ops[1], ops[2], ops[3])
}

// fsm: a three-state machine whose transition function is a jump table
// indexed by the state register. The state is always in range, so the
// guarded reset path is dead at runtime but keeps the bound provable.
func (e *emitter) fsm() {
	b := e.b
	e.prologue()
	const cells = 256
	e.malloc(isa.RBX, cells*8)
	b.MovRR(isa.RDI, isa.RBX)
	b.MovRI(isa.RSI, 0)
	b.MovRI(isa.RDX, cells*8)
	b.CallImport("memset")
	b.MovRI(isa.RSI, 0) // state (memset clobbered RSI)
	b.MovRI(isa.RAX, 0)
	b.MovRI(isa.RCX, 0)
	tbl := e.pfx + "_states"
	loop := e.lbl("loop")
	reset := e.lbl("reset")
	next := e.lbl("next")
	sts := []string{e.lbl("s0"), e.lbl("s1"), e.lbl("s2")}
	b.Label(loop)
	b.MovRR(isa.R9, isa.RCX)
	b.AluRI(isa.AND, isa.R9, cells-1)
	b.AluMR(isa.ADD, asm.MemBID(isa.RBX, isa.R9, 8, 0), isa.RSI, 8)
	b.AluRI(isa.CMP, isa.RSI, 2)
	b.Jcc(isa.JA, reset)
	b.LoadIndexed(isa.R10, tbl, isa.RSI, 8, 8)
	b.JmpReg(isa.R10)
	// s0 → s1: cell += i
	b.Label(sts[0])
	b.Lpad()
	b.AluMR(isa.ADD, asm.MemBID(isa.RBX, isa.R9, 8, 0), isa.RCX, 8)
	b.MovRI(isa.RSI, 1)
	b.Jmp(next)
	// s1 → s2: acc += cell
	b.Label(sts[1])
	b.Lpad()
	b.AluRM(isa.ADD, isa.RAX, asm.MemBID(isa.RBX, isa.R9, 8, 0), 8)
	b.MovRI(isa.RSI, 2)
	b.Jmp(next)
	// s2 → s0: cell = i
	b.Label(sts[2])
	b.Lpad()
	b.StoreM(asm.MemBID(isa.RBX, isa.R9, 8, 0), isa.RCX, 8)
	b.MovRI(isa.RSI, 0)
	b.Jmp(next)
	b.Label(reset)
	b.MovRI(isa.RSI, 0)
	b.Label(next)
	b.AluRI(isa.ADD, isa.RCX, 1)
	b.AluRR(isa.CMP, isa.RCX, isa.R12)
	b.Jcc(isa.JL, loop)

	sum := e.lbl("sum")
	b.MovRI(isa.RCX, 0)
	b.Label(sum)
	b.AluRM(isa.ADD, isa.RAX, asm.MemBID(isa.RBX, isa.RCX, 8, 0), 8)
	b.AluRI(isa.ADD, isa.RCX, 1)
	b.AluRI(isa.CMP, isa.RCX, cells)
	b.Jcc(isa.JL, sum)
	e.callFree(isa.RBX)
	e.epilogue()
	b.JumpTable(tbl, sts[0], sts[1], sts[2])
}

// SwitchDense returns the switch-dense marker-built benchmarks. They are
// kept out of All() — the 29-benchmark SPEC set is pinned by the paper's
// Table 1 — and appended by the benchmark driver where indirect-flow
// results are wanted.
func SwitchDense() []*Benchmark {
	k := func(kind KernKind, shift uint) Kern { return Kern{Kind: kind, ScaleShift: shift} }
	return []*Benchmark{
		bench("interp", C, 60000,
			[]Kern{k(KDispatch, 0), k(KString, 2)},
			[]bool{false, false}),
		bench("fsm", C, 60000,
			[]Kern{k(KFSM, 0), k(KSweep, 2)},
			[]bool{false, false}),
	}
}

// AdversarialCase is a marker-built benchmark whose jump-table evidence
// is deliberately broken. The recovery must leave its dispatch Unknown;
// the dispatch itself is dead at runtime (the guard always routes to the
// default path), so the binary still executes deterministically under
// landing-pad enforcement.
type AdversarialCase struct {
	Name string
	Why  string // what the recovery must refuse, and why

	Bench *Benchmark
	// mutate optionally corrupts the built binary's .rf.jt declarations.
	mutate func(*relf.Binary) error
}

// Build assembles the case and applies its metadata corruption.
func (a *AdversarialCase) Build() (*relf.Binary, error) {
	bin, err := a.Bench.Build()
	if err != nil {
		return nil, err
	}
	if a.mutate != nil {
		if err := a.mutate(bin); err != nil {
			return nil, fmt.Errorf("workload %s: %w", a.Name, err)
		}
	}
	return bin, nil
}

// advKernel emits a dispatch-shaped kernel for the adversarial cases.
// The opcode register is pinned to 7 so the bound guard (CMP bound-1)
// always routes to the default path: the indirect jump never executes.
// pads controls whether the table entries are landing pads; poison
// plants an immediate containing the LPAD byte, which disables the
// recovery's landing-pad-set fallback (a phantom pad would make the
// decoded-pad set unsound, and the VM's byte-level enforcement would
// accept it).
func advKernel(bound int64, pads, poison, padRodata bool) func(*emitter) {
	return func(e *emitter) {
		b := e.b
		e.prologue()
		const cells = 256
		e.malloc(isa.RBX, cells*8)
		b.MovRR(isa.RDI, isa.RBX)
		b.MovRI(isa.RSI, 0)
		b.MovRI(isa.RDX, cells*8)
		b.CallImport("memset")
		if poison {
			b.MovRI(isa.R11, int64(isa.LPAD))
		}
		b.MovRI(isa.RAX, 0)
		b.MovRI(isa.RCX, 0)
		tbl := e.pfx + "_tbl"
		loop := e.lbl("loop")
		def := e.lbl("default")
		next := e.lbl("next")
		hs := []string{e.lbl("h0"), e.lbl("h1"), e.lbl("h2")}
		b.Label(loop)
		b.MovRR(isa.R9, isa.RCX)
		b.AluRI(isa.AND, isa.R9, cells-1)
		b.AluMR(isa.ADD, asm.MemBID(isa.RBX, isa.R9, 8, 0), isa.RCX, 8)
		b.MovRI(isa.RDX, 7) // always above the guard: dispatch is dead
		b.AluRI(isa.CMP, isa.RDX, bound-1)
		b.Jcc(isa.JA, def)
		b.LoadIndexed(isa.R10, tbl, isa.RDX, 8, 8)
		b.JmpReg(isa.R10)
		for _, h := range hs {
			b.Label(h)
			if pads {
				b.Lpad()
			}
			b.AluMR(isa.ADD, asm.MemBID(isa.RBX, isa.R9, 8, 0), isa.RCX, 8)
			b.Jmp(next)
		}
		b.Label(def)
		b.AluRI(isa.ADD, isa.RAX, 3)
		b.Label(next)
		b.AluRI(isa.ADD, isa.RCX, 1)
		b.AluRR(isa.CMP, isa.RCX, isa.R12)
		b.Jcc(isa.JL, loop)

		sum := e.lbl("sum")
		b.MovRI(isa.RCX, 0)
		b.Label(sum)
		b.AluRM(isa.ADD, isa.RAX, asm.MemBID(isa.RBX, isa.RCX, 8, 0), 8)
		b.AluRI(isa.ADD, isa.RCX, 1)
		b.AluRI(isa.CMP, isa.RCX, cells)
		b.Jcc(isa.JL, sum)
		e.callFree(isa.RBX)
		e.epilogue()
		b.JumpTable(tbl, hs[0], hs[1], hs[2])
		if padRodata {
			// Deterministic non-pad words after the table, for the
			// overclaim case to read.
			b.ROData(tbl+"_pad", make([]byte, 24))
		}
	}
}

// advBench wraps one adversarial kernel into a benchmark.
func advBench(name string, bound int64, pads, poison, padRodata bool) *Benchmark {
	return bench(name, C, 20000,
		[]Kern{{Kind: KCustom, Emit: advKernel(bound, pads, poison, padRodata)}},
		[]bool{false})
}

// rewriteJT mutates the single declared jump table of a built binary.
func rewriteJT(bin *relf.Binary, f func(*relf.JumpTable)) error {
	s := bin.Section(relf.JumpTableSection)
	if s == nil {
		return fmt.Errorf("no %s section", relf.JumpTableSection)
	}
	tables, err := relf.DecodeJumpTables(s.Data)
	if err != nil {
		return err
	}
	if len(tables) != 1 {
		return fmt.Errorf("want 1 declared table, have %d", len(tables))
	}
	f(&tables[0])
	s.Data = relf.EncodeJumpTables(tables)
	return nil
}

// Adversarial returns the negative corpus: marker-built binaries whose
// jump-table evidence must NOT be trusted. Each models a distinct way
// real binaries lie about indirect flow; the recovery is required to
// leave every dispatch Unknown (rather than resolve it unsoundly), and
// the rfverify edge audit must agree.
func Adversarial() []*AdversarialCase {
	return []*AdversarialCase{
		{
			Name: "jt-overclaim",
			Why: "the declaration claims 6 entries but only 3 are pads; " +
				"the overlapping words are not landing pads, so trusting " +
				"the declared span would invent edges into data",
			Bench: advBench("jtoverclaim", 6, true, true, true),
			mutate: func(bin *relf.Binary) error {
				return rewriteJT(bin, func(t *relf.JumpTable) { t.Entries = 6 })
			},
		},
		{
			Name: "jt-unaligned",
			Why: "the declared table address is word-misaligned relative " +
				"to the load the dispatch performs, so the declaration " +
				"does not cover the span actually read",
			Bench: advBench("jtunaligned", 3, true, true, false),
			mutate: func(bin *relf.Binary) error {
				return rewriteJT(bin, func(t *relf.JumpTable) { t.Addr += 4 })
			},
		},
		{
			Name: "data-in-text-decoy",
			Why: "the declared table points at plain code labels that are " +
				"not landing pads — a decoy indistinguishable from data " +
				"masquerading as a dispatch table",
			Bench: advBench("jtdecoy", 3, false, false, false),
		},
	}
}
