package workload_test

import (
	"testing"

	"redfat/internal/memcheck"
	"redfat/internal/profile"
	"redfat/internal/redfat"
	"redfat/internal/rtlib"
	"redfat/internal/workload"
)

func TestRegistry(t *testing.T) {
	all := workload.All()
	if len(all) != 29 {
		t.Fatalf("benchmark count = %d, want 29 (full SPEC CPU2006)", len(all))
	}
	seen := map[string]bool{}
	for _, bm := range all {
		if seen[bm.Name] {
			t.Errorf("duplicate benchmark %q", bm.Name)
		}
		seen[bm.Name] = true
		if bm.TrainScale == 0 || bm.RefScale <= bm.TrainScale {
			t.Errorf("%s: bad scales %d/%d", bm.Name, bm.TrainScale, bm.RefScale)
		}
	}
	// The paper's specific planted properties.
	checks := map[string]struct{ fps, bugs int }{
		"perlbench": {1, 0}, "gcc": {14, 0}, "gobmk": {1, 0},
		"povray": {1, 0}, "bwaves": {5, 0}, "gromacs": {3, 0},
		"GemsFDTD": {32, 0}, "wrf": {26, 1}, "calculix": {2, 4},
		"bzip2": {0, 0}, "mcf": {0, 0},
	}
	for name, want := range checks {
		bm := workload.ByName(name)
		if bm == nil {
			t.Fatalf("benchmark %q missing", name)
		}
		if bm.PlantedFPs != want.fps || bm.PlantedBugs != want.bugs {
			t.Errorf("%s: planted fps=%d bugs=%d, want %d/%d",
				name, bm.PlantedFPs, bm.PlantedBugs, want.fps, want.bugs)
		}
	}
	if workload.ByName("nope") != nil {
		t.Error("ByName(nope) != nil")
	}
}

func TestAllBuild(t *testing.T) {
	for _, bm := range workload.All() {
		bin, err := bm.Build()
		if err != nil {
			t.Fatalf("%s: %v", bm.Name, err)
		}
		if !bin.Stripped {
			t.Errorf("%s: not stripped", bm.Name)
		}
		if bin.Text() == nil || len(bin.Text().Data) < 100 {
			t.Errorf("%s: implausibly small text", bm.Name)
		}
	}
}

// small returns a scaled-down copy for fast tests.
func small(bm *workload.Benchmark) *workload.Benchmark {
	cp := *bm
	cp.TrainScale = 300
	cp.RefScale = 1500
	return &cp
}

func TestAllRunBaseline(t *testing.T) {
	for _, bm := range workload.All() {
		bm := small(bm)
		bin, err := bm.Build()
		if err != nil {
			t.Fatal(err)
		}
		v, err := rtlib.RunBaseline(bin, rtlib.RunConfig{Input: bm.RefInput()})
		if err != nil {
			t.Fatalf("%s: %v", bm.Name, err)
		}
		if v.Insts < 1000 {
			t.Errorf("%s: only %d instructions executed", bm.Name, v.Insts)
		}
	}
}

// TestDifferentialChecksums is the central correctness property of the
// workload suite: for every benchmark, the exit checksum is identical
// under the baseline allocator, the RedFat-hardened binary, and the
// Memcheck model (memory-error reports aside).
func TestDifferentialChecksums(t *testing.T) {
	for _, bm := range workload.All() {
		bm := small(bm)
		t.Run(bm.Name, func(t *testing.T) {
			bin, err := bm.Build()
			if err != nil {
				t.Fatal(err)
			}
			input := bm.RefInput()
			base, err := rtlib.RunBaseline(bin, rtlib.RunConfig{Input: input})
			if err != nil {
				t.Fatalf("baseline: %v", err)
			}
			hard, _, err := redfat.Harden(bin, redfat.Defaults())
			if err != nil {
				t.Fatal(err)
			}
			hv, _, err := rtlib.RunHardened(hard, rtlib.RunConfig{Input: input})
			if err != nil {
				t.Fatalf("hardened: %v", err)
			}
			if hv.ExitCode != base.ExitCode {
				t.Errorf("hardened checksum %#x != baseline %#x",
					hv.ExitCode, base.ExitCode)
			}
			mc, err := memcheck.Run(bin, rtlib.RunConfig{Input: input})
			if err != nil {
				t.Fatalf("memcheck: %v", err)
			}
			if mc.ExitCode != base.ExitCode {
				t.Errorf("memcheck checksum %#x != baseline %#x",
					mc.ExitCode, base.ExitCode)
			}
		})
	}
}

func TestCalculixBugsDetected(t *testing.T) {
	bm := small(workload.ByName("calculix"))
	bin, err := bm.Build()
	if err != nil {
		t.Fatal(err)
	}
	opt := redfat.Defaults()
	// Per-site attribution: the planted reads are identical operands in
	// a dominating chain, so ElimDom would (correctly) coalesce their
	// reports onto the first site. Count them un-eliminated, the same
	// way TestFalsePositiveCounts disables merging for 1:1 attribution.
	opt.ElimDom = false
	hard, _, err := redfat.Harden(bin, opt)
	if err != nil {
		t.Fatal(err)
	}
	v, _, err := rtlib.RunHardened(hard, rtlib.RunConfig{Input: bm.RefInput()})
	if err != nil {
		t.Fatal(err)
	}
	pcs := map[uint64]bool{}
	for _, e := range v.Errors {
		pcs[e.PC] = true
	}
	if len(pcs) < 4 {
		t.Errorf("calculix: %d distinct error sites, want ≥4 (the planted array[-1] reads)", len(pcs))
	}
}

func TestFalsePositiveCounts(t *testing.T) {
	// Under naive full hardening (no allow-list, unmerged so sites map
	// 1:1 to operands), each benchmark reports exactly its planted
	// anti-idiom count as distinct false-positive sites (§7.1).
	for _, name := range []string{"gcc", "gromacs", "perlbench"} {
		bm := small(workload.ByName(name))
		bin, err := bm.Build()
		if err != nil {
			t.Fatal(err)
		}
		opt := redfat.Defaults()
		opt.Merge = false
		hard, _, err := redfat.Harden(bin, opt)
		if err != nil {
			t.Fatal(err)
		}
		v, _, err := rtlib.RunHardened(hard, rtlib.RunConfig{Input: bm.RefInput()})
		if err != nil {
			t.Fatal(err)
		}
		pcs := map[uint64]bool{}
		for _, e := range v.Errors {
			pcs[e.PC] = true
		}
		if len(pcs) != bm.PlantedFPs+bm.PlantedBugs {
			t.Errorf("%s: %d distinct FP sites, want %d",
				name, len(pcs), bm.PlantedFPs+bm.PlantedBugs)
		}
	}
}

func TestCoverageVariesWithGating(t *testing.T) {
	// h264ref (heavily ref-gated) must end with much lower coverage than
	// libquantum (ungated) after the train-profiled allow-list.
	cov := func(name string) float64 {
		bm := small(workload.ByName(name))
		bin, err := bm.Build()
		if err != nil {
			t.Fatal(err)
		}
		hard, _, _, err := profile.Run(bin,
			[]rtlib.RunConfig{{Input: bm.TrainInput()}}, redfat.Defaults())
		if err != nil {
			t.Fatal(err)
		}
		_, rt, err := rtlib.RunHardened(hard, rtlib.RunConfig{Input: bm.RefInput()})
		if err != nil {
			t.Fatal(err)
		}
		return rt.Coverage()
	}
	low := cov("h264ref")
	high := cov("libquantum")
	if high < 0.95 {
		t.Errorf("libquantum coverage = %.2f, want ≈1", high)
	}
	if low >= high-0.2 {
		t.Errorf("h264ref coverage %.2f not clearly below libquantum %.2f", low, high)
	}
}
