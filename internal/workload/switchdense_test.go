package workload_test

import (
	"testing"

	"redfat/internal/cfg"
	"redfat/internal/isa"
	"redfat/internal/redfat"
	"redfat/internal/rtlib"
	"redfat/internal/workload"
)

func TestSwitchDenseRegistry(t *testing.T) {
	sd := workload.SwitchDense()
	if len(sd) != 2 {
		t.Fatalf("switch-dense count = %d, want 2", len(sd))
	}
	for _, bm := range sd {
		if workload.ByName(bm.Name) == nil {
			t.Errorf("ByName(%q) = nil", bm.Name)
		}
	}
	// The SPEC registry stays pinned at 29: switch-dense rides alongside.
	if len(workload.All()) != 29 {
		t.Fatalf("All() = %d benchmarks, want 29", len(workload.All()))
	}
}

// TestSwitchDenseResolves: the recovery must prove both dispatch tables
// (the whole point of the switch-dense corpus), and the recovered edges
// must unlock dominated-check elimination that -noindirect forgoes.
func TestSwitchDenseResolves(t *testing.T) {
	for _, bm := range workload.SwitchDense() {
		bm := small(bm)
		t.Run(bm.Name, func(t *testing.T) {
			bin, err := bm.Build()
			if err != nil {
				t.Fatal(err)
			}
			prog, err := cfg.Disassemble(bin)
			if err != nil {
				t.Fatal(err)
			}
			g := cfg.NewGraph(prog)
			if g.Indirect == nil {
				t.Fatal("marker-built benchmark: recovery did not run")
			}
			tables := 0
			for _, r := range g.Indirect.Resolved {
				if r.Kind == cfg.ResolvedTable {
					tables++
				}
			}
			if tables == 0 {
				t.Fatalf("no dispatch resolved as a bounded table: %+v",
					g.Indirect.Resolved)
			}
			// No indirect jump may remain opaque in a switch-dense build.
			for b := range g.Blocks {
				blk := &g.Blocks[b]
				if blk.Unknown &&
					prog.Insts[blk.End-1].Inst.Op == isa.JMP {
					t.Errorf("indirect jump at %#x left Unknown",
						prog.Insts[blk.End-1].Addr)
				}
			}

			// Recovery unlocks eliminations: with recovered edges the
			// handlers' checks are dominated by the loop head's access.
			on, err := redfat.Analyze(bin, redfat.Defaults())
			if err != nil {
				t.Fatal(err)
			}
			ablOpt := redfat.Defaults()
			ablOpt.NoIndirect = true
			off, err := redfat.Analyze(bin, ablOpt)
			if err != nil {
				t.Fatal(err)
			}
			if on.Total.ElimDominated <= off.Total.ElimDominated {
				t.Errorf("recovery unlocked no eliminations: %d (on) vs %d (off)",
					on.Total.ElimDominated, off.Total.ElimDominated)
			}
		})
	}
}

// TestSwitchDenseDifferential: identity matrix for marker-built
// binaries — the exit checksum is invariant across baseline vs hardened
// and across the -noindirect knob (the recovered-edge consumers may only
// change which checks exist, never guest-visible results).
func TestSwitchDenseDifferential(t *testing.T) {
	for _, bm := range workload.SwitchDense() {
		bm := small(bm)
		t.Run(bm.Name, func(t *testing.T) {
			bin, err := bm.Build()
			if err != nil {
				t.Fatal(err)
			}
			input := bm.RefInput()
			base, err := rtlib.RunBaseline(bin, rtlib.RunConfig{Input: input})
			if err != nil {
				t.Fatalf("baseline: %v", err)
			}
			for _, noind := range []bool{false, true} {
				opt := redfat.Defaults()
				opt.NoIndirect = noind
				hard, _, err := redfat.Harden(bin, opt)
				if err != nil {
					t.Fatal(err)
				}
				hv, _, err := rtlib.RunHardened(hard,
					rtlib.RunConfig{Input: input, NoIndirect: noind})
				if err != nil {
					t.Fatalf("hardened (noindirect=%v): %v", noind, err)
				}
				if hv.ExitCode != base.ExitCode {
					t.Errorf("noindirect=%v: checksum %#x != baseline %#x",
						noind, hv.ExitCode, base.ExitCode)
				}
			}
		})
	}
}

// TestAdversarialStayUnknown: every adversarial case must leave its
// dispatch Unknown — resolving any of them would be unsound — while
// still executing cleanly (and identically) under landing-pad
// enforcement, since the broken dispatch is dead at runtime.
func TestAdversarialStayUnknown(t *testing.T) {
	for _, ac := range workload.Adversarial() {
		t.Run(ac.Name, func(t *testing.T) {
			ac.Bench.TrainScale, ac.Bench.RefScale = 300, 1500
			bin, err := ac.Build()
			if err != nil {
				t.Fatal(err)
			}
			prog, err := cfg.Disassemble(bin)
			if err != nil {
				t.Fatal(err)
			}
			if !cfg.MarkerBuilt(bin) {
				t.Fatal("adversarial case must stay marker-built")
			}
			g := cfg.NewGraph(prog)
			if g.Indirect != nil {
				for _, r := range g.Indirect.Resolved {
					if r.Kind != cfg.ResolvedRet {
						t.Errorf("%s: unsoundly resolved %v at %#x (%s)",
							ac.Name, r.Kind, r.Addr, ac.Why)
					}
				}
			}
			unknown := 0
			for b := range g.Blocks {
				if g.Blocks[b].Unknown {
					unknown++
				}
			}
			if unknown == 0 {
				t.Error("no Unknown block survives: the dead dispatch should be opaque")
			}

			// The binary still runs — and identically with the knob off.
			input := ac.Bench.RefInput()
			base, err := rtlib.RunBaseline(bin, rtlib.RunConfig{Input: input})
			if err != nil {
				t.Fatalf("baseline: %v", err)
			}
			knob, err := rtlib.RunBaseline(bin,
				rtlib.RunConfig{Input: input, NoIndirect: true})
			if err != nil {
				t.Fatalf("baseline -noindirect: %v", err)
			}
			if base.ExitCode != knob.ExitCode || base.Cycles != knob.Cycles {
				t.Errorf("knob changed guest results: %#x/%d vs %#x/%d",
					base.ExitCode, base.Cycles, knob.ExitCode, knob.Cycles)
			}
		})
	}
}
