package workload

import (
	"fmt"

	"redfat/internal/asm"
	"redfat/internal/isa"
	"redfat/internal/relf"
)

// Lang records the source language of the SPEC benchmark being mimicked
// (display only; the paper stresses that RedFat is language-agnostic).
type Lang string

// Source languages.
const (
	C       Lang = "C"
	CPP     Lang = "C++"
	Fortran Lang = "Fortran"
)

// Benchmark describes one synthetic SPEC CPU2006-like program.
type Benchmark struct {
	Name string
	Lang Lang

	// Kerns are the composed kernels; kernel i is enabled by bit i of
	// the flags input word.
	Kerns []Kern

	// RefOnly[i] marks kernels the train workload does not exercise
	// (lowering allow-list coverage, paper Table 1 coverage column).
	RefOnly []bool

	// TrainScale and RefScale are the iteration budgets of the two
	// workloads (paper: SPEC train vs ref inputs).
	TrainScale uint64
	RefScale   uint64

	// PlantedFPs is the number of anti-idiom access instructions
	// (expected false positives under naive full hardening, §7.1).
	PlantedFPs int
	// PlantedBugs is the number of genuine OOB-read instructions
	// (§7.1 "Detected errors": calculix 4, wrf 1).
	PlantedBugs int
}

// flags returns the train/ref flag masks.
func (bm *Benchmark) flags() (train, ref uint64) {
	for i := range bm.Kerns {
		ref |= 1 << i
		if !bm.RefOnly[i] {
			train |= 1 << i
		}
	}
	return train, ref
}

// TrainInput returns the input vector for the train workload.
func (bm *Benchmark) TrainInput() []uint64 {
	t, _ := bm.flags()
	return []uint64{bm.TrainScale, t}
}

// RefInput returns the input vector for the ref workload.
func (bm *Benchmark) RefInput() []uint64 {
	_, r := bm.flags()
	return []uint64{bm.RefScale, r}
}

// Build assembles the benchmark into a position-dependent RELF binary.
// The binary is stripped, as COTS binaries are (paper §1).
func (bm *Benchmark) Build() (*relf.Binary, error) {
	b := asm.NewBuilder(asm.Options{FuncAlign: 16})
	b.Func("main")
	b.Push(isa.RBX)
	b.Push(isa.R13)
	b.Push(isa.R14)
	b.Push(isa.R15)
	b.CallImport("rf_input")
	b.MovRR(isa.R13, isa.RAX) // scale
	b.CallImport("rf_input")
	b.MovRR(isa.R14, isa.RAX) // kernel-enable flags
	b.MovRI(isa.R15, 0)       // checksum
	for j, k := range bm.Kerns {
		skip := fmt.Sprintf("main_skip_%d", j)
		b.MovRR(isa.RAX, isa.R14)
		b.AluRI(isa.AND, isa.RAX, int64(1)<<j)
		b.AluRI(isa.CMP, isa.RAX, 0)
		b.Jcc(isa.JE, skip)
		b.MovRR(isa.RDI, isa.R13)
		if k.ScaleShift > 0 {
			b.Shift(isa.SHR, isa.RDI, int64(k.ScaleShift))
		}
		b.AluRI(isa.ADD, isa.RDI, 1)
		b.Call(kernName(bm.Name, j))
		b.AluRR(isa.ADD, isa.R15, isa.RAX)
		b.Label(skip)
	}
	b.MovRR(isa.RAX, isa.R15)
	b.Pop(isa.R15)
	b.Pop(isa.R14)
	b.Pop(isa.R13)
	b.Pop(isa.RBX)
	b.Ret()
	for j, k := range bm.Kerns {
		EmitKernel(b, kernName(bm.Name, j), k)
	}
	bin, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", bm.Name, err)
	}
	bin.Strip()
	return bin, nil
}

func kernName(bench string, j int) string { return fmt.Sprintf("%s_k%d", bench, j) }

// bench constructs a Benchmark; kerns and refOnly are parallel.
func bench(name string, lang Lang, refScale uint64, kerns []Kern, refOnly []bool) *Benchmark {
	if len(refOnly) != len(kerns) {
		panic("workload: kerns/refOnly length mismatch for " + name)
	}
	fps, bugs := 0, 0
	for _, k := range kerns {
		switch k.Kind {
		case KAnti:
			fps += int(k.Param)
		case KBugUnder:
			bugs += int(k.Param)
		case KBugOver:
			bugs++
		}
	}
	return &Benchmark{
		Name: name, Lang: lang, Kerns: kerns, RefOnly: refOnly,
		TrainScale: refScale / 8, RefScale: refScale,
		PlantedFPs: fps, PlantedBugs: bugs,
	}
}

// All returns the 29 SPEC CPU2006-like benchmarks, in the paper's Table 1
// order. The kernel mixes mimic each benchmark's memory behaviour; the
// RefOnly gating and planted anti-idioms/bugs reproduce the coverage,
// false-positive and detected-error structure of §7.1.
func All() []*Benchmark {
	k := func(kind KernKind, shift uint, param ...int64) Kern {
		kk := Kern{Kind: kind, ScaleShift: shift}
		if len(param) > 0 {
			kk.Param = param[0]
		}
		return kk
	}
	return []*Benchmark{
		// --- C benchmarks ---
		bench("perlbench", C, 60000,
			[]Kern{k(KString, 0), k(KHash, 1), k(KChurn, 2), k(KChase, 3), k(KAnti, 4, 1)},
			[]bool{false, false, false, true, false}),
		bench("bzip2", C, 80000,
			[]Kern{k(KSweep, 0), k(KString, 0), k(KStencil, 1), k(KTree, 5)},
			[]bool{false, false, false, true}),
		bench("gcc", C, 50000,
			[]Kern{k(KHash, 0), k(KChurn, 1), k(KString, 1), k(KTree, 1), k(KStruct, 1), k(KAnti, 4, 14)},
			[]bool{false, false, false, true, true, false}),
		bench("mcf", C, 60000,
			[]Kern{k(KChase, 0), k(KSweep, 1), k(KTree, 6)},
			[]bool{false, false, true}),
		bench("gobmk", C, 70000,
			[]Kern{k(KTree, 0), k(KString, 0), k(KHash, 1), k(KStruct, 4), k(KAnti, 5, 1)},
			[]bool{false, false, false, true, false}),
		bench("hmmer", C, 60000,
			[]Kern{k(KMatrix, 0), k(KString, 1), k(KSweep, 1), k(KHash, 2)},
			[]bool{false, true, true, false}),
		bench("sjeng", C, 80000,
			[]Kern{k(KTree, 0), k(KHash, 0), k(KString, 1), k(KStruct, 7)},
			[]bool{false, false, false, true}),
		bench("libquantum", C, 70000,
			[]Kern{k(KSweep, 0), k(KStencil, 0)},
			[]bool{false, false}),
		bench("h264ref", C, 70000,
			[]Kern{k(KTree, 1), k(KSweep, 0), k(KStruct, 0), k(KStencil, 1)},
			[]bool{false, true, true, true}),
		// --- C++ benchmarks ---
		bench("omnetpp", CPP, 50000,
			[]Kern{k(KChase, 0), k(KChurn, 1), k(KStruct, 1), k(KHash, 1)},
			[]bool{false, false, true, true}),
		bench("astar", CPP, 70000,
			[]Kern{k(KTree, 0), k(KChase, 0), k(KSweep, 1)},
			[]bool{false, false, false}),
		bench("xalancbmk", CPP, 50000,
			[]Kern{k(KChase, 0), k(KChurn, 1), k(KString, 1), k(KHash, 2)},
			[]bool{false, false, true, false}),
		bench("milc", C, 65000,
			[]Kern{k(KStencil, 0), k(KSweep, 1), k(KMatrix, 2)},
			[]bool{false, false, false}),
		bench("lbm", C, 80000,
			[]Kern{k(KStencil, 0), k(KSweep, 1)},
			[]bool{false, false}),
		bench("sphinx3", C, 70000,
			[]Kern{k(KMatrix, 0), k(KSweep, 0), k(KString, 1)},
			[]bool{false, false, false}),
		bench("namd", CPP, 60000,
			[]Kern{k(KMatrix, 0), k(KStencil, 0)},
			[]bool{false, false}),
		bench("dealII", CPP, 50000,
			[]Kern{k(KMatrix, 0), k(KStruct, 0), k(KTree, 1), k(KChase, 2)},
			[]bool{false, false, true, true}),
		bench("soplex", CPP, 50000,
			[]Kern{k(KMatrix, 0), k(KSweep, 0), k(KStruct, 1), k(KTree, 6)},
			[]bool{false, false, false, true}),
		bench("povray", CPP, 40000,
			[]Kern{k(KStruct, 0), k(KMatrix, 0), k(KSweep, 1), k(KAnti, 5, 1)},
			[]bool{false, false, false, false}),
		// --- Fortran (and mixed) benchmarks ---
		bench("bwaves", Fortran, 70000,
			[]Kern{k(KStencil, 0), k(KMatrix, 0), k(KAnti, 3, 5), k(KSweep, 1)},
			[]bool{false, false, false, true}),
		bench("gamess", Fortran, 80000,
			[]Kern{k(KMatrix, 0), k(KString, 1), k(KStencil, 1), k(KHash, 1)},
			[]bool{false, true, true, true}),
		bench("zeusmp", Fortran, 60000,
			[]Kern{k(KStencil, 0), k(KMatrix, 1), k(KSweep, 1), k(KStruct, 1)},
			[]bool{false, true, true, true}),
		bench("gromacs", Fortran, 60000,
			[]Kern{k(KStencil, 0), k(KMatrix, 0), k(KAnti, 4, 3), k(KTree, 2)},
			[]bool{false, false, false, true}),
		bench("cactusADM", Fortran, 70000,
			[]Kern{k(KStencil, 0), k(KStruct, 0)},
			[]bool{false, false}),
		bench("leslie3d", Fortran, 70000,
			[]Kern{k(KStencil, 0), k(KMatrix, 0)},
			[]bool{false, false}),
		bench("calculix", Fortran, 80000,
			[]Kern{k(KMatrix, 0), k(KStencil, 1), k(KSweep, 1), k(KStruct, 1),
				k(KAnti, 5, 2), k(KBugUnder, 6, 4)},
			[]bool{false, true, true, true, false, false}),
		bench("GemsFDTD", Fortran, 60000,
			[]Kern{k(KStencil, 0), k(KSweep, 0), k(KAnti, 3, 32)},
			[]bool{false, false, false}),
		bench("tonto", Fortran, 70000,
			[]Kern{k(KMatrix, 0), k(KStruct, 0), k(KString, 0), k(KTree, 6)},
			[]bool{false, false, false, true}),
		bench("wrf", Fortran, 60000,
			[]Kern{k(KSweep, 0), k(KStencil, 1), k(KMatrix, 1), k(KStruct, 1),
				k(KAnti, 3, 26), k(KBugOver, 6)},
			[]bool{false, true, true, true, false, false}),
	}
}

// ByName returns the named benchmark — SPEC set or switch-dense — or nil.
func ByName(name string) *Benchmark {
	for _, bm := range append(All(), SwitchDense()...) {
		if bm.Name == name {
			return bm
		}
	}
	return nil
}
