package workload

// Libc-intrinsic twins: pairs of single-kernel benchmarks doing the same
// work, one through a guest-side byte loop (per-access checks when
// hardened) and one through the modelled libc intrinsic (one O(1) span
// check per call). The guest checksum is identical within a pair, so the
// pair isolates exactly the check-cost difference the paper's libredfat
// §2.1 interposition buys on string/stencil workloads.

import (
	"redfat/internal/asm"
	"redfat/internal/isa"
)

// Twin is one loop/intrinsic benchmark pair. Both members produce the
// same exit checksum; only their guest cycle counts differ. Build each
// member with its usual Benchmark.Build.
type Twin struct {
	Name string
	Loop *Benchmark // guest byte-loop variant (per-access checks)
	Intr *Benchmark // libc-intrinsic variant (span checks)
}

// twinKernel wraps emit as the single kernel of a one-kernel benchmark:
// reps = scale>>6 + 1 (libc calls make iterations comparatively heavy).
func twinKernel(name string, emit func(*emitter)) *Benchmark {
	const refScale = 4000
	return &Benchmark{
		Name: name, Lang: C,
		Kerns:      []Kern{{Kind: KCustom, ScaleShift: 6, Emit: emit}},
		RefOnly:    []bool{false},
		TrainScale: refScale / 8, RefScale: refScale,
	}
}

// LibcTwins returns the intrinsic/loop twin pairs. They are deliberately
// NOT part of All(): Table 1's benchmark set, planted counts and rows
// stay exactly as seeded; the twins feed the libc_span hostbench section
// and the perf-smoke guard.
func LibcTwins() []Twin {
	return []Twin{
		{
			Name: "memcpy",
			Loop: twinKernel("copyloop", (*emitter).copyLoop),
			Intr: twinKernel("copyintr", (*emitter).copyIntr),
		},
		{
			Name: "strlen",
			Loop: twinKernel("scanloop", (*emitter).scanLoop),
			Intr: twinKernel("scanintr", (*emitter).scanIntr),
		},
	}
}

const (
	twinBuf  = 8192 // copy-twin buffer bytes
	twinStr  = 4096 // string-twin buffer bytes (last byte NUL)
	twinByte = 0x21 // fill base (never zero: strlen must run to the NUL)
)

// twinFillCopy fills the src buffer in RBX with i&0xFF.
func (e *emitter) twinFillCopy() {
	b := e.b
	b.MovRI(isa.RCX, 0)
	fill := e.lbl("fill")
	b.Label(fill)
	b.MovRR(isa.RDX, isa.RCX)
	b.AluRI(isa.AND, isa.RDX, 0xFF)
	b.StoreM(asm.MemBID(isa.RBX, isa.RCX, 1, 0), isa.RDX, 1)
	b.AluRI(isa.ADD, isa.RCX, 1)
	b.AluRI(isa.CMP, isa.RCX, twinBuf)
	b.Jcc(isa.JL, fill)
}

// twinSumDst leaves the byte-sum of the R13 buffer in RAX.
func (e *emitter) twinSumDst() {
	b := e.b
	b.MovRI(isa.RAX, 0)
	b.MovRI(isa.RCX, 0)
	sum := e.lbl("sum")
	b.Label(sum)
	b.Emit(isa.Inst{Op: isa.MOVZX, Form: isa.FRM, Reg: isa.RDX, Size: 1,
		Mem: asm.MemBID(isa.R13, isa.RCX, 1, 0)})
	b.AluRR(isa.ADD, isa.RAX, isa.RDX)
	b.AluRI(isa.ADD, isa.RCX, 1)
	b.AluRI(isa.CMP, isa.RCX, twinBuf)
	b.Jcc(isa.JL, sum)
}

// copyLoop: reps × (copy twinBuf bytes src→dst with a guest byte loop).
// Hardened runs pay one load check + one store check per byte.
func (e *emitter) copyLoop() {
	b := e.b
	e.prologue()
	e.malloc(isa.RBX, twinBuf) // src
	e.malloc(isa.R13, twinBuf) // dst
	e.twinFillCopy()
	b.MovRR(isa.R14, isa.R12) // reps
	outer := e.lbl("outer")
	inner := e.lbl("inner")
	b.Label(outer)
	b.MovRI(isa.RCX, 0)
	b.Label(inner)
	b.Emit(isa.Inst{Op: isa.MOVZX, Form: isa.FRM, Reg: isa.RDX, Size: 1,
		Mem: asm.MemBID(isa.RBX, isa.RCX, 1, 0)})
	b.StoreM(asm.MemBID(isa.R13, isa.RCX, 1, 0), isa.RDX, 1)
	b.AluRI(isa.ADD, isa.RCX, 1)
	b.AluRI(isa.CMP, isa.RCX, twinBuf)
	b.Jcc(isa.JL, inner)
	b.AluRI(isa.SUB, isa.R14, 1)
	b.AluRI(isa.CMP, isa.R14, 0)
	b.Jcc(isa.JG, outer)
	e.twinSumDst()
	e.callFree(isa.RBX)
	e.callFree(isa.R13)
	e.epilogue()
}

// copyIntr: the same reps × twinBuf-byte copies through memcpy — one
// span-checked intrinsic call per rep instead of 2×twinBuf checks.
func (e *emitter) copyIntr() {
	b := e.b
	e.prologue()
	e.malloc(isa.RBX, twinBuf) // src
	e.malloc(isa.R13, twinBuf) // dst
	e.twinFillCopy()
	b.MovRR(isa.R14, isa.R12) // reps
	outer := e.lbl("outer")
	b.Label(outer)
	b.MovRR(isa.RDI, isa.R13)
	b.MovRR(isa.RSI, isa.RBX)
	b.MovRI(isa.RDX, twinBuf)
	b.CallImport("memcpy")
	b.AluRI(isa.SUB, isa.R14, 1)
	b.AluRI(isa.CMP, isa.R14, 0)
	b.Jcc(isa.JG, outer)
	e.twinSumDst()
	e.callFree(isa.RBX)
	e.callFree(isa.R13)
	e.epilogue()
}

// twinFillStr fills the RBX buffer with nonzero bytes and a final NUL.
func (e *emitter) twinFillStr() {
	b := e.b
	b.MovRI(isa.RCX, 0)
	fill := e.lbl("fill")
	b.Label(fill)
	b.MovRR(isa.RDX, isa.RCX)
	b.AluRI(isa.AND, isa.RDX, 0x3F)
	b.AluRI(isa.ADD, isa.RDX, twinByte)
	b.StoreM(asm.MemBID(isa.RBX, isa.RCX, 1, 0), isa.RDX, 1)
	b.AluRI(isa.ADD, isa.RCX, 1)
	b.AluRI(isa.CMP, isa.RCX, twinStr-1)
	b.Jcc(isa.JL, fill)
	b.StoreI(isa.RBX, twinStr-1, 0, 1)
}

// scanLoop: reps × (measure the string with a guest byte loop).
func (e *emitter) scanLoop() {
	b := e.b
	e.prologue()
	e.malloc(isa.RBX, twinStr)
	e.twinFillStr()
	b.MovRR(isa.R14, isa.R12) // reps
	b.MovRI(isa.RAX, 0)       // checksum: sum of lengths
	outer := e.lbl("outer")
	scan := e.lbl("scan")
	done := e.lbl("done")
	b.Label(outer)
	b.MovRI(isa.RCX, 0)
	b.Label(scan)
	b.Emit(isa.Inst{Op: isa.MOVZX, Form: isa.FRM, Reg: isa.RDX, Size: 1,
		Mem: asm.MemBID(isa.RBX, isa.RCX, 1, 0)})
	b.AluRI(isa.CMP, isa.RDX, 0)
	b.Jcc(isa.JE, done)
	b.AluRI(isa.ADD, isa.RCX, 1)
	b.Jmp(scan)
	b.Label(done)
	b.AluRR(isa.ADD, isa.RAX, isa.RCX)
	b.AluRI(isa.SUB, isa.R14, 1)
	b.AluRI(isa.CMP, isa.R14, 0)
	b.Jcc(isa.JG, outer)
	e.callFree(isa.RBX)
	e.epilogue()
}

// scanIntr: the same length sums through the strlen intrinsic.
func (e *emitter) scanIntr() {
	b := e.b
	e.prologue()
	e.malloc(isa.RBX, twinStr)
	e.twinFillStr()
	b.MovRR(isa.R14, isa.R12) // reps
	b.MovRI(isa.R13, 0)       // checksum accumulator
	outer := e.lbl("outer")
	b.Label(outer)
	b.MovRR(isa.RDI, isa.RBX)
	b.CallImport("strlen")
	b.AluRR(isa.ADD, isa.R13, isa.RAX)
	b.AluRI(isa.SUB, isa.R14, 1)
	b.AluRI(isa.CMP, isa.R14, 0)
	b.Jcc(isa.JG, outer)
	b.MovRR(isa.RAX, isa.R13)
	e.callFree(isa.RBX)
	e.epilogue()
}
