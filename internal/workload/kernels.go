// Package workload generates the synthetic SPEC CPU2006-like benchmark
// programs used to reproduce the paper's Table 1 evaluation.
//
// Each of the 29 benchmarks is composed from a catalogue of memory-access
// kernels chosen to mimic the real benchmark's character (pointer chasing
// for mcf, stencils for lbm, string scanning for perlbench, ...). The
// planted properties drive the paper's qualitative results:
//
//   - Fortran-style (array−K)[i] anti-idioms produce exactly the paper's
//     false-positive counts under naive full hardening (§7.1);
//   - genuine out-of-bounds read bugs are planted in calculix (4×
//     array[-1]) and wrf (1 read overflow), the errors the paper reports
//     detecting;
//   - some kernels are gated behind ref-only input flags, so the train
//     workload does not exercise them — the source of partial allow-list
//     coverage (the coverage column).
//
// Every kernel accumulates a data-only checksum (never addresses), so a
// benchmark's exit code is identical under the baseline allocator, the
// RedFat heap, and Memcheck — used for differential correctness testing.
package workload

import (
	"fmt"

	"redfat/internal/asm"
	"redfat/internal/isa"
)

// KernKind enumerates the kernel catalogue.
type KernKind int

// Kernel kinds.
const (
	KSweep    KernKind = iota // incremental array fill + sum
	KChase                    // linked-list build/traverse/free
	KHash                     // scattered read-modify-write (non-incremental, in-bounds)
	KStencil                  // 3-point stencil over two grids
	KString                   // byte scanning with 1-byte accesses
	KMatrix                   // 32×32 matrix multiply
	KTree                     // binary searches over a sorted array
	KStruct                   // multi-field struct stores (merge-friendly)
	KChurn                    // malloc/free churn
	KAnti                     // (array−K)[i] anti-idiom accesses (false positives)
	KBugUnder                 // planted array[-1] OOB reads
	KBugOver                  // planted array[n] OOB read
	KCustom                   // emitted by the Kern's own Emit function
	KDispatch                 // computed-goto interpreter (marker-built jump table)
	KFSM                      // jump-table state machine (marker-built)
)

// Kern instantiates a kernel within a benchmark. Its position in the
// benchmark's kernel list is also its enable-flag bit in the input vector.
type Kern struct {
	Kind       KernKind
	ScaleShift uint  // kernel iterations = scale >> ScaleShift (min 1)
	Param      int64 // kernel-specific: site count for KAnti/KBugUnder

	// Emit generates a KCustom kernel body (prologue through Ret); used
	// by the libc-intrinsic twins, which live outside the catalogue.
	Emit func(*emitter)
}

// emitter state shared while generating one benchmark.
type emitter struct {
	b   *asm.Builder
	n   int // label counter
	pfx string
}

func (e *emitter) lbl(s string) string {
	e.n++
	return fmt.Sprintf("%s_%s_%d", e.pfx, s, e.n)
}

// Common register plan inside kernels:
//
//	RDI = iteration count on entry
//	R12 = saved iteration count
//	RBX = primary buffer pointer
//	R13, R14 = kernel-specific saved state
//	RAX = returned checksum
func (e *emitter) prologue() {
	b := e.b
	b.Push(isa.RBX)
	b.Push(isa.R12)
	b.Push(isa.R13)
	b.Push(isa.R14)
	b.MovRR(isa.R12, isa.RDI)
}

func (e *emitter) epilogue() {
	b := e.b
	b.Pop(isa.R14)
	b.Pop(isa.R13)
	b.Pop(isa.R12)
	b.Pop(isa.RBX)
	b.Ret()
}

// callFree frees RBX-held pointer, preserving the checksum in RAX.
func (e *emitter) callFree(ptr isa.Reg) {
	b := e.b
	b.Push(isa.RAX)
	b.MovRR(isa.RDI, ptr)
	b.CallImport("free")
	b.Pop(isa.RAX)
}

// malloc emits: dst = malloc(bytes), where bytes is an immediate.
func (e *emitter) malloc(dst isa.Reg, bytes int64) {
	b := e.b
	b.MovRI(isa.RDI, bytes)
	b.CallImport("malloc")
	if dst != isa.RAX {
		b.MovRR(dst, isa.RAX)
	}
}

// EmitKernel generates the function for one kernel instance; name is the
// function symbol. Exported for reuse by the Chrome-scale generator.
func EmitKernel(b *asm.Builder, name string, k Kern) {
	e := &emitter{b: b, pfx: name}
	b.Func(name)
	switch k.Kind {
	case KSweep:
		e.sweep()
	case KChase:
		e.chase()
	case KHash:
		e.hash()
	case KStencil:
		e.stencil()
	case KString:
		e.strScan()
	case KMatrix:
		e.matrix()
	case KTree:
		e.tree()
	case KStruct:
		e.structs()
	case KChurn:
		e.churn()
	case KAnti:
		e.anti(k.Param)
	case KBugUnder:
		e.bugUnder(int(k.Param))
	case KBugOver:
		e.bugOver()
	case KCustom:
		k.Emit(e)
	case KDispatch:
		e.dispatch()
	case KFSM:
		e.fsm()
	default:
		panic("workload: unknown kernel kind")
	}
}

// sweep: buf[i] = i for i < min(n, 4096); sum and free. Incremental
// access, the bread and butter of redzone protection.
func (e *emitter) sweep() {
	b := e.b
	e.prologue()
	// Cap the buffer, loop n times over it modulo the cap.
	b.MovRI(isa.R13, 4096) // element cap
	e.malloc(isa.RBX, 4096*8)
	// Zero first: reused chunks carry dirt that depends on the allocator,
	// and the checksum must be allocator-independent.
	b.MovRR(isa.RDI, isa.RBX)
	b.MovRI(isa.RSI, 0)
	b.MovRI(isa.RDX, 4096*8)
	b.CallImport("memset")
	b.MovRI(isa.RCX, 0)
	fill := e.lbl("fill")
	b.Label(fill)
	// Compiler-style spill of the loop counter (rsp-relative accesses,
	// removed by check elimination).
	b.Store(isa.RSP, -24, isa.RCX, 8)
	b.MovRR(isa.RDX, isa.RCX)
	b.AluRI(isa.AND, isa.RDX, 4095)
	b.MovRR(isa.RSI, isa.RCX)
	b.AluRI(isa.AND, isa.RSI, 0xFFFF)
	b.StoreM(asm.MemBID(isa.RBX, isa.RDX, 8, 0), isa.RSI, 8)
	b.Load(isa.RCX, isa.RSP, -24, 8)
	b.AluRI(isa.ADD, isa.RCX, 1)
	b.AluRR(isa.CMP, isa.RCX, isa.R12)
	b.Jcc(isa.JL, fill)

	b.MovRI(isa.RAX, 0)
	b.MovRI(isa.RCX, 0)
	sum := e.lbl("sum")
	b.Label(sum)
	b.AluRM(isa.ADD, isa.RAX, asm.MemBID(isa.RBX, isa.RCX, 8, 0), 8)
	b.AluRI(isa.ADD, isa.RCX, 1)
	b.AluRR(isa.CMP, isa.RCX, isa.R13)
	b.Jcc(isa.JL, sum)
	e.callFree(isa.RBX)
	e.epilogue()
}

// chase: build a 256-node linked list, traverse it n/64 times, free it.
func (e *emitter) chase() {
	b := e.b
	e.prologue()
	const nodes = 256
	b.MovRI(isa.RBX, 0) // head
	b.MovRI(isa.R13, 0) // i
	build := e.lbl("build")
	b.Label(build)
	b.MovRI(isa.RDI, 32)
	b.CallImport("malloc")
	b.Store(isa.RAX, 0, isa.RBX, 8) // node.next = head
	b.Store(isa.RAX, 8, isa.R13, 8) // node.val = i
	b.StoreI(isa.RAX, 16, 0, 8)     // node.aux
	b.MovRR(isa.RBX, isa.RAX)
	b.AluRI(isa.ADD, isa.R13, 1)
	b.AluRI(isa.CMP, isa.R13, nodes)
	b.Jcc(isa.JL, build)

	// Traverse n>>6 + 1 times.
	b.MovRR(isa.R13, isa.R12)
	b.Shift(isa.SHR, isa.R13, 6)
	b.AluRI(isa.ADD, isa.R13, 1)
	b.MovRI(isa.RAX, 0)
	outer := e.lbl("outer")
	inner := e.lbl("inner")
	innerDone := e.lbl("innerdone")
	b.Label(outer)
	b.MovRR(isa.RCX, isa.RBX)
	b.Label(inner)
	b.AluRI(isa.CMP, isa.RCX, 0)
	b.Jcc(isa.JE, innerDone)
	b.AluRM(isa.ADD, isa.RAX, asm.MemBID(isa.RCX, isa.RegNone, 1, 8), 8)
	b.LoadM(isa.RCX, asm.MemBID(isa.RCX, isa.RegNone, 1, 0), 8)
	b.Jmp(inner)
	b.Label(innerDone)
	b.AluRI(isa.SUB, isa.R13, 1)
	b.AluRI(isa.CMP, isa.R13, 0)
	b.Jcc(isa.JG, outer)

	// Free the list.
	freeL := e.lbl("free")
	freeDone := e.lbl("freedone")
	b.Label(freeL)
	b.AluRI(isa.CMP, isa.RBX, 0)
	b.Jcc(isa.JE, freeDone)
	b.Load(isa.R13, isa.RBX, 0, 8) // next
	e.callFree(isa.RBX)
	b.MovRR(isa.RBX, isa.R13)
	b.Jmp(freeL)
	b.Label(freeDone)
	e.epilogue()
}

// hash: scattered in-bounds read-modify-writes through an LCG index —
// non-incremental access patterns that only the LowFat check understands.
func (e *emitter) hash() {
	b := e.b
	e.prologue()
	e.malloc(isa.RBX, 4096*8)
	b.MovRR(isa.RDI, isa.RBX)
	b.MovRI(isa.RSI, 0)
	b.MovRI(isa.RDX, 4096*8)
	b.CallImport("memset")
	b.MovRI(isa.RSI, 12345) // LCG state
	b.MovRI(isa.R13, 0)     // saved multiplier
	b.Emit(isa.Inst{Op: isa.MOVABS, Form: isa.FRI, Reg: isa.R13, Imm: 6364136223846793005})
	b.MovRI(isa.R14, 0)
	b.Emit(isa.Inst{Op: isa.MOVABS, Form: isa.FRI, Reg: isa.R14, Imm: 1442695040888963407})
	b.MovRI(isa.RCX, 0)
	loop := e.lbl("loop")
	b.Label(loop)
	b.Store(isa.RSP, -24, isa.RCX, 8) // spill (eliminable)
	b.Emit(isa.Inst{Op: isa.IMUL, Form: isa.FRR, Reg: isa.RSI, Reg2: isa.R13, Size: 8})
	b.AluRR(isa.ADD, isa.RSI, isa.R14)
	b.MovRR(isa.RDX, isa.RSI)
	b.Shift(isa.SHR, isa.RDX, 33)
	b.AluRI(isa.AND, isa.RDX, 4095)
	b.Load(isa.RCX, isa.RSP, -24, 8) // reload (eliminable)
	b.AluMR(isa.ADD, asm.MemBID(isa.RBX, isa.RDX, 8, 0), isa.RCX, 8)
	b.AluRI(isa.ADD, isa.RCX, 1)
	b.AluRR(isa.CMP, isa.RCX, isa.R12)
	b.Jcc(isa.JL, loop)

	b.MovRI(isa.RAX, 0)
	b.MovRI(isa.RCX, 0)
	sum := e.lbl("sum")
	b.Label(sum)
	b.AluRM(isa.ADD, isa.RAX, asm.MemBID(isa.RBX, isa.RCX, 8, 0), 8)
	b.AluRI(isa.ADD, isa.RCX, 1)
	b.AluRI(isa.CMP, isa.RCX, 4096)
	b.Jcc(isa.JL, sum)
	e.callFree(isa.RBX)
	e.epilogue()
}

// stencil: b[i] = a[i-1]+a[i]+a[i+1] — three same-base/index loads with
// different displacements, prime material for check merging.
func (e *emitter) stencil() {
	b := e.b
	e.prologue()
	const grid = 2048
	e.malloc(isa.RBX, grid*8)
	e.malloc(isa.R13, grid*8)
	// Fill a.
	b.MovRI(isa.RCX, 0)
	fill := e.lbl("fill")
	b.Label(fill)
	b.MovRR(isa.RDX, isa.RCX)
	b.Emit(isa.Inst{Op: isa.IMUL, Form: isa.FRI, Reg: isa.RDX, Imm: 3, Size: 8})
	b.AluRI(isa.AND, isa.RDX, 0x3FF)
	b.StoreM(asm.MemBID(isa.RBX, isa.RCX, 8, 0), isa.RDX, 8)
	b.AluRI(isa.ADD, isa.RCX, 1)
	b.AluRI(isa.CMP, isa.RCX, grid)
	b.Jcc(isa.JL, fill)

	// Sweep the stencil n>>9 + 1 times.
	b.MovRR(isa.R14, isa.R12)
	b.Shift(isa.SHR, isa.R14, 9)
	b.AluRI(isa.ADD, isa.R14, 1)
	outer := e.lbl("outer")
	row := e.lbl("row")
	b.Label(outer)
	b.MovRI(isa.RCX, 1)
	b.Label(row)
	b.Store(isa.RSP, -16, isa.RCX, 8) // spill (eliminable)
	b.LoadM(isa.RDX, asm.MemBID(isa.RBX, isa.RCX, 8, -8), 8)
	b.AluRM(isa.ADD, isa.RDX, asm.MemBID(isa.RBX, isa.RCX, 8, 0), 8)
	b.AluRM(isa.ADD, isa.RDX, asm.MemBID(isa.RBX, isa.RCX, 8, 8), 8)
	b.Shift(isa.SHR, isa.RDX, 1)
	b.StoreM(asm.MemBID(isa.R13, isa.RCX, 8, 0), isa.RDX, 8)
	b.Load(isa.RCX, isa.RSP, -16, 8) // reload (eliminable)
	b.AluRI(isa.ADD, isa.RCX, 1)
	b.AluRI(isa.CMP, isa.RCX, grid-1)
	b.Jcc(isa.JL, row)
	b.AluRI(isa.SUB, isa.R14, 1)
	b.AluRI(isa.CMP, isa.R14, 0)
	b.Jcc(isa.JG, outer)

	// Checksum b.
	b.MovRI(isa.RAX, 0)
	b.MovRI(isa.RCX, 1)
	sum := e.lbl("sum")
	b.Label(sum)
	b.AluRM(isa.ADD, isa.RAX, asm.MemBID(isa.R13, isa.RCX, 8, 0), 8)
	b.AluRI(isa.ADD, isa.RCX, 1)
	b.AluRI(isa.CMP, isa.RCX, grid-1)
	b.Jcc(isa.JL, sum)
	e.callFree(isa.RBX)
	e.callFree(isa.R13)
	e.epilogue()
}

// strScan: fill a byte buffer with a repeating pattern and count
// occurrences of one byte — sub-word loads and stores.
func (e *emitter) strScan() {
	b := e.b
	e.prologue()
	const blen = 8192
	e.malloc(isa.RBX, blen)
	b.MovRI(isa.RCX, 0)
	fill := e.lbl("fill")
	b.Label(fill)
	b.MovRR(isa.RDX, isa.RCX)
	b.AluRI(isa.AND, isa.RDX, 0x3F)
	b.AluRI(isa.ADD, isa.RDX, 0x20)
	b.StoreM(asm.MemBID(isa.RBX, isa.RCX, 1, 0), isa.RDX, 1)
	b.AluRI(isa.ADD, isa.RCX, 1)
	b.AluRI(isa.CMP, isa.RCX, blen)
	b.Jcc(isa.JL, fill)

	// Scan n>>3 + blen bytes (wrapping) counting 0x41.
	b.MovRR(isa.R13, isa.R12)
	b.Shift(isa.SHR, isa.R13, 3)
	b.AluRI(isa.ADD, isa.R13, blen)
	b.MovRI(isa.RAX, 0)
	b.MovRI(isa.RCX, 0)
	scan := e.lbl("scan")
	skip := e.lbl("skip")
	b.Label(scan)
	b.Store(isa.RSP, -32, isa.RAX, 8) // spill (eliminable)
	b.MovRR(isa.RDX, isa.RCX)
	b.AluRI(isa.AND, isa.RDX, blen-1)
	b.Load(isa.RAX, isa.RSP, -32, 8) // reload (eliminable)
	b.Emit(isa.Inst{Op: isa.MOVZX, Form: isa.FRM, Reg: isa.RSI, Size: 1,
		Mem: asm.MemBID(isa.RBX, isa.RDX, 1, 0)})
	b.AluRI(isa.CMP, isa.RSI, 0x41)
	b.Jcc(isa.JNE, skip)
	b.AluRI(isa.ADD, isa.RAX, 1)
	b.Label(skip)
	b.AluRI(isa.ADD, isa.RCX, 1)
	b.AluRR(isa.CMP, isa.RCX, isa.R13)
	b.Jcc(isa.JL, scan)
	e.callFree(isa.RBX)
	e.epilogue()
}

// matrix: 16×16 integer matrix multiply, repeated n>>10 + 1 times.
func (e *emitter) matrix() {
	b := e.b
	e.prologue()
	const dim = 16
	const bytes = dim * dim * 8
	e.malloc(isa.RBX, bytes) // a
	e.malloc(isa.R13, bytes) // b
	e.malloc(isa.R14, bytes) // c
	b.MovRI(isa.RCX, 0)
	fill := e.lbl("fill")
	b.Label(fill)
	b.MovRR(isa.RDX, isa.RCX)
	b.AluRI(isa.AND, isa.RDX, 7)
	b.StoreM(asm.MemBID(isa.RBX, isa.RCX, 8, 0), isa.RDX, 8)
	b.MovRR(isa.RDX, isa.RCX)
	b.AluRI(isa.AND, isa.RDX, 5)
	b.StoreM(asm.MemBID(isa.R13, isa.RCX, 8, 0), isa.RDX, 8)
	b.AluRI(isa.ADD, isa.RCX, 1)
	b.AluRI(isa.CMP, isa.RCX, dim*dim)
	b.Jcc(isa.JL, fill)

	b.MovRR(isa.RDI, isa.R12)
	b.Shift(isa.SHR, isa.RDI, 10)
	b.AluRI(isa.ADD, isa.RDI, 1)
	rep := e.lbl("rep")
	iL := e.lbl("i")
	jL := e.lbl("j")
	kL := e.lbl("k")
	b.Label(rep)
	b.MovRI(isa.RCX, 0) // i
	b.Label(iL)
	b.MovRI(isa.RDX, 0) // j
	b.Label(jL)
	b.MovRI(isa.RAX, 0) // acc
	b.MovRI(isa.RSI, 0) // k
	b.Label(kL)
	b.Store(isa.RSP, -40, isa.RDX, 8) // spill j (eliminable)
	// r8 = a[i*dim+k]
	b.MovRR(isa.R8, isa.RCX)
	b.Shift(isa.SHL, isa.R8, 4)
	b.AluRR(isa.ADD, isa.R8, isa.RSI)
	b.LoadM(isa.R8, asm.MemBID(isa.RBX, isa.R8, 8, 0), 8)
	// r9 = b[k*dim+j]
	b.MovRR(isa.R9, isa.RSI)
	b.Shift(isa.SHL, isa.R9, 4)
	b.AluRR(isa.ADD, isa.R9, isa.RDX)
	b.LoadM(isa.R9, asm.MemBID(isa.R13, isa.R9, 8, 0), 8)
	b.Emit(isa.Inst{Op: isa.IMUL, Form: isa.FRR, Reg: isa.R8, Reg2: isa.R9, Size: 8})
	b.AluRR(isa.ADD, isa.RAX, isa.R8)
	b.Load(isa.RDX, isa.RSP, -40, 8) // reload j (eliminable)
	b.AluRI(isa.ADD, isa.RSI, 1)
	b.AluRI(isa.CMP, isa.RSI, dim)
	b.Jcc(isa.JL, kL)
	// c[i*dim+j] = acc
	b.MovRR(isa.R8, isa.RCX)
	b.Shift(isa.SHL, isa.R8, 4)
	b.AluRR(isa.ADD, isa.R8, isa.RDX)
	b.StoreM(asm.MemBID(isa.R14, isa.R8, 8, 0), isa.RAX, 8)
	b.AluRI(isa.ADD, isa.RDX, 1)
	b.AluRI(isa.CMP, isa.RDX, dim)
	b.Jcc(isa.JL, jL)
	b.AluRI(isa.ADD, isa.RCX, 1)
	b.AluRI(isa.CMP, isa.RCX, dim)
	b.Jcc(isa.JL, iL)
	b.AluRI(isa.SUB, isa.RDI, 1)
	b.AluRI(isa.CMP, isa.RDI, 0)
	b.Jcc(isa.JG, rep)

	// Checksum c.
	b.MovRI(isa.RAX, 0)
	b.MovRI(isa.RCX, 0)
	sum := e.lbl("sum")
	b.Label(sum)
	b.AluRM(isa.ADD, isa.RAX, asm.MemBID(isa.R14, isa.RCX, 8, 0), 8)
	b.AluRI(isa.ADD, isa.RCX, 1)
	b.AluRI(isa.CMP, isa.RCX, dim*dim)
	b.Jcc(isa.JL, sum)
	e.callFree(isa.RBX)
	e.callFree(isa.R13)
	e.callFree(isa.R14)
	e.epilogue()
}

// tree: binary searches over a sorted array — branchy loads.
func (e *emitter) tree() {
	b := e.b
	e.prologue()
	const elems = 1024
	e.malloc(isa.RBX, elems*8)
	b.MovRI(isa.RCX, 0)
	fill := e.lbl("fill")
	b.Label(fill)
	b.MovRR(isa.RDX, isa.RCX)
	b.Shift(isa.SHL, isa.RDX, 1)
	b.StoreM(asm.MemBID(isa.RBX, isa.RCX, 8, 0), isa.RDX, 8)
	b.AluRI(isa.ADD, isa.RCX, 1)
	b.AluRI(isa.CMP, isa.RCX, elems)
	b.Jcc(isa.JL, fill)

	b.MovRI(isa.RSI, 99991) // LCG-ish state
	b.MovRI(isa.RAX, 0)     // found counter
	b.MovRI(isa.R13, 0)     // search index
	search := e.lbl("search")
	loop := e.lbl("bsloop")
	done := e.lbl("bsdone")
	found := e.lbl("found")
	next := e.lbl("next")
	b.Label(search)
	// target = (state := state*25214903917+11) >> 20 & 2047
	b.MovRI(isa.R14, 0)
	b.Emit(isa.Inst{Op: isa.MOVABS, Form: isa.FRI, Reg: isa.R14, Imm: 25214903917})
	b.Emit(isa.Inst{Op: isa.IMUL, Form: isa.FRR, Reg: isa.RSI, Reg2: isa.R14, Size: 8})
	b.AluRI(isa.ADD, isa.RSI, 11)
	b.MovRR(isa.RDX, isa.RSI)
	b.Shift(isa.SHR, isa.RDX, 20)
	b.AluRI(isa.AND, isa.RDX, 2047)
	// lo=RCX, hi=R8
	b.MovRI(isa.RCX, 0)
	b.MovRI(isa.R8, elems-1)
	b.Label(loop)
	b.AluRR(isa.CMP, isa.RCX, isa.R8)
	b.Jcc(isa.JG, done)
	b.MovRR(isa.R9, isa.RCX)
	b.AluRR(isa.ADD, isa.R9, isa.R8)
	b.Shift(isa.SHR, isa.R9, 1)
	b.LoadM(isa.R10, asm.MemBID(isa.RBX, isa.R9, 8, 0), 8)
	b.AluRR(isa.CMP, isa.R10, isa.RDX)
	b.Jcc(isa.JE, found)
	b.Jcc(isa.JL, next) // mid < target → lo = mid+1
	b.MovRR(isa.R8, isa.R9)
	b.AluRI(isa.SUB, isa.R8, 1)
	b.Jmp(loop)
	b.Label(next)
	b.MovRR(isa.RCX, isa.R9)
	b.AluRI(isa.ADD, isa.RCX, 1)
	b.Jmp(loop)
	b.Label(found)
	b.AluRI(isa.ADD, isa.RAX, 1)
	b.Label(done)
	b.AluRI(isa.ADD, isa.R13, 1)
	b.AluRR(isa.CMP, isa.R13, isa.R12)
	b.Jcc(isa.JL, search)
	e.callFree(isa.RBX)
	e.epilogue()
}

// structs: stores to four fields of a struct through one base register —
// the exact shape of the paper's Example 2 (batching + merging).
func (e *emitter) structs() {
	b := e.b
	e.prologue()
	const count = 64
	const ssize = 40
	e.malloc(isa.RBX, count*ssize)
	b.MovRI(isa.RAX, 0)
	b.MovRI(isa.RCX, 0)
	loop := e.lbl("loop")
	b.Label(loop)
	// rdx = &arr[(i & 63) * 40]
	b.MovRR(isa.RDX, isa.RCX)
	b.AluRI(isa.AND, isa.RDX, count-1)
	b.Emit(isa.Inst{Op: isa.IMUL, Form: isa.FRI, Reg: isa.RDX, Imm: ssize, Size: 8})
	b.AluRR(isa.ADD, isa.RDX, isa.RBX)
	// Four same-base stores at disp 0,8,16,24 and a load at 0.
	b.Store(isa.RDX, 0, isa.RCX, 8)
	b.StoreI(isa.RDX, 8, 1, 8)
	b.StoreI(isa.RDX, 16, 2, 8)
	b.StoreI(isa.RDX, 24, 3, 8)
	b.AluRM(isa.ADD, isa.RAX, asm.MemBID(isa.RDX, isa.RegNone, 1, 0), 8)
	b.AluRI(isa.ADD, isa.RCX, 1)
	b.AluRR(isa.CMP, isa.RCX, isa.R12)
	b.Jcc(isa.JL, loop)
	e.callFree(isa.RBX)
	e.epilogue()
}

// churn: allocation-heavy loop with short-lived objects of varying size.
func (e *emitter) churn() {
	b := e.b
	e.prologue()
	b.MovRI(isa.R13, 0) // checksum
	b.MovRI(isa.R14, 0) // i
	// Iterations: n>>4 + 1 (allocator calls are expensive).
	b.Shift(isa.SHR, isa.R12, 4)
	b.AluRI(isa.ADD, isa.R12, 1)
	loop := e.lbl("loop")
	b.Label(loop)
	b.MovRR(isa.RDI, isa.R14)
	b.AluRI(isa.AND, isa.RDI, 0xF8)
	b.AluRI(isa.ADD, isa.RDI, 16)
	b.CallImport("malloc")
	b.MovRR(isa.RBX, isa.RAX)
	b.Store(isa.RBX, 0, isa.R14, 8)
	b.Store(isa.RBX, 8, isa.R14, 4)
	b.AluRM(isa.ADD, isa.R13, asm.MemBID(isa.RBX, isa.RegNone, 1, 0), 8)
	b.MovRR(isa.RDI, isa.RBX)
	b.CallImport("free")
	b.AluRI(isa.ADD, isa.R14, 1)
	b.AluRR(isa.CMP, isa.R14, isa.R12)
	b.Jcc(isa.JL, loop)
	b.MovRR(isa.RAX, isa.R13)
	e.epilogue()
}

// anti: the (array−K)[i] anti-idiom (paper §2.1 snippet (c) / §7.1):
// param = number of distinct anti-idiom access instructions to plant.
// Every access is valid (lands inside the object); only the intermediate
// pointer is out of bounds, so the LowFat check false-positives on each
// planted instruction while redzones stay silent.
func (e *emitter) anti(count int64) {
	if count < 1 {
		count = 1
	}
	b := e.b
	e.prologue()
	const K = 128
	const size = 512
	e.malloc(isa.RBX, size)
	b.MovRR(isa.RDI, isa.RBX)
	b.MovRI(isa.RSI, 0)
	b.MovRI(isa.RDX, size)
	b.CallImport("memset") // deterministic contents before mixed R/W
	// r13 = array − K: the intentional out-of-bounds pointer (as the
	// Fortran compiler materializes fqy−K for non-zero lower bounds).
	b.MovRR(isa.R13, isa.RBX)
	b.AluRI(isa.SUB, isa.R13, K)
	b.MovRI(isa.RAX, 0)
	b.MovRI(isa.RCX, 0)
	loop := e.lbl("loop")
	b.Label(loop)
	// rdx = K + (i % (size − 8·count)) — always a valid index.
	b.MovRR(isa.RDX, isa.RCX)
	b.AluRI(isa.AND, isa.RDX, 0xFF)
	b.AluRI(isa.ADD, isa.RDX, K)
	// count distinct access instructions through the OOB base pointer.
	for c := int64(0); c < count; c++ {
		if c%2 == 0 {
			b.StoreM(asm.MemBID(isa.R13, isa.RDX, 1, int32(c*8)), isa.RCX, 8)
		} else {
			b.AluRM(isa.ADD, isa.RAX, asm.MemBID(isa.R13, isa.RDX, 1, int32(c*8)), 8)
		}
	}
	b.AluRI(isa.ADD, isa.RCX, 1)
	b.AluRR(isa.CMP, isa.RCX, isa.R12)
	b.Jcc(isa.JL, loop)
	e.callFree(isa.RBX)
	e.epilogue()
}

// bugUnder: plants `count` distinct array[-1] read-underflow instructions
// (the calculix bugs, paper §7.1 "Detected errors"). The read value is
// discarded so the program's checksum stays allocator-independent.
func (e *emitter) bugUnder(count int) {
	if count < 1 {
		count = 1
	}
	b := e.b
	e.prologue()
	e.malloc(isa.RBX, 256)
	b.StoreI(isa.RBX, 0, 1, 8)
	for c := 0; c < count; c++ {
		// Each a distinct instruction in its own basic block (the real
		// CalculiX occurrences are separate statements): reads the word
		// before the object (metadata/header: mapped memory).
		b.LoadM(isa.RDX, asm.MemBID(isa.RBX, isa.RegNone, 1, -8), 8)
		b.Emit(isa.Inst{Op: isa.TEST, Form: isa.FRR, Reg: isa.RDX, Reg2: isa.RDX, Size: 8})
		next := e.lbl("next")
		b.Jcc(isa.JS, next) // block boundary between the planted sites
		b.Nop()
		b.Label(next)
	}
	b.MovRI(isa.RAX, 0)
	e.callFree(isa.RBX)
	e.epilogue()
}

// bugOver: plants one read overflow past the end of an object (the wrf
// interp_fcn bug). A neighbouring allocation keeps the target mapped.
func (e *emitter) bugOver() {
	b := e.b
	e.prologue()
	e.malloc(isa.RBX, 240)
	e.malloc(isa.R13, 240) // neighbour keeps the page/slot area mapped
	b.StoreI(isa.RBX, 0, 1, 8)
	b.StoreI(isa.R13, 0, 1, 8)
	// Read a[240]: one element past the object, into padding/redzone.
	b.LoadM(isa.RDX, asm.MemBID(isa.RBX, isa.RegNone, 1, 240), 8)
	b.Emit(isa.Inst{Op: isa.TEST, Form: isa.FRR, Reg: isa.RDX, Reg2: isa.RDX, Size: 8})
	b.MovRI(isa.RAX, 0)
	e.callFree(isa.RBX)
	e.callFree(isa.R13)
	e.epilogue()
}
