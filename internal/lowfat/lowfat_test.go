package lowfat

import (
	"math/rand"
	"testing"
	"testing/quick"

	"redfat/internal/mem"
)

func TestSizesTable(t *testing.T) {
	// Linear classes: 16·i.
	for i := 1; i <= NumLinear; i++ {
		if got := ClassSize(i); got != uint64(16*i) {
			t.Errorf("ClassSize(%d) = %d, want %d", i, got, 16*i)
		}
	}
	// Power-of-two classes: 2 KB .. 64 MB.
	if got := ClassSize(NumLinear + 1); got != 2048 {
		t.Errorf("first pow2 class = %d, want 2048", got)
	}
	if got := ClassSize(NumClasses); got != MaxClassSize {
		t.Errorf("last class = %d, want %d", got, MaxClassSize)
	}
	// Out-of-range classes are non-fat.
	if ClassSize(0) != SizeMax || ClassSize(NumClasses+1) != SizeMax {
		t.Error("out-of-range class size not SizeMax")
	}
}

func TestClassFor(t *testing.T) {
	cases := []struct {
		size uint64
		want int
	}{
		{1, 1}, {15, 1}, {16, 1}, {17, 2}, {32, 2}, {33, 3},
		{1024, 64}, {1025, 65}, {2048, 65}, {2049, 66}, {4096, 66},
		{MaxClassSize, NumClasses}, {MaxClassSize + 1, 0}, {0, 1},
	}
	for _, c := range cases {
		if got := ClassFor(c.size); got != c.want {
			t.Errorf("ClassFor(%d) = %d, want %d", c.size, got, c.want)
		}
	}
	// ClassFor/ClassSize agree: ClassSize(ClassFor(n)) ≥ n.
	for n := uint64(1); n <= 4096; n++ {
		c := ClassFor(n)
		if c == 0 {
			t.Fatalf("ClassFor(%d) = 0", n)
		}
		if ClassSize(c) < n {
			t.Errorf("ClassSize(ClassFor(%d)) = %d < %d", n, ClassSize(c), n)
		}
		if c > 1 && ClassSize(c-1) >= n {
			t.Errorf("ClassFor(%d) = %d not minimal", n, c)
		}
	}
}

func TestSizeBaseNonFat(t *testing.T) {
	nonFat := []uint64{
		0, 0x400000, 0x601000, // code/data (region 0)
		0x7FFF_FFFF_0000,                        // stack
		uint64(LegacyRegionIndex) * RegionSize,  // legacy heap
		uint64(NumClasses+1)*RegionSize + 0x100, // past last class
	}
	for _, p := range nonFat {
		if Size(p) != SizeMax {
			t.Errorf("Size(%#x) = %d, want SizeMax", p, Size(p))
		}
		if Base(p) != 0 {
			t.Errorf("Base(%#x) = %#x, want 0", p, Base(p))
		}
		if IsLowFat(p) {
			t.Errorf("IsLowFat(%#x) = true", p)
		}
	}
}

func TestAllocBasic(t *testing.T) {
	a := New(mem.New())
	p, err := a.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if !IsLowFat(p) {
		t.Fatalf("Alloc(100) = %#x not low-fat", p)
	}
	if got := Size(p); got != 112 { // class 7: 16·7
		t.Errorf("Size = %d, want 112", got)
	}
	if Base(p) != p {
		t.Errorf("Base(%#x) = %#x, want identity at object start", p, Base(p))
	}
	if p%Size(p) != 0 {
		t.Errorf("allocation %#x not size-aligned", p)
	}
	// Interior pointers resolve to the object base.
	for off := uint64(1); off < 112; off += 13 {
		if Base(p+off) != p {
			t.Errorf("Base(%#x+%d) = %#x", p, off, Base(p+off))
		}
	}
	// Memory is mapped and writable.
	m := a.mem
	if err := m.Store(p, 8, 0xFEED); err != nil {
		t.Fatalf("allocated memory not writable: %v", err)
	}
}

func TestAllocDistinctRegions(t *testing.T) {
	a := New(mem.New())
	p16, _ := a.Alloc(16)
	p32, _ := a.Alloc(32)
	p1k, _ := a.Alloc(1024)
	p4k, _ := a.Alloc(4000)
	if RegionIndex(p16) != 1 || RegionIndex(p32) != 2 || RegionIndex(p1k) != 64 {
		t.Errorf("regions: %d %d %d", RegionIndex(p16), RegionIndex(p32), RegionIndex(p1k))
	}
	if RegionIndex(p4k) != NumLinear+2 { // 4 KB class
		t.Errorf("4000-byte alloc in region %d", RegionIndex(p4k))
	}
}

func TestFreeAndReuse(t *testing.T) {
	a := New(mem.New())
	p1, _ := a.Alloc(64)
	if err := a.Free(p1); err != nil {
		t.Fatal(err)
	}
	p2, _ := a.Alloc(64)
	if p1 != p2 {
		t.Errorf("LIFO reuse expected: %#x vs %#x", p1, p2)
	}
	if err := a.Free(p2); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p2); err == nil {
		t.Error("double free not detected")
	}
	if err := a.Free(p2 + 8); err == nil {
		t.Error("free of interior pointer not detected")
	}
	if err := a.Free(0xdead0000); err == nil {
		t.Error("free of wild pointer not detected")
	}
}

func TestLegacyFallback(t *testing.T) {
	a := New(mem.New())
	p, err := a.Alloc(MaxClassSize + 1)
	if err != nil {
		t.Fatal(err)
	}
	if IsLowFat(p) {
		t.Error("oversized allocation placed in low-fat region")
	}
	if RegionIndex(p) != LegacyRegionIndex {
		t.Errorf("legacy alloc in region %d", RegionIndex(p))
	}
	if Size(p) != SizeMax || Base(p) != 0 {
		t.Error("legacy pointer should be non-fat")
	}
	if a.Stats().LegacyAlloc != 1 {
		t.Errorf("LegacyAlloc = %d", a.Stats().LegacyAlloc)
	}
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
}

func TestStats(t *testing.T) {
	a := New(mem.New())
	p1, _ := a.Alloc(10) // class 1, slot 16
	p2, _ := a.Alloc(20) // class 2, slot 32
	s := a.Stats()
	if s.Allocs != 2 || s.BytesInUse != 48 || s.PeakInUse != 48 {
		t.Errorf("stats = %+v", s)
	}
	a.Free(p1)
	s = a.Stats()
	if s.Frees != 1 || s.BytesInUse != 32 {
		t.Errorf("stats after free = %+v", s)
	}
	if s.PeakInUse != 48 {
		t.Errorf("peak lost: %+v", s)
	}
	a.Free(p2)
	if a.LiveCount() != 0 {
		t.Errorf("LiveCount = %d", a.LiveCount())
	}
}

func TestUsableRequestedSize(t *testing.T) {
	a := New(mem.New())
	p, _ := a.Alloc(100)
	if u, ok := a.UsableSize(p); !ok || u != 112 {
		t.Errorf("UsableSize = %d, %v", u, ok)
	}
	if r, ok := a.RequestedSize(p); !ok || r != 100 {
		t.Errorf("RequestedSize = %d, %v", r, ok)
	}
	a.Free(p)
	if _, ok := a.UsableSize(p); ok {
		t.Error("UsableSize on freed pointer succeeded")
	}
}

// Property: Base/Size algebra (paper §2.1). For any low-fat allocation p
// and any offset within the slot: Base(p+off) == p, Size(p+off) == slot,
// Base is idempotent, and Base(p) is size-aligned.
func TestQuickBaseSizeAlgebra(t *testing.T) {
	a := New(mem.New())
	r := rand.New(rand.NewSource(5))
	f := func() bool {
		req := uint64(1 + r.Intn(100000))
		p, err := a.Alloc(req)
		if err != nil {
			t.Fatal(err)
		}
		if !IsLowFat(p) {
			return false
		}
		slot := Size(p)
		if slot < req {
			return false
		}
		off := uint64(r.Int63n(int64(slot)))
		q := p + off
		if Base(q) != p || Size(q) != slot {
			return false
		}
		if Base(Base(q)) != Base(q) { // idempotent
			return false
		}
		return p%slot == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: live allocations never overlap.
func TestQuickNoOverlap(t *testing.T) {
	a := New(mem.New())
	r := rand.New(rand.NewSource(9))
	type span struct{ lo, hi uint64 }
	var live []span
	ptrs := map[uint64]uint64{}
	for i := 0; i < 3000; i++ {
		if len(ptrs) > 0 && r.Intn(3) == 0 {
			for p := range ptrs {
				a.Free(p)
				delete(ptrs, p)
				break
			}
			continue
		}
		req := uint64(1 + r.Intn(3000))
		p, err := a.Alloc(req)
		if err != nil {
			t.Fatal(err)
		}
		ptrs[p] = req
		// Check the new span against every live span (the older spans
		// were pairwise-checked when they were new).
		newEnd := p + req
		if IsLowFat(p) {
			newEnd = p + Size(p)
		}
		live = live[:0]
		for q, sz := range ptrs {
			if q == p {
				continue
			}
			end := q + sz
			if IsLowFat(q) {
				end = q + Size(q)
			}
			live = append(live, span{q, end})
		}
		for _, s := range live {
			if p < s.hi && s.lo < newEnd {
				t.Fatalf("overlap: [%#x,%#x) and [%#x,%#x)", p, newEnd, s.lo, s.hi)
			}
		}
	}
}

func TestRandomizedPlacement(t *testing.T) {
	a := New(mem.New())
	a.Randomize = true
	// Build a free list, then check reuse is not strictly LIFO.
	var ps []uint64
	for i := 0; i < 32; i++ {
		p, _ := a.Alloc(48)
		ps = append(ps, p)
	}
	for _, p := range ps {
		a.Free(p)
	}
	reusedInOrder := true
	for i := len(ps) - 1; i >= 0; i-- {
		p, _ := a.Alloc(48)
		if p != ps[i] {
			reusedInOrder = false
		}
	}
	if reusedInOrder {
		t.Error("randomized allocator reused slots in strict LIFO order")
	}
}

func TestHeapBounds(t *testing.T) {
	// Every low-fat class region must lie within [HeapLow, HeapHigh),
	// and the legacy region too — check-elimination depends on it.
	for c := 1; c <= NumClasses; c++ {
		lo := uint64(c) * RegionSize
		if lo < HeapLow || lo+RegionSize > HeapHigh {
			t.Errorf("class %d region outside heap bounds", c)
		}
	}
	legacyLo := uint64(LegacyRegionIndex) * RegionSize
	if legacyLo < HeapLow || legacyLo+RegionSize > HeapHigh {
		t.Error("legacy region outside heap bounds")
	}
}

func BenchmarkAllocFree(b *testing.B) {
	a := New(mem.New())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := a.Alloc(uint64(16 + i%512))
		if err != nil {
			b.Fatal(err)
		}
		a.Free(p)
	}
}

func BenchmarkBase(b *testing.B) {
	a := New(mem.New())
	p, _ := a.Alloc(100)
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += Base(p + uint64(i%100))
	}
	_ = sink
}
