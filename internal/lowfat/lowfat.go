// Package lowfat implements the low-fat memory allocator and pointer
// encoding of Duck & Yap (paper §2.1, Fig. 2).
//
// The 64-bit virtual address space is partitioned into equally sized 32 GB
// regions. Regions #1..#M each contain a subheap servicing allocations of a
// single size class; objects inside region #i are placed at absolute
// addresses that are multiples of SIZES[i]. Everything else (code, globals,
// stack, oversized allocations) lives in non-fat regions.
//
// This placement makes the two low-fat pointer operations O(1):
//
//	size(ptr) = SIZES[ptr / 32GB]
//	base(ptr) = ptr − (ptr mod size(ptr))
//
// with SIZES[i] = SIZE_MAX for non-fat regions, so that non-fat pointers
// are always "in bounds" (over-approximate but valid bounds).
//
// The size classes follow the LowFat default configuration: 64 linear
// classes of 16·i bytes (16..1024), then power-of-two classes up to 64 MB.
// Larger allocations fall back to a designated non-fat legacy region, as
// the real allocator falls back to mmap.
package lowfat

import (
	"fmt"

	"redfat/internal/mem"
	"redfat/internal/telemetry"
)

// Region geometry.
const (
	// RegionShift is log2 of the region size: 32 GB regions.
	RegionShift = 35
	// RegionSize is the size of each region (32 GB).
	RegionSize = 1 << RegionShift

	// NumLinear is the number of linear size classes (16, 32, ..., 1024).
	NumLinear = 64
	// NumPow2 is the number of power-of-two classes (2 KB .. 64 MB).
	NumPow2 = 16
	// NumClasses is the total number of low-fat size classes.
	NumClasses = NumLinear + NumPow2

	// MaxClassSize is the largest low-fat allocation size (64 MB);
	// larger requests are serviced from the non-fat legacy region.
	MaxClassSize = 1 << (10 + NumPow2) // 2^26 = 64 MB

	// LegacyRegionIndex is the region used for oversized (non-fat)
	// allocations. It sits just past the low-fat regions.
	LegacyRegionIndex = NumClasses + 2

	// SizeMax is the "infinite" size returned for non-fat pointers.
	SizeMax = ^uint64(0)
)

// HeapLow and HeapHigh bound the address range that may contain low-fat
// heap memory, used by the check-elimination analysis (paper §6).
const (
	HeapLow  = 1 * RegionSize
	HeapHigh = uint64(LegacyRegionIndex+1) * RegionSize
)

// sizes is the SIZES table: region index → allocation size.
var sizes [NumClasses + 1]uint64

func init() {
	for i := 1; i <= NumLinear; i++ {
		sizes[i] = uint64(16 * i)
	}
	for i := 0; i < NumPow2; i++ {
		sizes[NumLinear+1+i] = 1 << (11 + i)
	}
}

// RegionIndex returns the 32 GB region number containing ptr.
func RegionIndex(ptr uint64) uint64 { return ptr >> RegionShift }

// Size implements the low-fat size(ptr) operation: the allocation size of
// the region containing ptr, or SizeMax for non-fat pointers.
func Size(ptr uint64) uint64 {
	idx := ptr >> RegionShift
	if idx >= 1 && idx <= NumClasses {
		return sizes[idx]
	}
	return SizeMax
}

// Base implements the low-fat base(ptr) operation: the base address of the
// (potential) object containing ptr, or 0 (NULL) for non-fat pointers.
func Base(ptr uint64) uint64 {
	idx := ptr >> RegionShift
	if idx >= 1 && idx <= NumClasses {
		size := sizes[idx]
		return ptr - ptr%size
	}
	return 0
}

// IsLowFat reports whether ptr points into a low-fat region.
func IsLowFat(ptr uint64) bool {
	idx := ptr >> RegionShift
	return idx >= 1 && idx <= NumClasses
}

// ClassFor returns the smallest size-class index whose allocation size is
// ≥ size, or 0 if the request must go to the legacy region.
func ClassFor(size uint64) int {
	if size == 0 {
		size = 1
	}
	if size <= 16*NumLinear {
		return int((size + 15) / 16)
	}
	if size > MaxClassSize {
		return 0
	}
	// Smallest power of two ≥ size, at least 2 KB.
	c := NumLinear + 1
	s := uint64(2048)
	for s < size {
		s <<= 1
		c++
	}
	return c
}

// ClassSize returns the allocation size of class index c.
func ClassSize(c int) uint64 {
	if c >= 1 && c <= NumClasses {
		return sizes[c]
	}
	return SizeMax
}

// Stats carries allocator accounting.
type Stats struct {
	Allocs      uint64
	Frees       uint64
	BytesInUse  uint64
	PeakInUse   uint64
	LegacyAlloc uint64 // allocations that fell back to the legacy region
}

type subheap struct {
	class     int
	size      uint64 // slot size
	next      uint64 // bump pointer (absolute address of next fresh slot)
	end       uint64 // region end
	mappedTo  uint64 // pages mapped up to this address
	freeSlots []uint64
}

// Allocator is a low-fat allocator over a VM address space.
type Allocator struct {
	mem    *mem.Memory
	heaps  [NumClasses + 1]subheap
	legacy legacyHeap
	live   map[uint64]uint64 // slot base → requested size (alloc integrity)
	stats  Stats

	// rng state for optional placement randomization (paper §8 mentions
	// that RedFat incorporates basic heap randomization).
	rngState  uint64
	Randomize bool

	tel *allocMetrics
}

// allocMetrics holds the low-fat allocator's registry handles.
type allocMetrics struct {
	allocs    *telemetry.Counter
	frees     *telemetry.Counter
	legacy    *telemetry.Counter
	reuses    *telemetry.Counter // allocations served from a free list
	mapped    *telemetry.Counter // bytes of fresh pages mapped
	liveBytes *telemetry.Gauge
	peakBytes *telemetry.Gauge
	classes   *telemetry.Histogram // size-class occupancy by slot size
}

// AttachTelemetry binds the allocator's counters to reg.
func (a *Allocator) AttachTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	a.tel = &allocMetrics{
		allocs:    reg.Counter("lowfat.allocs"),
		frees:     reg.Counter("lowfat.frees"),
		legacy:    reg.Counter("lowfat.legacy.allocs"),
		reuses:    reg.Counter("lowfat.freelist.reuses"),
		mapped:    reg.Counter("lowfat.mapped.bytes"),
		liveBytes: reg.Gauge("lowfat.live.bytes"),
		peakBytes: reg.Gauge("lowfat.peak.bytes"),
		classes:   reg.Histogram("lowfat.class.size", telemetry.Pow2Bounds(4, 26)),
	}
}

// noteLive mirrors the BytesInUse/PeakInUse account into the registry.
func (a *Allocator) noteLive() {
	if a.tel != nil {
		a.tel.liveBytes.Set(a.stats.BytesInUse)
		a.tel.peakBytes.Set(a.stats.PeakInUse)
	}
}

// legacyHeap is the fallback bump allocator for oversized requests; it
// lives in a non-fat region, mirroring the real allocator's mmap fallback.
type legacyHeap struct {
	next uint64
	end  uint64
	live map[uint64]uint64 // ptr → mapped size
}

// New creates a low-fat allocator managing the standard region layout on m.
func New(m *mem.Memory) *Allocator {
	a := &Allocator{
		mem:      m,
		live:     make(map[uint64]uint64),
		rngState: 0x9E3779B97F4A7C15,
	}
	for c := 1; c <= NumClasses; c++ {
		base := uint64(c) * RegionSize
		size := sizes[c]
		start := base
		if rem := start % size; rem != 0 {
			start += size - rem
		}
		a.heaps[c] = subheap{
			class:    c,
			size:     size,
			next:     start,
			end:      base + RegionSize,
			mappedTo: start,
		}
	}
	a.legacy = legacyHeap{
		next: uint64(LegacyRegionIndex) * RegionSize,
		end:  uint64(LegacyRegionIndex+1) * RegionSize,
		live: make(map[uint64]uint64),
	}
	return a
}

// Stats returns a copy of the allocator statistics.
func (a *Allocator) Stats() Stats { return a.stats }

func (a *Allocator) rand() uint64 {
	// xorshift64*; deterministic, host-side only.
	x := a.rngState
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	a.rngState = x
	return x * 0x2545F4914F6CDD1D
}

const pageAlign = mem.PageSize - 1

// Alloc services an allocation of the given size, returning the object
// base address. Low-fat allocations are size-aligned within their class
// region; oversized requests fall back to the (non-fat) legacy region.
func (a *Allocator) Alloc(size uint64) (uint64, error) {
	c := ClassFor(size)
	if c == 0 {
		return a.allocLegacy(size)
	}
	h := &a.heaps[c]
	var ptr uint64
	if n := len(h.freeSlots); n > 0 {
		i := n - 1
		if a.Randomize && n > 1 {
			i = int(a.rand() % uint64(n))
		}
		ptr = h.freeSlots[i]
		h.freeSlots[i] = h.freeSlots[n-1]
		h.freeSlots = h.freeSlots[:n-1]
		if a.tel != nil {
			a.tel.reuses.Inc()
		}
	} else {
		if h.next+h.size > h.end {
			return 0, fmt.Errorf("lowfat: region #%d (size class %d) exhausted", c, h.size)
		}
		ptr = h.next
		h.next += h.size
		if h.next > h.mappedTo {
			// Map a chunk of fresh pages (at least 64 KB) so small
			// allocations don't pay a map call each.
			chunk := h.size
			if chunk < 1<<16 {
				chunk = 1 << 16
			}
			mapEnd := (h.mappedTo + chunk + pageAlign) &^ uint64(pageAlign)
			if mapEnd > h.end {
				mapEnd = h.end
			}
			a.mem.Map(h.mappedTo, mapEnd-h.mappedTo, mem.PermRW)
			if a.tel != nil {
				a.tel.mapped.Add(mapEnd - h.mappedTo)
			}
			h.mappedTo = mapEnd
		}
	}
	a.live[ptr] = size
	a.stats.Allocs++
	a.stats.BytesInUse += h.size
	if a.stats.BytesInUse > a.stats.PeakInUse {
		a.stats.PeakInUse = a.stats.BytesInUse
	}
	if a.tel != nil {
		a.tel.allocs.Inc()
		a.tel.classes.Observe(h.size)
		a.noteLive()
	}
	return ptr, nil
}

func (a *Allocator) allocLegacy(size uint64) (uint64, error) {
	mapped := (size + pageAlign) &^ uint64(pageAlign)
	if a.legacy.next+mapped > a.legacy.end {
		return 0, fmt.Errorf("lowfat: legacy region exhausted")
	}
	ptr := a.legacy.next
	a.legacy.next += mapped + mem.PageSize // guard page gap
	a.mem.Map(ptr, mapped, mem.PermRW)
	a.legacy.live[ptr] = mapped
	a.live[ptr] = size
	a.stats.Allocs++
	a.stats.LegacyAlloc++
	a.stats.BytesInUse += mapped
	if a.stats.BytesInUse > a.stats.PeakInUse {
		a.stats.PeakInUse = a.stats.BytesInUse
	}
	if a.tel != nil {
		a.tel.allocs.Inc()
		a.tel.legacy.Inc()
		a.tel.mapped.Add(mapped)
		a.tel.classes.Observe(mapped)
		a.noteLive()
	}
	return ptr, nil
}

// Free releases an allocation previously returned by Alloc. Freeing an
// address that is not a live allocation base is an error (the real
// allocator would abort).
func (a *Allocator) Free(ptr uint64) error {
	if _, ok := a.live[ptr]; !ok {
		return fmt.Errorf("lowfat: free of non-allocated pointer %#x", ptr)
	}
	delete(a.live, ptr)
	a.stats.Frees++
	if a.tel != nil {
		a.tel.frees.Inc()
	}
	if IsLowFat(ptr) {
		c := RegionIndex(ptr)
		h := &a.heaps[c]
		h.freeSlots = append(h.freeSlots, ptr)
		a.stats.BytesInUse -= h.size
		a.noteLive()
		return nil
	}
	mapped := a.legacy.live[ptr]
	delete(a.legacy.live, ptr)
	a.stats.BytesInUse -= mapped
	a.noteLive()
	// Keep legacy pages mapped (like MADV_FREE); contents remain until
	// reuse, matching use-after-free exploitability on real systems.
	return nil
}

// UsableSize returns the slot size backing a live allocation (the rounded
// class size for low-fat pointers, the mapped size for legacy pointers).
func (a *Allocator) UsableSize(ptr uint64) (uint64, bool) {
	if _, ok := a.live[ptr]; !ok {
		return 0, false
	}
	if IsLowFat(ptr) {
		return Size(ptr), true
	}
	return a.legacy.live[ptr], true
}

// RequestedSize returns the originally requested size of a live allocation.
func (a *Allocator) RequestedSize(ptr uint64) (uint64, bool) {
	size, ok := a.live[ptr]
	return size, ok
}

// LiveCount returns the number of live allocations.
func (a *Allocator) LiveCount() int { return len(a.live) }
