// Package profile implements RedFat's profile-based false-positive
// mitigation (paper §5, Fig. 5):
//
//	Phase 1 (profiling): the binary is instrumented with a profiling
//	variant of the check and run against a test suite; memory operations
//	observed to always pass the LowFat component are collected into an
//	allow-list.
//
//	Phase 2 (production): the binary is re-instrumented, giving the full
//	(Redzone)+(LowFat) check to allow-listed operations and the
//	conservative (Redzone)-only check to everything else.
//
// The underlying hypothesis: each memory operation is always a false
// positive or never a false positive — anti-idioms like (array-K)[i] fail
// the LowFat check on every execution, while idiomatic accesses never do.
package profile

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"redfat/internal/redfat"
	"redfat/internal/relf"
	"redfat/internal/rtlib"
)

// AllowList is the set of instruction addresses whose memory accesses are
// deemed safe for full (Redzone)+(LowFat) checking.
type AllowList map[uint64]bool

// header identifies the on-disk allow-list format.
const header = "redfat-allowlist v1"

// Save writes the allow-list in a stable text format (one hex address per
// line, sorted).
func (a AllowList) Save(w io.Writer) error {
	addrs := make([]uint64, 0, len(a))
	for pc, ok := range a {
		if ok {
			addrs = append(addrs, pc)
		}
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, header)
	for _, pc := range addrs {
		fmt.Fprintf(bw, "%#x\n", pc)
	}
	return bw.Flush()
}

// Load parses an allow-list written by Save.
func Load(r io.Reader) (AllowList, error) {
	sc := bufio.NewScanner(r)
	if !sc.Scan() || strings.TrimSpace(sc.Text()) != header {
		return nil, fmt.Errorf("profile: bad allow-list header")
	}
	a := AllowList{}
	line := 1
	for sc.Scan() {
		line++
		txt := strings.TrimSpace(sc.Text())
		if txt == "" || strings.HasPrefix(txt, "#") {
			continue
		}
		pc, err := strconv.ParseUint(txt, 0, 64)
		if err != nil {
			return nil, fmt.Errorf("profile: line %d: %v", line, err)
		}
		a[pc] = true
	}
	return a, sc.Err()
}

// siteVerdict accumulates observations for one instruction address across
// test-suite runs.
type siteVerdict struct {
	execs uint64
	fails uint64
}

// Profiler drives phase 1.
type Profiler struct {
	verdicts map[uint64]*siteVerdict
}

// NewProfiler returns an empty profiler.
func NewProfiler() *Profiler {
	return &Profiler{verdicts: make(map[uint64]*siteVerdict)}
}

// Accumulate folds one profiling run's per-site counters in.
func (p *Profiler) Accumulate(rt *rtlib.Runtime) {
	for i := range rt.Checks {
		st := rt.Stats[i]
		if st.Execs == 0 {
			continue
		}
		pc := rt.Checks[i].PC
		v := p.verdicts[pc]
		if v == nil {
			v = &siteVerdict{}
			p.verdicts[pc] = v
		}
		v.execs += st.Execs
		v.fails += st.LowFatFails
	}
}

// AllowList produces the phase-1 result: operations observed at least once
// that never failed the LowFat component.
func (p *Profiler) AllowList() AllowList {
	a := AllowList{}
	for pc, v := range p.verdicts {
		if v.execs > 0 && v.fails == 0 {
			a[pc] = true
		}
	}
	return a
}

// FlaggedSites returns the addresses the profiling phase identified as
// likely false positives (they failed the LowFat component at least once).
func (p *Profiler) FlaggedSites() []uint64 {
	var out []uint64
	for pc, v := range p.verdicts {
		if v.fails > 0 {
			out = append(out, pc)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// profileOptions derives the phase-1 instrumentation configuration from
// the production configuration: profiling mode, no merging (so verdicts
// are per original operand), and read checking on (the allow-list should
// cover read sites even if production later drops read checks).
func profileOptions(prod redfat.Options) redfat.Options {
	opt := prod
	opt.Profile = true
	opt.AllowList = nil
	opt.Merge = false
	opt.CheckReads = true
	return opt
}

// Run executes the full two-phase workflow of paper Fig. 5: instrument
// for profiling, run the test suite, generate the allow-list, and produce
// the production binary under prodOpt with that allow-list. It returns
// the hardened binary, the allow-list, and the production report.
func Run(orig *relf.Binary, suite []rtlib.RunConfig, prodOpt redfat.Options) (*relf.Binary, AllowList, *redfat.Report, error) {
	profBin, _, err := redfat.Harden(orig, profileOptions(prodOpt))
	if err != nil {
		return nil, nil, nil, fmt.Errorf("profile: phase 1 instrumentation: %w", err)
	}
	p := NewProfiler()
	for i, cfg := range suite {
		cfg.Abort = false // the profiling binary never aborts
		_, rt, err := rtlib.RunHardened(profBin, cfg)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("profile: test %d: %w", i, err)
		}
		p.Accumulate(rt)
	}
	allow := p.AllowList()

	opt := prodOpt
	opt.AllowList = allow
	opt.Profile = false
	hard, rep, err := redfat.Harden(orig, opt)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("profile: phase 2 instrumentation: %w", err)
	}
	return hard, allow, rep, nil
}
