package profile_test

import (
	"bytes"
	"strings"
	"testing"

	"redfat/internal/asm"
	"redfat/internal/isa"
	"redfat/internal/profile"
	"redfat/internal/redfat"
	"redfat/internal/relf"
	"redfat/internal/rtlib"
	"redfat/internal/vm"
)

func TestAllowListSaveLoad(t *testing.T) {
	a := profile.AllowList{0x400010: true, 0x400300: true, 0x7fff0000: true}
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := profile.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || !got[0x400010] || !got[0x7fff0000] {
		t.Errorf("round trip = %v", got)
	}
}

func TestAllowListLoadErrors(t *testing.T) {
	if _, err := profile.Load(strings.NewReader("not an allowlist\n")); err == nil {
		t.Error("bad header accepted")
	}
	if _, err := profile.Load(strings.NewReader("redfat-allowlist v1\nzzz\n")); err == nil {
		t.Error("bad address accepted")
	}
	// Comments and blank lines are fine.
	a, err := profile.Load(strings.NewReader("redfat-allowlist v1\n# c\n\n0x10\n"))
	if err != nil || !a[0x10] {
		t.Errorf("comment handling: %v %v", a, err)
	}
}

// antiIdiomProgram returns a program with one anti-idiom access (always
// LowFat-failing) and one idiomatic access; input selects the index.
func antiIdiomProgram(t *testing.T) *relf.Binary {
	t.Helper()
	const K = 64
	b := asm.NewBuilder(asm.Options{})
	b.Func("main")
	b.MovRI(isa.RDI, 128)
	b.CallImport("malloc")
	b.MovRR(isa.R12, isa.RAX) // idiomatic pointer
	b.MovRR(isa.RBX, isa.RAX)
	b.AluRI(isa.SUB, isa.RBX, K) // anti-idiom base
	b.CallImport("rf_input")     // index in [K, K+128)
	b.MovRI(isa.RCX, 9)
	b.StoreM(asm.MemBID(isa.RBX, isa.RAX, 1, 0), isa.RCX, 1) // anti-idiom store
	b.StoreI(isa.R12, 8, 7, 8)                               // idiomatic store
	b.Load(isa.RAX, isa.R12, 8, 8)                           // idiomatic load
	b.Ret()
	bin, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return bin
}

func TestTwoPhaseWorkflow(t *testing.T) {
	bin := antiIdiomProgram(t)
	suite := []rtlib.RunConfig{
		{Input: []uint64{64}},
		{Input: []uint64{100}},
		{Input: []uint64{191}},
	}
	hard, allow, rep, err := profile.Run(bin, suite, redfat.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if len(allow) == 0 {
		t.Fatal("empty allow-list")
	}
	if rep.FullChecks == 0 {
		t.Error("production binary has no full checks")
	}
	if rep.FullChecks >= rep.Checks {
		t.Error("anti-idiom site was not demoted to redzone-only")
	}
	// The production binary runs the previously false-positive input
	// cleanly and still computes the right result.
	v, rt, err := rtlib.RunHardened(hard, rtlib.RunConfig{Input: []uint64{64}, Abort: true})
	if err != nil {
		t.Fatalf("production run: %v", err)
	}
	if v.ExitCode != 7 {
		t.Errorf("exit = %d, want 7", v.ExitCode)
	}
	if cov := rt.Coverage(); cov <= 0 || cov >= 1 {
		t.Errorf("coverage = %v, want strictly between 0 and 1", cov)
	}
}

func TestProfilerFlagsAntiIdiom(t *testing.T) {
	bin := antiIdiomProgram(t)
	opt := redfat.Defaults()
	opt.Profile = true
	opt.Merge = false
	prof, _, err := redfat.Harden(bin, opt)
	if err != nil {
		t.Fatal(err)
	}
	p := profile.NewProfiler()
	_, rt, err := rtlib.RunHardened(prof, rtlib.RunConfig{Input: []uint64{80}})
	if err != nil {
		t.Fatal(err)
	}
	p.Accumulate(rt)
	flagged := p.FlaggedSites()
	if len(flagged) != 1 {
		t.Fatalf("flagged sites = %d, want exactly the anti-idiom", len(flagged))
	}
	if p.AllowList()[flagged[0]] {
		t.Error("flagged site ended up in the allow-list")
	}
}

func TestUnexercisedSitesExcluded(t *testing.T) {
	// A site never executed during profiling must not be allow-listed
	// (it falls back to redzone-only in production — the source of
	// partial coverage in paper Table 1).
	b := asm.NewBuilder(asm.Options{})
	b.Func("main")
	b.MovRI(isa.RDI, 64)
	b.CallImport("malloc")
	b.MovRR(isa.RBX, isa.RAX)
	b.CallImport("rf_input")
	b.AluRI(isa.CMP, isa.RAX, 0)
	b.Jcc(isa.JE, "skip")
	b.StoreI(isa.RBX, 0, 1, 8) // cold path: not exercised by the suite
	b.Label("skip")
	b.StoreI(isa.RBX, 8, 2, 8) // hot path
	b.MovRI(isa.RAX, 0)
	b.Ret()
	bin, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	_, allow, rep, err := profile.Run(bin,
		[]rtlib.RunConfig{{Input: []uint64{0}}}, // only the hot path
		redfat.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if len(allow) != 1 {
		t.Errorf("allow-list size = %d, want 1 (hot store only)", len(allow))
	}
	if rep.FullChecks != 1 {
		t.Errorf("full checks = %d, want 1", rep.FullChecks)
	}
}

func TestRealErrorDuringProfiling(t *testing.T) {
	// Paper §5: an actual memory error during profiling is classified
	// like a false positive — the site is excluded from the allow-list,
	// so production falls back to redzone-only there (which still
	// detects the error at the redzone).
	b := asm.NewBuilder(asm.Options{})
	b.Func("main")
	b.MovRI(isa.RDI, 40)
	b.CallImport("malloc")
	b.MovRR(isa.RBX, isa.RAX)
	b.CallImport("rf_input")
	b.MovRI(isa.RCX, 1)
	b.StoreM(asm.MemBID(isa.RBX, isa.RAX, 8, 0), isa.RCX, 8)
	b.MovRI(isa.RAX, 0)
	b.Ret()
	bin, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Profile with a buggy input (index 6 = out of bounds, but lands in
	// the slot padding/next redzone → LowFat component fails).
	hard, allow, _, err := profile.Run(bin,
		[]rtlib.RunConfig{{Input: []uint64{6}}}, redfat.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if len(allow) != 0 {
		t.Errorf("buggy site allow-listed: %v", allow)
	}
	// Production still detects the incremental overflow via redzones.
	_, _, err = rtlib.RunHardened(hard, rtlib.RunConfig{Input: []uint64{5}, Abort: true})
	if me, ok := err.(*vm.MemError); !ok || me.Kind != vm.ErrOOBWrite {
		t.Errorf("redzone fallback missed the overflow: %v", err)
	}
}
