// Package relf implements the RELF binary container — a simplified ELF-like
// executable format for RF64 code.
//
// A RELF image is what RedFat-Go instruments: it models the properties of
// real-world Linux ELF binaries that matter to the paper's techniques:
//
//   - position-dependent executables (absolute addressing, fixed load
//     address) and position-independent ones (RIP-relative addressing,
//     rebased at load time) — RedFat must be agnostic to both (paper §1, §3);
//   - optionally stripped: symbol information may be entirely absent, and
//     nothing in the toolchain may rely on it;
//   - an import table naming external functions (libc and friends); the VM
//     binds imports at load time, which models both the PLT and the
//     LD_PRELOAD allocator-interposition trick (paper §2.1);
//   - multiple sections (text/data/rodata/bss), to which the rewriter adds
//     trampoline and metadata sections.
package relf

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
)

// Magic identifies a serialized RELF image.
var Magic = [4]byte{'R', 'E', 'L', 'F'}

// Version is the current format version.
const Version = 1

// Default load addresses for position-dependent executables. These mirror
// the classic x86-64 Linux layout: text at 4 MB, data above it, both far
// (≫2 GB) below the low-fat heap regions that start at 32 GB, and the stack
// near the top of the canonical user address space. The distances are what
// the check-elimination optimization relies on (paper §6).
const (
	DefaultTextBase  = 0x400000
	DefaultDataBase  = 0x600000
	DefaultStackTop  = 0x7FFF_FFFF_F000
	DefaultStackSize = 8 << 20
)

// SectionKind classifies a section.
type SectionKind uint8

// Section kinds.
const (
	SecText   SectionKind = iota // executable code
	SecData                      // initialized writable data
	SecROData                    // read-only data
	SecBSS                       // zero-initialized data (no bytes stored)
	SecTramp                     // rewriter-added trampoline code
	SecMeta                      // rewriter-added metadata (not loaded for execution)
)

// String names the section kind.
func (k SectionKind) String() string {
	switch k {
	case SecText:
		return "text"
	case SecData:
		return "data"
	case SecROData:
		return "rodata"
	case SecBSS:
		return "bss"
	case SecTramp:
		return "tramp"
	case SecMeta:
		return "meta"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Section is a named contiguous region of the image.
type Section struct {
	Name  string
	Kind  SectionKind
	Addr  uint64 // virtual load address
	Size  uint64 // size in memory (≥ len(Data); BSS has no data)
	Data  []byte
	Write bool // writable when loaded
	Exec  bool // executable when loaded
}

// End returns the first address past the section.
func (s *Section) End() uint64 { return s.Addr + s.Size }

// Symbol is an optional name for an address. Stripped binaries carry none.
type Symbol struct {
	Name string
	Addr uint64
	Size uint64
	Func bool // function (vs data object)
}

// Binary is a loaded or constructed RELF image.
type Binary struct {
	PIC      bool // position-independent: addresses are relative until rebased
	Stripped bool // no symbol information
	Entry    uint64
	Sections []*Section
	Symbols  []Symbol // empty if Stripped
	Imports  []string // imported function names; RTCALL immediates index this
}

// Section returns the first section with the given name, or nil.
func (b *Binary) Section(name string) *Section {
	for _, s := range b.Sections {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Text returns the (first) executable text section, or nil.
func (b *Binary) Text() *Section {
	for _, s := range b.Sections {
		if s.Kind == SecText {
			return s
		}
	}
	return nil
}

// SectionAt returns the section containing addr, or nil.
func (b *Binary) SectionAt(addr uint64) *Section {
	for _, s := range b.Sections {
		if addr >= s.Addr && addr < s.End() {
			return s
		}
	}
	return nil
}

// AddSection appends a section and returns it.
func (b *Binary) AddSection(s *Section) *Section {
	b.Sections = append(b.Sections, s)
	return s
}

// ImportIndex returns the index of name in the import table, adding it if
// absent.
func (b *Binary) ImportIndex(name string) int {
	for i, n := range b.Imports {
		if n == name {
			return i
		}
	}
	b.Imports = append(b.Imports, name)
	return len(b.Imports) - 1
}

// Lookup returns the address of the named symbol. It fails on stripped
// binaries or unknown names.
func (b *Binary) Lookup(name string) (uint64, bool) {
	for _, s := range b.Symbols {
		if s.Name == name {
			return s.Addr, true
		}
	}
	return 0, false
}

// SymbolAt returns the symbol covering addr, if any.
func (b *Binary) SymbolAt(addr uint64) (Symbol, bool) {
	for _, s := range b.Symbols {
		if addr >= s.Addr && addr < s.Addr+s.Size {
			return s, true
		}
	}
	return Symbol{}, false
}

// Strip removes all symbol information, modelling a stripped COTS binary.
func (b *Binary) Strip() {
	b.Symbols = nil
	b.Stripped = true
}

// Rebase slides every address in the image by delta. Only meaningful for
// PIC binaries; the loader uses it to model PIE/ASLR placement.
func (b *Binary) Rebase(delta uint64) {
	b.Entry += delta
	for _, s := range b.Sections {
		s.Addr += delta
	}
	for i := range b.Symbols {
		b.Symbols[i].Addr += delta
	}
}

// MaxAddr returns the highest mapped address in the image (exclusive).
func (b *Binary) MaxAddr() uint64 {
	var max uint64
	for _, s := range b.Sections {
		if s.End() > max {
			max = s.End()
		}
	}
	return max
}

// CheckOverlaps verifies that no two sections overlap in the address space.
func (b *Binary) CheckOverlaps() error {
	secs := make([]*Section, len(b.Sections))
	copy(secs, b.Sections)
	sort.Slice(secs, func(i, j int) bool { return secs[i].Addr < secs[j].Addr })
	for i := 1; i < len(secs); i++ {
		if secs[i].Addr < secs[i-1].End() {
			return fmt.Errorf("relf: sections %q and %q overlap",
				secs[i-1].Name, secs[i].Name)
		}
	}
	return nil
}

// Clone returns a deep copy of the binary. The rewriter instruments a clone
// so the original image stays intact (the paper's prog.orig → prog.hard
// workflow keeps both).
func (b *Binary) Clone() *Binary {
	nb := &Binary{
		PIC:      b.PIC,
		Stripped: b.Stripped,
		Entry:    b.Entry,
		Imports:  append([]string(nil), b.Imports...),
		Symbols:  append([]Symbol(nil), b.Symbols...),
	}
	for _, s := range b.Sections {
		ns := *s
		ns.Data = append([]byte(nil), s.Data...)
		nb.Sections = append(nb.Sections, &ns)
	}
	return nb
}

// --- Serialization ---

const (
	flagPIC      = 1 << 0
	flagStripped = 1 << 1
)

// Marshal serializes the binary image to bytes.
func (b *Binary) Marshal() ([]byte, error) {
	var buf bytes.Buffer
	buf.Write(Magic[:])
	w32 := func(v uint32) { binary.Write(&buf, binary.LittleEndian, v) }
	w64 := func(v uint64) { binary.Write(&buf, binary.LittleEndian, v) }
	wstr := func(s string) {
		if len(s) > 0xFFFF {
			s = s[:0xFFFF]
		}
		binary.Write(&buf, binary.LittleEndian, uint16(len(s)))
		buf.WriteString(s)
	}
	w32(Version)
	var flags uint32
	if b.PIC {
		flags |= flagPIC
	}
	if b.Stripped {
		flags |= flagStripped
	}
	w32(flags)
	w64(b.Entry)

	w32(uint32(len(b.Sections)))
	for _, s := range b.Sections {
		wstr(s.Name)
		buf.WriteByte(byte(s.Kind))
		var perm byte
		if s.Write {
			perm |= 1
		}
		if s.Exec {
			perm |= 2
		}
		buf.WriteByte(perm)
		w64(s.Addr)
		w64(s.Size)
		w64(uint64(len(s.Data)))
		buf.Write(s.Data)
	}

	w32(uint32(len(b.Symbols)))
	for _, s := range b.Symbols {
		wstr(s.Name)
		w64(s.Addr)
		w64(s.Size)
		if s.Func {
			buf.WriteByte(1)
		} else {
			buf.WriteByte(0)
		}
	}

	w32(uint32(len(b.Imports)))
	for _, n := range b.Imports {
		wstr(n)
	}

	sum := crc32.ChecksumIEEE(buf.Bytes())
	binary.Write(&buf, binary.LittleEndian, sum)
	return buf.Bytes(), nil
}

// Unmarshal parses a serialized RELF image.
func Unmarshal(data []byte) (*Binary, error) {
	if len(data) < 4+4+4+8+4 {
		return nil, fmt.Errorf("relf: image too small (%d bytes)", len(data))
	}
	if !bytes.Equal(data[:4], Magic[:]) {
		return nil, fmt.Errorf("relf: bad magic % x", data[:4])
	}
	body, sumBytes := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(sumBytes) {
		return nil, fmt.Errorf("relf: checksum mismatch")
	}
	pos := 4
	r32 := func() (uint32, error) {
		if pos+4 > len(body) {
			return 0, fmt.Errorf("relf: truncated at %d", pos)
		}
		v := binary.LittleEndian.Uint32(body[pos:])
		pos += 4
		return v, nil
	}
	r64 := func() (uint64, error) {
		if pos+8 > len(body) {
			return 0, fmt.Errorf("relf: truncated at %d", pos)
		}
		v := binary.LittleEndian.Uint64(body[pos:])
		pos += 8
		return v, nil
	}
	r8 := func() (byte, error) {
		if pos+1 > len(body) {
			return 0, fmt.Errorf("relf: truncated at %d", pos)
		}
		v := body[pos]
		pos++
		return v, nil
	}
	rstr := func() (string, error) {
		if pos+2 > len(body) {
			return "", fmt.Errorf("relf: truncated at %d", pos)
		}
		n := int(binary.LittleEndian.Uint16(body[pos:]))
		pos += 2
		if pos+n > len(body) {
			return "", fmt.Errorf("relf: truncated string at %d", pos)
		}
		s := string(body[pos : pos+n])
		pos += n
		return s, nil
	}

	ver, err := r32()
	if err != nil {
		return nil, err
	}
	if ver != Version {
		return nil, fmt.Errorf("relf: unsupported version %d", ver)
	}
	flags, err := r32()
	if err != nil {
		return nil, err
	}
	b := &Binary{
		PIC:      flags&flagPIC != 0,
		Stripped: flags&flagStripped != 0,
	}
	if b.Entry, err = r64(); err != nil {
		return nil, err
	}

	nsec, err := r32()
	if err != nil {
		return nil, err
	}
	const maxCount = 1 << 20
	if nsec > maxCount {
		return nil, fmt.Errorf("relf: unreasonable section count %d", nsec)
	}
	for i := uint32(0); i < nsec; i++ {
		s := &Section{}
		if s.Name, err = rstr(); err != nil {
			return nil, err
		}
		k, err := r8()
		if err != nil {
			return nil, err
		}
		s.Kind = SectionKind(k)
		perm, err := r8()
		if err != nil {
			return nil, err
		}
		s.Write = perm&1 != 0
		s.Exec = perm&2 != 0
		if s.Addr, err = r64(); err != nil {
			return nil, err
		}
		if s.Size, err = r64(); err != nil {
			return nil, err
		}
		dlen, err := r64()
		if err != nil {
			return nil, err
		}
		if dlen > uint64(len(body)-pos) {
			return nil, fmt.Errorf("relf: section %q data truncated", s.Name)
		}
		s.Data = append([]byte(nil), body[pos:pos+int(dlen)]...)
		pos += int(dlen)
		b.Sections = append(b.Sections, s)
	}

	nsym, err := r32()
	if err != nil {
		return nil, err
	}
	if nsym > maxCount {
		return nil, fmt.Errorf("relf: unreasonable symbol count %d", nsym)
	}
	for i := uint32(0); i < nsym; i++ {
		var s Symbol
		if s.Name, err = rstr(); err != nil {
			return nil, err
		}
		if s.Addr, err = r64(); err != nil {
			return nil, err
		}
		if s.Size, err = r64(); err != nil {
			return nil, err
		}
		f, err := r8()
		if err != nil {
			return nil, err
		}
		s.Func = f != 0
		b.Symbols = append(b.Symbols, s)
	}

	nimp, err := r32()
	if err != nil {
		return nil, err
	}
	if nimp > maxCount {
		return nil, fmt.Errorf("relf: unreasonable import count %d", nimp)
	}
	for i := uint32(0); i < nimp; i++ {
		n, err := rstr()
		if err != nil {
			return nil, err
		}
		b.Imports = append(b.Imports, n)
	}
	return b, nil
}
