package relf

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// PatchTableSection is the name of the metadata section holding the
// 1-byte-trap patch table emitted by the rewriter. When the rewriter must
// fall back to a 1-byte TRAP patch (the analogue of E9Patch's last-resort
// tactics for instructions too short to hold a jump), the VM consults this
// table to redirect execution to the trampoline, modelling int3-and-handler
// dispatch with its associated cost.
const PatchTableSection = ".rf.patch"

// OriginTableSection is the metadata section mapping every trampoline
// start address back to the original instruction it was patched over —
// all tactics, not just the TRAP fallbacks of PatchTableSection. The VM
// never reads it; it exists for forensics/symbolization, so profiler
// samples and error PCs inside trampolines resolve to guest code. Same
// wire format as the patch table (EncodePatchTable/DecodePatchTable).
const OriginTableSection = ".rf.origins"

// EncodePatchTable serializes a patch table (trap address → trampoline
// address) into section data, sorted by source address so the section
// bytes are a deterministic function of the mapping — hardening the same
// binary twice with the same options must produce identical output.
func EncodePatchTable(entries map[uint64]uint64) []byte {
	froms := make([]uint64, 0, len(entries))
	for from := range entries {
		froms = append(froms, from)
	}
	sort.Slice(froms, func(i, j int) bool { return froms[i] < froms[j] })
	buf := make([]byte, 0, 8+16*len(entries))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(entries)))
	for _, from := range froms {
		buf = binary.LittleEndian.AppendUint64(buf, from)
		buf = binary.LittleEndian.AppendUint64(buf, entries[from])
	}
	return buf
}

// DecodePatchTable parses section data produced by EncodePatchTable.
func DecodePatchTable(data []byte) (map[uint64]uint64, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("relf: patch table too short")
	}
	n := binary.LittleEndian.Uint64(data)
	if uint64(len(data)) < 8+16*n {
		return nil, fmt.Errorf("relf: patch table truncated (%d entries)", n)
	}
	m := make(map[uint64]uint64, n)
	for i := uint64(0); i < n; i++ {
		off := 8 + 16*i
		from := binary.LittleEndian.Uint64(data[off:])
		to := binary.LittleEndian.Uint64(data[off+8:])
		m[from] = to
	}
	return m, nil
}
