package relf

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func sampleBinary() *Binary {
	b := &Binary{
		Entry: DefaultTextBase,
	}
	b.AddSection(&Section{
		Name: ".text", Kind: SecText, Addr: DefaultTextBase,
		Size: 64, Data: []byte{1, 2, 3, 4}, Exec: true,
	})
	b.AddSection(&Section{
		Name: ".data", Kind: SecData, Addr: DefaultDataBase,
		Size: 128, Data: []byte("hello"), Write: true,
	})
	b.AddSection(&Section{
		Name: ".bss", Kind: SecBSS, Addr: DefaultDataBase + 0x1000,
		Size: 4096, Write: true,
	})
	b.Symbols = []Symbol{
		{Name: "main", Addr: DefaultTextBase, Size: 32, Func: true},
		{Name: "buf", Addr: DefaultDataBase, Size: 5},
	}
	b.Imports = []string{"malloc", "free", "print_i64"}
	return b
}

func TestMarshalRoundTrip(t *testing.T) {
	b := sampleBinary()
	data, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Entry != b.Entry || got.PIC != b.PIC || got.Stripped != b.Stripped {
		t.Errorf("header mismatch: %+v vs %+v", got, b)
	}
	if len(got.Sections) != len(b.Sections) {
		t.Fatalf("section count %d != %d", len(got.Sections), len(b.Sections))
	}
	for i, s := range b.Sections {
		g := got.Sections[i]
		if g.Name != s.Name || g.Kind != s.Kind || g.Addr != s.Addr ||
			g.Size != s.Size || g.Write != s.Write || g.Exec != s.Exec {
			t.Errorf("section %d mismatch: %+v vs %+v", i, g, s)
		}
		if string(g.Data) != string(s.Data) {
			t.Errorf("section %d data mismatch", i)
		}
	}
	if len(got.Symbols) != 2 || got.Symbols[0].Name != "main" || !got.Symbols[0].Func {
		t.Errorf("symbols mismatch: %+v", got.Symbols)
	}
	if len(got.Imports) != 3 || got.Imports[2] != "print_i64" {
		t.Errorf("imports mismatch: %v", got.Imports)
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	b := sampleBinary()
	data, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte anywhere; the checksum must catch it.
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		cp := append([]byte(nil), data...)
		pos := r.Intn(len(cp))
		cp[pos] ^= 0xA5
		if _, err := Unmarshal(cp); err == nil {
			t.Fatalf("corruption at byte %d not detected", pos)
		}
	}
	if _, err := Unmarshal(data[:8]); err == nil {
		t.Error("truncated image accepted")
	}
	if _, err := Unmarshal(nil); err == nil {
		t.Error("empty image accepted")
	}
}

func TestSectionLookup(t *testing.T) {
	b := sampleBinary()
	if s := b.Section(".text"); s == nil || s.Kind != SecText {
		t.Fatal("Section(.text) failed")
	}
	if s := b.Text(); s == nil || s.Name != ".text" {
		t.Fatal("Text() failed")
	}
	if s := b.SectionAt(DefaultTextBase + 10); s == nil || s.Name != ".text" {
		t.Fatal("SectionAt inside .text failed")
	}
	if s := b.SectionAt(DefaultTextBase + 64); s != nil {
		t.Fatalf("SectionAt(end) = %q, want nil", s.Name)
	}
	if s := b.SectionAt(0xdeadbeef); s != nil {
		t.Fatal("SectionAt(unmapped) should be nil")
	}
}

func TestSymbols(t *testing.T) {
	b := sampleBinary()
	addr, ok := b.Lookup("main")
	if !ok || addr != DefaultTextBase {
		t.Fatalf("Lookup(main) = %#x, %v", addr, ok)
	}
	sym, ok := b.SymbolAt(DefaultTextBase + 5)
	if !ok || sym.Name != "main" {
		t.Fatalf("SymbolAt = %+v, %v", sym, ok)
	}
	b.Strip()
	if !b.Stripped || len(b.Symbols) != 0 {
		t.Fatal("Strip() did not remove symbols")
	}
	if _, ok := b.Lookup("main"); ok {
		t.Fatal("Lookup succeeded on stripped binary")
	}
}

func TestRebase(t *testing.T) {
	b := sampleBinary()
	b.PIC = true
	const delta = 0x5555_0000_0000
	text := b.Text().Addr
	entry := b.Entry
	b.Rebase(delta)
	if b.Entry != entry+delta {
		t.Errorf("entry not rebased: %#x", b.Entry)
	}
	if b.Text().Addr != text+delta {
		t.Errorf("text not rebased: %#x", b.Text().Addr)
	}
	if b.Symbols[0].Addr != DefaultTextBase+delta {
		t.Errorf("symbol not rebased: %#x", b.Symbols[0].Addr)
	}
}

func TestImportIndex(t *testing.T) {
	b := &Binary{}
	i := b.ImportIndex("malloc")
	j := b.ImportIndex("free")
	k := b.ImportIndex("malloc")
	if i != k {
		t.Errorf("duplicate import got new index: %d vs %d", i, k)
	}
	if i == j {
		t.Errorf("distinct imports share index %d", i)
	}
	if len(b.Imports) != 2 {
		t.Errorf("import table = %v", b.Imports)
	}
}

func TestCheckOverlaps(t *testing.T) {
	b := sampleBinary()
	if err := b.CheckOverlaps(); err != nil {
		t.Fatalf("valid layout reported overlap: %v", err)
	}
	b.AddSection(&Section{Name: ".evil", Addr: DefaultTextBase + 32, Size: 64})
	if err := b.CheckOverlaps(); err == nil {
		t.Fatal("overlap not detected")
	}
}

func TestClone(t *testing.T) {
	b := sampleBinary()
	c := b.Clone()
	c.Sections[0].Data[0] = 0xFF
	c.Symbols[0].Name = "changed"
	c.Imports[0] = "changed"
	if b.Sections[0].Data[0] == 0xFF {
		t.Error("clone shares section data")
	}
	if b.Symbols[0].Name == "changed" {
		t.Error("clone shares symbols")
	}
	if b.Imports[0] == "changed" {
		t.Error("clone shares imports")
	}
}

// TestQuickMarshalRoundTrip: marshal/unmarshal is the identity on random
// well-formed binaries.
func TestQuickMarshalRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	f := func() bool {
		b := &Binary{
			PIC:      r.Intn(2) == 0,
			Stripped: r.Intn(2) == 0,
			Entry:    r.Uint64(),
		}
		addr := uint64(0x1000)
		for i := 0; i < r.Intn(6); i++ {
			data := make([]byte, r.Intn(256))
			r.Read(data)
			size := uint64(len(data)) + uint64(r.Intn(64))
			b.AddSection(&Section{
				Name: strings.Repeat("s", i+1),
				Kind: SectionKind(r.Intn(6)),
				Addr: addr, Size: size, Data: data,
				Write: r.Intn(2) == 0, Exec: r.Intn(2) == 0,
			})
			addr += size + uint64(r.Intn(4096))
		}
		if !b.Stripped {
			for i := 0; i < r.Intn(4); i++ {
				b.Symbols = append(b.Symbols, Symbol{
					Name: strings.Repeat("f", i+1), Addr: r.Uint64(),
					Size: uint64(r.Intn(100)), Func: r.Intn(2) == 0,
				})
			}
		}
		for i := 0; i < r.Intn(4); i++ {
			b.Imports = append(b.Imports, strings.Repeat("i", i+1))
		}

		data, err := b.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		got, err := Unmarshal(data)
		if err != nil {
			t.Logf("unmarshal: %v", err)
			return false
		}
		data2, err := got.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		return string(data) == string(data2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
