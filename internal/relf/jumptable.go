package relf

import (
	"encoding/binary"
	"fmt"
)

// JumpTableSection is the metadata section declaring the jump tables a
// marker-built binary contains. The assembler's .jumptable directive
// emits one record per table (address + entry count); the indirect-flow
// recovery in internal/cfg only trusts a table load whose span is
// declared here AND lies in a read-only section, and the presence of
// this section is what opts the binary into LPAD enforcement in the VM.
const JumpTableSection = ".rf.jt"

// JumpTable is one declared jump table: Entries consecutive 8-byte code
// addresses starting at Addr.
type JumpTable struct {
	Addr    uint64
	Entries uint32
}

const jtVersion = 1

// EncodeJumpTables serializes jump-table records into section data.
// Callers pass records in emission order; the layout is deterministic.
func EncodeJumpTables(tables []JumpTable) []byte {
	buf := make([]byte, 0, 8+12*len(tables))
	buf = append(buf, jtVersion)
	buf = append(buf, 0, 0, 0) // padding
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(tables)))
	for _, t := range tables {
		buf = binary.LittleEndian.AppendUint64(buf, t.Addr)
		buf = binary.LittleEndian.AppendUint32(buf, t.Entries)
	}
	return buf
}

// DecodeJumpTables parses section data produced by EncodeJumpTables.
func DecodeJumpTables(data []byte) ([]JumpTable, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("relf: jump-table section too short")
	}
	if data[0] != jtVersion {
		return nil, fmt.Errorf("relf: jump-table section version %d (want %d)", data[0], jtVersion)
	}
	n := binary.LittleEndian.Uint32(data[4:])
	if uint64(len(data)) < 8+12*uint64(n) {
		return nil, fmt.Errorf("relf: jump-table section truncated (%d records)", n)
	}
	out := make([]JumpTable, n)
	for i := uint32(0); i < n; i++ {
		off := 8 + 12*uint64(i)
		out[i].Addr = binary.LittleEndian.Uint64(data[off:])
		out[i].Entries = binary.LittleEndian.Uint32(data[off+8:])
	}
	return out, nil
}
