// Package memcheck models Valgrind Memcheck: the heavyweight
// dynamic-binary-instrumentation comparator the paper evaluates against
// (§7.1, Table 1; §7.2, Table 2).
//
// Memcheck differs from RedFat in every axis the paper contrasts:
//
//   - it interprets the *unmodified* binary under a DBI engine, paying a
//     JIT-translation cost per basic block plus dispatch overhead on every
//     instruction (modelled with the VM's BlockHook / PerInstOverhead);
//   - protection is redzone-only: it interposes on malloc, pads each
//     allocation with 16-byte redzones, tracks addressability in shadow
//     memory, and checks every access against the shadow — so it detects
//     incremental overflows and use-after-free, but non-incremental
//     overflows that skip the redzone into another valid object are
//     invisible to it (paper Problem #1);
//   - it runs with --leak-check=no --undef-value-errors=no equivalents,
//     i.e. only addressability checking, matching the paper's setup.
package memcheck

import (
	"redfat/internal/heap"
	"redfat/internal/isa"
	"redfat/internal/mem"
	"redfat/internal/relf"
	"redfat/internal/rtlib"
	"redfat/internal/shadow"
	"redfat/internal/vm"
)

// RedzoneSize is Memcheck's default redzone padding (16 bytes).
const RedzoneSize = 16

// DBI cost model (cycles). Valgrind's core overhead comes from running
// translated code with dispatch and shadow bookkeeping: the paper measures
// 11.76× on SPEC with checking enabled.
const (
	costTranslateBlock = 150 // first visit: disassemble + translate
	costBlockDispatch  = 10  // per block entry: translation-cache lookup
	costPerInst        = 4   // per guest instruction under the JIT
	costShadowCheck    = 18  // per memory access: shadow lookup + classify
)

// Wrapper interposes Memcheck's redzone allocator over the baseline heap.
type Wrapper struct {
	H      *heap.Heap
	Shadow *shadow.Map
	// live maps user pointer → requested size (for free/realloc).
	live map[uint64]uint64
}

// NewWrapper builds the allocator wrapper.
func NewWrapper(h *heap.Heap) *Wrapper {
	return &Wrapper{H: h, Shadow: shadow.New(), live: make(map[uint64]uint64)}
}

// The forensic noter/tracker interfaces forward to the underlying heap,
// so allocation-site records work under the Memcheck model too.

// NoteAllocPC forwards the guest call site to the underlying heap.
func (w *Wrapper) NoteAllocPC(pc uint64) { w.H.NoteAllocPC(pc) }

// NoteAllocStack forwards the guest backtrace to the underlying heap.
func (w *Wrapper) NoteAllocStack(stack []uint64) { w.H.NoteAllocStack(stack) }

// SiteStackDepth reports the underlying heap's capture depth.
func (w *Wrapper) SiteStackDepth() int { return w.H.SiteStackDepth() }

// EnableSiteTracking turns on forensic records in the underlying heap.
func (w *Wrapper) EnableSiteTracking(depth int) { w.H.EnableSiteTracking(depth) }

// Malloc allocates with redzones on both sides and poisons them.
func (w *Wrapper) Malloc(size uint64) (uint64, error) {
	raw, err := w.H.Malloc(size + 2*RedzoneSize)
	if err != nil {
		return 0, err
	}
	ptr := raw + RedzoneSize
	w.Shadow.Poison(raw, RedzoneSize, shadow.HeapRedzone)
	w.Shadow.Unpoison(ptr, size)
	w.Shadow.Poison(ptr+size, RedzoneSize, shadow.HeapRedzone)
	w.live[ptr] = size
	return ptr, nil
}

// Calloc allocates zeroed memory with redzones.
func (w *Wrapper) Calloc(n, size uint64) (uint64, error) {
	total := n * size
	if size != 0 && total/size != n {
		return 0, errOverflow
	}
	p, err := w.Malloc(total)
	if err != nil {
		return 0, err
	}
	if err := w.H.Mem.Memset(p, 0, total); err != nil {
		return 0, err
	}
	return p, nil
}

// Free poisons the freed object (use-after-free detection) and returns
// the chunk to the underlying heap.
func (w *Wrapper) Free(ptr uint64) error {
	if ptr == 0 {
		return nil
	}
	size, ok := w.live[ptr]
	if !ok {
		return errInvalidFree
	}
	delete(w.live, ptr)
	w.Shadow.Poison(ptr, size, shadow.FreedMemory)
	return w.H.Free(ptr - RedzoneSize)
}

// Realloc resizes with redzone maintenance.
func (w *Wrapper) Realloc(ptr, size uint64) (uint64, error) {
	if ptr == 0 {
		return w.Malloc(size)
	}
	old, ok := w.live[ptr]
	if !ok {
		return 0, errInvalidFree
	}
	np, err := w.Malloc(size)
	if err != nil {
		return 0, err
	}
	n := old
	if size < n {
		n = size
	}
	if err := w.H.Mem.Memcpy(np, ptr, n); err != nil {
		return 0, err
	}
	return np, w.Free(ptr)
}

type constError string

func (e constError) Error() string { return string(e) }

const (
	errOverflow    = constError("memcheck: calloc overflow")
	errInvalidFree = constError("memcheck: invalid free")
)

// Run executes bin under the Memcheck model.
func Run(bin *relf.Binary, cfg rtlib.RunConfig) (*vm.VM, error) {
	m := mem.New()
	v := vm.New(m)
	v.Input = cfg.Input
	v.MaxCycles = cfg.MaxCycles
	if v.MaxCycles == 0 {
		v.MaxCycles = 20_000_000_000 // Memcheck runs ~10× longer
	}
	v.AbortOnError = cfg.Abort
	v.NoBlockCache = cfg.NoBlockCache
	v.NoChain = cfg.NoChain
	m.NoTLB = cfg.NoTLB
	cfg.AttachFlight(v, m)
	cfg.AttachTrace(v)

	w := NewWrapper(heap.New(m))
	cfg.AttachForensics(v, w)
	env := rtlib.LibC(w, m)

	// libc-style bulk operations are checked too (Valgrind intercepts
	// them): wrap the mem* span operations with shadow checks. The
	// NoLibcCheck ablation removes the interposition, modelling a run
	// without the replacement library. String functions are deliberately
	// not wrapped — Memcheck's str* interceptors only handle overlap, so
	// OOB through str* stays a modelled miss (Table 2 contrast with the
	// hardened span intrinsics).
	if !cfg.NoLibcCheck {
		baseMemset, baseMemcpy := env["memset"], env["memcpy"]
		baseMemmove, baseMemcmp := env["memmove"], env["memcmp"]
		env["memset"] = func(v *vm.VM, arg uint32) error {
			if err := checkRange(v, w, v.Regs[isa.RDI], v.Regs[isa.RDX], true); err != nil {
				return err
			}
			return baseMemset(v, arg)
		}
		env["memcpy"] = func(v *vm.VM, arg uint32) error {
			if err := checkRange(v, w, v.Regs[isa.RSI], v.Regs[isa.RDX], false); err != nil {
				return err
			}
			if err := checkRange(v, w, v.Regs[isa.RDI], v.Regs[isa.RDX], true); err != nil {
				return err
			}
			return baseMemcpy(v, arg)
		}
		env["memmove"] = func(v *vm.VM, arg uint32) error {
			if err := checkRange(v, w, v.Regs[isa.RSI], v.Regs[isa.RDX], false); err != nil {
				return err
			}
			if err := checkRange(v, w, v.Regs[isa.RDI], v.Regs[isa.RDX], true); err != nil {
				return err
			}
			return baseMemmove(v, arg)
		}
		env["memcmp"] = func(v *vm.VM, arg uint32) error {
			if err := checkRange(v, w, v.Regs[isa.RDI], v.Regs[isa.RDX], false); err != nil {
				return err
			}
			if err := checkRange(v, w, v.Regs[isa.RSI], v.Regs[isa.RDX], false); err != nil {
				return err
			}
			return baseMemcmp(v, arg)
		}
	}

	// DBI overheads.
	v.PerInstOverhead = costPerInst
	seen := make(map[uint64]bool)
	v.BlockHook = func(v *vm.VM, addr uint64) {
		if !seen[addr] {
			seen[addr] = true
			v.Cycles += costTranslateBlock
		}
		v.Cycles += costBlockDispatch
	}
	v.MemHook = func(v *vm.VM, addr uint64, size uint16, write bool) error {
		v.Cycles += costShadowCheck
		return checkAccess(v, w, addr, uint64(size), write)
	}

	if err := v.Load(bin, env); err != nil {
		return v, err
	}
	return v, v.Run()
}

func checkAccess(v *vm.VM, w *Wrapper, addr, size uint64, write bool) error {
	tag, bad := w.Shadow.Check(addr, size)
	if !bad {
		return nil
	}
	kind := vm.ErrOOBRead
	if write {
		kind = vm.ErrOOBWrite
	}
	if tag == shadow.FreedMemory {
		kind = vm.ErrUseAfterFree
	}
	return v.Report(vm.MemError{Kind: kind, Addr: addr, PC: v.RIP})
}

func checkRange(v *vm.VM, w *Wrapper, addr, size uint64, write bool) error {
	if size == 0 {
		return nil
	}
	return checkAccess(v, w, addr, size, write)
}
