package memcheck_test

import (
	"testing"

	"redfat/internal/asm"
	"redfat/internal/isa"
	"redfat/internal/memcheck"
	"redfat/internal/relf"
	"redfat/internal/rtlib"
	"redfat/internal/vm"
)

func buildArrayProg(t *testing.T) *relf.Binary {
	t.Helper()
	b := asm.NewBuilder(asm.Options{})
	b.Func("main")
	b.MovRI(isa.RDI, 40)
	b.CallImport("malloc")
	b.MovRR(isa.RBX, isa.RAX)
	b.CallImport("rf_input")
	b.MovRI(isa.RCX, 7)
	b.StoreM(asm.MemBID(isa.RBX, isa.RAX, 8, 0), isa.RCX, 8)
	b.MovRI(isa.RAX, 0)
	b.Ret()
	bin, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return bin
}

func TestBenignRun(t *testing.T) {
	bin := buildArrayProg(t)
	v, err := memcheck.Run(bin, rtlib.RunConfig{Input: []uint64{2}, Abort: true})
	if err != nil {
		t.Fatal(err)
	}
	if v.ExitCode != 0 || len(v.Errors) != 0 {
		t.Errorf("exit=%d errors=%v", v.ExitCode, v.Errors)
	}
}

func TestDetectsIncrementalOverflow(t *testing.T) {
	// array[5] hits the right redzone: Memcheck catches this.
	bin := buildArrayProg(t)
	_, err := memcheck.Run(bin, rtlib.RunConfig{Input: []uint64{5}, Abort: true})
	if me, ok := err.(*vm.MemError); !ok || me.Kind != vm.ErrOOBWrite {
		t.Errorf("incremental overflow: %v", err)
	}
}

func TestMissesNonIncrementalOverflow(t *testing.T) {
	// An offset that skips the 16-byte redzone into the next chunk's
	// payload is invisible to redzone-only checking (paper Problem #1).
	b := asm.NewBuilder(asm.Options{})
	b.Func("main")
	b.MovRI(isa.RDI, 40)
	b.CallImport("malloc")
	b.MovRR(isa.RBX, isa.RAX)
	b.MovRI(isa.RDI, 40)
	b.CallImport("malloc") // adjacent victim object
	b.MovRR(isa.R13, isa.RAX)
	b.AluRR(isa.SUB, isa.R13, isa.RBX) // victim − array = byte distance
	b.CallImport("rf_input")           // offset inside the victim (0..39)
	b.AluRR(isa.ADD, isa.RAX, isa.R13) // index = distance + input
	b.MovRI(isa.RCX, 0x41)
	b.StoreM(asm.MemBID(isa.RBX, isa.RAX, 1, 0), isa.RCX, 1) // array[idx] = 0x41
	b.MovRI(isa.RAX, 0)
	b.Ret()
	bin, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	v, err := memcheck.Run(bin, rtlib.RunConfig{Input: []uint64{8}, Abort: true})
	if err != nil || len(v.Errors) != 0 {
		t.Errorf("Memcheck unexpectedly caught the redzone skip: %v %v", err, v.Errors)
	}
}

func TestDetectsUseAfterFree(t *testing.T) {
	b := asm.NewBuilder(asm.Options{})
	b.Func("main")
	b.MovRI(isa.RDI, 64)
	b.CallImport("malloc")
	b.MovRR(isa.RBX, isa.RAX)
	b.MovRR(isa.RDI, isa.RAX)
	b.CallImport("free")
	b.Load(isa.RAX, isa.RBX, 0, 8)
	b.Ret()
	bin, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	_, err = memcheck.Run(bin, rtlib.RunConfig{Abort: true})
	if me, ok := err.(*vm.MemError); !ok || me.Kind != vm.ErrUseAfterFree {
		t.Errorf("UaF: %v", err)
	}
}

func TestDBIOverheadCharged(t *testing.T) {
	// A store loop long enough for the DBI costs to dominate: Memcheck
	// should be several times slower than the native baseline.
	b := asm.NewBuilder(asm.Options{})
	b.Func("main")
	b.MovRI(isa.RDI, 8000)
	b.CallImport("malloc")
	b.MovRR(isa.RBX, isa.RAX)
	b.MovRI(isa.RCX, 0)
	b.Label("loop")
	b.StoreM(asm.MemBID(isa.RBX, isa.RCX, 8, 0), isa.RCX, 8)
	b.AluRM(isa.ADD, isa.RDX, asm.MemBID(isa.RBX, isa.RCX, 8, 0), 8)
	b.AluRI(isa.ADD, isa.RCX, 1)
	b.AluRI(isa.CMP, isa.RCX, 1000)
	b.Jcc(isa.JL, "loop")
	b.MovRI(isa.RAX, 0)
	b.Ret()
	bin, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	base, err := rtlib.RunBaseline(bin, rtlib.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	mc, err := memcheck.Run(bin, rtlib.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	slowdown := float64(mc.Cycles) / float64(base.Cycles)
	if slowdown < 3 || slowdown > 40 {
		t.Errorf("Memcheck slowdown %.1f× outside plausible range", slowdown)
	}
}
