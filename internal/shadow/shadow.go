// Package shadow implements ASAN-style compact shadow memory: one shadow
// byte tracks the addressability of each 8-byte granule of application
// memory (paper §4.1, the state_shadow operation):
//
//	state_shadow(ptr) = *(SHADOW_MAP + (ptr ÷ 8))
//
// Shadow values follow the AddressSanitizer convention:
//
//	0        all 8 bytes addressable
//	1..7     only the first k bytes addressable
//	≥ 0x80   poisoned; the value identifies the poison kind
//
// This package backs the Valgrind-Memcheck comparison model (package
// memcheck), which uses redzone-only protection. RedFat itself does NOT
// use a separate shadow map — its metadata lives inside the redzone of
// each object (package redzone), which is one of the paper's design
// points.
package shadow

// Poison kinds (ASAN-compatible values).
const (
	Addressable   = 0x00
	HeapRedzone   = 0xFA
	FreedMemory   = 0xFD
	GlobalRedzone = 0xF9
)

const (
	granuleShift = 3
	pageShift    = 12
	pageSize     = 1 << pageShift
)

// Map is a sparse shadow map. The zero value is not ready; use New.
type Map struct {
	pages map[uint64]*[pageSize]byte

	cacheIdx  uint64
	cachePage *[pageSize]byte
}

// New returns an empty shadow map where all memory is addressable.
func New() *Map {
	return &Map{pages: make(map[uint64]*[pageSize]byte), cacheIdx: ^uint64(0)}
}

// shadowAddr converts an application address to its shadow offset.
func shadowAddr(addr uint64) uint64 { return addr >> granuleShift }

func (m *Map) page(sa uint64, create bool) *[pageSize]byte {
	idx := sa >> pageShift
	if idx == m.cacheIdx {
		return m.cachePage
	}
	p := m.pages[idx]
	if p == nil && create {
		p = &[pageSize]byte{}
		m.pages[idx] = p
	}
	if p != nil {
		m.cacheIdx, m.cachePage = idx, p
	}
	return p
}

func (m *Map) get(sa uint64) byte {
	p := m.page(sa, false)
	if p == nil {
		return Addressable
	}
	return p[sa&(pageSize-1)]
}

func (m *Map) set(sa uint64, v byte) {
	p := m.page(sa, true)
	p[sa&(pageSize-1)] = v
}

// Poison marks [addr, addr+size) with the given poison kind. The range is
// expanded outward to whole granules (allocator redzones are 8-aligned in
// practice, so the expansion is a no-op there).
func (m *Map) Poison(addr, size uint64, kind byte) {
	if size == 0 {
		return
	}
	first := shadowAddr(addr)
	last := shadowAddr(addr + size - 1)
	for sa := first; sa <= last; sa++ {
		m.set(sa, kind)
	}
}

// Unpoison marks [addr, addr+size) addressable. addr must be 8-aligned; a
// trailing partial granule gets a partial shadow value so overflows into
// the granule's tail are still caught (ASAN's partial-rightmost encoding).
func (m *Map) Unpoison(addr, size uint64) {
	if size == 0 {
		return
	}
	sa := shadowAddr(addr)
	full := size >> granuleShift
	for i := uint64(0); i < full; i++ {
		m.set(sa+i, Addressable)
	}
	if rem := size & 7; rem != 0 {
		m.set(sa+full, byte(rem))
	}
}

// Check tests whether the access [addr, addr+size) touches poisoned or
// partially-addressable-beyond-limit memory. It returns the poison kind
// and true if the access is bad.
func (m *Map) Check(addr, size uint64) (byte, bool) {
	if size == 0 {
		return 0, false
	}
	first := shadowAddr(addr)
	last := shadowAddr(addr + size - 1)
	for sa := first; sa <= last; sa++ {
		s := m.get(sa)
		if s == Addressable {
			continue
		}
		if s >= 0x80 {
			return s, true
		}
		// Partial granule: the access within this granule must end at
		// or before the addressable prefix.
		granStart := sa << granuleShift
		accEnd := addr + size
		if granEnd := granStart + 8; accEnd > granEnd {
			accEnd = granEnd
		}
		if accEnd-granStart > uint64(s) {
			return s, true
		}
	}
	return 0, false
}

// State returns the raw shadow byte covering addr.
func (m *Map) State(addr uint64) byte { return m.get(shadowAddr(addr)) }
