package shadow

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPoisonCheck(t *testing.T) {
	m := New()
	m.Poison(0x1000, 16, HeapRedzone)
	m.Unpoison(0x1010, 64)
	m.Poison(0x1050, 16, HeapRedzone)

	// Accesses fully inside the object pass.
	if kind, bad := m.Check(0x1010, 8); bad {
		t.Errorf("in-bounds access flagged: kind %#x", kind)
	}
	if _, bad := m.Check(0x1048, 8); bad {
		t.Error("last object granule flagged")
	}
	// Accesses touching the redzones fail.
	if kind, bad := m.Check(0x1008, 8); !bad || kind != HeapRedzone {
		t.Errorf("left redzone access not caught: %#x, %v", kind, bad)
	}
	if kind, bad := m.Check(0x1050, 1); !bad || kind != HeapRedzone {
		t.Errorf("right redzone access not caught: %#x, %v", kind, bad)
	}
	// Straddling access fails.
	if _, bad := m.Check(0x104C, 8); !bad {
		t.Error("straddling access not caught")
	}
}

func TestPartialGranule(t *testing.T) {
	m := New()
	m.Unpoison(0x2000, 13) // 1 full granule + 5-byte partial
	if s := m.State(0x2008); s != 5 {
		t.Fatalf("partial shadow = %d, want 5", s)
	}
	if _, bad := m.Check(0x2008, 5); bad {
		t.Error("access within partial granule flagged")
	}
	if _, bad := m.Check(0x2008, 6); !bad {
		t.Error("access past partial limit not caught")
	}
	if _, bad := m.Check(0x200C, 1); bad {
		t.Error("access to last addressable byte flagged")
	}
	if _, bad := m.Check(0x200D, 1); !bad {
		t.Error("byte access past partial limit not caught")
	}
	if _, bad := m.Check(0x200A, 2); bad {
		t.Error("short access inside partial limit flagged")
	}
}

func TestFreedPoison(t *testing.T) {
	m := New()
	m.Unpoison(0x3000, 64)
	m.Poison(0x3000, 64, FreedMemory)
	kind, bad := m.Check(0x3010, 8)
	if !bad || kind != FreedMemory {
		t.Errorf("freed access = %#x, %v", kind, bad)
	}
}

func TestDefaultAddressable(t *testing.T) {
	m := New()
	if _, bad := m.Check(0xDEADBEEF000, 8); bad {
		t.Error("untouched memory should be addressable (stack/globals)")
	}
}

func TestZeroSize(t *testing.T) {
	m := New()
	m.Poison(0x1000, 0, HeapRedzone)
	m.Unpoison(0x1000, 0)
	if _, bad := m.Check(0x1000, 0); bad {
		t.Error("zero-size access flagged")
	}
}

// Property: after Unpoison(p, n) inside a poisoned span, every aligned
// access inside [p, p+n) passes and every access crossing either boundary
// fails.
func TestQuickRedzoneBoundaries(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	f := func() bool {
		m := New()
		base := (uint64(r.Intn(1<<30)) + 1) &^ 7 // 8-aligned
		n := uint64(8 * (1 + r.Intn(64)))        // whole granules for exactness
		m.Poison(base-16, 16, HeapRedzone)
		m.Unpoison(base, n)
		m.Poison(base+n, 16, HeapRedzone)

		for i := 0; i < 8; i++ {
			off := uint64(r.Int63n(int64(n)))
			size := uint64(1 + r.Intn(8))
			if off+size > n {
				size = n - off
			}
			if _, bad := m.Check(base+off, size); bad {
				return false
			}
		}
		if _, bad := m.Check(base-1, 1); !bad {
			return false
		}
		if _, bad := m.Check(base+n, 1); !bad {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
