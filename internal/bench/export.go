package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"redfat/internal/telemetry"
)

// Table1Summary aggregates Table 1 across benchmarks: mean coverage and
// the geometric-mean slow-down of every optimization column.
type Table1Summary struct {
	MeanCoverage float64 `json:"mean_coverage"`
	Unopt        float64 `json:"unopt"`
	Elim         float64 `json:"elim"`
	Batch        float64 `json:"batch"`
	Merge        float64 `json:"merge"`
	Ind          float64 `json:"ind"`
	NoSize       float64 `json:"nosize"`
	NoReads      float64 `json:"noreads"`
	Memcheck     float64 `json:"memcheck"`
}

// Summarize computes the geometric-mean summary row of Table 1.
func Summarize(rows []*Table1Row) Table1Summary {
	return Table1Summary{
		MeanCoverage: mean(rows, func(r *Table1Row) float64 { return r.Coverage }),
		Unopt:        geo(rows, func(r *Table1Row) float64 { return r.Unopt }),
		Elim:         geo(rows, func(r *Table1Row) float64 { return r.Elim }),
		Batch:        geo(rows, func(r *Table1Row) float64 { return r.Batch }),
		Merge:        geo(rows, func(r *Table1Row) float64 { return r.Merge }),
		Ind:          geo(rows, func(r *Table1Row) float64 { return r.Ind }),
		NoSize:       geo(rows, func(r *Table1Row) float64 { return r.NoSize }),
		NoReads:      geo(rows, func(r *Table1Row) float64 { return r.NoReads }),
		Memcheck:     geo(rows, func(r *Table1Row) float64 { return r.Memcheck }),
	}
}

// Figure8Result bundles the per-benchmark Kraken rows with their
// geometric mean.
type Figure8Result struct {
	Rows    []Fig8Row `json:"rows"`
	GeoMean float64   `json:"geomean"`
}

// Ablations bundles the ablation-study result sets.
type Ablations struct {
	Tactics  []TacticRow   `json:"tactics,omitempty"`
	Batch    []BatchRow    `json:"batch,omitempty"`
	Clobber  []ClobberRow  `json:"clobber,omitempty"`
	Dataflow []DataflowRow `json:"dataflow,omitempty"`
	Indirect []IndirectRow `json:"indirect,omitempty"`
	Fuzz     []FuzzRow     `json:"fuzz,omitempty"`
}

// SchemaVersion versions the Results JSON shape. Baseline comparison and
// runpack consumers check it and reject incompatible files with a clear
// error instead of misparsing them.
const SchemaVersion = 1

// Results is the machine-readable aggregate of an rfbench invocation:
// every experiment that ran contributes its section; the rest are omitted.
type Results struct {
	SchemaVersion  int            `json:"schema_version"`
	Scale          float64        `json:"scale,omitempty"`
	Table1         []*Table1Row   `json:"table1,omitempty"`
	Table1Summary  *Table1Summary `json:"table1_summary,omitempty"`
	FalsePositives []FPRow        `json:"false_positives,omitempty"`
	Table2         []Table2Row    `json:"table2,omitempty"`
	Table2Extended []Table2Row    `json:"table2_extended,omitempty"`
	Figure8        *Figure8Result `json:"figure8,omitempty"`
	Ablation       *Ablations     `json:"ablation,omitempty"`
	GuestProfiles  []GuestProfRow `json:"guest_profiles,omitempty"`
	// Telemetry is the aggregate metrics snapshot across every run,
	// merged from the per-unit registries of the worker pool.
	Telemetry *telemetry.Snapshot `json:"telemetry,omitempty"`
}

// WriteJSON serializes the results, indented, to w, stamping the schema
// version.
func (r *Results) WriteJSON(w io.Writer) error {
	if r.SchemaVersion == 0 {
		r.SchemaVersion = SchemaVersion
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// MarshalJSONBytes serializes the results exactly as WriteJSON would —
// the single byte representation used by files, runpacks and baselines.
func (r *Results) MarshalJSONBytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ParseResults decodes a Results document, rejecting files written under
// a different (or missing) schema version, including the embedded
// telemetry snapshot when present.
func ParseResults(data []byte) (*Results, error) {
	var r Results
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: malformed results JSON: %v", err)
	}
	if r.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("bench: results schema_version %d, tool supports %d (regenerate with this rfbench)",
			r.SchemaVersion, SchemaVersion)
	}
	if r.Telemetry != nil {
		if err := r.Telemetry.Validate(); err != nil {
			return nil, err
		}
	}
	return &r, nil
}
