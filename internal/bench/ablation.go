package bench

import (
	"fmt"
	"io"

	"redfat/internal/fuzz"
	"redfat/internal/kraken"
	"redfat/internal/redfat"
	"redfat/internal/relf"
	"redfat/internal/rtlib"
	"redfat/internal/telemetry"
	"redfat/internal/workload"
)

// TacticRow reports the patch-tactic mix for one instrumented binary —
// the ablation DESIGN.md calls out for the rewriting substrate (how often
// the direct jmp32, byte-stealing and trap tactics fire).
type TacticRow struct {
	Name       string `json:"name"`
	TextBytes  int    `json:"text_bytes"`
	Checks     int    `json:"checks"`
	T1         int    `json:"t1"`
	T2         int    `json:"t2"`
	T3         int    `json:"t3"`
	TrampBytes int    `json:"tramp_bytes"`
}

// Tactics instruments every SPEC-like benchmark plus the Chrome-scale
// image with the production configuration and reports tactic statistics.
// Each binary is one pool unit.
func (h *Harness) Tactics(fillerFuncs int, w io.Writer) ([]TacticRow, error) {
	bms := workload.All()
	n := len(bms) + 1 // + the Chrome-scale image
	name := func(i int) string {
		if i == len(bms) {
			return "chrome"
		}
		return bms[i].Name
	}
	rows, err := fanOut(h, "tactics", n, name,
		func(i int, _ *telemetry.Registry) (TacticRow, error) {
			var (
				bin *relf.Binary
				err error
			)
			if i == len(bms) {
				bin, err = kraken.Build(fillerFuncs)
			} else {
				bin, err = bms[i].Build()
			}
			if err != nil {
				return TacticRow{}, err
			}
			_, rep, err := redfat.Harden(bin, redfat.Defaults())
			if err != nil {
				return TacticRow{}, err
			}
			return TacticRow{
				Name: name(i), TextBytes: len(bin.Text().Data), Checks: rep.Checks,
				T1: rep.Rewrite.T1, T2: rep.Rewrite.T2, T3: rep.Rewrite.T3,
				TrampBytes: rep.Rewrite.TrampBytes,
			}, nil
		})
	if err != nil {
		return nil, err
	}
	if w != nil {
		fmt.Fprintf(w, "%-12s %10s %8s %8s %8s %8s %10s\n",
			"binary", "text(B)", "checks", "T1", "T2", "T3", "tramp(B)")
		for _, r := range rows {
			fmt.Fprintf(w, "%-12s %10d %8d %8d %8d %8d %10d\n",
				r.Name, r.TextBytes, r.Checks, r.T1, r.T2, r.T3, r.TrampBytes)
		}
	}
	return rows, nil
}

// Tactics is the serial form of Harness.Tactics.
func Tactics(fillerFuncs int, w io.Writer) ([]TacticRow, error) {
	return (&Harness{}).Tactics(fillerFuncs, w)
}

// BatchRow reports the overhead at one maximum batch width.
type BatchRow struct {
	MaxBatch int     `json:"max_batch"`
	Slowdown float64 `json:"slowdown"`
}

// BatchSweep measures the benefit of check batching as a function of the
// maximum trampoline batch width, on a store-dense benchmark. The build
// and baseline run once, serially; the widths fan out as pool units.
func (h *Harness) BatchSweep(benchName string, scale float64, w io.Writer) ([]BatchRow, error) {
	bm := workload.ByName(benchName)
	if bm == nil {
		return nil, fmt.Errorf("bench: unknown benchmark %q", benchName)
	}
	bm = scaled(bm, scale)
	bin, err := bm.Build()
	if err != nil {
		return nil, err
	}
	base, err := rtlib.RunBaseline(bin, rtlib.RunConfig{Input: bm.RefInput(), Metrics: h.Metrics})
	if err != nil {
		return nil, err
	}
	widths := []int{1, 2, 4, 8, 16}
	rows, err := fanOut(h, "batch", len(widths),
		func(i int) string { return fmt.Sprintf("width-%d", widths[i]) },
		func(i int, reg *telemetry.Registry) (BatchRow, error) {
			width := widths[i]
			opt := redfat.Defaults()
			opt.MaxBatch = width
			if width == 1 {
				opt.Batch = false
				opt.Merge = false
			}
			hard, _, err := redfat.Harden(bin, opt)
			if err != nil {
				return BatchRow{}, err
			}
			v, _, err := rtlib.RunHardened(hard, rtlib.RunConfig{Input: bm.RefInput(), Metrics: reg})
			if err != nil {
				return BatchRow{}, err
			}
			return BatchRow{MaxBatch: width,
				Slowdown: float64(v.Cycles) / float64(base.Cycles)}, nil
		})
	if err != nil {
		return nil, err
	}
	if w != nil {
		for _, r := range rows {
			fmt.Fprintf(w, "max batch %2d: %6.2fx\n", r.MaxBatch, r.Slowdown)
		}
	}
	return rows, nil
}

// BatchSweep is the serial form of Harness.BatchSweep.
func BatchSweep(benchName string, scale float64, w io.Writer) ([]BatchRow, error) {
	return (&Harness{}).BatchSweep(benchName, scale, w)
}

// ClobberRow compares trampoline save/restore cost with and without the
// dead-register specialization (paper §6, low-level optimizations).
type ClobberRow struct {
	Specialized bool    `json:"specialized"`
	Slowdown    float64 `json:"slowdown"`
}

// ClobberSweep measures the benefit of the dead-register trampoline
// specialization on one benchmark. The two variants fan out as pool units.
func (h *Harness) ClobberSweep(benchName string, scale float64, w io.Writer) ([]ClobberRow, error) {
	bm := workload.ByName(benchName)
	if bm == nil {
		return nil, fmt.Errorf("bench: unknown benchmark %q", benchName)
	}
	bm = scaled(bm, scale)
	bin, err := bm.Build()
	if err != nil {
		return nil, err
	}
	base, err := rtlib.RunBaseline(bin, rtlib.RunConfig{Input: bm.RefInput(), Metrics: h.Metrics})
	if err != nil {
		return nil, err
	}
	specs := []bool{false, true}
	rows, err := fanOut(h, "clobber", len(specs),
		func(i int) string { return fmt.Sprintf("specialized-%v", specs[i]) },
		func(i int, reg *telemetry.Registry) (ClobberRow, error) {
			opt := redfat.Defaults()
			opt.NoClobberSpec = !specs[i]
			hard, _, err := redfat.Harden(bin, opt)
			if err != nil {
				return ClobberRow{}, err
			}
			v, _, err := rtlib.RunHardened(hard, rtlib.RunConfig{Input: bm.RefInput(), Metrics: reg})
			if err != nil {
				return ClobberRow{}, err
			}
			return ClobberRow{Specialized: specs[i],
				Slowdown: float64(v.Cycles) / float64(base.Cycles)}, nil
		})
	if err != nil {
		return nil, err
	}
	if w != nil {
		for _, r := range rows {
			fmt.Fprintf(w, "clobber specialization %-5v: %6.2fx\n", r.Specialized, r.Slowdown)
		}
	}
	return rows, nil
}

// ClobberSweep is the serial form of Harness.ClobberSweep.
func ClobberSweep(benchName string, scale float64, w io.Writer) ([]ClobberRow, error) {
	return (&Harness{}).ClobberSweep(benchName, scale, w)
}

// FuzzRow compares allow-list coverage with and without the
// coverage-guided profiling boost (paper §5 / E9AFL).
type FuzzRow struct {
	Runs     int     `json:"runs"`
	Coverage float64 `json:"coverage"`
}

// FuzzBoostStudy measures production coverage on a train-gated benchmark
// as the fuzzing budget grows. The build and profile rewrite run once,
// serially; the budgets fan out as pool units.
func (h *Harness) FuzzBoostStudy(benchName string, budgets []int, w io.Writer) ([]FuzzRow, error) {
	bm := workload.ByName(benchName)
	if bm == nil {
		return nil, fmt.Errorf("bench: unknown benchmark %q", benchName)
	}
	bm = scaled(bm, 0.02)
	bin, err := bm.Build()
	if err != nil {
		return nil, err
	}
	profOpt := redfat.Defaults()
	profOpt.Profile = true
	profOpt.Merge = false
	profBin, _, err := redfat.Harden(bin, profOpt)
	if err != nil {
		return nil, err
	}
	rows, err := fanOut(h, "fuzz", len(budgets),
		func(i int) string { return fmt.Sprintf("budget-%d", budgets[i]) },
		func(i int, reg *telemetry.Registry) (FuzzRow, error) {
			res, err := fuzz.Boost(profBin, [][]uint64{bm.TrainInput()}, fuzz.Options{
				MaxRuns: budgets[i], MaxCycles: 50_000_000,
			})
			if err != nil {
				return FuzzRow{}, err
			}
			opt := redfat.Defaults()
			opt.AllowList = res.Profiler.AllowList()
			hard, _, err := redfat.Harden(bin, opt)
			if err != nil {
				return FuzzRow{}, err
			}
			_, rt, err := rtlib.RunHardened(hard, rtlib.RunConfig{Input: bm.RefInput(), Metrics: reg})
			if err != nil {
				return FuzzRow{}, err
			}
			return FuzzRow{Runs: budgets[i], Coverage: rt.Coverage()}, nil
		})
	if err != nil {
		return nil, err
	}
	if w != nil {
		for _, r := range rows {
			fmt.Fprintf(w, "fuzz budget %4d runs: coverage %5.1f%%\n", r.Runs, 100*r.Coverage)
		}
	}
	return rows, nil
}

// FuzzBoostStudy is the serial form of Harness.FuzzBoostStudy.
func FuzzBoostStudy(benchName string, budgets []int, w io.Writer) ([]FuzzRow, error) {
	return (&Harness{}).FuzzBoostStudy(benchName, budgets, w)
}
