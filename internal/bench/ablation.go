package bench

import (
	"fmt"
	"io"

	"redfat/internal/fuzz"
	"redfat/internal/kraken"
	"redfat/internal/redfat"
	"redfat/internal/rtlib"
	"redfat/internal/workload"
)

// TacticRow reports the patch-tactic mix for one instrumented binary —
// the ablation DESIGN.md calls out for the rewriting substrate (how often
// the direct jmp32, byte-stealing and trap tactics fire).
type TacticRow struct {
	Name       string `json:"name"`
	TextBytes  int    `json:"text_bytes"`
	Checks     int    `json:"checks"`
	T1         int    `json:"t1"`
	T2         int    `json:"t2"`
	T3         int    `json:"t3"`
	TrampBytes int    `json:"tramp_bytes"`
}

// Tactics instruments every SPEC-like benchmark plus the Chrome-scale
// image with the production configuration and reports tactic statistics.
func Tactics(fillerFuncs int, w io.Writer) ([]TacticRow, error) {
	var rows []TacticRow
	add := func(name string, textLen int) func(*redfat.Report) {
		return func(rep *redfat.Report) {
			rows = append(rows, TacticRow{
				Name: name, TextBytes: textLen, Checks: rep.Checks,
				T1: rep.Rewrite.T1, T2: rep.Rewrite.T2, T3: rep.Rewrite.T3,
				TrampBytes: rep.Rewrite.TrampBytes,
			})
		}
	}
	for _, bm := range workload.All() {
		bin, err := bm.Build()
		if err != nil {
			return nil, err
		}
		_, rep, err := redfat.Harden(bin, redfat.Defaults())
		if err != nil {
			return nil, err
		}
		add(bm.Name, len(bin.Text().Data))(rep)
	}
	chrome, err := kraken.Build(fillerFuncs)
	if err != nil {
		return nil, err
	}
	_, rep, err := redfat.Harden(chrome, redfat.Defaults())
	if err != nil {
		return nil, err
	}
	add("chrome", len(chrome.Text().Data))(rep)

	if w != nil {
		fmt.Fprintf(w, "%-12s %10s %8s %8s %8s %8s %10s\n",
			"binary", "text(B)", "checks", "T1", "T2", "T3", "tramp(B)")
		for _, r := range rows {
			fmt.Fprintf(w, "%-12s %10d %8d %8d %8d %8d %10d\n",
				r.Name, r.TextBytes, r.Checks, r.T1, r.T2, r.T3, r.TrampBytes)
		}
	}
	return rows, nil
}

// BatchRow reports the overhead at one maximum batch width.
type BatchRow struct {
	MaxBatch int     `json:"max_batch"`
	Slowdown float64 `json:"slowdown"`
}

// BatchSweep measures the benefit of check batching as a function of the
// maximum trampoline batch width, on a store-dense benchmark.
func BatchSweep(benchName string, scale float64, w io.Writer) ([]BatchRow, error) {
	bm := workload.ByName(benchName)
	if bm == nil {
		return nil, fmt.Errorf("bench: unknown benchmark %q", benchName)
	}
	bm = scaled(bm, scale)
	bin, err := bm.Build()
	if err != nil {
		return nil, err
	}
	base, err := rtlib.RunBaseline(bin, rtlib.RunConfig{Input: bm.RefInput()})
	if err != nil {
		return nil, err
	}
	var rows []BatchRow
	for _, width := range []int{1, 2, 4, 8, 16} {
		opt := redfat.Defaults()
		opt.MaxBatch = width
		if width == 1 {
			opt.Batch = false
			opt.Merge = false
		}
		hard, _, err := redfat.Harden(bin, opt)
		if err != nil {
			return nil, err
		}
		v, _, err := rtlib.RunHardened(hard, rtlib.RunConfig{Input: bm.RefInput()})
		if err != nil {
			return nil, err
		}
		rows = append(rows, BatchRow{MaxBatch: width,
			Slowdown: float64(v.Cycles) / float64(base.Cycles)})
	}
	if w != nil {
		for _, r := range rows {
			fmt.Fprintf(w, "max batch %2d: %6.2fx\n", r.MaxBatch, r.Slowdown)
		}
	}
	return rows, nil
}

// ClobberRow compares trampoline save/restore cost with and without the
// dead-register specialization (paper §6, low-level optimizations).
type ClobberRow struct {
	Specialized bool    `json:"specialized"`
	Slowdown    float64 `json:"slowdown"`
}

// ClobberSweep measures the benefit of the dead-register trampoline
// specialization on one benchmark.
func ClobberSweep(benchName string, scale float64, w io.Writer) ([]ClobberRow, error) {
	bm := workload.ByName(benchName)
	if bm == nil {
		return nil, fmt.Errorf("bench: unknown benchmark %q", benchName)
	}
	bm = scaled(bm, scale)
	bin, err := bm.Build()
	if err != nil {
		return nil, err
	}
	base, err := rtlib.RunBaseline(bin, rtlib.RunConfig{Input: bm.RefInput()})
	if err != nil {
		return nil, err
	}
	var rows []ClobberRow
	for _, spec := range []bool{false, true} {
		opt := redfat.Defaults()
		opt.NoClobberSpec = !spec
		hard, _, err := redfat.Harden(bin, opt)
		if err != nil {
			return nil, err
		}
		v, _, err := rtlib.RunHardened(hard, rtlib.RunConfig{Input: bm.RefInput()})
		if err != nil {
			return nil, err
		}
		rows = append(rows, ClobberRow{Specialized: spec,
			Slowdown: float64(v.Cycles) / float64(base.Cycles)})
	}
	if w != nil {
		for _, r := range rows {
			fmt.Fprintf(w, "clobber specialization %-5v: %6.2fx\n", r.Specialized, r.Slowdown)
		}
	}
	return rows, nil
}

// FuzzRow compares allow-list coverage with and without the
// coverage-guided profiling boost (paper §5 / E9AFL).
type FuzzRow struct {
	Runs     int     `json:"runs"`
	Coverage float64 `json:"coverage"`
}

// FuzzBoostStudy measures production coverage on a train-gated benchmark
// as the fuzzing budget grows.
func FuzzBoostStudy(benchName string, budgets []int, w io.Writer) ([]FuzzRow, error) {
	bm := workload.ByName(benchName)
	if bm == nil {
		return nil, fmt.Errorf("bench: unknown benchmark %q", benchName)
	}
	bm = scaled(bm, 0.02)
	bin, err := bm.Build()
	if err != nil {
		return nil, err
	}
	profOpt := redfat.Defaults()
	profOpt.Profile = true
	profOpt.Merge = false
	profBin, _, err := redfat.Harden(bin, profOpt)
	if err != nil {
		return nil, err
	}
	var rows []FuzzRow
	for _, budget := range budgets {
		res, err := fuzz.Boost(profBin, [][]uint64{bm.TrainInput()}, fuzz.Options{
			MaxRuns: budget, MaxCycles: 50_000_000,
		})
		if err != nil {
			return nil, err
		}
		opt := redfat.Defaults()
		opt.AllowList = res.Profiler.AllowList()
		hard, _, err := redfat.Harden(bin, opt)
		if err != nil {
			return nil, err
		}
		_, rt, err := rtlib.RunHardened(hard, rtlib.RunConfig{Input: bm.RefInput()})
		if err != nil {
			return nil, err
		}
		rows = append(rows, FuzzRow{Runs: budget, Coverage: rt.Coverage()})
	}
	if w != nil {
		for _, r := range rows {
			fmt.Fprintf(w, "fuzz budget %4d runs: coverage %5.1f%%\n", r.Runs, 100*r.Coverage)
		}
	}
	return rows, nil
}
